// Command benchprobe measures the frozen-library associative probe —
// the contiguous-arena fused XNOR-popcount kernel with early
// abandonment — against a faithful reimplementation of the seed's
// scalar scan (individually heap-allocated bucket vectors, one HV.Dot
// per bucket, per-iteration stats branches), and writes the comparison
// as JSON. `make bench` runs it to refresh BENCH_probe.json, the
// checked-in record of the probe speedup at the default geometry.
//
// Both sides run interleaved via testing.Benchmark, several
// repetitions each, and the report keys off medians: on a shared
// machine a single benchmark invocation can swing by tens of percent,
// and interleaving keeps slow minutes from landing on only one side.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// Benchmark geometry: D=8192 sealed approximate windows, 16 per
// bucket — the dimensionality the rest of the suite tests at, with
// 1024 buckets ≈ one PIM crossbar array of rows. Must match
// internal/core/probe_bench_test.go so `go test -bench BenchmarkProbe`
// and this command measure the same thing.
const (
	dim      = 8192
	window   = 32
	capacity = 16
	queries  = 12
)

type repPair struct {
	KernelNsPerOp float64 `json:"kernel_ns_per_op"`
	SeedNsPerOp   float64 `json:"seed_ns_per_op"`
}

type report struct {
	Benchmark         string    `json:"benchmark"`
	Dim               int       `json:"dim"`
	Window            int       `json:"window"`
	Capacity          int       `json:"capacity"`
	Buckets           int       `json:"buckets"`
	Queries           int       `json:"queries"`
	GoVersion         string    `json:"go_version"`
	GOARCH            string    `json:"goarch"`
	GOMAXPROCS        int       `json:"gomaxprocs"`
	SIMD              bool      `json:"simd_kernel"`
	Reps              []repPair `json:"reps"`
	KernelNsPerBucket float64   `json:"median_kernel_ns_per_bucket"`
	SeedNsPerBucket   float64   `json:"median_seed_ns_per_bucket"`
	Speedup           float64   `json:"speedup"`
}

func main() {
	buckets := flag.Int("buckets", 1024, "library size in buckets")
	reps := flag.Int("reps", 5, "interleaved repetitions per side")
	out := flag.String("out", "BENCH_probe.json", "output path, or - for stdout")
	flag.Parse()

	lib, qs, err := buildLibrary(*buckets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	scattered := scatterBuckets(lib)

	rep := report{
		Benchmark: "probe", Dim: dim, Window: window, Capacity: capacity,
		Buckets: *buckets, Queries: queries,
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), SIMD: bitvec.AccelAvailable(),
	}
	var kernelNs, seedNs []float64
	for r := 0; r < *reps; r++ {
		k := testing.Benchmark(func(b *testing.B) {
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				if _, err := lib.Probe(qs[i%len(qs)], &stats); err != nil {
					b.Fatal(err)
				}
			}
		})
		s := testing.Benchmark(func(b *testing.B) {
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				seedProbeBaseline(lib, scattered, qs[i%len(qs)], &stats)
			}
		})
		pair := repPair{
			KernelNsPerOp: float64(k.NsPerOp()),
			SeedNsPerOp:   float64(s.NsPerOp()),
		}
		rep.Reps = append(rep.Reps, pair)
		kernelNs = append(kernelNs, pair.KernelNsPerOp)
		seedNs = append(seedNs, pair.SeedNsPerOp)
		fmt.Fprintf(os.Stderr, "rep %d/%d: kernel %.0f ns/op, seed %.0f ns/op\n",
			r+1, *reps, pair.KernelNsPerOp, pair.SeedNsPerOp)
	}
	rep.KernelNsPerBucket = median(kernelNs) / float64(*buckets)
	rep.SeedNsPerBucket = median(seedNs) / float64(*buckets)
	rep.Speedup = rep.SeedNsPerBucket / rep.KernelNsPerBucket

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "median: kernel %.1f ns/bucket, seed %.1f ns/bucket, speedup %.2fx\n",
		rep.KernelNsPerBucket, rep.SeedNsPerBucket, rep.Speedup)
}

// buildLibrary builds the frozen benchmark library and its query mix
// (3:1 absent to present, like a read-mapping workload where most
// probes miss everywhere).
func buildLibrary(buckets int) (*core.Library, []*hdc.HV, error) {
	p := core.Params{Dim: dim, Window: window, Stride: 1, Capacity: capacity,
		Approx: true, Sealed: true, MutTolerance: 2, Seed: 42}
	lib, err := core.NewLibrary(p)
	if err != nil {
		return nil, nil, err
	}
	src := rng.New(4242)
	ref := genome.Random(buckets*capacity+window-1, src)
	if err := lib.Add(genome.Record{ID: "bench", Seq: ref}); err != nil {
		return nil, nil, err
	}
	lib.Freeze()
	if lib.NumBuckets() != buckets {
		return nil, nil, fmt.Errorf("built %d buckets, want %d", lib.NumBuckets(), buckets)
	}
	var qs []*hdc.HV
	for i := 0; i < queries; i++ {
		var q *genome.Sequence
		if i%4 == 0 {
			off := src.Intn(ref.Len() - window)
			q = ref.Slice(off, off+window)
		} else {
			q = genome.Random(window, src)
		}
		qs = append(qs, lib.Encoder().EncodeWindowApprox(q, 0))
	}
	return lib, qs, nil
}

// seedProbeBaseline reproduces the seed implementation of Probe
// operation for operation: a serial scan over individually
// heap-allocated per-bucket hypervectors, one HV.Dot per bucket,
// per-iteration stats branches, and an un-presized append.
func seedProbeBaseline(l *core.Library, scattered []*hdc.HV, hv *hdc.HV, stats *core.Stats) []core.Candidate {
	tau := l.Threshold()
	var out []core.Candidate
	for i := range scattered {
		score := float64(scattered[i].Dot(hv))
		if stats != nil {
			stats.BucketProbes++
		}
		if score >= tau {
			out = append(out, core.Candidate{Bucket: i, Score: score, Excess: score - tau})
			if stats != nil {
				stats.CandidateBuckets++
			}
		}
	}
	return out
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// scatterBuckets reproduces the seed's freeze-time heap layout: bucket
// i's sealed vector was allocated the moment bucket i+1 opened, i.e.
// interleaved with the next bucket's live 4·D-byte counter accumulator,
// so consecutive rows landed pages apart rather than back-to-back. The
// accumulators are released after the build, exactly as sealing
// released them, but Go's non-moving collector leaves the rows where
// they were born.
func scatterBuckets(l *core.Library) []*hdc.HV {
	n := l.NumBuckets()
	d := l.Params().Dim
	out := make([]*hdc.HV, n)
	accs := make([][]int32, n)
	for i := range out {
		out[i] = l.BucketVector(i).Clone()
		accs[i] = make([]int32, d)
	}
	for i := range accs {
		accs[i] = nil
	}
	return out
}
