// Command benchprobe measures the frozen-library associative probe —
// the contiguous-arena fused XNOR-popcount kernel with early
// abandonment — against a faithful reimplementation of the seed's
// scalar scan (individually heap-allocated bucket vectors, one HV.Dot
// per bucket, per-iteration stats branches), and writes the comparison
// as JSON. `make bench` runs it to refresh BENCH_probe.json, the
// checked-in record of the probe speedup at the default geometry.
//
// With -queries-per-block N > 0 the command instead A/B-tests the
// query-blocked scan: ProbeMulti over blocks of Q queries versus Q
// sequential Probe calls over the same queries, at Q ∈ {1, 4, 8}
// capped to N. `make bench` runs this mode under GOMAXPROCS=1 to
// refresh BENCH_multiprobe.json — single-threaded, so the measured
// win is the blocking itself (row traffic amortized across the
// block), not parallelism.
//
// With -segments "1,4,16" the command instead measures what the
// segmented-snapshot refactor costs the probe: per segment count S,
// both sides hold the same references, the monolithic side built
// entirely pre-freeze (one sealed segment) and the segmented side
// built one reference pre-freeze plus S-1 live ingests that each
// seal their own segment. The overhead at S=1 is the price of the
// snapshot indirection itself and must stay in the noise; `make
// bench` runs this mode to refresh BENCH_segments.json.
//
// With -mmap "1,4,16" the command instead measures what the
// mmap-backed storage tier costs the probe: per segment count S, one
// S-segment library is serialized in the v3 mappable format and opened
// twice — heap-loaded and arena-mapped — and the same query mix probes
// both. Page-cache-warm (the file was just written), so the ratio is
// the cost of scanning file-backed pages rather than first-fault
// latency; `make bench` runs this mode to refresh BENCH_mmap.json.
//
// Both sides run interleaved via testing.Benchmark, several
// repetitions each, and the report keys off medians: on a shared
// machine a single benchmark invocation can swing by tens of percent,
// and interleaving keeps slow minutes from landing on only one side.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// Benchmark geometry: D=8192 sealed approximate windows, 16 per
// bucket — the dimensionality the rest of the suite tests at, with
// 1024 buckets ≈ one PIM crossbar array of rows. Must match
// internal/core/probe_bench_test.go so `go test -bench BenchmarkProbe`
// and this command measure the same thing.
const (
	dim      = 8192
	window   = 32
	capacity = 16
	queries  = 12
)

type repPair struct {
	KernelNsPerOp float64 `json:"kernel_ns_per_op"`
	SeedNsPerOp   float64 `json:"seed_ns_per_op"`
}

type report struct {
	Benchmark         string    `json:"benchmark"`
	Dim               int       `json:"dim"`
	Window            int       `json:"window"`
	Capacity          int       `json:"capacity"`
	Buckets           int       `json:"buckets"`
	Queries           int       `json:"queries"`
	GoVersion         string    `json:"go_version"`
	GOARCH            string    `json:"goarch"`
	GOMAXPROCS        int       `json:"gomaxprocs"`
	SIMD              bool      `json:"simd_kernel"`
	Kernel            string    `json:"kernel"`
	Reps              []repPair `json:"reps"`
	KernelNsPerBucket float64   `json:"median_kernel_ns_per_bucket"`
	SeedNsPerBucket   float64   `json:"median_seed_ns_per_bucket"`
	Speedup           float64   `json:"speedup"`
}

func main() {
	buckets := flag.Int("buckets", 1024, "library size in buckets")
	reps := flag.Int("reps", 5, "interleaved repetitions per side")
	out := flag.String("out", "BENCH_probe.json", "output path, or - for stdout")
	qpb := flag.Int("queries-per-block", 0,
		"A/B-test the query-blocked scan at up to this block width instead of the seed comparison")
	segs := flag.String("segments", "",
		"comma-separated segment counts (e.g. 1,4,16): A/B-test the segmented scan against a monolithic build instead of the seed comparison")
	mmapLevels := flag.String("mmap", "",
		"comma-separated segment counts (e.g. 1,4,16): A/B-test the mmap-backed probe against the heap-loaded one instead of the seed comparison")
	flag.Parse()

	if *mmapLevels != "" {
		runMmap(*buckets, *mmapLevels, *reps, *out)
		return
	}
	if *segs != "" {
		runSegments(*buckets, *segs, *reps, *out)
		return
	}
	lib, qs, err := buildLibrary(*buckets)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	if *qpb > 0 {
		runMulti(lib, qs, *buckets, *qpb, *reps, *out)
		return
	}
	scattered := scatterBuckets(lib)

	rep := report{
		Benchmark: "probe", Dim: dim, Window: window, Capacity: capacity,
		Buckets: *buckets, Queries: queries,
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), SIMD: bitvec.AccelAvailable(),
		Kernel: bitvec.Kernel(),
	}
	var kernelNs, seedNs []float64
	for r := 0; r < *reps; r++ {
		k := testing.Benchmark(func(b *testing.B) {
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				if _, err := lib.Probe(qs[i%len(qs)], &stats); err != nil {
					b.Fatal(err)
				}
			}
		})
		s := testing.Benchmark(func(b *testing.B) {
			var stats core.Stats
			for i := 0; i < b.N; i++ {
				seedProbeBaseline(lib, scattered, qs[i%len(qs)], &stats)
			}
		})
		pair := repPair{
			KernelNsPerOp: float64(k.NsPerOp()),
			SeedNsPerOp:   float64(s.NsPerOp()),
		}
		rep.Reps = append(rep.Reps, pair)
		kernelNs = append(kernelNs, pair.KernelNsPerOp)
		seedNs = append(seedNs, pair.SeedNsPerOp)
		fmt.Fprintf(os.Stderr, "rep %d/%d: kernel %.0f ns/op, seed %.0f ns/op\n",
			r+1, *reps, pair.KernelNsPerOp, pair.SeedNsPerOp)
	}
	rep.KernelNsPerBucket = median(kernelNs) / float64(*buckets)
	rep.SeedNsPerBucket = median(seedNs) / float64(*buckets)
	rep.Speedup = rep.SeedNsPerBucket / rep.KernelNsPerBucket

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "median: kernel %.1f ns/bucket, seed %.1f ns/bucket, speedup %.2fx\n",
		rep.KernelNsPerBucket, rep.SeedNsPerBucket, rep.Speedup)
}

// multiLevel is one block width's A/B result: the blocked scan versus
// the same queries probed sequentially, in ns per query.
type multiLevel struct {
	Q                 int       `json:"queries_per_block"`
	Reps              []repPair `json:"reps"`
	BlockedNsPerQuery float64   `json:"median_blocked_ns_per_query"`
	SequentNsPerQuery float64   `json:"median_sequential_ns_per_query"`
	Speedup           float64   `json:"speedup"`
}

type multiReport struct {
	Benchmark  string       `json:"benchmark"`
	Dim        int          `json:"dim"`
	Window     int          `json:"window"`
	Capacity   int          `json:"capacity"`
	Buckets    int          `json:"buckets"`
	Queries    int          `json:"queries"`
	GoVersion  string       `json:"go_version"`
	GOARCH     string       `json:"goarch"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	SIMD       bool         `json:"simd_kernel"`
	Kernel     string       `json:"kernel"`
	MaxQ       int          `json:"max_queries_per_block"`
	Levels     []multiLevel `json:"levels"`
}

// runMulti A/B-tests the query-blocked probe at block widths 1, 4, 8
// (capped to qpb): for each width Q, kernel side = one ProbeMulti call
// over a block of Q queries, baseline side = Q sequential Probe calls
// over the same queries. The two sides return identical candidates
// (the golden tests pin that), so the ratio is pure scan efficiency.
func runMulti(lib *core.Library, qs []*hdc.HV, buckets, qpb, reps int, out string) {
	rep := multiReport{
		Benchmark: "multiprobe", Dim: dim, Window: window, Capacity: capacity,
		Buckets: buckets, Queries: queries,
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), SIMD: bitvec.AccelAvailable(),
		Kernel: bitvec.Kernel(), MaxQ: qpb,
	}
	for _, q := range []int{1, 4, 8} {
		if q > qpb {
			break
		}
		// Rotations of the query mix, so both sides cycle through every
		// present/absent composition a block can have.
		blocks := make([][]*hdc.HV, len(qs))
		for k := range blocks {
			blk := make([]*hdc.HV, q)
			for j := range blk {
				blk[j] = qs[(k+j)%len(qs)]
			}
			blocks[k] = blk
		}
		lvl := multiLevel{Q: q}
		var blockedNs, seqNs []float64
		for r := 0; r < reps; r++ {
			blocked := testing.Benchmark(func(b *testing.B) {
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					if _, err := lib.ProbeMulti(blocks[i%len(blocks)], &stats); err != nil {
						b.Fatal(err)
					}
				}
			})
			seq := testing.Benchmark(func(b *testing.B) {
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					for _, hv := range blocks[i%len(blocks)] {
						if _, err := lib.Probe(hv, &stats); err != nil {
							b.Fatal(err)
						}
					}
				}
			})
			pair := repPair{
				KernelNsPerOp: float64(blocked.NsPerOp()) / float64(q),
				SeedNsPerOp:   float64(seq.NsPerOp()) / float64(q),
			}
			lvl.Reps = append(lvl.Reps, pair)
			blockedNs = append(blockedNs, pair.KernelNsPerOp)
			seqNs = append(seqNs, pair.SeedNsPerOp)
			fmt.Fprintf(os.Stderr, "Q=%d rep %d/%d: blocked %.0f ns/query, sequential %.0f ns/query\n",
				q, r+1, reps, pair.KernelNsPerOp, pair.SeedNsPerOp)
		}
		lvl.BlockedNsPerQuery = median(blockedNs)
		lvl.SequentNsPerQuery = median(seqNs)
		lvl.Speedup = lvl.SequentNsPerQuery / lvl.BlockedNsPerQuery
		fmt.Fprintf(os.Stderr, "Q=%d median: blocked %.0f ns/query, sequential %.0f ns/query, speedup %.2fx\n",
			q, lvl.BlockedNsPerQuery, lvl.SequentNsPerQuery, lvl.Speedup)
		rep.Levels = append(rep.Levels, lvl)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
}

// segPair is one repetition of the segmented-vs-monolithic probe A/B.
type segPair struct {
	SegmentedNsPerOp  float64 `json:"segmented_ns_per_op"`
	MonolithicNsPerOp float64 `json:"monolithic_ns_per_op"`
}

// segLevel is one segment count's result. Overhead is the fractional
// slowdown of the segmented scan over the monolithic one (0.02 = 2%
// slower); at S=1 both libraries hold a single sealed segment, so
// anything beyond measurement noise there is a regression in the
// snapshot plumbing itself.
type segLevel struct {
	Segments          int       `json:"segments"`
	Reps              []segPair `json:"reps"`
	SegmentedNsPerOp  float64   `json:"median_segmented_ns_per_op"`
	MonolithicNsPerOp float64   `json:"median_monolithic_ns_per_op"`
	Overhead          float64   `json:"overhead"`
}

type segReport struct {
	Benchmark  string     `json:"benchmark"`
	Dim        int        `json:"dim"`
	Window     int        `json:"window"`
	Capacity   int        `json:"capacity"`
	Buckets    int        `json:"buckets"`
	Queries    int        `json:"queries"`
	GoVersion  string     `json:"go_version"`
	GOARCH     string     `json:"goarch"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	SIMD       bool       `json:"simd_kernel"`
	Kernel     string     `json:"kernel"`
	Levels     []segLevel `json:"levels"`
}

// runSegments A/B-tests the segmented probe scan. Per level S, both
// sides are built from the same S references, each sized to fill
// buckets/S buckets exactly so bucket contents line up reference for
// reference: the monolithic side adds them all before Freeze (one
// sealed segment), the segmented side adds one before Freeze and
// ingests the rest live with a seal threshold of one window, sealing
// a segment per reference. Identical bucket vectors, identical
// thresholds of work — the ratio is pure per-segment dispatch cost.
func runSegments(buckets int, levels string, reps int, out string) {
	rep := segReport{
		Benchmark: "segments", Dim: dim, Window: window, Capacity: capacity,
		Buckets: buckets, Queries: queries,
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), SIMD: bitvec.AccelAvailable(),
		Kernel: bitvec.Kernel(),
	}
	for _, field := range strings.Split(levels, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || s <= 0 {
			fmt.Fprintf(os.Stderr, "benchprobe: bad segment count %q\n", field)
			os.Exit(1)
		}
		mono, segd, qs, err := buildSegmentedPair(buckets, s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		lvl := segLevel{Segments: s}
		var segNs, monoNs []float64
		for r := 0; r < reps; r++ {
			sg := testing.Benchmark(func(b *testing.B) {
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					if _, err := segd.Probe(qs[i%len(qs)], &stats); err != nil {
						b.Fatal(err)
					}
				}
			})
			mn := testing.Benchmark(func(b *testing.B) {
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					if _, err := mono.Probe(qs[i%len(qs)], &stats); err != nil {
						b.Fatal(err)
					}
				}
			})
			pair := segPair{
				SegmentedNsPerOp:  float64(sg.NsPerOp()),
				MonolithicNsPerOp: float64(mn.NsPerOp()),
			}
			lvl.Reps = append(lvl.Reps, pair)
			segNs = append(segNs, pair.SegmentedNsPerOp)
			monoNs = append(monoNs, pair.MonolithicNsPerOp)
			fmt.Fprintf(os.Stderr, "S=%d rep %d/%d: segmented %.0f ns/op, monolithic %.0f ns/op\n",
				s, r+1, reps, pair.SegmentedNsPerOp, pair.MonolithicNsPerOp)
		}
		lvl.SegmentedNsPerOp = median(segNs)
		lvl.MonolithicNsPerOp = median(monoNs)
		lvl.Overhead = lvl.SegmentedNsPerOp/lvl.MonolithicNsPerOp - 1
		fmt.Fprintf(os.Stderr, "S=%d median: segmented %.0f ns/op, monolithic %.0f ns/op, overhead %+.1f%%\n",
			s, lvl.SegmentedNsPerOp, lvl.MonolithicNsPerOp, 100*lvl.Overhead)
		rep.Levels = append(rep.Levels, lvl)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
}

// mmapPair is one repetition of the mapped-vs-heap probe A/B.
type mmapPair struct {
	MappedNsPerOp float64 `json:"mapped_ns_per_op"`
	HeapNsPerOp   float64 `json:"heap_ns_per_op"`
}

// mmapLevel is one segment count's result. Overhead is the fractional
// slowdown of the mapped scan over the heap one (0.02 = 2% slower);
// with the page cache warm both sides stream the same bytes, so the
// gap is the price of file-backed pages (and must stay small for the
// mapped tier to be the default for big cold libraries).
type mmapLevel struct {
	Segments      int        `json:"segments"`
	FileBytes     int64      `json:"file_bytes"`
	Reps          []mmapPair `json:"reps"`
	MappedNsPerOp float64    `json:"median_mapped_ns_per_op"`
	HeapNsPerOp   float64    `json:"median_heap_ns_per_op"`
	Overhead      float64    `json:"overhead"`
}

type mmapReport struct {
	Benchmark  string      `json:"benchmark"`
	Dim        int         `json:"dim"`
	Window     int         `json:"window"`
	Capacity   int         `json:"capacity"`
	Buckets    int         `json:"buckets"`
	Queries    int         `json:"queries"`
	GoVersion  string      `json:"go_version"`
	GOARCH     string      `json:"goarch"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	SIMD       bool        `json:"simd_kernel"`
	Kernel     string      `json:"kernel"`
	Levels     []mmapLevel `json:"levels"`
}

// runMmap A/B-tests the mmap-backed storage tier. Per level S, one
// S-segment library is saved in the v3 mappable format, then opened
// heap-loaded and arena-mapped; both answer the same probe mix. The
// mapped side is warmed with one pass first so the comparison measures
// steady-state scanning, not first-touch page faults.
func runMmap(buckets int, levels string, reps int, out string) {
	rep := mmapReport{
		Benchmark: "mmap", Dim: dim, Window: window, Capacity: capacity,
		Buckets: buckets, Queries: queries,
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), SIMD: bitvec.AccelAvailable(),
		Kernel: bitvec.Kernel(),
	}
	dir, err := os.MkdirTemp("", "benchprobe-mmap")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	for _, field := range strings.Split(levels, ",") {
		s, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || s <= 0 {
			fmt.Fprintf(os.Stderr, "benchprobe: bad segment count %q\n", field)
			os.Exit(1)
		}
		_, segd, qs, err := buildSegmentedPair(buckets, s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		path := fmt.Sprintf("%s/lib-%d.v3", dir, s)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		if _, err := segd.WriteToV3(f); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		fi, err := os.Stat(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		heapIdx, err := core.OpenLibraryFile(path, core.LoadHeap)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		heap := heapIdx.(*core.Library)
		mappedIdx, err := core.OpenLibraryFile(path, core.MapArena)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		mapped := mappedIdx.(*core.Library)
		if !mapped.Mapped() {
			fmt.Fprintln(os.Stderr, "benchprobe: platform cannot map; -mmap A/B is meaningless here")
			os.Exit(1)
		}
		// Warm pass: fault every mapped arena page in before timing.
		var warm core.Stats
		for _, q := range qs {
			if _, err := mapped.Probe(q, &warm); err != nil {
				fmt.Fprintln(os.Stderr, "benchprobe:", err)
				os.Exit(1)
			}
		}
		lvl := mmapLevel{Segments: s, FileBytes: fi.Size()}
		var mappedNs, heapNs []float64
		for r := 0; r < reps; r++ {
			mp := testing.Benchmark(func(b *testing.B) {
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					if _, err := mapped.Probe(qs[i%len(qs)], &stats); err != nil {
						b.Fatal(err)
					}
				}
			})
			hp := testing.Benchmark(func(b *testing.B) {
				var stats core.Stats
				for i := 0; i < b.N; i++ {
					if _, err := heap.Probe(qs[i%len(qs)], &stats); err != nil {
						b.Fatal(err)
					}
				}
			})
			pair := mmapPair{
				MappedNsPerOp: float64(mp.NsPerOp()),
				HeapNsPerOp:   float64(hp.NsPerOp()),
			}
			lvl.Reps = append(lvl.Reps, pair)
			mappedNs = append(mappedNs, pair.MappedNsPerOp)
			heapNs = append(heapNs, pair.HeapNsPerOp)
			fmt.Fprintf(os.Stderr, "S=%d rep %d/%d: mapped %.0f ns/op, heap %.0f ns/op\n",
				s, r+1, reps, pair.MappedNsPerOp, pair.HeapNsPerOp)
		}
		lvl.MappedNsPerOp = median(mappedNs)
		lvl.HeapNsPerOp = median(heapNs)
		lvl.Overhead = lvl.MappedNsPerOp/lvl.HeapNsPerOp - 1
		fmt.Fprintf(os.Stderr, "S=%d median: mapped %.0f ns/op, heap %.0f ns/op, overhead %+.1f%%\n",
			s, lvl.MappedNsPerOp, lvl.HeapNsPerOp, 100*lvl.Overhead)
		rep.Levels = append(rep.Levels, lvl)
		if err := mapped.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
		_ = heap.Close()
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			fmt.Fprintln(os.Stderr, "benchprobe:", err)
			os.Exit(1)
		}
	} else if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchprobe:", err)
		os.Exit(1)
	}
}

// buildSegmentedPair builds the two sides of one segment level: a
// monolithic library and an S-segment library over the same S
// references, plus the shared query mix (3:1 absent to present,
// present queries drawn round-robin across the references).
func buildSegmentedPair(buckets, S int) (mono, segd *core.Library, qs []*hdc.HV, err error) {
	if buckets%S != 0 {
		return nil, nil, nil, fmt.Errorf("segment count %d does not divide %d buckets", S, buckets)
	}
	p := core.Params{Dim: dim, Window: window, Stride: 1, Capacity: capacity,
		Approx: true, Sealed: true, MutTolerance: 2, Seed: 42}
	src := rng.New(4242)
	refs := make([]genome.Record, S)
	for i := range refs {
		// (buckets/S)*capacity windows per reference: every reference
		// fills whole buckets, so monolithic and segmented bucket
		// vectors are identical content in the same order.
		refs[i] = genome.Record{
			ID:  fmt.Sprintf("bench-%d", i),
			Seq: genome.Random((buckets/S)*capacity+window-1, src),
		}
	}
	if mono, err = core.NewLibrary(p); err != nil {
		return nil, nil, nil, err
	}
	for _, rec := range refs {
		if err = mono.Add(rec); err != nil {
			return nil, nil, nil, err
		}
	}
	mono.Freeze()
	if segd, err = core.NewLibrary(p); err != nil {
		return nil, nil, nil, err
	}
	if err = segd.Add(refs[0]); err != nil {
		return nil, nil, nil, err
	}
	segd.Freeze()
	segd.SetSealThreshold(1)
	for _, rec := range refs[1:] {
		if err = segd.Add(rec); err != nil {
			return nil, nil, nil, err
		}
	}
	if mono.NumSegments() != 1 || segd.NumSegments() != S {
		return nil, nil, nil, fmt.Errorf("built %d/%d segments, want 1/%d",
			mono.NumSegments(), segd.NumSegments(), S)
	}
	if mono.NumBuckets() != buckets || segd.NumBuckets() != buckets {
		return nil, nil, nil, fmt.Errorf("built %d/%d buckets, want %d",
			mono.NumBuckets(), segd.NumBuckets(), buckets)
	}
	qsrc := rng.New(24242)
	for i := 0; i < queries; i++ {
		var q *genome.Sequence
		if i%4 == 0 {
			ref := refs[i%len(refs)].Seq
			off := qsrc.Intn(ref.Len() - window)
			q = ref.Slice(off, off+window)
		} else {
			q = genome.Random(window, qsrc)
		}
		qs = append(qs, mono.Encoder().EncodeWindowApprox(q, 0))
	}
	return mono, segd, qs, nil
}

// buildLibrary builds the frozen benchmark library and its query mix
// (3:1 absent to present, like a read-mapping workload where most
// probes miss everywhere).
func buildLibrary(buckets int) (*core.Library, []*hdc.HV, error) {
	p := core.Params{Dim: dim, Window: window, Stride: 1, Capacity: capacity,
		Approx: true, Sealed: true, MutTolerance: 2, Seed: 42}
	lib, err := core.NewLibrary(p)
	if err != nil {
		return nil, nil, err
	}
	src := rng.New(4242)
	ref := genome.Random(buckets*capacity+window-1, src)
	if err := lib.Add(genome.Record{ID: "bench", Seq: ref}); err != nil {
		return nil, nil, err
	}
	lib.Freeze()
	if lib.NumBuckets() != buckets {
		return nil, nil, fmt.Errorf("built %d buckets, want %d", lib.NumBuckets(), buckets)
	}
	var qs []*hdc.HV
	for i := 0; i < queries; i++ {
		var q *genome.Sequence
		if i%4 == 0 {
			off := src.Intn(ref.Len() - window)
			q = ref.Slice(off, off+window)
		} else {
			q = genome.Random(window, src)
		}
		qs = append(qs, lib.Encoder().EncodeWindowApprox(q, 0))
	}
	return lib, qs, nil
}

// seedProbeBaseline reproduces the seed implementation of Probe
// operation for operation: a serial scan over individually
// heap-allocated per-bucket hypervectors, one HV.Dot per bucket,
// per-iteration stats branches, and an un-presized append.
func seedProbeBaseline(l *core.Library, scattered []*hdc.HV, hv *hdc.HV, stats *core.Stats) []core.Candidate {
	tau := l.Threshold()
	var out []core.Candidate
	for i := range scattered {
		score := float64(scattered[i].Dot(hv))
		if stats != nil {
			stats.BucketProbes++
		}
		if score >= tau {
			out = append(out, core.Candidate{Bucket: i, Score: score, Excess: score - tau})
			if stats != nil {
				stats.CandidateBuckets++
			}
		}
	}
	return out
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// scatterBuckets reproduces the seed's freeze-time heap layout: bucket
// i's sealed vector was allocated the moment bucket i+1 opened, i.e.
// interleaved with the next bucket's live 4·D-byte counter accumulator,
// so consecutive rows landed pages apart rather than back-to-back. The
// accumulators are released after the build, exactly as sealing
// released them, but Go's non-moving collector leaves the rows where
// they were born.
func scatterBuckets(l *core.Library) []*hdc.HV {
	n := l.NumBuckets()
	d := l.Params().Dim
	out := make([]*hdc.HV, n)
	accs := make([][]int32, n)
	for i := range out {
		out[i] = l.BucketVector(i).Clone()
		accs[i] = make([]int32, d)
	}
	for i := range accs {
		accs[i] = nil
	}
	return out
}
