// Command benchcoalesce measures what cross-request query coalescing
// does to served throughput and latency: a closed-loop A/B harness
// runs C concurrent single-query clients against the same frozen
// library, once through the direct Library.Lookup path and once
// through the coalesce.Coalescer admission layer, and records QPS,
// p50/p99 latency, and realized block occupancy per concurrency
// level. `make bench` runs it to refresh BENCH_coalesce.json, the
// checked-in record that batch formation across independent requests
// — not kernel speed — sets the service throughput ceiling.
//
// Closed loop means each client issues its next query the moment the
// previous one returns, so offered load tracks capacity on both
// sides; the comparison is blocks-versus-timeslicing at equal client
// counts. Sides run interleaved per repetition and the report keys
// off medians, for the same shared-machine reasons as benchprobe.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Benchmark geometry: matches benchprobe so the two records describe
// the same library shape.
const (
	dim      = 8192
	window   = 32
	capacity = 16
	queries  = 64
)

type sideStats struct {
	QPS   float64 `json:"qps"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

type levelResult struct {
	Concurrency   int       `json:"concurrency"`
	Direct        sideStats `json:"direct"`
	Coalesced     sideStats `json:"coalesced"`
	Speedup       float64   `json:"throughput_speedup"`
	MeanOccupancy float64   `json:"mean_block_occupancy"`
	Blocks        int64     `json:"blocks_dispatched"`
}

type report struct {
	Benchmark  string        `json:"benchmark"`
	Dim        int           `json:"dim"`
	Window     int           `json:"window"`
	Capacity   int           `json:"capacity"`
	Buckets    int           `json:"buckets"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	SIMD       bool          `json:"simd_kernel"`
	Kernel     string        `json:"kernel"`
	BatchSize  int           `json:"batch_size"`
	FlushTick  string        `json:"flush_tick"`
	Duration   string        `json:"duration_per_rep"`
	Reps       int           `json:"reps"`
	Levels     []levelResult `json:"levels"`
}

func main() {
	buckets := flag.Int("buckets", 1024, "library size in buckets")
	reps := flag.Int("reps", 3, "interleaved repetitions per side and concurrency level")
	dur := flag.Duration("dur", 400*time.Millisecond, "measurement window per repetition")
	conc := flag.String("conc", "1,4,16,64,256", "comma-separated concurrency sweep")
	approx := flag.Bool("approx", false, "use the approximate encoder (encode-bound at D=8192; see buildLibrary)")
	out := flag.String("out", "BENCH_coalesce.json", "output path, or - for stdout")
	flag.Parse()

	levels, err := parseLevels(*conc)
	if err != nil {
		fatal(err)
	}
	lib, pats, err := buildLibrary(*buckets, *approx)
	if err != nil {
		fatal(err)
	}
	rep := report{
		Benchmark:  "coalesce_closed_loop",
		Dim:        dim,
		Window:     window,
		Capacity:   capacity,
		Buckets:    *buckets,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SIMD:       bitvec.AccelAvailable(),
		Kernel:     bitvec.Kernel(),
		BatchSize:  coalesce.DefaultBatchSize,
		FlushTick:  coalesce.DefaultFlushTick.String(),
		Duration:   dur.String(),
		Reps:       *reps,
	}
	for _, c := range levels {
		fmt.Fprintf(os.Stderr, "concurrency %d: ", c)
		var direct, coal []measurement
		var blocks int64
		var occ float64
		for r := 0; r < *reps; r++ {
			direct = append(direct, runClients(lib, nil, c, *dur, pats))
			co, err := coalesce.New(lib, coalesce.Config{}, metrics.NewRegistry())
			if err != nil {
				fatal(err)
			}
			coal = append(coal, runClients(lib, co, c, *dur, pats))
			b, m := co.Occupancy()
			j, d, _ := co.Admissions()
			co.Close()
			blocks += b
			occ += m
			fmt.Fprintf(os.Stderr, ". [queued %d direct %d]", j, d)
		}
		lr := levelResult{
			Concurrency:   c,
			Direct:        median(direct),
			Coalesced:     median(coal),
			Blocks:        blocks / int64(*reps),
			MeanOccupancy: occ / float64(*reps),
		}
		if lr.Direct.QPS > 0 {
			lr.Speedup = lr.Coalesced.QPS / lr.Direct.QPS
		}
		rep.Levels = append(rep.Levels, lr)
		fmt.Fprintf(os.Stderr, " direct %.0f qps, coalesced %.0f qps (%.2fx, occupancy %.2f)\n",
			lr.Direct.QPS, lr.Coalesced.QPS, lr.Speedup, lr.MeanOccupancy)
	}
	if err := write(*out, rep); err != nil {
		fatal(err)
	}
}

// measurement is one repetition of one side at one concurrency level.
type measurement struct {
	qps  float64
	lats []time.Duration // pooled across clients, sorted by quantile()
}

// runClients drives c closed-loop clients for roughly dur. A nil
// coalescer selects the direct path. Each client walks the shared
// pattern pool from its own offset so both sides issue the same query
// mix.
func runClients(lib *core.Library, co *coalesce.Coalescer, c int, dur time.Duration, pats []*genome.Sequence) measurement {
	var wg sync.WaitGroup
	lats := make([][]time.Duration, c)
	ctx := context.Background()
	deadline := time.Now().Add(dur)
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				p := pats[i%len(pats)]
				t0 := time.Now()
				var err error
				if co != nil {
					_, _, err = co.Lookup(ctx, p)
				} else {
					_, _, err = lib.Lookup(p)
				}
				if err != nil {
					fatal(err)
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return measurement{qps: float64(len(all)) / dur.Seconds(), lats: all}
}

// median folds repetitions into one sideStats: median QPS across
// reps, and quantiles over the pooled latency samples.
func median(ms []measurement) sideStats {
	qps := make([]float64, len(ms))
	var all []time.Duration
	for i, m := range ms {
		qps[i] = m.qps
		all = append(all, m.lats...)
	}
	sort.Float64s(qps)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return sideStats{
		QPS:   qps[len(qps)/2],
		P50us: quantile(all, 0.50),
		P99us: quantile(all, 0.99),
	}
}

// quantile reads the q-quantile of sorted latencies in microseconds.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

// buildLibrary builds the benchmark library (benchprobe's bucket
// geometry) and a 3:1 absent:present query-pattern pool. The default
// is the exact encoder: at D=8192 the approximate encoder costs
// ~360µs per window — several times the arena scan — so an approx
// library is encode-bound and per-request encoding, which coalescing
// cannot amortize, hides the blocking win this harness isolates.
func buildLibrary(buckets int, approx bool) (*core.Library, []*genome.Sequence, error) {
	p := core.Params{Dim: dim, Window: window, Stride: 1, Capacity: capacity,
		Approx: approx, Sealed: true, Seed: 42}
	if approx {
		p.MutTolerance = 2
	}
	lib, err := core.NewLibrary(p)
	if err != nil {
		return nil, nil, err
	}
	src := rng.New(4242)
	ref := genome.Random(buckets*capacity+window-1, src)
	if err := lib.Add(genome.Record{ID: "bench", Seq: ref}); err != nil {
		return nil, nil, err
	}
	lib.Freeze()
	if lib.NumBuckets() != buckets {
		return nil, nil, fmt.Errorf("built %d buckets, want %d", lib.NumBuckets(), buckets)
	}
	var pats []*genome.Sequence
	for i := 0; i < queries; i++ {
		if i%4 == 0 {
			off := src.Intn(ref.Len() - window)
			pats = append(pats, ref.Slice(off, off+window))
		} else {
			pats = append(pats, genome.Random(window, src))
		}
	}
	return lib, pats, nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func write(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchcoalesce:", err)
	os.Exit(1)
}
