// Command benchbackend A/B-tests the two index backends behind the
// core.Index interface — the HDC bucketed-hypervector library and the
// COBS-style bit-sliced signature index — on one shared synthetic
// workload. Both sides index the same references and answer the same
// query mix (half windows sampled from the references, half random
// absents), and the report records per backend what the backends
// actually trade against each other: answer quality versus a naive
// exact scan (precision/recall over (ref, offset) pairs), Lookup
// throughput, and serialized v3 size. `make bench` runs it to refresh
// BENCH_backend.json, the checked-in record of the trade-off at the
// suite's default geometry.
//
// Reading the numbers: both backends verify nothing above their probe
// (HDC exact mode decodes bucket membership, COBS re-scans candidate
// references), so recall is the headline fidelity number and precision
// shows each side's false-positive discipline. QPS medians come from
// interleaved testing.Benchmark repetitions, same as the other bench
// commands, because single invocations swing on shared machines.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/cobs"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

const (
	window = 32
	dim    = 8192
)

type backendReport struct {
	Backend    string    `json:"backend"`
	Precision  float64   `json:"precision"`
	Recall     float64   `json:"recall"`
	TruePos    int       `json:"true_positives"`
	FalsePos   int       `json:"false_positives"`
	FalseNeg   int       `json:"false_negatives"`
	RepNsPerOp []float64 `json:"rep_ns_per_op"`
	NsPerOp    float64   `json:"median_ns_per_op"`
	QPS        float64   `json:"qps"`
	IndexBytes int       `json:"index_bytes"`
}

type report struct {
	Benchmark  string          `json:"benchmark"`
	Refs       int             `json:"refs"`
	RefLen     int             `json:"ref_len"`
	Window     int             `json:"window"`
	Dim        int             `json:"hdc_dim"`
	Queries    int             `json:"queries"`
	PresentQ   int             `json:"present_queries"`
	AbsentQ    int             `json:"absent_queries"`
	GoVersion  string          `json:"go_version"`
	GOARCH     string          `json:"goarch"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	SIMD       bool            `json:"simd_kernel"`
	Kernel     string          `json:"kernel"`
	Backends   []backendReport `json:"backends"`
}

func main() {
	nRefs := flag.Int("refs", 24, "number of synthetic references")
	refLen := flag.Int("reflen", 4000, "length of each reference")
	nPresent := flag.Int("present", 48, "queries sampled from the references")
	nAbsent := flag.Int("absent", 48, "random queries (almost surely absent)")
	reps := flag.Int("reps", 5, "interleaved repetitions per backend")
	out := flag.String("out", "BENCH_backend.json", "output path, or - for stdout")
	flag.Parse()

	if err := run(*nRefs, *refLen, *nPresent, *nAbsent, *reps, *out); err != nil {
		fmt.Fprintln(os.Stderr, "benchbackend:", err)
		os.Exit(1)
	}
}

func run(nRefs, refLen, nPresent, nAbsent, reps int, out string) error {
	src := rng.New(0xbac4e4d)
	refs := make([]*genome.Sequence, nRefs)
	recs := make([]genome.Record, nRefs)
	for i := range refs {
		refs[i] = genome.Random(refLen, src)
		recs[i] = genome.Record{ID: fmt.Sprintf("ref%03d", i), Seq: refs[i]}
	}
	queries := makeQueries(refs, nPresent, nAbsent, src)
	truth := make([]map[[2]int]bool, len(queries))
	for i, q := range queries {
		truth[i] = naiveScan(refs, q)
	}

	hdcIdx, err := buildHDC(recs)
	if err != nil {
		return err
	}
	cobsIdx, err := buildCOBS(recs)
	if err != nil {
		return err
	}

	rep := report{
		Benchmark: "backend_ab", Refs: nRefs, RefLen: refLen,
		Window: window, Dim: dim,
		Queries: len(queries), PresentQ: nPresent, AbsentQ: nAbsent,
		GoVersion: runtime.Version(), GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), SIMD: bitvec.AccelAvailable(),
		Kernel: bitvec.Kernel(),
	}
	backends := []struct {
		name string
		idx  core.Index
	}{
		{core.BackendHDC, hdcIdx},
		{"cobs", cobsIdx},
	}
	// Interleave the timing reps across backends so a slow minute on a
	// shared machine cannot land on only one side.
	results := make([]backendReport, len(backends))
	for i, b := range backends {
		br, err := measureAccuracy(b.idx, queries, truth)
		if err != nil {
			return fmt.Errorf("%s: %w", b.name, err)
		}
		br.Backend = b.name
		var buf bytes.Buffer
		if _, err := b.idx.WriteToV3(&buf); err != nil {
			return fmt.Errorf("%s: serialize: %w", b.name, err)
		}
		br.IndexBytes = buf.Len()
		results[i] = br
	}
	for r := 0; r < reps; r++ {
		for i, b := range backends {
			res := testing.Benchmark(func(tb *testing.B) {
				for n := 0; n < tb.N; n++ {
					if _, _, err := b.idx.Lookup(queries[n%len(queries)]); err != nil {
						tb.Fatal(err)
					}
				}
			})
			ns := float64(res.NsPerOp())
			results[i].RepNsPerOp = append(results[i].RepNsPerOp, ns)
			fmt.Fprintf(os.Stderr, "rep %d/%d: %s %.0f ns/op\n", r+1, reps, b.name, ns)
		}
	}
	for i := range results {
		results[i].NsPerOp = median(results[i].RepNsPerOp)
		results[i].QPS = round1(1e9 / results[i].NsPerOp)
	}
	rep.Backends = results

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, b := range rep.Backends {
		fmt.Fprintf(os.Stderr, "%s: precision %.4f recall %.4f, %.0f qps, %d bytes\n",
			b.Backend, b.Precision, b.Recall, b.QPS, b.IndexBytes)
	}
	return nil
}

func buildHDC(recs []genome.Record) (core.Index, error) {
	lib, err := core.NewLibrary(core.Params{Dim: dim, Window: window, Sealed: true, Seed: 0xb10d})
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if err := lib.Add(rec); err != nil {
			return nil, err
		}
	}
	lib.Freeze()
	return lib, nil
}

func buildCOBS(recs []genome.Record) (core.Index, error) {
	x, err := cobs.New(cobs.Params{Window: window})
	if err != nil {
		return nil, err
	}
	for _, rec := range recs {
		if err := x.Add(rec); err != nil {
			return nil, err
		}
	}
	x.Freeze()
	return x, nil
}

// makeQueries samples nPresent windows uniformly from the references
// and draws nAbsent random window-length sequences (absent from the
// references with overwhelming probability at 4^32 possible windows).
func makeQueries(refs []*genome.Sequence, nPresent, nAbsent int, src *rng.Source) []*genome.Sequence {
	qs := make([]*genome.Sequence, 0, nPresent+nAbsent)
	for i := 0; i < nPresent; i++ {
		ref := refs[src.Intn(len(refs))]
		off := src.Intn(ref.Len() - window + 1)
		qs = append(qs, ref.Slice(off, off+window))
	}
	for i := 0; i < nAbsent; i++ {
		qs = append(qs, genome.Random(window, src))
	}
	return qs
}

// naiveScan is the ground truth: the set of (ref, offset) pairs where
// the query occurs exactly.
func naiveScan(refs []*genome.Sequence, q *genome.Sequence) map[[2]int]bool {
	hits := make(map[[2]int]bool)
	for r, seq := range refs {
		for off := 0; ; off++ {
			off = seq.Index(q, off)
			if off < 0 {
				break
			}
			hits[[2]int{r, off}] = true
		}
	}
	return hits
}

// measureAccuracy scores one backend's Lookup answers against the
// ground truth over (ref, offset) pairs, pooled across all queries.
func measureAccuracy(idx core.Index, queries []*genome.Sequence, truth []map[[2]int]bool) (backendReport, error) {
	var br backendReport
	for i, q := range queries {
		matches, _, err := idx.Lookup(q)
		if err != nil {
			return br, err
		}
		got := make(map[[2]int]bool, len(matches))
		for _, m := range matches {
			got[[2]int{m.Ref, m.Off}] = true
		}
		for k := range got {
			if truth[i][k] {
				br.TruePos++
			} else {
				br.FalsePos++
			}
		}
		for k := range truth[i] {
			if !got[k] {
				br.FalseNeg++
			}
		}
	}
	if br.TruePos+br.FalsePos > 0 {
		br.Precision = round4(float64(br.TruePos) / float64(br.TruePos+br.FalsePos))
	}
	if br.TruePos+br.FalseNeg > 0 {
		br.Recall = round4(float64(br.TruePos) / float64(br.TruePos+br.FalseNeg))
	}
	return br, nil
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func round1(x float64) float64 { return float64(int(x*10+0.5)) / 10 }
func round4(x float64) float64 { return float64(int(x*1e4+0.5)) / 1e4 }
