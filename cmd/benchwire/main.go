// Command benchwire measures what the binary wire protocol does to
// served throughput and latency: a closed-loop A/B/C harness runs C
// concurrent single-query clients against the same frozen library
// behind three real transports on loopback —
//
//	http            HTTP/1.1 JSON, coalescing disabled (per-request probes)
//	http_coalesced  HTTP/1.1 JSON through the coalescer
//	wire            the pipelined binary protocol through the coalescer
//
// and records QPS, pooled p50/p99 latency, and the coalescer's
// realized block occupancy per concurrency level. `make bench` runs
// it to refresh BENCH_wire.json, the checked-in record that a
// pipelined persistent transport both cuts per-request overhead and
// feeds the coalescer densely enough to lift the service throughput
// ceiling.
//
// Closed loop means each client issues its next query the moment the
// previous one returns, so offered load tracks capacity on every
// side. The HTTP client pool is sized to the concurrency level
// (MaxIdleConnsPerHost = C) so the JSON sides never pay connection
// churn; the comparison is protocol cost and pipelining, not socket
// setup. Sides run interleaved per repetition with a fresh server
// each time, and the report keys off medians, for the same
// shared-machine reasons as benchprobe and benchcoalesce.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/bitvec"
	"repro/internal/coalesce"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
)

// Benchmark geometry: matches benchprobe and benchcoalesce so the
// records describe the same library shape.
const (
	dim      = 8192
	window   = 32
	capacity = 16
	queries  = 64
)

type sideStats struct {
	QPS   float64 `json:"qps"`
	P50us float64 `json:"p50_us"`
	P99us float64 `json:"p99_us"`
}

type levelResult struct {
	Concurrency        int       `json:"concurrency"`
	HTTP               sideStats `json:"http"`
	HTTPCoalesced      sideStats `json:"http_coalesced"`
	Wire               sideStats `json:"wire"`
	WireSpeedupVsHTTP  float64   `json:"wire_speedup_vs_http"`
	WireOccupancy      float64   `json:"wire_mean_block_occupancy"`
	HTTPCoalOccupancy  float64   `json:"http_coalesced_mean_block_occupancy"`
	WireClientConns    int       `json:"wire_client_conns"`
	WireP50RatioVsHTTP float64   `json:"wire_p50_ratio_vs_http"`
}

type report struct {
	Benchmark  string        `json:"benchmark"`
	Dim        int           `json:"dim"`
	Window     int           `json:"window"`
	Capacity   int           `json:"capacity"`
	Buckets    int           `json:"buckets"`
	GoVersion  string        `json:"go_version"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	SIMD       bool          `json:"simd_kernel"`
	Kernel     string        `json:"kernel"`
	Duration   string        `json:"duration_per_rep"`
	Reps       int           `json:"reps"`
	Levels     []levelResult `json:"levels"`
}

func main() {
	buckets := flag.Int("buckets", 1024, "library size in buckets")
	reps := flag.Int("reps", 3, "interleaved repetitions per side and concurrency level")
	dur := flag.Duration("dur", 400*time.Millisecond, "measurement window per repetition")
	conc := flag.String("conc", "1,16,64,256", "comma-separated concurrency sweep")
	out := flag.String("out", "BENCH_wire.json", "output path, or - for stdout")
	flag.Parse()

	levels, err := parseLevels(*conc)
	if err != nil {
		fatal(err)
	}
	lib, pats, err := buildLibrary(*buckets)
	if err != nil {
		fatal(err)
	}
	rep := report{
		Benchmark:  "wire_closed_loop",
		Dim:        dim,
		Window:     window,
		Capacity:   capacity,
		Buckets:    *buckets,
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		SIMD:       bitvec.AccelAvailable(),
		Kernel:     bitvec.Kernel(),
		Duration:   dur.String(),
		Reps:       *reps,
	}
	for _, c := range levels {
		fmt.Fprintf(os.Stderr, "concurrency %d: ", c)
		var httpMs, coalMs, wireMs []measurement
		var wireOcc, coalOcc float64
		for r := 0; r < *reps; r++ {
			m, _, err := runHTTPSide(lib, false, c, *dur, pats)
			if err != nil {
				fatal(err)
			}
			httpMs = append(httpMs, m)
			m, occ, err := runHTTPSide(lib, true, c, *dur, pats)
			if err != nil {
				fatal(err)
			}
			coalMs = append(coalMs, m)
			coalOcc += occ
			m, occ, err = runWireSide(lib, c, *dur, pats)
			if err != nil {
				fatal(err)
			}
			wireMs = append(wireMs, m)
			wireOcc += occ
			fmt.Fprintf(os.Stderr, ".")
		}
		lr := levelResult{
			Concurrency:       c,
			HTTP:              median(httpMs),
			HTTPCoalesced:     median(coalMs),
			Wire:              median(wireMs),
			WireOccupancy:     wireOcc / float64(*reps),
			HTTPCoalOccupancy: coalOcc / float64(*reps),
			WireClientConns:   wireConns(c),
		}
		if lr.HTTP.QPS > 0 {
			lr.WireSpeedupVsHTTP = lr.Wire.QPS / lr.HTTP.QPS
		}
		if lr.HTTP.P50us > 0 {
			lr.WireP50RatioVsHTTP = lr.Wire.P50us / lr.HTTP.P50us
		}
		rep.Levels = append(rep.Levels, lr)
		fmt.Fprintf(os.Stderr,
			" http %.0f qps, +coalesce %.0f qps, wire %.0f qps (%.2fx, occupancy %.2f)\n",
			lr.HTTP.QPS, lr.HTTPCoalesced.QPS, lr.Wire.QPS,
			lr.WireSpeedupVsHTTP, lr.WireOccupancy)
	}
	if err := write(*out, rep); err != nil {
		fatal(err)
	}
}

// measurement is one repetition of one side at one concurrency level.
type measurement struct {
	qps  float64
	lats []time.Duration
}

// wireConns sizes the wire client pool: the protocol pipelines, so a
// handful of connections carries any client count.
func wireConns(c int) int {
	n := c / 16
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// occupancyOf reads the coalescer's realized block occupancy off a
// server's registry (the same series /metrics renders).
func occupancyOf(s *server.Server) float64 {
	h := s.Registry().Histogram("biohd_coalesce_block_occupancy",
		"Realized queries per dispatched probe block.",
		metrics.LinearBuckets(1, 1, core.BlockWidth))
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// newServer builds a fresh server; coalesced false pins the direct
// per-request path.
func newServer(lib *core.Library, coalesced bool) (*server.Server, error) {
	cfg := server.DefaultConfig()
	if !coalesced {
		cfg.Coalesce = coalesce.Config{BatchSize: 1}
	}
	return server.New(lib, server.WithConfig(cfg))
}

// runHTTPSide drives c closed-loop JSON clients against a fresh HTTP
// server on loopback.
func runHTTPSide(lib *core.Library, coalesced bool, c int, dur time.Duration, pats []string) (measurement, float64, error) {
	s, err := newServer(lib, coalesced)
	if err != nil {
		return measurement{}, 0, err
	}
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return measurement{}, 0, err
	}
	hs := s.HTTPServer(ln.Addr().String())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	defer func() {
		_ = hs.Close()
		<-errc
	}()
	url := "http://" + ln.Addr().String() + "/v1/search"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        2 * c,
		MaxIdleConnsPerHost: c,
	}}
	defer client.CloseIdleConnections()
	bodies := make([][]byte, len(pats))
	for i, p := range pats {
		b, err := json.Marshal(server.SearchRequest{Pattern: p})
		if err != nil {
			return measurement{}, 0, err
		}
		bodies[i] = b
	}
	m, err := runClients(c, dur, func(i int) error {
		resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("http status %d", resp.StatusCode)
		}
		var sr server.SearchResponse
		return json.NewDecoder(resp.Body).Decode(&sr)
	})
	return m, occupancyOf(s), err
}

// runWireSide drives c closed-loop clients through the pipelined
// binary protocol against a fresh wire server on loopback.
func runWireSide(lib *core.Library, c int, dur time.Duration, pats []string) (measurement, float64, error) {
	s, err := newServer(lib, true)
	if err != nil {
		return measurement{}, 0, err
	}
	defer s.Close()
	ws := wire.NewServer(s.WireBackend(), s.Registry(), wire.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return measurement{}, 0, err
	}
	errc := make(chan error, 1)
	go func() { errc <- ws.Serve(ln) }()
	defer func() {
		_ = ws.Close()
		<-errc
	}()
	cl, err := wire.Dial(ln.Addr().String(), wire.ClientConfig{Conns: wireConns(c)})
	if err != nil {
		return measurement{}, 0, err
	}
	defer cl.Close()
	ctx := context.Background()
	m, err := runClients(c, dur, func(i int) error {
		_, err := cl.Search(ctx, pats[i%len(pats)], false)
		return err
	})
	return m, occupancyOf(s), err
}

// runClients drives c closed-loop clients for roughly dur. Each
// client walks the shared pattern pool from its own offset so every
// side issues the same query mix.
func runClients(c int, dur time.Duration, do func(i int) error) (measurement, error) {
	var wg sync.WaitGroup
	lats := make([][]time.Duration, c)
	errs := make([]error, c)
	deadline := time.Now().Add(dur)
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				t0 := time.Now()
				if err := do(i); err != nil {
					errs[w] = err
					return
				}
				lats[w] = append(lats[w], time.Since(t0))
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return measurement{}, err
		}
	}
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	return measurement{qps: float64(len(all)) / dur.Seconds(), lats: all}, nil
}

// median folds repetitions into one sideStats: median QPS across
// reps, and quantiles over the pooled latency samples.
func median(ms []measurement) sideStats {
	qps := make([]float64, len(ms))
	var all []time.Duration
	for i, m := range ms {
		qps[i] = m.qps
		all = append(all, m.lats...)
	}
	sort.Float64s(qps)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return sideStats{
		QPS:   qps[len(qps)/2],
		P50us: quantile(all, 0.50),
		P99us: quantile(all, 0.99),
	}
}

// quantile reads the q-quantile of sorted latencies in microseconds.
func quantile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return float64(sorted[i]) / float64(time.Microsecond)
}

// buildLibrary builds the benchmark library (benchprobe's bucket
// geometry) and a 3:1 absent:present query-pattern pool, pre-rendered
// as strings since every transport submits text.
func buildLibrary(buckets int) (*core.Library, []string, error) {
	p := core.Params{Dim: dim, Window: window, Stride: 1, Capacity: capacity,
		Sealed: true, Seed: 42}
	lib, err := core.NewLibrary(p)
	if err != nil {
		return nil, nil, err
	}
	src := rng.New(4242)
	ref := genome.Random(buckets*capacity+window-1, src)
	if err := lib.Add(genome.Record{ID: "bench", Seq: ref}); err != nil {
		return nil, nil, err
	}
	lib.Freeze()
	if lib.NumBuckets() != buckets {
		return nil, nil, fmt.Errorf("built %d buckets, want %d", lib.NumBuckets(), buckets)
	}
	var pats []string
	for i := 0; i < queries; i++ {
		if i%4 == 0 {
			off := src.Intn(ref.Len() - window)
			pats = append(pats, ref.Slice(off, off+window).String())
		} else {
			pats = append(pats, genome.Random(window, src).String())
		}
	}
	return lib, pats, nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func write(path string, rep report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchwire:", err)
	os.Exit(1)
}
