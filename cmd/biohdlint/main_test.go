package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestListRules(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errOut.String())
	}
	for _, rule := range []string{"determinism", "purity", "errcheck", "concurrency", "dimsafety", "snapshotsafety"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %q:\n%s", rule, out.String())
		}
	}
}

func TestUnknownRule(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-rules", "nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Fatalf("stderr missing explanation: %s", errOut.String())
	}
}

func TestFindingsFailTheRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fixture lint in -short mode")
	}
	fixture := filepath.Join("..", "..", "internal", "lint", "testdata", "src", "fake")
	var out, errOut bytes.Buffer
	code := run([]string{fixture + "/..."}, &out, &errOut)
	if code != 1 {
		t.Fatalf("fixture exit = %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "[determinism]") {
		t.Errorf("fixture findings missing [determinism]:\n%s", out.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.Contains(line, ".go:") || !strings.Contains(line, ": [") {
			t.Errorf("malformed finding line %q", line)
		}
	}
}
