package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir is the lint package's fake module, reused here so the CLI
// is tested against known findings.
var fixtureDir = filepath.Join("..", "..", "internal", "lint", "testdata", "src", "fake")

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code = run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestListRules(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errOut.String())
	}
	for _, rule := range []string{"determinism", "purity", "errcheck", "concurrency", "dimsafety", "snapshotsafety"} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %q:\n%s", rule, out.String())
		}
	}
}

func TestUnknownRule(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-rules", "nonsense"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown rule exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown rule") {
		t.Fatalf("stderr missing explanation: %s", errOut.String())
	}
}

func TestFindingsFailTheRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fixture lint in -short mode")
	}
	code, out, errOut := runCLI(t, fixtureDir+"/...")
	if code != 1 {
		t.Fatalf("fixture exit = %d, want 1; stderr: %s", code, errOut)
	}
	for _, rule := range []string{"[determinism]", "[hotpath]", "[snapshotatomic]"} {
		if !strings.Contains(out, rule) {
			t.Errorf("fixture findings missing %s:\n%s", rule, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if !strings.Contains(line, ".go:") || !strings.Contains(line, ": [") {
			t.Errorf("malformed finding line %q", line)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fixture lint in -short mode")
	}
	code, out, errOut := runCLI(t, "-json", "-rules", "snapshotatomic", fixtureDir)
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, errOut)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Rule    string `json:"rule"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	seen := 0
	for _, f := range findings {
		if f.Rule == "suppress" {
			// Suppression hygiene reports alongside any rule subset.
			continue
		}
		seen++
		if f.Rule != "snapshotatomic" {
			t.Fatalf("rule subset leaked %q", f.Rule)
		}
		if filepath.IsAbs(f.File) || !strings.HasSuffix(f.File, "pub.go") {
			t.Fatalf("file must be repo-relative, got %q", f.File)
		}
		if f.Line <= 0 || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
	if seen == 0 {
		t.Fatal("want snapshotatomic findings in JSON output")
	}
}

// TestBaselineRatchet records the current findings, then re-runs with
// the baseline: everything is absorbed and the run goes green.
func TestBaselineRatchet(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fixture lint in -short mode")
	}
	bl := filepath.Join(t.TempDir(), "baseline.json")
	code, _, errOut := runCLI(t, "-write-baseline", bl, fixtureDir)
	if code != 0 {
		t.Fatalf("-write-baseline exit = %d, want 0; stderr: %s", code, errOut)
	}
	code, out, errOut := runCLI(t, "-baseline", bl, fixtureDir)
	if code != 0 {
		t.Fatalf("baselined run exit = %d, want 0; stdout:\n%s", code, out)
	}
	if !strings.Contains(errOut, "baseline absorbed") {
		t.Fatalf("stderr missing absorption note: %s", errOut)
	}
}
