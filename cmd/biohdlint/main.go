// Command biohdlint runs BioHD's repo-specific static analyzers over
// the module (see internal/lint for the rule set). It prints one line
// per finding in the form
//
//	file:line: [rule] message
//
// and exits 1 when anything is found, 2 on usage or load errors.
//
// Usage:
//
//	biohdlint [flags] [./...]
//
// The argument is accepted for familiarity with go tooling; the linter
// always analyzes the whole module enclosing the given directory
// (default: the current directory).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("biohdlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: biohdlint [flags] [./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(out, "%-12s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	dir := "."
	if fs.NArg() > 0 {
		// Accept "./...", "./internal/...", or a plain directory; the
		// module root is located from it.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" || dir == "." {
			dir = "."
		}
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(errOut, "biohdlint:", err)
		return 2
	}
	pkgs, err := lint.Load(dir)
	if err != nil {
		fmt.Fprintln(errOut, "biohdlint:", err)
		return 2
	}
	for _, p := range pkgs {
		if p.TypeErr != nil {
			fmt.Fprintf(errOut, "biohdlint: %s: incomplete type information: %v\n",
				p.Path, p.TypeErr)
		}
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "biohdlint: %d finding(s) in %d package(s)\n",
			len(diags), len(pkgs))
		return 1
	}
	return 0
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(spec string) ([]lint.Analyzer, error) {
	all := lint.All()
	if spec == "" {
		return all, nil
	}
	byName := map[string]lint.Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (run -list for the rule set)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
