// Command biohdlint runs BioHD's repo-specific static analyzers over
// the module (see internal/lint for the rule set). It prints one line
// per finding in the form
//
//	file:line: [rule] message
//
// and exits 1 when anything is found, 2 on usage or load errors.
//
// Usage:
//
//	biohdlint [flags] [./...]
//
// The argument is accepted for familiarity with go tooling; the linter
// always analyzes the whole module enclosing the given directory
// (default: the current directory).
//
// -json switches the report to a machine-readable JSON array (one
// object per finding, repo-relative paths) for CI artifacts. -tags
// analyzes the module under additional build tags (e.g. -tags purego
// checks the portable kernel fallbacks). -baseline subtracts a recorded
// finding set so a new rule can be adopted before its debt is paid
// down, and -write-baseline records the current findings as that set;
// see internal/lint/baseline.go for the ratchet workflow.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("biohdlint", flag.ContinueOnError)
	fs.SetOutput(errOut)
	rules := fs.String("rules", "", "comma-separated rule subset to run (default: all)")
	list := fs.Bool("list", false, "list the available rules and exit")
	jsonOut := fs.Bool("json", false, "report findings as a JSON array")
	tags := fs.String("tags", "", "comma-separated build tags to analyze under (e.g. purego)")
	baselinePath := fs.String("baseline", "", "baseline file of tolerated findings to subtract")
	writeBaseline := fs.String("write-baseline", "", "record the current findings to this baseline file and exit")
	fs.Usage = func() {
		fmt.Fprintln(errOut, "usage: biohdlint [flags] [./...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(out, "%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}

	dir := "."
	if fs.NArg() > 0 {
		// Accept "./...", "./internal/...", or a plain directory; the
		// module root is located from it.
		dir = strings.TrimSuffix(fs.Arg(0), "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" || dir == "." {
			dir = "."
		}
	}

	analyzers, err := selectAnalyzers(*rules)
	if err != nil {
		fmt.Fprintln(errOut, "biohdlint:", err)
		return 2
	}
	root, _, err := lint.FindModuleRoot(dir)
	if err != nil {
		fmt.Fprintln(errOut, "biohdlint:", err)
		return 2
	}
	pkgs, err := lint.LoadWithTags(dir, splitTags(*tags))
	if err != nil {
		fmt.Fprintln(errOut, "biohdlint:", err)
		return 2
	}
	for _, p := range pkgs {
		if p.TypeErr != nil {
			fmt.Fprintf(errOut, "biohdlint: %s: incomplete type information: %v\n",
				p.Path, p.TypeErr)
		}
	}
	diags := lint.Run(pkgs, analyzers)

	if *writeBaseline != "" {
		if err := lint.WriteBaseline(*writeBaseline, root, diags); err != nil {
			fmt.Fprintln(errOut, "biohdlint:", err)
			return 2
		}
		fmt.Fprintf(errOut, "biohdlint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		base, err := lint.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(errOut, "biohdlint:", err)
			return 2
		}
		var absorbed int
		diags, absorbed = base.Filter(root, diags)
		if absorbed > 0 {
			fmt.Fprintf(errOut, "biohdlint: baseline absorbed %d finding(s)\n", absorbed)
		}
	}

	if *jsonOut {
		if err := writeJSON(out, root, diags); err != nil {
			fmt.Fprintln(errOut, "biohdlint:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(errOut, "biohdlint: %d finding(s) in %d package(s)\n",
			len(diags), len(pkgs))
		return 1
	}
	return 0
}

// jsonFinding is the machine-readable finding shape: the text format's
// fields plus the line number, with a repo-relative path.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// writeJSON emits the findings as an indented JSON array ([] when
// clean, so the artifact is always valid JSON).
func writeJSON(out io.Writer, root string, diags []lint.Diagnostic) error {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		e := lint.RelEntry(root, d)
		findings = append(findings, jsonFinding{
			File: e.File, Line: d.Pos.Line, Rule: d.Rule, Message: d.Message,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// splitTags parses the -tags flag.
func splitTags(spec string) []string {
	if spec == "" {
		return nil
	}
	var tags []string
	for _, t := range strings.Split(spec, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tags = append(tags, t)
		}
	}
	return tags
}

// selectAnalyzers resolves the -rules flag against the registry.
func selectAnalyzers(spec string) ([]lint.Analyzer, error) {
	all := lint.All()
	if spec == "" {
		return all, nil
	}
	byName := map[string]lint.Analyzer{}
	for _, a := range all {
		byName[a.Name()] = a
	}
	var out []lint.Analyzer
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown rule %q (run -list for the rule set)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
