package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/wire"
)

// cmdWire is a client for the binary wire protocol (serve
// -wire-addr): one-shot searches, classification, stats, and ping,
// with -n issuing that many pipelined copies of the request on one
// connection — the smoke test uses it to drive the coalescer through
// the wire transport and assert all pipelined answers agree.
func cmdWire(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wire", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8651", "wire-protocol server address")
	pattern := fs.String("pattern", "", "pattern to search")
	strands := fs.String("strands", "forward", `strand mode: "forward" or "both"`)
	n := fs.Int("n", 1, "pipelined copies of the search request")
	read := fs.String("classify", "", "read to classify")
	minFrac := fs.Float64("minfrac", 0, "classify minimum support fraction (0 = server default)")
	stats := fs.Bool("stats", false, "fetch library stats")
	ping := fs.Bool("ping", false, "round-trip a PING frame")
	timeout := fs.Duration("timeout", 30*time.Second, "overall deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cl, err := wire.Dial(*addr, wire.ClientConfig{})
	if err != nil {
		return err
	}
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch {
	case *ping:
		if err := cl.Ping(ctx); err != nil {
			return err
		}
		fmt.Fprintln(out, "pong")
		return nil
	case *stats:
		st, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(out, st)
	case *read != "":
		res, err := cl.Classify(ctx, *read, *minFrac)
		if err != nil {
			return err
		}
		return printJSON(out, res)
	case *pattern != "":
		return wireSearch(ctx, out, cl, *pattern, *strands, *n)
	}
	return fmt.Errorf("nothing to do: pass -pattern, -classify, -stats, or -ping")
}

// wireSearch issues n pipelined copies of one search and verifies the
// responses agree before printing the shared answer.
func wireSearch(ctx context.Context, out io.Writer, cl *wire.Client, pattern, strands string, n int) error {
	both := false
	switch strands {
	case "", "forward":
	case "both":
		both = true
	default:
		return fmt.Errorf(`-strands must be "forward" or "both"`)
	}
	if n < 1 {
		n = 1
	}
	results := make([]wire.SearchResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = cl.Search(ctx, pattern, both)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	first, err := json.Marshal(results[0])
	if err != nil {
		return err
	}
	for i := 1; i < n; i++ {
		b, err := json.Marshal(results[i])
		if err != nil {
			return err
		}
		if string(b) != string(first) {
			return fmt.Errorf("pipelined response %d disagrees with response 0", i)
		}
	}
	if n > 1 {
		fmt.Fprintf(out, "%d pipelined responses identical\n", n)
	}
	_, err = fmt.Fprintf(out, "%s\n", first)
	return err
}

// printJSON writes v as one line of JSON, the same marshal the HTTP
// API would answer with.
func printJSON(out io.Writer, v interface{}) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(out, "%s\n", b)
	return err
}
