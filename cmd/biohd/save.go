package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// saveAtomic writes a file via tmp-then-rename so dst is never observed
// half-written, and syncs both the file and its parent directory so the
// rename is durable: File.Sync before the rename guarantees the data
// blocks reach disk before the new name can point at them (rename is
// atomic in the namespace, but a crash between rename and writeback
// would otherwise leave dst pointing at incomplete data), and the
// directory fsync afterwards makes the rename itself survive a crash.
// On any error path the temporary file is removed — an aborted save
// leaves no droppings next to dst.
func saveAtomic(dst string, write func(io.Writer) error) (err error) {
	tmp := dst + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			_ = f.Close()     // double Close after success is harmless
			_ = os.Remove(tmp) // no-op once the rename happened
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, dst); err != nil {
		return err
	}
	return syncDir(filepath.Dir(dst))
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// libFileVersion sniffs the format version of a saved library file
// without loading it.
func libFileVersion(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var head [12]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, fmt.Errorf("%s: not a BioHD library file", path)
	}
	if string(head[:8]) != "BIOHDLIB" {
		return 0, fmt.Errorf("%s: not a BioHD library file", path)
	}
	return int(binary.LittleEndian.Uint32(head[8:12])), nil
}

// cmdConvert rewrites a saved library between format versions —
// principally v1/v2 streams into the mappable v3 layout that
// "serve -mmap" and OpenLibraryFile(…, MapArena) consume zero-copy.
func cmdConvert(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	libFile := fs.String("lib", "", "saved library file to convert (required)")
	output := fs.String("o", "", "output file (required; may equal -lib to rewrite in place)")
	format := fs.String("format", "v3", "output format: v3 (mappable) or v2 (stream)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *libFile == "" || *output == "" {
		return fmt.Errorf("convert requires -lib and -o")
	}
	ver, err := libFileVersion(*libFile)
	if err != nil {
		return err
	}
	f, err := os.Open(*libFile)
	if err != nil {
		return err
	}
	idx, err := core.ReadIndex(f)
	_ = f.Close() // read-only; nothing to flush
	if err != nil {
		return err
	}
	lib, isHDC := idx.(*core.Library)
	var save func(io.Writer) error
	switch *format {
	case "v3":
		save = func(w io.Writer) error { _, err := idx.WriteToV3(w); return err }
	case "v2":
		if !isHDC {
			return fmt.Errorf("-format v2 is the HDC stream format; %s holds a %s library (use v3)",
				*libFile, idx.Describe().Backend)
		}
		save = func(w io.Writer) error { _, err := lib.WriteTo(w); return err }
	default:
		return fmt.Errorf("-format %q must be v3 or v2", *format)
	}
	if err := saveAtomic(*output, save); err != nil {
		return err
	}
	fi, err := os.Stat(*output)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "converted %s (v%d, %s) -> %s (%s, %d bytes): %d refs, %d segments, %d buckets\n",
		*libFile, ver, idx.Describe().Backend, *output, *format, fi.Size(), idx.NumRefs(), idx.NumSegments(), idx.NumBuckets())
	return nil
}
