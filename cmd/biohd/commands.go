package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/accel"
	"repro/internal/coalesce"
	"repro/internal/cobs"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/genome"
	"repro/internal/pim"
	"repro/internal/rng"
	"repro/internal/server"
	"repro/internal/wire"
	"repro/internal/workload"
)

// cmdServe exposes a library over HTTP (see internal/server for the
// API). The library is built from -ref or loaded from -lib.
//
// Lifecycle: the server runs until SIGINT/SIGTERM, then stops accepting
// connections and drains in-flight requests for up to -drain before
// exiting. A clean drain exits 0; overrunning the drain deadline is an
// error.
func cmdServe(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	lf := addLibFlags(fs)
	refFile := fs.String("ref", "", "reference FASTA")
	libFile := fs.String("lib", "", "saved library file (alternative to -ref)")
	mmapLib := fs.Bool("mmap", false, "map a v3 -lib file instead of loading it to the heap (falls back to heap when unsupported)")
	addr := fs.String("addr", "127.0.0.1:8650", "listen address")
	wireAddr := fs.String("wire-addr", "", "binary wire-protocol listen address (empty = HTTP only)")
	wireMaxFrame := fs.Int("wire-max-frame", wire.DefaultMaxFrame, "max wire-protocol frame payload in bytes")
	cfg := server.DefaultConfig()
	fs.DurationVar(&cfg.ReadHeaderTimeout, "header-timeout", cfg.ReadHeaderTimeout, "request header read timeout")
	fs.DurationVar(&cfg.ReadTimeout, "read-timeout", cfg.ReadTimeout, "full request read timeout")
	fs.DurationVar(&cfg.WriteTimeout, "write-timeout", cfg.WriteTimeout, "response write timeout")
	fs.DurationVar(&cfg.IdleTimeout, "idle-timeout", cfg.IdleTimeout, "keep-alive idle connection timeout")
	fs.DurationVar(&cfg.RequestTimeout, "request-timeout", cfg.RequestTimeout, "per-request handler deadline (cancels in-flight batches)")
	coalesceBatch := fs.Int("coalesce-batch", 0, "max queries coalesced into one probe block (0 = block width, 1 = disable coalescing)")
	coalesceFlush := fs.Duration("coalesce-flush", coalesce.DefaultFlushTick, "max time a partial block absorbs fill while workers are busy (0 = disable coalescing)")
	coalesceQueue := fs.Int("coalesce-queue", 0, "coalescing queue depth before requests fall back to the direct path (0 = default)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain deadline after SIGINT/SIGTERM")
	quiet := fs.Bool("quiet", false, "disable per-request logging")
	sealThreshold := fs.Int("seal-threshold", 0, "buckets in the active segment before live ingest seals it (0 = default)")
	compactTrigger := fs.Float64("compact-trigger", 0, "tombstone ratio that auto-compacts a segment after DELETE (0 = manual compaction only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *compactTrigger < 0 || *compactTrigger > 1 {
		return fmt.Errorf("-compact-trigger %v must be in [0, 1]", *compactTrigger)
	}
	var lib core.Index
	var err error
	if *mmapLib {
		if *libFile == "" {
			return fmt.Errorf("-mmap requires -lib (a saved v3 library file)")
		}
		lib, err = core.OpenLibraryFile(*libFile, core.MapArena)
	} else {
		lib, err = loadOrBuild(*refFile, *libFile, lf)
	}
	if err != nil {
		return err
	}
	// Close unmaps a mapped library after in-flight probes drain; for a
	// heap library it is a cheap no-op.
	defer lib.Close()
	if *mmapLib {
		mode := "mapped"
		if !lib.Mapped() {
			mode = "heap fallback (platform cannot map, or the file is not v3)"
		}
		fmt.Fprintf(out, "library load mode: %s\n", mode)
	}
	lib.SetSealThreshold(*sealThreshold)
	lib.SetAutoCompact(*compactTrigger)
	cfg.Coalesce = coalesce.Config{
		BatchSize:  *coalesceBatch,
		FlushTick:  *coalesceFlush,
		QueueDepth: *coalesceQueue,
	}
	if *coalesceFlush == 0 {
		// On the flag, zero means "never wait for a block": disable
		// coalescing (internally, zero selects the default tick and
		// negative disables).
		cfg.Coalesce.FlushTick = -1
	}
	opts := []server.Option{server.WithConfig(cfg)}
	if !*quiet {
		opts = append(opts, server.WithLogger(log.New(out, "", log.LstdFlags)))
	}
	srv, err := server.New(lib, opts...)
	if err != nil {
		return err
	}
	defer srv.Close() // stop the coalescing drain loop after the HTTP drain
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := srv.HTTPServer(*addr)
	// Optional binary wire-protocol listener beside the HTTP server:
	// same backend, same registry, so answers and metrics are shared.
	var ws *wire.Server
	var wln net.Listener
	if *wireAddr != "" {
		ws = wire.NewServer(srv.WireBackend(), srv.Registry(), wire.ServerConfig{
			MaxFrame:       *wireMaxFrame,
			RequestTimeout: cfg.RequestTimeout,
			IdleTimeout:    cfg.IdleTimeout,
		})
		wln, err = net.Listen("tcp", *wireAddr)
		if err != nil {
			_ = ln.Close()
			return err
		}
	}
	fmt.Fprintf(out, "serving %d references (%d buckets) on http://%s (drain %s)\n",
		lib.NumRefs(), lib.NumBuckets(), ln.Addr(), *drain)
	if ws != nil {
		fmt.Fprintf(out, "wire protocol on %s\n", wln.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	servers := 1
	errc := make(chan error, 2)
	go func() { errc <- hs.Serve(ln) }()
	if ws != nil {
		servers = 2
		go func() { errc <- ws.Serve(wln) }()
	}
	select {
	case err := <-errc:
		// A listener failed before any signal arrived; surface it and
		// tear the sibling down.
		_ = hs.Close()
		if ws != nil {
			_ = ws.Close()
		}
		drainServeErrs(errc, servers-1)
		return filterClosed(err)
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process immediately
	fmt.Fprintf(out, "signal received; draining for up to %s\n", *drain)
	sctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	shutdownErr := hs.Shutdown(sctx)
	if ws != nil {
		// The same drain deadline bounds both transports.
		if werr := ws.Shutdown(sctx); shutdownErr == nil {
			shutdownErr = werr
		}
	}
	for i := 0; i < servers; i++ {
		if serveErr := filterClosed(<-errc); serveErr != nil {
			return serveErr
		}
	}
	if shutdownErr != nil {
		return fmt.Errorf("drain deadline exceeded: %w", shutdownErr)
	}
	fmt.Fprintln(out, "shutdown complete")
	return nil
}

// filterClosed drops the sentinel "server closed" errors that mark a
// clean shutdown on either transport.
func filterClosed(err error) error {
	if errors.Is(err, http.ErrServerClosed) || errors.Is(err, wire.ErrServerClosed) {
		return nil
	}
	return err
}

// drainServeErrs discards the remaining serve results after a
// teardown already has its cause.
func drainServeErrs(errc <-chan error, n int) {
	for i := 0; i < n; i++ {
		<-errc
	}
}

// cmdGen generates synthetic datasets as FASTA on stdout or -o.
func cmdGen(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	kind := fs.String("kind", "covid", "dataset kind: covid | random | reads")
	n := fs.Int("n", 16, "number of sequences (covid: variants, random: sequences, reads: reads)")
	length := fs.Int("len", 29903, "sequence length (random: per sequence, reads: read length, covid: ancestor)")
	gc := fs.Float64("gc", 0.5, "GC content for random sequences")
	errRate := fs.Float64("err", 0.005, "sequencing error rate for reads")
	refFile := fs.String("ref", "", "reference FASTA to sample reads from (required for kind=reads)")
	seed := fs.Uint64("seed", 1, "generator seed")
	output := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var recs []genome.Record
	switch *kind {
	case "covid":
		cfg := genome.DefaultVariantDBConfig()
		cfg.NumVariants, cfg.AncestorLen, cfg.Seed = *n, *length, *seed
		db, err := genome.GenerateVariantDB(cfg)
		if err != nil {
			return err
		}
		for _, v := range db.Variants {
			recs = append(recs, v.Record)
		}
	case "random":
		src := rng.New(*seed)
		for i := 0; i < *n; i++ {
			recs = append(recs, genome.Record{
				ID:  fmt.Sprintf("rand-%04d", i),
				Seq: genome.RandomGC(*length, *gc, src),
			})
		}
	case "reads":
		if *refFile == "" {
			return fmt.Errorf("gen -kind=reads requires -ref")
		}
		refs, err := readFASTAFile(*refFile)
		if err != nil {
			return err
		}
		var seqs []*genome.Sequence
		for _, r := range refs {
			seqs = append(seqs, r.Seq)
		}
		reads, err := genome.SampleReads(seqs, genome.ReadSamplerConfig{
			ReadLen: *length, NumReads: *n, ErrorRate: *errRate, Seed: *seed,
		})
		if err != nil {
			return err
		}
		for i, r := range reads {
			recs = append(recs, genome.Record{
				ID:          fmt.Sprintf("read-%05d", i),
				Description: fmt.Sprintf("source=%s offset=%d errors=%d", refs[r.SourceIdx].ID, r.Offset, r.Errors),
				Seq:         r.Seq,
			})
		}
	default:
		return fmt.Errorf("unknown dataset kind %q", *kind)
	}
	var w io.Writer = out
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return genome.WriteFASTA(w, recs, 70)
}

// libFlags declares the shared library-geometry flags.
type libFlags struct {
	dim, window, stride, capacity, tol int
	approx                             bool
	seed                               uint64
	mask                               string
	workers                            int
	backend                            string
}

func addLibFlags(fs *flag.FlagSet) *libFlags {
	var lf libFlags
	fs.IntVar(&lf.dim, "dim", 8192, "hypervector dimension (multiple of 64)")
	fs.IntVar(&lf.window, "window", 32, "window length in bases")
	fs.IntVar(&lf.stride, "stride", 1, "reference window stride")
	fs.IntVar(&lf.capacity, "capacity", 0, "windows per bucket (0 = auto from model)")
	fs.IntVar(&lf.tol, "tol", 0, "substitution tolerance per window (>0 selects approximate mode)")
	fs.BoolVar(&lf.approx, "approx", false, "use the approximate (bundle) encoding")
	fs.Uint64Var(&lf.seed, "seed", 1, "item memory seed")
	fs.StringVar(&lf.mask, "mask", "reject", "ambiguity-code policy for FASTA input: reject | substitute | skip")
	fs.IntVar(&lf.workers, "workers", 1, "parallel encoding workers for library builds")
	fs.StringVar(&lf.backend, "backend", core.BackendHDC, "index backend built from -ref: hdc (hyperdimensional) | cobs (bit-sliced signatures)")
	return &lf
}

func (lf *libFlags) maskPolicy() (genome.MaskPolicy, error) {
	switch lf.mask {
	case "", "reject":
		return genome.MaskReject, nil
	case "substitute":
		return genome.MaskSubstitute, nil
	case "skip":
		return genome.MaskSkip, nil
	default:
		return 0, fmt.Errorf("unknown mask policy %q (reject | substitute | skip)", lf.mask)
	}
}

func (lf *libFlags) params() core.Params {
	approx := lf.approx || lf.tol > 0
	return core.Params{
		Dim: lf.dim, Window: lf.window, Stride: lf.stride, Capacity: lf.capacity,
		Approx: approx, Sealed: true, MutTolerance: lf.tol, Seed: lf.seed,
	}
}

// loadOrBuild returns a frozen index: loaded from libFile when given
// (whatever backend the file is tagged for), else built as an HDC
// library from the FASTA at refFile with the flags' mask policy and
// worker count.
func loadOrBuild(refFile, libFile string, lf *libFlags) (core.Index, error) {
	if libFile != "" {
		f, err := os.Open(libFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return core.ReadIndex(f)
	}
	if refFile == "" {
		return nil, fmt.Errorf("either -ref (FASTA) or -lib (saved library) is required")
	}
	return buildIndexFromFASTA(refFile, lf)
}

// buildIndexFromFASTA builds a frozen index of the backend requested by
// -backend from the FASTA at path.
func buildIndexFromFASTA(path string, lf *libFlags) (core.Index, error) {
	policy, err := lf.maskPolicy()
	if err != nil {
		return nil, err
	}
	switch lf.backend {
	case "", core.BackendHDC:
		return buildFromFASTA(path, lf.params(), policy, lf.workers)
	case cobs.BackendName:
		return buildCOBSFromFASTA(path, cobs.Params{Window: lf.window}, policy)
	default:
		return nil, fmt.Errorf("unknown backend %q (registered: %s)", lf.backend, strings.Join(core.RegisteredBackends(), ", "))
	}
}

// buildCOBSFromFASTA builds a frozen bit-sliced signature index.
func buildCOBSFromFASTA(path string, params cobs.Params, policy genome.MaskPolicy) (*cobs.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	masked, err := genome.ReadFASTAWith(f, policy)
	if err != nil {
		return nil, err
	}
	x, err := cobs.New(params)
	if err != nil {
		return nil, err
	}
	for _, m := range masked {
		if err := x.Add(m.Record); err != nil {
			return nil, err
		}
	}
	x.Freeze()
	return x, nil
}

func buildFromFASTA(path string, params core.Params, policy genome.MaskPolicy, workers int) (*core.Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	masked, err := genome.ReadFASTAWith(f, policy)
	if err != nil {
		return nil, err
	}
	lib, err := core.NewLibrary(params)
	if err != nil {
		return nil, err
	}
	recs := make([]genome.Record, len(masked))
	for i, m := range masked {
		recs[i] = m.Record
	}
	if err := lib.AddConcurrent(recs, workers); err != nil {
		return nil, err
	}
	lib.Freeze()
	if !lib.Frozen() {
		return nil, fmt.Errorf("no references long enough for window %d", params.Window)
	}
	return lib, nil
}

func readFASTAFile(path string) ([]genome.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return genome.ReadFASTA(f)
}

// cmdBuild builds a library, reports its shape and model numbers, and
// optionally saves it for later serving/searching.
func cmdBuild(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("build", flag.ContinueOnError)
	lf := addLibFlags(fs)
	refFile := fs.String("ref", "", "reference FASTA (required)")
	output := fs.String("o", "", "save the built library to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refFile == "" {
		return fmt.Errorf("build requires -ref")
	}
	idx, err := buildIndexFromFASTA(*refFile, lf)
	if err != nil {
		return err
	}
	lib, isHDC := idx.(*core.Library)
	if !isHDC {
		// Non-HDC backends save in the tagged v3 container and report
		// the shared shape numbers.
		if *output != "" {
			err := saveAtomic(*output, func(w io.Writer) error {
				_, err := idx.WriteToV3(w)
				return err
			})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "saved library to %s\n", *output)
		}
		info := idx.Describe()
		fmt.Fprintf(out, "library: %d refs, %d windows, %d columns (%s backend)\n",
			idx.NumRefs(), idx.NumWindows(), idx.NumBuckets(), info.Backend)
		fmt.Fprintf(out, "geometry: window=%d stride=%d mode=exact\n", info.Window, info.Stride)
		fmt.Fprintf(out, "storage: %.1f KiB of bit-sliced signatures\n", float64(idx.MemoryFootprint())/1024)
		return nil
	}
	if *output != "" {
		err := saveAtomic(*output, func(w io.Writer) error {
			_, err := lib.WriteTo(w)
			return err
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "saved library to %s\n", *output)
	}
	p := lib.Params()
	m := lib.Model()
	fmt.Fprintf(out, "library: %d refs, %d windows, %d buckets (capacity %d)\n",
		lib.NumRefs(), lib.NumWindows(), lib.NumBuckets(), p.Capacity)
	fmt.Fprintf(out, "geometry: D=%d window=%d stride=%d mode=%s\n",
		p.Dim, p.Window, p.Stride, map[bool]string{true: "approx", false: "exact"}[p.Approx])
	fmt.Fprintf(out, "storage: %.1f KiB of hypervectors\n", float64(lib.MemoryFootprint())/1024)
	fmt.Fprintf(out, "model: threshold=%.1f noise-sigma=%.1f signal(tol)=%.1f\n",
		lib.Threshold(), m.NoiseSigma(), m.SignalMean(p.MutTolerance))
	if cal, ok := lib.Calibration(); ok {
		fmt.Fprintf(out, "calibration: noise %.1f±%.1f signal %.1f±%.1f tau %.1f\n",
			cal.NoiseMean, cal.NoiseStd, cal.SignalMean, cal.SignalStd, cal.Tau)
	}
	return nil
}

// cmdSearch searches one pattern against references.
func cmdSearch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	lf := addLibFlags(fs)
	refFile := fs.String("ref", "", "reference FASTA")
	libFile := fs.String("lib", "", "saved library file (alternative to -ref)")
	pattern := fs.String("pattern", "", "pattern to search (ACGT letters, required)")
	long := fs.Bool("long", false, "treat the pattern as a long query (windowed voting)")
	minFrac := fs.Float64("minfrac", 0.5, "minimum window-vote fraction for -long")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pattern == "" {
		return fmt.Errorf("search requires -pattern")
	}
	pat, err := genome.FromString(strings.ToUpper(*pattern))
	if err != nil {
		return err
	}
	lib, err := loadOrBuild(*refFile, *libFile, lf)
	if err != nil {
		return err
	}
	if *long {
		ranked, stats, err := lib.LookupLong(pat, *minFrac)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d candidate references (probes=%d)\n", len(ranked), stats.BucketProbes)
		for _, r := range ranked {
			fmt.Fprintf(out, "  %s offset=%d votes=%d/%d (%.0f%%)\n",
				lib.Ref(r.Ref).ID, r.Offset, r.Votes, r.Windows, 100*r.Fraction)
		}
		return nil
	}
	matches, stats, err := lib.Lookup(pat)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%d matches (probes=%d candidates=%d verified=%d)\n",
		len(matches), stats.BucketProbes, stats.CandidateBuckets, stats.WindowsVerified)
	for _, m := range matches {
		fmt.Fprintf(out, "  %s:%d distance=%d\n", lib.Ref(m.Ref).ID, m.Off, m.Distance)
	}
	return nil
}

// cmdClassify maps every read in a FASTA against the references.
func cmdClassify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("classify", flag.ContinueOnError)
	lf := addLibFlags(fs)
	refFile := fs.String("ref", "", "reference FASTA")
	libFile := fs.String("lib", "", "saved library file (alternative to -ref)")
	readsFile := fs.String("reads", "", "reads FASTA (required)")
	minFrac := fs.Float64("minfrac", 0.5, "minimum window-vote fraction")
	bothStrands := fs.Bool("strands", false, "try both read orientations")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *readsFile == "" {
		return fmt.Errorf("classify requires -reads")
	}
	lib, err := loadOrBuild(*refFile, *libFile, lf)
	if err != nil {
		return err
	}
	reads, err := readFASTAFile(*readsFile)
	if err != nil {
		return err
	}
	classified := 0
	for _, r := range reads {
		var best core.RefMatch
		strand := "+"
		if *bothStrands {
			var st core.Strand
			best, st, _, err = lib.ClassifyBothStrands(r.Seq, *minFrac)
			strand = st.String()
		} else {
			best, _, err = lib.Classify(r.Seq, *minFrac)
		}
		if err != nil {
			fmt.Fprintf(out, "%s\tunclassified\n", r.ID)
			continue
		}
		classified++
		fmt.Fprintf(out, "%s\t%s\tstrand=%s\toffset=%d\tsupport=%.0f%%\n",
			r.ID, lib.Ref(best.Ref).ID, strand, best.Offset, 100*best.Fraction)
	}
	fmt.Fprintf(out, "# classified %d/%d reads\n", classified, len(reads))
	return nil
}

// cmdExperiment regenerates paper tables/figures.
func cmdExperiment(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiment", flag.ContinueOnError)
	scale := fs.Float64("scale", 1.0, "dataset scale (1.0 = reference scale)")
	seed := fs.Uint64("seed", 42, "experiment seed")
	asCSV := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	// Accept the experiment ID before or after the flags.
	var id string
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		id, args = args[0], args[1:]
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if id == "" && fs.NArg() == 1 {
		id = fs.Arg(0)
	} else if id == "" || fs.NArg() > 0 {
		return fmt.Errorf("experiment requires exactly one ID (T1..T3, F1..F10, all)")
	}
	cfg := workload.Config{Scale: *scale, Seed: *seed}
	emit := func(res *workload.Result) error {
		if *asCSV {
			return res.WriteCSV(out)
		}
		res.Fprint(out)
		return nil
	}
	if strings.EqualFold(id, "all") {
		for _, e := range workload.All() {
			res, err := e.Run(cfg)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			if err := emit(res); err != nil {
				return err
			}
		}
		return nil
	}
	e, ok := workload.Get(id)
	if !ok {
		return fmt.Errorf("unknown experiment %q", id)
	}
	res, err := e.Run(cfg)
	if err != nil {
		return err
	}
	return emit(res)
}

// cmdPIM simulates a query batch on the crossbar architecture.
func cmdPIM(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pim", flag.ContinueOnError)
	lf := addLibFlags(fs)
	refFile := fs.String("ref", "", "reference FASTA")
	libFile := fs.String("lib", "", "saved library file (alternative to -ref)")
	queries := fs.Int("queries", 64, "number of sampled window queries")
	rows := fs.Int("rows", 1024, "array rows")
	cols := fs.Int("cols", 1024, "array columns")
	arrays := fs.Int("arrays", 4096, "arrays on the chip")
	if err := fs.Parse(args); err != nil {
		return err
	}
	idx, err := loadOrBuild(*refFile, *libFile, lf)
	if err != nil {
		return err
	}
	lib, ok := idx.(*core.Library)
	if !ok {
		return fmt.Errorf("the PIM cost model applies to the hdc backend; this library is %s", idx.Describe().Backend)
	}
	chip := pim.DefaultChipConfig()
	chip.ArrayRows, chip.ArrayCols, chip.NumArrays = *rows, *cols, *arrays
	eng, err := pim.NewEngine(chip, lib)
	if err != nil {
		return err
	}
	src := rng.New(lib.Params().Seed + 1)
	var total pim.Cost
	mode := encoding.ModeExact
	if lib.Params().Approx {
		mode = encoding.ModeApprox
	}
	for i := 0; i < *queries; i++ {
		ri := src.Intn(lib.NumRefs())
		ref := lib.Ref(ri).Seq
		off := src.Intn(ref.Len() - lib.Params().Window + 1)
		hv := lib.Encoder().Encode(ref, off, mode)
		total.Add(eng.EncodeCost(lib.Params().Approx, lib.Params().Window))
		_, c, err := eng.Search(hv)
		if err != nil {
			return err
		}
		total.Add(c)
	}
	sys := accel.DefaultBioHDSystem().Wrap(total.LatencyNs, total.EnergyPj, eng.ArraysUsed())
	q := float64(*queries)
	rep := eng.Report()
	fmt.Fprintf(out, "chip: %d arrays of %dx%d (%d used, %d rows/bucket, %d buckets/array)\n",
		chip.NumArrays, chip.ArrayRows, chip.ArrayCols, rep.ArraysUsed, rep.RowsPerBucket, rep.BucketsPerArr)
	fmt.Fprintf(out, "occupancy: %.1f%% of used arrays' rows, %.3f%% of the chip\n",
		100*rep.RowOccupancy, 100*rep.ChipOccupancy)
	fmt.Fprintf(out, "build: %.3f ms once\n", eng.BuildCost().LatencyMs())
	fmt.Fprintf(out, "search: %.3f µs/query, %.0f queries/s, %.3f µJ/query (system)\n",
		sys.LatencyNs/q/1000, sys.ThroughputQPS(*queries), sys.EnergyPj/q*1e-6)
	fmt.Fprintf(out, "ops/query: xnor=%d popcount=%d broadcast=%d compare=%d\n",
		total.Counts[pim.OpXnor]/int64(q), total.Counts[pim.OpPopcount]/int64(q),
		total.Counts[pim.OpBroadcast]/int64(q), total.Counts[pim.OpCompare]/int64(q))
	return nil
}

// cmdCompact maintains a saved library offline: optionally tombstones
// references by ID, rewrites every segment whose tombstone ratio is at
// least -min-ratio, and saves the result. This is the batch form of the
// serve API's DELETE /v1/refs + POST /v1/compact lifecycle.
func cmdCompact(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("compact", flag.ContinueOnError)
	libFile := fs.String("lib", "", "saved library file (required)")
	output := fs.String("o", "", "output file (default: rewrite -lib in place)")
	remove := fs.String("remove", "", "comma-separated reference IDs to tombstone before compacting")
	minRatio := fs.Float64("min-ratio", 0, "minimum tombstone ratio for a segment to be rewritten")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *libFile == "" {
		return fmt.Errorf("compact requires -lib")
	}
	if *minRatio < 0 || *minRatio > 1 {
		return fmt.Errorf("-min-ratio %v must be in [0, 1]", *minRatio)
	}
	f, err := os.Open(*libFile)
	if err != nil {
		return err
	}
	lib, err := core.ReadIndex(f)
	_ = f.Close() // read-only; nothing to flush
	if err != nil {
		return err
	}
	if *remove != "" {
		for _, id := range strings.Split(*remove, ",") {
			id = strings.TrimSpace(id)
			idx := -1
			for i := 0; i < lib.NumRefs(); i++ {
				if rec := lib.Ref(i); rec.ID == id && rec.Seq != nil {
					idx = i
					break
				}
			}
			if idx < 0 {
				return fmt.Errorf("no live reference %q in %s", id, *libFile)
			}
			if err := lib.Remove(idx); err != nil {
				return err
			}
			fmt.Fprintf(out, "removed %s\n", id)
		}
	}
	before := lib.NumSegments()
	ratio := lib.TombstoneRatio()
	rewritten, err := lib.Compact(*minRatio)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "compacted: %d of %d segments rewritten (tombstone ratio %.3f -> %.3f), %d segments remain\n",
		rewritten, before, ratio, lib.TombstoneRatio(), lib.NumSegments())
	dst := *output
	if dst == "" {
		dst = *libFile
	}
	// Save in the format the input arrived in: a v3 library stays
	// mappable after compaction, a v1/v2 HDC stream stays a stream.
	save := func(w io.Writer) error { _, err := lib.WriteToV3(w); return err }
	if hdc, ok := lib.(*core.Library); ok {
		if ver, err := libFileVersion(*libFile); err == nil && ver < 3 {
			save = func(w io.Writer) error { _, err := hdc.WriteTo(w); return err }
		}
	}
	if err := saveAtomic(dst, save); err != nil {
		return err
	}
	fmt.Fprintf(out, "saved library to %s\n", dst)
	return nil
}
