package main

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

// buildSealedLib builds a sealed-mode library file (the v2 stream
// format) and returns its path.
func buildSealedLib(t *testing.T) string {
	t.Helper()
	refs := genRefs(t)
	libPath := filepath.Join(t.TempDir(), "lib.bhd")
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-o", libPath}, &sb); err != nil {
		t.Fatal(err)
	}
	return libPath
}

func TestSaveAtomicWritesAndSyncs(t *testing.T) {
	dst := filepath.Join(t.TempDir(), "out.bin")
	err := saveAtomic(dst, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(dst)
	if err != nil || string(got) != "payload" {
		t.Fatalf("dst content %q, err %v", got, err)
	}
	if _, err := os.Stat(dst + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temporary file survived a successful save")
	}
}

func TestSaveAtomicErrorLeavesNoTmp(t *testing.T) {
	dir := t.TempDir()
	dst := filepath.Join(dir, "out.bin")
	if err := os.WriteFile(dst, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("writer failed")
	err := saveAtomic(dst, func(w io.Writer) error {
		//lint:ignore errcheck the injected failure is the point
		w.Write([]byte("partial"))
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the writer's error", err)
	}
	// The failed save must leave the old file intact and no droppings.
	if got, _ := os.ReadFile(dst); string(got) != "old" {
		t.Fatalf("dst clobbered: %q", got)
	}
	if _, err := os.Stat(dst + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("temporary file survived the error path")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("unexpected files after failed save: %v", entries)
	}
}

func TestConvertV2ToV3AndSearch(t *testing.T) {
	libPath := buildSealedLib(t)
	v3Path := filepath.Join(t.TempDir(), "lib.v3")
	var sb strings.Builder
	if err := run([]string{"convert", "-lib", libPath, "-o", v3Path, "-format", "v3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "converted") {
		t.Fatalf("no conversion report: %q", sb.String())
	}
	ver, err := libFileVersion(v3Path)
	if err != nil || ver != 3 {
		t.Fatalf("converted file version %d, err %v", ver, err)
	}
	if _, err := os.Stat(v3Path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("convert left its temporary file behind")
	}
	// The converted library must answer searches (via the stream loader).
	var out strings.Builder
	if err := run([]string{"search", "-lib", v3Path, "-pattern", strings.Repeat("ACGT", 8)}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "matches") {
		t.Fatalf("search against converted library: %q", out.String())
	}
	// Round-trip back to a v2 stream.
	v2Path := filepath.Join(t.TempDir(), "back.v2")
	if err := run([]string{"convert", "-lib", v3Path, "-o", v2Path, "-format", "v2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if ver, err := libFileVersion(v2Path); err != nil || ver != 2 {
		t.Fatalf("round-tripped file version %d, err %v", ver, err)
	}
}

func TestConvertRejectsUnsealed(t *testing.T) {
	// The CLI always builds sealed libraries; an unsealed one (raw
	// counters retained) can only arrive from the core API.
	lib, err := core.NewLibrary(core.Params{Dim: 1024, Window: 16, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(300, rng.New(8))}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	libPath := filepath.Join(t.TempDir(), "lib.bhd")
	if err := saveAtomic(libPath, func(w io.Writer) error {
		_, err := lib.WriteTo(w)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	v3Path := filepath.Join(t.TempDir(), "lib.v3")
	if err := run([]string{"convert", "-lib", libPath, "-o", v3Path, "-format", "v3"}, &sb); err == nil {
		t.Fatal("unsealed library converted to v3")
	}
	if _, err := os.Stat(v3Path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed convert left its temporary file behind")
	}
	if _, err := os.Stat(v3Path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed convert created the output file")
	}
}

func TestConvertFlagValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"convert"}, &sb); err == nil {
		t.Fatal("convert without flags accepted")
	}
	libPath := buildSealedLib(t)
	if err := run([]string{"convert", "-lib", libPath, "-o", libPath + ".x", "-format", "v9"}, &sb); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestCompactPreservesV3Format(t *testing.T) {
	libPath := buildSealedLib(t)
	v3Path := filepath.Join(t.TempDir(), "lib.v3")
	var sb strings.Builder
	if err := run([]string{"convert", "-lib", libPath, "-o", v3Path}, &sb); err != nil {
		t.Fatal(err)
	}
	// Compacting a v3 library in place must keep it v3 (and mappable).
	if err := run([]string{"compact", "-lib", v3Path, "-remove", "VAR-0000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if ver, err := libFileVersion(v3Path); err != nil || ver != 3 {
		t.Fatalf("compacted v3 file became version %d, err %v", ver, err)
	}
	// ... and a v2 library stays v2.
	if err := run([]string{"compact", "-lib", libPath, "-remove", "VAR-0000"}, &sb); err != nil {
		t.Fatal(err)
	}
	if ver, err := libFileVersion(libPath); err != nil || ver != 2 {
		t.Fatalf("compacted v2 file became version %d, err %v", ver, err)
	}
}
