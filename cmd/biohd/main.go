// Command biohd is the BioHD genome sequence search platform CLI.
//
// Subcommands:
//
//	gen        generate synthetic datasets (FASTA)
//	build      build a reference library from FASTA and report its shape
//	search     search a pattern against FASTA references
//	classify   classify reads against FASTA references
//	experiment regenerate a paper table/figure (or "all")
//	pim        simulate a search batch on the PIM architecture
//	serve      expose a library over an HTTP JSON API (+ binary wire protocol)
//	wire       query a serve -wire-addr listener over the binary protocol
//	compact    rewrite a saved library's tombstoned segments
//	convert    rewrite a saved library into another format version
//
// Run "biohd <subcommand> -h" for flags.
package main

import (
	"fmt"
	"io"
	"os"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "biohd:", err)
		os.Exit(1)
	}
}

// run dispatches a CLI invocation; it is the testable entry point.
func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		usage(out)
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "gen":
		return cmdGen(args[1:], out)
	case "build":
		return cmdBuild(args[1:], out)
	case "search":
		return cmdSearch(args[1:], out)
	case "classify":
		return cmdClassify(args[1:], out)
	case "experiment":
		return cmdExperiment(args[1:], out)
	case "serve":
		return cmdServe(args[1:], out)
	case "wire":
		return cmdWire(args[1:], out)
	case "pim":
		return cmdPIM(args[1:], out)
	case "compact":
		return cmdCompact(args[1:], out)
	case "convert":
		return cmdConvert(args[1:], out)
	case "help", "-h", "--help":
		usage(out)
		return nil
	default:
		usage(out)
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage(out io.Writer) {
	fmt.Fprint(out, `biohd — genome sequence search with HyperDimensional memorization

usage: biohd <subcommand> [flags]

subcommands:
  gen         generate synthetic datasets (covid | random | reads) as FASTA
  build       build a reference library from FASTA and report its shape
  search      search a pattern against FASTA references
  classify    classify reads (FASTA) against references (FASTA)
  experiment  regenerate a paper table/figure by ID (T1..T3, F1..F10, all)
  pim         simulate a search batch on the crossbar PIM architecture
  serve       expose a library over an HTTP JSON API (+ binary wire protocol via -wire-addr)
  wire        query a serve -wire-addr listener over the binary wire protocol
  compact     rewrite a saved library's tombstoned segments and save it back
  convert     rewrite a saved library into another format version (v2 stream, v3 mappable)
`)
}
