package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// genRefs writes a small covid-like FASTA and returns its path.
func genRefs(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "refs.fa")
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "covid", "-n", "3", "-len", "1200", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunNoArgs(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Fatal("no subcommand accepted")
	}
	if !strings.Contains(sb.String(), "usage:") {
		t.Fatal("usage not printed")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"bogus"}, &sb); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestRunHelp(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"help"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"gen", "build", "search", "classify", "experiment", "pim"} {
		if !strings.Contains(sb.String(), sub) {
			t.Fatalf("help missing %q", sub)
		}
	}
}

func TestGenToStdout(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "random", "-n", "2", "-len", "100"}, &sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), ">"); got != 2 {
		t.Fatalf("%d FASTA records", got)
	}
}

func TestGenBadKind(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "nope"}, &sb); err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestGenReadsRequiresRef(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "reads"}, &sb); err == nil {
		t.Fatal("reads without -ref accepted")
	}
}

func TestBuildReportsLibrary(t *testing.T) {
	refs := genRefs(t)
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-dim", "2048"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"library: 3 refs", "D=2048", "mode=exact", "threshold="} {
		if !strings.Contains(out, want) {
			t.Fatalf("build output missing %q:\n%s", want, out)
		}
	}
}

func TestBuildApproxShowsCalibration(t *testing.T) {
	refs := genRefs(t)
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-tol", "3", "-capacity", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "calibration:") {
		t.Fatalf("approx build missing calibration:\n%s", sb.String())
	}
}

func TestBuildMissingRef(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"build"}, &sb); err == nil {
		t.Fatal("build without -ref accepted")
	}
	if err := run([]string{"build", "-ref", "/nonexistent.fa"}, &sb); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSearchFindsPlantedPattern(t *testing.T) {
	refs := genRefs(t)
	recs, err := readFASTAFile(refs)
	if err != nil {
		t.Fatal(err)
	}
	pat := recs[1].Seq.Slice(200, 232).String()
	var sb strings.Builder
	if err := run([]string{"search", "-ref", refs, "-pattern", pat, "-dim", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), recs[1].ID+":200") {
		t.Fatalf("planted pattern not reported:\n%s", sb.String())
	}
}

func TestSearchLongVoting(t *testing.T) {
	refs := genRefs(t)
	recs, err := readFASTAFile(refs)
	if err != nil {
		t.Fatal(err)
	}
	pat := recs[0].Seq.Slice(100, 420).String()
	var sb strings.Builder
	if err := run([]string{"search", "-ref", refs, "-pattern", pat, "-long", "-dim", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), recs[0].ID+" offset=100") {
		t.Fatalf("long query not mapped:\n%s", sb.String())
	}
}

func TestSearchBadPattern(t *testing.T) {
	refs := genRefs(t)
	var sb strings.Builder
	if err := run([]string{"search", "-ref", refs, "-pattern", "ACGTN"}, &sb); err == nil {
		t.Fatal("invalid pattern accepted")
	}
	if err := run([]string{"search", "-ref", refs}, &sb); err == nil {
		t.Fatal("missing pattern accepted")
	}
}

func TestClassifyEndToEnd(t *testing.T) {
	refs := genRefs(t)
	readsPath := filepath.Join(t.TempDir(), "reads.fa")
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "reads", "-ref", refs, "-n", "4",
		"-len", "160", "-o", readsPath}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	// minfrac 0.4: a read crossing a lineage indel legitimately splits
	// its votes across two alignment diagonals.
	if err := run([]string{"classify", "-ref", refs, "-reads", readsPath,
		"-dim", "4096", "-minfrac", "0.4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# classified 4/4 reads") {
		t.Fatalf("classification incomplete:\n%s", sb.String())
	}
}

func TestExperimentRuns(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"experiment", "T1", "-scale", "0.05"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "== T1:") {
		t.Fatalf("experiment output missing table:\n%s", sb.String())
	}
}

func TestExperimentUnknownID(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"experiment", "Z9"}, &sb); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"experiment"}, &sb); err == nil {
		t.Fatal("missing id accepted")
	}
}

func TestPIMSimulation(t *testing.T) {
	refs := genRefs(t)
	var sb strings.Builder
	if err := run([]string{"pim", "-ref", refs, "-queries", "4", "-dim", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"chip:", "search:", "µs/query", "ops/query"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pim output missing %q:\n%s", want, out)
		}
	}
}

func TestPIMMissingRef(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"pim"}, &sb); err == nil {
		t.Fatal("pim without -ref accepted")
	}
}

func TestGenWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.fa")
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "random", "-n", "1", "-len", "50", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), ">rand-0000") {
		t.Fatalf("file contents: %q", string(data[:20]))
	}
}

func TestBuildSaveAndSearchFromLib(t *testing.T) {
	refs := genRefs(t)
	libPath := filepath.Join(t.TempDir(), "lib.bhd")
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-dim", "4096", "-o", libPath}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "saved library to") {
		t.Fatalf("save not reported:\n%s", sb.String())
	}
	recs, err := readFASTAFile(refs)
	if err != nil {
		t.Fatal(err)
	}
	pat := recs[0].Seq.Slice(50, 82).String()
	sb.Reset()
	if err := run([]string{"search", "-lib", libPath, "-pattern", pat}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), recs[0].ID+":50") {
		t.Fatalf("search from saved library missed:\n%s", sb.String())
	}
}

func TestServeErrorPaths(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"serve"}, &sb); err == nil {
		t.Fatal("serve without inputs accepted")
	}
	if err := run([]string{"serve", "-lib", "/nonexistent.bhd"}, &sb); err == nil {
		t.Fatal("missing library accepted")
	}
	// A taken/invalid address must surface as an error, not a hang.
	refs := genRefs(t)
	if err := run([]string{"serve", "-ref", refs, "-addr", "256.0.0.1:0"}, &sb); err == nil {
		t.Fatal("invalid listen address accepted")
	}
}

func TestBuildMaskSubstitute(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "refs.fa")
	seq := strings.Repeat("ACGT", 30)
	if err := os.WriteFile(path, []byte(">x\n"+seq+"NNNN"+seq+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"build", "-ref", path, "-dim", "2048"}, &sb); err == nil {
		t.Fatal("default policy accepted Ns")
	}
	sb.Reset()
	if err := run([]string{"build", "-ref", path, "-dim", "2048", "-mask", "substitute"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "library: 1 refs") {
		t.Fatalf("masked build failed:\n%s", sb.String())
	}
	if err := run([]string{"build", "-ref", path, "-mask", "bogus"}, &sb); err == nil {
		t.Fatal("bogus mask policy accepted")
	}
}

func TestClassifyBothStrandsFlag(t *testing.T) {
	refs := genRefs(t)
	readsPath := filepath.Join(t.TempDir(), "reads.fa")
	var sb strings.Builder
	if err := run([]string{"gen", "-kind", "reads", "-ref", refs, "-n", "3",
		"-len", "160", "-err", "0", "-o", readsPath}, &sb); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"classify", "-ref", refs, "-reads", readsPath,
		"-dim", "4096", "-minfrac", "0.4", "-strands"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "strand=+") {
		t.Fatalf("strand column missing:\n%s", sb.String())
	}
}

func TestExperimentCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"experiment", "T1", "-scale", "0.05", "-csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "dataset,sequences,total-bases") {
		t.Fatalf("CSV header missing:\n%s", sb.String())
	}
}

func TestPIMReportsOccupancy(t *testing.T) {
	refs := genRefs(t)
	var sb strings.Builder
	if err := run([]string{"pim", "-ref", refs, "-queries", "2", "-dim", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "occupancy:") {
		t.Fatalf("occupancy line missing:\n%s", sb.String())
	}
}

func TestBuildParallelWorkersMatch(t *testing.T) {
	refs := genRefs(t)
	libA := filepath.Join(t.TempDir(), "a.bhd")
	libB := filepath.Join(t.TempDir(), "b.bhd")
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-dim", "2048", "-o", libA}, &sb); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"build", "-ref", refs, "-dim", "2048", "-workers", "4", "-o", libB}, &sb); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(libA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(libB)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("parallel build produced different library bytes")
	}
}

func TestCompactRemovesReference(t *testing.T) {
	refs := genRefs(t)
	lib := filepath.Join(t.TempDir(), "refs.lib")
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-o", lib}, &sb); err != nil {
		t.Fatal(err)
	}
	// The covid generator names its variants VAR-0000, ...
	sb.Reset()
	if err := run([]string{"compact", "-lib", lib, "-remove", "VAR-0000"}, &sb); err != nil {
		t.Fatalf("compact: %v\n%s", err, sb.String())
	}
	out := sb.String()
	if !strings.Contains(out, "removed VAR-0000") || !strings.Contains(out, "segments rewritten") {
		t.Fatalf("compact output missing lifecycle report:\n%s", out)
	}
	if !strings.Contains(out, "saved library to "+lib) {
		t.Fatalf("compact did not rewrite the library in place:\n%s", out)
	}
	// The removed reference is gone from the compacted library; the
	// others still serve searches.
	sb.Reset()
	if err := run([]string{"compact", "-lib", lib, "-remove", "VAR-0000"}, &sb); err == nil {
		t.Fatal("removing an already-removed reference succeeded")
	}
}

func TestCompactValidation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"compact"}, &sb); err == nil {
		t.Fatal("compact without -lib accepted")
	}
	if err := run([]string{"compact", "-lib", "nope.lib", "-min-ratio", "2"}, &sb); err == nil {
		t.Fatal("out-of-range -min-ratio accepted")
	}
}

func TestBuildCOBSBackendSaveAndSearch(t *testing.T) {
	refs := genRefs(t)
	libPath := filepath.Join(t.TempDir(), "lib.cobs")
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-backend", "cobs", "-o", libPath}, &sb); err != nil {
		t.Fatal(err)
	}
	outStr := sb.String()
	if !strings.Contains(outStr, "cobs backend") || !strings.Contains(outStr, "saved library to") {
		t.Fatalf("cobs build output:\n%s", outStr)
	}
	recs, err := readFASTAFile(refs)
	if err != nil {
		t.Fatal(err)
	}
	// Search and classify straight from the saved cobs container: the
	// backend-tagged v3 file dispatches to the bit-sliced loader.
	pat := recs[0].Seq.Slice(50, 82).String()
	sb.Reset()
	if err := run([]string{"search", "-lib", libPath, "-pattern", pat}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), recs[0].ID+":50") {
		t.Fatalf("search from cobs library missed:\n%s", sb.String())
	}
	sb.Reset()
	if err := run([]string{"search", "-lib", libPath, "-pattern", recs[1].Seq.Slice(100, 300).String(), "-long"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), recs[1].ID) {
		t.Fatalf("long search from cobs library missed:\n%s", sb.String())
	}
}

func TestBuildUnknownBackend(t *testing.T) {
	refs := genRefs(t)
	var sb strings.Builder
	err := run([]string{"build", "-ref", refs, "-backend", "btree"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "registered: hdc, cobs") {
		t.Fatalf("unknown backend: %v", err)
	}
}

func TestConvertRejectsCOBSToV2(t *testing.T) {
	refs := genRefs(t)
	dir := t.TempDir()
	libPath := filepath.Join(dir, "lib.cobs")
	var sb strings.Builder
	if err := run([]string{"build", "-ref", refs, "-backend", "cobs", "-o", libPath}, &sb); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"convert", "-lib", libPath, "-o", filepath.Join(dir, "out.bhd"), "-format", "v2"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "cobs") {
		t.Fatalf("v2 conversion of a cobs library: %v", err)
	}
	// v3 -> v3 round-trips fine.
	out3 := filepath.Join(dir, "out.v3")
	sb.Reset()
	if err := run([]string{"convert", "-lib", libPath, "-o", out3, "-format", "v3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "cobs") {
		t.Fatalf("convert output does not name the backend:\n%s", sb.String())
	}
}
