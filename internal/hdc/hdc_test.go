package hdc

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

const testDim = 1024

func TestNewHVDimensionRules(t *testing.T) {
	for _, d := range []int{-64, 0, 63, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHV(%d) did not panic", d)
				}
			}()
			NewHV(d)
		}()
	}
	if h := NewHV(128); h.Dim() != 128 {
		t.Fatalf("Dim = %d", h.Dim())
	}
}

func TestRandomHVQuasiOrthogonal(t *testing.T) {
	src := rng.New(1)
	a, b := RandomHV(testDim, src), RandomHV(testDim, src)
	// |dot| should be within ~5σ = 5√D.
	bound := int(5 * math.Sqrt(testDim))
	if d := a.Dot(b); d > bound || d < -bound {
		t.Fatalf("random pair dot = %d, beyond 5σ bound %d", d, bound)
	}
	if a.Dot(a) != testDim {
		t.Fatalf("self dot = %d, want %d", a.Dot(a), testDim)
	}
	if a.Cosine(a) != 1 {
		t.Fatalf("self cosine = %v", a.Cosine(a))
	}
}

func TestRandomHVDeterministic(t *testing.T) {
	a := RandomHV(testDim, rng.New(7))
	b := RandomHV(testDim, rng.New(7))
	if !a.Equal(b) {
		t.Fatal("same seed produced different hypervectors")
	}
}

func TestBit(t *testing.T) {
	h := NewHV(64)
	if h.Bit(0) != -1 {
		t.Fatal("zero vector bit should read -1")
	}
	h.Bits().Set(5)
	if h.Bit(5) != 1 {
		t.Fatal("set bit should read +1")
	}
}

func TestBindSelfInverse(t *testing.T) {
	src := rng.New(2)
	a, b := RandomHV(testDim, src), RandomHV(testDim, src)
	bound, recovered := NewHV(testDim), NewHV(testDim)
	bound.Bind(a, b)
	recovered.Bind(bound, b)
	if !recovered.Equal(a) {
		t.Fatal("Bind is not self-inverse")
	}
}

func TestBindDissimilarToOperands(t *testing.T) {
	src := rng.New(3)
	a, b := RandomHV(testDim, src), RandomHV(testDim, src)
	bound := NewHV(testDim)
	bound.Bind(a, b)
	limit := int(6 * math.Sqrt(testDim))
	if d := bound.Dot(a); d > limit || d < -limit {
		t.Fatalf("bind similar to operand a: dot=%d", d)
	}
	if d := bound.Dot(b); d > limit || d < -limit {
		t.Fatalf("bind similar to operand b: dot=%d", d)
	}
}

func TestBindPreservesSimilarity(t *testing.T) {
	// dot(a⊙k, b⊙k) == dot(a, b) for any key k.
	src := rng.New(4)
	a, b, k := RandomHV(testDim, src), RandomHV(testDim, src), RandomHV(testDim, src)
	ak, bk := NewHV(testDim), NewHV(testDim)
	ak.Bind(a, k)
	bk.Bind(b, k)
	if ak.Dot(bk) != a.Dot(b) {
		t.Fatalf("binding broke similarity: %d vs %d", ak.Dot(bk), a.Dot(b))
	}
}

func TestPermuteOrthogonalizes(t *testing.T) {
	src := rng.New(5)
	a := RandomHV(testDim, src)
	rotated := NewHV(testDim)
	limit := int(6 * math.Sqrt(testDim))
	for _, k := range []int{1, 2, 10, 100, testDim / 2} {
		rotated.Permute(a, k)
		if d := a.Dot(rotated); d > limit || d < -limit {
			t.Fatalf("rho^%d(a) similar to a: dot=%d", k, d)
		}
	}
}

func TestPermuteInverse(t *testing.T) {
	src := rng.New(6)
	a := RandomHV(testDim, src)
	fwd, back := NewHV(testDim), NewHV(testDim)
	fwd.Permute(a, 17)
	back.Permute(fwd, -17)
	if !back.Equal(a) {
		t.Fatal("rho^-k(rho^k(a)) != a")
	}
}

func TestPermutePreservesDistance(t *testing.T) {
	src := rng.New(7)
	a, b := RandomHV(testDim, src), RandomHV(testDim, src)
	ra, rb := NewHV(testDim), NewHV(testDim)
	ra.Permute(a, 33)
	rb.Permute(b, 33)
	if ra.Hamming(rb) != a.Hamming(b) {
		t.Fatal("permutation changed pairwise distance")
	}
}

func TestBundleSimilarToMembers(t *testing.T) {
	src := rng.New(8)
	members := make([]*HV, 9)
	for i := range members {
		members[i] = RandomHV(testDim, src)
	}
	bundle := Bundle(testDim, 99, members...)
	// Expected dot of a member with the majority of t vectors is
	// ≈ D·sqrt(2/(π t)); with t=9 and D=1024 that is ≈ 271.
	// Noise floor for non-members is ~√D ≈ 32.
	for i, m := range members {
		if d := bundle.Dot(m); d < 150 {
			t.Fatalf("member %d dot with bundle = %d, too low", i, d)
		}
	}
	outsider := RandomHV(testDim, src)
	if d := bundle.Dot(outsider); d > 150 {
		t.Fatalf("outsider dot with bundle = %d, too high", d)
	}
}

func TestAccAddSubRoundTrip(t *testing.T) {
	src := rng.New(9)
	acc := NewAcc(testDim)
	a, b := RandomHV(testDim, src), RandomHV(testDim, src)
	acc.Add(a)
	acc.Add(b)
	acc.Sub(b)
	if acc.N() != 1 {
		t.Fatalf("N = %d, want 1", acc.N())
	}
	sealed := acc.Seal(0)
	if !sealed.Equal(a) {
		t.Fatal("Add/Sub round trip did not recover the single member")
	}
}

func TestAccAddWeighted(t *testing.T) {
	src := rng.New(10)
	a, b := RandomHV(testDim, src), RandomHV(testDim, src)
	acc1, acc2 := NewAcc(testDim), NewAcc(testDim)
	acc1.AddWeighted(a, 3)
	acc1.Add(b)
	for i := 0; i < 3; i++ {
		acc2.Add(a)
	}
	acc2.Add(b)
	if acc1.N() != acc2.N() {
		t.Fatalf("N mismatch %d vs %d", acc1.N(), acc2.N())
	}
	for i := 0; i < testDim; i++ {
		if acc1.Count(i) != acc2.Count(i) {
			t.Fatalf("counter %d mismatch", i)
		}
	}
}

func TestAccReset(t *testing.T) {
	acc := NewAcc(128)
	acc.Add(RandomHV(128, rng.New(11)))
	acc.Reset()
	if acc.N() != 0 {
		t.Fatal("Reset did not zero N")
	}
	for i := 0; i < 128; i++ {
		if acc.Count(i) != 0 {
			t.Fatal("Reset left nonzero counters")
		}
	}
}

func TestSealTieBreakDeterministic(t *testing.T) {
	acc := NewAcc(256) // all counters zero → every dimension ties
	a, b := acc.Seal(42), acc.Seal(42)
	if !a.Equal(b) {
		t.Fatal("tie-break not deterministic for equal seeds")
	}
	c := acc.Seal(43)
	if a.Equal(c) {
		t.Fatal("distinct tie seeds produced identical seal of all-ties")
	}
	// Tie-broken bits should be roughly balanced.
	pc := a.Bits().PopCount()
	if pc < 64 || pc > 192 {
		t.Fatalf("tie-broken popcount %d far from balanced", pc)
	}
}

func TestSealLeavesAccIntact(t *testing.T) {
	src := rng.New(12)
	acc := NewAcc(testDim)
	a := RandomHV(testDim, src)
	acc.Add(a)
	_ = acc.Seal(1)
	if acc.N() != 1 {
		t.Fatal("Seal mutated accumulator")
	}
	if !acc.Seal(1).Equal(a) {
		t.Fatal("second Seal differs")
	}
}

func TestDotAccMatchesSealedForOddCounts(t *testing.T) {
	// With an odd number of members no counter ties, and
	// sign(counts) == sealed bits; DotAcc with the sealed vector must be
	// Σ|counts|.
	src := rng.New(13)
	acc := NewAcc(testDim)
	for i := 0; i < 5; i++ {
		acc.Add(RandomHV(testDim, src))
	}
	sealed := acc.Seal(0)
	var sumAbs int64
	for i := 0; i < testDim; i++ {
		c := int64(acc.Count(i))
		if c < 0 {
			c = -c
		}
		sumAbs += c
	}
	if got := acc.DotAcc(sealed); got != sumAbs {
		t.Fatalf("DotAcc(sealed) = %d, want Σ|counts| = %d", got, sumAbs)
	}
}

func TestDotAccMemberSignal(t *testing.T) {
	// DotAcc of a member with the raw accumulator = D + cross-noise;
	// for an outsider it is pure noise. The gap must be ≈ D.
	src := rng.New(14)
	acc := NewAcc(testDim)
	members := make([]*HV, 7)
	for i := range members {
		members[i] = RandomHV(testDim, src)
		acc.Add(members[i])
	}
	outsider := RandomHV(testDim, src)
	memberDot := acc.DotAcc(members[3])
	outsiderDot := acc.DotAcc(outsider)
	if memberDot < int64(testDim)/2 {
		t.Fatalf("member DotAcc = %d, want ≈ %d", memberDot, testDim)
	}
	if outsiderDot > int64(testDim)/2 {
		t.Fatalf("outsider DotAcc = %d, want ≈ 0", outsiderDot)
	}
}

func TestAccDimensionMismatchPanics(t *testing.T) {
	acc := NewAcc(128)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	acc.Add(NewHV(64))
}

func TestItemMemory(t *testing.T) {
	im := NewItemMemory(testDim, 4, 123)
	if im.Size() != 4 || im.Dim() != testDim {
		t.Fatalf("Size=%d Dim=%d", im.Size(), im.Dim())
	}
	// Symbols are mutually quasi-orthogonal.
	limit := int(6 * math.Sqrt(testDim))
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if d := im.Get(i).Dot(im.Get(j)); d > limit || d < -limit {
				t.Fatalf("symbols %d,%d not quasi-orthogonal: %d", i, j, d)
			}
		}
	}
	// Nearest recovers the exact symbol.
	for s := 0; s < 4; s++ {
		if got, dot := im.Nearest(im.Get(s)); got != s || dot != testDim {
			t.Fatalf("Nearest(%d) = %d (dot %d)", s, got, dot)
		}
	}
}

func TestItemMemoryDeterministic(t *testing.T) {
	a := NewItemMemory(256, 4, 5)
	b := NewItemMemory(256, 4, 5)
	for s := 0; s < 4; s++ {
		if !a.Get(s).Equal(b.Get(s)) {
			t.Fatal("item memories with equal seeds differ")
		}
	}
}

func TestItemMemoryOutOfRangePanics(t *testing.T) {
	im := NewItemMemory(64, 4, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Get(4) did not panic")
		}
	}()
	im.Get(4)
}

// Property: binding commutes and is associative.
func TestQuickBindAlgebra(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.New(seed)
		d := 256
		a, b, c := RandomHV(d, src), RandomHV(d, src), RandomHV(d, src)
		ab, ba := NewHV(d), NewHV(d)
		ab.Bind(a, b)
		ba.Bind(b, a)
		if !ab.Equal(ba) {
			return false
		}
		l, r, t1, t2 := NewHV(d), NewHV(d), NewHV(d), NewHV(d)
		t1.Bind(a, b)
		l.Bind(t1, c)
		t2.Bind(b, c)
		r.Bind(a, t2)
		return l.Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: permutation distributes over binding:
// rho(a ⊙ b) == rho(a) ⊙ rho(b).
func TestQuickPermuteDistributesOverBind(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		src := rng.New(seed)
		d := 256
		k := int(kRaw)
		a, b := RandomHV(d, src), RandomHV(d, src)
		lhs, rhs, ab, ra, rb := NewHV(d), NewHV(d), NewHV(d), NewHV(d), NewHV(d)
		ab.Bind(a, b)
		lhs.Permute(ab, k)
		ra.Permute(a, k)
		rb.Permute(b, k)
		rhs.Bind(ra, rb)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBind4096(b *testing.B) {
	src := rng.New(1)
	x, y := RandomHV(4096, src), RandomHV(4096, src)
	out := NewHV(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out.Bind(x, y)
	}
}

func BenchmarkAccAdd4096(b *testing.B) {
	src := rng.New(2)
	x := RandomHV(4096, src)
	acc := NewAcc(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.Add(x)
	}
}

func BenchmarkDot8192(b *testing.B) {
	src := rng.New(3)
	x, y := RandomHV(8192, src), RandomHV(8192, src)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Dot(y)
	}
}

func TestHVCloneAndAccessors(t *testing.T) {
	src := rng.New(30)
	a := RandomHV(256, src)
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone differs")
	}
	b.Bits().Flip(0)
	if a.Equal(b) {
		t.Fatal("clone shares storage")
	}
	acc := NewAcc(256)
	if acc.Dim() != 256 {
		t.Fatalf("Acc.Dim = %d", acc.Dim())
	}
}

func TestNewAccBadDimensionPanics(t *testing.T) {
	for _, d := range []int{0, -64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewAcc(%d) did not panic", d)
				}
			}()
			NewAcc(d)
		}()
	}
}

func TestAccCountsRoundTrip(t *testing.T) {
	src := rng.New(31)
	acc := NewAcc(128)
	for i := 0; i < 5; i++ {
		acc.Add(RandomHV(128, src))
	}
	back := AccFromCounts(acc.Counts(), acc.N())
	if back.N() != acc.N() {
		t.Fatalf("N %d vs %d", back.N(), acc.N())
	}
	for i := 0; i < 128; i++ {
		if back.Count(i) != acc.Count(i) {
			t.Fatalf("counter %d differs", i)
		}
	}
	// The copy is independent.
	back.Add(RandomHV(128, src))
	if back.N() == acc.N() {
		t.Fatal("AccFromCounts shares state")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("misaligned counters accepted")
			}
		}()
		AccFromCounts(make([]int32, 100), 1)
	}()
}

func TestHVFromWordsRoundTrip(t *testing.T) {
	src := rng.New(32)
	a := RandomHV(256, src)
	b := HVFromWords(a.Bits().Words(), 256)
	if !a.Equal(b) {
		t.Fatal("HVFromWords differs")
	}
	b.Bits().Flip(3)
	if a.Equal(b) {
		t.Fatal("HVFromWords shares storage")
	}
	for _, tc := range []struct {
		words int
		d     int
	}{{1, 128}, {2, 100}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("HVFromWords(%d words, d=%d) did not panic", tc.words, tc.d)
				}
			}()
			HVFromWords(make([]uint64, tc.words), tc.d)
		}()
	}
}
