// Package hdc implements the Hyper-Dimensional Computing core used by
// BioHD: high-dimensional binary hypervectors with bipolar semantics,
// the three HDC primitives (binding, permutation, bundling), and
// similarity measurement.
//
// # Representation
//
// A hypervector is a D-dimensional bipolar vector with components ±1,
// stored packed: bit 1 encodes +1, bit 0 encodes −1. Under this packing
// the bipolar element-wise product is XNOR and the dot product is
// D − 2·hamming, both word-parallel operations — which is exactly what
// makes the operations implementable row-parallel in a crossbar memory.
//
// # Primitives
//
//   - Bind (XNOR): associates two hypervectors. Self-inverse, similarity
//     preserving in each operand, and dissimilar to both inputs.
//   - Permute (rotation ρ^k): encodes sequence position. A rotation is a
//     bijection that preserves pairwise similarity while making ρ^i(x)
//     quasi-orthogonal to ρ^j(x) for i ≠ j.
//   - Bundle (majority): superposes a set of hypervectors into one that
//     is similar to every member. Bundling happens in an Acc (counter
//     accumulator) and is finalized by Seal.
package hdc

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/rng"
)

// HV is a D-dimensional bipolar hypervector in packed binary form.
// The zero value is unusable; construct with NewHV or RandomHV.
type HV struct {
	bits *bitvec.Vector
}

// NewHV returns the all −1 hypervector of dimension d (all bits zero).
// It panics if d is not a positive multiple of 64; BioHD dimensions are
// always word-aligned so that every kernel stays word-parallel.
func NewHV(d int) *HV {
	if d <= 0 || d%64 != 0 {
		panic(fmt.Sprintf("hdc: dimension %d must be a positive multiple of 64", d))
	}
	return &HV{bits: bitvec.New(d)}
}

// RandomHV returns a uniformly random hypervector of dimension d drawn
// from src. Random hypervectors are the atomic symbols of an HDC system;
// any two independent draws are quasi-orthogonal with overwhelming
// probability (dot ≈ N(0, D)).
func RandomHV(d int, src *rng.Source) *HV {
	h := NewHV(d)
	words := h.bits.Words()
	for i := range words {
		words[i] = src.Uint64()
	}
	return h
}

// Dim returns the dimensionality D.
func (h *HV) Dim() int { return h.bits.Len() }

// Bits exposes the packed representation (shared, not copied).
func (h *HV) Bits() *bitvec.Vector { return h.bits }

// Words exposes the packed words directly (shared, not copied) — the
// row format of the frozen-library arena kernels.
func (h *HV) Words() []uint64 { return h.bits.Words() }

// Clone returns an independent copy.
func (h *HV) Clone() *HV { return &HV{bits: h.bits.Clone()} }

// CopyFrom overwrites h with the contents of o, reusing h's storage.
// Dimensions must match.
func (h *HV) CopyFrom(o *HV) { h.bits.CopyFrom(o.bits) }

// HVFromArenaRow wraps an arena row (exactly d/64 packed words) as a
// hypervector WITHOUT copying: the returned HV aliases words, so
// mutating either afterwards corrupts the other. It panics on a
// misaligned dimension or a row of the wrong length; unlike
// HVFromWords it insists on the exact length so that a frozen arena
// row cannot silently carry trailing garbage.
func HVFromArenaRow(words []uint64, d int) *HV {
	if d <= 0 || d%64 != 0 || len(words) != d/64 {
		panic(fmt.Sprintf("hdc: arena row of %d words cannot view dimension %d", len(words), d))
	}
	return &HV{bits: bitvec.FromWords(words, d)}
}

// Equal reports whether h and o are identical hypervectors.
func (h *HV) Equal(o *HV) bool { return h.bits.Equal(o.bits) }

// Bit returns the bipolar component at index i: +1 or −1.
func (h *HV) Bit(i int) int {
	if h.bits.Get(i) {
		return 1
	}
	return -1
}

// Bind stores the bipolar product a ⊙ b (packed XNOR) into h.
// Bind is self-inverse: Bind(Bind(a,b), b) == a.
func (h *HV) Bind(a, b *HV) { h.bits.Xnor(a.bits, b.bits) }

// Permute stores ρ^k(a) into h — a circular rotation by k positions.
// h must not alias a unless k ≡ 0 (mod D).
func (h *HV) Permute(a *HV, k int) { h.bits.RotateLeft(a.bits, k) }

// Dot returns the bipolar dot product ⟨h, o⟩ ∈ [−D, D].
// For independent random hypervectors the result is ≈ N(0, D); for equal
// vectors it is exactly D.
func (h *HV) Dot(o *HV) int { return h.bits.Dot(o.bits) }

// Cosine returns the normalized similarity ⟨h,o⟩ / D ∈ [−1, 1]. Bipolar
// hypervectors all have norm √D, so this is the true cosine similarity.
func (h *HV) Cosine(o *HV) float64 {
	return float64(h.Dot(o)) / float64(h.Dim())
}

// Hamming returns the number of disagreeing components.
func (h *HV) Hamming(o *HV) int { return h.bits.HammingDistance(o.bits) }

// Acc is a bundling accumulator: per-dimension signed counters that sum
// bipolar hypervectors. Bundling many vectors and taking the element-wise
// sign (Seal) yields a hypervector similar to every bundled member —
// HDC's superposition memory, and the representation of a BioHD
// reference-library vector while it is being built.
type Acc struct {
	counts []int32
	n      int
}

// NewAcc returns an empty accumulator of dimension d (same dimension
// rules as NewHV).
func NewAcc(d int) *Acc {
	if d <= 0 || d%64 != 0 {
		panic(fmt.Sprintf("hdc: dimension %d must be a positive multiple of 64", d))
	}
	return &Acc{counts: make([]int32, d)}
}

// Dim returns the dimensionality D.
func (a *Acc) Dim() int { return len(a.counts) }

// N returns the number of hypervectors added minus those subtracted.
func (a *Acc) N() int { return a.n }

// Add folds h into the accumulator (+1 for bit 1, −1 for bit 0).
func (a *Acc) Add(h *HV) {
	a.mustMatch(h)
	words := h.bits.Words()
	for w, word := range words {
		// Fixed-size window lets the compiler drop bounds checks;
		// branchless sign accumulation moves each counter ±1.
		c := a.counts[w*64 : w*64+64 : w*64+64]
		for b := 0; b < 64; b++ {
			c[b] += int32(word>>uint(b)&1)<<1 - 1
		}
	}
	a.n++
}

// Sub removes a previously added hypervector from the superposition.
// BioHD uses this for incremental library updates (deleting a reference
// sequence without rebuilding the library).
func (a *Acc) Sub(h *HV) {
	a.mustMatch(h)
	words := h.bits.Words()
	for w, word := range words {
		c := a.counts[w*64 : w*64+64 : w*64+64]
		for b := 0; b < 64; b++ {
			c[b] -= int32(word>>uint(b)&1)<<1 - 1
		}
	}
	a.n--
}

// AddWeighted folds h in with integer weight w ≥ 1 (w copies at once).
func (a *Acc) AddWeighted(h *HV, weight int32) {
	a.mustMatch(h)
	words := h.bits.Words()
	for w, word := range words {
		c := a.counts[w*64 : w*64+64 : w*64+64]
		for b := 0; b < 64; b++ {
			c[b] += (int32(word>>uint(b)&1)<<1 - 1) * weight
		}
	}
	a.n += int(weight)
}

// Count returns the raw counter at dimension i.
func (a *Acc) Count(i int) int32 { return a.counts[i] }

// Counts exposes the raw counter slice (shared; read-only). For
// serialization.
func (a *Acc) Counts() []int32 { return a.counts }

// AccFromCounts reconstructs an accumulator from raw counters and the
// recorded member count n (the counters are copied). It panics on a
// misaligned dimension.
func AccFromCounts(counts []int32, n int) *Acc {
	if len(counts) == 0 || len(counts)%64 != 0 {
		panic(fmt.Sprintf("hdc: counter length %d must be a positive multiple of 64", len(counts)))
	}
	c := make([]int32, len(counts))
	copy(c, counts)
	return &Acc{counts: c, n: n}
}

// HVFromWords reconstructs a hypervector of dimension d from packed
// words (copied). It panics if the words cannot hold d bits.
func HVFromWords(words []uint64, d int) *HV {
	if d <= 0 || d%64 != 0 || len(words) < d/64 {
		panic(fmt.Sprintf("hdc: %d words cannot hold dimension %d", len(words), d))
	}
	w := make([]uint64, d/64)
	copy(w, words[:d/64])
	return &HV{bits: bitvec.FromWords(w, d)}
}

// Reset clears the accumulator for reuse.
func (a *Acc) Reset() {
	for i := range a.counts {
		a.counts[i] = 0
	}
	a.n = 0
}

func (a *Acc) mustMatch(h *HV) {
	if h.Dim() != len(a.counts) {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", h.Dim(), len(a.counts)))
	}
}

// Seal binarizes the accumulator by element-wise sign: positive counters
// become +1, negative −1, and exact ties are broken by a deterministic
// pseudo-random stream derived from tieSeed, so sealing is reproducible.
// The accumulator is left intact (Seal may be called repeatedly, e.g.
// after incremental updates).
func (a *Acc) Seal(tieSeed uint64) *HV {
	h := NewHV(len(a.counts))
	tie := rng.New(tieSeed)
	for i, c := range a.counts {
		switch {
		case c > 0:
			h.bits.Set(i)
		case c == 0:
			if tie.Bool() {
				h.bits.Set(i)
			}
		}
	}
	return h
}

// DotAcc returns the dot product of the raw (unsealed) accumulator with a
// bipolar hypervector: Σ_i counts[i] · h_i. BioHD's exact-match mode
// checks queries against unsealed counters, which removes the
// binarization noise term from the statistical model.
func (a *Acc) DotAcc(h *HV) int64 {
	a.mustMatch(h)
	var dot int64
	words := h.bits.Words()
	for w, word := range words {
		c := a.counts[w*64 : w*64+64 : w*64+64]
		for b := 0; b < 64; b++ {
			dot += int64(c[b]) * (int64(word>>uint(b)&1)<<1 - 1)
		}
	}
	return dot
}

// Bundle is a convenience that accumulates hs and seals in one step.
func Bundle(d int, tieSeed uint64, hs ...*HV) *HV {
	acc := NewAcc(d)
	for _, h := range hs {
		acc.Add(h)
	}
	return acc.Seal(tieSeed)
}

// ItemMemory maps small integer symbols (e.g. DNA bases 0..3) to fixed
// random hypervectors. The mapping is fully determined by (dimension,
// seed), so encoders on different machines agree bit-for-bit.
type ItemMemory struct {
	d     int
	items []*HV
}

// NewItemMemory creates an item memory with n symbols of dimension d,
// seeded deterministically from seed.
func NewItemMemory(d, n int, seed uint64) *ItemMemory {
	src := rng.New(seed)
	im := &ItemMemory{d: d, items: make([]*HV, n)}
	for i := range im.items {
		im.items[i] = RandomHV(d, src)
	}
	return im
}

// Dim returns the hypervector dimensionality.
func (im *ItemMemory) Dim() int { return im.d }

// Size returns the number of symbols.
func (im *ItemMemory) Size() int { return len(im.items) }

// Get returns the hypervector for symbol s. The returned vector is shared
// and must not be mutated. It panics if s is out of range.
func (im *ItemMemory) Get(s int) *HV {
	if s < 0 || s >= len(im.items) {
		panic(fmt.Sprintf("hdc: symbol %d out of range [0,%d)", s, len(im.items)))
	}
	return im.items[s]
}

// Nearest returns the symbol whose hypervector has the highest dot
// product with h, together with that dot product — associative recall
// from the item memory.
func (im *ItemMemory) Nearest(h *HV) (symbol, dot int) {
	best, bestDot := -1, -h.Dim()-1
	for s, item := range im.items {
		if d := item.Dot(h); d > bestDot {
			best, bestDot = s, d
		}
	}
	return best, bestDot
}
