// Package stats provides the statistical primitives behind BioHD's
// alignment-quality model: exact and approximate binomial tails, the
// normal distribution and its quantile function, and streaming moment
// accumulators used by the experiment harness.
//
// The quality model reduces to tail probabilities of dot products between
// random hypervectors. A dot product of two independent random bipolar
// D-vectors is 2·Binomial(D, 1/2) − D, so everything here is expressed in
// terms of binomial and normal tails.
package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns P(Z ≤ x) for a standard normal Z.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalTail returns P(Z ≥ x) for a standard normal Z, accurate in the
// far tail where 1−CDF would cancel.
func NormalTail(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalQuantile returns the x with P(Z ≤ x) = p for a standard normal Z.
// It panics unless 0 < p < 1. The implementation is the Acklam rational
// approximation polished by one Halley iteration, giving ~1e-15 relative
// accuracy across the full domain.
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 || math.IsNaN(p) {
		panic(fmt.Sprintf("stats: NormalQuantile domain error: p=%v", p))
	}
	// Acklam's coefficients.
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley polish step against the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// NormalUpperQuantile returns the x with P(Z ≥ x) = p. It is exact in
// the far upper tail where 1−p would round to 1 and NormalQuantile(1−p)
// would lose all precision: by symmetry x = −NormalQuantile(p).
func NormalUpperQuantile(p float64) float64 {
	return -NormalQuantile(p)
}

// LogBinomialCoeff returns ln C(n, k). It panics on invalid arguments.
func LogBinomialCoeff(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: LogBinomialCoeff(%d, %d) out of domain", n, k))
	}
	lg := func(x int) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p).
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogBinomialCoeff(n, k) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// BinomialTail returns P(X ≥ k) for X ~ Binomial(n, p), computed through
// the regularized incomplete beta function: P(X ≥ k) = I_p(k, n−k+1).
func BinomialTail(n int, p float64, k int) float64 {
	switch {
	case k <= 0:
		return 1
	case k > n:
		return 0
	case p <= 0:
		return 0
	case p >= 1:
		return 1
	}
	return RegIncBeta(float64(k), float64(n-k+1), p)
}

// BinomialCDF returns P(X ≤ k) for X ~ Binomial(n, p).
func BinomialCDF(n int, p float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if k >= n {
		return 1
	}
	return 1 - BinomialTail(n, p, k+1)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// using the Lentz continued-fraction expansion. It panics outside the
// domain a, b > 0 and 0 ≤ x ≤ 1.
func RegIncBeta(a, b, x float64) float64 {
	if a <= 0 || b <= 0 || x < 0 || x > 1 || math.IsNaN(x) {
		panic(fmt.Sprintf("stats: RegIncBeta(%v, %v, %v) out of domain", a, b, x))
	}
	if x == 0 {
		return 0
	}
	if x == 1 {
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log1p(-x))
	// Use the symmetry relation where the continued fraction converges
	// fastest: for x < (a+1)/(a+b+2), expand directly, else reflect.
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - math.Exp(lgAB-lgA-lgB+a*math.Log(x)+b*math.Log1p(-x))*
		betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			return h
		}
	}
	return h // converged enough for our tolerances
}

// DotTail returns P(S ≥ s) where S is the bipolar dot product of two
// independent uniform random D-dimensional binary hypervectors.
// S = 2X − D with X ~ Binomial(D, 1/2), so P(S ≥ s) = P(X ≥ ⌈(s+D)/2⌉).
func DotTail(d int, s int) float64 {
	k := (s + d + 1) / 2 // ceil((s+d)/2)
	return BinomialTail(d, 0.5, k)
}

// DotTailNormal is the normal approximation to DotTail: S has mean 0 and
// variance D, so P(S ≥ s) ≈ Q(s/√D). Used when D is large and exact
// binomial evaluation is unnecessary.
func DotTailNormal(d int, s float64) float64 {
	return NormalTail(s / math.Sqrt(float64(d)))
}

// Welford is a streaming mean/variance accumulator (Welford's algorithm),
// numerically stable for long experiment runs.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of samples folded in.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the mean.
func (w *Welford) StdErr() float64 {
	if w.n == 0 {
		return 0
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with successes k out of n at confidence level (1−alpha).
// It is well behaved for small n and proportions near 0 or 1, which is
// exactly the regime of false-positive-rate measurements.
func WilsonInterval(k, n int, alpha float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("stats: WilsonInterval alpha=%v out of (0,1)", alpha))
	}
	z := NormalQuantile(1 - alpha/2)
	nf := float64(n)
	phat := float64(k) / nf
	denom := 1 + z*z/nf
	center := (phat + z*z/(2*nf)) / denom
	half := z * math.Sqrt(phat*(1-phat)/nf+z*z/(4*nf*nf)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}
