package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s: got %v, want %v (tol %v)", msg, got, want, tol)
	}
}

func TestNormalCDFKnownValues(t *testing.T) {
	approx(t, NormalCDF(0), 0.5, 1e-15, "CDF(0)")
	approx(t, NormalCDF(1.959963984540054), 0.975, 1e-12, "CDF(1.96)")
	approx(t, NormalCDF(-1.959963984540054), 0.025, 1e-12, "CDF(-1.96)")
	approx(t, NormalCDF(3), 0.9986501019683699, 1e-12, "CDF(3)")
}

func TestNormalTailSymmetry(t *testing.T) {
	for _, x := range []float64{-4, -1, 0, 0.5, 2, 6} {
		approx(t, NormalTail(x)+NormalCDF(x), 1, 1e-12, "tail+cdf")
		approx(t, NormalTail(x), NormalCDF(-x), 1e-12, "tail symmetry")
	}
}

func TestNormalTailFar(t *testing.T) {
	// Far tail must stay positive and monotone, no cancellation to 0.
	prev := NormalTail(5.0)
	for x := 6.0; x <= 30; x += 1 {
		cur := NormalTail(x)
		if cur <= 0 || cur >= prev {
			t.Fatalf("tail not positive-monotone at x=%v: %v -> %v", x, prev, cur)
		}
		prev = cur
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 1e-6, 0.001, 0.025, 0.3, 0.5, 0.7, 0.975, 0.999, 1 - 1e-9} {
		x := NormalQuantile(p)
		approx(t, NormalCDF(x), p, 1e-10*math.Max(1, 1/p), "quantile round trip")
	}
	approx(t, NormalQuantile(0.975), 1.959963984540054, 1e-9, "z_0.975")
	approx(t, NormalQuantile(0.5), 0, 1e-12, "median")
}

func TestNormalQuantileDomainPanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NormalQuantile(%v) did not panic", p)
				}
			}()
			NormalQuantile(p)
		}()
	}
}

func TestLogBinomialCoeff(t *testing.T) {
	approx(t, LogBinomialCoeff(5, 2), math.Log(10), 1e-12, "C(5,2)")
	approx(t, LogBinomialCoeff(10, 0), 0, 1e-12, "C(10,0)")
	approx(t, LogBinomialCoeff(10, 10), 0, 1e-12, "C(10,10)")
	approx(t, LogBinomialCoeff(52, 5), math.Log(2598960), 1e-9, "C(52,5)")
}

func TestBinomialPMFSums(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {20, 0.1}, {7, 0.9}, {1, 0.3}} {
		sum := 0.0
		for k := 0; k <= tc.n; k++ {
			sum += BinomialPMF(tc.n, tc.p, k)
		}
		approx(t, sum, 1, 1e-10, "PMF sums to 1")
	}
}

func TestBinomialPMFEdges(t *testing.T) {
	if BinomialPMF(10, 0.5, -1) != 0 || BinomialPMF(10, 0.5, 11) != 0 {
		t.Fatal("PMF outside support nonzero")
	}
	if BinomialPMF(10, 0, 0) != 1 || BinomialPMF(10, 1, 10) != 1 {
		t.Fatal("degenerate p PMF wrong")
	}
}

func TestBinomialTailAgainstDirectSum(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{15, 0.5}, {30, 0.25}, {12, 0.8}} {
		for k := 0; k <= tc.n+1; k++ {
			direct := 0.0
			for j := k; j <= tc.n; j++ {
				direct += BinomialPMF(tc.n, tc.p, j)
			}
			got := BinomialTail(tc.n, tc.p, k)
			approx(t, got, direct, 1e-10, "tail vs direct sum")
		}
	}
}

func TestBinomialCDFComplement(t *testing.T) {
	n, p := 25, 0.4
	for k := -1; k <= n+1; k++ {
		cdf := BinomialCDF(n, p, k)
		tail := BinomialTail(n, p, k+1)
		approx(t, cdf+tail, 1, 1e-10, "CDF + tail complement")
	}
}

func TestRegIncBetaKnown(t *testing.T) {
	// I_x(1, 1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.9, 1} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-12, "I_x(1,1)")
	}
	// I_x(2, 2) = x²(3−2x).
	for _, x := range []float64{0.1, 0.5, 0.8} {
		approx(t, RegIncBeta(2, 2, x), x*x*(3-2*x), 1e-12, "I_x(2,2)")
	}
	// Symmetry: I_x(a, b) = 1 − I_{1−x}(b, a).
	approx(t, RegIncBeta(3.5, 1.25, 0.3), 1-RegIncBeta(1.25, 3.5, 0.7), 1e-12, "symmetry")
}

func TestRegIncBetaDomainPanics(t *testing.T) {
	for _, tc := range [][3]float64{{0, 1, 0.5}, {1, -1, 0.5}, {1, 1, -0.1}, {1, 1, 1.1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("RegIncBeta%v did not panic", tc)
				}
			}()
			RegIncBeta(tc[0], tc[1], tc[2])
		}()
	}
}

func TestDotTailExactSmall(t *testing.T) {
	// D = 2: S ∈ {−2, 0, 2} with probabilities 1/4, 1/2, 1/4.
	approx(t, DotTail(2, 2), 0.25, 1e-12, "P(S≥2)")
	approx(t, DotTail(2, 1), 0.25, 1e-12, "P(S≥1) = P(S≥2) since S even")
	approx(t, DotTail(2, 0), 0.75, 1e-12, "P(S≥0)")
	approx(t, DotTail(2, -2), 1, 1e-12, "P(S≥−2)")
	approx(t, DotTail(2, 3), 0, 1e-12, "P(S≥3)")
}

func TestDotTailMatchesNormalApprox(t *testing.T) {
	d := 10000
	for _, sigma := range []float64{0.5, 1, 2, 3} {
		s := sigma * math.Sqrt(float64(d))
		exact := DotTail(d, int(s))
		appr := DotTailNormal(d, s)
		if math.Abs(exact-appr) > 0.01 {
			t.Fatalf("sigma=%v: exact %v vs normal %v", sigma, exact, appr)
		}
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d", w.N())
	}
	approx(t, w.Mean(), 5, 1e-12, "mean")
	approx(t, w.Variance(), 32.0/7.0, 1e-12, "variance")
	approx(t, w.StdDev(), math.Sqrt(32.0/7.0), 1e-12, "stddev")
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.StdErr() != 0 {
		t.Fatal("empty accumulator not zeroed")
	}
	w.Add(3)
	if w.Variance() != 0 {
		t.Fatal("single-sample variance not 0")
	}
}

func TestWilsonInterval(t *testing.T) {
	lo, hi := WilsonInterval(0, 100, 0.05)
	if lo != 0 || hi <= 0 || hi > 0.05 {
		t.Fatalf("Wilson(0/100) = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(50, 100, 0.05)
	if lo >= 0.5 || hi <= 0.5 {
		t.Fatalf("Wilson(50/100) = [%v, %v] does not cover 0.5", lo, hi)
	}
	lo, hi = WilsonInterval(100, 100, 0.05)
	if hi != 1 || lo >= 1 {
		t.Fatalf("Wilson(100/100) = [%v, %v]", lo, hi)
	}
	lo, hi = WilsonInterval(0, 0, 0.05)
	if lo != 0 || hi != 1 {
		t.Fatalf("Wilson(0/0) = [%v, %v]", lo, hi)
	}
}

// Property: binomial tail is monotone non-increasing in k.
func TestQuickTailMonotone(t *testing.T) {
	f := func(nRaw uint8, pRaw uint16) bool {
		n := int(nRaw)%200 + 1
		p := float64(pRaw%1000)/1000*0.98 + 0.01
		prev := 1.0
		for k := 0; k <= n; k++ {
			cur := BinomialTail(n, p, k)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile is the inverse of the CDF within tolerance.
func TestQuickQuantileInverse(t *testing.T) {
	f := func(raw uint32) bool {
		p := (float64(raw)/float64(math.MaxUint32))*0.998 + 0.001
		x := NormalQuantile(p)
		return math.Abs(NormalCDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalUpperQuantile(t *testing.T) {
	// Symmetry with NormalQuantile and far-tail precision.
	approx(t, NormalUpperQuantile(0.025), 1.959963984540054, 1e-9, "upper 2.5%")
	approx(t, NormalUpperQuantile(0.5), 0, 1e-12, "upper median")
	// Far tail stays finite and monotone where 1-p would round to 1.
	z1 := NormalUpperQuantile(1e-100)
	z2 := NormalUpperQuantile(1e-200)
	if !(z2 > z1 && z1 > 20 && z2 < 40) {
		t.Fatalf("far-tail quantiles implausible: %v, %v", z1, z2)
	}
}

func TestLogBinomialCoeffPanics(t *testing.T) {
	for _, tc := range [][2]int{{-1, 0}, {3, 4}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("LogBinomialCoeff(%d,%d) did not panic", tc[0], tc[1])
				}
			}()
			LogBinomialCoeff(tc[0], tc[1])
		}()
	}
}

func TestBinomialDegenerateP(t *testing.T) {
	if BinomialPMF(5, 0, 3) != 0 || BinomialPMF(5, 1, 3) != 0 {
		t.Fatal("degenerate PMF interior nonzero")
	}
	if BinomialTail(5, 0, 1) != 0 {
		t.Fatal("tail at p=0 nonzero")
	}
	if BinomialTail(5, 1, 3) != 1 {
		t.Fatal("tail at p=1 not 1")
	}
}

func TestWelfordStdErr(t *testing.T) {
	var w Welford
	for _, x := range []float64{1, 2, 3, 4} {
		w.Add(x)
	}
	want := w.StdDev() / 2 // √4 samples
	approx(t, w.StdErr(), want, 1e-12, "stderr")
}

func TestWilsonIntervalPanics(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v did not panic", alpha)
				}
			}()
			WilsonInterval(1, 10, alpha)
		}()
	}
}

func TestRegIncBetaReflectedBranch(t *testing.T) {
	// x above the continued-fraction switch point exercises the
	// reflection; verify against the symmetry identity.
	a, b, x := 2.5, 7.5, 0.9
	lhs := RegIncBeta(a, b, x)
	rhs := 1 - RegIncBeta(b, a, 1-x)
	approx(t, lhs, rhs, 1e-12, "reflection")
	if lhs <= 0.99 {
		t.Fatalf("I_0.9(2.5,7.5) = %v implausibly small", lhs)
	}
}
