package mmapfile

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
	"unsafe"
)

func writeTemp(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenReadsFileContents(t *testing.T) {
	want := []byte("hyperdimensional")
	path := writeTemp(t, want)

	m, err := Open(path)
	if !Supported() {
		if err != ErrUnsupported {
			t.Fatalf("unsupported build: Open err = %v, want ErrUnsupported", err)
		}
		t.Skip("mmap not supported in this build")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if !bytes.Equal(m.Bytes(), want) {
		t.Fatalf("Bytes() = %q, want %q", m.Bytes(), want)
	}
	if m.Len() != len(want) {
		t.Fatalf("Len() = %d, want %d", m.Len(), len(want))
	}
}

func TestOpenEmptyFile(t *testing.T) {
	if !Supported() {
		t.Skip("mmap not supported in this build")
	}
	m, err := Open(writeTemp(t, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", m.Len())
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("Open of missing file succeeded")
	}
}

func TestCloseIdempotent(t *testing.T) {
	if !Supported() {
		t.Skip("mmap not supported in this build")
	}
	m, err := Open(writeTemp(t, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

func TestAdvise(t *testing.T) {
	if !Supported() {
		t.Skip("mmap not supported in this build")
	}
	data := make([]byte, 8192)
	m, err := Open(writeTemp(t, data))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for _, adv := range []Advice{AdviseNormal, AdviseWillNeed, AdviseDontNeed, AdviseSequential} {
		if err := m.Advise(100, 4000, adv); err != nil {
			t.Fatalf("Advise(%v) = %v", adv, err)
		}
	}
	if err := m.Advise(0, 0, AdviseWillNeed); err != nil {
		t.Fatalf("zero-length Advise = %v", err)
	}
	if err := m.Advise(-1, 10, AdviseWillNeed); err == nil {
		t.Fatal("negative offset Advise succeeded")
	}
	if err := m.Advise(8000, 1000, AdviseWillNeed); err == nil {
		t.Fatal("out-of-range Advise succeeded")
	}

	// DONTNEED must not invalidate the mapping — the range refaults
	// from the (zero-filled) file.
	if m.Bytes()[4096] != 0 {
		t.Fatal("mapping unreadable after DONTNEED")
	}
}

func TestAsWords(t *testing.T) {
	// Back the buffer with a []uint64 so it is 8-byte aligned — a bare
	// make([]byte, n) only guarantees byte alignment.
	backing := make([]uint64, 3)
	buf := unsafe.Slice((*byte)(unsafe.Pointer(&backing[0])), 24)
	binary.LittleEndian.PutUint64(buf[0:], 0x0123456789abcdef)
	binary.LittleEndian.PutUint64(buf[8:], 42)
	binary.LittleEndian.PutUint64(buf[16:], ^uint64(0))

	words, err := AsWords(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !HostLittleEndian() {
		t.Skip("word values only meaningful on little-endian hosts")
	}
	want := []uint64{0x0123456789abcdef, 42, ^uint64(0)}
	for i, w := range want {
		if words[i] != w {
			t.Fatalf("words[%d] = %#x, want %#x", i, words[i], w)
		}
	}

	if _, err := AsWords(buf[:20]); err == nil {
		t.Fatal("AsWords accepted a non-multiple-of-8 length")
	}
	if _, err := AsWords(buf[1:17]); err == nil {
		t.Fatal("AsWords accepted a misaligned slice")
	}
	if w, err := AsWords(nil); err != nil || w != nil {
		t.Fatalf("AsWords(nil) = %v, %v", w, err)
	}
}
