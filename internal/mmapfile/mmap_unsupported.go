//go:build !linux || purego

package mmapfile

const supported = false

func openMapping(path string) (*Mapping, error) {
	return nil, ErrUnsupported
}

func unmap(data []byte) error { return nil }

func (m *Mapping) advise(off, n int, adv Advice) error { return nil }
