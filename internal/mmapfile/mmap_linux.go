//go:build linux && !purego

package mmapfile

import (
	"fmt"
	"os"
	"syscall"
)

const supported = true

func openMapping(path string) (*Mapping, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return &Mapping{}, nil
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("mmapfile: %s is %d bytes, too large to map", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("mmapfile: mmap %s: %w", path, err)
	}
	return &Mapping{data: data}, nil
}

func unmap(data []byte) error {
	return syscall.Munmap(data)
}

// advise rounds [off, off+n) outward to page boundaries before calling
// madvise, which requires a page-aligned start address.
func (m *Mapping) advise(off, n int, adv Advice) error {
	page := syscall.Getpagesize()
	start := off - off%page
	end := off + n
	if rem := end % page; rem != 0 {
		end += page - rem
	}
	if end > len(m.data) {
		end = len(m.data)
	}
	var flag int
	switch adv {
	case AdviseWillNeed:
		flag = syscall.MADV_WILLNEED
	case AdviseDontNeed:
		flag = syscall.MADV_DONTNEED
	case AdviseSequential:
		flag = syscall.MADV_SEQUENTIAL
	default:
		flag = syscall.MADV_NORMAL
	}
	// Best-effort: an EINVAL from an exotic kernel config is not worth
	// failing a probe over.
	_ = syscall.Madvise(m.data[start:end], flag)
	return nil
}
