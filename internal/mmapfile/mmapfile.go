// Package mmapfile memory-maps read-only files for the zero-copy
// library tier: a v3 library file's sealed-segment arenas are mapped
// into the process and scanned in place, so startup copies nothing and
// the resident footprint is whatever the kernel keeps paged in — the
// hot set, not the library size.
//
// The package is deliberately tiny: read-only whole-file mappings plus
// the madvise hints the library lifecycle uses (WILLNEED when a mapped
// segment is opened or promoted hot, DONTNEED when compaction retires
// one). On platforms without mmap support — or under the purego build
// tag, which strips every platform-specific fast path in this repo —
// Open returns ErrUnsupported and callers fall back to a heap load.
package mmapfile

import (
	"errors"
	"fmt"
	"unsafe"
)

// ErrUnsupported is returned by Open on platforms (or build
// configurations) without mmap support; callers fall back to reading
// the file into the heap.
var ErrUnsupported = errors.New("mmapfile: not supported on this platform")

// Advice is a paging hint forwarded to madvise(2) where available.
type Advice int

const (
	// AdviseNormal restores the kernel's default readahead behaviour.
	AdviseNormal Advice = iota
	// AdviseWillNeed asks the kernel to fault the range in ahead of
	// use — applied to a segment arena about to be scanned.
	AdviseWillNeed
	// AdviseDontNeed tells the kernel the range is cold and its pages
	// may be reclaimed first — applied to arenas of retired (compacted
	// or tombstone-heavy) segments. The mapping stays valid; touching
	// the range again just refaults from the file.
	AdviseDontNeed
	// AdviseSequential hints a front-to-back streaming read — the
	// access pattern of a full-arena CRC verification pass.
	AdviseSequential
)

// Mapping is one read-only, whole-file memory mapping.
type Mapping struct {
	data []byte
}

// Open maps the file at path read-only in its entirety. An empty file
// maps to an empty (nil-data) mapping. On unsupported platforms it
// returns ErrUnsupported.
func Open(path string) (*Mapping, error) {
	return openMapping(path)
}

// Supported reports whether this build can actually map files; false
// means Open always returns ErrUnsupported.
func Supported() bool { return supported }

// Bytes exposes the mapped file contents. The slice aliases the
// mapping: it is read-only (writes fault) and must not be used after
// Close.
func (m *Mapping) Bytes() []byte { return m.data }

// Len returns the mapped length in bytes.
func (m *Mapping) Len() int { return len(m.data) }

// Advise forwards a paging hint for data[off:off+n] to the kernel.
// Hints are best-effort: the range is rounded outward to page
// boundaries and errors are only returned for out-of-range requests,
// never for an indifferent kernel.
func (m *Mapping) Advise(off, n int, adv Advice) error {
	if off < 0 || n < 0 || off+n > len(m.data) {
		return fmt.Errorf("mmapfile: advise range [%d,%d) outside mapping of %d bytes", off, off+n, len(m.data))
	}
	if n == 0 {
		return nil
	}
	return m.advise(off, n, adv)
}

// Resident reports how many bytes of data[off:off+n] are currently
// resident in physical memory, via mincore(2) where available. The
// count is page-granular: a partially-counted page contributes only
// the bytes that overlap the requested range. On platforms without
// mincore (or under the purego tag) it returns ErrUnsupported, and
// callers fall back to a coarser gauge.
func (m *Mapping) Resident(off, n int) (int64, error) {
	if off < 0 || n < 0 || off+n > len(m.data) {
		return 0, fmt.Errorf("mmapfile: resident range [%d,%d) outside mapping of %d bytes", off, off+n, len(m.data))
	}
	if n == 0 {
		return 0, nil
	}
	return m.resident(off, n)
}

// Close unmaps the file. The caller must guarantee no goroutine still
// reads the mapped bytes — aliases (Bytes, AsWords views) fault after
// Close. Idempotent.
func (m *Mapping) Close() error {
	if m.data == nil {
		return nil
	}
	data := m.data
	m.data = nil
	return unmap(data)
}

// AsWords reinterprets a mapped byte range as []uint64 without
// copying. The bytes must be 8-byte aligned and a multiple of 8 long;
// the words carry the file's little-endian layout, so callers must
// have checked HostLittleEndian before treating them as host integers.
// The returned slice aliases b: read-only, invalid after Close.
func AsWords(b []byte) ([]uint64, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if len(b)%8 != 0 {
		return nil, fmt.Errorf("mmapfile: %d bytes is not a whole number of 64-bit words", len(b))
	}
	if uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil, fmt.Errorf("mmapfile: byte range is not 8-byte aligned")
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8), nil
}

// HostLittleEndian reports whether the host stores integers
// little-endian — the on-disk word order of the library format. On a
// big-endian host a zero-copy arena view would read scrambled words,
// so mapping callers fall back to the (byte-order-aware) heap loader.
func HostLittleEndian() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}
