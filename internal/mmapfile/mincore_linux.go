//go:build linux && !purego

package mmapfile

import (
	"fmt"
	"syscall"
	"unsafe"
)

// resident counts the bytes of data[off:off+n] backed by resident
// pages, using the mincore(2) page vector. The start address is
// rounded down to a page boundary (mincore requires alignment); the
// per-page byte credit is clipped to the requested range so the count
// never exceeds n.
func (m *Mapping) resident(off, n int) (int64, error) {
	page := syscall.Getpagesize()
	start := off - off%page
	length := off + n - start
	vec := make([]byte, (length+page-1)/page)
	_, _, errno := syscall.Syscall(syscall.SYS_MINCORE,
		uintptr(unsafe.Pointer(&m.data[start])), uintptr(length), uintptr(unsafe.Pointer(&vec[0])))
	if errno != 0 {
		return 0, fmt.Errorf("mmapfile: mincore: %w", errno)
	}
	var total int64
	for i, v := range vec {
		if v&1 == 0 {
			continue
		}
		lo := start + i*page
		hi := lo + page
		if lo < off {
			lo = off
		}
		if hi > off+n {
			hi = off + n
		}
		total += int64(hi - lo)
	}
	return total, nil
}
