//go:build !linux || purego

package mmapfile

// resident is unavailable without mincore(2); callers fall back to a
// coarser gauge (typically the full mapped length).
func (m *Mapping) resident(off, n int) (int64, error) {
	return 0, ErrUnsupported
}
