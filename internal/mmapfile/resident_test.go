package mmapfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestResident exercises the mincore-backed resident-page counter
// over a real mapping: full-range and sub-range counts, the
// zero-length fast path, and bounds validation.
func TestResident(t *testing.T) {
	page := os.Getpagesize()
	path := filepath.Join(t.TempDir(), "data.bin")
	data := bytes.Repeat([]byte{0xAB}, 3*page+123)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := Open(path)
	if errors.Is(err, ErrUnsupported) {
		t.Skip("mmap unsupported on this platform/build")
	}
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	// Bounds checks fire regardless of mincore support.
	if _, err := m.Resident(-1, 10); err == nil {
		t.Fatal("negative offset accepted")
	}
	if _, err := m.Resident(0, m.Len()+1); err == nil {
		t.Fatal("over-long range accepted")
	}
	if n, err := m.Resident(5, 0); err != nil || n != 0 {
		t.Fatalf("zero-length range: %d, %v", n, err)
	}

	// Touch every byte so the pages are faulted in before counting.
	var sum byte
	for _, b := range m.Bytes() {
		sum += b
	}
	_ = sum
	n, err := m.Resident(0, m.Len())
	if errors.Is(err, ErrUnsupported) {
		t.Skip("mincore unavailable in this build")
	}
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 || n > int64(m.Len()) {
		t.Fatalf("full-range resident count %d outside (0, %d]", n, m.Len())
	}

	// A sub-range crossing page boundaries is clipped to the request.
	sub, err := m.Resident(page-10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sub < 0 || sub > 20 {
		t.Fatalf("sub-range resident count %d outside [0, 20]", sub)
	}
}
