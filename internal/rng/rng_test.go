package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams from equal seeds diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 collisions between distinct seeds", same)
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the canonical SplitMix64 with seed 0.
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4,
		0x06c45d188009454f, 0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	s := New(1)
	for _, n := range []int{0, -5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			s.Intn(n)
		}()
	}
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	// Chi-squared with 9 dof; 99.9% critical value ≈ 27.9.
	expected := float64(trials) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 27.9 {
		t.Fatalf("chi2 = %.2f exceeds 27.9; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(13)
	sum := 0.0
	const trials = 100000
	for i := 0; i < trials; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean = %v, want ≈0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(17)
	const trials = 200000
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		x := s.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / trials
	variance := sumSq/trials - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestBoolBalance(t *testing.T) {
	s := New(19)
	trues := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if s.Bool() {
			trues++
		}
	}
	if frac := float64(trues) / trials; math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("Bool true fraction = %v", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(23)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffle(t *testing.T) {
	s := New(29)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	orig := append([]int(nil), xs...)
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 28 {
		t.Fatalf("shuffle lost elements: %v (was %v)", xs, orig)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(31)
	a := parent.Fork(1)
	b := parent.Fork(2)
	collisions := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			collisions++
		}
	}
	if collisions > 0 {
		t.Fatalf("forked streams collide %d/100", collisions)
	}
}

func TestForkDeterministic(t *testing.T) {
	a := New(99).Fork(7)
	b := New(99).Fork(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("identical forks diverged")
		}
	}
}

// Property: Intn never exceeds its bound for arbitrary seeds and bounds.
func TestQuickIntnBounds(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound)%1000 + 1
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Intn(1000003)
	}
}
