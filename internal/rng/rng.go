// Package rng provides deterministic, seedable pseudo-random number
// generation for reproducible experiments. Item memories, synthetic
// genomes, and workload sweeps must all replay bit-identically from a
// seed, so the generators here are fully specified rather than delegated
// to math/rand's unspecified source.
//
// The core generator is xoshiro256** seeded through SplitMix64, the
// combination recommended by the xoshiro authors: SplitMix64 decorrelates
// weak user seeds before they reach the xoshiro state.
package rng

import (
	"math"
	"math/bits"
)

// SplitMix64 advances a SplitMix64 state and returns the next output.
// It is used both as a seed expander and as a cheap standalone stream.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. The zero value is invalid; use New.
type Source struct {
	s         [4]uint64
	spare     float64
	haveSpare bool
}

// New returns a Source seeded from seed via SplitMix64 expansion.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = SplitMix64(&sm)
	}
	// xoshiro256** requires a state that is not all zero; SplitMix64 of
	// any seed cannot yield four zero outputs, but guard regardless.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 1
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (s *Source) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	un := uint64(n)
	threshold := (-un) % un
	for {
		hi, lo := bits.Mul64(s.Uint64(), un)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniformly random boolean.
func (s *Source) Bool() bool { return s.Uint64()&1 == 1 }

// NormFloat64 returns a standard normal variate (Box–Muller; the spare
// value is cached so consecutive calls cost one transform per pair).
func (s *Source) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.haveSpare = true
	return u * f
}

// Perm returns a uniformly random permutation of [0, n) (Fisher–Yates).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap (Fisher–Yates).
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}

// Fork derives an independent child stream. Streams derived with distinct
// labels from the same parent are statistically independent, letting one
// experiment seed give every component its own reproducible stream.
func (s *Source) Fork(label uint64) *Source {
	mix := s.Uint64() ^ label*0x9e3779b97f4a7c15
	return New(mix)
}
