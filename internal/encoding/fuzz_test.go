package encoding

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/hdc"
)

// fuzzEnc is shared by the fuzz targets; the Encoder is read-only after
// construction, so reuse across iterations is safe. Window is kept small
// relative to Dim so associative decode has a huge statistical margin
// (member correlation ≈ D·√(2/πw) against noise σ ≈ √D) and the fuzzer
// cannot stumble into a legitimate recall failure.
var fuzzEnc = func() *Encoder {
	e, err := New(Config{Dim: 2048, Window: 12, Seed: 7})
	if err != nil {
		panic(err)
	}
	return e
}()

// fuzzSequence maps arbitrary fuzz bytes onto a base sequence at least
// window+3 long, so every input exercises full windows plus sliding.
func fuzzSequence(raw []byte, window int) *genome.Sequence {
	n := len(raw)
	if n < window+3 {
		n = window + 3
	}
	bases := make([]genome.Base, n)
	for i := range bases {
		var b byte
		if len(raw) > 0 {
			b = raw[i%len(raw)]
		}
		bases[i] = genome.Base((b + byte(i)) & 3)
	}
	return genome.FromBases(bases)
}

// FuzzEncodeDecode checks the two round trips the encoder promises, on
// arbitrary sequence content and stride:
//
//  1. Memorization recall: every approximate window encoding decodes back
//     to exactly the window it memorized (DecodeWindowApprox inverts
//     EncodeWindowApprox).
//  2. Incremental/direct agreement: the sliding encoders reproduce the
//     direct per-window encodings bit for bit, for both modes.
func FuzzEncodeDecode(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTACGTACGT"), uint8(1))
	f.Add([]byte("AAAAAAAAAAAAAAAA"), uint8(2)) // repeated base: rotations of one item vector
	f.Add([]byte("GATTACA"), uint8(3))          // shorter than a window: padded
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0xff, 0x00, 0xa5, 0x5a, 0x13, 0x37, 0xfe, 0xed, 0xbe, 0xef, 0x01, 0x02, 0x03}, uint8(7))
	f.Fuzz(func(t *testing.T, raw []byte, strideByte uint8) {
		enc := fuzzEnc
		w := enc.Window()
		seq := fuzzSequence(raw, w)
		if seq.Len() > 4*w {
			seq = seq.Slice(0, 4*w) // bound per-iteration work
		}
		stride := 1 + int(strideByte%5)

		// Round trip 1: encode → decode recovers the window exactly.
		for start := 0; start+w <= seq.Len(); start += stride {
			hv := enc.EncodeWindowApprox(seq, start)
			dec, err := enc.DecodeWindowApprox(hv)
			if err != nil {
				t.Fatalf("decode window at %d: %v", start, err)
			}
			if want := seq.Slice(start, start+w); !dec.Equal(want) {
				t.Fatalf("window at %d decoded to %s, want %s", start, dec, want)
			}
		}

		// Round trip 2a: incremental exact slide == direct exact encoding.
		enc.SlideExact(seq, stride, func(start int, hv *hdc.HV) bool {
			if direct := enc.EncodeWindowExact(seq, start); !hv.Equal(direct) {
				t.Errorf("exact slide diverges from direct encoding at %d", start)
				return false
			}
			return true
		})

		// Round trip 2b: incremental approx slide, sealed, == direct
		// approx encoding.
		enc.SlideApprox(seq, stride, func(start int, acc *hdc.Acc, off int) bool {
			if direct := enc.EncodeWindowApprox(seq, start); !enc.SealLogical(acc, off).Equal(direct) {
				t.Errorf("approx slide diverges from direct encoding at %d", start)
				return false
			}
			return true
		})

		// A wrong-dimension decode must be rejected, not mangled.
		if _, err := enc.DecodeWindowApprox(hdc.NewHV(64)); err == nil {
			t.Fatal("decode accepted a hypervector of the wrong dimension")
		}
	})
}
