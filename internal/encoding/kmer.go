package encoding

import (
	"fmt"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// KmerEncoder encodes windows at k-mer granularity: the window is the
// positional bundle of its overlapping k-mers,
//
//	A_k(s) = sign( Σ_{i ≤ w−k} ρ^i(K[s_{i..i+k}]) ),
//
// where K maps each of the 4^k k-mers to a fixed random hypervector.
// Compared with the base-level bundle (k = 1):
//
//   - chance agreement between unrelated windows drops from 1/4 to 4^−k,
//     so the noise baseline all buckets carry nearly vanishes;
//   - one substitution corrupts k consecutive k-mers, so similarity
//     degrades k× faster per mutation — higher discrimination, lower
//     mutation tolerance.
//
// Experiment F13 quantifies this trade. The k-mer item memory is
// *virtual*: each k-mer's hypervector is derived deterministically from
// (seed, k-mer value) on demand, so no 4^k table is stored.
type KmerEncoder struct {
	cfg Config
	k   int
}

// NewKmer constructs a k-mer window encoder; 1 ≤ k ≤ 15 and k ≤ Window.
func NewKmer(cfg Config, k int) (*KmerEncoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k < 1 || k > 15 {
		return nil, fmt.Errorf("encoding: k=%d out of [1,15]", k)
	}
	if k > cfg.Window {
		return nil, fmt.Errorf("encoding: k=%d exceeds window %d", k, cfg.Window)
	}
	return &KmerEncoder{cfg: cfg, k: k}, nil
}

// K returns the k-mer length.
func (e *KmerEncoder) K() int { return e.k }

// Dim returns the hypervector dimensionality.
func (e *KmerEncoder) Dim() int { return e.cfg.Dim }

// Window returns the window length in bases.
func (e *KmerEncoder) Window() int { return e.cfg.Window }

// NumPositions returns the number of k-mers one window bundles.
func (e *KmerEncoder) NumPositions() int { return e.cfg.Window - e.k + 1 }

// KmerHV returns the item-memory hypervector for the packed k-mer value
// v ∈ [0, 4^k). Derived deterministically; two calls agree bit-for-bit.
func (e *KmerEncoder) KmerHV(v uint64) *hdc.HV {
	if v >= 1<<(2*uint(e.k)) {
		panic(fmt.Sprintf("encoding: k-mer value %d out of range for k=%d", v, e.k))
	}
	h := hdc.NewHV(e.cfg.Dim)
	words := h.Bits().Words()
	// Seed expansion keyed by (encoder seed, k, v): SplitMix64 streams
	// from distinct keys are statistically independent.
	state := e.cfg.Seed ^ 0x6b6d6572<<8 ^ uint64(e.k)<<56 ^ v*0x9e3779b97f4a7c15
	for i := range words {
		words[i] = rng.SplitMix64(&state)
	}
	return h
}

// EncodeWindow returns the sealed k-mer bundle encoding of the window of
// seq starting at start. It panics if the window overruns the sequence.
func (e *KmerEncoder) EncodeWindow(seq *genome.Sequence, start int) *hdc.HV {
	if start < 0 || start+e.cfg.Window > seq.Len() {
		panic(fmt.Sprintf("encoding: window [%d,%d) overruns sequence length %d",
			start, start+e.cfg.Window, seq.Len()))
	}
	acc := hdc.NewAcc(e.cfg.Dim)
	rotated := hdc.NewHV(e.cfg.Dim)
	for i := 0; i < e.NumPositions(); i++ {
		kv := e.KmerHV(seq.KmerAt(start+i, e.k))
		if i == 0 {
			acc.Add(kv)
			continue
		}
		rotated.Permute(kv, i)
		acc.Add(rotated)
	}
	return acc.Seal(e.cfg.Seed ^ 0x6b6d65725ea1)
}

// ChanceAgreement returns the probability two unrelated windows agree on
// one k-mer position: 4^−k. This replaces the base-level ¼ in the
// quality model's baseline when k-mer encoding is used.
func (e *KmerEncoder) ChanceAgreement() float64 {
	return 1 / float64(uint64(1)<<(2*uint(e.k)))
}
