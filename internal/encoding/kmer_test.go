package encoding

import (
	"math"
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

func kmerEnc(t *testing.T, dim, window, k int) *KmerEncoder {
	t.Helper()
	e, err := NewKmer(Config{Dim: dim, Window: window, Seed: 42}, k)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewKmerValidation(t *testing.T) {
	for name, tc := range map[string]struct {
		cfg Config
		k   int
	}{
		"bad dim":     {Config{Dim: 100, Window: 16, Seed: 1}, 3},
		"k zero":      {Config{Dim: 1024, Window: 16, Seed: 1}, 0},
		"k too big":   {Config{Dim: 1024, Window: 16, Seed: 1}, 16},
		"k > window":  {Config{Dim: 1024, Window: 4, Seed: 1}, 5},
		"zero window": {Config{Dim: 1024, Window: 0, Seed: 1}, 1},
	} {
		if _, err := NewKmer(tc.cfg, tc.k); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	e := kmerEnc(t, 1024, 32, 5)
	if e.K() != 5 || e.Dim() != 1024 || e.Window() != 32 || e.NumPositions() != 28 {
		t.Fatalf("metadata wrong: %+v", e)
	}
}

func TestKmerHVDeterministicAndOrthogonal(t *testing.T) {
	e := kmerEnc(t, 2048, 16, 5)
	a1 := e.KmerHV(123)
	a2 := e.KmerHV(123)
	if !a1.Equal(a2) {
		t.Fatal("same k-mer hashed to different hypervectors")
	}
	limit := int(6 * math.Sqrt(2048))
	for _, v := range []uint64{0, 1, 7, 500, 1023} {
		if d := a1.Dot(e.KmerHV(v)); v != 123 && (d > limit || d < -limit) {
			t.Fatalf("k-mers 123 and %d not quasi-orthogonal: %d", v, d)
		}
	}
	// Distinct k must yield distinct item memories (value 12 is valid
	// for both k=3 and k=5).
	e3 := kmerEnc(t, 2048, 16, 3)
	if d := e.KmerHV(12).Dot(e3.KmerHV(12)); d > limit || d < -limit {
		t.Fatalf("k=5 and k=3 item memories correlate: %d", d)
	}
}

func TestKmerHVRangePanics(t *testing.T) {
	e := kmerEnc(t, 1024, 16, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range k-mer value accepted")
		}
	}()
	e.KmerHV(64)
}

func TestKmerEncodeWindowDeterministic(t *testing.T) {
	e := kmerEnc(t, 2048, 24, 5)
	seq := genome.Random(50, rng.New(1))
	if !e.EncodeWindow(seq, 3).Equal(e.EncodeWindow(seq, 3)) {
		t.Fatal("window encoding not deterministic")
	}
	// Same content at a different offset encodes identically.
	dup := genome.NewSequence(10).Append(seq)
	if !e.EncodeWindow(dup, 13).Equal(e.EncodeWindow(seq, 3)) {
		t.Fatal("window encoding depends on absolute offset")
	}
}

func TestKmerChanceAgreementLowerThanBase(t *testing.T) {
	// Unrelated windows: base-level bundles share ~¼ of positions, k-mer
	// bundles ~4^−k — their cosine must be much closer to zero.
	const dim, window = 16384, 32
	base, err := New(Config{Dim: dim, Window: window, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	km := kmerEnc(t, dim, window, 5)
	src := rng.New(8)
	var baseSum, kmSum float64
	const trials = 12
	for i := 0; i < trials; i++ {
		a, b := genome.Random(window, src), genome.Random(window, src)
		baseSum += math.Abs(base.EncodeWindowApprox(a, 0).Cosine(base.EncodeWindowApprox(b, 0)))
		kmSum += math.Abs(km.EncodeWindow(a, 0).Cosine(km.EncodeWindow(b, 0)))
	}
	baseMean, kmMean := baseSum/trials, kmSum/trials
	if kmMean > baseMean/2 {
		t.Fatalf("k-mer chance cosine %v not well below base-level %v", kmMean, baseMean)
	}
	if e := km.ChanceAgreement(); e != 1.0/1024 {
		t.Fatalf("ChanceAgreement(k=5) = %v", e)
	}
}

func TestKmerMutationSensitivitySteeper(t *testing.T) {
	// One substitution must cost the k-mer encoding more similarity than
	// the base-level encoding (it corrupts k positions, not 1).
	const dim, window = 16384, 32
	base, err := New(Config{Dim: dim, Window: window, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	km := kmerEnc(t, dim, window, 5)
	src := rng.New(10)
	var baseDrop, kmDrop float64
	const trials = 10
	for i := 0; i < trials; i++ {
		seq := genome.Random(window, src)
		mut, _ := genome.SubstituteExactly(seq, 1, src)
		baseDrop += 1 - base.EncodeWindowApprox(seq, 0).Cosine(base.EncodeWindowApprox(mut, 0))
		kmDrop += 1 - km.EncodeWindow(seq, 0).Cosine(km.EncodeWindow(mut, 0))
	}
	if kmDrop <= baseDrop {
		t.Fatalf("k-mer similarity drop %v not steeper than base-level %v", kmDrop, baseDrop)
	}
}

func TestKmerSimilarityMonotoneInMutations(t *testing.T) {
	e := kmerEnc(t, 8192, 32, 3)
	seq := genome.Random(32, rng.New(11))
	ref := e.EncodeWindow(seq, 0)
	prev := 1.1
	for _, muts := range []int{1, 3, 6} {
		mut, _ := genome.SubstituteExactly(seq, muts, rng.New(uint64(muts)))
		cos := ref.Cosine(e.EncodeWindow(mut, 0))
		if cos >= prev {
			t.Fatalf("similarity not decreasing at muts=%d: %v -> %v", muts, prev, cos)
		}
		prev = cos
	}
}

func TestKmerEncodeWindowPanics(t *testing.T) {
	e := kmerEnc(t, 1024, 16, 3)
	seq := genome.Random(20, rng.New(12))
	defer func() {
		if recover() == nil {
			t.Fatal("overrunning window accepted")
		}
	}()
	e.EncodeWindow(seq, 10)
}
