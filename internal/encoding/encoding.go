// Package encoding maps genome sequences to hypervectors — the
// "HDC memorization" step of BioHD.
//
// # Window encodings
//
// BioHD slices a reference genome into fixed-length windows and encodes
// each window into one hypervector. Two encodings are provided, matching
// the paper's exact and approximate search modes:
//
//   - Exact (binding chain): E(s) = ⊙_{i<w} ρ^i(B[s_i]). A pure bind
//     product is quasi-orthogonal to the encoding of every other window
//     content, so membership of the *exact* pattern can be tested with a
//     single dot product. One mismatching base randomizes the encoding —
//     maximal discrimination, no tolerance.
//
//   - Approximate (positional bundle): A(s) = sign(Σ_{i<w} ρ^i(B[s_i])).
//     The similarity of two bundled windows degrades linearly in the
//     number of agreeing positions, so mutated queries remain detectably
//     similar — graceful degradation, mutation tolerance.
//
// Both encodings slide incrementally: advancing the window by one base
// costs O(D/64) packed-word work for the exact chain and O(D) counter
// work for the bundle, instead of re-encoding the whole window (O(w·D)).
// The identities used are
//
//	E_{p+1} = ρ⁻¹(E_p ⊙ B[s_p]) ⊙ ρ^{w−1}(B[s_{p+w}])
//	W_{p+1} = ρ⁻¹(W_p − B[s_p]) + ρ^{w−1}(B[s_{p+w}])
//
// where the bundle identity is tracked on raw counters with a circular
// logical offset, so no counter array is ever physically rotated.
package encoding

import (
	"fmt"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// Mode selects the window encoding.
type Mode int

// Encoding modes.
const (
	// ModeExact is the binding-chain encoding for exact matching.
	ModeExact Mode = iota
	// ModeApprox is the positional-bundle encoding for approximate
	// matching.
	ModeApprox
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModeApprox:
		return "approx"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes an Encoder.
type Config struct {
	// Dim is the hypervector dimensionality; a positive multiple of 64.
	Dim int
	// Window is the number of bases encoded per window hypervector.
	Window int
	// Seed determines the base item memory; encoders built from equal
	// (Dim, Seed) agree bit-for-bit.
	Seed uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Dim <= 0 || c.Dim%64 != 0 {
		return fmt.Errorf("encoding: Dim %d must be a positive multiple of 64", c.Dim)
	}
	if c.Window <= 0 {
		return fmt.Errorf("encoding: Window %d must be positive", c.Window)
	}
	if c.Window >= c.Dim {
		// Rotations must stay injective over the window span.
		return fmt.Errorf("encoding: Window %d must be smaller than Dim %d", c.Window, c.Dim)
	}
	return nil
}

// Encoder encodes genome windows into hypervectors. It is safe for
// concurrent use once constructed (all state is read-only).
type Encoder struct {
	cfg Config
	im  *hdc.ItemMemory
	// rot[b][i] is ρ^i(B[b]) for i ∈ [0, Window]; precomputed because
	// both the direct encoders and the incremental slides consume
	// rotated base vectors constantly.
	rot [genome.AlphabetSize][]*hdc.HV
}

// New constructs an Encoder from cfg.
func New(cfg Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e := &Encoder{
		cfg: cfg,
		im:  hdc.NewItemMemory(cfg.Dim, genome.AlphabetSize, cfg.Seed),
	}
	for b := 0; b < genome.AlphabetSize; b++ {
		e.rot[b] = make([]*hdc.HV, cfg.Window+1)
		e.rot[b][0] = e.im.Get(b)
		for i := 1; i <= cfg.Window; i++ {
			h := hdc.NewHV(cfg.Dim)
			h.Permute(e.rot[b][i-1], 1)
			e.rot[b][i] = h
		}
	}
	return e, nil
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Dim returns the hypervector dimensionality.
func (e *Encoder) Dim() int { return e.cfg.Dim }

// Window returns the window length in bases.
func (e *Encoder) Window() int { return e.cfg.Window }

// BaseHV returns the item-memory hypervector for base b (shared; do not
// mutate).
func (e *Encoder) BaseHV(b genome.Base) *hdc.HV { return e.im.Get(int(b)) }

func (e *Encoder) checkWindow(seq *genome.Sequence, start int) {
	if start < 0 || start+e.cfg.Window > seq.Len() {
		panic(fmt.Sprintf("encoding: window [%d,%d) overruns sequence length %d",
			start, start+e.cfg.Window, seq.Len()))
	}
}

func (e *Encoder) checkDim(dst *hdc.HV) {
	if dst.Dim() != e.cfg.Dim {
		panic(fmt.Sprintf("encoding: destination dimension %d != encoder %d", dst.Dim(), e.cfg.Dim))
	}
}

// EncodeWindowExact returns the binding-chain encoding of the window of
// seq starting at start. It panics if the window overruns the sequence.
func (e *Encoder) EncodeWindowExact(seq *genome.Sequence, start int) *hdc.HV {
	out := hdc.NewHV(e.cfg.Dim)
	e.EncodeWindowExactInto(out, seq, start)
	return out
}

// EncodeWindowExactInto stores the binding-chain encoding of the window
// of seq starting at start into dst, reusing dst's storage — the
// allocation-free variant for query hot paths. It panics if the window
// overruns the sequence or dst has the wrong dimension.
//biohd:hotpath
func (e *Encoder) EncodeWindowExactInto(dst *hdc.HV, seq *genome.Sequence, start int) {
	e.checkWindow(seq, start)
	e.checkDim(dst)
	dst.CopyFrom(e.rot[seq.At(start)][0])
	for i := 1; i < e.cfg.Window; i++ {
		dst.Bind(dst, e.rot[seq.At(start+i)][i])
	}
}

// EncodeWindowApprox returns the sealed positional-bundle encoding of the
// window of seq starting at start.
func (e *Encoder) EncodeWindowApprox(seq *genome.Sequence, start int) *hdc.HV {
	acc := e.AccumulateWindow(seq, start)
	return e.SealLogical(acc, 0)
}

// EncodeWindowApproxInto stores the sealed positional-bundle encoding of
// the window at start into dst, using acc as counter scratch (its prior
// contents are discarded) — the allocation-free variant for query hot
// paths. It panics if the window overruns the sequence or dst/acc have
// the wrong dimension.
//biohd:hotpath
func (e *Encoder) EncodeWindowApproxInto(dst *hdc.HV, acc *hdc.Acc, seq *genome.Sequence, start int) {
	e.checkWindow(seq, start)
	e.checkDim(dst)
	acc.Reset()
	for i := 0; i < e.cfg.Window; i++ {
		acc.Add(e.rot[seq.At(start+i)][i])
	}
	e.SealLogicalInto(dst, acc, 0)
}

// DecodeWindowApprox recovers the window content memorized in a sealed
// positional-bundle encoding by associative recall: position i decodes to
// the base whose rotated item vector ρ^i(B[b]) correlates most strongly
// with the bundle. The superposed other positions act as near-orthogonal
// noise, so with the dimensionalities BioHD operates at (D ≫ Window) the
// reconstruction is exact with overwhelming probability. Ties decode to
// the smallest base so the result is deterministic.
func (e *Encoder) DecodeWindowApprox(h *hdc.HV) (*genome.Sequence, error) {
	if h.Dim() != e.cfg.Dim {
		return nil, fmt.Errorf("encoding: decode dimension %d != encoder %d", h.Dim(), e.cfg.Dim)
	}
	out := genome.NewSequence(e.cfg.Window)
	for i := 0; i < e.cfg.Window; i++ {
		best, bestDot := genome.Base(0), h.Dot(e.rot[0][i])
		for b := 1; b < genome.AlphabetSize; b++ {
			if d := h.Dot(e.rot[b][i]); d > bestDot {
				best, bestDot = genome.Base(b), d
			}
		}
		out.Set(i, best)
	}
	return out, nil
}

// AccumulateWindow returns the raw (unsealed) positional-bundle counters
// for the window of seq starting at start.
func (e *Encoder) AccumulateWindow(seq *genome.Sequence, start int) *hdc.Acc {
	e.checkWindow(seq, start)
	acc := hdc.NewAcc(e.cfg.Dim)
	for i := 0; i < e.cfg.Window; i++ {
		acc.Add(e.rot[seq.At(start+i)][i])
	}
	return acc
}

// tieSeed derives the deterministic tie-break seed for sealed bundles
// from the item-memory seed, so all encodings under one encoder agree.
func (e *Encoder) tieSeed() uint64 { return e.cfg.Seed ^ 0xb10b1d_5ea1 }

// Encode returns the window encoding at start under the given mode.
func (e *Encoder) Encode(seq *genome.Sequence, start int, mode Mode) *hdc.HV {
	switch mode {
	case ModeExact:
		return e.EncodeWindowExact(seq, start)
	case ModeApprox:
		return e.EncodeWindowApprox(seq, start)
	default:
		panic(fmt.Sprintf("encoding: unknown mode %d", int(mode)))
	}
}

// SlideExact calls fn with (start, encoding) for every window of seq at
// the given stride, reusing an incrementally maintained binding chain.
// The hypervector passed to fn is reused across calls; fn must Clone it
// to retain it. fn returning false stops the slide.
func (e *Encoder) SlideExact(seq *genome.Sequence, stride int, fn func(start int, hv *hdc.HV) bool) {
	if stride <= 0 {
		panic(fmt.Sprintf("encoding: stride %d must be positive", stride))
	}
	w := e.cfg.Window
	if seq.Len() < w {
		return
	}
	cur := e.EncodeWindowExact(seq, 0)
	scratch := hdc.NewHV(e.cfg.Dim)
	pos := 0
	for {
		if pos%stride == 0 {
			if !fn(pos, cur) {
				return
			}
		}
		if pos+w >= seq.Len() {
			return
		}
		// E_{p+1} = ρ⁻¹(E_p ⊙ B[s_p]) ⊙ ρ^{w−1}(B[s_{p+w}])
		cur.Bind(cur, e.rot[seq.At(pos)][0])
		scratch.Permute(cur, -1)
		cur, scratch = scratch, cur
		cur.Bind(cur, e.rot[seq.At(pos+w)][w-1])
		pos++
	}
}

// SlideApprox calls fn with (start, raw counters, logical offset) for
// every window of seq at the given stride. The counters are maintained
// incrementally with a circular logical offset: the logical counter for
// dimension j lives at raw index (j + off) mod Dim. SealLogical converts
// the pair to a window hypervector. The accumulator is reused across
// calls; fn must not retain it. fn returning false stops the slide.
func (e *Encoder) SlideApprox(seq *genome.Sequence, stride int, fn func(start int, acc *hdc.Acc, off int) bool) {
	if stride <= 0 {
		panic(fmt.Sprintf("encoding: stride %d must be positive", stride))
	}
	w, d := e.cfg.Window, e.cfg.Dim
	if seq.Len() < w {
		return
	}
	acc := hdc.NewAcc(d)
	for i := 0; i < w; i++ {
		acc.Add(e.rot[seq.At(i)][i])
	}
	off := 0
	rotated := hdc.NewHV(d)
	pos := 0
	for {
		if pos%stride == 0 {
			if !fn(pos, acc, off) {
				return
			}
		}
		if pos+w >= seq.Len() {
			return
		}
		// Logical update W_{p+1} = ρ⁻¹(W_p − ρ⁰(B[s_p])) + ρ^{w−1}(B[s_{p+w}]).
		// On raw counters with logical offset o, adding ρ^k logically is
		// adding ρ^{k+o} raw, and the ρ⁻¹ becomes o ← o+1.
		addLogical(acc, e.rot[seq.At(pos)][0], off, rotated, false)
		off = (off + 1) % d
		addLogical(acc, e.rot[seq.At(pos+w)][w-1], off, rotated, true)
		pos++
	}
}

// addLogical adds (or subtracts) h at logical offset off into acc, which
// on raw counters means adding ρ^off(h).
func addLogical(acc *hdc.Acc, h *hdc.HV, off int, scratch *hdc.HV, add bool) {
	target := h
	if off != 0 {
		scratch.Permute(h, off)
		target = scratch
	}
	if add {
		acc.Add(target)
	} else {
		acc.Sub(target)
	}
}

// SealLogical seals raw counters produced by SlideApprox into the window
// hypervector, undoing the circular offset. Counter ties are broken by a
// deterministic hash of the *logical* dimension index, so the same window
// seals identically whether encoded directly or reached by sliding.
func (e *Encoder) SealLogical(acc *hdc.Acc, off int) *hdc.HV {
	out := hdc.NewHV(e.cfg.Dim)
	e.SealLogicalInto(out, acc, off)
	return out
}

// SealLogicalInto is SealLogical writing into dst instead of
// allocating. It panics if dst has the wrong dimension.
//biohd:hotpath
func (e *Encoder) SealLogicalInto(dst *hdc.HV, acc *hdc.Acc, off int) {
	d := e.cfg.Dim
	e.checkDim(dst)
	words := dst.Bits().Words()
	seed := e.tieSeed()
	raw := off
	for j := 0; j < d; j += 64 {
		var w uint64
		for b := 0; b < 64; b++ {
			c := acc.Count(raw)
			if c > 0 || (c == 0 && tieBit(seed, j+b)) {
				w |= 1 << uint(b)
			}
			raw++
			if raw == d {
				raw = 0
			}
		}
		words[j/64] = w
	}
}

// tieBit is a deterministic balanced bit derived from (seed, logical
// dimension index).
func tieBit(seed uint64, j int) bool {
	state := seed + uint64(j)*0x9e3779b97f4a7c15
	return rng.SplitMix64(&state)&1 == 1
}

// NumWindows returns how many stride-aligned windows fit in a sequence of
// length n: zero if n < Window, else ⌈(n−Window+1)/stride⌉.
func (e *Encoder) NumWindows(n, stride int) int {
	if n < e.cfg.Window {
		return 0
	}
	return (n-e.cfg.Window)/stride + 1
}
