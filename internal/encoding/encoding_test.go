package encoding

import (
	"math"
	"testing"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

func testEncoder(t *testing.T, dim, window int) *Encoder {
	t.Helper()
	e, err := New(Config{Dim: dim, Window: window, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestConfigValidate(t *testing.T) {
	for name, cfg := range map[string]Config{
		"zero dim":      {Dim: 0, Window: 10},
		"unaligned dim": {Dim: 100, Window: 10},
		"zero window":   {Dim: 1024, Window: 0},
		"window >= dim": {Dim: 64, Window: 64},
	} {
		if _, err := New(cfg); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	if _, err := New(Config{Dim: 1024, Window: 32}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if ModeExact.String() != "exact" || ModeApprox.String() != "approx" {
		t.Fatal("mode names wrong")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode empty")
	}
}

func TestEncoderDeterministic(t *testing.T) {
	a := testEncoder(t, 1024, 16)
	b := testEncoder(t, 1024, 16)
	seq := genome.Random(64, rng.New(1))
	if !a.EncodeWindowExact(seq, 3).Equal(b.EncodeWindowExact(seq, 3)) {
		t.Fatal("exact encodings differ across encoders with same seed")
	}
	if !a.EncodeWindowApprox(seq, 3).Equal(b.EncodeWindowApprox(seq, 3)) {
		t.Fatal("approx encodings differ across encoders with same seed")
	}
}

func TestExactEncodingDiscriminates(t *testing.T) {
	e := testEncoder(t, 2048, 24)
	seq := genome.Random(100, rng.New(2))
	h1 := e.EncodeWindowExact(seq, 0)
	// Same content elsewhere encodes identically.
	dup := seq.Slice(0, 24).Append(seq.Slice(24, 100))
	if !e.EncodeWindowExact(dup, 0).Equal(h1) {
		t.Fatal("equal window content encoded differently")
	}
	// One substitution anywhere randomizes the encoding.
	mut := seq.Clone()
	mut.Set(10, mut.At(10).Complement())
	h2 := e.EncodeWindowExact(mut, 0)
	limit := int(6 * math.Sqrt(2048))
	if d := h1.Dot(h2); d > limit || d < -limit {
		t.Fatalf("mutated exact encoding still similar: dot=%d", d)
	}
}

func TestExactEncodingPositionSensitive(t *testing.T) {
	// The same bases in a different order must encode differently.
	e := testEncoder(t, 2048, 4)
	a := genome.MustFromString("ACGT")
	b := genome.MustFromString("TGCA")
	ha, hb := e.EncodeWindowExact(a, 0), e.EncodeWindowExact(b, 0)
	limit := int(6 * math.Sqrt(2048))
	if d := ha.Dot(hb); d > limit || d < -limit {
		t.Fatalf("permuted window content encoded similarly: dot=%d", d)
	}
}

func TestApproxEncodingGracefulDegradation(t *testing.T) {
	e := testEncoder(t, 4096, 33) // odd window: no counter ties
	src := rng.New(3)
	seq := genome.Random(33, src)
	base := e.EncodeWindowApprox(seq, 0)
	prevCos := 1.0
	for _, nmut := range []int{1, 4, 8, 16} {
		mut, _ := genome.SubstituteExactly(seq, nmut, rng.New(uint64(nmut)))
		cos := base.Cosine(e.EncodeWindowApprox(mut, 0))
		if cos >= prevCos {
			t.Fatalf("similarity not decreasing: %d muts -> cos %v (prev %v)", nmut, cos, prevCos)
		}
		prevCos = cos
	}
	// With half the window mutated the similarity should still clearly
	// exceed the random-pair noise floor (~6/√D ≈ 0.094).
	if prevCos < 0.15 {
		t.Fatalf("16/33 mutated window already at noise floor: cos=%v", prevCos)
	}
	// An unrelated random window sits at the chance-agreement baseline:
	// ~1/4 of positions share a base by chance, so its similarity is well
	// below a half-mutated window's (17/33 agreement) but not zero.
	other := genome.Random(33, src)
	if cos := base.Cosine(e.EncodeWindowApprox(other, 0)); cos > prevCos || cos > 0.4 {
		t.Fatalf("unrelated window too similar: cos=%v (half-mutated %v)", cos, prevCos)
	}
}

func TestApproxSimilarityTracksMatchingPositions(t *testing.T) {
	// Expected cosine between two bundled windows sharing f·w positions
	// is ≈ (2f−1)·attenuation... empirically it must be monotone in f and
	// roughly linear; check the midpoint sits between the extremes.
	e := testEncoder(t, 8192, 32)
	seq := genome.Random(32, rng.New(4))
	full := e.EncodeWindowApprox(seq, 0)
	half, _ := genome.SubstituteExactly(seq, 16, rng.New(5))
	quarter, _ := genome.SubstituteExactly(seq, 8, rng.New(6))
	cosHalf := full.Cosine(e.EncodeWindowApprox(half, 0))
	cosQuarter := full.Cosine(e.EncodeWindowApprox(quarter, 0))
	if !(cosQuarter > cosHalf && cosHalf > 0) {
		t.Fatalf("similarity ordering broken: 8 muts %v, 16 muts %v", cosQuarter, cosHalf)
	}
	if ratio := cosQuarter / cosHalf; ratio < 1.2 || ratio > 3.0 {
		t.Fatalf("similarity not roughly proportional: ratio %v", ratio)
	}
}

func TestEncodeDispatch(t *testing.T) {
	e := testEncoder(t, 1024, 8)
	seq := genome.Random(20, rng.New(7))
	if !e.Encode(seq, 2, ModeExact).Equal(e.EncodeWindowExact(seq, 2)) {
		t.Fatal("Encode(ModeExact) mismatch")
	}
	if !e.Encode(seq, 2, ModeApprox).Equal(e.EncodeWindowApprox(seq, 2)) {
		t.Fatal("Encode(ModeApprox) mismatch")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown mode did not panic")
			}
		}()
		e.Encode(seq, 0, Mode(9))
	}()
}

func TestWindowOverrunPanics(t *testing.T) {
	e := testEncoder(t, 1024, 16)
	seq := genome.Random(20, rng.New(8))
	for _, start := range []int{-1, 5, 20} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("start=%d did not panic", start)
				}
			}()
			e.EncodeWindowExact(seq, start)
		}()
	}
}

func TestSlideExactMatchesDirect(t *testing.T) {
	e := testEncoder(t, 1024, 16)
	seq := genome.Random(100, rng.New(9))
	count := 0
	e.SlideExact(seq, 1, func(start int, hv *hdc.HV) bool {
		want := e.EncodeWindowExact(seq, start)
		if !hv.Equal(want) {
			t.Fatalf("incremental exact encoding diverges at window %d", start)
		}
		count++
		return true
	})
	if want := e.NumWindows(100, 1); count != want {
		t.Fatalf("visited %d windows, want %d", count, want)
	}
}

func TestSlideApproxMatchesDirect(t *testing.T) {
	for _, window := range []int{16, 17} { // even (ties possible) and odd
		e := testEncoder(t, 1024, window)
		seq := genome.Random(80, rng.New(10))
		e.SlideApprox(seq, 1, func(start int, acc *hdc.Acc, off int) bool {
			got := e.SealLogical(acc, off)
			want := e.EncodeWindowApprox(seq, start)
			if !got.Equal(want) {
				t.Fatalf("window=%d: incremental approx encoding diverges at %d", window, start)
			}
			return true
		})
	}
}

func TestSlideStride(t *testing.T) {
	e := testEncoder(t, 1024, 16)
	seq := genome.Random(100, rng.New(11))
	var starts []int
	e.SlideExact(seq, 7, func(start int, hv *hdc.HV) bool {
		starts = append(starts, start)
		return true
	})
	for i, s := range starts {
		if s != i*7 {
			t.Fatalf("stride walk visited %v", starts)
		}
	}
	if len(starts) != e.NumWindows(100, 7) {
		t.Fatalf("visited %d, NumWindows says %d", len(starts), e.NumWindows(100, 7))
	}
}

func TestSlideEarlyStop(t *testing.T) {
	e := testEncoder(t, 1024, 16)
	seq := genome.Random(100, rng.New(12))
	count := 0
	e.SlideExact(seq, 1, func(start int, hv *hdc.HV) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop visited %d windows", count)
	}
	count = 0
	e.SlideApprox(seq, 1, func(start int, acc *hdc.Acc, off int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("approx early stop visited %d", count)
	}
}

func TestSlideShortSequence(t *testing.T) {
	e := testEncoder(t, 1024, 16)
	seq := genome.Random(10, rng.New(13))
	called := false
	e.SlideExact(seq, 1, func(int, *hdc.HV) bool { called = true; return true })
	e.SlideApprox(seq, 1, func(int, *hdc.Acc, int) bool { called = true; return true })
	if called {
		t.Fatal("slide visited windows of a too-short sequence")
	}
	if e.NumWindows(10, 1) != 0 {
		t.Fatal("NumWindows nonzero for short sequence")
	}
}

func TestSlideStridePanics(t *testing.T) {
	e := testEncoder(t, 1024, 16)
	seq := genome.Random(50, rng.New(14))
	defer func() {
		if recover() == nil {
			t.Fatal("stride 0 did not panic")
		}
	}()
	e.SlideExact(seq, 0, func(int, *hdc.HV) bool { return true })
}

func TestNumWindows(t *testing.T) {
	e := testEncoder(t, 1024, 10)
	for _, tc := range []struct{ n, stride, want int }{
		{9, 1, 0}, {10, 1, 1}, {11, 1, 2}, {20, 1, 11},
		{20, 5, 3}, {20, 11, 1}, {21, 11, 2},
	} {
		if got := e.NumWindows(tc.n, tc.stride); got != tc.want {
			t.Fatalf("NumWindows(%d, %d) = %d, want %d", tc.n, tc.stride, got, tc.want)
		}
	}
}

func TestBaseHVOrthogonal(t *testing.T) {
	e := testEncoder(t, 2048, 8)
	limit := int(6 * math.Sqrt(2048))
	for a := genome.Base(0); a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			if d := e.BaseHV(a).Dot(e.BaseHV(b)); d > limit || d < -limit {
				t.Fatalf("base HVs %v,%v not quasi-orthogonal: %d", a, b, d)
			}
		}
	}
}

func TestAccumulateWindowCounts(t *testing.T) {
	e := testEncoder(t, 1024, 5)
	seq := genome.Random(10, rng.New(15))
	acc := e.AccumulateWindow(seq, 2)
	if acc.N() != 5 {
		t.Fatalf("accumulated %d vectors, want 5", acc.N())
	}
}

func BenchmarkSlideExactPerWindow(b *testing.B) {
	e, err := New(Config{Dim: 4096, Window: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := genome.Random(b.N+64, rng.New(1))
	b.ResetTimer()
	b.ReportAllocs()
	count := 0
	e.SlideExact(seq, 1, func(int, *hdc.HV) bool {
		count++
		return count < b.N
	})
}

func BenchmarkSlideApproxPerWindow(b *testing.B) {
	e, err := New(Config{Dim: 4096, Window: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := genome.Random(b.N+64, rng.New(1))
	b.ResetTimer()
	b.ReportAllocs()
	count := 0
	e.SlideApprox(seq, 1, func(int, *hdc.Acc, int) bool {
		count++
		return count < b.N
	})
}

func BenchmarkEncodeWindowApproxDirect(b *testing.B) {
	e, err := New(Config{Dim: 4096, Window: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := genome.Random(128, rng.New(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.EncodeWindowApprox(seq, i%64)
	}
}

// The Into-variant benchmarks are the allocation story of the lookup
// hot path: with caller-owned destinations, steady-state window
// encoding must not allocate at all (allocs/op = 0 in the report).

func BenchmarkEncodeWindowExactInto(b *testing.B) {
	e, err := New(Config{Dim: 4096, Window: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := genome.Random(128, rng.New(1))
	dst := hdc.NewHV(4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.EncodeWindowExactInto(dst, seq, i%64)
	}
}

func BenchmarkEncodeWindowApproxInto(b *testing.B) {
	e, err := New(Config{Dim: 4096, Window: 64, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	seq := genome.Random(128, rng.New(1))
	dst := hdc.NewHV(4096)
	acc := hdc.NewAcc(4096)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.EncodeWindowApproxInto(dst, acc, seq, i%64)
	}
}
