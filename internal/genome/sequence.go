// Package genome is the genomics substrate for BioHD: 2-bit-packed DNA
// sequences, FASTA input/output, mutation models with ground-truth edit
// tracking, and synthetic dataset generators (uniform random genomes,
// COVID-like variant databases, and sequencing-read samplers).
//
// The paper evaluates on public genome databases (GISAID COVID-19,
// bacterial and human references). This module is offline, so the
// generators here synthesize statistically comparable inputs: same
// alphabet, length scales, and variant structure (shared ancestry plus
// point mutations). See DESIGN.md §4 for the substitution rationale.
package genome

import (
	"fmt"
	"strings"
)

// Base is a DNA nucleotide encoded in 2 bits: A=0, C=1, G=2, T=3.
type Base uint8

// The four nucleotides.
const (
	A Base = 0
	C Base = 1
	G Base = 2
	T Base = 3
)

// AlphabetSize is the number of distinct bases.
const AlphabetSize = 4

// Byte returns the upper-case ASCII letter for b.
func (b Base) Byte() byte {
	return "ACGT"[b&3]
}

// String returns the one-letter name of b.
func (b Base) String() string { return string(b.Byte()) }

// ParseBase converts an ASCII nucleotide (either case) to a Base.
// Ambiguity codes (N, R, Y, ...) are rejected: BioHD's encoder operates
// on the concrete 4-letter alphabet, and the synthetic generators never
// emit ambiguity codes.
func ParseBase(c byte) (Base, error) {
	switch c {
	case 'A', 'a':
		return A, nil
	case 'C', 'c':
		return C, nil
	case 'G', 'g':
		return G, nil
	case 'T', 't':
		return T, nil
	default:
		return 0, fmt.Errorf("genome: invalid nucleotide %q", c)
	}
}

// Complement returns the Watson–Crick complement of b.
func (b Base) Complement() Base { return 3 - b }

const basesPerWord = 32

// Sequence is an immutable-by-convention DNA sequence packed 2 bits per
// base (32 bases per 64-bit word). The zero value is the empty sequence.
type Sequence struct {
	words []uint64
	n     int
}

// NewSequence returns a sequence of n A's (all bits zero).
func NewSequence(n int) *Sequence {
	if n < 0 {
		panic(fmt.Sprintf("genome: negative length %d", n))
	}
	return &Sequence{words: make([]uint64, (n+basesPerWord-1)/basesPerWord), n: n}
}

// FromString parses an ASCII nucleotide string into a Sequence.
func FromString(s string) (*Sequence, error) {
	seq := NewSequence(len(s))
	for i := 0; i < len(s); i++ {
		b, err := ParseBase(s[i])
		if err != nil {
			return nil, fmt.Errorf("genome: position %d: %w", i, err)
		}
		seq.Set(i, b)
	}
	return seq, nil
}

// MustFromString is FromString that panics on error; for tests and
// literals only.
func MustFromString(s string) *Sequence {
	seq, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// FromBases builds a sequence from a base slice.
func FromBases(bs []Base) *Sequence {
	seq := NewSequence(len(bs))
	for i, b := range bs {
		seq.Set(i, b)
	}
	return seq
}

// Len returns the number of bases.
func (s *Sequence) Len() int { return s.n }

// At returns the base at position i. It panics if i is out of range.
func (s *Sequence) At(i int) Base {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("genome: index %d out of range [0,%d)", i, s.n))
	}
	return Base(s.words[i/basesPerWord] >> (uint(i%basesPerWord) * 2) & 3)
}

// Set writes base b at position i. It panics if i is out of range.
func (s *Sequence) Set(i int, b Base) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("genome: index %d out of range [0,%d)", i, s.n))
	}
	shift := uint(i%basesPerWord) * 2
	w := &s.words[i/basesPerWord]
	*w = *w&^(3<<shift) | uint64(b&3)<<shift
}

// PackedWords exposes the 2-bit-packed words (32 bases per word). The
// slice is shared; treat it as read-only. For serialization.
func (s *Sequence) PackedWords() []uint64 { return s.words }

// FromPackedWords reconstructs a sequence of n bases from 2-bit-packed
// words (as produced by PackedWords). The words are copied. It panics if
// words cannot hold n bases.
func FromPackedWords(words []uint64, n int) *Sequence {
	need := (n + basesPerWord - 1) / basesPerWord
	if len(words) < need {
		panic(fmt.Sprintf("genome: %d words cannot hold %d bases", len(words), n))
	}
	w := make([]uint64, need)
	copy(w, words[:need])
	seq := &Sequence{words: w, n: n}
	return seq
}

// Bases returns the sequence as a fresh base slice.
func (s *Sequence) Bases() []Base {
	out := make([]Base, s.n)
	for i := range out {
		out[i] = s.At(i)
	}
	return out
}

// String renders the sequence as ASCII nucleotides.
func (s *Sequence) String() string {
	var sb strings.Builder
	sb.Grow(s.n)
	for i := 0; i < s.n; i++ {
		sb.WriteByte(s.At(i).Byte())
	}
	return sb.String()
}

// Clone returns an independent copy.
func (s *Sequence) Clone() *Sequence {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return &Sequence{words: w, n: s.n}
}

// Equal reports whether s and o are the same sequence.
func (s *Sequence) Equal(o *Sequence) bool {
	if s.n != o.n {
		return false
	}
	for i := 0; i < s.n; i++ { // tail words may differ in padding, compare by base
		if s.At(i) != o.At(i) {
			return false
		}
	}
	return true
}

// Slice returns the subsequence [start, end) as a new Sequence.
// It panics on an invalid range.
func (s *Sequence) Slice(start, end int) *Sequence {
	if start < 0 || end > s.n || start > end {
		panic(fmt.Sprintf("genome: invalid slice [%d,%d) of length %d", start, end, s.n))
	}
	out := NewSequence(end - start)
	for i := start; i < end; i++ {
		out.Set(i-start, s.At(i))
	}
	return out
}

// Append returns a new sequence that is s followed by o.
func (s *Sequence) Append(o *Sequence) *Sequence {
	out := NewSequence(s.n + o.n)
	for i := 0; i < s.n; i++ {
		out.Set(i, s.At(i))
	}
	for i := 0; i < o.n; i++ {
		out.Set(s.n+i, o.At(i))
	}
	return out
}

// ReverseComplement returns the reverse complement of s — the sequence
// read from the opposite DNA strand.
func (s *Sequence) ReverseComplement() *Sequence {
	out := NewSequence(s.n)
	for i := 0; i < s.n; i++ {
		out.Set(s.n-1-i, s.At(i).Complement())
	}
	return out
}

// KmerAt returns the 2-bit packed k-mer starting at position i as an
// integer in [0, 4^k). It panics if k > 31 or the k-mer overruns the
// sequence.
func (s *Sequence) KmerAt(i, k int) uint64 {
	if k <= 0 || k > 31 {
		panic(fmt.Sprintf("genome: k=%d out of range [1,31]", k))
	}
	if i < 0 || i+k > s.n {
		panic(fmt.Sprintf("genome: k-mer [%d,%d) overruns length %d", i, i+k, s.n))
	}
	var v uint64
	for j := 0; j < k; j++ {
		v = v<<2 | uint64(s.At(i+j))
	}
	return v
}

// BaseCounts returns the number of occurrences of each base.
func (s *Sequence) BaseCounts() [AlphabetSize]int {
	var c [AlphabetSize]int
	for i := 0; i < s.n; i++ {
		c[s.At(i)]++
	}
	return c
}

// GCContent returns the fraction of G and C bases (0 for empty).
func (s *Sequence) GCContent() float64 {
	if s.n == 0 {
		return 0
	}
	c := s.BaseCounts()
	return float64(c[G]+c[C]) / float64(s.n)
}

// HammingDistance returns the number of mismatching positions between two
// equal-length sequences. It panics on a length mismatch.
func (s *Sequence) HammingDistance(o *Sequence) int {
	if s.n != o.n {
		panic(fmt.Sprintf("genome: length mismatch %d vs %d", s.n, o.n))
	}
	d := 0
	for i := 0; i < s.n; i++ {
		if s.At(i) != o.At(i) {
			d++
		}
	}
	return d
}

// Index returns the offset of the first exact occurrence of pattern in s
// at or after position from, or −1 if there is none. Naive scan; this is
// a correctness oracle for tests, not a search algorithm (those live in
// internal/baseline).
func (s *Sequence) Index(pattern *Sequence, from int) int {
	if pattern.n == 0 {
		return from
	}
	for i := from; i+pattern.n <= s.n; i++ {
		match := true
		for j := 0; j < pattern.n; j++ {
			if s.At(i+j) != pattern.At(j) {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
