package genome

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA feeds arbitrary bytes to the FASTA parser: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadFASTA(f *testing.F) {
	f.Add([]byte(">id desc\nACGT\nacgt\n"))
	f.Add([]byte(">a\nA\n>b\nC\n"))
	f.Add([]byte(""))
	f.Add([]byte(">only-header\n"))
	f.Add([]byte("no header\n"))
	f.Add([]byte(">x\nACGN\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadFASTA(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteFASTA(&out, recs, 60); err != nil {
			t.Fatalf("accepted records failed to write: %v", err)
		}
		back, err := ReadFASTA(&out)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if len(back) != len(recs) {
			t.Fatalf("round trip changed record count %d -> %d", len(recs), len(back))
		}
		for i := range recs {
			if back[i].ID != recs[i].ID || !back[i].Seq.Equal(recs[i].Seq) {
				t.Fatalf("record %d changed in round trip", i)
			}
		}
	})
}

// FuzzFromString checks the sequence parser never panics and that
// accepted inputs round-trip through String.
func FuzzFromString(f *testing.F) {
	f.Add("ACGT")
	f.Add("acgt")
	f.Add("")
	f.Add("ACGTN")
	f.Add(strings.Repeat("GATTACA", 40))
	f.Fuzz(func(t *testing.T, s string) {
		seq, err := FromString(s)
		if err != nil {
			return
		}
		if got := seq.String(); got != strings.ToUpper(s) {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	})
}

// FuzzApplyEdits checks the edit replayer rejects or replays arbitrary
// edit lists without panicking.
func FuzzApplyEdits(f *testing.F) {
	f.Add("ACGTACGT", uint8(0), 2, uint8(1))
	f.Add("ACGT", uint8(1), 0, uint8(3))
	f.Fuzz(func(t *testing.T, base string, op uint8, pos int, to uint8) {
		seq, err := FromString(base)
		if err != nil {
			return
		}
		edits := []Edit{{Op: EditOp(op % 3), Pos: pos, To: Base(to % 4)}}
		out, err := ApplyEdits(seq, edits)
		if err != nil {
			return // rejected, fine
		}
		// Accepted edits must produce a plausible length.
		diff := out.Len() - seq.Len()
		if diff < -1 || diff > 1 {
			t.Fatalf("single edit changed length by %d", diff)
		}
	})
}
