package genome

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestMutationModelValidate(t *testing.T) {
	if err := (MutationModel{SubRate: 0.1, InsRate: 0.1, DelRate: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (MutationModel{SubRate: -0.1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := (MutationModel{SubRate: 0.6, InsRate: 0.5}).Validate(); err == nil {
		t.Fatal("rates summing past 1 accepted")
	}
}

func TestMutateZeroRatesIsIdentity(t *testing.T) {
	seq := Random(500, rng.New(1))
	out, edits, err := Mutate(seq, MutationModel{}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(edits) != 0 || !out.Equal(seq) {
		t.Fatalf("zero-rate mutation changed sequence (%d edits)", len(edits))
	}
}

func TestMutateSubOnlyPreservesLength(t *testing.T) {
	seq := Random(1000, rng.New(3))
	out, edits, err := Mutate(seq, MutationModel{SubRate: 0.05}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != seq.Len() {
		t.Fatalf("sub-only mutation changed length %d -> %d", seq.Len(), out.Len())
	}
	if out.HammingDistance(seq) != len(edits) {
		t.Fatalf("hamming %d != %d recorded edits", out.HammingDistance(seq), len(edits))
	}
	for _, e := range edits {
		if e.Op != EditSub {
			t.Fatalf("unexpected op %v", e.Op)
		}
		if out.At(e.Pos) != e.To || seq.At(e.Pos) == e.To {
			t.Fatalf("edit %+v not a real substitution", e)
		}
	}
}

func TestMutateRateIsCalibrated(t *testing.T) {
	seq := Random(20000, rng.New(5))
	const rate = 0.08
	out, edits, err := Mutate(seq, MutationModel{SubRate: rate}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	got := float64(len(edits)) / float64(seq.Len())
	if math.Abs(got-rate) > 0.01 {
		t.Fatalf("empirical rate %v far from %v", got, rate)
	}
	_ = out
}

func TestMutateIndelsChangeLength(t *testing.T) {
	seq := Random(5000, rng.New(7))
	out, edits, err := Mutate(seq, MutationModel{InsRate: 0.05, DelRate: 0.02}, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	ins, del := 0, 0
	for _, e := range edits {
		switch e.Op {
		case EditIns:
			ins++
		case EditDel:
			del++
		}
	}
	if out.Len() != seq.Len()+ins-del {
		t.Fatalf("length %d != %d + %d ins - %d del", out.Len(), seq.Len(), ins, del)
	}
	if ins == 0 || del == 0 {
		t.Fatal("expected both insertions and deletions at these rates")
	}
}

func TestApplyEditsReproducesMutation(t *testing.T) {
	seq := Random(2000, rng.New(9))
	out, edits, err := Mutate(seq, MutationModel{SubRate: 0.03, InsRate: 0.02, DelRate: 0.02}, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := ApplyEdits(seq, edits)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed.Equal(out) {
		t.Fatal("ApplyEdits does not reproduce Mutate output")
	}
}

func TestApplyEditsRejectsBadList(t *testing.T) {
	seq := MustFromString("ACGT")
	if _, err := ApplyEdits(seq, []Edit{{Op: EditSub, Pos: 99, To: A}}); err == nil {
		t.Fatal("out-of-range edit accepted")
	}
}

func TestSubstituteExactly(t *testing.T) {
	seq := Random(300, rng.New(11))
	for _, k := range []int{0, 1, 10, 300} {
		out, edits := SubstituteExactly(seq, k, rng.New(12))
		if len(edits) != k {
			t.Fatalf("k=%d: %d edits", k, len(edits))
		}
		if out.HammingDistance(seq) != k {
			t.Fatalf("k=%d: hamming %d", k, out.HammingDistance(seq))
		}
		if out.Len() != seq.Len() {
			t.Fatal("length changed")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("k > len did not panic")
			}
		}()
		SubstituteExactly(seq, 301, rng.New(13))
	}()
}

func TestEditOpString(t *testing.T) {
	if EditSub.String() != "sub" || EditIns.String() != "ins" || EditDel.String() != "del" {
		t.Fatal("EditOp names wrong")
	}
	if EditOp(9).String() == "" {
		t.Fatal("unknown op has empty name")
	}
}

// Property: ApplyEdits round-trips Mutate for arbitrary seeds and rates.
func TestQuickMutateReplay(t *testing.T) {
	f := func(seed uint64, subR, insR, delR uint8) bool {
		m := MutationModel{
			SubRate: float64(subR%30) / 100,
			InsRate: float64(insR%30) / 100,
			DelRate: float64(delR%30) / 100,
		}
		seq := Random(200, rng.New(seed))
		out, edits, err := Mutate(seq, m, rng.New(seed+1))
		if err != nil {
			return false
		}
		replayed, err := ApplyEdits(seq, edits)
		return err == nil && replayed.Equal(out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomUniform(t *testing.T) {
	seq := Random(40000, rng.New(14))
	c := seq.BaseCounts()
	for b, n := range c {
		frac := float64(n) / 40000
		if math.Abs(frac-0.25) > 0.02 {
			t.Fatalf("base %d frequency %v far from uniform", b, frac)
		}
	}
}

func TestRandomGC(t *testing.T) {
	seq := RandomGC(40000, 0.7, rng.New(15))
	if gc := seq.GCContent(); math.Abs(gc-0.7) > 0.02 {
		t.Fatalf("GC content %v, want ≈0.7", gc)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("gc out of range did not panic")
			}
		}()
		RandomGC(10, 1.5, rng.New(16))
	}()
}

func TestGenerateVariantDB(t *testing.T) {
	cfg := VariantDBConfig{
		AncestorLen:   2000,
		NumVariants:   20,
		BranchFactor:  3,
		MutPerBranch:  5,
		IndelFraction: 0.2,
		Seed:          17,
	}
	db, err := GenerateVariantDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Variants) != 20 {
		t.Fatalf("%d variants", len(db.Variants))
	}
	if db.Ancestor.Len() != 2000 {
		t.Fatalf("ancestor length %d", db.Ancestor.Len())
	}
	ids := map[string]bool{}
	for _, v := range db.Variants {
		if ids[v.ID] {
			t.Fatalf("duplicate ID %s", v.ID)
		}
		ids[v.ID] = true
		if v.Distance <= 0 {
			t.Fatalf("variant %s has distance %d", v.ID, v.Distance)
		}
		if len(v.Lineage) == 0 {
			t.Fatalf("variant %s has empty lineage", v.ID)
		}
		// Variants stay close to the ancestor length (few indels).
		if d := v.Seq.Len() - 2000; d > 50 || d < -50 {
			t.Fatalf("variant %s length drifted by %d", v.ID, d)
		}
	}
	// Deeper lineage ⇒ generally greater distance: root children have
	// strictly smaller distance than any depth-3 node.
	var depth1Max, depth3Min = 0, 1 << 30
	for _, v := range db.Variants {
		if len(v.Lineage) == 1 && v.Distance > depth1Max {
			depth1Max = v.Distance
		}
		if len(v.Lineage) == 3 && v.Distance < depth3Min {
			depth3Min = v.Distance
		}
	}
	if depth3Min < 1<<30 && depth3Min <= depth1Max/3 {
		t.Fatalf("depth-3 distance %d implausibly small vs depth-1 max %d", depth3Min, depth1Max)
	}
}

func TestGenerateVariantDBDeterministic(t *testing.T) {
	cfg := DefaultVariantDBConfig()
	cfg.AncestorLen, cfg.NumVariants = 1000, 8
	a, err := GenerateVariantDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateVariantDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Variants {
		if !a.Variants[i].Seq.Equal(b.Variants[i].Seq) {
			t.Fatalf("variant %d differs across runs with same seed", i)
		}
	}
}

func TestGenerateVariantDBConfigErrors(t *testing.T) {
	for name, cfg := range map[string]VariantDBConfig{
		"zero length": {AncestorLen: 0, NumVariants: 5, BranchFactor: 2},
		"zero count":  {AncestorLen: 100, NumVariants: 0, BranchFactor: 2},
		"bad branch":  {AncestorLen: 100, NumVariants: 5, BranchFactor: 0},
		"indel range": {AncestorLen: 100, NumVariants: 5, BranchFactor: 2, IndelFraction: 2},
	} {
		if _, err := GenerateVariantDB(cfg); err == nil {
			t.Fatalf("%s: config accepted", name)
		}
	}
}

func TestSampleReads(t *testing.T) {
	src := rng.New(18)
	seqs := []*Sequence{Random(500, src), Random(800, src), Random(50, src)}
	cfg := ReadSamplerConfig{ReadLen: 100, NumReads: 200, ErrorRate: 0.02, Seed: 19}
	reads, err := SampleReads(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 200 {
		t.Fatalf("%d reads", len(reads))
	}
	for _, r := range reads {
		if r.SourceIdx == 2 {
			t.Fatal("sampled from a too-short sequence")
		}
		if r.Seq.Len() != 100 {
			t.Fatalf("read length %d", r.Seq.Len())
		}
		truth := seqs[r.SourceIdx].Slice(r.Offset, r.Offset+100)
		if truth.HammingDistance(r.Seq) != r.Errors {
			t.Fatalf("error count %d does not match hamming %d",
				r.Errors, truth.HammingDistance(r.Seq))
		}
	}
}

func TestSampleReadsErrors(t *testing.T) {
	seqs := []*Sequence{Random(50, rng.New(20))}
	if _, err := SampleReads(seqs, ReadSamplerConfig{ReadLen: 100, NumReads: 1}); err == nil {
		t.Fatal("no eligible sequence accepted")
	}
	if _, err := SampleReads(seqs, ReadSamplerConfig{ReadLen: 0, NumReads: 1}); err == nil {
		t.Fatal("zero read length accepted")
	}
	if _, err := SampleReads(seqs, ReadSamplerConfig{ReadLen: 10, NumReads: 1, ErrorRate: 2}); err == nil {
		t.Fatal("error rate > 1 accepted")
	}
}
