package genome

import (
	"fmt"

	"repro/internal/rng"
)

// EditOp is the kind of a single sequence edit.
type EditOp uint8

// Edit operation kinds.
const (
	EditSub EditOp = iota // substitution: base at Pos replaced by To
	EditIns               // insertion: To inserted before Pos
	EditDel               // deletion: base at Pos removed
)

// String returns a short name for the operation.
func (op EditOp) String() string {
	switch op {
	case EditSub:
		return "sub"
	case EditIns:
		return "ins"
	case EditDel:
		return "del"
	default:
		return fmt.Sprintf("EditOp(%d)", uint8(op))
	}
}

// Edit is one mutation applied to a source sequence. Pos is an offset in
// the *original* sequence coordinates.
type Edit struct {
	Op  EditOp
	Pos int
	To  Base // substituted or inserted base; unused for deletions
}

// MutationModel is a per-base stochastic edit model. Each source position
// independently suffers a substitution with probability SubRate or a
// deletion with probability DelRate, and an insertion occurs before each
// position with probability InsRate. Rates must be non-negative and sum
// to at most 1.
type MutationModel struct {
	SubRate float64
	InsRate float64
	DelRate float64
}

// Validate checks the model's rates.
func (m MutationModel) Validate() error {
	if m.SubRate < 0 || m.InsRate < 0 || m.DelRate < 0 {
		return fmt.Errorf("genome: negative mutation rate %+v", m)
	}
	if s := m.SubRate + m.InsRate + m.DelRate; s > 1 {
		return fmt.Errorf("genome: mutation rates sum to %v > 1", s)
	}
	return nil
}

// Total returns the combined per-base mutation probability.
func (m MutationModel) Total() float64 { return m.SubRate + m.InsRate + m.DelRate }

// Mutate applies the model to seq using src and returns the mutated
// sequence together with the ground-truth edit list (original
// coordinates, in increasing position order).
func Mutate(seq *Sequence, m MutationModel, src *rng.Source) (*Sequence, []Edit, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	var out []Base
	var edits []Edit
	for i := 0; i < seq.Len(); i++ {
		if m.InsRate > 0 && src.Float64() < m.InsRate {
			ins := Base(src.Intn(AlphabetSize))
			out = append(out, ins)
			edits = append(edits, Edit{Op: EditIns, Pos: i, To: ins})
		}
		r := src.Float64()
		switch {
		case r < m.DelRate:
			edits = append(edits, Edit{Op: EditDel, Pos: i})
		case r < m.DelRate+m.SubRate:
			orig := seq.At(i)
			// Draw a base distinct from the original so every recorded
			// substitution is a real change.
			sub := Base((int(orig) + 1 + src.Intn(AlphabetSize-1)) % AlphabetSize)
			out = append(out, sub)
			edits = append(edits, Edit{Op: EditSub, Pos: i, To: sub})
		default:
			out = append(out, seq.At(i))
		}
	}
	return FromBases(out), edits, nil
}

// SubstituteExactly applies exactly k substitutions at distinct uniformly
// chosen positions and returns the mutated sequence plus the edits. It
// panics if k exceeds the sequence length. Used by experiments that sweep
// an exact mutation count rather than a rate.
func SubstituteExactly(seq *Sequence, k int, src *rng.Source) (*Sequence, []Edit) {
	if k < 0 || k > seq.Len() {
		panic(fmt.Sprintf("genome: cannot place %d substitutions in length %d", k, seq.Len()))
	}
	out := seq.Clone()
	positions := src.Perm(seq.Len())[:k]
	edits := make([]Edit, 0, k)
	for _, pos := range positions {
		orig := seq.At(pos)
		sub := Base((int(orig) + 1 + src.Intn(AlphabetSize-1)) % AlphabetSize)
		out.Set(pos, sub)
		edits = append(edits, Edit{Op: EditSub, Pos: pos, To: sub})
	}
	return out, edits
}

// ApplyEdits replays an edit list (as produced by Mutate, ordered by
// original position) against seq, reproducing the mutated sequence.
// It is the inverse check used in tests and in ground-truth bookkeeping.
func ApplyEdits(seq *Sequence, edits []Edit) (*Sequence, error) {
	var out []Base
	next := 0 // index into edits
	for i := 0; i <= seq.Len(); i++ {
		// Insertions recorded before position i.
		for next < len(edits) && edits[next].Pos == i && edits[next].Op == EditIns {
			out = append(out, edits[next].To)
			next++
		}
		if i == seq.Len() {
			break
		}
		switch {
		case next < len(edits) && edits[next].Pos == i && edits[next].Op == EditDel:
			next++
		case next < len(edits) && edits[next].Pos == i && edits[next].Op == EditSub:
			out = append(out, edits[next].To)
			next++
		default:
			out = append(out, seq.At(i))
		}
	}
	if next != len(edits) {
		return nil, fmt.Errorf("genome: %d edits not applied (mis-ordered or out of range)", len(edits)-next)
	}
	return FromBases(out), nil
}
