package genome

import (
	"fmt"

	"repro/internal/rng"
)

// Random returns a uniformly random sequence of length n.
func Random(n int, src *rng.Source) *Sequence {
	seq := NewSequence(n)
	for i := 0; i < n; i++ {
		seq.Set(i, Base(src.Intn(AlphabetSize)))
	}
	return seq
}

// RandomGC returns a random sequence of length n with expected GC content
// gc ∈ [0, 1]; real genomes deviate from 50% GC, and encoder behaviour
// must be insensitive to that skew.
func RandomGC(n int, gc float64, src *rng.Source) *Sequence {
	if gc < 0 || gc > 1 {
		panic(fmt.Sprintf("genome: gc=%v out of [0,1]", gc))
	}
	seq := NewSequence(n)
	for i := 0; i < n; i++ {
		if src.Float64() < gc {
			if src.Bool() {
				seq.Set(i, G)
			} else {
				seq.Set(i, C)
			}
		} else {
			if src.Bool() {
				seq.Set(i, A)
			} else {
				seq.Set(i, T)
			}
		}
	}
	return seq
}

// VariantDBConfig parameterizes the COVID-like variant database
// generator. The defaults (see DefaultVariantDBConfig) mirror the
// SARS-CoV-2 scale the paper evaluates on: a ~29.9 kb ancestor and
// variants accumulating a handful of point mutations per lineage branch.
type VariantDBConfig struct {
	AncestorLen   int     // length of the root genome (e.g. 29903)
	NumVariants   int     // number of database sequences to emit
	BranchFactor  int     // children per lineage node in the phylogeny
	MutPerBranch  float64 // expected substitutions added per branch step
	IndelFraction float64 // fraction of branch mutations that are indels
	Seed          uint64
}

// DefaultVariantDBConfig returns the SARS-CoV-2-scale defaults.
func DefaultVariantDBConfig() VariantDBConfig {
	return VariantDBConfig{
		AncestorLen:   29903,
		NumVariants:   64,
		BranchFactor:  3,
		MutPerBranch:  8,
		IndelFraction: 0.1,
		Seed:          1,
	}
}

// Variant is one generated database sequence with its lineage metadata.
type Variant struct {
	Record
	Lineage  []int // path of child indices from the root
	Distance int   // total edits accumulated relative to the ancestor path
}

// VariantDB is a synthetic variant database: a shared ancestor plus
// sequences related by a phylogenetic mutation cascade.
type VariantDB struct {
	Ancestor *Sequence
	Variants []Variant
}

// GenerateVariantDB builds a synthetic variant database. Starting from a
// random ancestor, it grows a BranchFactor-ary phylogeny breadth-first;
// each branch applies a Poisson-ish (binomial thinned) number of point
// mutations, a fraction of which are single-base indels. Generation is
// fully determined by the config.
func GenerateVariantDB(cfg VariantDBConfig) (*VariantDB, error) {
	if cfg.AncestorLen <= 0 || cfg.NumVariants <= 0 {
		return nil, fmt.Errorf("genome: invalid variant DB config %+v", cfg)
	}
	if cfg.BranchFactor < 1 {
		return nil, fmt.Errorf("genome: branch factor %d < 1", cfg.BranchFactor)
	}
	if cfg.IndelFraction < 0 || cfg.IndelFraction > 1 {
		return nil, fmt.Errorf("genome: indel fraction %v out of [0,1]", cfg.IndelFraction)
	}
	src := rng.New(cfg.Seed)
	ancestor := Random(cfg.AncestorLen, src)

	type node struct {
		seq     *Sequence
		lineage []int
		dist    int
	}
	queue := []node{{seq: ancestor}}
	db := &VariantDB{Ancestor: ancestor}
	for len(db.Variants) < cfg.NumVariants {
		cur := queue[0]
		queue = queue[1:]
		for c := 0; c < cfg.BranchFactor && len(db.Variants) < cfg.NumVariants; c++ {
			child, edits := mutateBranch(cur.seq, cfg, src)
			lineage := append(append([]int(nil), cur.lineage...), c)
			v := Variant{
				Record: Record{
					ID:          fmt.Sprintf("VAR-%04d", len(db.Variants)),
					Description: fmt.Sprintf("lineage=%v edits=%d", lineage, cur.dist+len(edits)),
					Seq:         child,
				},
				Lineage:  lineage,
				Distance: cur.dist + len(edits),
			}
			db.Variants = append(db.Variants, v)
			queue = append(queue, node{seq: child, lineage: lineage, dist: v.Distance})
		}
	}
	return db, nil
}

// mutateBranch applies one lineage step of mutations.
func mutateBranch(seq *Sequence, cfg VariantDBConfig, src *rng.Source) (*Sequence, []Edit) {
	// Draw the mutation count as Binomial(2·MutPerBranch, 1/2): mean
	// MutPerBranch, small variance, never negative.
	trials := int(2 * cfg.MutPerBranch)
	k := 0
	for i := 0; i < trials; i++ {
		if src.Bool() {
			k++
		}
	}
	if k == 0 {
		k = 1 // every branch changes something
	}
	nIndel := int(float64(k) * cfg.IndelFraction)
	nSub := k - nIndel

	mutated, edits := SubstituteExactly(seq, nSub, src)
	for i := 0; i < nIndel; i++ {
		pos := src.Intn(mutated.Len())
		if src.Bool() { // single-base insertion
			ins := Base(src.Intn(AlphabetSize))
			mutated = mutated.Slice(0, pos).
				Append(FromBases([]Base{ins})).
				Append(mutated.Slice(pos, mutated.Len()))
			edits = append(edits, Edit{Op: EditIns, Pos: pos, To: ins})
		} else { // single-base deletion
			mutated = mutated.Slice(0, pos).Append(mutated.Slice(pos+1, mutated.Len()))
			edits = append(edits, Edit{Op: EditDel, Pos: pos})
		}
	}
	return mutated, edits
}

// Read is a sampled sequencing read with its ground-truth origin.
type Read struct {
	Seq       *Sequence
	SourceIdx int // index of the source sequence in the sampled set
	Offset    int // offset of the error-free read within the source
	Errors    int // number of sequencing errors injected
}

// ReadSamplerConfig parameterizes SampleReads.
type ReadSamplerConfig struct {
	ReadLen   int     // length of each read
	NumReads  int     // how many reads to draw
	ErrorRate float64 // per-base substitution error probability
	Seed      uint64
}

// SampleReads draws reads uniformly from the given sequences (uniform
// over sequences, then uniform over valid offsets) and injects
// substitution sequencing errors. Sequences shorter than ReadLen are
// skipped; an error is returned if none is long enough.
func SampleReads(seqs []*Sequence, cfg ReadSamplerConfig) ([]Read, error) {
	if cfg.ReadLen <= 0 || cfg.NumReads < 0 {
		return nil, fmt.Errorf("genome: invalid read sampler config %+v", cfg)
	}
	if cfg.ErrorRate < 0 || cfg.ErrorRate > 1 {
		return nil, fmt.Errorf("genome: error rate %v out of [0,1]", cfg.ErrorRate)
	}
	var eligible []int
	for i, s := range seqs {
		if s.Len() >= cfg.ReadLen {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return nil, fmt.Errorf("genome: no sequence of length ≥ %d to sample from", cfg.ReadLen)
	}
	src := rng.New(cfg.Seed)
	reads := make([]Read, 0, cfg.NumReads)
	for i := 0; i < cfg.NumReads; i++ {
		si := eligible[src.Intn(len(eligible))]
		seq := seqs[si]
		off := src.Intn(seq.Len() - cfg.ReadLen + 1)
		read := seq.Slice(off, off+cfg.ReadLen)
		errs := 0
		for p := 0; p < read.Len(); p++ {
			if src.Float64() < cfg.ErrorRate {
				orig := read.At(p)
				read.Set(p, Base((int(orig)+1+src.Intn(AlphabetSize-1))%AlphabetSize))
				errs++
			}
		}
		reads = append(reads, Read{Seq: read, SourceIdx: si, Offset: off, Errors: errs})
	}
	return reads, nil
}
