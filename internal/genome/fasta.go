package genome

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Record is one FASTA entry: an identifier, an optional free-text
// description, and the sequence itself.
type Record struct {
	ID          string
	Description string
	Seq         *Sequence
}

// MaskPolicy controls how ReadFASTAWith treats IUPAC ambiguity codes
// (N, R, Y, ...) that the 2-bit alphabet cannot represent.
type MaskPolicy int

// Mask policies.
const (
	// MaskReject fails on any ambiguity code (the ReadFASTA default).
	MaskReject MaskPolicy = iota
	// MaskSubstitute deterministically replaces each ambiguity code with
	// a base derived from its position, so real-world references load
	// reproducibly. Masked fractions are reported per record.
	MaskSubstitute
	// MaskSkip drops records containing ambiguity codes.
	MaskSkip
)

// MaskedRecord pairs a record with how many bases were masked.
type MaskedRecord struct {
	Record
	Masked int // ambiguity codes substituted (MaskSubstitute only)
}

// ReadFASTAWith parses FASTA records applying the given ambiguity
// policy. Real genome assemblies contain N runs; MaskSubstitute lets the
// platform ingest them while reporting how much was synthesized.
func ReadFASTAWith(r io.Reader, policy MaskPolicy) ([]MaskedRecord, error) {
	switch policy {
	case MaskReject, MaskSubstitute, MaskSkip:
	default:
		return nil, fmt.Errorf("genome: unknown mask policy %d", int(policy))
	}
	if policy == MaskReject {
		recs, err := ReadFASTA(r)
		if err != nil {
			return nil, err
		}
		out := make([]MaskedRecord, len(recs))
		for i, rec := range recs {
			out[i] = MaskedRecord{Record: rec}
		}
		return out, nil
	}
	raw, err := readFASTARaw(r)
	if err != nil {
		return nil, err
	}
	var out []MaskedRecord
	for _, rr := range raw {
		bases := make([]Base, 0, len(rr.seq))
		masked := 0
		skip := false
		for i := 0; i < len(rr.seq); i++ {
			b, err := ParseBase(rr.seq[i])
			if err != nil {
				if !isIUPAC(rr.seq[i]) {
					return nil, fmt.Errorf("genome: record %q: %w", rr.id, err)
				}
				if policy == MaskSkip {
					skip = true
					break
				}
				b = Base(uint(i) * 2654435761 % AlphabetSize) // deterministic in position
				masked++
			}
			bases = append(bases, b)
		}
		if skip {
			continue
		}
		out = append(out, MaskedRecord{
			Record: Record{ID: rr.id, Description: rr.desc, Seq: FromBases(bases)},
			Masked: masked,
		})
	}
	return out, nil
}

// isIUPAC reports whether c is a IUPAC nucleotide ambiguity code.
func isIUPAC(c byte) bool {
	switch c {
	case 'N', 'n', 'R', 'r', 'Y', 'y', 'S', 's', 'W', 'w',
		'K', 'k', 'M', 'm', 'B', 'b', 'D', 'd', 'H', 'h', 'V', 'v', 'U', 'u':
		return true
	}
	return false
}

type rawRecord struct {
	id, desc string
	seq      []byte
}

// readFASTARaw parses headers and raw sequence bytes without alphabet
// validation.
func readFASTARaw(r io.Reader) ([]rawRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		records []rawRecord
		cur     rawRecord
		open    bool
		lineNo  int
	)
	flush := func() {
		if open {
			records = append(records, cur)
			cur = rawRecord{}
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			flush()
			open = true
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("genome: line %d: empty FASTA header", lineNo)
			}
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				cur.id, cur.desc = header[:i], strings.TrimSpace(header[i+1:])
			} else {
				cur.id = header
			}
			continue
		}
		if !open {
			return nil, fmt.Errorf("genome: line %d: sequence data before first header", lineNo)
		}
		cur.seq = append(cur.seq, line...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("genome: reading FASTA: %w", err)
	}
	flush()
	return records, nil
}

// ReadFASTA parses FASTA records from r. Header lines start with '>';
// the first whitespace-separated token is the ID and the remainder the
// description. Sequence lines may be wrapped at any width. Blank lines
// are ignored. Lowercase bases are accepted; ambiguity codes are not
// (see ParseBase).
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		records []Record
		id      string
		desc    string
		bases   []Base
		open    bool
		lineNo  int
	)
	flush := func() {
		if open {
			records = append(records, Record{ID: id, Description: desc, Seq: FromBases(bases)})
			bases = nil
		}
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '>' {
			flush()
			open = true
			header := strings.TrimSpace(line[1:])
			if header == "" {
				return nil, fmt.Errorf("genome: line %d: empty FASTA header", lineNo)
			}
			if i := strings.IndexAny(header, " \t"); i >= 0 {
				id, desc = header[:i], strings.TrimSpace(header[i+1:])
			} else {
				id, desc = header, ""
			}
			continue
		}
		if !open {
			return nil, fmt.Errorf("genome: line %d: sequence data before first header", lineNo)
		}
		for i := 0; i < len(line); i++ {
			b, err := ParseBase(line[i])
			if err != nil {
				return nil, fmt.Errorf("genome: line %d: %w", lineNo, err)
			}
			bases = append(bases, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("genome: reading FASTA: %w", err)
	}
	flush()
	return records, nil
}

// WriteFASTA writes records to w, wrapping sequence lines at width
// columns (70 if width <= 0).
func WriteFASTA(w io.Writer, records []Record, width int) error {
	if width <= 0 {
		width = 70
	}
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if rec.Description != "" {
			fmt.Fprintf(bw, ">%s %s\n", rec.ID, rec.Description)
		} else {
			fmt.Fprintf(bw, ">%s\n", rec.ID)
		}
		s := rec.Seq.String()
		for start := 0; start < len(s); start += width {
			end := start + width
			if end > len(s) {
				end = len(s)
			}
			//lint:ignore errcheck bufio errors are sticky and surface at Flush
			bw.WriteString(s[start:end])
			//lint:ignore errcheck bufio errors are sticky and surface at Flush
			bw.WriteByte('\n')
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("genome: writing FASTA: %w", err)
	}
	return nil
}
