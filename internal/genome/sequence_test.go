package genome

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBaseRoundTrip(t *testing.T) {
	for _, b := range []Base{A, C, G, T} {
		got, err := ParseBase(b.Byte())
		if err != nil || got != b {
			t.Fatalf("round trip of %v failed: %v %v", b, got, err)
		}
	}
	if _, err := ParseBase('N'); err == nil {
		t.Fatal("ParseBase accepted ambiguity code N")
	}
	if _, err := ParseBase('x'); err == nil {
		t.Fatal("ParseBase accepted junk")
	}
	if b, err := ParseBase('g'); err != nil || b != G {
		t.Fatal("lowercase not accepted")
	}
}

func TestComplement(t *testing.T) {
	pairs := map[Base]Base{A: T, C: G, G: C, T: A}
	for b, want := range pairs {
		if b.Complement() != want {
			t.Fatalf("complement of %v = %v, want %v", b, b.Complement(), want)
		}
		if b.Complement().Complement() != b {
			t.Fatalf("double complement of %v not identity", b)
		}
	}
}

func TestSequenceSetAt(t *testing.T) {
	// Cross the 32-base word boundary.
	seq := NewSequence(70)
	for i := 0; i < 70; i++ {
		seq.Set(i, Base(i%4))
	}
	for i := 0; i < 70; i++ {
		if seq.At(i) != Base(i%4) {
			t.Fatalf("At(%d) = %v, want %v", i, seq.At(i), Base(i%4))
		}
	}
}

func TestSequenceStringRoundTrip(t *testing.T) {
	const s = "ACGTACGTTTGGCCAATCGA"
	seq := MustFromString(s)
	if seq.String() != s {
		t.Fatalf("round trip: %q != %q", seq.String(), s)
	}
	if seq.Len() != len(s) {
		t.Fatalf("Len = %d", seq.Len())
	}
}

func TestFromStringError(t *testing.T) {
	if _, err := FromString("ACGN"); err == nil {
		t.Fatal("FromString accepted N")
	}
	if !strings.Contains(FromStringErr("ACGN"), "position 3") {
		t.Fatal("error does not pinpoint the offending position")
	}
}

// FromStringErr returns the error text of FromString, for message checks.
func FromStringErr(s string) string {
	_, err := FromString(s)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestSliceAppend(t *testing.T) {
	seq := MustFromString("ACGTACGTAC")
	mid := seq.Slice(2, 6)
	if mid.String() != "GTAC" {
		t.Fatalf("Slice = %q", mid.String())
	}
	whole := seq.Slice(0, 4).Append(seq.Slice(4, 10))
	if !whole.Equal(seq) {
		t.Fatal("split+append != original")
	}
	empty := seq.Slice(3, 3)
	if empty.Len() != 0 {
		t.Fatal("empty slice has bases")
	}
}

func TestSlicePanics(t *testing.T) {
	seq := MustFromString("ACGT")
	for _, r := range [][2]int{{-1, 2}, {0, 5}, {3, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Slice(%d,%d) did not panic", r[0], r[1])
				}
			}()
			seq.Slice(r[0], r[1])
		}()
	}
}

func TestReverseComplement(t *testing.T) {
	seq := MustFromString("AACGT")
	rc := seq.ReverseComplement()
	if rc.String() != "ACGTT" {
		t.Fatalf("revcomp = %q", rc.String())
	}
	if !rc.ReverseComplement().Equal(seq) {
		t.Fatal("double revcomp not identity")
	}
}

func TestKmerAt(t *testing.T) {
	seq := MustFromString("ACGT")
	// A=0 C=1 G=2 T=3 → ACG = 0b000110 = 6
	if got := seq.KmerAt(0, 3); got != 6 {
		t.Fatalf("KmerAt(0,3) = %d, want 6", got)
	}
	if got := seq.KmerAt(1, 3); got != 0b011011 {
		t.Fatalf("KmerAt(1,3) = %d", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("overrunning k-mer did not panic")
			}
		}()
		seq.KmerAt(2, 3)
	}()
}

func TestKmerDistinctness(t *testing.T) {
	// All 4^k k-mers of a de-Bruijn-ish enumeration are distinct.
	k := 4
	seen := map[uint64]bool{}
	for v := 0; v < 256; v++ {
		bs := make([]Base, k)
		for j := 0; j < k; j++ {
			bs[j] = Base(v >> (2 * j) & 3)
		}
		km := FromBases(bs).KmerAt(0, k)
		if seen[km] {
			t.Fatalf("k-mer collision at %d", v)
		}
		seen[km] = true
	}
}

func TestBaseCountsGC(t *testing.T) {
	seq := MustFromString("GGCCAT")
	c := seq.BaseCounts()
	if c[G] != 2 || c[C] != 2 || c[A] != 1 || c[T] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if gc := seq.GCContent(); gc != 4.0/6.0 {
		t.Fatalf("GC = %v", gc)
	}
	if NewSequence(0).GCContent() != 0 {
		t.Fatal("empty GC not 0")
	}
}

func TestHammingDistanceSeq(t *testing.T) {
	a := MustFromString("ACGT")
	b := MustFromString("ACCA")
	if d := a.HammingDistance(b); d != 2 {
		t.Fatalf("hamming = %d", d)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("length mismatch did not panic")
			}
		}()
		a.HammingDistance(MustFromString("ACG"))
	}()
}

func TestIndexOracle(t *testing.T) {
	hay := MustFromString("ACGTACGTTACG")
	pat := MustFromString("TACG")
	if i := hay.Index(pat, 0); i != 3 {
		t.Fatalf("Index = %d, want 3", i)
	}
	if i := hay.Index(pat, 4); i != 8 {
		t.Fatalf("Index from 4 = %d, want 8", i)
	}
	if i := hay.Index(MustFromString("GGGG"), 0); i != -1 {
		t.Fatalf("absent pattern Index = %d", i)
	}
	if i := hay.Index(NewSequence(0), 5); i != 5 {
		t.Fatalf("empty pattern Index = %d", i)
	}
}

func TestCloneEqualIndependence(t *testing.T) {
	a := MustFromString("ACGTACGT")
	b := a.Clone()
	b.Set(0, T)
	if a.At(0) != A {
		t.Fatal("clone mutation leaked")
	}
	if a.Equal(b) {
		t.Fatal("Equal true after divergence")
	}
}

// Property: String/FromString round-trips arbitrary sequences.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)
		src := rng.New(seed)
		seq := Random(n, src)
		back, err := FromString(seq.String())
		return err == nil && back.Equal(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Slice(0,k) + Slice(k,n) == original.
func TestQuickSplitAppend(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw) + 1
		k := int(kRaw) % n
		seq := Random(n, rng.New(seed))
		return seq.Slice(0, k).Append(seq.Slice(k, n)).Equal(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFASTARoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "seq1", Description: "first test record", Seq: MustFromString("ACGTACGTACGTACGT")},
		{ID: "seq2", Seq: MustFromString("TTTT")},
		{ID: "seq3", Description: "empty", Seq: NewSequence(0)},
	}
	var sb strings.Builder
	if err := WriteFASTA(&sb, recs, 8); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTA(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records", len(back))
	}
	for i := range recs {
		if back[i].ID != recs[i].ID || back[i].Description != recs[i].Description {
			t.Fatalf("record %d header mismatch: %+v", i, back[i])
		}
		if !back[i].Seq.Equal(recs[i].Seq) {
			t.Fatalf("record %d sequence mismatch", i)
		}
	}
}

func TestReadFASTAWrappedAndBlank(t *testing.T) {
	in := ">id desc here\nACGT\n\nacgt\n>id2\nTT\n"
	recs, err := ReadFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].Seq.String() != "ACGTACGT" {
		t.Fatalf("wrapped sequence = %q", recs[0].Seq.String())
	}
	if recs[0].Description != "desc here" {
		t.Fatalf("description = %q", recs[0].Description)
	}
}

func TestReadFASTAErrors(t *testing.T) {
	for name, in := range map[string]string{
		"data before header": "ACGT\n",
		"empty header":       ">\nACGT\n",
		"bad base":           ">x\nACGN\n",
	} {
		if _, err := ReadFASTA(strings.NewReader(in)); err == nil {
			t.Fatalf("%s: no error", name)
		}
	}
}

func TestReadFASTAWithMaskSubstitute(t *testing.T) {
	in := ">x with Ns\nACGTNNNNACGT\n>y clean\nACGT\n"
	recs, err := ReadFASTAWith(strings.NewReader(in), MaskSubstitute)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("%d records", len(recs))
	}
	if recs[0].Masked != 4 || recs[1].Masked != 0 {
		t.Fatalf("masked counts %d/%d", recs[0].Masked, recs[1].Masked)
	}
	if recs[0].Seq.Len() != 12 {
		t.Fatalf("masked sequence length %d", recs[0].Seq.Len())
	}
	// Flanks preserved exactly.
	if recs[0].Seq.Slice(0, 4).String() != "ACGT" || recs[0].Seq.Slice(8, 12).String() != "ACGT" {
		t.Fatalf("flanks corrupted: %s", recs[0].Seq)
	}
	// Deterministic across parses.
	recs2, err := ReadFASTAWith(strings.NewReader(in), MaskSubstitute)
	if err != nil {
		t.Fatal(err)
	}
	if !recs[0].Seq.Equal(recs2[0].Seq) {
		t.Fatal("masking not deterministic")
	}
}

func TestReadFASTAWithMaskSkip(t *testing.T) {
	in := ">x\nACGN\n>y\nACGT\n"
	recs, err := ReadFASTAWith(strings.NewReader(in), MaskSkip)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].ID != "y" {
		t.Fatalf("skip policy kept %v", recs)
	}
}

func TestReadFASTAWithMaskReject(t *testing.T) {
	if _, err := ReadFASTAWith(strings.NewReader(">x\nACGN\n"), MaskReject); err == nil {
		t.Fatal("reject policy accepted N")
	}
	recs, err := ReadFASTAWith(strings.NewReader(">x\nACGT\n"), MaskReject)
	if err != nil || len(recs) != 1 {
		t.Fatalf("reject policy on clean input: %v %v", recs, err)
	}
}

func TestReadFASTAWithRejectsJunkEverywhere(t *testing.T) {
	// Non-IUPAC junk fails under every policy.
	for _, p := range []MaskPolicy{MaskReject, MaskSubstitute, MaskSkip} {
		if _, err := ReadFASTAWith(strings.NewReader(">x\nAC9T\n"), p); err == nil {
			t.Fatalf("policy %d accepted junk byte", p)
		}
	}
	if _, err := ReadFASTAWith(strings.NewReader(""), MaskPolicy(9)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}
