package cobs

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

// FuzzReadIndex feeds arbitrary bytes to the backend-dispatching
// loader: garbage, truncations, and cross-backend tag confusion must
// all be rejected with an error, never a panic, and the canonical
// cobs container must keep loading.
func FuzzReadIndex(f *testing.F) {
	x, err := New(Params{Window: 8, RowBits: 256, Hashes: 2})
	if err != nil {
		f.Fatal(err)
	}
	x.SetSealThreshold(2)
	for i := 0; i < 3; i++ {
		if err := x.Add(genome.Record{ID: "r", Seq: genome.Random(64, rng.New(uint64(i+1)))}); err != nil {
			f.Fatal(err)
		}
	}
	x.Freeze()
	var buf bytes.Buffer
	if _, err := x.WriteToV3(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:63])
	f.Add([]byte{})
	// Tag confusion: the header hint flipped to the HDC tag and to an
	// unregistered tag.
	for _, tag := range []byte{0, 99} {
		mut := append([]byte(nil), valid...)
		mut[60] = tag
		f.Add(mut)
	}
	// Damaged meta and arena bytes (CRC coverage).
	for _, off := range []int{70, len(valid) - 8} {
		mut := append([]byte(nil), valid...)
		mut[off] ^= 0xff
		f.Add(mut)
	}
	// Zero-segment container with a flipped header tag: no directory
	// entries exist, so only the meta section's leading tag word stands
	// between the flip and a foreign decoder.
	empty, err := New(Params{Window: 8, RowBits: 256, Hashes: 2})
	if err != nil {
		f.Fatal(err)
	}
	empty.Freeze()
	var ebuf bytes.Buffer
	if _, err := empty.WriteToV3(&ebuf); err != nil {
		f.Fatal(err)
	}
	for _, tag := range []byte{0, 99} {
		mut := append([]byte(nil), ebuf.Bytes()...)
		mut[60] = tag
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := core.ReadIndex(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Anything accepted must be searchable without panicking.
		info := idx.Describe()
		if info.Backend == "" {
			t.Fatal("accepted index with no backend name")
		}
		if _, _, err := idx.Lookup(genome.Random(32, rng.New(7))); err != nil &&
			idx.NumRefs() > 0 && info.Backend == BackendName {
			t.Fatalf("accepted cobs index cannot search: %v", err)
		}
	})
}
