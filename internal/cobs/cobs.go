// Package cobs is the COBS-style bit-sliced signature backend of the
// core.Index contract: per-reference k-mer Bloom rows transposed into
// bit-sliced columns, the classical compact-signature alternative to
// BioHD's hyperdimensional library (Bingmann et al., "COBS: a Compact
// Bit-Sliced Signature Index").
//
// Every reference gets an identically shaped Bloom signature of
// RowBits bits over its w-mers (the exact hashing scheme of
// baseline.KmerBloom). Sealing transposes a batch of signatures so bit
// position b of every signature lands in one contiguous row bitmap:
// row b, column j says "reference j's signature has bit b set". A
// query w-mer derives its Hashes probe positions and ANDs those rows —
// a few contiguous word scans over the arena, whatever the reference
// count — and the surviving columns are the candidate references,
// which are then verified against the actual sequences, so search is
// exact: Bloom false positives cost verification work, never wrong
// answers.
//
// The index carries the same segmented lifecycle as the HDC library:
// an active builder accumulates signatures and seals into immutable
// bit-sliced segments, mutations publish atomic snapshots, Remove
// tombstones columns, and Compact rewrites segments to drop them. It
// serializes into the shared v3 container under its own backend tag,
// so ReadIndex/OpenLibraryFile round-trip both backends from one file
// format.
package cobs

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/genome"
)

// defaultSealThreshold is how many reference columns the active
// builder accumulates before live ingest seals it into an immutable
// segment. Columns are references (not windows), so the default is
// lower than the HDC library's bucket threshold.
const defaultSealThreshold = 1024

// maxHashes mirrors baseline.KmerBloom's probe-count cap; probe
// scratch sizes position arrays to it statically.
const maxHashes = 16

// maxRowBits caps the signature length (8 MiB of bits per reference) —
// a plausibility bound so a forged RowBits in an unverified container
// meta section cannot force a giant allocation.
const maxRowBits = 1 << 26

// Params configures a bit-sliced signature index.
type Params struct {
	// Window is the w-mer length indexed and queried (1..1024).
	Window int
	// RowBits is the signature length in bits — the number of bit-sliced
	// rows. Every reference's Bloom signature has this exact shape.
	// Must be a positive multiple of 64. Default 1 << 16.
	RowBits int
	// Hashes is the probe positions derived per w-mer (1..16).
	// Default 4.
	Hashes int
}

func (p *Params) applyDefaults() {
	if p.Window == 0 {
		p.Window = 32
	}
	if p.RowBits == 0 {
		p.RowBits = 1 << 16
	}
	if p.Hashes == 0 {
		p.Hashes = 4
	}
}

// Validate rejects out-of-range parameters with errors wrapping
// baseline.ErrSizing — the sizing rules of baseline.NewKmerBloomFixed
// plus a RowBits plausibility cap. It allocates nothing: the v3 loader
// runs it on unverified metadata before any checksum has been seen.
func (p Params) Validate() error {
	if p.Window <= 0 || p.Window > 1024 {
		return fmt.Errorf("cobs: w-mer length %d out of [1,1024]: %w", p.Window, baseline.ErrSizing)
	}
	if p.RowBits <= 0 || p.RowBits%64 != 0 || p.RowBits > maxRowBits {
		return fmt.Errorf("cobs: signature length %d must be a positive multiple of 64 up to %d: %w", p.RowBits, maxRowBits, baseline.ErrSizing)
	}
	if p.Hashes < 1 || p.Hashes > maxHashes {
		return fmt.Errorf("cobs: hash count %d out of [1,%d]: %w", p.Hashes, maxHashes, baseline.ErrSizing)
	}
	return nil
}

// Index is a bit-sliced signature index over a reference collection.
// It implements core.Index: lock-free readers scan atomically
// published snapshots while mutations serialize on an internal lock,
// exactly the discipline of the HDC library.
type Index struct {
	params Params

	snap atomic.Pointer[snapshot]

	mu     sync.Mutex // guards the mutable state below
	refs   []genome.Record
	segs   []*segment
	active *builder

	sealThreshold int
	autoCompact   float64

	scratch  sync.Pool // *probeScratch
	ctr      counters
	closed   atomic.Bool
	errShort error
}

// counters is the live atomic form of core.Counters for this backend.
type counters struct {
	bucketProbes       atomic.Int64
	batchCancellations atomic.Int64
	blockedProbes      atomic.Int64
	blockedWindows     atomic.Int64
	segmentSeals       atomic.Int64
	compactions        atomic.Int64
	heapScans          atomic.Int64
}

// New creates an empty index.
func New(p Params) (*Index, error) {
	p.applyDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Index{
		params:        p,
		active:        &builder{},
		sealThreshold: defaultSealThreshold,
		errShort:      fmt.Errorf("cobs: pattern shorter than window %d", p.Window),
	}, nil
}

// Params returns the index's configuration.
func (x *Index) Params() Params { return x.params }

// Describe identifies the backend and its shared geometry. Stride is 1:
// every reference w-mer is inserted, so a single query alignment has
// full sensitivity.
func (x *Index) Describe() core.IndexInfo {
	return core.IndexInfo{
		Backend: BackendName,
		Window:  x.params.Window,
		Stride:  1,
	}
}

// Threshold is the candidate-stage decision threshold: the fraction of
// probe rows that must hit. The AND of all Hashes rows means 1.0 —
// search is exact after verification.
func (x *Index) Threshold() float64 { return 1.0 }

// Frozen reports whether Freeze has been called.
func (x *Index) Frozen() bool { return x.snap.Load() != nil }

// SetSealThreshold sets how many reference columns the active builder
// accumulates before live ingest seals it (n <= 0 restores the
// default).
func (x *Index) SetSealThreshold(n int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if n <= 0 {
		n = defaultSealThreshold
	}
	x.sealThreshold = n
}

// SetAutoCompact arms automatic compaction: after a Remove pushes a
// segment's tombstone ratio past ratio, the segment is compacted
// before Remove returns. ratio <= 0 disables.
func (x *Index) SetAutoCompact(ratio float64) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.autoCompact = ratio
}

// Add indexes one reference: its w-mers are inserted into a fresh
// signature column appended to the active builder. After Freeze, Add
// keeps working (live ingest) and publishes a new snapshot; the active
// builder auto-seals at the seal threshold.
func (x *Index) Add(rec genome.Record) error {
	if rec.Seq == nil {
		return fmt.Errorf("cobs: reference %q has no sequence", rec.ID)
	}
	bloom, err := baseline.NewKmerBloomFixed(x.params.Window, x.params.RowBits, x.params.Hashes)
	if err != nil {
		return err
	}
	bloom.AddSequence(rec.Seq)
	nWin := rec.Seq.Len() - x.params.Window + 1
	if nWin < 0 {
		nWin = 0
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed.Load() {
		return core.ErrClosed
	}
	refIdx := int32(len(x.refs))
	x.refs = append(x.refs, rec)
	x.active.push(refIdx, bloom.SignatureWords(), int32(nWin))
	if x.active.numCols() >= x.sealThreshold {
		x.sealActiveLocked()
	}
	if x.Frozen() {
		x.publishLocked()
	}
	return nil
}

// sealActiveLocked transposes the active builder into an immutable
// segment and starts a fresh builder. Callers hold mu.
func (x *Index) sealActiveLocked() {
	if x.active.numCols() == 0 {
		return
	}
	x.segs = append(x.segs, x.active.seal(x.params.RowBits, x.refs))
	x.active = &builder{}
	x.ctr.segmentSeals.Add(1)
}

// Freeze publishes the first snapshot, enabling searches. Add, Remove,
// and Compact keep working after Freeze; each publishes a fresh
// snapshot.
func (x *Index) Freeze() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.publishLocked()
}

// publishLocked assembles and atomically publishes a snapshot of the
// sealed segments plus an isolated transposed view of the active
// builder. The snapshot always owns a fresh segment slice: Remove and
// Compact replace elements of x.segs in place, and lock-free readers
// iterate published snapshots concurrently — sharing the backing
// array would be a data race. Callers hold mu.
func (x *Index) publishLocked() {
	segs := make([]*segment, len(x.segs), len(x.segs)+1)
	copy(segs, x.segs)
	if x.active.numCols() > 0 {
		segs = append(segs, x.active.seal(x.params.RowBits, x.refs))
	}
	x.snap.Store(newSnapshot(segs, x.refs))
}

// Remove tombstones one reference: its column stops producing
// candidates, the reference table keeps the identifier with a nil
// sequence, and the storage is reclaimed by Compact. Sealed segments
// are never written in place — a fresh header with a copied tombstone
// bitmap shares the arena.
func (x *Index) Remove(refIdx int) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed.Load() {
		return core.ErrClosed
	}
	if x.snap.Load() == nil {
		return fmt.Errorf("cobs: Remove before Freeze")
	}
	if refIdx < 0 || refIdx >= len(x.refs) {
		return fmt.Errorf("cobs: reference %d out of range [0,%d)", refIdx, len(x.refs))
	}
	rec := x.refs[refIdx]
	if rec.Seq == nil {
		return fmt.Errorf("cobs: reference %d already removed", refIdx)
	}
	// Copy-on-write: published snapshots hold the old table.
	refs := append([]genome.Record(nil), x.refs...)
	rec.Seq = nil
	rec.Description += " (removed)"
	refs[refIdx] = rec
	x.refs = refs
	for i, seg := range x.segs {
		if col, ok := seg.findColumn(int32(refIdx)); ok {
			x.segs[i] = seg.withTombstone(col)
		}
	}
	x.active.remove(int32(refIdx))
	if x.autoCompact > 0 {
		if x.compactLocked(x.autoCompact) > 0 {
			return nil // compaction already published
		}
	}
	x.publishLocked()
	return nil
}

// Compact rewrites every sealed segment whose tombstone ratio is at
// least minRatio (minRatio <= 0 rewrites any segment holding
// tombstones): live columns are re-sliced into a fresh arena and
// tombstoned columns vanish. The rewrite lands as one snapshot swap.
// It returns the number of segments rewritten.
func (x *Index) Compact(minRatio float64) (int, error) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.closed.Load() {
		return 0, core.ErrClosed
	}
	if x.snap.Load() == nil {
		return 0, fmt.Errorf("cobs: Compact before Freeze")
	}
	return x.compactLocked(minRatio), nil
}

func (x *Index) compactLocked(minRatio float64) int {
	rewritten := 0
	segs := x.segs[:0:0]
	for _, seg := range x.segs {
		if seg.nTombs == 0 || seg.tombRatio() < minRatio {
			segs = append(segs, seg)
			continue
		}
		rewritten++
		if ns := seg.rebuild(x.params.RowBits); ns != nil {
			segs = append(segs, ns)
		}
	}
	if rewritten == 0 {
		return 0
	}
	x.segs = segs
	x.ctr.compactions.Add(int64(rewritten))
	x.publishLocked()
	return rewritten
}

// Close marks the index closed. The storage is heap-resident, so Close
// releases nothing; it exists to satisfy the Index lifecycle and is
// idempotent.
func (x *Index) Close() error {
	x.closed.Store(true)
	return nil
}

// NumRefs returns the number of references ever added (including
// removed ones, whose slots persist).
func (x *Index) NumRefs() int {
	if sn := x.snap.Load(); sn != nil {
		return len(sn.refs)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.refs)
}

// Ref returns reference i's record. Removed references keep their
// identifier with a nil sequence.
func (x *Index) Ref(i int) genome.Record {
	if sn := x.snap.Load(); sn != nil {
		return sn.refs[i]
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.refs[i]
}

// NumWindows returns the live (non-tombstoned) reference windows
// memorized in signatures.
func (x *Index) NumWindows() int {
	if sn := x.snap.Load(); sn != nil {
		return sn.nWin
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	n := x.active.numWindows()
	for _, seg := range x.segs {
		n += seg.liveWindows()
	}
	return n
}

// NumBuckets returns the total bit-sliced columns — one per indexed
// reference, the backend's analogue of the HDC bucket count.
func (x *Index) NumBuckets() int {
	if sn := x.snap.Load(); sn != nil {
		return sn.nCols
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	n := x.active.numCols()
	for _, seg := range x.segs {
		n += seg.numCols()
	}
	return n
}

// NumSegments returns the segments in the current snapshot (sealed
// plus the active view), or the sealed count before Freeze.
func (x *Index) NumSegments() int {
	if sn := x.snap.Load(); sn != nil {
		return len(sn.segs)
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	n := len(x.segs)
	if x.active.numCols() > 0 {
		n++
	}
	return n
}

// TombstoneRatio returns the fraction of memorized windows whose
// reference has been removed.
func (x *Index) TombstoneRatio() float64 {
	sn := x.snap.Load()
	if sn == nil || sn.total == 0 {
		return 0
	}
	return float64(sn.tombWins) / float64(sn.total)
}

// MemoryFootprint returns the bytes of bit-sliced arena and tombstone
// storage in the current snapshot.
func (x *Index) MemoryFootprint() int64 {
	sn := x.snap.Load()
	if sn == nil {
		x.mu.Lock()
		defer x.mu.Unlock()
		var n int64
		for _, seg := range x.segs {
			n += seg.memoryBytes()
		}
		return n + x.active.memoryBytes()
	}
	var n int64
	for _, seg := range sn.segs {
		n += seg.memoryBytes()
	}
	return n
}

// Mapped reports false: the bit-sliced backend is heap-resident.
func (x *Index) Mapped() bool { return false }

// MappedBytes returns 0 (no storage is file-backed).
func (x *Index) MappedBytes() int64 { return 0 }

// ResidentBytes equals MemoryFootprint: the whole store lives in RAM.
func (x *Index) ResidentBytes() int64 { return x.MemoryFootprint() }

// Counters returns a snapshot of the cumulative operational counters.
// EarlyAbandons and MappedScans are always zero for this backend (the
// AND kernel has no early-exit bound and nothing is mmapped).
func (x *Index) Counters() core.Counters {
	return core.Counters{
		BucketProbes:       x.ctr.bucketProbes.Load(),
		BatchCancellations: x.ctr.batchCancellations.Load(),
		BlockedProbes:      x.ctr.blockedProbes.Load(),
		BlockedWindows:     x.ctr.blockedWindows.Load(),
		SegmentSeals:       x.ctr.segmentSeals.Load(),
		Compactions:        x.ctr.compactions.Load(),
		HeapScans:          x.ctr.heapScans.Load(),
	}
}

// The bit-sliced index implements the backend contract.
var _ core.Index = (*Index)(nil)
