package cobs

import (
	"math/bits"

	"repro/internal/genome"
)

// builder accumulates per-reference Bloom signature rows until sealing
// transposes them into a bit-sliced segment. It is only ever touched
// under the index mutation lock and never published, so plain slices
// suffice.
type builder struct {
	refIdx []int32    // column -> global reference index
	sigs   [][]uint64 // column -> signature words (RowBits/64 each)
	wins   []int32    // column -> reference windows memorized
}

func (b *builder) numCols() int { return len(b.refIdx) }

func (b *builder) numWindows() int {
	n := 0
	for _, w := range b.wins {
		n += int(w)
	}
	return n
}

func (b *builder) memoryBytes() int64 {
	var n int64
	for _, s := range b.sigs {
		n += int64(len(s)) * 8
	}
	return n
}

// push appends one reference column.
func (b *builder) push(refIdx int32, sig []uint64, wins int32) {
	b.refIdx = append(b.refIdx, refIdx)
	b.sigs = append(b.sigs, sig)
	b.wins = append(b.wins, wins)
}

// remove drops the column of refIdx outright — the builder is still
// mutable, so unlike a sealed segment it needs no tombstone.
func (b *builder) remove(refIdx int32) {
	for i, r := range b.refIdx {
		if r == refIdx {
			b.refIdx = append(b.refIdx[:i], b.refIdx[i+1:]...)
			b.sigs = append(b.sigs[:i], b.sigs[i+1:]...)
			b.wins = append(b.wins[:i], b.wins[i+1:]...)
			return
		}
	}
}

// seal transposes the accumulated signature rows into an immutable
// bit-sliced segment: signature bit b of column j lands in word
// arena[b*colWords + j/64] bit j%64, so a probe of bit position b
// scans one contiguous colWords-long row covering every reference.
// Columns of removed references (nil sequence in refs) seal already
// tombstoned.
func (b *builder) seal(rowBits int, refs []genome.Record) *segment {
	cols := len(b.refIdx)
	colWords := (cols + 63) / 64
	s := &segment{
		arena:    make([]uint64, rowBits*colWords),
		tombs:    make([]uint64, colWords),
		refIdx:   append([]int32(nil), b.refIdx...),
		wins:     append([]int32(nil), b.wins...),
		colWords: colWords,
	}
	for j, sig := range b.sigs {
		word, bit := j/64, uint(j%64)
		for wi, sw := range sig {
			for sw != 0 {
				t := bits.TrailingZeros64(sw)
				sw &^= 1 << uint(t)
				row := wi*64 + t
				s.arena[row*colWords+word] |= 1 << bit
			}
		}
	}
	for j := range s.refIdx {
		s.totalWins += int(s.wins[j])
		// A compaction rebuild passes refs == nil: every surviving
		// column is live by construction.
		if refs != nil && refs[s.refIdx[j]].Seq == nil {
			s.tombs[j/64] |= 1 << uint(j%64)
			s.nTombs++
			s.tombWins += int(s.wins[j])
		}
	}
	return s
}

// segment is one immutable bit-sliced arena: rowBits rows of colWords
// words each, row-major, over numCols reference columns. Published
// segments are scanned lock-free by readers, so nothing here is ever
// written after seal — Remove replaces the header with a fresh
// tombstone bitmap sharing the arena, and Compact rebuilds from
// scratch. The raw storage (arena, tombs) is touched only in this file
// and snapshot.go; everything else goes through the accessors.
type segment struct {
	arena    []uint64 // rowBits × colWords, row-major
	tombs    []uint64 // tombstoned columns (bit j of word j/64)
	refIdx   []int32  // column -> global reference index
	wins     []int32  // column -> windows memorized
	colWords int

	nTombs    int
	totalWins int // windows across all columns, tombstoned included
	tombWins  int // windows in tombstoned columns
}

func (s *segment) numCols() int { return len(s.refIdx) }

func (s *segment) liveWindows() int { return s.totalWins - s.tombWins }

func (s *segment) tombRatio() float64 {
	if s.totalWins == 0 {
		return 0
	}
	return float64(s.tombWins) / float64(s.totalWins)
}

func (s *segment) memoryBytes() int64 {
	return int64(len(s.arena)+len(s.tombs)) * 8
}

// findColumn locates the column of a global reference index.
func (s *segment) findColumn(refIdx int32) (int, bool) {
	for j, r := range s.refIdx {
		if r == refIdx {
			return j, true
		}
	}
	return 0, false
}

// withTombstone returns a fresh segment header with column col
// tombstoned. The arena and column metadata are shared — published
// snapshots keep reading the old header.
func (s *segment) withTombstone(col int) *segment {
	ns := *s
	ns.tombs = append([]uint64(nil), s.tombs...)
	if ns.tombs[col/64]&(1<<uint(col%64)) != 0 {
		return s // already tombstoned
	}
	ns.tombs[col/64] |= 1 << uint(col%64)
	ns.nTombs++
	ns.tombWins += int(s.wins[col])
	return &ns
}

// signature reconstructs column col's Bloom signature from the
// bit-sliced arena (bit b set iff row b has the column's bit), for
// compaction rebuilds and serialization tests.
func (s *segment) signature(col int, rowBits int) []uint64 {
	sig := make([]uint64, rowBits/64)
	word, bit := col/64, uint(col%64)
	for b := 0; b < rowBits; b++ {
		if s.arena[b*s.colWords+word]&(1<<bit) != 0 {
			sig[b/64] |= 1 << uint(b%64)
		}
	}
	return sig
}

// rebuild re-slices the live columns into a fresh segment, dropping
// tombstoned ones; nil if nothing lives.
func (s *segment) rebuild(rowBits int) *segment {
	b := &builder{}
	for j := range s.refIdx {
		if s.tombs[j/64]&(1<<uint(j%64)) != 0 {
			continue
		}
		b.push(s.refIdx[j], s.signature(j, rowBits), s.wins[j])
	}
	if b.numCols() == 0 {
		return nil
	}
	return b.seal(rowBits, nil)
}

// probeAnd ANDs the probe-position rows into acc (colWords words) and
// masks out tombstoned columns: the surviving bits are the candidate
// columns for the queried w-mer. acc must have at least colWords
// capacity; the filled prefix is returned. This is the backend's whole
// candidate stage — a few contiguous word scans whatever the reference
// count.
//
//biohd:hotpath
func (s *segment) probeAnd(positions []int, acc []uint64) []uint64 {
	acc = acc[:s.colWords]
	row := s.arena[positions[0]*s.colWords:]
	copy(acc, row[:s.colWords])
	for _, p := range positions[1:] {
		row = s.arena[p*s.colWords:]
		for i := range acc {
			acc[i] &= row[i]
		}
	}
	for i := range acc {
		acc[i] &^= s.tombs[i]
	}
	return acc
}

// appendCandidates decodes the set bits of the AND accumulator into
// global reference indices, in ascending column order.
//
//biohd:hotpath
func (s *segment) appendCandidates(dst []int32, acc []uint64) []int32 {
	for wi, w := range acc {
		base := wi * 64
		for w != 0 {
			t := bits.TrailingZeros64(w)
			w &^= 1 << uint(t)
			dst = append(dst, s.refIdx[base+t])
		}
	}
	return dst
}

// arenaWords exposes the raw bit-sliced arena for serialization
// (read-only; the segment is immutable once published).
func (s *segment) arenaWords() []uint64 { return s.arena }

// colWordsCount returns the words per bit-sliced row.
func (s *segment) colWordsCount() int { return s.colWords }

// column returns column j's global reference index and window count.
func (s *segment) column(j int) (int32, int32) { return s.refIdx[j], s.wins[j] }

// segmentFromArena reassembles a sealed segment from a deserialized
// arena and column metadata, rebuilding the tombstone bitmap from the
// reference table (removed references have nil sequences).
func segmentFromArena(arena []uint64, colWords int, refIdx, wins []int32, refs []genome.Record) *segment {
	s := &segment{
		arena:    arena,
		tombs:    make([]uint64, colWords),
		refIdx:   refIdx,
		wins:     wins,
		colWords: colWords,
	}
	for j := range refIdx {
		s.totalWins += int(wins[j])
		if refs[refIdx[j]].Seq == nil {
			s.tombs[j/64] |= 1 << uint(j%64)
			s.nTombs++
			s.tombWins += int(wins[j])
		}
	}
	return s
}
