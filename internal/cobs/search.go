package cobs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

// probeScratch is the pooled per-lookup working set: the probe
// positions of the queried w-mer, the row-AND accumulator, and the
// candidate list. Sized for the widest segment of the snapshot that
// allocated it; probe paths grow it only on a snapshot that widened.
type probeScratch struct {
	pos   [maxHashes]int
	acc   []uint64
	cands []int32
}

func (x *Index) getScratch(sn *snapshot) *probeScratch {
	sc, ok := x.scratch.Get().(*probeScratch)
	if !ok {
		sc = &probeScratch{}
	}
	if cap(sc.acc) < sn.maxWords {
		sc.acc = make([]uint64, sn.maxWords)
	}
	return sc
}

func (x *Index) putScratch(sc *probeScratch) { x.scratch.Put(sc) }

// probePositions derives the Hashes probe rows for the w-mer of
// pattern starting at qoff — baseline.KmerBloom's position scheme
// exactly, so signatures built by either side agree.
//
//biohd:hotpath
func (x *Index) probePositions(pattern *genome.Sequence, qoff int, pos []int) []int {
	state := baseline.WindowHash(pattern, qoff, x.params.Window) ^ baseline.PositionSeed
	pos = pos[:x.params.Hashes]
	for i := range pos {
		pos[i] = int(rng.SplitMix64(&state) % uint64(x.params.RowBits))
	}
	return pos
}

// probeWindow runs the candidate stage for one query window across
// every segment of the snapshot: AND the probe rows, mask tombstones,
// and decode the surviving columns into global reference indices
// (ascending per segment, segments in order). Results land in sc.cands
// (reset here); stats and counters account the scan work.
//
//biohd:hotpath
func (x *Index) probeWindow(sn *snapshot, pattern *genome.Sequence, qoff int, sc *probeScratch, stats *core.Stats) {
	pos := x.probePositions(pattern, qoff, sc.pos[:])
	sc.cands = sc.cands[:0]
	stats.Alignments++
	for _, seg := range sn.segs {
		if seg.numCols() == 0 {
			continue
		}
		acc := seg.probeAnd(pos, sc.acc)
		sc.cands = seg.appendCandidates(sc.cands, acc)
		stats.BucketProbes += len(pos)
	}
	stats.CandidateBuckets += len(sc.cands)
	x.ctr.bucketProbes.Add(int64(len(pos) * len(sn.segs)))
	x.ctr.heapScans.Add(int64(len(sn.segs)))
}

// verifyWindow scans each candidate reference for exact occurrences of
// the query window [qoff, qoff+w) and appends a Match per occurrence:
// Off is the occurrence offset in the reference, QueryOff the window's
// offset in the query, Distance 0 (candidates that fail verification —
// Bloom false positives — are dropped, so search is exact). Candidates
// arrive in ascending reference order and occurrences in ascending
// offset order, so the output extends dst already sorted by (Ref, Off).
//
//biohd:hotpath
func (x *Index) verifyWindow(sn *snapshot, dst []core.Match, pattern *genome.Sequence, qoff int, cands []int32, stats *core.Stats) []core.Match {
	w := x.params.Window
	for _, ref := range cands {
		seq := sn.refs[ref].Seq
		if seq == nil {
			continue // tombstoned after the probed snapshot's seal
		}
		stats.WindowsVerified++
		for off := 0; off+w <= seq.Len(); off++ {
			j := 0
			for j < w && seq.At(off+j) == pattern.At(qoff+j) {
				j++
			}
			stats.BaseComparisons += j
			if j < w {
				stats.BaseComparisons++
				continue
			}
			dst = append(dst, core.Match{Ref: int(ref), Off: off, QueryOff: qoff, Distance: 0})
		}
	}
	return dst
}

// lookupSnap is Lookup against a pinned snapshot — the batch and block
// paths reuse it so a whole batch answers from one consistent view.
func (x *Index) lookupSnap(sn *snapshot, pattern *genome.Sequence, sc *probeScratch) ([]core.Match, core.Stats, error) {
	var stats core.Stats
	if pattern == nil || pattern.Len() < x.params.Window {
		return nil, stats, x.errShort
	}
	x.probeWindow(sn, pattern, 0, sc, &stats)
	var matches []core.Match
	matches = x.verifyWindow(sn, matches, pattern, 0, sc.cands, &stats)
	return matches, stats, nil
}

// Lookup searches for the pattern's leading window and returns every
// exact occurrence, sorted by (Ref, Off). The backend indexes every
// reference w-mer (stride 1), so the single alignment at offset 0 has
// full sensitivity; longer patterns are matched on their first w
// bases, exactly as an HDC library with Stride 1 would.
func (x *Index) Lookup(pattern *genome.Sequence) ([]core.Match, core.Stats, error) {
	sn := x.snap.Load()
	if sn == nil {
		return nil, core.Stats{}, fmt.Errorf("cobs: Lookup before Freeze")
	}
	if x.closed.Load() {
		return nil, core.Stats{}, core.ErrClosed
	}
	sc := x.getScratch(sn)
	defer x.putScratch(sc)
	return x.lookupSnap(sn, pattern, sc)
}

// LookupBothStrands searches the pattern and its reverse complement;
// offsets are always in reference coordinates.
func (x *Index) LookupBothStrands(pattern *genome.Sequence) ([]core.StrandedMatch, core.Stats, error) {
	fwd, stats, err := x.Lookup(pattern)
	if err != nil {
		return nil, stats, err
	}
	out := make([]core.StrandedMatch, 0, len(fwd))
	for _, m := range fwd {
		out = append(out, core.StrandedMatch{Match: m, Strand: core.Forward})
	}
	rev, rstats, err := x.Lookup(pattern.ReverseComplement())
	stats.Add(rstats)
	if err != nil {
		return nil, stats, err
	}
	for _, m := range rev {
		out = append(out, core.StrandedMatch{Match: m, Strand: core.Reverse})
	}
	return out, stats, nil
}

// LookupLong maps a long query: its non-overlapping windows are
// probed independently and core.RankWindows aggregates the per-window
// matches with the same diagonal voting the HDC library uses, so the
// two backends rank long reads identically given the same per-window
// hits.
func (x *Index) LookupLong(query *genome.Sequence, minFrac float64) ([]core.RefMatch, core.Stats, error) {
	var stats core.Stats
	w := x.params.Window
	if query == nil || query.Len() < w {
		return nil, stats, fmt.Errorf("cobs: query shorter than window %d", w)
	}
	sn := x.snap.Load()
	if sn == nil {
		return nil, stats, fmt.Errorf("cobs: Lookup before Freeze")
	}
	if x.closed.Load() {
		return nil, stats, core.ErrClosed
	}
	sc := x.getScratch(sn)
	defer x.putScratch(sc)
	var wins [][]core.Match
	var offs []int
	for base := 0; base+w <= query.Len(); base += w {
		x.probeWindow(sn, query, base, sc, &stats)
		var ms []core.Match
		ms = x.verifyWindow(sn, ms, query, base, sc.cands, &stats)
		// RankWindows adds offs[i]+QueryOff to place the window; the
		// matches carry QueryOff = base already, so the window offset
		// list stays zero.
		wins = append(wins, ms)
		offs = append(offs, 0)
	}
	return core.RankWindows(wins, offs, minFrac), stats, nil
}

// Classify returns the single best-supported reference for a query, or
// a core.ErrNoSupport-wrapped error if none reaches minFrac support.
func (x *Index) Classify(query *genome.Sequence, minFrac float64) (core.RefMatch, core.Stats, error) {
	ranked, stats, err := x.LookupLong(query, minFrac)
	if err != nil {
		return core.RefMatch{}, stats, err
	}
	if len(ranked) == 0 {
		return core.RefMatch{}, stats, fmt.Errorf("%w %v", core.ErrNoSupport, minFrac)
	}
	return ranked[0], stats, nil
}

// ClassifyBothStrands classifies the read in both orientations and
// returns the better-supported result (ties prefer forward).
func (x *Index) ClassifyBothStrands(read *genome.Sequence, minFrac float64) (core.RefMatch, core.Strand, core.Stats, error) {
	fwd, stats, errF := x.Classify(read, minFrac)
	rev, rstats, errR := x.Classify(read.ReverseComplement(), minFrac)
	stats.Add(rstats)
	switch {
	case errF == nil && (errR != nil || fwd.Votes >= rev.Votes):
		return fwd, core.Forward, stats, nil
	case errR == nil:
		return rev, core.Reverse, stats, nil
	default:
		return core.RefMatch{}, core.Forward, stats, errF
	}
}

// LookupBatchContext runs many lookups against one pinned snapshot
// with a bounded worker pool. Cancellation marks the unserved results
// with ctx.Err() and returns what completed; per-pattern errors land
// in the matching BatchResult.
func (x *Index) LookupBatchContext(ctx context.Context, patterns []*genome.Sequence, workers int) ([]core.BatchResult, core.Stats, error) {
	sn := x.snap.Load()
	if sn == nil {
		return nil, core.Stats{}, fmt.Errorf("cobs: Lookup before Freeze")
	}
	if x.closed.Load() {
		return nil, core.Stats{}, core.ErrClosed
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > len(patterns) {
		workers = len(patterns)
	}
	results := make([]core.BatchResult, len(patterns))
	statsCh := make([]core.Stats, workers)
	var next atomic.Int64
	var canceled atomic.Bool
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			sc := x.getScratch(sn)
			defer x.putScratch(sc)
			for {
				i := int(next.Add(1) - 1)
				if i >= len(patterns) {
					return
				}
				if err := ctx.Err(); err != nil {
					results[i].Err = err
					canceled.Store(true)
					continue
				}
				m, st, err := x.lookupSnap(sn, patterns[i], sc)
				results[i] = core.BatchResult{Matches: m, Stats: st, Err: err}
				statsCh[wk].Add(st)
			}
		}(wk)
	}
	wg.Wait()
	var agg core.Stats
	for _, st := range statsCh {
		agg.Add(st)
	}
	if canceled.Load() {
		x.ctr.batchCancellations.Add(1)
	}
	return results, agg, nil
}

// LookupBlock answers one caller-assembled block of at most
// core.BlockWidth patterns against a single snapshot — the blocked
// contract the cross-request coalescer drives. results must have
// len(patterns) zeroed entries; per-pattern outcomes (matches or an
// error, e.g. a short pattern) land in the matching slot.
func (x *Index) LookupBlock(patterns []*genome.Sequence, results []core.BatchResult) error {
	if len(patterns) == 0 || len(patterns) > core.BlockWidth {
		return fmt.Errorf("cobs: block of %d patterns outside [1,%d]", len(patterns), core.BlockWidth)
	}
	if len(results) != len(patterns) {
		return fmt.Errorf("cobs: results length %d != patterns length %d", len(results), len(patterns))
	}
	sn := x.snap.Load()
	if sn == nil {
		return fmt.Errorf("cobs: Lookup before Freeze")
	}
	if x.closed.Load() {
		return core.ErrClosed
	}
	sc := x.getScratch(sn)
	defer x.putScratch(sc)
	for i, pat := range patterns {
		m, st, err := x.lookupSnap(sn, pat, sc)
		results[i] = core.BatchResult{Matches: m, Stats: st, Err: err}
	}
	x.ctr.blockedProbes.Add(1)
	x.ctr.blockedWindows.Add(int64(len(patterns)))
	return nil
}
