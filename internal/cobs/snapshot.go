package cobs

import "repro/internal/genome"

// snapshot is one immutable, atomically published view of the index:
// the bit-sliced segments (sealed ones plus an isolated transposed
// view of the active builder) and the reference table in force.
// Readers load the current snapshot once per operation and never take
// a lock; mutations assemble a fresh snapshot off-line and swap the
// pointer.
type snapshot struct {
	segs []*segment
	refs []genome.Record // removed refs have Seq == nil

	nCols    int // total reference columns (the backend's NumBuckets)
	nWin     int // live (non-tombstoned) windows
	total    int // all windows, tombstoned included
	tombWins int
	maxWords int // widest segment's colWords, sizes probe scratch
}

func newSnapshot(segs []*segment, refs []genome.Record) *snapshot {
	sn := &snapshot{segs: segs, refs: refs}
	for _, seg := range segs {
		sn.nCols += seg.numCols()
		sn.total += seg.totalWins
		sn.tombWins += seg.tombWins
		if seg.colWords > sn.maxWords {
			sn.maxWords = seg.colWords
		}
	}
	sn.nWin = sn.total - sn.tombWins
	return sn
}
