package cobs

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

// testParams keeps signatures small enough that unit tests stay fast
// while leaving the false-positive rate low for a handful of refs.
var testParams = Params{Window: 16, RowBits: 4096, Hashes: 4}

func mustIndex(t *testing.T, p Params) *Index {
	t.Helper()
	x, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// buildIndex builds a frozen index over the given references.
func buildIndex(t *testing.T, refs ...*genome.Sequence) *Index {
	t.Helper()
	x := mustIndex(t, testParams)
	for i, seq := range refs {
		if err := x.Add(genome.Record{ID: refID(i), Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	x.Freeze()
	return x
}

func refID(i int) string {
	return string([]byte{'r', byte('0' + i)})
}

// naiveScan is the ground truth: every exact occurrence of the
// pattern's leading window across every live reference, in (Ref, Off)
// order.
func naiveScan(refs []*genome.Sequence, pattern *genome.Sequence, w int) []core.Match {
	var out []core.Match
	win := pattern.Slice(0, w)
	for r, seq := range refs {
		if seq == nil {
			continue
		}
		for off := 0; ; off++ {
			off = seq.Index(win, off)
			if off < 0 {
				break
			}
			out = append(out, core.Match{Ref: r, Off: off, QueryOff: 0, Distance: 0})
		}
	}
	return out
}

func sameMatches(a, b []core.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLookupMatchesNaiveScan(t *testing.T) {
	w := testParams.Window
	refs := []*genome.Sequence{
		genome.Random(3000, rng.New(1)),
		genome.Random(500, rng.New(2)),
		genome.Random(1200, rng.New(3)),
	}
	x := buildIndex(t, refs...)
	// Present windows from every reference, plus random absent queries.
	var queries []*genome.Sequence
	for _, seq := range refs {
		for _, off := range []int{0, 1, seq.Len() / 2, seq.Len() - w} {
			queries = append(queries, seq.Slice(off, off+w))
		}
	}
	for i := 0; i < 50; i++ {
		queries = append(queries, genome.Random(w, rng.New(uint64(100+i))))
	}
	for qi, q := range queries {
		got, _, err := x.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveScan(refs, q, w)
		if !sameMatches(got, want) {
			t.Fatalf("query %d: got %v want %v", qi, got, want)
		}
	}
}

func TestLookupRejectsShortAndUnfrozen(t *testing.T) {
	x := mustIndex(t, testParams)
	if err := x.Add(genome.Record{ID: "r", Seq: genome.Random(100, rng.New(1))}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Lookup(genome.Random(32, rng.New(2))); err == nil {
		t.Fatal("Lookup before Freeze succeeded")
	}
	x.Freeze()
	if _, _, err := x.Lookup(genome.Random(testParams.Window-1, rng.New(3))); !errors.Is(err, x.errShort) {
		t.Fatalf("short pattern: got %v", err)
	}
	if _, _, err := x.Lookup(nil); !errors.Is(err, x.errShort) {
		t.Fatalf("nil pattern: got %v", err)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := x.Lookup(genome.Random(32, rng.New(4))); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("closed Lookup: got %v", err)
	}
	if err := x.Add(genome.Record{ID: "x", Seq: genome.Random(50, rng.New(5))}); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("closed Add: got %v", err)
	}
}

func TestLookupBothStrands(t *testing.T) {
	w := testParams.Window
	ref := genome.Random(2000, rng.New(7))
	x := buildIndex(t, ref)
	pat := ref.Slice(400, 400+w).ReverseComplement()
	sms, _, err := x.LookupBothStrands(pat)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, sm := range sms {
		if sm.Strand == core.Reverse && sm.Off == 400 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reverse-strand occurrence at 400 missed: %v", sms)
	}
}

func TestLookupLongAndClassify(t *testing.T) {
	refs := []*genome.Sequence{
		genome.Random(4000, rng.New(11)),
		genome.Random(4000, rng.New(12)),
	}
	x := buildIndex(t, refs...)
	query := refs[1].Slice(1000, 1000+200)
	ranked, _, err := x.LookupLong(query, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 || ranked[0].Ref != 1 {
		t.Fatalf("LookupLong ranked %v, want ref 1 first", ranked)
	}
	best, _, err := x.Classify(query, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if best.Ref != 1 {
		t.Fatalf("Classify picked ref %d", best.Ref)
	}
	// A foreign read must yield ErrNoSupport.
	if _, _, err := x.Classify(genome.Random(200, rng.New(99)), 0.5); !errors.Is(err, core.ErrNoSupport) {
		t.Fatalf("foreign read: got %v", err)
	}
	// Both strands: the reverse-complemented read classifies to the
	// same reference on the reverse strand.
	got, strand, _, err := x.ClassifyBothStrands(query.ReverseComplement(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if got.Ref != 1 || strand != core.Reverse {
		t.Fatalf("ClassifyBothStrands: ref %d strand %v", got.Ref, strand)
	}
}

func TestRemoveTombstonesAndCompactReclaims(t *testing.T) {
	w := testParams.Window
	refs := []*genome.Sequence{
		genome.Random(1000, rng.New(21)),
		genome.Random(1000, rng.New(22)),
	}
	// Seal the columns into an immutable segment: removal from sealed
	// storage is the tombstone path (a removal from the active builder
	// just splices the column out).
	x := mustIndex(t, testParams)
	x.SetSealThreshold(2)
	for i, seq := range refs {
		if err := x.Add(genome.Record{ID: refID(i), Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	x.Freeze()
	pat := refs[0].Slice(100, 100+w)
	if ms, _, _ := x.Lookup(pat); len(ms) == 0 {
		t.Fatal("pattern not found before Remove")
	}
	if err := x.Remove(0); err != nil {
		t.Fatal(err)
	}
	if ms, _, _ := x.Lookup(pat); !sameMatches(ms, naiveScan([]*genome.Sequence{nil, refs[1]}, pat, w)) {
		t.Fatalf("removed reference still matching: %v", ms)
	}
	if x.TombstoneRatio() <= 0 {
		t.Fatal("TombstoneRatio stayed zero after Remove")
	}
	if x.Ref(0).Seq != nil {
		t.Fatal("removed reference kept its sequence")
	}
	if err := x.Remove(0); err == nil {
		t.Fatal("double Remove succeeded")
	}
	if err := x.Remove(5); err == nil {
		t.Fatal("out-of-range Remove succeeded")
	}
	n, err := x.Compact(0)
	if err != nil || n != 1 {
		t.Fatalf("Compact = %d, %v", n, err)
	}
	if x.TombstoneRatio() != 0 {
		t.Fatalf("TombstoneRatio %v after Compact", x.TombstoneRatio())
	}
	// The tombstoned column is physically gone from the rewritten
	// segment (arena width shrinks only at 64-column boundaries, so the
	// observable reclaim here is the column count).
	if x.NumBuckets() != 1 {
		t.Fatalf("NumBuckets = %d after Compact, want 1", x.NumBuckets())
	}
	if x.Counters().Compactions != 1 {
		t.Fatalf("compactions counter = %d", x.Counters().Compactions)
	}
	// Surviving reference still answers correctly.
	p2 := refs[1].Slice(50, 50+w)
	if ms, _, _ := x.Lookup(p2); len(ms) == 0 {
		t.Fatal("survivor lost after Compact")
	}
}

func TestAutoCompactOnRemove(t *testing.T) {
	x := mustIndex(t, testParams)
	x.SetSealThreshold(2)
	for i, seq := range []*genome.Sequence{genome.Random(800, rng.New(31)), genome.Random(800, rng.New(32))} {
		if err := x.Add(genome.Record{ID: refID(i), Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	x.Freeze()
	x.SetAutoCompact(0.01)
	if err := x.Remove(1); err != nil {
		t.Fatal(err)
	}
	if got := x.Counters().Compactions; got < 1 {
		t.Fatalf("auto-compact did not run (compactions=%d)", got)
	}
	if x.TombstoneRatio() != 0 {
		t.Fatalf("tombstones survived auto-compact: %v", x.TombstoneRatio())
	}
}

func TestLiveIngestAutoSeals(t *testing.T) {
	w := testParams.Window
	x := mustIndex(t, testParams)
	x.SetSealThreshold(2)
	x.Freeze()
	var refs []*genome.Sequence
	for i := 0; i < 5; i++ {
		seq := genome.Random(300, rng.New(uint64(40+i)))
		refs = append(refs, seq)
		if err := x.Add(genome.Record{ID: refID(i), Seq: seq}); err != nil {
			t.Fatal(err)
		}
		// Every reference so far is searchable immediately.
		for r, s := range refs {
			pat := s.Slice(10, 10+w)
			ms, _, err := x.Lookup(pat)
			if err != nil {
				t.Fatal(err)
			}
			hit := false
			for _, m := range ms {
				if m.Ref == r && m.Off == 10 {
					hit = true
				}
			}
			if !hit {
				t.Fatalf("after adding %d refs, ref %d window missing", i+1, r)
			}
		}
	}
	if x.Counters().SegmentSeals < 2 {
		t.Fatalf("seal threshold 2 never sealed: %+v", x.Counters())
	}
	if x.NumSegments() < 2 {
		t.Fatalf("NumSegments = %d after auto-seals", x.NumSegments())
	}
	if x.NumRefs() != 5 || x.NumBuckets() != 5 {
		t.Fatalf("refs=%d buckets=%d", x.NumRefs(), x.NumBuckets())
	}
	wantWins := 0
	for _, s := range refs {
		wantWins += s.Len() - w + 1
	}
	if x.NumWindows() != wantWins {
		t.Fatalf("NumWindows = %d want %d", x.NumWindows(), wantWins)
	}
}

func TestLookupBatchContext(t *testing.T) {
	w := testParams.Window
	ref := genome.Random(2000, rng.New(51))
	x := buildIndex(t, ref)
	var pats []*genome.Sequence
	for i := 0; i < 40; i++ {
		off := (i * 47) % (ref.Len() - w)
		pats = append(pats, ref.Slice(off, off+w))
	}
	res, _, err := x.LookupBatchContext(context.Background(), pats, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		want, _, _ := x.Lookup(pats[i])
		if !sameMatches(r.Matches, want) {
			t.Fatalf("batch result %d diverges from Lookup", i)
		}
	}
	// A canceled context marks unserved patterns and bumps the counter.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err = x.LookupBatchContext(ctx, pats, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d not marked canceled: %v", i, r.Err)
		}
	}
	if x.Counters().BatchCancellations < 1 {
		t.Fatal("batch cancellation not counted")
	}
}

func TestLookupBlock(t *testing.T) {
	w := testParams.Window
	ref := genome.Random(1500, rng.New(61))
	x := buildIndex(t, ref)
	pats := []*genome.Sequence{
		ref.Slice(0, w),
		genome.Random(w, rng.New(62)),
		genome.Random(w-1, rng.New(63)), // short: per-slot error
	}
	results := make([]core.BatchResult, len(pats))
	if err := x.LookupBlock(pats, results); err != nil {
		t.Fatal(err)
	}
	if want, _, _ := x.Lookup(pats[0]); !sameMatches(results[0].Matches, want) {
		t.Fatal("block slot 0 diverges from Lookup")
	}
	if results[2].Err == nil {
		t.Fatal("short pattern in block not flagged")
	}
	if err := x.LookupBlock(nil, nil); err == nil {
		t.Fatal("empty block accepted")
	}
	if err := x.LookupBlock(pats, make([]core.BatchResult, 1)); err == nil {
		t.Fatal("mismatched results length accepted")
	}
	if x.Counters().BlockedProbes != 1 || x.Counters().BlockedWindows != int64(len(pats)) {
		t.Fatalf("blocked counters: %+v", x.Counters())
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{Window: -1},
		{Window: 2000},
		{RowBits: 100}, // not a multiple of 64
		{RowBits: -64}, //
		{Hashes: 17},   // over the probe cap
		{Hashes: -1},   //
	}
	for _, p := range bad {
		if _, err := New(p); !errors.Is(err, baseline.ErrSizing) {
			t.Fatalf("New(%+v) = %v, want ErrSizing", p, err)
		}
	}
	x := mustIndex(t, Params{})
	p := x.Params()
	if p.Window != 32 || p.RowBits != 1<<16 || p.Hashes != 4 {
		t.Fatalf("defaults: %+v", p)
	}
}

func TestDescribeAndIndexContract(t *testing.T) {
	x := buildIndex(t, genome.Random(500, rng.New(71)))
	info := x.Describe()
	if info.Backend != BackendName || info.Window != testParams.Window || info.Stride != 1 {
		t.Fatalf("Describe: %+v", info)
	}
	if info.Approx {
		t.Fatal("cobs search is exact; Approx must be false")
	}
	if x.Threshold() != 1.0 {
		t.Fatalf("Threshold = %v", x.Threshold())
	}
	if x.Mapped() || x.MappedBytes() != 0 {
		t.Fatal("heap backend reports mapped storage")
	}
	if x.ResidentBytes() != x.MemoryFootprint() {
		t.Fatal("ResidentBytes != MemoryFootprint")
	}
	var idx core.Index = x
	if idx.Describe().Backend != BackendName {
		t.Fatal("interface dispatch broken")
	}
}

// TestProbeZeroAlloc pins the hot candidate stage at zero allocations
// per probed window once the pooled scratch is warm — the property the
// biohdlint hotpath analyzer proves statically.
func TestProbeZeroAlloc(t *testing.T) {
	w := testParams.Window
	ref := genome.Random(3000, rng.New(81))
	x := buildIndex(t, ref)
	sn := x.snap.Load()
	pat := ref.Slice(700, 700+w)
	sc := x.getScratch(sn)
	defer x.putScratch(sc)
	var stats core.Stats
	dst := make([]core.Match, 0, 64)
	// Warm: grow sc.cands and dst to steady state.
	x.probeWindow(sn, pat, 0, sc, &stats)
	dst = x.verifyWindow(sn, dst[:0], pat, 0, sc.cands, &stats)
	if avg := testing.AllocsPerRun(100, func() {
		var st core.Stats
		x.probeWindow(sn, pat, 0, sc, &st)
		dst = x.verifyWindow(sn, dst[:0], pat, 0, sc.cands, &st)
	}); avg > 0 {
		t.Fatalf("probe+verify allocates %.1f/op", avg)
	}
}

// TestConcurrentLookupAndMutate exercises the snapshot discipline under
// the race detector: readers run lock-free against published snapshots
// while ingest, removal, and compaction churn.
func TestConcurrentLookupAndMutate(t *testing.T) {
	w := testParams.Window
	base := genome.Random(1000, rng.New(91))
	x := buildIndex(t, base)
	x.SetSealThreshold(3)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 30; i++ {
			if err := x.Add(genome.Record{ID: "live", Seq: genome.Random(200, rng.New(uint64(200+i)))}); err != nil {
				t.Error(err)
				return
			}
			if i%7 == 3 {
				_ = x.Remove(x.NumRefs() - 1)
			}
			if i%11 == 5 {
				if _, err := x.Compact(0); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	pat := base.Slice(300, 300+w)
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		default:
		}
		ms, _, err := x.Lookup(pat)
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, m := range ms {
			if m.Ref == 0 && m.Off == 300 {
				hit = true
			}
		}
		if !hit {
			t.Fatalf("iteration %d: base occurrence lost mid-churn", i)
		}
	}
}

// TestConcurrentLookupAndRemoveSealed pins snapshot ownership when the
// active builder is empty at publish time: every reference is sealed
// (threshold 1), so each publish covers sealed segments only, and
// Remove replaces sealed segment headers in x.segs in place. The
// published snapshot must own its segment slice — sharing the backing
// array with x.segs is a data race the detector catches here.
func TestConcurrentLookupAndRemoveSealed(t *testing.T) {
	w := testParams.Window
	x := mustIndex(t, testParams)
	x.SetSealThreshold(1)
	keep := genome.Random(600, rng.New(401))
	if err := x.Add(genome.Record{ID: "keep", Seq: keep}); err != nil {
		t.Fatal(err)
	}
	const churn = 24
	for i := 1; i <= churn; i++ {
		seq := genome.Random(300, rng.New(uint64(402+i)))
		if err := x.Add(genome.Record{ID: fmt.Sprintf("churn%d", i), Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	x.Freeze()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := churn; i >= 1; i-- {
			if err := x.Remove(i); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	pat := keep.Slice(100, 100+w)
	for {
		select {
		case <-done:
			return
		default:
		}
		ms, _, err := x.Lookup(pat)
		if err != nil {
			t.Fatal(err)
		}
		hit := false
		for _, m := range ms {
			if m.Ref == 0 && m.Off == 100 {
				hit = true
			}
		}
		if !hit {
			t.Fatal("surviving reference lost during sealed-only removal churn")
		}
	}
}
