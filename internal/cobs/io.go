package cobs

import (
	"bufio"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/genome"
)

// BackendName is the registered backend name surfaced in Describe,
// /v1/stats, and the CLI -backend flag.
const BackendName = "cobs"

// backendTag tags this backend's v3 containers (header hint word and
// every directory entry). Tag 0 is the HDC library.
const backendTag uint32 = 1

func init() {
	core.RegisterBackend(backendTag, BackendName, readIndexV3)
}

// WriteToV3 serializes the current snapshot into the shared v3
// container under the cobs backend tag: the meta section carries the
// geometry (Window, RowBits, Hashes), the reference table, and each
// segment's column metadata; each bit-sliced arena is one container
// segment of RowBits rows by colWords words. The index must be frozen.
// core.ReadIndex and core.OpenLibraryFile round-trip the output.
func (x *Index) WriteToV3(w io.Writer) (int64, error) {
	sn := x.snap.Load()
	if sn == nil {
		return 0, fmt.Errorf("cobs: WriteToV3 before Freeze")
	}
	if x.closed.Load() {
		return 0, core.ErrClosed
	}
	segs := make([]core.ContainerSegment, len(sn.segs))
	for k, seg := range sn.segs {
		segs[k] = core.ContainerSegment{
			Words:    seg.arenaWords(),
			RowWords: uint32(seg.colWordsCount()),
			Buckets:  uint32(x.params.RowBits),
		}
	}
	return core.WriteContainerV3(w, backendTag, func(sw *core.SectionWriter) {
		sw.U32(uint32(x.params.Window))
		sw.U64(uint64(x.params.RowBits))
		sw.U32(uint32(x.params.Hashes))
		sw.Refs(sn.refs)
		for _, seg := range sn.segs {
			sw.U32(uint32(seg.numCols()))
			for j := 0; j < seg.numCols(); j++ {
				ref, wins := seg.column(j)
				sw.U32(uint32(ref))
				sw.U32(uint32(wins))
			}
		}
	}, segs)
}

// cobsMeta is the decoded meta section of a cobs-tagged container.
type cobsMeta struct {
	params Params
	refs   []genome.Record
	segRef [][]int32
	segWin [][]int32
}

// readIndexV3 deserializes a cobs-tagged v3 container: the registered
// backend loader behind core.ReadIndex and core.OpenLibraryFile. The
// container framing (CRCs, canonical layout, directory tags) is
// enforced by the shared reader; this adds the backend-specific
// validation — plausible geometry, reference indices in range, arena
// shape matching the column metadata. Corrupt or implausible input is
// rejected with an error, never a panic. The result is frozen and
// heap-resident (the bit-sliced backend has no mmap mode).
func readIndexV3(br *bufio.Reader, hdr []byte) (core.Index, error) {
	var meta cobsMeta
	var segs []*segment
	err := core.ReadContainerV3(br, hdr, backendTag, func(sr *core.SectionReader, segCount int) error {
		meta.params.Window = int(sr.U32())
		meta.params.RowBits = int(sr.U64())
		meta.params.Hashes = int(sr.U32())
		if err := sr.Err(); err != nil {
			return fmt.Errorf("cobs: reading v3 geometry: %w", err)
		}
		if err := meta.params.Validate(); err != nil {
			return fmt.Errorf("cobs: implausible v3 geometry: %w", err)
		}
		refs, err := sr.Refs()
		if err != nil {
			return err
		}
		meta.refs = refs
		for k := 0; k < segCount; k++ {
			cols := int(sr.U32())
			if cols < 0 || cols > core.MaxMetaCount {
				return fmt.Errorf("cobs: v3 segment %d declares %d columns", k, cols)
			}
			refIdx := make([]int32, cols)
			wins := make([]int32, cols)
			for j := 0; j < cols; j++ {
				r := sr.U32()
				wn := sr.U32()
				if int(r) >= len(refs) {
					return fmt.Errorf("cobs: v3 segment %d column %d references %d, table has %d", k, j, r, len(refs))
				}
				// Bound before the int32 narrowing: an implausible count
				// must not wrap negative and corrupt the window totals.
				if wn > core.MaxMetaCount {
					return fmt.Errorf("cobs: v3 segment %d column %d declares %d windows", k, j, wn)
				}
				refIdx[j] = int32(r)
				wins[j] = int32(wn)
			}
			meta.segRef = append(meta.segRef, refIdx)
			meta.segWin = append(meta.segWin, wins)
		}
		return nil
	}, func(k int, s core.ContainerSegment) error {
		cols := len(meta.segRef[k])
		wantWords := (cols + 63) / 64
		if int(s.RowWords) != wantWords || int(s.Buckets) != meta.params.RowBits {
			return fmt.Errorf("cobs: v3 segment %d arena is %d×%d, column metadata says %d×%d",
				k, s.Buckets, s.RowWords, meta.params.RowBits, wantWords)
		}
		segs = append(segs, segmentFromArena(s.Words, int(s.RowWords), meta.segRef[k], meta.segWin[k], meta.refs))
		return nil
	})
	if err != nil {
		return nil, err
	}
	x, err := New(meta.params)
	if err != nil {
		return nil, err
	}
	x.refs = meta.refs
	x.segs = segs
	x.Freeze()
	return x, nil
}
