package cobs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

// buildSegmentedIndex builds a frozen multi-segment index with one
// tombstoned reference — the richest state the container has to carry.
func buildSegmentedIndex(t *testing.T) (*Index, []*genome.Sequence) {
	t.Helper()
	x := mustIndex(t, testParams)
	x.SetSealThreshold(2)
	var refs []*genome.Sequence
	for i := 0; i < 5; i++ {
		seq := genome.Random(600, rng.New(uint64(300+i)))
		refs = append(refs, seq)
		if err := x.Add(genome.Record{ID: refID(i), Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	x.Freeze()
	if err := x.Remove(2); err != nil {
		t.Fatal(err)
	}
	refs[2] = nil
	return x, refs
}

// requireSameAnswers checks that two indexes answer a query workload
// identically.
func requireSameAnswers(t *testing.T, a, b core.Index, refs []*genome.Sequence) {
	t.Helper()
	w := testParams.Window
	var queries []*genome.Sequence
	for _, seq := range refs {
		if seq == nil {
			continue
		}
		queries = append(queries, seq.Slice(0, w), seq.Slice(seq.Len()-w, seq.Len()))
	}
	for i := 0; i < 20; i++ {
		queries = append(queries, genome.Random(w, rng.New(uint64(900+i))))
	}
	for qi, q := range queries {
		ma, _, err := a.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		mb, _, err := b.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameMatches(ma, mb) {
			t.Fatalf("query %d: %v vs %v", qi, ma, mb)
		}
	}
}

func TestWriteToV3Roundtrip(t *testing.T) {
	x, refs := buildSegmentedIndex(t)
	var buf bytes.Buffer
	if _, err := x.WriteToV3(&buf); err != nil {
		t.Fatal(err)
	}
	idx, err := core.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	y, ok := idx.(*Index)
	if !ok {
		t.Fatalf("ReadIndex returned %T", idx)
	}
	if y.Params() != x.Params() {
		t.Fatalf("params: %+v vs %+v", y.Params(), x.Params())
	}
	if y.NumRefs() != x.NumRefs() || y.NumBuckets() != x.NumBuckets() ||
		y.NumWindows() != x.NumWindows() || y.NumSegments() != x.NumSegments() {
		t.Fatalf("shape drifted: refs %d/%d buckets %d/%d windows %d/%d segments %d/%d",
			y.NumRefs(), x.NumRefs(), y.NumBuckets(), x.NumBuckets(),
			y.NumWindows(), x.NumWindows(), y.NumSegments(), x.NumSegments())
	}
	if y.TombstoneRatio() != x.TombstoneRatio() {
		t.Fatalf("tombstone ratio %v vs %v", y.TombstoneRatio(), x.TombstoneRatio())
	}
	if y.Ref(2).Seq != nil {
		t.Fatal("tombstoned reference resurrected by the round trip")
	}
	requireSameAnswers(t, x, y, refs)
	// Serialization is deterministic: a second write is byte-identical.
	var buf2 bytes.Buffer
	if _, err := y.WriteToV3(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("re-serialization is not byte-identical")
	}
}

func TestWriteToV3RequiresFreeze(t *testing.T) {
	x := mustIndex(t, testParams)
	if _, err := x.WriteToV3(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteToV3 before Freeze succeeded")
	}
	x.Freeze()
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := x.WriteToV3(&bytes.Buffer{}); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("closed WriteToV3: %v", err)
	}
}

func TestOpenLibraryFileDispatch(t *testing.T) {
	x, refs := buildSegmentedIndex(t)
	path := filepath.Join(t.TempDir(), "cobs.v3")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.WriteToV3(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.LoadMode{core.LoadHeap, core.MapArena} {
		idx, err := core.OpenLibraryFile(path, mode)
		if err != nil {
			t.Fatalf("mode %v: %v", mode, err)
		}
		if idx.Describe().Backend != BackendName {
			t.Fatalf("mode %v: backend %q", mode, idx.Describe().Backend)
		}
		// MapArena falls back to the heap loader: this backend never maps.
		if idx.Mapped() {
			t.Fatalf("mode %v: cobs index claims to be mapped", mode)
		}
		requireSameAnswers(t, x, idx, refs)
		if err := idx.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCorruptionMatrix flips every single byte of a serialized cobs
// container (and truncates at a spread of lengths): each mutation must
// be rejected with an error — the CRCs and the backend tag cover the
// whole file — and must never panic.
func TestCorruptionMatrix(t *testing.T) {
	x := mustIndex(t, Params{Window: 8, RowBits: 256, Hashes: 2})
	x.SetSealThreshold(2)
	for i := 0; i < 3; i++ {
		if err := x.Add(genome.Record{ID: refID(i), Seq: genome.Random(80, rng.New(uint64(i+1)))}); err != nil {
			t.Fatal(err)
		}
	}
	x.Freeze()
	var buf bytes.Buffer
	if _, err := x.WriteToV3(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	if _, err := core.ReadIndex(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine container rejected: %v", err)
	}
	for i := range valid {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0xff
		if _, err := core.ReadIndex(bytes.NewReader(mut)); err == nil {
			t.Fatalf("byte %d flipped, still accepted", i)
		}
	}
	for cut := 0; cut < len(valid); cut += 37 {
		if _, err := core.ReadIndex(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestUnknownBackendTag rewrites the header's backend tag (the
// dispatch hint at bytes [60,64), outside the header CRC) to an
// unregistered value: the loader must name the unknown backend, not
// guess a decoder.
func TestUnknownBackendTag(t *testing.T) {
	x := buildIndexSmall(t)
	var buf bytes.Buffer
	if _, err := x.WriteToV3(&buf); err != nil {
		t.Fatal(err)
	}
	mut := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint32(mut[60:64], 99)
	_, err := core.ReadIndex(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("unknown backend tag accepted")
	}
	if want := "unknown index backend tag 99"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the tag", err)
	}
}

// TestHeaderTagFlipOnEmptyContainer pins the CRC-protected meta tag
// copy: a zero-segment container has no directory entries, so the meta
// section's leading tag word is the only protected copy — flipping the
// CRC-exempt header tag must still fail cleanly, in both directions.
func TestHeaderTagFlipOnEmptyContainer(t *testing.T) {
	// Empty cobs container, header retagged to hdc.
	x := mustIndex(t, Params{Window: 8, RowBits: 256, Hashes: 2})
	x.Freeze()
	var buf bytes.Buffer
	if _, err := x.WriteToV3(&buf); err != nil {
		t.Fatal(err)
	}
	if n := binary.LittleEndian.Uint32(buf.Bytes()[12:16]); n != 0 {
		t.Fatalf("empty index wrote %d segments", n)
	}
	mut := append([]byte(nil), buf.Bytes()...)
	binary.LittleEndian.PutUint32(mut[60:64], 0)
	_, err := core.ReadIndex(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("empty cobs container retagged as hdc accepted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("meta section tagged")) {
		t.Fatalf("error %q is not the meta-tag cross-check", err)
	}
	// Zero-segment tag-0 container (the hdc writer never emits one, a
	// forger can), header retagged to cobs.
	var hbuf bytes.Buffer
	if _, err := core.WriteContainerV3(&hbuf, 0, func(sw *core.SectionWriter) {}, nil); err != nil {
		t.Fatal(err)
	}
	mut = append([]byte(nil), hbuf.Bytes()...)
	binary.LittleEndian.PutUint32(mut[60:64], backendTag)
	_, err = core.ReadIndex(bytes.NewReader(mut))
	if err == nil {
		t.Fatal("empty hdc container retagged as cobs accepted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("meta section tagged")) {
		t.Fatalf("error %q is not the meta-tag cross-check", err)
	}
}

// TestRejectsImplausibleWindowCount forges a CRC-consistent container
// whose column metadata declares ~4G windows: the reader must reject
// the count before the int32 narrowing could wrap it negative.
func TestRejectsImplausibleWindowCount(t *testing.T) {
	refs := []genome.Record{{ID: "r", Seq: genome.Random(64, rng.New(11))}}
	var buf bytes.Buffer
	_, err := core.WriteContainerV3(&buf, backendTag, func(sw *core.SectionWriter) {
		sw.U32(8)   // Window
		sw.U64(256) // RowBits
		sw.U32(2)   // Hashes
		sw.Refs(refs)
		sw.U32(1)          // one column
		sw.U32(0)          // referencing record 0
		sw.U32(0xffffffff) // window count far past any plausible bound
	}, []core.ContainerSegment{{Words: make([]uint64, 256), RowWords: 1, Buckets: 256}})
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.ReadIndex(bytes.NewReader(buf.Bytes()))
	if err == nil {
		t.Fatal("container declaring 4294967295 windows accepted")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("windows")) {
		t.Fatalf("error %q does not name the window count", err)
	}
}

func buildIndexSmall(t *testing.T) *Index {
	t.Helper()
	x := mustIndex(t, Params{Window: 8, RowBits: 256, Hashes: 2})
	if err := x.Add(genome.Record{ID: "r", Seq: genome.Random(100, rng.New(5))}); err != nil {
		t.Fatal(err)
	}
	x.Freeze()
	return x
}
