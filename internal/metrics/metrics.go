// Package metrics is a dependency-free instrumentation kit for the
// search service: atomic counters, gauges, and fixed-bucket latency
// histograms, collected in a registry that renders the Prometheus text
// exposition format (version 0.0.4).
//
// The package exists so the serving layer can be observable without
// pulling a client library into a reproduction repo. Metrics are cheap
// enough for request paths — a counter increment is one atomic add, a
// histogram observation is two atomic adds plus a CAS loop on the sum —
// and reads never block writers.
//
// Series identity follows Prometheus: a metric name plus a sorted label
// set. Getting an existing series is a mutex-guarded map lookup;
// callers on hot paths may keep the returned pointer instead.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name/value pair identifying a series.
type Label struct {
	Key   string
	Value string
}

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored (counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with cumulative rendering.
// Bounds are upper bounds ("le") in increasing order; an implicit +Inf
// bucket catches the overflow.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bound ≥ v is the bucket; misses land in +Inf.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DefBuckets are default latency bounds in seconds, spanning sub-
// millisecond probes to multi-second batch requests.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// LinearBuckets builds count evenly spaced histogram bounds starting
// at start — e.g. LinearBuckets(1, 1, 8) for a block-occupancy
// histogram whose realized width is an integer in [1, 8].
func LinearBuckets(start, width float64, count int) []float64 {
	bounds := make([]float64, count)
	for i := range bounds {
		bounds[i] = start + float64(i)*width
	}
	return bounds
}

// metricKind discriminates family types for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// series is one labeled instance within a family.
type series struct {
	labels string // rendered sorted label set, "" or `path="/v1/search"`
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
}

// Registry holds metric families and renders them deterministically.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelString renders labels sorted by key: `k1="v1",k2="v2"`.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	for i, l := range ls {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(v)
}

// getFamily returns the family for name, creating it with the given
// kind and help on first use. A name reused with a different kind
// returns nil — the caller's series accessors treat that as a distinct
// fresh series to avoid corrupting the original (and the misuse shows
// up immediately in tests as a missing metric).
func (r *Registry) getFamily(name, help string, kind metricKind) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		return nil
	}
	return f
}

// Counter returns the counter for name+labels, creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindCounter)
	if f == nil {
		return &Counter{} // kind clash: hand back a detached series
	}
	key := labelString(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, c: &Counter{}}
		f.series[key] = s
	}
	return s.c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindGauge)
	if f == nil {
		return &Gauge{}
	}
	key := labelString(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, g: &Gauge{}}
		f.series[key] = s
	}
	return s.g
}

// Histogram returns the histogram for name+labels, creating it with the
// given bucket bounds on first use (later calls reuse the first bounds).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.getFamily(name, help, kindHistogram)
	if f == nil {
		return newHistogram(bounds)
	}
	key := labelString(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: key, h: newHistogram(bounds)}
		f.series[key] = s
	}
	return s.h
}

// WritePrometheus renders every family in the text exposition format,
// families sorted by name and series by label set, so successive
// scrapes of an unchanged registry are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		f.name, f.help, f.name, f.kind); err != nil {
		return err
	}
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if err := f.series[k].write(w, f); err != nil {
			return err
		}
	}
	return nil
}

func (s *series) write(w io.Writer, f *family) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.labels), s.g.Value())
		return err
	default:
		return s.writeHistogram(w, f)
	}
}

// writeHistogram renders cumulative buckets, then _sum and _count.
func (s *series) writeHistogram(w io.Writer, f *family) error {
	h := s.h
	cum := int64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if err := s.bucketLine(w, f.name, formatBound(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if err := s.bucketLine(w, f.name, "+Inf", cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", f.name, braced(s.labels), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.labels), h.Count())
	return err
}

func (s *series) bucketLine(w io.Writer, name, le string, cum int64) error {
	labels := s.labels
	if labels != "" {
		labels += ","
	}
	labels += `le="` + le + `"`
	_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, labels, cum)
	return err
}

// formatBound renders a bucket bound the way Prometheus clients do:
// shortest decimal form (%g never emits trailing zeros for our bounds).
func formatBound(b float64) string {
	return fmt.Sprintf("%g", b)
}

// braced wraps a non-empty label set in braces.
func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}
