package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests"); again != c {
		t.Fatal("same name+labels did not return the same counter")
	}
	g := r.Gauge("inflight", "in flight")
	g.Inc()
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
}

func TestLabeledSeriesAreDistinct(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("reqs", "h", Label{Key: "path", Value: "/a"})
	b := r.Counter("reqs", "h", Label{Key: "path", Value: "/b"})
	if a == b {
		t.Fatal("different labels share a series")
	}
	a.Inc()
	if b.Value() != 0 {
		t.Fatal("increment leaked across series")
	}
	// Label order must not matter.
	x := r.Counter("multi", "h", Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	y := r.Counter("multi", "h", Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if x != y {
		t.Fatal("label order created distinct series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 3} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-3.565) > 1e-9 {
		t.Fatalf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Cumulative: ≤0.01 holds 0.005 and the boundary value 0.01.
	for _, want := range []string{
		`lat_bucket{le="0.01"} 2`,
		`lat_bucket{le="0.1"} 3`,
		`lat_bucket{le="1"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_count 5",
		"# TYPE lat histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusDeterministicAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second", Label{Key: "path", Value: `x"y\z`}).Inc()
	r.Counter("a_total", "first").Add(2)
	r.Gauge("g", "gauge").Set(7)
	var first, second strings.Builder
	if err := r.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("successive renders differ")
	}
	out := first.String()
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Fatalf("families not sorted by name:\n%s", out)
	}
	if !strings.Contains(out, `b_total{path="x\"y\\z"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if !strings.Contains(out, "# TYPE g gauge") || !strings.Contains(out, "g 7") {
		t.Fatalf("gauge missing:\n%s", out)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c", "h").Inc()
				r.Histogram("h", "h", DefBuckets).Observe(0.001)
				g := r.Gauge("g", "h")
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c", "h").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	h := r.Histogram("h", "h", DefBuckets)
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
	if math.Abs(h.Sum()-8.0) > 1e-9 {
		t.Fatalf("histogram sum = %v", h.Sum())
	}
	if r.Gauge("g", "h").Value() != 0 {
		t.Fatal("gauge should return to 0")
	}
}
