package pim

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

func TestDeviceParamsValidate(t *testing.T) {
	if err := DefaultDeviceParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultDeviceParams()
	bad.XnorNs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero latency accepted")
	}
}

func TestChipConfigValidate(t *testing.T) {
	if err := DefaultChipConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mutate := range map[string]func(*ChipConfig){
		"rows":   func(c *ChipConfig) { c.ArrayRows = 0 },
		"cols":   func(c *ChipConfig) { c.ArrayCols = 100 },
		"arrays": func(c *ChipConfig) { c.NumArrays = 0 },
	} {
		cfg := DefaultChipConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Fatalf("%s: bad config accepted", name)
		}
	}
	if bits := DefaultChipConfig().MemoryBits(); bits != 1024*1024*4096 {
		t.Fatalf("MemoryBits = %d", bits)
	}
}

func TestLedgerAccounting(t *testing.T) {
	l := NewLedger(DefaultDeviceParams())
	l.Charge(OpXnor, 10)
	l.Charge(OpPopcount, 10)
	if l.Count(OpXnor) != 10 || l.Count(OpPopcount) != 10 {
		t.Fatal("counts wrong")
	}
	wantNs := 10*1.5 + 10*4.2
	if math.Abs(l.BusyNs()-wantNs) > 1e-9 {
		t.Fatalf("busy %v, want %v", l.BusyNs(), wantNs)
	}
	wantPj := 10*0.9 + 10*1.9
	if math.Abs(l.EnergyPj()-wantPj) > 1e-9 {
		t.Fatalf("energy %v, want %v", l.EnergyPj(), wantPj)
	}
	l.Reset()
	if l.BusyNs() != 0 || l.Count(OpXnor) != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestLedgerNegativeChargePanics(t *testing.T) {
	l := NewLedger(DefaultDeviceParams())
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge did not panic")
		}
	}()
	l.Charge(OpXnor, -1)
}

func TestOpKindString(t *testing.T) {
	names := map[OpKind]string{
		OpRowRead: "row-read", OpRowWrite: "row-write", OpXnor: "xnor",
		OpPopcount: "popcount", OpShift: "shift", OpBroadcast: "broadcast",
		OpCompare: "compare",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q", int(k), k.String())
		}
	}
}

func TestArrayReadWrite(t *testing.T) {
	arr, err := NewArray(8, 128, DefaultDeviceParams())
	if err != nil {
		t.Fatal(err)
	}
	if arr.Rows() != 8 || arr.Cols() != 128 {
		t.Fatal("geometry wrong")
	}
	arr.LoadRowBuf([]uint64{0xdeadbeef, 0x12345678})
	arr.WriteRow(3)
	arr.LoadRowBuf([]uint64{0, 0})
	arr.ReadRow(3)
	got := arr.RowBuf()
	if got[0] != 0xdeadbeef || got[1] != 0x12345678 {
		t.Fatalf("read back %x", got)
	}
	if arr.Ledger().Count(OpRowWrite) != 1 || arr.Ledger().Count(OpRowRead) != 1 {
		t.Fatal("ledger not charged")
	}
}

func TestArrayGeometryErrors(t *testing.T) {
	if _, err := NewArray(0, 128, DefaultDeviceParams()); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewArray(8, 100, DefaultDeviceParams()); err == nil {
		t.Fatal("unaligned cols accepted")
	}
}

func TestArrayXnorPopcount(t *testing.T) {
	arr, err := NewArray(4, 64, DefaultDeviceParams())
	if err != nil {
		t.Fatal(err)
	}
	arr.LoadRowBuf([]uint64{0xff})
	arr.WriteRow(0)
	arr.LoadRowBuf([]uint64{0xff}) // identical: all 64 bits agree
	if pc := arr.XnorPopcount(0); pc != 64 {
		t.Fatalf("identical rows popcount %d", pc)
	}
	arr.LoadRowBuf([]uint64{0x00}) // low byte disagrees
	if pc := arr.XnorPopcount(0); pc != 56 {
		t.Fatalf("8-bit-différent popcount %d", pc)
	}
}

func TestArrayShiftRowBuf(t *testing.T) {
	arr, err := NewArray(2, 128, DefaultDeviceParams())
	if err != nil {
		t.Fatal(err)
	}
	arr.LoadRowBuf([]uint64{1 << 63, 0})
	arr.ShiftRowBuf()
	got := arr.RowBuf()
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("shift crossed words wrongly: %x", got)
	}
	if arr.Ledger().Count(OpShift) != 1 {
		t.Fatal("shift not charged")
	}
}

// buildLib returns a frozen sealed library over nRefs random references.
func buildLib(t *testing.T, dim, window, nRefs, refLen int, seed uint64) *core.Library {
	t.Helper()
	lib, err := core.NewLibrary(core.Params{Dim: dim, Window: window, Sealed: true, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(seed + 99)
	for i := 0; i < nRefs; i++ {
		if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(refLen, src)}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	return lib
}

func TestEngineRejectsBadLibraries(t *testing.T) {
	cfg := DefaultChipConfig()
	// Unfrozen.
	lib, err := core.NewLibrary(core.Params{Dim: 1024, Window: 32, Sealed: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEngine(cfg, lib); err == nil {
		t.Fatal("unfrozen library accepted")
	}
	// Unsealed.
	raw, err := core.NewLibrary(core.Params{Dim: 1024, Window: 32, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := raw.Add(genome.Record{ID: "r", Seq: genome.Random(100, rng.New(3))}); err != nil {
		t.Fatal(err)
	}
	raw.Freeze()
	if _, err := NewEngine(cfg, raw); err == nil {
		t.Fatal("unsealed library accepted")
	}
}

func TestEngineTooSmallChip(t *testing.T) {
	lib := buildLib(t, 8192, 32, 1, 2000, 4)
	cfg := DefaultChipConfig()
	cfg.NumArrays = 1
	cfg.ArrayRows = 8 // one bucket per array
	if _, err := NewEngine(cfg, lib); err == nil {
		t.Fatal("overflowing library accepted")
	}
}

func TestEngineSearchMatchesSoftware(t *testing.T) {
	lib := buildLib(t, 8192, 32, 2, 3000, 5)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(6)
	for trial := 0; trial < 20; trial++ {
		var q *genome.Sequence
		if trial%2 == 0 { // planted pattern
			ref := lib.Ref(trial % 2).Seq
			off := src.Intn(ref.Len() - 32)
			q = ref.Slice(off, off+32)
		} else {
			q = genome.Random(32, src)
		}
		hv := lib.Encoder().EncodeWindowExact(q, 0)
		want, err := lib.Probe(hv, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.Search(hv)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: PIM %d candidates vs software %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i].Bucket != want[i].Bucket || got[i].Score != want[i].Score {
				t.Fatalf("trial %d: candidate %d differs: %+v vs %+v",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestEngineSearchDimensionMismatch(t *testing.T) {
	lib := buildLib(t, 1024, 32, 1, 500, 7)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	other := buildLib(t, 2048, 32, 1, 500, 8)
	hv := other.Encoder().EncodeWindowExact(genome.Random(32, rng.New(9)), 0)
	if _, _, err := eng.Search(hv); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestEngineCostsPlausible(t *testing.T) {
	lib := buildLib(t, 8192, 32, 1, 3000, 10)
	cfg := DefaultChipConfig()
	eng, err := NewEngine(cfg, lib)
	if err != nil {
		t.Fatal(err)
	}
	// Build cost: every bucket row written once plus its broadcast.
	rows := int64(lib.NumBuckets() * eng.RowsPerBucket())
	if got := eng.BuildCost().Counts[OpRowWrite]; got != rows {
		t.Fatalf("build row writes %d, want %d", got, rows)
	}
	hv := lib.Encoder().EncodeWindowExact(genome.Random(32, rng.New(11)), 0)
	_, cost, err := eng.Search(hv)
	if err != nil {
		t.Fatal(err)
	}
	// One fused XNOR+popcount per bucket row across the chip.
	if cost.Counts[OpXnor] != rows || cost.Counts[OpPopcount] != rows {
		t.Fatalf("search xnor/popcount = %d/%d, want %d",
			cost.Counts[OpXnor], cost.Counts[OpPopcount], rows)
	}
	if cost.Counts[OpCompare] != int64(lib.NumBuckets()) {
		t.Fatalf("compares %d, want %d", cost.Counts[OpCompare], lib.NumBuckets())
	}
	if cost.LatencyNs <= 0 || cost.EnergyPj <= 0 {
		t.Fatal("zero cost")
	}
	// Latency must reflect per-array parallelism: far below the serial sum.
	serialNs := float64(rows)*(cfg.Device.XnorNs+cfg.Device.PopcountNs) +
		float64(lib.NumBuckets())*cfg.Device.CompareNs
	if eng.ArraysUsed() > 1 && cost.LatencyNs >= serialNs {
		t.Fatalf("latency %v not parallel (serial would be %v)", cost.LatencyNs, serialNs)
	}
}

func TestEngineParallelScaling(t *testing.T) {
	// Halving buckets-per-array (smaller arrays) increases parallelism:
	// per-query latency must not increase.
	lib := buildLib(t, 2048, 32, 1, 4000, 12)
	hv := lib.Encoder().EncodeWindowExact(genome.Random(32, rng.New(13)), 0)
	var prevLatency = math.Inf(1)
	for _, rows := range []int{512, 128, 32} {
		cfg := DefaultChipConfig()
		cfg.ArrayRows = rows
		cfg.NumArrays = 1 << 16
		eng, err := NewEngine(cfg, lib)
		if err != nil {
			t.Fatal(err)
		}
		_, cost, err := eng.Search(hv)
		if err != nil {
			t.Fatal(err)
		}
		if cost.LatencyNs > prevLatency+1e-9 {
			t.Fatalf("rows=%d: latency %v grew from %v", rows, cost.LatencyNs, prevLatency)
		}
		prevLatency = cost.LatencyNs
	}
}

func TestEncodeCost(t *testing.T) {
	lib := buildLib(t, 2048, 32, 1, 500, 14)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	exact := eng.EncodeCost(false, 32)
	approx := eng.EncodeCost(true, 32)
	if exact.LatencyNs <= 0 || approx.LatencyNs <= 0 {
		t.Fatal("zero encode cost")
	}
	if approx.Counts[OpRowWrite] == 0 {
		t.Fatal("approx encode seals nothing")
	}
	if exact.Counts[OpXnor] == 0 {
		t.Fatal("exact encode binds nothing")
	}
}

func TestCostAdd(t *testing.T) {
	a := Cost{LatencyNs: 10, EnergyPj: 5}
	a.Counts[OpXnor] = 3
	b := Cost{LatencyNs: 2, EnergyPj: 1}
	b.Counts[OpXnor] = 4
	a.Add(b)
	if a.LatencyNs != 12 || a.EnergyPj != 6 || a.Counts[OpXnor] != 7 {
		t.Fatalf("Add wrong: %+v", a)
	}
	c := Cost{LatencyNs: 2e6, EnergyPj: 3e6}
	if c.LatencyMs() != 2 || c.EnergyUj() != 3 {
		t.Fatal("unit conversions wrong")
	}
}

func TestBusContentionPenalty(t *testing.T) {
	lib := buildLib(t, 8192, 32, 1, 40_000, 15)
	hv := lib.Encoder().EncodeWindowExact(lib.Ref(0).Seq, 100)

	multicast := DefaultChipConfig()
	multicast.ArrayRows = 64 // force many arrays
	multicast.NumArrays = 1 << 16
	serial := multicast
	serial.Multicast = false
	serial.ArraysPerBank = 16

	engM, err := NewEngine(multicast, lib)
	if err != nil {
		t.Fatal(err)
	}
	engS, err := NewEngine(serial, lib)
	if err != nil {
		t.Fatal(err)
	}
	if engM.ArraysUsed() < 16 {
		t.Fatalf("only %d arrays used; contention test needs more", engM.ArraysUsed())
	}
	candsM, costM, err := engM.Search(hv)
	if err != nil {
		t.Fatal(err)
	}
	candsS, costS, err := engS.Search(hv)
	if err != nil {
		t.Fatal(err)
	}
	// Functionally identical.
	if len(candsM) != len(candsS) {
		t.Fatalf("contention changed results: %d vs %d", len(candsM), len(candsS))
	}
	// Serial bus costs exactly (bankWidth-1)·rows·broadcastNs more.
	want := float64(16-1) * float64(engS.RowsPerBucket()) *
		serial.Device.BroadcastNs
	got := costS.LatencyNs - costM.LatencyNs
	if got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("bus penalty %v ns, want %v", got, want)
	}
}

func TestChipConfigBankValidation(t *testing.T) {
	cfg := DefaultChipConfig()
	cfg.ArraysPerBank = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative bank width accepted")
	}
	cfg.ArraysPerBank = 0
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default bank width rejected: %v", err)
	}
}

func TestMappingReport(t *testing.T) {
	lib := buildLib(t, 8192, 32, 1, 3000, 16)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Report()
	if rep.ArraysUsed != eng.ArraysUsed() || rep.RowsPerBucket != eng.RowsPerBucket() {
		t.Fatalf("report disagrees with engine: %+v", rep)
	}
	wantBits := int64(lib.NumBuckets()) * int64(rep.RowsPerBucket) * 1024
	if rep.UsedBits != wantBits {
		t.Fatalf("used bits %d, want %d", rep.UsedBits, wantBits)
	}
	if rep.RowOccupancy <= 0 || rep.RowOccupancy > 1 {
		t.Fatalf("row occupancy %v", rep.RowOccupancy)
	}
	if rep.ChipOccupancy <= 0 || rep.ChipOccupancy >= rep.RowOccupancy {
		t.Fatalf("chip occupancy %v vs row %v", rep.ChipOccupancy, rep.RowOccupancy)
	}
	if rep.BroadcastWidth != 64 {
		t.Fatalf("broadcast width %d", rep.BroadcastWidth)
	}
}
