package pim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

func TestEncodeInMemoryMatchesSoftware(t *testing.T) {
	lib := buildLib(t, 2048, 24, 1, 500, 91)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	ref := lib.Ref(0).Seq
	src := rng.New(92)
	for trial := 0; trial < 10; trial++ {
		start := src.Intn(ref.Len() - 24)
		got, cost, err := eng.EncodeInMemory(ref, start)
		if err != nil {
			t.Fatal(err)
		}
		want := lib.Encoder().EncodeWindowExact(ref, start)
		if !got.Equal(want) {
			t.Fatalf("start=%d: in-memory encoding differs from software", start)
		}
		if cost.Counts[OpXnor] != int64((24-1)*eng.RowsPerBucket()) {
			t.Fatalf("xnor count %d", cost.Counts[OpXnor])
		}
		if cost.Counts[OpShift] != int64((24-1)*eng.RowsPerBucket()) {
			t.Fatalf("shift count %d", cost.Counts[OpShift])
		}
		if cost.Counts[OpRowRead] != int64(24*eng.RowsPerBucket()) {
			t.Fatalf("row-read count %d", cost.Counts[OpRowRead])
		}
	}
}

func TestEncodeInMemoryThenSearch(t *testing.T) {
	// Full in-memory pipeline: encode in memory, search in memory, get
	// the same matches software gets.
	lib := buildLib(t, 8192, 32, 1, 2000, 93)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	ref := lib.Ref(0).Seq
	hv, _, err := eng.EncodeInMemory(ref, 444)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := eng.Search(hv)
	if err != nil {
		t.Fatal(err)
	}
	want, err := lib.Probe(lib.Encoder().EncodeWindowExact(ref, 444), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) || len(got) == 0 {
		t.Fatalf("in-memory pipeline candidates %v vs software %v", got, want)
	}
}

func TestEncodeInMemoryValidation(t *testing.T) {
	lib := buildLib(t, 1024, 16, 1, 200, 94)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	ref := lib.Ref(0).Seq
	if _, _, err := eng.EncodeInMemory(ref, ref.Len()); err == nil {
		t.Fatal("overrunning window accepted")
	}
	// Approximate libraries are rejected.
	alib, err := core.NewLibrary(core.Params{
		Dim: 1024, Window: 16, Sealed: true, Approx: true, Capacity: 2,
		MutTolerance: 2, Seed: 95,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := alib.Add(genome.Record{ID: "r", Seq: genome.Random(200, rng.New(96))}); err != nil {
		t.Fatal(err)
	}
	alib.Freeze()
	aeng, err := NewEngine(DefaultChipConfig(), alib)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := aeng.EncodeInMemory(alib.Ref(0).Seq, 0); err == nil {
		t.Fatal("approx in-memory encode accepted")
	}
}

func TestSearchBatchPipelining(t *testing.T) {
	lib := buildLib(t, 8192, 32, 1, 3000, 97)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	ref := lib.Ref(0).Seq
	src := rng.New(98)
	var hvs []*hdc.HV
	for i := 0; i < 8; i++ {
		off := src.Intn(ref.Len() - 32)
		hvs = append(hvs, lib.Encoder().EncodeWindowExact(ref, off))
	}
	results, bc, err := eng.SearchBatch(hvs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(hvs) {
		t.Fatalf("%d results", len(results))
	}
	// Every planted query yields at least one candidate, identical to a
	// standalone search.
	for i, hv := range hvs {
		want, _, err := eng.Search(hv)
		if err != nil {
			t.Fatal(err)
		}
		if len(results[i]) != len(want) {
			t.Fatalf("query %d: batch %d candidates vs solo %d",
				i, len(results[i]), len(want))
		}
	}
	// Pipelining must beat serial but not be impossibly fast: it can
	// only hide the broadcast phases after the first query.
	if bc.Pipelined >= bc.Serial.LatencyNs {
		t.Fatalf("pipelined %v not below serial %v", bc.Pipelined, bc.Serial.LatencyNs)
	}
	maxHidden := float64(len(hvs)-1) * float64(eng.RowsPerBucket()) *
		eng.Config().Device.BroadcastNs
	if bc.Serial.LatencyNs-bc.Pipelined > maxHidden+1e-6 {
		t.Fatalf("pipelining hid %v ns, more than the %v ns of broadcasts",
			bc.Serial.LatencyNs-bc.Pipelined, maxHidden)
	}
}

func TestSearchBatchEmpty(t *testing.T) {
	lib := buildLib(t, 1024, 16, 1, 200, 99)
	eng, err := NewEngine(DefaultChipConfig(), lib)
	if err != nil {
		t.Fatal(err)
	}
	results, bc, err := eng.SearchBatch(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || bc.Pipelined != 0 {
		t.Fatal("empty batch produced work")
	}
}

func TestEncodeApproxInMemoryMatchesSoftware(t *testing.T) {
	alib, err := core.NewLibrary(core.Params{
		Dim: 2048, Window: 17, Sealed: true, Approx: true, Capacity: 2,
		MutTolerance: 2, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := genome.Random(600, rng.New(102))
	if err := alib.Add(genome.Record{ID: "r", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	alib.Freeze()
	eng, err := NewEngine(DefaultChipConfig(), alib)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(103)
	for trial := 0; trial < 8; trial++ {
		start := src.Intn(ref.Len() - 17)
		got, cost, err := eng.EncodeApproxInMemory(ref, start)
		if err != nil {
			t.Fatal(err)
		}
		want := alib.Encoder().EncodeWindowApprox(ref, start)
		if !got.Equal(want) {
			t.Fatalf("start=%d: in-memory approx encoding differs", start)
		}
		if cost.Counts[OpPopcount] != int64(17*eng.RowsPerBucket()) {
			t.Fatalf("accumulate count %d", cost.Counts[OpPopcount])
		}
		if cost.Counts[OpRowWrite] != int64(eng.RowsPerBucket()) {
			t.Fatalf("seal writes %d", cost.Counts[OpRowWrite])
		}
	}
	// Exact libraries are rejected.
	elib := buildLib(t, 1024, 16, 1, 200, 104)
	eeng, err := NewEngine(DefaultChipConfig(), elib)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eeng.EncodeApproxInMemory(elib.Ref(0).Seq, 0); err == nil {
		t.Fatal("exact library accepted")
	}
	// Overrun rejected.
	if _, _, err := eng.EncodeApproxInMemory(ref, ref.Len()); err == nil {
		t.Fatal("overrunning window accepted")
	}
}

func TestEncodeApproxInMemoryThenSearch(t *testing.T) {
	alib, err := core.NewLibrary(core.Params{
		Dim: 8192, Window: 48, Sealed: true, Approx: true, Capacity: 2,
		MutTolerance: 4, Seed: 105,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := genome.Random(1500, rng.New(106))
	if err := alib.Add(genome.Record{ID: "r", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	alib.Freeze()
	eng, err := NewEngine(DefaultChipConfig(), alib)
	if err != nil {
		t.Fatal(err)
	}
	hv, _, err := eng.EncodeApproxInMemory(ref, 333)
	if err != nil {
		t.Fatal(err)
	}
	cands, _, err := eng.Search(hv)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("in-memory approx pipeline found nothing for a planted window")
	}
}
