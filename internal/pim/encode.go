package pim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/hdc"
)

// EncodeInMemory executes the exact (binding-chain) window encoding with
// the array primitives themselves — row reads from the item-memory
// region, in-array XNOR, and row-buffer shifts — and returns the
// resulting hypervector together with its cost. The result is
// bit-identical to the software encoder's, which the tests assert; this
// is the functional counterpart of the analytic EncodeCost.
//
// The Horner factorization ⊙ᵢ ρ^i(B[sᵢ]) = B[s₀] ⊙ ρ(B[s₁] ⊙ ρ(···))
// needs exactly one single-step shift per position instead of ρ^i
// rotations, which is what makes the encoding PIM-friendly: shift-by-one
// is a wire pattern in the row buffer.
func (e *Engine) EncodeInMemory(seq *genome.Sequence, start int) (*hdc.HV, Cost, error) {
	if e.lib.Params().Approx {
		return nil, Cost{}, fmt.Errorf("pim: EncodeInMemory implements the exact chain; approximate bundling uses counters (see EncodeCost)")
	}
	w := e.lib.Params().Window
	if start < 0 || start+w > seq.Len() {
		return nil, Cost{}, fmt.Errorf("pim: window [%d,%d) overruns sequence length %d",
			start, start+w, seq.Len())
	}
	d := e.lib.Params().Dim
	ledger := NewLedger(e.cfg.Device)
	enc := e.lib.Encoder()

	// Working D-bit vector, conceptually spread over rowsPerBucket row
	// buffers.
	work := bitvec.New(d)
	scratch := bitvec.New(d)
	for i := w - 1; i >= 0; i-- {
		base := enc.BaseHV(seq.At(start + i)).Bits()
		// Fetch the base hypervector rows from the item-memory region.
		ledger.Charge(OpRowRead, e.rowsPerBucket)
		if i == w-1 {
			work.CopyFrom(base)
			continue
		}
		// Shift the working vector by one (cross-row carry in the
		// periphery), then XNOR with the fetched base rows.
		scratch.RotateLeft(work, 1)
		work, scratch = scratch, work
		ledger.Charge(OpShift, e.rowsPerBucket)
		work.Xnor(work, base)
		ledger.Charge(OpXnor, e.rowsPerBucket)
	}
	var c Cost
	c.LatencyNs = ledger.BusyNs()
	c.EnergyPj = ledger.EnergyPj()
	for k := 0; k < int(numOpKinds); k++ {
		c.Counts[k] = ledger.Count(OpKind(k))
	}
	return hdc.HVFromWords(work.Words(), d), c, nil
}

// EncodeApproxInMemory executes the approximate (positional-bundle)
// window encoding with the periphery's counter accumulator: base
// hypervector rows are fetched from the item-memory region, the counter
// array accumulates each (charged at popcount-accumulator cost), the
// logical rotation is a counter-pointer shift, and the final majority
// seal writes the result rows. Bit-identical to the software encoder.
//
// The iteration mirrors the software slide's Horner form: starting from
// the last base, the counters are shifted by one and the next base's
// rows accumulated, so only single-step shifts occur.
func (e *Engine) EncodeApproxInMemory(seq *genome.Sequence, start int) (*hdc.HV, Cost, error) {
	if !e.lib.Params().Approx {
		return nil, Cost{}, fmt.Errorf("pim: EncodeApproxInMemory needs an approximate library (see EncodeInMemory for the exact chain)")
	}
	w := e.lib.Params().Window
	if start < 0 || start+w > seq.Len() {
		return nil, Cost{}, fmt.Errorf("pim: window [%d,%d) overruns sequence length %d",
			start, start+w, seq.Len())
	}
	d := e.lib.Params().Dim
	ledger := NewLedger(e.cfg.Device)
	enc := e.lib.Encoder()

	// Periphery counter array, functionally identical to hdc.Acc, plus a
	// scratch row register for the rotated base vector.
	acc := hdc.NewAcc(d)
	rotated := hdc.NewHV(d)
	for i := 0; i < w; i++ {
		base := enc.BaseHV(seq.At(start + i))
		ledger.Charge(OpRowRead, e.rowsPerBucket) // fetch item-memory rows
		target := base
		if i != 0 {
			rotated.Permute(base, i)
			// ρ^i is realized as i single-step shifts amortized to one
			// pointer-offset update in the counter periphery.
			ledger.Charge(OpShift, e.rowsPerBucket)
			target = rotated.Clone()
		}
		acc.Add(target)
		ledger.Charge(OpPopcount, e.rowsPerBucket) // counter accumulate
	}
	out := enc.SealLogical(acc, 0)
	ledger.Charge(OpRowWrite, e.rowsPerBucket) // write the sealed rows
	var c Cost
	c.LatencyNs = ledger.BusyNs()
	c.EnergyPj = ledger.EnergyPj()
	for k := 0; k < int(numOpKinds); k++ {
		c.Counts[k] = ledger.Count(OpKind(k))
	}
	return out, c, nil
}

// BatchCost is the cost of a pipelined batch of searches.
type BatchCost struct {
	Serial    Cost    // latencies summed query after query
	Pipelined float64 // ns with broadcast of query i+1 overlapped with compute of query i
}

// SearchBatch runs every query through the in-memory search and returns
// per-query candidates plus the batch cost. Functionally each query is
// identical to Search; the pipelined latency models the double-buffered
// row buffer BioHD's periphery provides: while the arrays compute on
// query i, the bus broadcasts query i+1, so the batch takes
// broadcast₁ + Σᵢ max(computeᵢ, broadcastᵢ₊₁) instead of the serial sum.
func (e *Engine) SearchBatch(hvs []*hdc.HV) ([][]core.Candidate, BatchCost, error) {
	var out [][]core.Candidate
	var bc BatchCost
	dev := e.cfg.Device
	for i, hv := range hvs {
		cands, cost, err := e.Search(hv)
		if err != nil {
			return nil, bc, fmt.Errorf("pim: batch query %d: %w", i, err)
		}
		out = append(out, cands)
		bc.Serial.Add(cost)
		// Per-array broadcast time for one query.
		broadcast := float64(e.rowsPerBucket) * dev.BroadcastNs
		compute := cost.LatencyNs - broadcast
		if i == 0 {
			bc.Pipelined += broadcast + compute
		} else {
			bc.Pipelined += maxF(compute, broadcast)
		}
	}
	return out, bc, nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
