package pim

import (
	"fmt"
	"math/bits"

	"repro/internal/bitvec"
)

// Array is one crossbar memory array of Rows × Cols bits with a
// minimally modified periphery: a row buffer, a row-parallel XNOR unit,
// a popcount accumulator, and a circular shifter on the row buffer.
// All operations are functional (bits really move) and charged to the
// array's ledger.
type Array struct {
	rows, cols int
	wordsPer   int // 64-bit words per row
	data       []uint64
	rowBuf     []uint64
	ledger     *Ledger
}

// NewArray creates a zeroed array. Cols must be a positive multiple of
// 64 (the row buffer and datapath are word-granular); Rows must be
// positive.
func NewArray(rows, cols int, params DeviceParams) (*Array, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("pim: rows %d must be positive", rows)
	}
	if cols <= 0 || cols%64 != 0 {
		return nil, fmt.Errorf("pim: cols %d must be a positive multiple of 64", cols)
	}
	wp := cols / 64
	return &Array{
		rows:     rows,
		cols:     cols,
		wordsPer: wp,
		data:     make([]uint64, rows*wp),
		rowBuf:   make([]uint64, wp),
		ledger:   NewLedger(params),
	}, nil
}

// Rows returns the row count.
func (a *Array) Rows() int { return a.rows }

// Cols returns the column count.
func (a *Array) Cols() int { return a.cols }

// Ledger exposes the array's cost ledger.
func (a *Array) Ledger() *Ledger { return a.ledger }

func (a *Array) rowSlice(r int) []uint64 {
	if r < 0 || r >= a.rows {
		panic(fmt.Sprintf("pim: row %d out of range [0,%d)", r, a.rows))
	}
	return a.data[r*a.wordsPer : (r+1)*a.wordsPer]
}

// LoadRowBuf fills the row buffer from external data (a broadcast over
// the bus). words must have exactly Cols/64 entries.
func (a *Array) LoadRowBuf(words []uint64) {
	if len(words) != a.wordsPer {
		panic(fmt.Sprintf("pim: row buffer width %d words, got %d", a.wordsPer, len(words)))
	}
	copy(a.rowBuf, words)
	a.ledger.Charge(OpBroadcast, 1)
}

// RowBuf returns a copy of the current row buffer contents.
func (a *Array) RowBuf() []uint64 {
	out := make([]uint64, a.wordsPer)
	copy(out, a.rowBuf)
	return out
}

// WriteRow programs row r from the row buffer.
func (a *Array) WriteRow(r int) {
	copy(a.rowSlice(r), a.rowBuf)
	a.ledger.Charge(OpRowWrite, 1)
}

// ReadRow senses row r into the row buffer.
func (a *Array) ReadRow(r int) {
	copy(a.rowBuf, a.rowSlice(r))
	a.ledger.Charge(OpRowRead, 1)
}

// XnorPopcount performs the fused BioHD search primitive on row r: the
// stored row is XNORed with the row buffer in place in the periphery and
// the popcount of the result is returned. The stored row and the row
// buffer are unmodified.
func (a *Array) XnorPopcount(r int) int {
	row := a.rowSlice(r)
	pc := 0
	for i, w := range row {
		pc += bits.OnesCount64(^(w ^ a.rowBuf[i]))
	}
	a.ledger.Charge(OpXnor, 1)
	a.ledger.Charge(OpPopcount, 1)
	return pc
}

// ShiftRowBuf circularly shifts the row buffer left by one bit — the
// in-memory implementation of the HDC permutation ρ.
func (a *Array) ShiftRowBuf() {
	v := bitvec.FromWords(append([]uint64(nil), a.rowBuf...), a.cols)
	out := bitvec.New(a.cols)
	out.RotateLeft(v, 1)
	copy(a.rowBuf, out.Words())
	a.ledger.Charge(OpShift, 1)
}

// Compare charges one threshold comparison (done in the periphery after
// popcount accumulation).
func (a *Array) Compare() {
	a.ledger.Charge(OpCompare, 1)
}
