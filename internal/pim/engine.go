package pim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hdc"
)

// ChipConfig describes the crossbar chip: identical arrays operating in
// parallel, each with its own periphery, grouped into banks that share a
// broadcast bus.
type ChipConfig struct {
	ArrayRows     int // rows per array
	ArrayCols     int // columns per array (positive multiple of 64)
	NumArrays     int // arrays on the chip
	ArraysPerBank int // arrays sharing one broadcast bus (0 = 64)
	// Multicast delivers a broadcast row to every array of a bank in one
	// bus transaction (BioHD's peripheral extension); false serializes
	// the bus per array, adding contention the F8 sweep can expose.
	Multicast bool
	Device    DeviceParams
}

// DefaultChipConfig returns the reference chip: 4096 arrays of
// 1024×1024 bits (a 4 Gbit part) in banks of 64 with multicast
// broadcast, and the default device parameters.
func DefaultChipConfig() ChipConfig {
	return ChipConfig{
		ArrayRows:     1024,
		ArrayCols:     1024,
		NumArrays:     4096,
		ArraysPerBank: 64,
		Multicast:     true,
		Device:        DefaultDeviceParams(),
	}
}

// Validate checks the chip configuration.
func (c ChipConfig) Validate() error {
	if c.ArrayRows <= 0 {
		return fmt.Errorf("pim: ArrayRows %d must be positive", c.ArrayRows)
	}
	if c.ArrayCols <= 0 || c.ArrayCols%64 != 0 {
		return fmt.Errorf("pim: ArrayCols %d must be a positive multiple of 64", c.ArrayCols)
	}
	if c.NumArrays <= 0 {
		return fmt.Errorf("pim: NumArrays %d must be positive", c.NumArrays)
	}
	if c.ArraysPerBank < 0 {
		return fmt.Errorf("pim: ArraysPerBank %d must be non-negative", c.ArraysPerBank)
	}
	return c.Device.Validate()
}

// arraysPerBank returns the effective bank width.
func (c ChipConfig) arraysPerBank() int {
	if c.ArraysPerBank <= 0 {
		return 64
	}
	return c.ArraysPerBank
}

// MemoryBits returns the chip's total storage in bits.
func (c ChipConfig) MemoryBits() int64 {
	return int64(c.ArrayRows) * int64(c.ArrayCols) * int64(c.NumArrays)
}

// Engine executes BioHD search in simulated memory: a frozen sealed
// library's bucket hypervectors are programmed into crossbar arrays, and
// queries are broadcast and scored with in-array XNOR + popcount, all
// arrays in parallel.
type Engine struct {
	cfg           ChipConfig
	lib           *core.Library
	arrays        []*Array
	rowsPerBucket int
	bucketsPerArr int
	arraysUsed    int
	padBits       int // zero-padding bits in the final row chunk
	buildCost     Cost
}

// NewEngine maps lib onto a chip with the given configuration and
// programs the arrays (charging the build cost). The library must be
// frozen, sealed, and fit on the chip.
func NewEngine(cfg ChipConfig, lib *core.Library) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !lib.Frozen() {
		return nil, fmt.Errorf("pim: library must be frozen before mapping")
	}
	if !lib.Params().Sealed {
		return nil, fmt.Errorf("pim: crossbar arrays store binary buckets; build the library with Sealed")
	}
	d := lib.Params().Dim
	rowsPer := (d + cfg.ArrayCols - 1) / cfg.ArrayCols
	if rowsPer > cfg.ArrayRows {
		return nil, fmt.Errorf("pim: one bucket needs %d rows, array has %d", rowsPer, cfg.ArrayRows)
	}
	perArr := cfg.ArrayRows / rowsPer
	used := (lib.NumBuckets() + perArr - 1) / perArr
	if used > cfg.NumArrays {
		return nil, fmt.Errorf("pim: library needs %d arrays, chip has %d", used, cfg.NumArrays)
	}
	e := &Engine{
		cfg:           cfg,
		lib:           lib,
		rowsPerBucket: rowsPer,
		bucketsPerArr: perArr,
		arraysUsed:    used,
		padBits:       rowsPer*cfg.ArrayCols - d,
	}
	for i := 0; i < used; i++ {
		arr, err := NewArray(cfg.ArrayRows, cfg.ArrayCols, cfg.Device)
		if err != nil {
			return nil, err
		}
		e.arrays = append(e.arrays, arr)
	}
	e.buildCost = e.program()
	return e, nil
}

// program writes every bucket hypervector into its array rows and
// returns the (parallel-time) build cost.
func (e *Engine) program() Cost {
	before := e.snapshot()
	wordsPerRow := e.cfg.ArrayCols / 64
	for b := 0; b < e.lib.NumBuckets(); b++ {
		arr := e.arrays[b/e.bucketsPerArr]
		slot := b % e.bucketsPerArr
		words := e.lib.BucketVector(b).Bits().Words()
		for r := 0; r < e.rowsPerBucket; r++ {
			chunk := make([]uint64, wordsPerRow)
			copy(chunk, sliceClamp(words, r*wordsPerRow, wordsPerRow))
			arr.LoadRowBuf(chunk)
			arr.WriteRow(slot*e.rowsPerBucket + r)
		}
	}
	return e.delta(before)
}

// sliceClamp returns up to n words of s starting at off, without
// overrunning.
func sliceClamp(s []uint64, off, n int) []uint64 {
	if off >= len(s) {
		return nil
	}
	end := off + n
	if end > len(s) {
		end = len(s)
	}
	return s[off:end]
}

// Config returns the chip configuration.
func (e *Engine) Config() ChipConfig { return e.cfg }

// ArraysUsed returns how many arrays the mapping occupies.
func (e *Engine) ArraysUsed() int { return e.arraysUsed }

// RowsPerBucket returns how many array rows one bucket occupies.
func (e *Engine) RowsPerBucket() int { return e.rowsPerBucket }

// BuildCost returns the one-time cost of programming the library.
func (e *Engine) BuildCost() Cost { return e.buildCost }

// MappingReport summarizes how the library occupies the chip.
type MappingReport struct {
	ArraysUsed     int
	ArraysTotal    int
	RowsPerBucket  int
	BucketsPerArr  int
	UsedBits       int64   // bits actually storing bucket rows
	ChipBits       int64   // total chip capacity
	RowOccupancy   float64 // fraction of rows in used arrays holding data
	ChipOccupancy  float64 // UsedBits / ChipBits
	BroadcastWidth int     // bank width sharing one broadcast bus
}

// Report returns the mapping summary for diagnostics and the CLI.
func (e *Engine) Report() MappingReport {
	usedRows := int64(e.lib.NumBuckets()) * int64(e.rowsPerBucket)
	used := usedRows * int64(e.cfg.ArrayCols)
	chip := e.cfg.MemoryBits()
	var rowOcc float64
	if e.arraysUsed > 0 {
		rowOcc = float64(usedRows) / float64(int64(e.arraysUsed)*int64(e.cfg.ArrayRows))
	}
	return MappingReport{
		ArraysUsed:     e.arraysUsed,
		ArraysTotal:    e.cfg.NumArrays,
		RowsPerBucket:  e.rowsPerBucket,
		BucketsPerArr:  e.bucketsPerArr,
		UsedBits:       used,
		ChipBits:       chip,
		RowOccupancy:   rowOcc,
		ChipOccupancy:  float64(used) / float64(chip),
		BroadcastWidth: e.cfg.arraysPerBank(),
	}
}

// snapshot captures every array's ledger state.
func (e *Engine) snapshot() []Ledger {
	out := make([]Ledger, len(e.arrays))
	for i, a := range e.arrays {
		out[i] = *a.Ledger()
	}
	return out
}

// delta aggregates the cost incurred since a snapshot: arrays run in
// parallel, so latency is the maximum per-array busy-time delta and
// energy the sum.
func (e *Engine) delta(before []Ledger) Cost {
	var c Cost
	for i, a := range e.arrays {
		l := a.Ledger()
		busy := l.BusyNs() - before[i].BusyNs()
		if busy > c.LatencyNs {
			c.LatencyNs = busy
		}
		c.EnergyPj += l.EnergyPj() - before[i].pj
		for k := 0; k < int(numOpKinds); k++ {
			c.Counts[k] += l.Count(OpKind(k)) - before[i].counts[k]
		}
	}
	return c
}

// Search scores the encoded query against every bucket in memory and
// returns the candidates above the library's operating threshold,
// exactly as core.Library.Probe would, plus the simulated cost. Each
// array receives the query rows by broadcast and performs one fused
// XNOR+popcount per stored bucket row; the per-bucket score accumulates
// in the periphery and is thresholded there.
func (e *Engine) Search(hv *hdc.HV) ([]core.Candidate, Cost, error) {
	if hv.Dim() != e.lib.Params().Dim {
		return nil, Cost{}, fmt.Errorf("pim: query dimension %d != library %d",
			hv.Dim(), e.lib.Params().Dim)
	}
	before := e.snapshot()
	tau := e.lib.Threshold()
	wordsPerRow := e.cfg.ArrayCols / 64
	queryWords := hv.Bits().Words()

	var cands []core.Candidate
	for ai, arr := range e.arrays {
		firstBucket := ai * e.bucketsPerArr
		nBuckets := minInt(e.bucketsPerArr, e.lib.NumBuckets()-firstBucket)
		scores := make([]int, nBuckets)
		// One pass per query row chunk: broadcast once, fuse over all
		// buckets resident in this array.
		for r := 0; r < e.rowsPerBucket; r++ {
			chunk := make([]uint64, wordsPerRow)
			copy(chunk, sliceClamp(queryWords, r*wordsPerRow, wordsPerRow))
			arr.LoadRowBuf(chunk)
			validBits := e.cfg.ArrayCols
			if r == e.rowsPerBucket-1 {
				validBits -= e.padBits
			}
			for b := 0; b < nBuckets; b++ {
				pc := arr.XnorPopcount(b*e.rowsPerBucket + r)
				// Padding columns are zero in both operands; XNOR reads
				// them as matches, so discount them before converting
				// popcount to a bipolar dot contribution.
				pcValid := pc - (e.cfg.ArrayCols - validBits)
				scores[b] += 2*pcValid - validBits
			}
		}
		for b := 0; b < nBuckets; b++ {
			arr.Compare()
			if s := float64(scores[b]); s >= tau {
				cands = append(cands, core.Candidate{
					Bucket: firstBucket + b,
					Score:  s,
					Excess: s - tau,
				})
			}
		}
	}
	cost := e.delta(before)
	cost.LatencyNs += e.busPenaltyNs()
	return cands, cost, nil
}

// busPenaltyNs models broadcast-bus contention: without multicast, the
// bank bus delivers the query's rows to each of its arrays in turn, so
// the busiest bank serializes (arraysInBank−1) extra row broadcasts per
// query (the first delivery is already in the per-array ledgers).
func (e *Engine) busPenaltyNs() float64 {
	if e.cfg.Multicast {
		return 0
	}
	perBank := e.cfg.arraysPerBank()
	busiest := minInt(perBank, e.arraysUsed)
	if busiest <= 1 {
		return 0
	}
	return float64(busiest-1) * float64(e.rowsPerBucket) * e.cfg.Device.BroadcastNs
}

// EncodeCost returns the simulated in-memory cost of encoding one query
// window of w bases: the base hypervectors are read from a dedicated
// item-memory region (one row read each), combined with w−1 in-array
// XNOR steps (exact chain) or w accumulate steps (approximate bundle,
// charged at popcount-accumulator cost), with one row-buffer shift per
// position for ρ.
func (e *Engine) EncodeCost(approx bool, w int) Cost {
	l := NewLedger(e.cfg.Device)
	perRow := e.rowsPerBucket
	l.Charge(OpRowRead, w*perRow)
	l.Charge(OpShift, (w-1)*perRow)
	if approx {
		l.Charge(OpPopcount, w*perRow) // counter accumulate per row chunk
		l.Charge(OpRowWrite, perRow)   // seal the bundled window
	} else {
		l.Charge(OpXnor, (w-1)*perRow)
	}
	var c Cost
	c.LatencyNs = l.BusyNs()
	c.EnergyPj = l.EnergyPj()
	for k := 0; k < int(numOpKinds); k++ {
		c.Counts[k] = l.Count(OpKind(k))
	}
	return c
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
