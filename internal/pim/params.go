// Package pim simulates BioHD's processing-in-memory architecture: a
// hierarchy of crossbar memory arrays whose peripheries are minimally
// extended with row-parallel XNOR, popcount and shift circuits — the
// three primitives all BioHD operations reduce to.
//
// The simulator is functional *and* cost-accounting: arrays actually
// store bits and execute operations (so PIM search results are checked
// bit-exact against the software engine), while every operation charges
// a latency/energy ledger derived from device parameters. Arrays operate
// in parallel; chip-level latency is the maximum busy time across
// arrays plus broadcast costs, and chip-level energy is the sum.
package pim

import "fmt"

// DeviceParams are per-operation latencies (ns) and energies (pJ) for
// one crossbar array row operation. The defaults are representative
// 28 nm ReRAM-crossbar figures in the range reported by the PIM
// literature the paper builds on; the sensitivity experiment (F8) sweeps
// the geometry, and absolute numbers only set the scale of the
// speedup/energy ratios, not their shape.
type DeviceParams struct {
	RowReadNs   float64 // activate + sense one row
	RowWriteNs  float64 // program one row
	XnorNs      float64 // in-array bitwise XNOR of a row against the row buffer
	PopcountNs  float64 // peripheral popcount of one row into the accumulator
	ShiftNs     float64 // one-step circular shift of the row buffer
	BroadcastNs float64 // deliver one row of data to an array over the bus
	RowReadPj   float64
	RowWritePj  float64
	XnorPj      float64
	PopcountPj  float64
	ShiftPj     float64
	BroadcastPj float64
	CompareNs   float64 // threshold comparison of one accumulated score
	ComparePj   float64
}

// DefaultDeviceParams returns the reference device configuration.
func DefaultDeviceParams() DeviceParams {
	return DeviceParams{
		RowReadNs:   2.9,
		RowWriteNs:  20.3,
		XnorNs:      1.5,
		PopcountNs:  4.2,
		ShiftNs:     0.6,
		BroadcastNs: 1.1,
		CompareNs:   0.5,
		RowReadPj:   1.1,
		RowWritePj:  51.2,
		XnorPj:      0.9,
		PopcountPj:  1.9,
		ShiftPj:     0.2,
		BroadcastPj: 1.4,
		ComparePj:   0.05,
	}
}

// Validate checks that all parameters are positive.
func (p DeviceParams) Validate() error {
	for name, v := range map[string]float64{
		"RowReadNs": p.RowReadNs, "RowWriteNs": p.RowWriteNs,
		"XnorNs": p.XnorNs, "PopcountNs": p.PopcountNs,
		"ShiftNs": p.ShiftNs, "BroadcastNs": p.BroadcastNs,
		"CompareNs": p.CompareNs,
		"RowReadPj": p.RowReadPj, "RowWritePj": p.RowWritePj,
		"XnorPj": p.XnorPj, "PopcountPj": p.PopcountPj,
		"ShiftPj": p.ShiftPj, "BroadcastPj": p.BroadcastPj,
		"ComparePj": p.ComparePj,
	} {
		if v <= 0 {
			return fmt.Errorf("pim: device parameter %s = %v must be positive", name, v)
		}
	}
	return nil
}

// OpKind enumerates the accountable operations.
type OpKind int

// Accountable operation kinds.
const (
	OpRowRead OpKind = iota
	OpRowWrite
	OpXnor
	OpPopcount
	OpShift
	OpBroadcast
	OpCompare
	numOpKinds
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpRowRead:
		return "row-read"
	case OpRowWrite:
		return "row-write"
	case OpXnor:
		return "xnor"
	case OpPopcount:
		return "popcount"
	case OpShift:
		return "shift"
	case OpBroadcast:
		return "broadcast"
	case OpCompare:
		return "compare"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// opCost returns (ns, pJ) for one operation of kind k.
func (p DeviceParams) opCost(k OpKind) (float64, float64) {
	switch k {
	case OpRowRead:
		return p.RowReadNs, p.RowReadPj
	case OpRowWrite:
		return p.RowWriteNs, p.RowWritePj
	case OpXnor:
		return p.XnorNs, p.XnorPj
	case OpPopcount:
		return p.PopcountNs, p.PopcountPj
	case OpShift:
		return p.ShiftNs, p.ShiftPj
	case OpBroadcast:
		return p.BroadcastNs, p.BroadcastPj
	case OpCompare:
		return p.CompareNs, p.ComparePj
	default:
		panic(fmt.Sprintf("pim: unknown op kind %d", int(k)))
	}
}

// Ledger accumulates operation counts and their time/energy for one
// array (or one logical actor). Latency is the actor's serial busy time;
// parallel actors' ledgers are combined by Chip (max time, summed
// energy).
type Ledger struct {
	params DeviceParams
	counts [numOpKinds]int64
	busyNs float64
	pj     float64
}

// NewLedger returns a ledger charging the given device parameters.
func NewLedger(params DeviceParams) *Ledger {
	return &Ledger{params: params}
}

// Charge records n operations of kind k.
func (l *Ledger) Charge(k OpKind, n int) {
	if n < 0 {
		panic(fmt.Sprintf("pim: negative charge %d", n))
	}
	ns, pj := l.params.opCost(k)
	l.counts[k] += int64(n)
	l.busyNs += ns * float64(n)
	l.pj += pj * float64(n)
}

// Count returns the number of operations of kind k recorded.
func (l *Ledger) Count(k OpKind) int64 { return l.counts[k] }

// BusyNs returns the serial busy time in nanoseconds.
func (l *Ledger) BusyNs() float64 { return l.busyNs }

// EnergyPj returns the accumulated energy in picojoules.
func (l *Ledger) EnergyPj() float64 { return l.pj }

// Reset zeroes the ledger.
func (l *Ledger) Reset() {
	l.counts = [numOpKinds]int64{}
	l.busyNs = 0
	l.pj = 0
}

// Cost is an aggregated latency/energy result with a per-op breakdown.
type Cost struct {
	LatencyNs float64
	EnergyPj  float64
	Counts    [numOpKinds]int64
}

// Add accumulates another cost serially (latencies add).
func (c *Cost) Add(o Cost) {
	c.LatencyNs += o.LatencyNs
	c.EnergyPj += o.EnergyPj
	for i := range c.Counts {
		c.Counts[i] += o.Counts[i]
	}
}

// EnergyUj returns the energy in microjoules.
func (c Cost) EnergyUj() float64 { return c.EnergyPj * 1e-6 }

// LatencyMs returns the latency in milliseconds.
func (c Cost) LatencyMs() float64 { return c.LatencyNs * 1e-6 }
