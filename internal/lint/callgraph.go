package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the whole-program half of the engine: a static call
// graph over every loaded package, resolved without go/ssa (the repo's
// zero-dependency rule) from the go/types information the loader
// already produces. The hotpath and snapshotatomic analyzers walk it to
// turn per-function observations into whole-program proofs.
//
// Resolution is deliberately conservative (over-approximate): an edge
// is added whenever a call *could* reach a function, so reachability
// answers "provably never called from here" questions soundly.
//
//   - Direct calls to package-level functions and concrete methods
//     resolve through types.Info (Uses/Selections).
//   - Interface-dispatch calls fan out to every method of every named
//     type in the loaded program that implements the interface.
//   - Indirect calls through function-typed values (variables, fields,
//     parameters) fan out to every address-taken function with an
//     identical signature.
//   - Function literals are attributed to their enclosing declaration:
//     a FuncLit's body contributes edges from (and is scanned as part
//     of) the function that lexically contains it. This over-
//     approximates (a stored closure may never run) but is sound for
//     "nothing reachable allocates" proofs.

// FuncNode is one declared function or method in the loaded program.
type FuncNode struct {
	// Fn is the type-checker's object for the function.
	Fn *types.Func
	// Decl is the syntax; Body may be nil (assembly stubs).
	Decl *ast.FuncDecl
	// Pkg is the package the declaration lives in.
	Pkg *Package
	// Calls are the resolved call sites, in source order.
	Calls []CallSite
	// Anns are the //biohd: annotations on the declaration.
	Anns []Annotation
}

// Name returns the node's fully qualified name, e.g.
// "repro/internal/core.Probe" or "(*repro/internal/core.segment).probeRange".
func (n *FuncNode) Name() string { return n.Fn.FullName() }

// CallSite is one resolved call expression inside a function body.
type CallSite struct {
	// Pos locates the call.
	Pos token.Pos
	// Callees are the possible targets within the loaded program.
	// External (stdlib) callees are not represented; the walk stops at
	// the module boundary.
	Callees []*FuncNode
	// Kind records how the call resolved: "direct", "interface", or
	// "indirect".
	Kind string
}

// CallGraph is the resolved static call graph of a loaded program.
type CallGraph struct {
	nodes   map[*types.Func]*FuncNode
	callers map[*types.Func][]*FuncNode // reverse edges, deduplicated
	order   []*FuncNode                 // deterministic iteration order
}

// NewCallGraph resolves the call graph of the loaded packages.
// Packages without type information contribute no nodes (the analyzers
// that need the graph already require IsTypeOK).
func NewCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:   map[*types.Func]*FuncNode{},
		callers: map[*types.Func][]*FuncNode{},
	}
	// Pass 1: index every declared function and collect annotations.
	for _, pkg := range pkgs {
		if !pkg.IsTypeOK() {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok || obj == nil {
					continue
				}
				node := &FuncNode{Fn: obj, Decl: fd, Pkg: pkg, Anns: parseAnnotations(fd.Doc)}
				g.nodes[obj] = node
				g.order = append(g.order, node)
			}
		}
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].Name() < g.order[j].Name() })

	// Pass 2: the indirect-call universe — address-taken functions,
	// grouped by signature identity.
	taken := g.addressTaken(pkgs)

	// Pass 3: resolve call sites.
	for _, node := range g.order {
		if node.Decl.Body == nil {
			continue
		}
		g.resolveBody(node, taken)
	}

	// Reverse edges.
	for _, node := range g.order {
		for _, cs := range node.Calls {
			for _, callee := range cs.Callees {
				g.addCaller(callee.Fn, node)
			}
		}
	}
	return g
}

func (g *CallGraph) addCaller(callee *types.Func, caller *FuncNode) {
	for _, c := range g.callers[callee] {
		if c == caller {
			return
		}
	}
	g.callers[callee] = append(g.callers[callee], caller)
}

// Node returns the graph node for a function object, or nil.
func (g *CallGraph) Node(fn *types.Func) *FuncNode { return g.nodes[fn] }

// NodeByName returns the node whose fully qualified name matches, or
// nil. Names follow types.Func.FullName: "path/to/pkg.Fn" for
// functions, "(path/to/pkg.T).M" or "(*path/to/pkg.T).M" for methods.
func (g *CallGraph) NodeByName(name string) *FuncNode {
	for _, n := range g.order {
		if n.Name() == name {
			return n
		}
	}
	return nil
}

// Nodes returns every node in deterministic (name) order.
func (g *CallGraph) Nodes() []*FuncNode { return g.order }

// Callers returns the functions with a call site that may target fn.
func (g *CallGraph) Callers(fn *types.Func) []*FuncNode { return g.callers[fn] }

// Reachable walks the graph from the given roots and returns, for every
// function reachable through non-excluded nodes, the predecessor on one
// shortest chain from a root (roots map to nil). exclude stops the walk
// at a node: the node itself is still reported reachable (its callers
// reach it) but its own edges are not followed.
func (g *CallGraph) Reachable(roots []*FuncNode, exclude func(*FuncNode) bool) map[*FuncNode]*FuncNode {
	pred := map[*FuncNode]*FuncNode{}
	queue := make([]*FuncNode, 0, len(roots))
	for _, r := range roots {
		if r == nil {
			continue
		}
		if _, seen := pred[r]; !seen {
			pred[r] = nil
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if exclude != nil && exclude(n) {
			continue
		}
		for _, cs := range n.Calls {
			for _, callee := range cs.Callees {
				if _, seen := pred[callee]; seen {
					continue
				}
				pred[callee] = n
				queue = append(queue, callee)
			}
		}
	}
	return pred
}

// Chain renders one root→fn call chain from a Reachable predecessor
// map, e.g. "Probe → probeInto → probeSeg". Short names keep the
// message readable; the finding position carries the file.
func Chain(pred map[*FuncNode]*FuncNode, fn *FuncNode) string {
	var names []string
	for n := fn; n != nil; n = pred[n] {
		names = append(names, n.Fn.Name())
		if pred[n] == nil {
			break
		}
	}
	// Reverse into root-first order.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	out := names[0]
	for _, s := range names[1:] {
		out += " → " + s
	}
	return out
}

// addressTaken collects every declared function referenced outside call
// position anywhere in the program — the conservative callee universe
// for indirect calls — keyed by signature identity via index into a
// parallel slice (signatures cannot be map keys).
type takenSet struct {
	sigs []*types.Signature
	fns  [][]*FuncNode
}

func (t *takenSet) add(sig *types.Signature, n *FuncNode) {
	for i, s := range t.sigs {
		if types.Identical(s, sig) {
			for _, f := range t.fns[i] {
				if f == n {
					return
				}
			}
			t.fns[i] = append(t.fns[i], n)
			return
		}
	}
	t.sigs = append(t.sigs, sig)
	t.fns = append(t.fns, []*FuncNode{n})
}

func (t *takenSet) lookup(sig *types.Signature) []*FuncNode {
	for i, s := range t.sigs {
		if types.Identical(s, stripRecv(sig)) {
			return t.fns[i]
		}
	}
	return nil
}

// stripRecv normalizes a method signature to its receiver-less form so
// method values and plain functions with the same parameter list
// compare identical.
func stripRecv(sig *types.Signature) *types.Signature {
	if sig.Recv() == nil {
		return sig
	}
	return types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
}

func (g *CallGraph) addressTaken(pkgs []*Package) *takenSet {
	taken := &takenSet{}
	for _, pkg := range pkgs {
		if !pkg.IsTypeOK() {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if ok {
					// The called expression itself is call position, but
					// its arguments may take addresses; skip just Fun.
					for _, arg := range call.Args {
						g.collectTaken(pkg, arg, taken)
					}
					if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
						g.collectTaken(pkg, sel.X, taken)
					}
					return false
				}
				if id, ok := n.(*ast.Ident); ok {
					g.markTaken(pkg, id, taken)
				}
				return true
			})
		}
	}
	return taken
}

// collectTaken walks an expression subtree marking function references.
func (g *CallGraph) collectTaken(pkg *Package, e ast.Expr, taken *takenSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			for _, arg := range call.Args {
				g.collectTaken(pkg, arg, taken)
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				g.collectTaken(pkg, sel.X, taken)
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			g.markTaken(pkg, id, taken)
		}
		return true
	})
}

func (g *CallGraph) markTaken(pkg *Package, id *ast.Ident, taken *takenSet) {
	obj, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok {
		return
	}
	node := g.nodes[obj]
	if node == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); ok {
		taken.add(stripRecv(sig), node)
	}
}

// resolveBody resolves every call expression in node's body (function
// literals included — their calls are attributed to node).
func (g *CallGraph) resolveBody(node *FuncNode, taken *takenSet) {
	pkg := node.Pkg
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if site, ok := g.resolveCall(pkg, call, taken); ok {
			node.Calls = append(node.Calls, site)
		}
		return true
	})
}

// resolveCall classifies one call expression. Conversions, builtins and
// calls fully outside the loaded program yield no site.
func (g *CallGraph) resolveCall(pkg *Package, call *ast.CallExpr, taken *takenSet) (CallSite, bool) {
	// Conversion? T(x) has a type, not a value, in Fun position.
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return CallSite{}, false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Builtin:
			return CallSite{}, false
		case *types.Func:
			if n := g.nodes[obj]; n != nil {
				return CallSite{Pos: call.Pos(), Callees: []*FuncNode{n}, Kind: "direct"}, true
			}
			return CallSite{}, false // external function
		case *types.Var:
			return g.indirectSite(call, obj.Type(), taken)
		}
		// Calling the result of a FuncLit assigned elsewhere etc.
		if t := pkg.TypeOf(fun); t != nil {
			return g.indirectSite(call, t, taken)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, isFn := sel.Obj().(*types.Func)
			switch {
			case isFn && sel.Kind() == types.MethodVal:
				if recv := sel.Recv(); recv != nil {
					if iface, ok := recv.Underlying().(*types.Interface); ok {
						return g.interfaceSite(call, fun.Sel.Name, iface)
					}
				}
				if n := g.nodes[fn]; n != nil {
					return CallSite{Pos: call.Pos(), Callees: []*FuncNode{n}, Kind: "direct"}, true
				}
				return CallSite{}, false // external method
			case sel.Kind() == types.FieldVal:
				// Calling a function-typed field.
				return g.indirectSite(call, sel.Type(), taken)
			}
			return CallSite{}, false
		}
		// Qualified identifier pkg.Fn.
		if obj, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := g.nodes[obj]; n != nil {
				return CallSite{Pos: call.Pos(), Callees: []*FuncNode{n}, Kind: "direct"}, true
			}
		}
	case *ast.FuncLit:
		// Immediately invoked literal: body already attributed to the
		// enclosing declaration, no edge needed.
		return CallSite{}, false
	}
	return CallSite{}, false
}

// indirectSite fans an indirect call out to every address-taken
// function with an identical signature.
func (g *CallGraph) indirectSite(call *ast.CallExpr, t types.Type, taken *takenSet) (CallSite, bool) {
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return CallSite{}, false
	}
	callees := taken.lookup(stripRecv(sig))
	if len(callees) == 0 {
		return CallSite{}, false
	}
	return CallSite{Pos: call.Pos(), Callees: callees, Kind: "indirect"}, true
}

// interfaceSite fans an interface-dispatch call out to the named method
// of every loaded type implementing the interface.
func (g *CallGraph) interfaceSite(call *ast.CallExpr, method string, iface *types.Interface) (CallSite, bool) {
	var callees []*FuncNode
	for _, n := range g.order {
		recv := n.Fn.Type().(*types.Signature).Recv()
		if recv == nil || n.Fn.Name() != method {
			continue
		}
		rt := recv.Type()
		if types.Implements(rt, iface) {
			callees = append(callees, n)
			continue
		}
		// A value receiver also satisfies through the pointer type.
		if _, isPtr := rt.(*types.Pointer); !isPtr {
			if types.Implements(types.NewPointer(rt), iface) {
				callees = append(callees, n)
			}
		}
	}
	if len(callees) == 0 {
		return CallSite{}, false
	}
	return CallSite{Pos: call.Pos(), Callees: callees, Kind: "interface"}, true
}
