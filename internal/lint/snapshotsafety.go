package lint

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// SnapshotSafety guards internal/core's snapshot-isolation invariant:
// a segment published in a snapshot is immutable, and the proof rests
// on every touch of the raw segment storage — the bkts slice and the
// packed probe arena — living in segment.go (the storage owner) or
// snapshot.go (the read-side view). Any other file reaching for those
// fields bypasses the accessor boundary, and a write through such a
// path would corrupt data that lock-free readers are scanning.
//
// The check is syntactic — it flags any selector of a field named bkts
// or arena in the package — because the field names are unique to the
// segment types within internal/core, and a syntactic rule keeps
// working when type information is incomplete.
type SnapshotSafety struct{}

// Name implements Analyzer.
func (SnapshotSafety) Name() string { return "snapshotsafety" }

// Doc implements Analyzer.
func (SnapshotSafety) Doc() string {
	return "internal/core may touch raw segment storage (bkts, arena) only in segment.go and snapshot.go"
}

// snapshotStorageFields are the raw-storage fields of the segment types.
var snapshotStorageFields = map[string]bool{"bkts": true, "arena": true}

// snapshotStorageFiles are the files allowed to touch them.
var snapshotStorageFiles = map[string]bool{"segment.go": true, "snapshot.go": true}

// Run implements Analyzer.
func (SnapshotSafety) Run(pkg *Package) []Diagnostic {
	if !strings.HasSuffix(pkg.Path, "internal/core") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if snapshotStorageFiles[name] {
			continue
		}
		walkFuncs(f, func(n ast.Node, fs *funcStack) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !snapshotStorageFields[sel.Sel.Name] {
				return true
			}
			where := "package-level declaration"
			if d := fs.topDecl(); d != nil {
				where = d.Name.Name
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(sel.Sel.Pos()),
				Rule: "snapshotsafety",
				Message: where + " touches raw segment storage ." + sel.Sel.Name +
					" outside segment.go/snapshot.go " +
					"(go through the segment accessors so published snapshots stay immutable)",
			})
			return true
		})
	}
	return diags
}
