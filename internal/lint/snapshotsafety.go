package lint

import (
	"go/ast"
	"path/filepath"
	"sort"
	"strings"
)

// SnapshotSafety guards the snapshot-isolation invariant of the index
// backends: a segment published in a snapshot is immutable, and the
// proof rests on every touch of the raw segment storage living in the
// storage-owner files (segment.go, the accessors and seal/compact
// rebuilds) or snapshot.go (the read-side view). Any other file
// reaching for those fields bypasses the accessor boundary, and a
// write through such a path would corrupt data that lock-free readers
// are scanning.
//
// The check is syntactic — it flags any selector of a scoped field
// name in the package — because the field names are unique to the
// segment types within each scoped package, and a syntactic rule keeps
// working when type information is incomplete. Each backend package
// declares its own raw-storage fields in snapshotScopes: the HDC
// library's bucket slice and packed probe arena, and the bit-sliced
// backend's column arena and tombstone bitmap.
type SnapshotSafety struct{}

// Name implements Analyzer.
func (SnapshotSafety) Name() string { return "snapshotsafety" }

// Doc implements Analyzer.
func (SnapshotSafety) Doc() string {
	return "index backends may touch raw segment storage only in segment.go and snapshot.go"
}

// snapshotScope lists one package's raw-storage fields and the files
// allowed to touch them.
type snapshotScope struct {
	fields map[string]bool
	files  map[string]bool
}

// snapshotScopes maps import-path suffixes to their storage scope.
var snapshotScopes = map[string]snapshotScope{
	"internal/core": {
		fields: map[string]bool{"bkts": true, "arena": true},
		files:  map[string]bool{"segment.go": true, "snapshot.go": true},
	},
	"internal/cobs": {
		fields: map[string]bool{"arena": true, "tombs": true},
		files:  map[string]bool{"segment.go": true, "snapshot.go": true},
	},
}

// Run implements Analyzer.
func (SnapshotSafety) Run(pkg *Package) []Diagnostic {
	var scope snapshotScope
	found := false
	for suffix, sc := range snapshotScopes {
		if strings.HasSuffix(pkg.Path, suffix) {
			scope, found = sc, true
			break
		}
	}
	if !found {
		return nil
	}
	allowed := make([]string, 0, len(scope.files))
	for f := range scope.files {
		allowed = append(allowed, f)
	}
	sort.Strings(allowed)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		name := filepath.Base(pkg.Fset.Position(f.Pos()).Filename)
		if scope.files[name] {
			continue
		}
		walkFuncs(f, func(n ast.Node, fs *funcStack) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !scope.fields[sel.Sel.Name] {
				return true
			}
			where := "package-level declaration"
			if d := fs.topDecl(); d != nil {
				where = d.Name.Name
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(sel.Sel.Pos()),
				Rule: "snapshotsafety",
				Message: where + " touches raw segment storage ." + sel.Sel.Name +
					" outside " + strings.Join(allowed, "/") +
					" (go through the segment accessors so published snapshots stay immutable)",
			})
			return true
		})
	}
	return diags
}
