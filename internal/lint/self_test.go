package lint

import "testing"

// TestRepoIsLintClean runs every analyzer over this repository's own
// source, making biohdlint a tier-1 gate: any new violation fails
// `go test ./...`, not just the optional CLI run. Fix the finding or
// add a `//lint:ignore <rule> <reason>` suppression at the site.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	pkgs, err := Load(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, p := range pkgs {
		if p.TypeErr != nil {
			t.Errorf("%s: incomplete type information: %v", p.Path, p.TypeErr)
		}
	}
	diags := Run(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("%d biohdlint finding(s); run `go run ./cmd/biohdlint ./...` locally", len(diags))
	}
}
