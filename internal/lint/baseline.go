package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A Baseline is the adopt-then-ratchet mechanism: a recorded set of
// known findings that Filter subtracts from a run, so a new analyzer
// can land with its existing debt frozen while any NEW finding still
// fails the build. Entries are line-agnostic — a finding is identified
// by (repo-relative file, rule, message), so unrelated edits that shift
// line numbers do not invalidate the baseline — and counted as a
// multiset: two identical findings in one file need two entries, and
// fixing one of them is ratchet progress the next -write-baseline
// captures.
type Baseline struct {
	counts map[BaselineEntry]int
}

// BaselineEntry identifies one tolerated finding.
type BaselineEntry struct {
	// File is the repo-relative slash path of the finding's file.
	File string `json:"file"`
	// Rule is the analyzer name.
	Rule string `json:"rule"`
	// Message is the full finding message.
	Message string `json:"message"`
}

// RelEntry converts a diagnostic to its baseline identity, with the
// filename made root-relative (slash-separated). Files outside root
// keep their absolute path. It is also the path normalization used by
// the JSON report, so baseline entries and -json artifacts agree.
func RelEntry(root string, d Diagnostic) BaselineEntry {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && filepath.IsLocal(rel) {
		file = rel
	}
	return BaselineEntry{File: filepath.ToSlash(file), Rule: d.Rule, Message: d.Message}
}

// LoadBaseline reads a baseline file. A missing file is an empty
// baseline — the ratchet's end state — not an error.
func LoadBaseline(path string) (*Baseline, error) {
	b := &Baseline{counts: map[BaselineEntry]int{}}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return b, nil
	}
	if err != nil {
		return nil, err
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("lint: parsing baseline %s: %w", path, err)
	}
	for _, e := range entries {
		b.counts[e]++
	}
	return b, nil
}

// Len returns the number of tolerated findings.
func (b *Baseline) Len() int {
	n := 0
	for _, c := range b.counts {
		n += c
	}
	return n
}

// Filter splits diags into the findings not covered by the baseline
// (kept, in input order) and the number it absorbed. Each entry absorbs
// at most its recorded count.
func (b *Baseline) Filter(root string, diags []Diagnostic) (kept []Diagnostic, absorbed int) {
	remaining := make(map[BaselineEntry]int, len(b.counts))
	for e, c := range b.counts {
		remaining[e] = c
	}
	for _, d := range diags {
		e := RelEntry(root, d)
		if remaining[e] > 0 {
			remaining[e]--
			absorbed++
			continue
		}
		kept = append(kept, d)
	}
	return kept, absorbed
}

// WriteBaseline records diags as the new baseline at path: one entry
// per finding (duplicates included), sorted for stable diffs. An empty
// run writes an empty list, so "ratchet finished" is an explicit,
// reviewable state.
func WriteBaseline(path, root string, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, RelEntry(root, d))
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
