package lint

import (
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// fixture loads testdata/src/fake once; the packages are shared by all
// tests in this file (analyzers never mutate them).
var fixture = sync.OnceValues(func() ([]*Package, error) {
	return Load(filepath.Join("testdata", "src", "fake"))
})

// fixtureDiags runs the full analyzer set over the fixture module.
func fixtureDiags(t *testing.T) []Diagnostic {
	t.Helper()
	pkgs, err := fixture()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, p := range pkgs {
		if p.TypeErr != nil {
			t.Fatalf("package %s failed to type-check: %v", p.Path, p.TypeErr)
		}
	}
	return Run(pkgs, All())
}

// findingsIn filters diagnostics of one rule within one file basename.
func findingsIn(diags []Diagnostic, rule, file string) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Rule == rule && filepath.Base(d.Pos.Filename) == file {
			out = append(out, d)
		}
	}
	return out
}

// requireFinding asserts exactly one diagnostic of rule in file whose
// message contains want.
func requireFinding(t *testing.T, diags []Diagnostic, rule, file, want string) {
	t.Helper()
	var hits []Diagnostic
	for _, d := range findingsIn(diags, rule, file) {
		if strings.Contains(d.Message, want) {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Errorf("want exactly 1 [%s] finding in %s containing %q, got %d:\n%s",
			rule, file, want, len(hits), formatDiags(findingsIn(diags, rule, file)))
	}
}

func formatDiags(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString("  " + d.String() + "\n")
	}
	return sb.String()
}

func TestDeterminism(t *testing.T) {
	diags := fixtureDiags(t)
	requireFinding(t, diags, "determinism", "det.go", "import of math/rand")
	requireFinding(t, diags, "determinism", "det.go", "append to out")
	requireFinding(t, diags, "determinism", "det.go", "+= on sum")
	if got := findingsIn(diags, "determinism", "det.go"); len(got) != 3 {
		t.Errorf("det.go: want 3 determinism findings "+
			"(CollectSorted and SumInts must pass), got %d:\n%s",
			len(got), formatDiags(got))
	}
	if got := findingsIn(diags, "determinism", "rng.go"); len(got) != 0 {
		t.Errorf("internal/rng must be exempt, got:\n%s", formatDiags(got))
	}
}

func TestPurity(t *testing.T) {
	diags := fixtureDiags(t)
	requireFinding(t, diags, "purity", "pure.go", "fmt.Println")
	requireFinding(t, diags, "purity", "pure.go", "log.Fatalf")
	requireFinding(t, diags, "purity", "pure.go", "os.Exit")
	requireFinding(t, diags, "purity", "pure.go", "function with an error result")
	requireFinding(t, diags, "purity", "pure.go", "panicking with an error value")
	if got := findingsIn(diags, "purity", "pure.go"); len(got) != 5 {
		t.Errorf("pure.go: want 5 purity findings "+
			"(Index guard and MustParse must pass), got %d:\n%s",
			len(got), formatDiags(got))
	}
	if got := findingsIn(diags, "purity", "main.go"); len(got) != 0 {
		t.Errorf("main packages must be exempt, got:\n%s", formatDiags(got))
	}
}

func TestErrcheck(t *testing.T) {
	diags := fixtureDiags(t)
	got := findingsIn(diags, "errcheck", "errs.go")
	// Drop's bare os.Remove and Malformed's (whose suppression lacks a
	// reason and is therefore void) — Suppressed's discard must not
	// appear.
	if len(got) != 2 {
		t.Errorf("errs.go: want 2 errcheck findings, got %d:\n%s",
			len(got), formatDiags(got))
	}
	requireFinding(t, diags, "suppress", "errs.go", "malformed suppression")
}

func TestConcurrency(t *testing.T) {
	diags := fixtureDiags(t)
	requireFinding(t, diags, "concurrency", "conc.go", "no join in Detached")
	requireFinding(t, diags, "concurrency", "conc.go", "captures loop variable it")
	requireFinding(t, diags, "concurrency", "conc.go", "without ReadHeaderTimeout")
	if got := findingsIn(diags, "concurrency", "conc.go"); len(got) != 3 {
		t.Errorf("conc.go: want 3 concurrency findings "+
			"(Joined, ChannelJoined, and GuardedServer must pass), got %d:\n%s",
			len(got), formatDiags(got))
	}
}

func TestDimSafety(t *testing.T) {
	diags := fixtureDiags(t)
	requireFinding(t, diags, "dimsafety", "bv.go", "Xor combines the raw storage")
	requireFinding(t, diags, "dimsafety", "bv.go", "ScanRows combines the raw storage")
	if got := findingsIn(diags, "dimsafety", "bv.go"); len(got) != 2 {
		t.Errorf("bv.go: want 2 dimsafety findings "+
			"(And, Equal, Both, ScanRowsGuarded, ScanRowsInline must pass), got %d:\n%s",
			len(got), formatDiags(got))
	}
}

func TestSnapshotSafety(t *testing.T) {
	diags := fixtureDiags(t)
	requireFinding(t, diags, "snapshotsafety", "library.go", "storage .bkts")
	requireFinding(t, diags, "snapshotsafety", "library.go", "storage .arena")
	// RawBuckets and RawArena are the only findings: the accessor-using
	// functions pass, and Suppressed's access is suppressed with a reason.
	if got := findingsIn(diags, "snapshotsafety", "library.go"); len(got) != 2 {
		t.Errorf("library.go: want 2 snapshotsafety findings "+
			"(BucketCount, FirstRow, and Suppressed must pass), got %d:\n%s",
			len(got), formatDiags(got))
	}
	// The storage owner itself is exempt wholesale.
	if got := findingsIn(diags, "snapshotsafety", "segment.go"); len(got) != 0 {
		t.Errorf("segment.go must be exempt, got:\n%s", formatDiags(got))
	}
}

func TestDiagnosticsSortedAndFormatted(t *testing.T) {
	diags := fixtureDiags(t)
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Fatalf("diagnostics not sorted: %s before %s", a, b)
		}
	}
	s := diags[0].String()
	if !strings.Contains(s, ".go:") || !strings.Contains(s, ": [") {
		t.Fatalf("unexpected diagnostic format %q", s)
	}
}

func TestSelectiveRules(t *testing.T) {
	pkgs, err := fixture()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	only := Run(pkgs, []Analyzer{DimSafety{}})
	for _, d := range only {
		if d.Rule != "dimsafety" && d.Rule != "suppress" {
			t.Fatalf("rule subset leaked finding %s", d)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, mod, err := FindModuleRoot(filepath.Join("testdata", "src", "fake", "internal", "det"))
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	if mod != "fake" {
		t.Fatalf("module path = %q, want fake", mod)
	}
	if filepath.Base(root) != "fake" {
		t.Fatalf("root = %q, want .../fake", root)
	}
}
