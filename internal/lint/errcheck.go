package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Errcheck flags call statements that silently discard an error result.
// A dropped error in the build or serving path turns data corruption
// (short writes, failed closes on output files) into wrong search
// results with no trace.
//
// Only bare call statements are flagged:
//
//	f.Close()          // flagged: error silently dropped
//	_ = f.Close()      // allowed: explicit, reviewable discard
//	defer f.Close()    // allowed: the deferred-close idiom
//	go produce(ch)     // allowed: nothing to receive the error
//
// The fmt.Print/Fprint family and methods of strings.Builder and
// bytes.Buffer are exempt: the former's error is the terminal/report
// writer's (not actionable at the call site, and flagging it would bury
// real findings under hundreds of report lines), and the latter are
// documented never to fail.
//
// The check needs type information (to know a callee returns an error)
// and is skipped for packages that failed to type-check.
type Errcheck struct{}

// Name implements Analyzer.
func (Errcheck) Name() string { return "errcheck" }

// Doc implements Analyzer.
func (Errcheck) Doc() string { return "forbid silently discarded error return values" }

// Run implements Analyzer.
func (Errcheck) Run(pkg *Package) []Diagnostic {
	if !pkg.IsTypeOK() {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !returnsErrorValue(pkg, call) || isExemptCallee(pkg, call) {
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(call.Pos()),
				Rule: "errcheck",
				Message: "result of " + callName(call) +
					" is discarded; handle the error or assign it to _",
			})
			return true
		})
	}
	return diags
}

// returnsErrorValue reports whether the call produces at least one
// error-typed result.
func returnsErrorValue(pkg *Package, call *ast.CallExpr) bool {
	t := pkg.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

// isExemptCallee reports whether the callee is on the documented exempt
// list: fmt's print family and the never-failing buffer writers.
func isExemptCallee(pkg *Package, call *ast.CallExpr) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	fn, ok := pkg.ObjectOf(id).(*types.Func)
	if !ok {
		return false
	}
	full := fn.FullName()
	return strings.HasPrefix(full, "fmt.Print") ||
		strings.HasPrefix(full, "fmt.Fprint") ||
		strings.HasPrefix(full, "(*strings.Builder).") ||
		strings.HasPrefix(full, "(*bytes.Buffer).")
}

// callName renders the callee for the diagnostic message.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
