package lint

import (
	"go/ast"
	"strings"
)

// Purity keeps library code under internal/ quiet and recoverable:
// serving-path packages must neither write to the process's stdout nor
// kill the process. Printing belongs to main packages and test files;
// hot paths surface failures as errors so callers (the HTTP server, the
// batch engine) can degrade per-request instead of crashing the fleet.
//
// Flagged in non-main, non-test packages under internal/:
//   - fmt.Print / fmt.Printf / fmt.Println (unredirectable stdout)
//   - the print / println built-ins
//   - log.Fatal* and log.Panic* (os.Exit / panic in disguise)
//   - os.Exit
//   - panic inside a function that has an error result (return the
//     error instead), or panic whose argument is an error value
//
// Documented invariant guards — panics in functions with no error
// result, e.g. index-out-of-range checks in bitvec — follow the
// standard library's slice idiom and are allowed, as are Must* helpers.
type Purity struct{}

// Name implements Analyzer.
func (Purity) Name() string { return "purity" }

// Doc implements Analyzer.
func (Purity) Doc() string {
	return "forbid prints, exits, and error-path panics in internal library code"
}

// bannedCalls maps fully-qualified callees to the reason they are
// banned in library code.
var bannedCalls = map[string]string{
	"fmt.Print":   "writes to process stdout; return data or take an io.Writer",
	"fmt.Printf":  "writes to process stdout; return data or take an io.Writer",
	"fmt.Println": "writes to process stdout; return data or take an io.Writer",
	"log.Fatal":   "exits the process; return an error",
	"log.Fatalf":  "exits the process; return an error",
	"log.Fatalln": "exits the process; return an error",
	"log.Panic":   "panics across API boundaries; return an error",
	"log.Panicf":  "panics across API boundaries; return an error",
	"log.Panicln": "panics across API boundaries; return an error",
	"os.Exit":     "exits the process; return an error",
}

// Run implements Analyzer.
func (Purity) Run(pkg *Package) []Diagnostic {
	if pkg.Name == "main" || !strings.Contains(pkg.Path, "/internal/") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		walkFuncs(f, func(n ast.Node, fs *funcStack) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if d, ok := bannedDiag(pkg, call); ok {
				diags = append(diags, d)
				return true
			}
			if d, ok := panicDiag(pkg, call, fs); ok {
				diags = append(diags, d)
			}
			return true
		})
	}
	return diags
}

// bannedDiag flags calls to the banned stdout/exit functions and the
// print builtins.
func bannedDiag(pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	name := calleeName(pkg, call)
	if name == "" {
		if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "print" || id.Name == "println") {
			name = id.Name
			return Diagnostic{
				Pos:     pkg.Fset.Position(call.Pos()),
				Rule:    "purity",
				Message: name + " builtin is a debug print; remove it or take an io.Writer",
			}, true
		}
		return Diagnostic{}, false
	}
	reason, banned := bannedCalls[name]
	if !banned {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:     pkg.Fset.Position(call.Pos()),
		Rule:    "purity",
		Message: name + " in library code: " + reason,
	}, true
}

// panicDiag flags panics that should have been error returns.
func panicDiag(pkg *Package, call *ast.CallExpr, fs *funcStack) (Diagnostic, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" || len(call.Args) != 1 {
		return Diagnostic{}, false
	}
	if decl := fs.topDecl(); decl != nil && strings.HasPrefix(decl.Name.Name, "Must") {
		return Diagnostic{}, false
	}
	if returnsError(funcType(fs.top())) {
		return Diagnostic{
			Pos:  pkg.Fset.Position(call.Pos()),
			Rule: "purity",
			Message: "panic in a function with an error result; " +
				"return the error instead",
		}, true
	}
	if isErrorType(pkg.TypeOf(call.Args[0])) {
		return Diagnostic{
			Pos:  pkg.Fset.Position(call.Pos()),
			Rule: "purity",
			Message: "panicking with an error value; " +
				"propagate it through an error return",
		}, true
	}
	return Diagnostic{}, false
}
