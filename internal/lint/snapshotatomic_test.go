package lint

import "testing"

// TestSnapshotAtomicFindings pins the four finding kinds on the
// governed Box: unlocked publish, contract-breaking *Locked caller,
// reader write through a loaded snapshot, atomic-bearing copy, and the
// mixed plain/atomic field access.
func TestSnapshotAtomicFindings(t *testing.T) {
	diags := fixtureDiags(t)
	requireFinding(t, diags, "snapshotatomic", "pub.go",
		"snapshot field cur published without holding mu")
	requireFinding(t, diags, "snapshotatomic", "pub.go",
		"published from *Locked helper, but caller Leak does not hold mu")
	requireFinding(t, diags, "snapshotatomic", "pub.go",
		"write through a loaded snapshot (s)")
	requireFinding(t, diags, "snapshotatomic", "pub.go",
		"copies a value containing sync/atomic state")
	requireFinding(t, diags, "snapshotatomic", "pub.go",
		"field hits is accessed atomically elsewhere but plainly here")
}

// TestSnapshotAtomicExemptions asserts the silent cases stay silent:
// GoodPublish (lock held), Exchange (*Locked contract kept), GoodReader
// (read-only), and the ungoverned free struct must contribute nothing
// beyond the 5 pinned positives.
func TestSnapshotAtomicExemptions(t *testing.T) {
	diags := fixtureDiags(t)
	if got := findingsIn(diags, "snapshotatomic", "pub.go"); len(got) != 5 {
		t.Errorf("pub.go: want 5 snapshotatomic findings, got %d:\n%s",
			len(got), formatDiags(got))
	}
}
