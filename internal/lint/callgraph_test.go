package lint

import (
	"strings"
	"testing"
)

// fixtureGraph builds the call graph over the fixture module once per
// test (NewCallGraph is cheap at fixture scale and the assertions stay
// independent).
func fixtureGraph(t *testing.T) *CallGraph {
	t.Helper()
	pkgs, err := fixture()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return (&Program{Pkgs: pkgs}).Graph()
}

// mustNode resolves a node by fully qualified name.
func mustNode(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	n := g.NodeByName(name)
	if n == nil {
		t.Fatalf("NodeByName(%q) = nil", name)
	}
	return n
}

// siteTo returns the first call site in from whose callees include a
// node with the given name suffix, or nil.
func siteTo(from *FuncNode, suffix string) *CallSite {
	for i := range from.Calls {
		for _, c := range from.Calls[i].Callees {
			if strings.HasSuffix(c.Name(), suffix) {
				return &from.Calls[i]
			}
		}
	}
	return nil
}

func TestCallGraphDirectCall(t *testing.T) {
	g := fixtureGraph(t)
	probe := mustNode(t, g, "fake/internal/hot.Probe")
	site := siteTo(probe, "hot.fill")
	if site == nil {
		t.Fatal("Probe has no call site targeting fill")
	}
	if site.Kind != "direct" || len(site.Callees) != 1 {
		t.Fatalf("Probe→fill: kind=%q callees=%d, want direct/1", site.Kind, len(site.Callees))
	}
}

func TestCallGraphMethodCall(t *testing.T) {
	g := fixtureGraph(t)
	probe := mustNode(t, g, "fake/internal/hot.Probe")
	site := siteTo(probe, "cache).grow")
	if site == nil {
		t.Fatal("Probe has no call site targeting (*cache).grow")
	}
	if site.Kind != "direct" {
		t.Fatalf("Probe→grow: kind=%q, want direct (concrete method)", site.Kind)
	}
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g := fixtureGraph(t)
	all := mustNode(t, g, "fake/internal/hot.ScoreAll")
	site := siteTo(all, ".Score")
	if site == nil {
		t.Fatal("ScoreAll has no dispatch site for Score")
	}
	if site.Kind != "interface" {
		t.Fatalf("ScoreAll→Score: kind=%q, want interface", site.Kind)
	}
	var names []string
	for _, c := range site.Callees {
		names = append(names, c.Name())
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "Fancy).Score") || !strings.Contains(joined, "Plain).Score") {
		t.Fatalf("interface dispatch must fan out to Fancy and Plain, got %v", names)
	}
}

func TestCallGraphFunctionValue(t *testing.T) {
	g := fixtureGraph(t)
	disp := mustNode(t, g, "fake/internal/hot.Dispatch")
	site := siteTo(disp, "hot.leaky")
	if site == nil {
		t.Fatal("Dispatch has no indirect site reaching leaky")
	}
	if site.Kind != "indirect" {
		t.Fatalf("Dispatch→leaky: kind=%q, want indirect (address-taken universe)", site.Kind)
	}
}

func TestCallGraphReachableAndChain(t *testing.T) {
	g := fixtureGraph(t)
	probe := mustNode(t, g, "fake/internal/hot.Probe")
	fill := mustNode(t, g, "fake/internal/hot.fill")
	unreach := mustNode(t, g, "fake/internal/hot.Unreachable")

	pred := g.Reachable([]*FuncNode{probe}, nil)
	if _, ok := pred[fill]; !ok {
		t.Fatal("fill must be reachable from Probe")
	}
	if _, ok := pred[unreach]; ok {
		t.Fatal("Unreachable must not be reachable from Probe")
	}
	if got := Chain(pred, fill); got != "Probe → fill" {
		t.Fatalf("Chain = %q, want %q", got, "Probe → fill")
	}

	// Excluded nodes are reachable but act as walk boundaries.
	warm := mustNode(t, g, "fake/internal/hot.Warm")
	initN := mustNode(t, g, "(*fake/internal/hot.cache).init")
	pred = g.Reachable([]*FuncNode{warm}, func(n *FuncNode) bool { return n == initN })
	if _, ok := pred[initN]; !ok {
		t.Fatal("excluded init must still be reported reachable")
	}
}

func TestCallGraphCallers(t *testing.T) {
	g := fixtureGraph(t)
	fill := mustNode(t, g, "fake/internal/hot.fill")
	callers := g.Callers(fill.Fn)
	if len(callers) != 1 || callers[0].Fn.Name() != "Probe" {
		t.Fatalf("Callers(fill) = %v, want [Probe]", callers)
	}
}
