package lint

import "testing"

// TestHotpathFindings pins every allocation kind the rule reports, each
// reached through a different call-graph edge or site shape, with the
// root→site chain rendered into the message.
func TestHotpathFindings(t *testing.T) {
	diags := fixtureDiags(t)

	// Direct call chain: Probe → fill.
	requireFinding(t, diags, "hotpath", "hot.go", "make: make allocates (hot path: Probe → fill)")
	// Method call chain: Probe → grow.
	requireFinding(t, diags, "hotpath", "hot.go", "append outside the self-assign form")
	// Interface dispatch: ScoreAll → Fancy.Score.
	requireFinding(t, diags, "hotpath", "hot.go", "fmt: call into package fmt allocates")
	// Function-value dispatch: Dispatch → leaky.
	requireFinding(t, diags, "hotpath", "hot.go", "composite: &composite-literal escapes to the heap (hot path: Dispatch → leaky)")
	// Site shapes in root bodies.
	requireFinding(t, diags, "hotpath", "hot.go", "string += concatenation")
	requireFinding(t, diags, "hotpath", "hot.go", "mapiter: map iteration on a hot path")
	requireFinding(t, diags, "hotpath", "hot.go", "deferloop: defer inside a loop")
	requireFinding(t, diags, "hotpath", "hot.go", "iface: conversion to interface type boxes")
	requireFinding(t, diags, "hotpath", "hot.go", "new: new allocates")
	requireFinding(t, diags, "hotpath", "hot.go", "closure: func literal captures enclosing locals")
}

// TestHotpathAnnotationGrammar pins the directive errors: a reasonless
// coldstart, an unknown verb, and a coldstart no root reaches.
func TestHotpathAnnotationGrammar(t *testing.T) {
	diags := fixtureDiags(t)
	requireFinding(t, diags, "hotpath", "hot.go", "//biohd:coldstart needs a reason")
	requireFinding(t, diags, "hotpath", "hot.go", "unknown directive //biohd:frozen")
	requireFinding(t, diags, "hotpath", "hot.go", "stale //biohd:coldstart: StaleCold is not reachable")
}

// TestHotpathExemptions asserts the silent cases stay silent by pinning
// the exact finding count: SelfAppend (amortized append), Probe's
// error-guard make, the annotated coldstart boundary, the unreachable
// allocator, the value struct literal, and Quiet's live suppression
// must contribute nothing beyond the 13 pinned positives.
func TestHotpathExemptions(t *testing.T) {
	diags := fixtureDiags(t)
	got := findingsIn(diags, "hotpath", "hot.go")
	if len(got) != 13 {
		t.Errorf("hot.go: want 13 hotpath findings (10 kinds + 3 grammar errors), got %d:\n%s",
			len(got), formatDiags(got))
	}
	// The live suppression in Quiet is used; only Stale's is stale.
	requireFinding(t, diags, "suppress", "hot.go", "stale suppression: no [hotpath] finding")
	if got := findingsIn(diags, "suppress", "hot.go"); len(got) != 1 {
		t.Errorf("hot.go: want exactly 1 stale-suppression finding, got %d:\n%s",
			len(got), formatDiags(got))
	}
}
