package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath proves allocation-freedom for the steady-state probe path.
// Functions annotated //biohd:hotpath root a walk over the static call
// graph; every function reachable from a root is scanned for allocation
// sites, and each site is reported with the call chain that reaches it.
// The dynamic alloc tests (TestLookupAllocs etc.) pin a handful of
// paths; this rule pins all of them, including paths no test drives.
//
// The walk stops at functions annotated //biohd:coldstart <reason> —
// reviewed cold-start boundaries such as pool-miss construction, where
// allocation is the point. A coldstart annotation that is not reachable
// from any root is stale and reported, as is a malformed directive.
//
// Allocation kinds reported (each names the kind so suppressions and
// baselines stay precise):
//
//	make       make() of any kind
//	new        new()
//	append     append that is not the self-assign form x = append(x, …)
//	           (self-append into a pre-sized buffer is the amortized
//	           zero-alloc idiom; anything else grows a fresh backing)
//	composite  &T{…}, or a slice/map literal (value struct literals
//	           stay on the stack and are fine)
//	closure    a func literal capturing enclosing locals
//	iface      explicit conversion to an interface type (boxing)
//	fmt        any call into package fmt
//	string     string concatenation or string↔[]byte/[]rune conversion
//	deferloop  defer inside a loop (one deferred record per iteration)
//	mapiter    ranging over a map (hash-iteration work + random order)
//
// Error guards are exempt: a site inside an if-block whose last
// statement panics or returns a non-nil error is validation, not
// steady state.
type Hotpath struct{}

// Name implements Analyzer.
func (Hotpath) Name() string { return "hotpath" }

// Doc implements Analyzer.
func (Hotpath) Doc() string {
	return "functions reachable from //biohd:hotpath roots must not allocate"
}

// RunProgram implements WholeProgramAnalyzer.
func (Hotpath) RunProgram(prog *Program) []Diagnostic {
	g := prog.Graph()
	var diags []Diagnostic
	var roots []*FuncNode
	cold := map[*FuncNode]token.Pos{}
	for _, n := range g.Nodes() {
		for _, a := range n.Anns {
			switch a.Verb {
			case "hotpath":
				roots = append(roots, n)
			case "coldstart":
				if a.Arg == "" {
					diags = append(diags, posDiag(n.Pkg, a.Pos, "hotpath",
						"//biohd:coldstart needs a reason: //biohd:coldstart <reason>"))
					continue
				}
				cold[n] = a.Pos
			default:
				diags = append(diags, posDiag(n.Pkg, a.Pos, "hotpath",
					"unknown directive //biohd:"+a.Verb+" (want hotpath or coldstart)"))
			}
		}
	}
	isCold := func(n *FuncNode) bool { _, ok := cold[n]; return ok }
	pred := g.Reachable(roots, isCold)
	for _, n := range g.Nodes() {
		pos, ok := cold[n]
		if !ok {
			continue
		}
		if _, reached := pred[n]; !reached {
			diags = append(diags, posDiag(n.Pkg, pos, "hotpath",
				"stale //biohd:coldstart: "+n.Fn.Name()+
					" is not reachable from any //biohd:hotpath root; delete the annotation"))
		}
	}
	for _, n := range g.Nodes() {
		if _, reached := pred[n]; !reached || isCold(n) || n.Decl.Body == nil {
			continue
		}
		s := &hotScan{
			pkg:        n.Pkg,
			chain:      Chain(pred, n),
			selfAppend: map[*ast.CallExpr]bool{},
			handledLit: map[*ast.CompositeLit]bool{},
		}
		s.scan(n.Decl.Body)
		diags = append(diags, s.diags...)
	}
	return diags
}

func posDiag(pkg *Package, pos token.Pos, rule, msg string) Diagnostic {
	return Diagnostic{Pos: pkg.Fset.Position(pos), Rule: rule, Message: msg}
}

// posRange is a half-open source interval used to mark cold blocks and
// loop bodies.
type posRange struct{ lo, hi token.Pos }

func contains(rs []posRange, p token.Pos) bool {
	for _, r := range rs {
		if r.lo <= p && p < r.hi {
			return true
		}
	}
	return false
}

// hotScan finds allocation sites in one reachable function body.
type hotScan struct {
	pkg        *Package
	chain      string
	selfAppend map[*ast.CallExpr]bool
	handledLit map[*ast.CompositeLit]bool
	coldRanges []posRange
	loopRanges []posRange
	litRanges  []posRange
	diags      []Diagnostic
}

// deferInLoop reports whether a defer at pos runs once per iteration of
// an enclosing loop: the innermost enclosing loop-or-funclit construct
// must be a loop (a func literal in between makes the defer per-call of
// that literal, not per-iteration).
func (s *hotScan) deferInLoop(pos token.Pos) bool {
	var innermost posRange
	isLoop := false
	consider := func(r posRange, loop bool) {
		if r.lo <= pos && pos < r.hi && r.lo >= innermost.lo {
			innermost, isLoop = r, loop
		}
	}
	for _, r := range s.loopRanges {
		consider(r, true)
	}
	for _, r := range s.litRanges {
		consider(r, false)
	}
	return isLoop
}

func (s *hotScan) report(pos token.Pos, kind, detail string) {
	if contains(s.coldRanges, pos) {
		return
	}
	s.diags = append(s.diags, Diagnostic{
		Pos:     s.pkg.Fset.Position(pos),
		Rule:    "hotpath",
		Message: kind + ": " + detail + " (hot path: " + s.chain + ")",
	})
}

func (s *hotScan) scan(body *ast.BlockStmt) {
	// Pass 1: index cold error-guard blocks and loop bodies so pass 2
	// can classify any position by containment.
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.IfStmt:
			if s.isColdBlock(st.Body) {
				s.coldRanges = append(s.coldRanges, posRange{st.Body.Pos(), st.Body.End()})
			}
			if eb, ok := st.Else.(*ast.BlockStmt); ok && s.isColdBlock(eb) {
				s.coldRanges = append(s.coldRanges, posRange{eb.Pos(), eb.End()})
			}
		case *ast.ForStmt:
			s.loopRanges = append(s.loopRanges, posRange{st.Body.Pos(), st.Body.End()})
		case *ast.RangeStmt:
			s.loopRanges = append(s.loopRanges, posRange{st.Body.Pos(), st.Body.End()})
		case *ast.FuncLit:
			s.litRanges = append(s.litRanges, posRange{st.Body.Pos(), st.Body.End()})
		}
		return true
	})
	// Pass 2: allocation sites. Pre-order traversal guarantees parents
	// (assignments, &-of-literal) are seen before the children they
	// contextualize.
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			s.markSelfAppends(x)
			if x.Tok == token.ADD_ASSIGN && len(x.Lhs) == 1 && s.isString(x.Lhs[0]) {
				s.report(x.TokPos, "string", "string += concatenation allocates")
			}
		case *ast.CallExpr:
			s.checkCall(x)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					s.handledLit[lit] = true
					s.report(x.Pos(), "composite", "&composite-literal escapes to the heap")
				}
			}
		case *ast.CompositeLit:
			if s.handledLit[x] {
				return true
			}
			switch s.typeOf(x).(type) {
			case *types.Slice:
				s.report(x.Pos(), "composite", "slice literal allocates its backing array")
			case *types.Map:
				s.report(x.Pos(), "composite", "map literal allocates")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && s.isString(x) && !s.isConst(x) {
				s.report(x.OpPos, "string", "string concatenation allocates")
			}
		case *ast.FuncLit:
			if s.captures(x) {
				s.report(x.Pos(), "closure", "func literal captures enclosing locals (closure allocation)")
			}
		case *ast.DeferStmt:
			if s.deferInLoop(x.Pos()) {
				s.report(x.Pos(), "deferloop", "defer inside a loop allocates a record per iteration")
			}
		case *ast.RangeStmt:
			if _, ok := s.typeOf(x.X).(*types.Map); ok {
				s.report(x.Range, "mapiter", "map iteration on a hot path (hash-order walk)")
			}
		}
		return true
	})
}

// checkCall classifies builtin allocations, allocating conversions, and
// calls into package fmt.
func (s *hotScan) checkCall(call *ast.CallExpr) {
	// Conversion T(x)?
	if tv, ok := s.pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		s.checkConversion(call)
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.pkg.ObjectOf(id).(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				s.report(call.Pos(), "make", "make allocates")
			case "new":
				s.report(call.Pos(), "new", "new allocates")
			case "append":
				if !s.selfAppend[call] {
					s.report(call.Pos(), "append",
						"append outside the self-assign form x = append(x, …) grows a fresh backing array")
				}
			}
			return
		}
	}
	if name := calleeName(s.pkg, call); len(name) > 4 && name[:4] == "fmt." {
		s.report(call.Pos(), "fmt", "call into package fmt allocates (formatting state and boxed arguments)")
	}
}

func (s *hotScan) checkConversion(call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	dst := s.typeOf(call)
	src := s.typeOf(call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if _, ok := dst.Underlying().(*types.Interface); ok {
		if _, isIface := src.Underlying().(*types.Interface); !isIface {
			s.report(call.Pos(), "iface", "conversion to interface type boxes the value")
		}
		return
	}
	if (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src)) {
		s.report(call.Pos(), "string", "string↔slice conversion copies the contents")
	}
}

// markSelfAppends records append calls in the amortized self-assign
// form x = append(x, …), which the append kind exempts.
func (s *hotScan) markSelfAppends(st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, rhs := range st.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if types.ExprString(st.Lhs[i]) == types.ExprString(call.Args[0]) {
			s.selfAppend[call] = true
		}
	}
}

// captures reports whether lit references a variable declared outside
// the literal but inside some enclosing function — i.e. the literal is
// a closure over locals and must be heap-allocated. References to
// package-level declarations do not count (their closures are static).
func (s *hotScan) captures(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		v, ok := s.pkg.ObjectOf(id).(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable
		}
		if p := v.Pos(); p != token.NoPos && (p < lit.Pos() || p > lit.End()) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isColdBlock reports whether the block is an error guard: its last
// statement panics or returns a non-nil error.
func (s *hotScan) isColdBlock(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.ReturnStmt:
		for _, r := range last.Results {
			if id, ok := ast.Unparen(r).(*ast.Ident); ok && id.Name == "nil" {
				continue
			}
			if isErrorType(s.typeOf(r)) {
				return true
			}
		}
	}
	return false
}

func (s *hotScan) typeOf(e ast.Expr) types.Type { return s.pkg.TypeOf(e) }

func (s *hotScan) isString(e ast.Expr) bool { return isStringType(s.typeOf(e)) }

func (s *hotScan) isConst(e ast.Expr) bool {
	tv, ok := s.pkg.Info.Types[e]
	return ok && tv.Value != nil
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
