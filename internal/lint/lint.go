// Package lint is biohdlint's analysis engine: a dependency-free
// static-analysis framework built on the standard library's go/ast,
// go/parser and go/types. It loads every package in the module and runs
// a set of repo-specific analyzers that guard the invariants BioHD's
// reproduction claims depend on:
//
//	determinism  no math/rand or map-iteration-order-dependent
//	             accumulation outside internal/rng and tests
//	purity       no prints/exits in library code; error paths return
//	             errors instead of panicking
//	errcheck     no silently discarded error return values
//	concurrency  goroutines join in the function that launches them and
//	             do not capture loop variables by reference
//	dimsafety    bitvec/hdc binary kernels guard operand lengths before
//	             touching raw storage
//	snapshotsafety  internal/core touches raw segment storage only in
//	             segment.go and snapshot.go, so published snapshots are
//	             provably immutable
//
// A diagnostic can be suppressed with a comment on the offending line
// or the line directly above it:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Package is one loaded, type-checked package presented to analyzers.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Name is the package name ("core", "main").
	Name string
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Fset positions all files of the module.
	Fset *token.FileSet
	// Types is the checked package; nil when type checking failed.
	Types *types.Package
	// Info holds type information for the files. Its maps are always
	// non-nil but may be incomplete when TypeErr is set.
	Info *types.Info
	// TypeErr records the first type-checking error, if any. Analyzers
	// must degrade to syntactic checks when set.
	TypeErr error
}

// IsTypeOK reports whether full type information is available.
func (p *Package) IsTypeOK() bool { return p.TypeErr == nil && p.Types != nil }

// TypeOf returns the type of e, or nil when unknown.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Package) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// An Analyzer inspects one package and reports diagnostics.
type Analyzer interface {
	// Name is the rule identifier used in output and suppressions.
	Name() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
	// Run analyzes pkg and returns its findings.
	Run(pkg *Package) []Diagnostic
}

// All returns the full analyzer set in reporting order.
func All() []Analyzer {
	return []Analyzer{
		Determinism{},
		Purity{},
		Errcheck{},
		Concurrency{},
		DimSafety{},
		SnapshotSafety{},
	}
}

// Run applies every analyzer to every package, filters suppressed
// findings, and returns the survivors sorted by position. Malformed
// suppressions (no rule, or no reason) are reported under the
// "suppress" pseudo-rule.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup, bad := collectSuppressions(pkg)
		out = append(out, bad...)
		for _, a := range analyzers {
			for _, d := range a.Run(pkg) {
				if !sup.matches(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "lint:ignore"

// suppressionKey identifies the lines a suppression covers for a rule.
type suppressionKey struct {
	file string
	line int
	rule string
}

type suppressions map[suppressionKey]bool

// matches reports whether d is covered by a suppression on its own line
// or the line directly above it.
func (s suppressions) matches(d Diagnostic) bool {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		if s[suppressionKey{d.Pos.Filename, line, d.Rule}] {
			return true
		}
	}
	return false
}

// collectSuppressions scans every comment in the package for
// "//lint:ignore rule reason" markers. Markers missing the rule or the
// reason are returned as diagnostics instead of being honored.
func collectSuppressions(pkg *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "suppress",
						Message: "malformed suppression: want " +
							"//lint:ignore <rule> <reason>",
					})
					continue
				}
				sup[suppressionKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return sup, bad
}

// --- shared AST helpers used by several analyzers ---

// calleeName resolves a call expression to "pkg.Func" for package-level
// functions of an imported package (e.g. "fmt.Println", "os.Exit"),
// using type information when available and import-name syntax
// otherwise. It returns "" for anything else (methods, locals).
func calleeName(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj := pkg.ObjectOf(id); obj != nil {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return ""
		}
		return pn.Imported().Path() + "." + sel.Sel.Name
	}
	// Syntactic fallback: resolve id against the file's imports.
	return id.Name + "." + sel.Sel.Name
}

// enclosingFuncs pairs each node of interest with its nearest enclosing
// function (declaration or literal) by a single walk.
type funcStack struct {
	stack []ast.Node // *ast.FuncDecl or *ast.FuncLit
}

func (fs *funcStack) push(n ast.Node) { fs.stack = append(fs.stack, n) }
func (fs *funcStack) pop()            { fs.stack = fs.stack[:len(fs.stack)-1] }

// top returns the innermost enclosing function node, or nil.
func (fs *funcStack) top() ast.Node {
	if len(fs.stack) == 0 {
		return nil
	}
	return fs.stack[len(fs.stack)-1]
}

// topDecl returns the outermost enclosing declaration, or nil.
func (fs *funcStack) topDecl() *ast.FuncDecl {
	if len(fs.stack) == 0 {
		return nil
	}
	d, _ := fs.stack[0].(*ast.FuncDecl)
	return d
}

// funcType returns the signature syntax of a function node.
func funcType(n ast.Node) *ast.FuncType {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}

// walkFuncs traverses f, calling visit for every node with the current
// function stack maintained.
func walkFuncs(f *ast.File, visit func(n ast.Node, fs *funcStack) bool) {
	fs := &funcStack{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if !visit(n, fs) {
				return false
			}
			fs.push(n)
			defer fs.pop()
			// Inspect children within the pushed frame.
			for _, c := range childrenOf(n) {
				ast.Inspect(c, walk)
			}
			return false
		default:
			return visit(n, fs)
		}
	}
	ast.Inspect(f, walk)
}

// childrenOf lists the walkable children of a function node.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	switch fn := n.(type) {
	case *ast.FuncDecl:
		if fn.Body != nil {
			out = append(out, fn.Body)
		}
	case *ast.FuncLit:
		if fn.Body != nil {
			out = append(out, fn.Body)
		}
	}
	return out
}

// returnsError reports whether the function signature includes an error
// result (syntactically: a result whose type is the identifier "error").
func returnsError(ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, r := range ft.Results.List {
		if id, ok := r.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

// declaredOutside reports whether the object bound to id was declared
// outside the [from, to] source interval (i.e. it is free with respect
// to that region). Falls back to false when resolution fails.
func declaredOutside(pkg *Package, id *ast.Ident, from, to token.Pos) bool {
	obj := pkg.ObjectOf(id)
	if obj == nil {
		return false
	}
	p := obj.Pos()
	return p != token.NoPos && (p < from || p > to)
}
