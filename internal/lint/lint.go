// Package lint is biohdlint's analysis engine: a dependency-free
// static-analysis framework built on the standard library's go/ast,
// go/parser and go/types. It loads every package in the module and runs
// a set of repo-specific analyzers that guard the invariants BioHD's
// reproduction claims depend on:
//
//	determinism  no math/rand or map-iteration-order-dependent
//	             accumulation outside internal/rng and tests
//	purity       no prints/exits in library code; error paths return
//	             errors instead of panicking
//	errcheck     no silently discarded error return values
//	concurrency  goroutines join in the function that launches them and
//	             do not capture loop variables by reference
//	dimsafety    bitvec/hdc binary kernels guard operand lengths before
//	             touching raw storage
//	snapshotsafety  internal/core touches raw segment storage only in
//	             segment.go and snapshot.go, so published snapshots are
//	             provably immutable
//
// On top of the per-package rules, a static call graph over the whole
// module (see callgraph.go) powers two whole-program analyzers:
//
//	hotpath      functions annotated //biohd:hotpath must not reach an
//	             allocation site — the steady-state probe path is
//	             provably allocation-free, not just alloc-tested
//	snapshotatomic  snapshot atomic.Pointer fields are published only
//	             under the owner's mutex, readers never write snapshot
//	             state, and atomic values are never copied or mixed
//	             with plain access
//
// A diagnostic can be suppressed with a comment on the offending line
// or the line directly above it:
//
//	//lint:ignore <rule> <reason>
//
// The reason is mandatory; a suppression without one is itself
// reported, and so is a stale suppression — one that no longer matches
// any finding of an analyzer that ran.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, formatted as "file:line: [rule] message".
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the diagnostic in the canonical file:line form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Message)
}

// Package is one loaded, type-checked package presented to analyzers.
type Package struct {
	// Path is the import path ("repro/internal/core").
	Path string
	// Name is the package name ("core", "main").
	Name string
	// Files are the parsed non-test sources, in filename order.
	Files []*ast.File
	// Fset positions all files of the module.
	Fset *token.FileSet
	// Types is the checked package; nil when type checking failed.
	Types *types.Package
	// Info holds type information for the files. Its maps are always
	// non-nil but may be incomplete when TypeErr is set.
	Info *types.Info
	// TypeErr records the first type-checking error, if any. Analyzers
	// must degrade to syntactic checks when set.
	TypeErr error
}

// IsTypeOK reports whether full type information is available.
func (p *Package) IsTypeOK() bool { return p.TypeErr == nil && p.Types != nil }

// TypeOf returns the type of e, or nil when unknown.
func (p *Package) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object, or nil.
func (p *Package) ObjectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// An Analyzer is one named rule. Concrete analyzers implement either
// PackageAnalyzer (independent per-package checks) or
// WholeProgramAnalyzer (checks needing the cross-package call graph).
type Analyzer interface {
	// Name is the rule identifier used in output and suppressions.
	Name() string
	// Doc is a one-line description of what the rule enforces.
	Doc() string
}

// A PackageAnalyzer inspects one package at a time.
type PackageAnalyzer interface {
	Analyzer
	// Run analyzes pkg and returns its findings.
	Run(pkg *Package) []Diagnostic
}

// A WholeProgramAnalyzer inspects the loaded program as a unit, with
// the call graph available.
type WholeProgramAnalyzer interface {
	Analyzer
	// RunProgram analyzes the whole program and returns its findings.
	RunProgram(prog *Program) []Diagnostic
}

// Program is the loaded module presented to whole-program analyzers.
type Program struct {
	// Pkgs are the loaded packages in path order.
	Pkgs []*Package

	graph *CallGraph
}

// Graph returns the program's call graph, resolving it on first use.
func (p *Program) Graph() *CallGraph {
	if p.graph == nil {
		p.graph = NewCallGraph(p.Pkgs)
	}
	return p.graph
}

// All returns the full analyzer set in reporting order.
func All() []Analyzer {
	return []Analyzer{
		Determinism{},
		Purity{},
		Errcheck{},
		Concurrency{},
		DimSafety{},
		SnapshotSafety{},
		Hotpath{},
		SnapshotAtomic{},
	}
}

// Run applies every analyzer — package analyzers to every package,
// whole-program analyzers to the program once — filters suppressed
// findings, and returns the survivors sorted by position. Malformed
// suppressions (no rule, or no reason) are reported under the
// "suppress" pseudo-rule, and so are stale suppressions: ones naming a
// rule that ran but matching none of its findings.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	sup := suppressions{}
	var out []Diagnostic
	for _, pkg := range pkgs {
		bad := collectSuppressions(pkg, sup)
		out = append(out, bad...)
	}
	var raw []Diagnostic
	for _, a := range analyzers {
		if pa, ok := a.(PackageAnalyzer); ok {
			for _, pkg := range pkgs {
				raw = append(raw, pa.Run(pkg)...)
			}
		}
	}
	prog := &Program{Pkgs: pkgs}
	for _, a := range analyzers {
		if wa, ok := a.(WholeProgramAnalyzer); ok {
			raw = append(raw, wa.RunProgram(prog)...)
		}
	}
	used := map[suppressionKey]bool{}
	for _, d := range raw {
		if k, ok := sup.match(d); ok {
			used[k] = true
			continue
		}
		out = append(out, d)
	}
	// A suppression for a rule that ran but matched nothing is dead
	// weight that silently masks future findings at that line.
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name()] = true
	}
	for k := range sup {
		if ran[k.rule] && !used[k] {
			out = append(out, Diagnostic{
				Pos:  token.Position{Filename: k.file, Line: k.line},
				Rule: "suppress",
				Message: "stale suppression: no [" + k.rule + "] finding on this " +
					"or the next line; delete it",
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// ignorePrefix introduces a suppression comment.
const ignorePrefix = "lint:ignore"

// suppressionKey identifies the lines a suppression covers for a rule.
type suppressionKey struct {
	file string
	line int
	rule string
}

type suppressions map[suppressionKey]bool

// match returns the suppression key covering d — on its own line or the
// line directly above it — and whether one exists.
func (s suppressions) match(d Diagnostic) (suppressionKey, bool) {
	for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
		k := suppressionKey{d.Pos.Filename, line, d.Rule}
		if s[k] {
			return k, true
		}
	}
	return suppressionKey{}, false
}

// collectSuppressions scans every comment in the package for
// "//lint:ignore rule reason" markers, adding them to sup. Markers
// missing the rule or the reason are returned as diagnostics instead of
// being honored.
func collectSuppressions(pkg *Package, sup suppressions) []Diagnostic {
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(text, ignorePrefix))
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:  pos,
						Rule: "suppress",
						Message: "malformed suppression: want " +
							"//lint:ignore <rule> <reason>",
					})
					continue
				}
				sup[suppressionKey{pos.Filename, pos.Line, fields[0]}] = true
			}
		}
	}
	return bad
}

// --- //biohd: annotations ---

// annPrefix introduces a biohd directive comment on a declaration.
const annPrefix = "//biohd:"

// Annotation is one //biohd:<verb> [args] directive parsed from a
// function's doc comment. The hotpath analyzer defines the verbs:
//
//	//biohd:hotpath            the function roots a hot-path walk
//	//biohd:coldstart <reason> the walk stops here (reviewed cold-start
//	                           boundary: pool-miss construction, result
//	                           assembly); the reason is mandatory
type Annotation struct {
	// Verb is the word after "//biohd:".
	Verb string
	// Arg is the rest of the line, trimmed (the reason for coldstart).
	Arg string
	// Pos locates the directive comment.
	Pos token.Pos
}

// parseAnnotations extracts //biohd: directives from a doc comment.
// Directive comments are exact-prefix (no space after //), matching
// go:build convention.
func parseAnnotations(doc *ast.CommentGroup) []Annotation {
	if doc == nil {
		return nil
	}
	var anns []Annotation
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, annPrefix)
		if !ok {
			continue
		}
		verb, arg, _ := strings.Cut(rest, " ")
		anns = append(anns, Annotation{
			Verb: strings.TrimSpace(verb),
			Arg:  strings.TrimSpace(arg),
			Pos:  c.Pos(),
		})
	}
	return anns
}

// --- shared AST helpers used by several analyzers ---

// calleeName resolves a call expression to "pkg.Func" for package-level
// functions of an imported package (e.g. "fmt.Println", "os.Exit"),
// using type information when available and import-name syntax
// otherwise. It returns "" for anything else (methods, locals).
func calleeName(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj := pkg.ObjectOf(id); obj != nil {
		pn, ok := obj.(*types.PkgName)
		if !ok {
			return ""
		}
		return pn.Imported().Path() + "." + sel.Sel.Name
	}
	// Syntactic fallback: resolve id against the file's imports.
	return id.Name + "." + sel.Sel.Name
}

// enclosingFuncs pairs each node of interest with its nearest enclosing
// function (declaration or literal) by a single walk.
type funcStack struct {
	stack []ast.Node // *ast.FuncDecl or *ast.FuncLit
}

func (fs *funcStack) push(n ast.Node) { fs.stack = append(fs.stack, n) }
func (fs *funcStack) pop()            { fs.stack = fs.stack[:len(fs.stack)-1] }

// top returns the innermost enclosing function node, or nil.
func (fs *funcStack) top() ast.Node {
	if len(fs.stack) == 0 {
		return nil
	}
	return fs.stack[len(fs.stack)-1]
}

// topDecl returns the outermost enclosing declaration, or nil.
func (fs *funcStack) topDecl() *ast.FuncDecl {
	if len(fs.stack) == 0 {
		return nil
	}
	d, _ := fs.stack[0].(*ast.FuncDecl)
	return d
}

// funcType returns the signature syntax of a function node.
func funcType(n ast.Node) *ast.FuncType {
	switch fn := n.(type) {
	case *ast.FuncDecl:
		return fn.Type
	case *ast.FuncLit:
		return fn.Type
	}
	return nil
}

// walkFuncs traverses f, calling visit for every node with the current
// function stack maintained.
func walkFuncs(f *ast.File, visit func(n ast.Node, fs *funcStack) bool) {
	fs := &funcStack{}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if !visit(n, fs) {
				return false
			}
			fs.push(n)
			defer fs.pop()
			// Inspect children within the pushed frame.
			for _, c := range childrenOf(n) {
				ast.Inspect(c, walk)
			}
			return false
		default:
			return visit(n, fs)
		}
	}
	ast.Inspect(f, walk)
}

// childrenOf lists the walkable children of a function node.
func childrenOf(n ast.Node) []ast.Node {
	var out []ast.Node
	switch fn := n.(type) {
	case *ast.FuncDecl:
		if fn.Body != nil {
			out = append(out, fn.Body)
		}
	case *ast.FuncLit:
		if fn.Body != nil {
			out = append(out, fn.Body)
		}
	}
	return out
}

// returnsError reports whether the function signature includes an error
// result (syntactically: a result whose type is the identifier "error").
func returnsError(ft *ast.FuncType) bool {
	if ft == nil || ft.Results == nil {
		return false
	}
	for _, r := range ft.Results.List {
		if id, ok := r.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}

// declaredOutside reports whether the object bound to id was declared
// outside the [from, to] source interval (i.e. it is free with respect
// to that region). Falls back to false when resolution fails.
func declaredOutside(pkg *Package, id *ast.Ident, from, to token.Pos) bool {
	obj := pkg.ObjectOf(id)
	if obj == nil {
		return false
	}
	p := obj.Pos()
	return p != token.NoPos && (p < from || p > to)
}
