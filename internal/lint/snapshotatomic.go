package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SnapshotAtomic proves the snapshot-publication discipline that the
// reader/writer split in internal/core depends on. A struct that pairs
// an atomic snapshot pointer (atomic.Pointer[T] or atomic.Value) with a
// sync.Mutex/RWMutex declares, by that shape, the BioHD publication
// protocol: writers mutate under the mutex and publish with Store,
// readers Load the pointer lock-free and treat everything reachable
// from it as immutable. The rule checks four ways the protocol breaks:
//
//	publish  Store/Swap/CompareAndSwap on a governed field must happen
//	         in a function that locks the owning mutex, or in a helper
//	         whose name ends in "Locked" and whose every caller (proved
//	         over the call graph) holds the lock
//	reader   a function that Loads a governed field must not write
//	         through the loaded value
//	copy     values containing sync/atomic state (or mutexes) must not
//	         be copied — a copy forks the atomic's identity
//	mixed    a field accessed through the sync/atomic functions
//	         (atomic.AddInt64(&x.f, …)) must not also be read or
//	         written with plain loads and stores
//
// Structs whose only synchronization is typed atomics (no mutex — e.g.
// a counters block of atomic.Int64s) are not governed: they have no
// writer-side critical section to protect.
type SnapshotAtomic struct{}

// Name implements Analyzer.
func (SnapshotAtomic) Name() string { return "snapshotatomic" }

// Doc implements Analyzer.
func (SnapshotAtomic) Doc() string {
	return "snapshot atomic.Pointers are published only under the owner's mutex, readers never write through them, and atomics are neither copied nor mixed with plain access"
}

// RunProgram implements WholeProgramAnalyzer.
func (SnapshotAtomic) RunProgram(prog *Program) []Diagnostic {
	g := prog.Graph()
	a := &atomicCheck{
		g:       g,
		mutexOf: map[*types.Var]*types.Var{},
		locks:   map[*FuncNode]map[*types.Var]bool{},
	}
	a.collectGoverned(prog.Pkgs)
	for _, n := range g.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		a.checkPublishes(n)
		a.checkReaderWrites(n)
		a.checkCopies(n)
	}
	a.checkMixedAccess(prog.Pkgs)
	return a.diags
}

type atomicCheck struct {
	g *CallGraph
	// mutexOf maps a governed atomic field to the mutex field of the
	// struct that owns both.
	mutexOf map[*types.Var]*types.Var
	// locks memoizes, per function, which mutex fields its body locks.
	locks map[*FuncNode]map[*types.Var]bool
	diags []Diagnostic
}

// collectGoverned indexes every struct pairing an atomic snapshot field
// with a mutex.
func (a *atomicCheck) collectGoverned(pkgs []*Package) {
	for _, pkg := range pkgs {
		if !pkg.IsTypeOK() {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			var mu *types.Var
			var atomics []*types.Var
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if namedIn(f.Type(), "sync", "Mutex", "RWMutex") {
					mu = f
				}
				if namedIn(f.Type(), "sync/atomic", "Pointer", "Value") {
					atomics = append(atomics, f)
				}
			}
			if mu == nil {
				continue
			}
			for _, f := range atomics {
				a.mutexOf[f] = mu
			}
		}
	}
}

// namedIn reports whether t is a named type from pkgPath with one of
// the given names (generic instances included).
func namedIn(t types.Type, pkgPath string, names ...string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, name := range names {
		if obj.Name() == name {
			return true
		}
	}
	return false
}

// fieldVarOf resolves a selector expression to the struct field it
// names, or nil.
func fieldVarOf(pkg *Package, e ast.Expr) *types.Var {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pkg.Info.Selections[sel]; ok {
		if v, ok := s.Obj().(*types.Var); ok && v.IsField() {
			return v
		}
	}
	return nil
}

// funcLocks returns the set of mutex fields n's body Locks (write
// locks; RLock does not license publication).
func (a *atomicCheck) funcLocks(n *FuncNode) map[*types.Var]bool {
	if got, ok := a.locks[n]; ok {
		return got
	}
	set := map[*types.Var]bool{}
	a.locks[n] = set
	if n.Decl.Body == nil {
		return set
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		if f := fieldVarOf(n.Pkg, sel.X); f != nil {
			set[f] = true
		}
		return true
	})
	return set
}

// publishMethods are the atomic.Pointer/Value methods that publish.
var publishMethods = map[string]bool{"Store": true, "Swap": true, "CompareAndSwap": true}

// checkPublishes flags Store/Swap/CompareAndSwap on governed fields
// outside the lock discipline.
func (a *atomicCheck) checkPublishes(n *FuncNode) {
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !publishMethods[sel.Sel.Name] {
			return true
		}
		field := fieldVarOf(n.Pkg, sel.X)
		mu, governed := a.mutexOf[field]
		if !governed {
			return true
		}
		if a.funcLocks(n)[mu] {
			return true
		}
		if strings.HasSuffix(n.Fn.Name(), "Locked") {
			if bad := a.unlockedCaller(n, mu, map[*FuncNode]bool{}); bad != nil {
				a.diags = append(a.diags, posDiag(n.Pkg, call.Pos(), "snapshotatomic",
					"snapshot field "+field.Name()+" published from *Locked helper, but caller "+
						bad.Fn.Name()+" does not hold "+mu.Name()))
			}
			return true
		}
		a.diags = append(a.diags, posDiag(n.Pkg, call.Pos(), "snapshotatomic",
			"snapshot field "+field.Name()+" published without holding "+mu.Name()+
				" (lock it, or publish from a *Locked helper whose callers hold it)"))
		return true
	})
}

// unlockedCaller walks the reverse call graph from a *Locked helper and
// returns a caller that neither locks mu nor delegates to another
// *Locked function — the witness that the suffix contract is broken.
// Cycles are treated as satisfied (the lock is acquired outside the
// cycle or not at all, and the entry point is checked separately).
func (a *atomicCheck) unlockedCaller(n *FuncNode, mu *types.Var, seen map[*FuncNode]bool) *FuncNode {
	if seen[n] {
		return nil
	}
	seen[n] = true
	for _, caller := range a.g.Callers(n.Fn) {
		if a.funcLocks(caller)[mu] {
			continue
		}
		if strings.HasSuffix(caller.Fn.Name(), "Locked") {
			if bad := a.unlockedCaller(caller, mu, seen); bad != nil {
				return bad
			}
			continue
		}
		return caller
	}
	return nil
}

// checkReaderWrites flags functions that Load a governed snapshot field
// and then assign through the loaded value.
func (a *atomicCheck) checkReaderWrites(n *FuncNode) {
	// Pass 1: locals bound to a governed Load result.
	snapVars := map[types.Object]bool{}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		st, ok := node.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, rhs := range st.Rhs {
			if !a.isGovernedLoad(n.Pkg, rhs) {
				continue
			}
			if id, ok := st.Lhs[i].(*ast.Ident); ok {
				if obj := n.Pkg.ObjectOf(id); obj != nil {
					snapVars[obj] = true
				}
			}
		}
		return true
	})
	// Pass 2: writes through a snapshot-rooted expression.
	reportWrite := func(lhs ast.Expr, pos token.Pos) {
		if _, bare := ast.Unparen(lhs).(*ast.Ident); bare {
			return // rebinding the local is fine; writing through it is not
		}
		root := rootExpr(lhs)
		if id, ok := root.(*ast.Ident); ok {
			if obj := n.Pkg.ObjectOf(id); obj != nil && snapVars[obj] {
				a.diags = append(a.diags, posDiag(n.Pkg, pos, "snapshotatomic",
					"write through a loaded snapshot ("+id.Name+"): readers must treat snapshot state as immutable"))
			}
			return
		}
		if call, ok := root.(*ast.CallExpr); ok && a.isGovernedLoad(n.Pkg, call) {
			a.diags = append(a.diags, posDiag(n.Pkg, pos, "snapshotatomic",
				"write through a loaded snapshot: readers must treat snapshot state as immutable"))
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				reportWrite(lhs, st.TokPos)
			}
		case *ast.IncDecStmt:
			reportWrite(st.X, st.TokPos)
		}
		return true
	})
}

// isGovernedLoad reports whether e is field.Load() on a governed field.
func (a *atomicCheck) isGovernedLoad(pkg *Package, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Load" {
		return false
	}
	f := fieldVarOf(pkg, sel.X)
	_, governed := a.mutexOf[f]
	return governed
}

// rootExpr unwraps selector/index/deref chains to the base expression.
func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return e
		}
	}
}

// checkCopies flags assignments that copy a value containing atomics
// or mutexes.
func (a *atomicCheck) checkCopies(n *FuncNode) {
	check := func(e ast.Expr) {
		switch ast.Unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			return // calls and fresh literals produce new values, not copies
		}
		if containsSyncState(n.Pkg.TypeOf(e), map[types.Type]bool{}) {
			a.diags = append(a.diags, posDiag(n.Pkg, e.Pos(), "snapshotatomic",
				"copies a value containing sync/atomic state (a copy forks the atomic's identity)"))
		}
	}
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch st := node.(type) {
		case *ast.AssignStmt:
			for _, rhs := range st.Rhs {
				check(rhs)
			}
		case *ast.ValueSpec:
			for _, v := range st.Values {
				check(v)
			}
		}
		return true
	})
}

// containsSyncState reports whether a value of type t embeds
// sync/atomic types or mutexes (pointers to them do not count — a
// pointer copy shares, a value copy forks).
func containsSyncState(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if namedIn(t, "sync/atomic", "Pointer", "Value", "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr") {
		return true
	}
	if namedIn(t, "sync", "Mutex", "RWMutex", "WaitGroup", "Once", "Cond") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncState(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncState(u.Elem(), seen)
	}
	return false
}

// checkMixedAccess flags fields that are touched both through the
// sync/atomic package functions and with plain loads/stores.
func (a *atomicCheck) checkMixedAccess(pkgs []*Package) {
	// Pass 1: fields used as atomic.XxxT(&x.f, …) operands, and the
	// selector nodes sanctioned by appearing in that position.
	atomicUsed := map[*types.Var]bool{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	forEachAtomicOperand(pkgs, func(pkg *Package, sel *ast.SelectorExpr, f *types.Var) {
		atomicUsed[f] = true
		sanctioned[sel] = true
	})
	if len(atomicUsed) == 0 {
		return
	}
	// Pass 2: plain accesses of those fields.
	for _, pkg := range pkgs {
		if !pkg.IsTypeOK() {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				sel, ok := node.(*ast.SelectorExpr)
				if !ok || sanctioned[sel] {
					return true
				}
				fv := fieldVarOf(pkg, sel)
				if fv == nil || !atomicUsed[fv] {
					return true
				}
				a.diags = append(a.diags, posDiag(pkg, sel.Sel.Pos(), "snapshotatomic",
					"field "+fv.Name()+" is accessed atomically elsewhere but plainly here (every access must go through sync/atomic)"))
				return true
			})
		}
	}
}

// forEachAtomicOperand visits every &x.f operand of a call into package
// sync/atomic.
func forEachAtomicOperand(pkgs []*Package, visit func(*Package, *ast.SelectorExpr, *types.Var)) {
	for _, pkg := range pkgs {
		if !pkg.IsTypeOK() {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !strings.HasPrefix(calleeName(pkg, call), "sync/atomic.") {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if fv := fieldVarOf(pkg, sel); fv != nil {
						visit(pkg, sel, fv)
					}
				}
				return true
			})
		}
	}
}
