// Package errs exercises the errcheck analyzer and suppressions.
package errs

import (
	"fmt"
	"os"
	"strings"
)

// Drop discards errors every way the rule distinguishes.
func Drop(path string) {
	os.Remove(path)     // flagged: bare discard
	_ = os.Remove(path) // allowed: explicit discard

	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close() // allowed: deferred close idiom

	var sb strings.Builder
	sb.WriteString("x")        // allowed: never fails
	fmt.Fprintf(&sb, "%d", 1)  // allowed: fmt print family
	fmt.Println("report line") // allowed for errcheck (purity flags it separately)
}

// Suppressed documents an intentional discard.
func Suppressed(path string) {
	//lint:ignore errcheck best-effort cleanup
	os.Remove(path)
}

// Malformed has a reason-less suppression that is itself reported.
func Malformed(path string) {
	//lint:ignore errcheck
	os.Remove(path)
}
