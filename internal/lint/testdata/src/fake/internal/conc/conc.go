// Package conc exercises the concurrency analyzer.
package conc

import (
	"net/http"
	"sync"
	"time"
)

// Detached launches and never joins.
func Detached(work func()) {
	go work() // flagged: no join in Detached
}

// Joined launches under a WaitGroup and waits.
func Joined(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			f(v)
		}(it)
	}
	wg.Wait()
}

// Captures references the loop variable inside the goroutine.
func Captures(items []int, f func(int)) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() { // flagged: captures it
			defer wg.Done()
			f(it)
		}()
	}
	wg.Wait()
}

// ChannelJoined drains a result channel instead of a WaitGroup.
func ChannelJoined(n int, f func() int) int {
	ch := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() { ch <- f() }()
	}
	total := 0
	for i := 0; i < n; i++ {
		total += <-ch
	}
	return total
}

// BareServer builds an http.Server that accepts header-less connections
// forever.
func BareServer(addr string) *http.Server {
	return &http.Server{Addr: addr} // flagged: no ReadHeaderTimeout
}

// GuardedServer bounds the header read and must pass.
func GuardedServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		ReadHeaderTimeout: 5 * time.Second,
	}
}
