// Package bitvec exercises the dimension-safety analyzer (the rule
// matches any package path ending in internal/bitvec or internal/hdc).
package bitvec

// Vector is a minimal packed bit vector.
type Vector struct {
	words []uint64
	n     int
}

func (v *Vector) mustMatch(o *Vector) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
}

// Xor combines raw words without any guard.
func (v *Vector) Xor(a, b *Vector) {
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i] // flagged
	}
}

// And guards with the checker helper first.
func (v *Vector) And(a, b *Vector) {
	a.mustMatch(b)
	v.mustMatch(a)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Equal guards with the inline length comparison.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Both delegates to a guarded operation; no raw access, no finding.
func (v *Vector) Both(a, b *Vector) {
	v.And(a, b)
}
