// Package bitvec exercises the dimension-safety analyzer (the rule
// matches any package path ending in internal/bitvec or internal/hdc).
package bitvec

// Vector is a minimal packed bit vector.
type Vector struct {
	words []uint64
	n     int
}

func (v *Vector) mustMatch(o *Vector) {
	if v.n != o.n {
		panic("bitvec: length mismatch")
	}
}

// Xor combines raw words without any guard.
func (v *Vector) Xor(a, b *Vector) {
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i] // flagged
	}
}

// And guards with the checker helper first.
func (v *Vector) And(a, b *Vector) {
	a.mustMatch(b)
	v.mustMatch(a)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Equal guards with the inline length comparison.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Both delegates to a guarded operation; no raw access, no finding.
func (v *Vector) Both(a, b *Vector) {
	v.And(a, b)
}

// checkMultiOperands validates a query block against a row, mirroring
// the flat multi-query kernels' checker helper.
func checkMultiOperands(row []uint64, qs [][]uint64) {
	for i := range qs {
		if len(qs[i]) != len(row) {
			panic("bitvec: length mismatch")
		}
	}
}

// ScanRows combines a row's raw words with a query block's without any
// guard.
func ScanRows(row []uint64, qs [][]uint64) int {
	d := 0
	for i := range qs {
		for w := range row {
			d += int(row[w] ^ qs[i][w]) // flagged
		}
	}
	return d
}

// ScanRowsGuarded runs the checker helper before touching either
// operand's words.
func ScanRowsGuarded(row []uint64, qs [][]uint64) int {
	checkMultiOperands(row, qs)
	d := 0
	for i := range qs {
		for w := range row {
			d += int(row[w] ^ qs[i][w])
		}
	}
	return d
}

// ScanRowsInline guards with the inline length comparison.
func ScanRowsInline(row []uint64, qs [][]uint64) int {
	for i := range qs {
		if len(qs[i]) != len(row) {
			return -1
		}
	}
	d := 0
	for i := range qs {
		d += int(row[0] ^ qs[i][0])
	}
	return d
}
