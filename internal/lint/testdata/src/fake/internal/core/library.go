package core

// Library mimics the real one: everything outside segment.go must go
// through the segment accessors.
type Library struct {
	seg *segment
}

// BucketCount goes through the accessor and must pass.
func (l *Library) BucketCount() int { return l.seg.numBuckets() }

// FirstRow goes through the accessor and must pass.
func (l *Library) FirstRow() []uint64 { return l.seg.arenaRow(0) }

// RawBuckets reaches the bkts slice directly — flagged.
func (l *Library) RawBuckets() int {
	return len(l.seg.bkts)
}

// RawArena reslices the arena directly — flagged.
func (l *Library) RawArena() []uint64 {
	return l.seg.arena[:0]
}

// Suppressed documents a deliberate exception; it must not be reported.
func (l *Library) Suppressed() int {
	//lint:ignore snapshotsafety fixture exercises the suppression path
	return len(l.seg.arena)
}
