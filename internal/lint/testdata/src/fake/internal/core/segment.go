// Package core mimics the real library's segment storage so the
// snapshotsafety fixture can exercise the accessor boundary. This file
// plays the role of the storage owner: raw field access here is legal.
package core

type bucket struct {
	windows []int
}

type segment struct {
	bkts  []bucket
	arena []uint64
}

// numBuckets is an accessor — the sanctioned way to reach the storage.
func (s *segment) numBuckets() int { return len(s.bkts) }

// arenaRow is the sanctioned way to reach the packed words.
func (s *segment) arenaRow(i int) []uint64 { return s.arena[i : i+1 : i+1] }
