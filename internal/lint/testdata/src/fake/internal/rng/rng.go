// Package rng is the sanctioned randomness wrapper; the determinism
// rule exempts it.
package rng

import "math/rand"

// Intn forwards to math/rand (allowed only here).
func Intn(n int) int { return rand.Intn(n) }
