// Package det exercises the determinism analyzer.
package det

import (
	"math/rand" // line 6: flagged import
	"sort"
)

// M is a shared map.
var M = map[string]int{}

// Roll uses the forbidden global source.
func Roll() int { return rand.Intn(6) }

// CollectUnsorted appends in map order and never repairs it.
func CollectUnsorted() []string {
	var out []string
	for k := range M {
		out = append(out, k) // flagged: no later sort
	}
	return out
}

// CollectSorted is the sanctioned collect-then-sort idiom.
func CollectSorted() []string {
	var out []string
	for k := range M {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SumFloats accumulates floats in map order (rounding differs by order).
func SumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // flagged: float accumulation
	}
	return sum
}

// SumInts is commutative and exact; not flagged.
func SumInts(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
