// Package hot is the hotpath fixture: annotated roots below exercise
// every call-graph edge kind (direct, method, interface dispatch,
// function value) and every allocation kind the rule reports, plus the
// annotation-grammar errors and the exemptions that must stay silent.
package hot

import (
	"errors"
	"fmt"
)

// Candidate mirrors a result record; value literals of it are cheap.
type Candidate struct{ Ref, Off int }

var errNeg = errors.New("hot: negative size")

// --- direct and method call chains ---

type cache struct{ buf []int }

// Probe roots the main chain. Its own body must stay clean: the make
// below sits in an error guard, which is exempt.
//
//biohd:hotpath
func Probe(c *cache, n int) ([]int, error) {
	if n < 0 {
		scratch := make([]byte, 0, 16) // exempt: error-guard block
		_ = scratch
		return nil, errNeg
	}
	c.grow(fill(n))
	return c.buf, nil
}

// fill allocates through a direct call edge: chain Probe → fill.
func fill(n int) []int {
	out := make([]int, n) // want hotpath make
	return out
}

// grow allocates through a method call edge: chain Probe → grow. The
// append's destination is not its first argument, so it is not the
// amortized self-assign form.
func (c *cache) grow(xs []int) {
	c.buf = append(xs, 1) // want hotpath append
}

// --- interface dispatch ---

// Scorer is dispatched on the hot path; the walk fans out to every
// implementation in the program.
type Scorer interface{ Score(x int) int }

// Fancy formats on every call.
type Fancy struct{}

func (Fancy) Score(x int) int {
	return len(fmt.Sprint(x)) // want hotpath fmt, via ScoreAll's dispatch
}

// Plain is the allocation-free implementation; it must stay silent.
type Plain struct{}

func (Plain) Score(x int) int { return x }

//biohd:hotpath
func ScoreAll(s Scorer, xs []int) int {
	t := 0
	for _, x := range xs {
		t += s.Score(x)
	}
	return t
}

// --- function-value (indirect) dispatch ---

// handlers takes leaky's address, putting it in the indirect-call
// universe for Dispatch's call through a function-typed variable.
var handlers = []func(int) *Candidate{leaky}

//biohd:hotpath
func Dispatch(i, x int) *Candidate {
	h := handlers[i]
	return h(x)
}

func leaky(x int) *Candidate {
	return &Candidate{Ref: x} // want hotpath composite, via Dispatch's h(x)
}

// --- remaining allocation kinds, one root each ---

//biohd:hotpath
func Render(parts []string, m map[int]int) string {
	s := ""
	for _, p := range parts {
		s += p // want hotpath string
	}
	n := 0
	for k := range m { // want hotpath mapiter
		n += k
	}
	_ = n
	return s
}

//biohd:hotpath
func Retain(xs []int) {
	for _, x := range xs {
		defer done(x) // want hotpath deferloop
	}
}

func done(int) {}

//biohd:hotpath
func Box(f Fancy) Scorer {
	return Scorer(f) // want hotpath iface
}

//biohd:hotpath
func Fresh() *Candidate {
	c := Candidate{Ref: 1} // value literal: stack, silent
	_ = c
	return new(Candidate) // want hotpath new
}

//biohd:hotpath
func Walk(xs []int) int {
	t := 0
	each(xs, func(x int) { t += x }) // want hotpath closure (captures t)
	return t
}

func each(xs []int, f func(int)) {
	for _, x := range xs {
		f(x)
	}
}

// --- exemptions that must stay silent ---

// SelfAppend is the amortized self-assign idiom the append kind exempts.
//
//biohd:hotpath
func SelfAppend(buf []int, x int) []int {
	buf = append(buf, x)
	return buf
}

// Warm reaches a reviewed cold-start boundary; init's allocation is
// behind the //biohd:coldstart annotation and must not be reported.
//
//biohd:hotpath
func Warm(c *cache) {
	if c.buf == nil {
		c.init()
	}
	use(c.buf)
}

//biohd:coldstart pool-miss construction; steady state reuses buf
func (c *cache) init() {
	c.buf = make([]int, 0, 64)
}

func use([]int) {}

// Unreachable allocates freely: no root reaches it, so it is silent.
func Unreachable() []int { return make([]int, 1) }

// Quiet's finding is suppressed with a reason; the suppression is used,
// so the stale check must not fire on it.
//
//biohd:hotpath
func Quiet() *Candidate {
	//lint:ignore hotpath fixture exercises a live suppression
	return new(Candidate)
}

// Stale is unreachable, so this suppression suppresses nothing and the
// stale check must report it.
func Stale() []int {
	//lint:ignore hotpath nothing reaches Stale, so this is dead weight
	return make([]int, 4)
}

// --- annotation-grammar errors ---

//biohd:coldstart
func MissingReason() {} // want hotpath "needs a reason"

//biohd:frozen
func UnknownVerb() {} // want hotpath "unknown directive"

//biohd:coldstart nothing roots this, so the annotation is stale
func StaleCold() {} // want hotpath "stale //biohd:coldstart"
