// Package pub is the snapshotatomic fixture: Box pairs a snapshot
// pointer with its owner mutex, making it governed; the functions below
// exercise each finding kind and the publication forms that must stay
// silent.
package pub

import (
	"sync"
	"sync/atomic"
)

type state struct{ n int }

// Box is governed: the atomic snapshot pointer and the mutex that owns
// its writes live in the same struct.
type Box struct {
	mu   sync.Mutex
	cur  atomic.Pointer[state]
	hits int64
}

// BadPublish stores without the lock.
func (b *Box) BadPublish(s *state) {
	b.cur.Store(s) // want snapshotatomic "published without holding mu"
}

// GoodPublish holds the owner mutex across the store: silent.
func (b *Box) GoodPublish(s *state) {
	b.mu.Lock()
	b.cur.Store(s)
	b.mu.Unlock()
}

// publishLocked follows the *Locked contract: every caller must hold
// mu. Leak below breaks the contract, so the store is reported.
func (b *Box) publishLocked(s *state) {
	b.cur.Store(s) // want snapshotatomic "caller .*Leak does not hold mu"
}

// Exchange holds the lock around the helper: a contract-keeping caller.
func (b *Box) Exchange(s *state) {
	b.mu.Lock()
	b.publishLocked(s)
	b.mu.Unlock()
}

// Leak calls the *Locked helper without the lock.
func (b *Box) Leak(s *state) {
	b.publishLocked(s)
}

// BadReader mutates state it loaded from the snapshot pointer.
func (b *Box) BadReader() int {
	s := b.cur.Load()
	s.n = 9 // want snapshotatomic "write through a loaded snapshot"
	return s.n
}

// GoodReader only reads through the snapshot: silent.
func (b *Box) GoodReader() int {
	s := b.cur.Load()
	return s.n
}

// Clone copies the whole Box, forking the atomic's identity.
func (b *Box) Clone() *Box {
	c := *b // want snapshotatomic "copies a value containing sync/atomic state"
	return &c
}

// Hit establishes that hits is an atomic field...
func (b *Box) Hit() {
	atomic.AddInt64(&b.hits, 1)
}

// Peek ...which this plain read then violates.
func (b *Box) Peek() int64 {
	return b.hits // want snapshotatomic "accessed atomically elsewhere but plainly here"
}

// free has no owner mutex, so it is not governed: its bare store is the
// caller's business, not this rule's.
type free struct {
	cur atomic.Pointer[state]
}

func (f *free) set(s *state) {
	f.cur.Store(s)
}

var _ = (&free{}).set
