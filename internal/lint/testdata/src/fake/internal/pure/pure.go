// Package pure exercises the purity analyzer.
package pure

import (
	"errors"
	"fmt"
	"log"
	"os"
)

// Chatty prints to stdout from library code.
func Chatty() {
	fmt.Println("noisy") // flagged
}

// Quit exits the process from library code.
func Quit() {
	log.Fatalf("dead") // flagged
	os.Exit(1)         // flagged
}

// Parse panics although it could return its error.
func Parse(s string) (int, error) {
	if s == "" {
		panic("empty") // flagged: function has an error result
	}
	return len(s), nil
}

// Wrap panics with an error value.
func Wrap(s string) int {
	if s == "" {
		panic(errors.New("empty")) // flagged: panicking with an error
	}
	return len(s)
}

// Index panics as a documented invariant guard; allowed.
func Index(xs []int, i int) int {
	if i < 0 || i >= len(xs) {
		panic("pure: index out of range")
	}
	return xs[i]
}

// MustParse is the sanctioned Must* wrapper; allowed.
func MustParse(s string) int {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}
