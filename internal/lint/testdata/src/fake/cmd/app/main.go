// Command app shows that main packages may print and exit.
package main

import (
	"fmt"
	"os"
)

func main() {
	fmt.Println("fine in main")
	os.Exit(0)
}
