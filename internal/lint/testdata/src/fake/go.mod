module fake

go 1.22
