package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FindModuleRoot walks upward from dir to the directory containing
// go.mod and returns that directory and the declared module path.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := modulePathFrom(data)
			if mp == "" {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, mp, nil
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// modulePathFrom extracts the module path from go.mod content.
func modulePathFrom(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load parses and type-checks every non-test package under the module
// rooted at root. Test files (_test.go) are excluded: the analyzers'
// rules exempt test code, and excluding it keeps loading self-contained
// (external test packages need no special casing).
//
// Packages are type-checked in dependency order so intra-module imports
// resolve against already-checked packages; standard-library imports are
// type-checked from source via go/importer. A package with parse or
// type errors is still returned (with TypeErr set) so syntactic rules
// can run; only unreadable directories abort the load.
func Load(root string) ([]*Package, error) {
	return LoadWithTags(root, nil)
}

// LoadWithTags is Load with additional build tags in force, so the
// module can be analyzed as an alternative build sees it — e.g. tags
// ["purego"] selects the portable kernel fallbacks instead of the
// assembly dispatch stubs. File selection (//go:build lines and
// filename suffixes) honors the tags; everything else matches Load.
func LoadWithTags(root string, tags []string) ([]*Package, error) {
	root, modPath, err := FindModuleRoot(root)
	if err != nil {
		return nil, err
	}
	bctx := build.Default
	bctx.BuildTags = append(append([]string{}, bctx.BuildTags...), tags...)
	fset := token.NewFileSet()
	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}

	type rawPkg struct {
		pkg     *Package
		imports map[string]bool // intra-module imports
	}
	raws := map[string]*rawPkg{} // keyed by import path
	var order []string
	for _, dir := range dirs {
		files, perr := parseDir(&bctx, fset, dir)
		if len(files) == 0 {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		rp := &rawPkg{
			pkg: &Package{
				Path:    path,
				Name:    files[0].Name.Name,
				Files:   files,
				Fset:    fset,
				TypeErr: perr,
			},
			imports: map[string]bool{},
		}
		for _, f := range files {
			for _, imp := range f.Imports {
				ip := strings.Trim(imp.Path.Value, `"`)
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					rp.imports[ip] = true
				}
			}
		}
		raws[path] = rp
		order = append(order, path)
	}
	sort.Strings(order)

	// Topological order over intra-module imports (Kahn). Import cycles
	// are a compile error anyway; any residue is appended at the end so
	// every package is still analyzed.
	indeg := map[string]int{}
	for _, p := range order {
		for dep := range raws[p].imports {
			if _, ok := raws[dep]; ok {
				indeg[p]++
			}
		}
	}
	var topo []string
	queue := []string{}
	for _, p := range order {
		if indeg[p] == 0 {
			queue = append(queue, p)
		}
	}
	for len(queue) > 0 {
		sort.Strings(queue)
		p := queue[0]
		queue = queue[1:]
		topo = append(topo, p)
		for _, q := range order {
			if raws[q].imports[p] {
				indeg[q]--
				if indeg[q] == 0 {
					queue = append(queue, q)
				}
			}
		}
	}
	if len(topo) < len(order) {
		seen := map[string]bool{}
		for _, p := range topo {
			seen[p] = true
		}
		for _, p := range order {
			if !seen[p] {
				topo = append(topo, p)
			}
		}
	}

	// Type check in dependency order.
	std := importer.ForCompiler(fset, "source", nil)
	checked := map[string]*types.Package{}
	imp := &moduleImporter{std: std, module: checked}
	var pkgs []*Package
	for _, path := range topo {
		rp := raws[path]
		pkg := rp.pkg
		pkg.Info = newInfo()
		conf := types.Config{
			Importer: imp,
			Error:    func(error) {}, // collect just the first, keep going
		}
		tp, err := conf.Check(path, fset, pkg.Files, pkg.Info)
		pkg.Types = tp
		if err != nil && pkg.TypeErr == nil {
			pkg.TypeErr = err
		}
		if tp != nil {
			checked[path] = tp
		}
		pkgs = append(pkgs, pkg)
	}
	// Report in path order regardless of check order.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// moduleImporter serves intra-module packages from the already-checked
// set and defers everything else to the standard-library importer.
type moduleImporter struct {
	std    types.Importer
	module map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.module[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// packageDirs lists directories under root that contain at least one
// non-test .go file, skipping hidden directories, testdata, and vendor.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") && !strings.HasPrefix(name, "_")
}

// parseDir parses the non-test .go files of one directory that the
// build context selects. Build constraints (//go:build lines and
// filename suffixes like _amd64.go) are honored via go/build, so
// platform-alternative files declaring the same names — e.g. an
// assembly dispatch stub and its portable fallback — do not collide
// during type checking. The returned error is the first parse error;
// files that parse are still returned.
func parseDir(bctx *build.Context, fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var firstErr error
	var names []string
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		if ok, err := bctx.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if f != nil {
			files = append(files, f)
		}
	}
	return files, firstErr
}
