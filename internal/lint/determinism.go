package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces that all randomness flows through internal/rng
// and that nothing accumulates results in map iteration order. BioHD's
// reproduction claims rest on bit-identical rebuilds from a seed:
// math/rand's global functions are process-global and its source is
// unspecified across Go releases, and Go map iteration order is
// deliberately randomized, so either one silently breaks replay.
//
// Flagged:
//   - importing math/rand or math/rand/v2 (use internal/rng)
//   - inside a range over a map: appending to a variable declared
//     outside the loop, or compound-assigning (+=, etc.) to an outside
//     string or float variable — both produce iteration-order-dependent
//     results
//
// The collect-then-sort idiom is recognized: an append whose slice is
// later passed to a sort call in the same function is accepted, since
// the sort re-establishes a deterministic order (provided its
// comparison is total — that part is on the reviewer).
//
// internal/rng itself is exempt (it is the sanctioned wrapper), as are
// _test.go files (never loaded by the engine).
type Determinism struct{}

// Name implements Analyzer.
func (Determinism) Name() string { return "determinism" }

// Doc implements Analyzer.
func (Determinism) Doc() string {
	return "forbid math/rand and map-iteration-order-dependent accumulation outside internal/rng"
}

// Run implements Analyzer.
func (Determinism) Run(pkg *Package) []Diagnostic {
	if strings.HasSuffix(pkg.Path, "internal/rng") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				diags = append(diags, Diagnostic{
					Pos:  pkg.Fset.Position(imp.Pos()),
					Rule: "determinism",
					Message: "import of " + path + " is forbidden outside internal/rng; " +
						"use repro/internal/rng for seeded, reproducible randomness",
				})
			}
		}
		diags = append(diags, mapOrderDiags(pkg, f)...)
	}
	return diags
}

// mapOrderDiags flags order-dependent accumulation inside map ranges.
// It needs type information to know a range is over a map; without it
// the check is skipped (the import ban above is purely syntactic).
func mapOrderDiags(pkg *Package, f *ast.File) []Diagnostic {
	if !pkg.IsTypeOK() {
		return nil
	}
	var diags []Diagnostic
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pkg.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			diags = append(diags, mapBodyDiags(pkg, fn, rs)...)
			return true
		})
	}
	return diags
}

// mapBodyDiags scans one map-range body for accumulation into variables
// declared outside the loop.
func mapBodyDiags(pkg *Package, fn *ast.FuncDecl, rs *ast.RangeStmt) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos: pkg.Fset.Position(pos), Rule: "determinism", Message: msg,
		})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" || !declaredOutside(pkg, id, rs.Pos(), rs.End()) {
				continue
			}
			switch {
			case as.Tok == token.ASSIGN && i < len(as.Rhs) && isAppendCall(as.Rhs[i]):
				if sortedAfter(pkg, fn, id, as.Pos()) {
					continue
				}
				report(as.Pos(), "append to "+id.Name+
					" inside a map range depends on map iteration order; "+
					"sort the slice afterwards or iterate sorted keys")
			case as.Tok != token.ASSIGN && as.Tok != token.DEFINE && isOrderSensitive(pkg.TypeOf(id)):
				report(as.Pos(), as.Tok.String()+" on "+id.Name+
					" inside a map range depends on map iteration order; "+
					"iterate sorted keys instead")
			}
		}
		return true
	})
	return diags
}

// sortCallees are the sorting entry points that re-establish order.
var sortCallees = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true, "sort.Strings": true, "sort.Ints": true,
	"sort.Float64s": true, "slices.Sort": true, "slices.SortFunc": true,
	"slices.SortStableFunc": true,
}

// sortedAfter reports whether the variable bound to id is passed to a
// recognized sort call later in the same function — the collect-then-
// sort idiom. Besides the stdlib entry points, an in-package helper
// whose name starts with "sort" counts (the hotpath rule pushes hot
// code from sort.Slice closures to allocation-free sortXxx helpers).
func sortedAfter(pkg *Package, fn *ast.FuncDecl, id *ast.Ident, after token.Pos) bool {
	obj := pkg.ObjectOf(id)
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after || len(call.Args) == 0 {
			return true
		}
		if !sortCallees[calleeName(pkg, call)] && !isLocalSortHelper(call) {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pkg.ObjectOf(arg) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isLocalSortHelper reports whether call invokes an in-package sortXxx
// helper function.
func isLocalSortHelper(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && strings.HasPrefix(id.Name, "sort")
}

// isAppendCall reports whether e is a call to the append builtin.
func isAppendCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "append"
}

// isOrderSensitive reports whether compound assignment on t is affected
// by operand order: string concatenation and floating-point addition
// are; integer arithmetic is commutative and exact, so it is not.
func isOrderSensitive(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&(types.IsString|types.IsFloat|types.IsComplex) != 0
}
