package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Concurrency enforces three local hygiene rules on goroutine launches
// and server construction, the invariants that keep the concurrent
// build (AddConcurrent), the batch engine (LookupBatch), and the HTTP
// front end race-free and unstallable as they grow:
//
//  1. A function that launches goroutines must also join them: a
//     WaitGroup Wait, a channel receive (including range and select),
//     or an errgroup-style Wait must appear in the same function.
//     Fire-and-forget goroutines leak past function return, outlive
//     the data they touch, and are unobservable under -race.
//  2. A goroutine closure must not capture the surrounding loop
//     variable by reference; pass it as an argument. (Go ≥ 1.22 makes
//     the capture per-iteration, but the explicit parameter keeps the
//     dataflow reviewable and the code safe to backport.)
//  3. An http.Server composite literal must set ReadHeaderTimeout.
//     The zero value means a client can hold a connection (and its
//     serving goroutine) open forever before sending headers — a
//     slow-loris leak that no join discipline can see.
//
// The join rule is deliberately function-local; a launcher that hands
// ownership of the join to its caller documents that with a
// //lint:ignore concurrency suppression.
type Concurrency struct{}

// Name implements Analyzer.
func (Concurrency) Name() string { return "concurrency" }

// Doc implements Analyzer.
func (Concurrency) Doc() string {
	return "goroutines must join in their launching function and not capture loop variables; " +
		"http.Server literals must set ReadHeaderTimeout"
}

// Run implements Analyzer.
func (Concurrency) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				diags = append(diags, checkFunc(pkg, fn)...)
			}
		}
		diags = append(diags, serverLiteralDiags(pkg, f)...)
	}
	return diags
}

// serverLiteralDiags flags net/http.Server composite literals that do
// not set ReadHeaderTimeout. Identification is type-based when type
// information resolved, with a syntactic http.Server fallback so the
// rule still fires in packages whose imports failed to load.
func serverLiteralDiags(pkg *Package, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok || !isHTTPServerLit(pkg, lit) {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "ReadHeaderTimeout" {
				return true
			}
		}
		diags = append(diags, Diagnostic{
			Pos:  pkg.Fset.Position(lit.Pos()),
			Rule: "concurrency",
			Message: "http.Server literal without ReadHeaderTimeout; " +
				"a header-less client holds its serving goroutine forever (slow loris)",
		})
		return true
	})
	return diags
}

// isHTTPServerLit reports whether the composite literal constructs a
// net/http.Server value.
func isHTTPServerLit(pkg *Package, lit *ast.CompositeLit) bool {
	if t := pkg.TypeOf(lit); t != nil {
		if named, ok := t.(*types.Named); ok {
			obj := named.Obj()
			return obj.Name() == "Server" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
		}
	}
	sel, ok := lit.Type.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Server" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "http"
}

// checkFunc applies both goroutine rules to one function declaration.
func checkFunc(pkg *Package, fn *ast.FuncDecl) []Diagnostic {
	var gos []*ast.GoStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	if len(gos) == 0 {
		return nil
	}
	var diags []Diagnostic
	if !hasJoin(pkg, fn, gos) {
		for _, g := range gos {
			diags = append(diags, Diagnostic{
				Pos:  pkg.Fset.Position(g.Pos()),
				Rule: "concurrency",
				Message: "goroutine has no join in " + fn.Name.Name +
					" (no WaitGroup Wait, channel receive, or select); " +
					"join it or document ownership with a suppression",
			})
		}
	}
	diags = append(diags, loopCaptureDiags(pkg, fn, gos)...)
	return diags
}

// hasJoin scans fn for join evidence, excluding the bodies of the
// go-launched closures themselves (a receive inside the goroutine does
// not join it for the launcher).
func hasJoin(pkg *Package, fn *ast.FuncDecl, gos []*ast.GoStmt) bool {
	launched := map[*ast.FuncLit]bool{}
	for _, g := range gos {
		if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
			launched[lit] = true
		}
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			if launched[n] {
				return false
			}
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := pkg.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopCaptureDiags flags go-launched closures that reference the
// enclosing for/range loop's iteration variables instead of taking them
// as arguments.
func loopCaptureDiags(pkg *Package, fn *ast.FuncDecl, gos []*ast.GoStmt) []Diagnostic {
	var diags []Diagnostic
	// Map every go statement to the loop variables of the loops that
	// enclose it, by walking with an active-loop-variable stack.
	type loopFrame struct{ vars []*ast.Ident }
	var stack []loopFrame
	var walk func(n ast.Node) bool
	goSet := map[*ast.GoStmt]bool{}
	for _, g := range gos {
		goSet[g] = true
	}
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			var vars []*ast.Ident
			if n.Tok == token.DEFINE {
				for _, e := range [...]ast.Expr{n.Key, n.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						vars = append(vars, id)
					}
				}
			}
			stack = append(stack, loopFrame{vars: vars})
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.ForStmt:
			var vars []*ast.Ident
			if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						vars = append(vars, id)
					}
				}
			}
			stack = append(stack, loopFrame{vars: vars})
			ast.Inspect(n.Body, walk)
			stack = stack[:len(stack)-1]
			return false
		case *ast.GoStmt:
			if !goSet[n] {
				return true
			}
			lit, ok := n.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			for _, frame := range stack {
				for _, lv := range frame.vars {
					if capturesVar(pkg, lit, lv) {
						diags = append(diags, Diagnostic{
							Pos:  pkg.Fset.Position(n.Pos()),
							Rule: "concurrency",
							Message: "goroutine closure captures loop variable " +
								lv.Name + "; pass it as an argument instead",
						})
					}
				}
			}
			// Arguments to the call are evaluated at launch; still walk
			// the closure body for nested loops and goroutines.
			ast.Inspect(lit.Body, walk)
			return false
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
	return diags
}

// capturesVar reports whether the closure body references the loop
// variable declared by decl. With type information the check matches
// objects; without it, it falls back to name matching.
func capturesVar(pkg *Package, lit *ast.FuncLit, decl *ast.Ident) bool {
	declObj := pkg.ObjectOf(decl)
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		if declObj != nil {
			if pkg.ObjectOf(id) == declObj {
				captured = true
			}
		} else if id.Name == decl.Name && id.Pos() != decl.Pos() {
			captured = true
		}
		return !captured
	})
	return captured
}
