package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// DimSafety guards the binary kernels of internal/bitvec and
// internal/hdc: any exported function that touches the raw storage
// (packed words or counters) of two or more vector operands must
// check that their lengths/dimensions agree first. The word-parallel
// loops index one operand's storage with the other's extent, so a
// missing guard turns a dimension mismatch into an out-of-bounds read
// or, worse, a silently truncated similarity — exactly the corruption
// a hyperdimensional memory cannot detect downstream.
//
// Operands come in two shapes: the storage-carrying vector types
// (*Vector, *HV, *Acc), whose raw storage is reached through their
// words/counts fields and accessors, and the bare word-slice forms the
// flat kernels take ([]uint64 rows, [][]uint64 query blocks), which
// ARE raw storage — for those, indexing or reslicing the operand is
// the raw access.
//
// Accepted guards, which must precede the first combining access:
//   - a call to a checker helper (mustMatch / check / sameLen /
//     checkMultiOperands) with a vector operand as receiver or
//     argument
//   - an if statement whose condition mentions two distinct operands
//     (the length-comparison idiom, e.g. "if v.n != o.n")
//
// Functions that only delegate to other guarded operations (e.g.
// HV.Bind calling bitvec.Xnor) touch no raw storage and need no guard.
// Unexported helpers are exempt: they run behind an exported guard.
type DimSafety struct{}

// Name implements Analyzer.
func (DimSafety) Name() string { return "dimsafety" }

// Doc implements Analyzer.
func (DimSafety) Doc() string {
	return "bitvec/hdc binary operations must guard operand dimensions before raw storage access"
}

// vectorTypeNames are the storage-carrying types of the two packages.
var vectorTypeNames = map[string]bool{"Vector": true, "HV": true, "Acc": true}

// rawFields are struct fields that expose raw storage.
var rawFields = map[string]bool{"words": true, "counts": true}

// rawMethods are accessor methods that expose raw storage.
var rawMethods = map[string]bool{"Words": true, "Counts": true, "Count": true}

// guardNames are checker-helper method names accepted as guards.
var guardNames = map[string]bool{
	"mustMatch":          true,
	"check":              true,
	"sameLen":            true,
	"checkMultiOperands": true,
}

// Run implements Analyzer.
func (DimSafety) Run(pkg *Package) []Diagnostic {
	if !strings.HasSuffix(pkg.Path, "internal/bitvec") &&
		!strings.HasSuffix(pkg.Path, "internal/hdc") {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if d, ok := checkDims(pkg, fn); ok {
				diags = append(diags, d)
			}
		}
	}
	return diags
}

// checkDims analyzes one exported function for an unguarded combining
// access.
func checkDims(pkg *Package, fn *ast.FuncDecl) (Diagnostic, bool) {
	operands := vectorOperands(fn)
	if len(operands) < 2 {
		return Diagnostic{}, false
	}

	guardPos := token.NoPos
	accessed := map[string]token.Pos{} // operand name -> first raw access
	combinePos := token.NoPos          // first moment two operands were raw-accessed

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if guardPos == token.NoPos && mentionsTwoOperands(n.Cond, operands) {
				guardPos = n.Pos()
			}
		case *ast.CallExpr:
			if guardPos == token.NoPos && isGuardCall(n, operands) {
				guardPos = n.Pos()
			}
			if name, ok := rawMethodAccess(n, operands); ok {
				recordAccess(accessed, name, n.Pos(), &combinePos)
			}
		case *ast.SelectorExpr:
			if name, ok := rawFieldAccess(n, operands); ok {
				recordAccess(accessed, name, n.Pos(), &combinePos)
			}
		case *ast.IndexExpr:
			// Word-slice operands are raw storage; indexing one is the
			// access itself (row[w], qs[i][w]).
			if name, ok := operandBase(n.X, operands); ok {
				recordAccess(accessed, name, n.Pos(), &combinePos)
			}
		case *ast.SliceExpr:
			if name, ok := operandBase(n.X, operands); ok {
				recordAccess(accessed, name, n.Pos(), &combinePos)
			}
		}
		return true
	})

	if combinePos == token.NoPos {
		return Diagnostic{}, false
	}
	if guardPos != token.NoPos && guardPos < combinePos {
		return Diagnostic{}, false
	}
	return Diagnostic{
		Pos:  pkg.Fset.Position(combinePos),
		Rule: "dimsafety",
		Message: fn.Name.Name + " combines the raw storage of two operands " +
			"without a preceding length/dimension guard " +
			"(call mustMatch or compare lengths first)",
	}, true
}

// recordAccess notes a raw access and captures the position at which a
// second distinct operand is first touched.
func recordAccess(accessed map[string]token.Pos, name string, pos token.Pos, combine *token.Pos) {
	if _, seen := accessed[name]; !seen {
		accessed[name] = pos
	}
	if len(accessed) >= 2 && *combine == token.NoPos {
		*combine = pos
	}
}

// vectorOperands collects the receiver and parameters with a vector
// storage type, keyed by identifier name.
func vectorOperands(fn *ast.FuncDecl) map[string]bool {
	ops := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if !isVectorType(field.Type) && !isWordSliceType(field.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					ops[name.Name] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	return ops
}

// isVectorType matches *Vector, *HV, *Acc, and their pkg-qualified
// forms (*bitvec.Vector, ...).
func isVectorType(e ast.Expr) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return vectorTypeNames[t.Name]
	case *ast.SelectorExpr:
		return vectorTypeNames[t.Sel.Name]
	}
	return false
}

// isWordSliceType matches the flat-kernel operand shapes []uint64 and
// [][]uint64.
func isWordSliceType(e ast.Expr) bool {
	arr, ok := e.(*ast.ArrayType)
	if !ok || arr.Len != nil {
		return false
	}
	switch el := arr.Elt.(type) {
	case *ast.Ident:
		return el.Name == "uint64"
	case *ast.ArrayType:
		if el.Len != nil {
			return false
		}
		id, ok := el.Elt.(*ast.Ident)
		return ok && id.Name == "uint64"
	}
	return false
}

// operandBase resolves an expression to the operand identifier at its
// base, unwrapping selector chains (h.bits.Words() -> h).
func operandBase(e ast.Expr, operands map[string]bool) (string, bool) {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if operands[v.Name] {
				return v.Name, true
			}
			return "", false
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return "", false
		}
	}
}

// rawFieldAccess matches operand.words / operand.counts selector chains.
func rawFieldAccess(sel *ast.SelectorExpr, operands map[string]bool) (string, bool) {
	if !rawFields[sel.Sel.Name] {
		return "", false
	}
	return operandBase(sel.X, operands)
}

// rawMethodAccess matches operand.Words() / .Counts() / .Count() calls,
// including through an intermediate field (h.bits.Words()).
func rawMethodAccess(call *ast.CallExpr, operands map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !rawMethods[sel.Sel.Name] {
		return "", false
	}
	return operandBase(sel.X, operands)
}

// isGuardCall matches calls to checker helpers that take or receive an
// operand: v.mustMatch(o), a.check(i), mustMatch(a, b).
func isGuardCall(call *ast.CallExpr, operands map[string]bool) bool {
	var name string
	var exprs []ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		exprs = append(exprs, fun.X)
	case *ast.Ident:
		name = fun.Name
	default:
		return false
	}
	if !guardNames[name] {
		return false
	}
	exprs = append(exprs, call.Args...)
	for _, e := range exprs {
		if _, ok := operandBase(e, operands); ok {
			return true
		}
	}
	return false
}

// mentionsTwoOperands reports whether the condition references at least
// two distinct operands (the inline length-comparison guard).
func mentionsTwoOperands(cond ast.Expr, operands map[string]bool) bool {
	seen := map[string]bool{}
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && operands[id.Name] {
			seen[id.Name] = true
		}
		return len(seen) < 2
	})
	return len(seen) >= 2
}
