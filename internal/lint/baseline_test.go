package lint

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baselineDiags(root string) []Diagnostic {
	mk := func(file string, line int, rule, msg string) Diagnostic {
		return Diagnostic{
			Pos:  token.Position{Filename: filepath.Join(root, file), Line: line},
			Rule: rule, Message: msg,
		}
	}
	return []Diagnostic{
		mk("a/a.go", 10, "hotpath", "make: make allocates"),
		mk("a/a.go", 40, "hotpath", "make: make allocates"), // duplicate message, distinct line
		mk("b/b.go", 7, "snapshotatomic", "copies a value containing sync/atomic state"),
	}
}

// TestBaselineRoundTrip writes a baseline, reloads it, and checks it
// absorbs exactly the recorded findings — line-agnostically and as a
// multiset.
func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "baseline.json")
	diags := baselineDiags(root)

	if err := WriteBaseline(path, root, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}

	// The exact findings are fully absorbed even if every line moved.
	moved := baselineDiags(root)
	for i := range moved {
		moved[i].Pos.Line += 100
	}
	kept, absorbed := b.Filter(root, moved)
	if len(kept) != 0 || absorbed != 3 {
		t.Fatalf("Filter(moved) = kept %d, absorbed %d; want 0, 3", len(kept), absorbed)
	}

	// A third identical duplicate exceeds the multiset count and a new
	// finding is never absorbed: both must be kept.
	extra := append(baselineDiags(root),
		Diagnostic{Pos: token.Position{Filename: filepath.Join(root, "a/a.go"), Line: 50},
			Rule: "hotpath", Message: "make: make allocates"},
		Diagnostic{Pos: token.Position{Filename: filepath.Join(root, "c/c.go"), Line: 3},
			Rule: "purity", Message: "new finding"},
	)
	kept, absorbed = b.Filter(root, extra)
	if absorbed != 3 || len(kept) != 2 {
		t.Fatalf("Filter(extra) = kept %d, absorbed %d; want 2, 3", len(kept), absorbed)
	}
}

// TestBaselineMissingFile treats an absent baseline as empty — the
// ratchet's end state — rather than an error.
func TestBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatalf("LoadBaseline(missing): %v", err)
	}
	if b.Len() != 0 {
		t.Fatalf("missing baseline Len = %d, want 0", b.Len())
	}
	diags := baselineDiags(t.TempDir())
	kept, absorbed := b.Filter("/", diags)
	if len(kept) != len(diags) || absorbed != 0 {
		t.Fatalf("empty baseline must keep everything, kept %d absorbed %d", len(kept), absorbed)
	}
}

// TestBaselineRelPaths checks entries are repo-relative slash paths, so
// the file is stable across checkouts.
func TestBaselineRelPaths(t *testing.T) {
	root := t.TempDir()
	path := filepath.Join(root, "bl.json")
	if err := WriteBaseline(path, root, baselineDiags(root)); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got := string(data); !strings.Contains(got, `"a/a.go"`) || strings.Contains(got, root) {
		t.Fatalf("baseline must use repo-relative slash paths, got:\n%s", got)
	}
}
