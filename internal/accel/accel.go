// Package accel provides analytic cost models for the accelerators BioHD
// is compared against in the paper's evaluation: a GeForce RTX 3060 Ti
// class GPU running state-of-the-art pattern matching, and a
// state-of-the-art digital PIM accelerator executing classical matching
// in memory.
//
// Neither device is available in this environment, so both comparators
// are roofline-style cost models (see DESIGN.md §4): latency follows
// from algorithmic work divided by a sustained throughput, energy from
// board power times latency plus per-operation costs. The sustained
// throughputs are calibrated to published operating points of real
// kernels (GPU Smith–Waterman/Myers implementations sustain on the order
// of 10²–10³ giga cell-updates per second; digital PIM pattern matchers
// spend tens of row operations per scanned base per segment). Absolute
// numbers carry that calibration; the *shapes* — who wins, how ratios
// scale with database size and parallelism — follow from the model
// structure and are what the F6/F7/F9 experiments reproduce.
package accel

import "fmt"

// Workload describes a batch of pattern searches against a reference
// database, in algorithm-independent terms.
type Workload struct {
	DBBases    int64 // reference bases each query is matched against
	Queries    int   // queries in the batch
	PatternLen int   // pattern length in bases
	Approx     bool  // approximate (alignment) vs exact matching
}

// Validate checks the workload.
func (w Workload) Validate() error {
	if w.DBBases <= 0 || w.Queries <= 0 || w.PatternLen <= 0 {
		return fmt.Errorf("accel: non-positive workload %+v", w)
	}
	return nil
}

// Estimate is a modelled batch cost.
type Estimate struct {
	LatencyNs float64
	EnergyPj  float64
}

// PerQueryLatencyNs returns the average latency per query.
func (e Estimate) PerQueryLatencyNs(queries int) float64 {
	return e.LatencyNs / float64(queries)
}

// ThroughputQPS returns queries per second for the batch.
func (e Estimate) ThroughputQPS(queries int) float64 {
	if e.LatencyNs == 0 {
		return 0
	}
	return float64(queries) / (e.LatencyNs * 1e-9)
}

// Model is a comparator cost model.
type Model interface {
	Name() string
	Evaluate(w Workload) (Estimate, error)
}

// GPUModel is a throughput/roofline model of a discrete GPU running the
// best-known pattern-matching kernel for the workload class: Myers
// bit-parallel (exact and small-k) counted in cell updates, plus a fixed
// per-batch launch/transfer overhead and board power.
type GPUModel struct {
	ModelName       string
	SustainedGCUPS  float64 // sustained giga cell-updates per second
	ExactGBPS       float64 // sustained giga bases/s for exact automaton scans
	BatchOverheadNs float64 // kernel launch + PCIe transfer per batch
	BoardPowerW     float64
}

// RTX3060Ti returns the GPU comparator calibrated to a GeForce RTX 3060
// Ti class card (448 GB/s, 200 W board power): alignment kernels sustain
// ≈85 GCUPS end-to-end, exact multi-pattern scans ≈25 Gbases/s effective.
func RTX3060Ti() GPUModel {
	return GPUModel{
		ModelName:       "rtx3060ti",
		SustainedGCUPS:  85,
		ExactGBPS:       25,
		BatchOverheadNs: 20_000,
		BoardPowerW:     200,
	}
}

// Name implements Model.
func (g GPUModel) Name() string { return g.ModelName }

// Evaluate implements Model.
func (g GPUModel) Evaluate(w Workload) (Estimate, error) {
	if err := w.Validate(); err != nil {
		return Estimate{}, err
	}
	var kernelNs float64
	if w.Approx {
		// DP cell updates: pattern length × text length per query.
		cells := float64(w.Queries) * float64(w.DBBases) * float64(w.PatternLen)
		kernelNs = cells / g.SustainedGCUPS
	} else {
		bases := float64(w.Queries) * float64(w.DBBases)
		kernelNs = bases / g.ExactGBPS
	}
	latency := kernelNs + g.BatchOverheadNs
	return Estimate{
		LatencyNs: latency,
		EnergyPj:  wattNsToPj(g.BoardPowerW, latency),
	}, nil
}

// PIMBaselineModel is the state-of-the-art digital PIM comparator: the
// classical matching algorithm executed bit-serially inside memory,
// the database partitioned across independently scanning segments.
type PIMBaselineModel struct {
	ModelName    string
	Segments     int     // concurrently scanning memory segments
	OpsPerBase   float64 // row operations spent per scanned base per query
	RowOpNs      float64 // latency of one in-memory row operation
	RowOpPj      float64 // energy of one row operation
	SystemPowerW float64 // controller + periphery power while scanning
}

// SOTAPIM returns the digital-PIM comparator calibrated to published
// bit-serial in-memory pattern matchers: thousands of segments, tens of
// row operations per scanned base (bit-serial compare, carry, and state
// update), each row op at DRAM-row-activation-class energy.
func SOTAPIM() PIMBaselineModel {
	return PIMBaselineModel{
		ModelName:    "sota-pim",
		Segments:     1024,
		OpsPerBase:   28,
		RowOpNs:      1.3,
		RowOpPj:      220,
		SystemPowerW: 12,
	}
}

// Name implements Model.
func (p PIMBaselineModel) Name() string { return p.ModelName }

// Evaluate implements Model.
func (p PIMBaselineModel) Evaluate(w Workload) (Estimate, error) {
	if err := w.Validate(); err != nil {
		return Estimate{}, err
	}
	if p.Segments <= 0 {
		return Estimate{}, fmt.Errorf("accel: model %q has %d segments", p.ModelName, p.Segments)
	}
	basesPerSegment := float64(w.DBBases) / float64(p.Segments)
	perQueryNs := basesPerSegment * p.OpsPerBase * p.RowOpNs
	latency := perQueryNs * float64(w.Queries)
	rowOps := float64(w.Queries) * float64(w.DBBases) * p.OpsPerBase
	return Estimate{
		LatencyNs: latency,
		EnergyPj:  rowOps*p.RowOpPj + wattNsToPj(p.SystemPowerW, latency),
	}, nil
}

// BioHDSystem converts the PIM simulator's per-batch dynamic cost into a
// system-level estimate comparable with the other models, by adding the
// periphery power of every concurrently active array plus the controller
// draw over the batch latency. The dynamic array-operation component
// comes from the functional simulator (internal/pim); only the static
// wrapper is modelled here. Power scaling with active arrays is what
// makes massive parallelism cost real watts.
type BioHDSystem struct {
	PerArrayPowerW   float64 // sense amps + popcount tree + row drivers, per active array
	ControllerPowerW float64 // chip controller and broadcast bus
}

// DefaultBioHDSystem returns the reference system wrapper.
func DefaultBioHDSystem() BioHDSystem {
	return BioHDSystem{PerArrayPowerW: 0.7, ControllerPowerW: 5}
}

// Wrap combines the simulator's dynamic cost with system power for the
// given number of concurrently active arrays. latencyNs and dynamicPj
// come from pim.Cost for the whole batch.
func (b BioHDSystem) Wrap(latencyNs, dynamicPj float64, activeArrays int) Estimate {
	power := b.PerArrayPowerW*float64(activeArrays) + b.ControllerPowerW
	return Estimate{
		LatencyNs: latencyNs,
		EnergyPj:  dynamicPj + wattNsToPj(power, latencyNs),
	}
}

// wattNsToPj converts power (W) sustained over a duration (ns) to energy
// in picojoules: 1 W·ns = 10⁻⁹ J = 1000 pJ.
func wattNsToPj(watts, ns float64) float64 {
	return watts * ns * 1e3
}
