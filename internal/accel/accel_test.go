package accel

import (
	"math"
	"testing"
)

func covidWorkload() Workload {
	// 64 SARS-CoV-2-scale references, one batch of window queries.
	return Workload{DBBases: 64 * 29903, Queries: 1000, PatternLen: 32, Approx: true}
}

func TestWorkloadValidate(t *testing.T) {
	if err := covidWorkload().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, w := range []Workload{
		{DBBases: 0, Queries: 1, PatternLen: 1},
		{DBBases: 1, Queries: 0, PatternLen: 1},
		{DBBases: 1, Queries: 1, PatternLen: 0},
	} {
		if err := w.Validate(); err == nil {
			t.Fatalf("workload %+v accepted", w)
		}
	}
}

func TestGPUModelScalesWithWork(t *testing.T) {
	g := RTX3060Ti()
	small := covidWorkload()
	big := small
	big.DBBases *= 10
	eSmall, err := g.Evaluate(small)
	if err != nil {
		t.Fatal(err)
	}
	eBig, err := g.Evaluate(big)
	if err != nil {
		t.Fatal(err)
	}
	ratio := eBig.LatencyNs / eSmall.LatencyNs
	if ratio < 9 || ratio > 10.5 { // near-linear modulo fixed overhead
		t.Fatalf("10× work gave %vx latency", ratio)
	}
	if eBig.EnergyPj <= eSmall.EnergyPj {
		t.Fatal("energy did not grow with work")
	}
}

func TestGPUModelExactCheaperThanApprox(t *testing.T) {
	g := RTX3060Ti()
	w := covidWorkload()
	approx, _ := g.Evaluate(w)
	w.Approx = false
	exact, err := g.Evaluate(w)
	if err != nil {
		t.Fatal(err)
	}
	if exact.LatencyNs >= approx.LatencyNs {
		t.Fatalf("exact scan %v not cheaper than DP %v", exact.LatencyNs, approx.LatencyNs)
	}
}

func TestGPUEnergyIsPowerTimesLatency(t *testing.T) {
	g := RTX3060Ti()
	e, err := g.Evaluate(covidWorkload())
	if err != nil {
		t.Fatal(err)
	}
	want := g.BoardPowerW * e.LatencyNs * 1e3
	if math.Abs(e.EnergyPj-want)/want > 1e-12 {
		t.Fatalf("energy %v, want %v", e.EnergyPj, want)
	}
}

func TestPIMBaselineParallelismHelps(t *testing.T) {
	p := SOTAPIM()
	e1, err := p.Evaluate(covidWorkload())
	if err != nil {
		t.Fatal(err)
	}
	p.Segments *= 4
	e2, err := p.Evaluate(covidWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if r := e1.LatencyNs / e2.LatencyNs; math.Abs(r-4) > 1e-9 {
		t.Fatalf("4× segments gave %vx speedup", r)
	}
	// Dynamic energy is parallelism-independent; only the static share
	// shrinks.
	if e2.EnergyPj >= e1.EnergyPj {
		t.Fatal("more parallelism did not reduce energy")
	}
}

func TestPIMBaselineRejectsBadModel(t *testing.T) {
	p := SOTAPIM()
	p.Segments = 0
	if _, err := p.Evaluate(covidWorkload()); err == nil {
		t.Fatal("zero segments accepted")
	}
}

func TestModelsEvaluateErrors(t *testing.T) {
	bad := Workload{}
	if _, err := RTX3060Ti().Evaluate(bad); err == nil {
		t.Fatal("GPU accepted bad workload")
	}
	if _, err := SOTAPIM().Evaluate(bad); err == nil {
		t.Fatal("PIM accepted bad workload")
	}
}

func TestBioHDSystemWrap(t *testing.T) {
	sys := DefaultBioHDSystem()
	e := sys.Wrap(1000, 500, 100) // 1 µs, 500 pJ dynamic, 100 arrays
	if e.LatencyNs != 1000 {
		t.Fatal("latency passed through wrongly")
	}
	wantStatic := (sys.PerArrayPowerW*100 + sys.ControllerPowerW) * 1000 * 1e3
	if math.Abs(e.EnergyPj-(500+wantStatic)) > 1e-9 {
		t.Fatalf("energy %v, want %v", e.EnergyPj, 500+wantStatic)
	}
	// More active arrays, more power.
	if sys.Wrap(1000, 500, 200).EnergyPj <= e.EnergyPj {
		t.Fatal("power did not scale with active arrays")
	}
}

func TestEstimateHelpers(t *testing.T) {
	e := Estimate{LatencyNs: 2e9} // 2 s for the batch
	if got := e.PerQueryLatencyNs(1000); got != 2e6 {
		t.Fatalf("per query %v", got)
	}
	if got := e.ThroughputQPS(1000); math.Abs(got-500) > 1e-9 {
		t.Fatalf("qps %v", got)
	}
	if (Estimate{}).ThroughputQPS(10) != 0 {
		t.Fatal("zero-latency throughput not 0")
	}
}

func TestModelInterfaces(t *testing.T) {
	models := []Model{RTX3060Ti(), SOTAPIM()}
	for _, m := range models {
		if m.Name() == "" {
			t.Fatal("empty model name")
		}
		if _, err := m.Evaluate(covidWorkload()); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
	}
}
