package wire

import "testing"

// TestWireFrameAllocs pins the zero-alloc steady state of the framing
// layer: with warmed buffers, one full request decode plus one full
// response encode allocates nothing. This is the empirical twin of
// the //biohd:hotpath lint proof on the protocol helpers and the
// connection loops.
func TestWireFrameAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	reqFrame := encodeFrame(OpSearch, 0, 42, AppendSearchRequest(nil, []byte("ACGTACGTACGTACGT"), true))
	result := SearchResult{
		Matches: []Match{
			{Ref: "chr1", Offset: 500, Distance: 1, Strand: "+"},
			{Ref: "chr1", Offset: 1500, Distance: 0, Strand: "-"},
		},
		Probes: 3,
	}
	out := make([]byte, 0, 4096)
	allocs := testing.AllocsPerRun(1000, func() {
		h, err := ParseHeader(reqFrame[:HeaderSize])
		if err != nil {
			t.Fatal(err)
		}
		pattern, both, err := ParseSearchRequest(reqFrame[HeaderSize : HeaderSize+int(h.PayloadLen)])
		if err != nil {
			t.Fatal(err)
		}
		if len(pattern) == 0 || !both {
			t.Fatal("decode corrupted")
		}
		frame, off := BeginFrame(out[:0])
		frame = AppendSearchResult(frame, &result)
		FinishFrame(frame, off, OpSearch, FlagResponse, h.RequestID)
		if len(frame) <= HeaderSize {
			t.Fatal("encode produced no payload")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state frame handling allocates: %v allocs/op", allocs)
	}
}

// TestErrorFrameAllocs pins the error path's framing cost: encoding
// an ERR payload from a pre-existing message is also allocation-free.
func TestErrorFrameAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed by the race detector")
	}
	out := make([]byte, 0, 512)
	msg := ErrDuplicateID.Error()
	allocs := testing.AllocsPerRun(1000, func() {
		frame, off := BeginFrame(out[:0])
		frame = AppendErrorPayload(frame, 400, msg)
		FinishFrame(frame, off, OpErr, FlagResponse|FlagError, 1)
		if len(frame) <= HeaderSize {
			t.Fatal("encode produced no payload")
		}
	})
	if allocs != 0 {
		t.Fatalf("error frame encoding allocates: %v allocs/op", allocs)
	}
}
