package wire

// Client: a pipelining connection pool for the wire protocol. Each
// pooled connection multiplexes any number of concurrent requests —
// a writer stamps a fresh requestID on every frame and registers a
// waiter; a per-connection reader goroutine demultiplexes response
// frames back to their waiters by id. Callers on different goroutines
// therefore share connections and naturally pipeline, which is
// exactly the traffic shape the server's coalescer wants.
//
// Context cancellation abandons the waiter and fires a best-effort
// CANCEL frame so the server vacates the request from the coalescer;
// a response that arrives anyway is dropped on the floor.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed is returned for requests issued after Close.
var ErrClientClosed = errors.New("wire: client closed")

// ClientConfig shapes the client pool. Zero fields take defaults.
type ClientConfig struct {
	// Conns is the pool size (default 2). One is plenty for
	// throughput — the protocol pipelines — but a second hides
	// head-of-line blocking on very large responses.
	Conns int
	// MaxFrame caps acceptable response payloads (default
	// DefaultMaxFrame).
	MaxFrame int
	// DialTimeout bounds connection establishment (default 5s).
	DialTimeout time.Duration
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	return c
}

// Client issues wire-protocol requests over a pool of pipelined
// connections. Safe for concurrent use.
type Client struct {
	addr string
	cfg  ClientConfig

	ids  atomic.Uint64 // requestID source, shared across connections
	next atomic.Uint64 // round-robin cursor

	bufPool sync.Pool // *buffer, frame-encode scratch

	mu     sync.Mutex
	conns  []*clientConn
	closed bool
}

// Dial creates a client pool for addr, eagerly establishing one
// connection so configuration errors surface immediately.
func Dial(addr string, cfg ClientConfig) (*Client, error) {
	c := &Client{addr: addr, cfg: cfg.withDefaults()}
	c.bufPool.New = func() interface{} { return &buffer{b: make([]byte, 0, 4096)} }
	c.conns = make([]*clientConn, c.cfg.Conns)
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cc
	return c, nil
}

// Close severs every pooled connection and fails their outstanding
// waiters.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := make([]*clientConn, 0, len(c.conns))
	for _, cc := range c.conns {
		if cc != nil {
			conns = append(conns, cc)
		}
	}
	c.mu.Unlock()
	for _, cc := range conns {
		cc.fail(ErrClientClosed)
		<-cc.readerDone
	}
	return nil
}

// dial establishes one connection and starts its reader.
func (c *Client) dial() (*clientConn, error) {
	nc, err := net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
		_ = tc.SetKeepAlive(true)
	}
	cc := &clientConn{
		cl:         c,
		nc:         nc,
		br:         bufio.NewReaderSize(nc, 64<<10),
		waiters:    make(map[uint64]chan clientResp),
		readerDone: make(chan struct{}),
	}
	started := make(chan struct{})
	go func() {
		close(started)
		defer close(cc.readerDone)
		cc.readLoop()
	}()
	<-started
	return cc, nil
}

// conn picks a pooled connection round-robin, redialing dead or
// not-yet-opened slots.
func (c *Client) conn() (*clientConn, error) {
	slot := int(c.next.Add(1)) % c.cfg.Conns
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClientClosed
	}
	cc := c.conns[slot]
	if cc != nil && cc.alive() {
		return cc, nil
	}
	cc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conns[slot] = cc
	return cc, nil
}

// clientResp is one demultiplexed response frame.
type clientResp struct {
	flags   uint16
	opcode  Opcode
	payload []byte
	err     error
}

// clientConn is one pooled connection: a write mutex serializing
// frame writes, and a reader goroutine fanning responses out to
// waiters.
type clientConn struct {
	cl *Client
	nc net.Conn
	br *bufio.Reader

	wmu sync.Mutex // serializes whole-frame writes

	mu      sync.Mutex
	waiters map[uint64]chan clientResp
	err     error // sticky; set before nc.Close

	readerDone chan struct{}
}

func (cc *clientConn) alive() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err == nil
}

// fail marks the connection dead, closes the socket, and delivers err
// to every outstanding waiter.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	waiters := cc.waiters
	cc.waiters = make(map[uint64]chan clientResp)
	cc.mu.Unlock()
	//lint:ignore errcheck the connection is already failed
	cc.nc.Close()
	for _, ch := range waiters {
		ch <- clientResp{err: err}
	}
}

// readLoop demultiplexes response frames to waiters until the
// connection dies. An unsolicited ERR frame (requestID 0 or unknown)
// is the server announcing a protocol-level teardown: the whole
// connection fails with its message.
func (cc *clientConn) readLoop() {
	var hdr [HeaderSize]byte
	for {
		if _, err := io.ReadFull(cc.br, hdr[:]); err != nil {
			cc.fail(err)
			return
		}
		h, err := ParseHeader(hdr[:])
		if err != nil {
			cc.fail(err)
			return
		}
		if h.Flags&FlagResponse == 0 {
			cc.fail(ErrBadFlags)
			return
		}
		if h.PayloadLen > uint32(cc.cl.cfg.MaxFrame) {
			cc.fail(ErrFrameTooBig)
			return
		}
		payload := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(cc.br, payload); err != nil {
			cc.fail(err)
			return
		}
		cc.mu.Lock()
		ch := cc.waiters[h.RequestID]
		delete(cc.waiters, h.RequestID)
		cc.mu.Unlock()
		if ch == nil {
			// Canceled or unknown request. An ERR frame with no
			// claimant means the server is closing the connection on a
			// protocol violation we (or a sibling) committed.
			if h.Opcode == OpErr {
				se, perr := ParseErrorPayload(payload)
				if perr != nil {
					cc.fail(perr)
				} else {
					cc.fail(se)
				}
				return
			}
			continue
		}
		ch <- clientResp{flags: h.Flags, opcode: h.Opcode, payload: payload}
	}
}

// writeFrame encodes and writes one whole frame under the write
// mutex, using pooled scratch.
func (cc *clientConn) writeFrame(op Opcode, id uint64, appendPayload func([]byte) []byte) error {
	out := cc.cl.bufPool.Get().(*buffer)
	frame, off := BeginFrame(out.b[:0])
	if appendPayload != nil {
		frame = appendPayload(frame)
	}
	FinishFrame(frame, off, op, 0, id)
	out.b = frame
	cc.wmu.Lock()
	_, err := cc.nc.Write(frame)
	cc.wmu.Unlock()
	cc.cl.bufPool.Put(out)
	return err
}

// do issues one request and waits for its response or ctx. On ctx
// expiry the waiter is abandoned and a best-effort CANCEL frame tells
// the server to vacate the request.
func (c *Client) do(ctx context.Context, op Opcode, appendPayload func([]byte) []byte) (clientResp, error) {
	cc, err := c.conn()
	if err != nil {
		return clientResp{}, err
	}
	id := c.ids.Add(1)
	ch := make(chan clientResp, 1)
	cc.mu.Lock()
	if cc.err != nil {
		err := cc.err
		cc.mu.Unlock()
		return clientResp{}, err
	}
	cc.waiters[id] = ch
	cc.mu.Unlock()
	if err := cc.writeFrame(op, id, appendPayload); err != nil {
		cc.fail(err)
		return clientResp{}, err
	}
	select {
	case resp := <-ch:
		if resp.err != nil {
			return clientResp{}, resp.err
		}
		return resp, nil
	case <-ctx.Done():
		cc.mu.Lock()
		delete(cc.waiters, id)
		cc.mu.Unlock()
		//lint:ignore errcheck cancel delivery is best effort; the request times out server-side regardless
		cc.writeFrame(OpCancel, id, nil)
		return clientResp{}, ctx.Err()
	}
}

// respError converts an error-flagged response into a *StatusError.
func respError(resp clientResp) error {
	if resp.flags&FlagError == 0 {
		return nil
	}
	se, perr := ParseErrorPayload(resp.payload)
	if perr != nil {
		return perr
	}
	return se
}

// Search runs one pattern search. both selects both-strand search,
// matching the HTTP API's strands="both".
func (c *Client) Search(ctx context.Context, pattern string, both bool) (SearchResult, error) {
	resp, err := c.do(ctx, OpSearch, func(b []byte) []byte {
		return AppendSearchRequest(b, []byte(pattern), both)
	})
	if err != nil {
		return SearchResult{}, err
	}
	if err := respError(resp); err != nil {
		return SearchResult{}, err
	}
	return ParseSearchResult(resp.payload)
}

// Classify runs one read classification. minFraction ≤ 0 takes the
// server default.
func (c *Client) Classify(ctx context.Context, read string, minFraction float64) (ClassifyResult, error) {
	resp, err := c.do(ctx, OpClassify, func(b []byte) []byte {
		return AppendClassifyRequest(b, []byte(read), minFraction)
	})
	if err != nil {
		return ClassifyResult{}, err
	}
	if err := respError(resp); err != nil {
		return ClassifyResult{}, err
	}
	return ParseClassifyResult(resp.payload)
}

// Batch runs a multi-pattern search. workers ≤ 0 takes the server
// default.
func (c *Client) Batch(ctx context.Context, patterns []string, workers int) (BatchResult, error) {
	resp, err := c.do(ctx, OpBatch, func(b []byte) []byte {
		return AppendBatchRequest(b, patterns, workers)
	})
	if err != nil {
		return BatchResult{}, err
	}
	if err := respError(resp); err != nil {
		return BatchResult{}, err
	}
	return ParseBatchResult(resp.payload)
}

// Stats fetches the server's library statistics.
func (c *Client) Stats(ctx context.Context) (StatsResult, error) {
	resp, err := c.do(ctx, OpStats, nil)
	if err != nil {
		return StatsResult{}, err
	}
	if err := respError(resp); err != nil {
		return StatsResult{}, err
	}
	return ParseStatsResult(resp.payload)
}

// Ping round-trips an empty frame, verifying liveness and protocol
// agreement.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.do(ctx, OpPing, nil)
	if err != nil {
		return err
	}
	if err := respError(resp); err != nil {
		return err
	}
	if resp.opcode != OpPing {
		return fmt.Errorf("wire: ping answered with %s frame", resp.opcode)
	}
	return nil
}
