// Package wire implements the BioHD binary wire protocol: a
// length-prefixed little-endian frame format served over long-lived
// TCP connections beside the HTTP API. It exists to strip the
// per-query transport tax off small probes — request parsing, header
// churn, and JSON encode/decode dominate the ~46µs arena scan over
// HTTP/1.1 — and to keep every connection fully pipelined so
// concurrent in-flight requests from even a single client fill
// core.LookupBlock probe blocks through the coalescer.
//
// Frame grammar (all integers little-endian):
//
//	header (24 bytes):
//	  [0:4)   magic      0x31444842 ("BHD1" on the wire)
//	  [4]     version    1
//	  [5]     opcode     SEARCH | CLASSIFY | BATCH | STATS | PING | CANCEL | ERR
//	  [6:8)   flags      bit 0 response, bit 1 error
//	  [8:16)  requestID  caller-chosen pipelining key
//	  [16:20) payloadLen bytes of payload following the header
//	  [20:24) headerCRC  CRC-32C (Castagnoli) of header bytes [0:20)
//	payload (payloadLen bytes): opcode-specific, see Append*/Parse*.
//
// Requests and responses carry the same requestID; responses are
// written in completion order, not submission order, which is what
// makes pipelining useful. An application-level failure (a search
// that would have been an HTTP 4xx/5xx) sets FlagError on a response
// frame whose payload is {code u16, msgLen u32, msg} and leaves the
// connection open. A protocol-level failure — bad magic, bad CRC,
// oversized payload, duplicate in-flight requestID, a truncated or
// over-long payload — is answered with an OpErr frame and the
// connection closes; malformed input must error, never panic.
//
// The encode/decode layer is allocation-free in steady state: all
// encoders are self-append (buf = Append*(buf, …)) into caller-owned
// buffers, and parsers return subslices of the input frame. The
// //biohd:hotpath annotations below root the lint proof of that.
package wire

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
)

const (
	// Magic opens every frame; the four bytes read "BHD1" on the wire.
	Magic uint32 = 0x31444842
	// Version is the protocol revision this package speaks. A frame
	// with any other version is a protocol error: the format has no
	// negotiation, matching the one-binary deployments it serves — so
	// any payload layout change must bump this constant. Revision 2
	// prepended the backend string to the STATS result payload.
	Version = 2
	// HeaderSize is the fixed frame-header length in bytes.
	HeaderSize = 24
	// DefaultMaxFrame caps one frame's payload when the caller does
	// not choose a cap — the same bound the HTTP server puts on
	// request bodies.
	DefaultMaxFrame = 16 << 20
)

// Opcode selects the operation a frame carries.
type Opcode uint8

// Frame opcodes. OpErr only ever appears on a response: it reports a
// protocol-level failure and the server closes the connection after
// writing it.
const (
	OpSearch   Opcode = 1
	OpClassify Opcode = 2
	OpBatch    Opcode = 3
	OpStats    Opcode = 4
	OpPing     Opcode = 5
	OpCancel   Opcode = 6
	OpErr      Opcode = 7
)

// String names the opcode for metric labels and error messages.
func (op Opcode) String() string {
	switch op {
	case OpSearch:
		return "search"
	case OpClassify:
		return "classify"
	case OpBatch:
		return "batch"
	case OpStats:
		return "stats"
	case OpPing:
		return "ping"
	case OpCancel:
		return "cancel"
	case OpErr:
		return "err"
	}
	return "unknown"
}

// Header flag bits.
const (
	// FlagResponse marks a frame travelling server→client.
	FlagResponse uint16 = 1 << 0
	// FlagError marks a response whose payload is {code u16, msgLen
	// u32, msg} instead of the opcode's result encoding.
	FlagError uint16 = 1 << 1
)

// Protocol-level sentinel errors. Every malformed input maps to one
// of these (possibly wrapped); none of the parsers ever panics.
var (
	ErrShortHeader  = errors.New("wire: short frame header")
	ErrBadMagic     = errors.New("wire: bad frame magic")
	ErrBadVersion   = errors.New("wire: unsupported protocol version")
	ErrBadCRC       = errors.New("wire: frame header CRC mismatch")
	ErrFrameTooBig  = errors.New("wire: frame payload exceeds the connection cap")
	ErrShortPayload = errors.New("wire: truncated frame payload")
	ErrTrailingData = errors.New("wire: frame payload has trailing bytes")
	ErrBadOpcode    = errors.New("wire: unknown opcode")
	ErrBadStrands   = errors.New("wire: search strands byte must be 0 (forward) or 1 (both)")
	ErrBadFlags     = errors.New("wire: request frame carries response flags")
	ErrDuplicateID  = errors.New("wire: duplicate in-flight requestID")
)

// crcTable is the Castagnoli polynomial used by the header checksum —
// hardware-accelerated on amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Header is the decoded fixed frame header. Magic, version, and CRC
// are validated by ParseHeader and supplied by PutHeader, so they do
// not appear here.
type Header struct {
	Opcode     Opcode
	Flags      uint16
	RequestID  uint64
	PayloadLen uint32
}

// PutHeader encodes h into b[0:HeaderSize], computing the header CRC.
// The caller guarantees len(b) ≥ HeaderSize.
//
//biohd:hotpath
func PutHeader(b []byte, h Header) {
	binary.LittleEndian.PutUint32(b[0:4], Magic)
	b[4] = Version
	b[5] = byte(h.Opcode)
	binary.LittleEndian.PutUint16(b[6:8], h.Flags)
	binary.LittleEndian.PutUint64(b[8:16], h.RequestID)
	binary.LittleEndian.PutUint32(b[16:20], h.PayloadLen)
	binary.LittleEndian.PutUint32(b[20:24], crc32.Checksum(b[0:20], crcTable))
}

// ParseHeader decodes and validates a frame header: length, magic,
// version, and CRC. It does not bound PayloadLen — the connection
// owns that cap (see ErrFrameTooBig).
//
//biohd:hotpath
func ParseHeader(b []byte) (Header, error) {
	var h Header
	if len(b) < HeaderSize {
		return h, ErrShortHeader
	}
	if binary.LittleEndian.Uint32(b[0:4]) != Magic {
		return h, ErrBadMagic
	}
	if b[4] != Version {
		return h, ErrBadVersion
	}
	if binary.LittleEndian.Uint32(b[20:24]) != crc32.Checksum(b[0:20], crcTable) {
		return h, ErrBadCRC
	}
	h.Opcode = Opcode(b[5])
	h.Flags = binary.LittleEndian.Uint16(b[6:8])
	h.RequestID = binary.LittleEndian.Uint64(b[8:16])
	h.PayloadLen = binary.LittleEndian.Uint32(b[16:20])
	return h, nil
}

// BeginFrame reserves header space at the end of buf and returns the
// extended buffer plus the header's offset. The caller appends the
// payload with the Append* encoders and seals the frame with
// FinishFrame.
//
//biohd:hotpath
func BeginFrame(buf []byte) ([]byte, int) {
	off := len(buf)
	var zero [HeaderSize]byte
	buf = append(buf, zero[:]...)
	return buf, off
}

// FinishFrame writes the header for the frame whose payload occupies
// buf[off+HeaderSize:], as laid down by BeginFrame plus the payload
// encoders.
//
//biohd:hotpath
func FinishFrame(buf []byte, off int, op Opcode, flags uint16, id uint64) {
	PutHeader(buf[off:off+HeaderSize], Header{
		Opcode:     op,
		Flags:      flags,
		RequestID:  id,
		PayloadLen: uint32(len(buf) - off - HeaderSize),
	})
}

// Fixed-width little-endian append/parse helpers. Appends are the
// self-assign form into caller-owned buffers; parses advance an
// offset and report truncation with ErrShortPayload.

//biohd:hotpath
func appendU8(buf []byte, v uint8) []byte {
	buf = append(buf, v)
	return buf
}

//biohd:hotpath
func appendU16(buf []byte, v uint16) []byte {
	buf = append(buf, byte(v), byte(v>>8))
	return buf
}

//biohd:hotpath
func appendU32(buf []byte, v uint32) []byte {
	buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	return buf
}

//biohd:hotpath
func appendU64(buf []byte, v uint64) []byte {
	buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	return buf
}

//biohd:hotpath
func appendF64(buf []byte, v float64) []byte {
	return appendU64(buf, math.Float64bits(v))
}

//biohd:hotpath
func parseU8(p []byte, off int) (uint8, int, error) {
	if off+1 > len(p) {
		return 0, off, ErrShortPayload
	}
	return p[off], off + 1, nil
}

//biohd:hotpath
func parseU16(p []byte, off int) (uint16, int, error) {
	if off+2 > len(p) {
		return 0, off, ErrShortPayload
	}
	return binary.LittleEndian.Uint16(p[off:]), off + 2, nil
}

//biohd:hotpath
func parseU32(p []byte, off int) (uint32, int, error) {
	if off+4 > len(p) {
		return 0, off, ErrShortPayload
	}
	return binary.LittleEndian.Uint32(p[off:]), off + 4, nil
}

//biohd:hotpath
func parseU64(p []byte, off int) (uint64, int, error) {
	if off+8 > len(p) {
		return 0, off, ErrShortPayload
	}
	return binary.LittleEndian.Uint64(p[off:]), off + 8, nil
}

//biohd:hotpath
func parseF64(p []byte, off int) (float64, int, error) {
	v, off, err := parseU64(p, off)
	return math.Float64frombits(v), off, err
}

// parseBytes reads a u32 length prefix and returns that many bytes as
// a subslice of p — no copy, so the result aliases the frame buffer
// and must not outlive it.
//
//biohd:hotpath
func parseBytes(p []byte, off int) ([]byte, int, error) {
	n, off, err := parseU32(p, off)
	if err != nil {
		return nil, off, err
	}
	if uint32(len(p)-off) < n {
		return nil, off, ErrShortPayload
	}
	return p[off : off+int(n)], off + int(n), nil
}

// SEARCH request payload: {strands u8 (0 forward, 1 both), patLen
// u32, pattern}. The pattern is uppercase ACGT text, exactly the
// bytes the HTTP API takes in its JSON "pattern" field.

// AppendSearchRequest encodes a SEARCH request payload.
//
//biohd:hotpath
func AppendSearchRequest(buf []byte, pattern []byte, both bool) []byte {
	var b uint8
	if both {
		b = 1
	}
	buf = appendU8(buf, b)
	buf = appendU32(buf, uint32(len(pattern)))
	buf = append(buf, pattern...)
	return buf
}

// ParseSearchRequest decodes a SEARCH request payload. The pattern
// aliases p.
//
//biohd:hotpath
func ParseSearchRequest(p []byte) (pattern []byte, both bool, err error) {
	b, off, err := parseU8(p, 0)
	if err != nil {
		return nil, false, err
	}
	if b > 1 {
		return nil, false, ErrBadStrands
	}
	pattern, off, err = parseBytes(p, off)
	if err != nil {
		return nil, false, err
	}
	if off != len(p) {
		return nil, false, ErrTrailingData
	}
	return pattern, b == 1, nil
}

// CLASSIFY request payload: {minFraction f64, readLen u32, read}.

// AppendClassifyRequest encodes a CLASSIFY request payload.
//
//biohd:hotpath
func AppendClassifyRequest(buf []byte, read []byte, minFraction float64) []byte {
	buf = appendF64(buf, minFraction)
	buf = appendU32(buf, uint32(len(read)))
	buf = append(buf, read...)
	return buf
}

// ParseClassifyRequest decodes a CLASSIFY request payload. The read
// aliases p.
//
//biohd:hotpath
func ParseClassifyRequest(p []byte) (read []byte, minFraction float64, err error) {
	minFraction, off, err := parseF64(p, 0)
	if err != nil {
		return nil, 0, err
	}
	read, off, err = parseBytes(p, off)
	if err != nil {
		return nil, 0, err
	}
	if off != len(p) {
		return nil, 0, ErrTrailingData
	}
	return read, minFraction, nil
}

// BATCH request payload: {workers u32, count u32, count×(patLen u32,
// pattern)}.

// AppendBatchRequest encodes a BATCH request payload.
func AppendBatchRequest(buf []byte, patterns []string, workers int) []byte {
	buf = appendU32(buf, uint32(workers))
	buf = appendU32(buf, uint32(len(patterns)))
	for _, p := range patterns {
		buf = appendU32(buf, uint32(len(p)))
		buf = append(buf, p...)
	}
	return buf
}

// ParseBatchRequest decodes a BATCH request payload, appending each
// pattern (a subslice of p) to dst. Unlike the single-query parsers
// it allocates when dst needs to grow — batch payloads are inherently
// O(count) — so it is not a hotpath root.
func ParseBatchRequest(p []byte, dst [][]byte) (patterns [][]byte, workers int, err error) {
	w, off, err := parseU32(p, 0)
	if err != nil {
		return nil, 0, err
	}
	count, off, err := parseU32(p, off)
	if err != nil {
		return nil, 0, err
	}
	// A count that cannot possibly fit the remaining payload (every
	// pattern needs at least its length prefix) is malformed; checking
	// here keeps a hostile count from sizing anything.
	if uint64(count)*4 > uint64(len(p)-off) {
		return nil, 0, ErrShortPayload
	}
	patterns = dst[:0]
	for i := uint32(0); i < count; i++ {
		var pat []byte
		pat, off, err = parseBytes(p, off)
		if err != nil {
			return nil, 0, err
		}
		patterns = append(patterns, pat)
	}
	if off != len(p) {
		return nil, 0, ErrTrailingData
	}
	return patterns, int(w), nil
}

// Result types. Field sets and JSON tags mirror the HTTP API's
// response structs exactly — the golden-equivalence tests marshal
// both and compare bytes, which is what pins the two transports to
// identical answers.

// Match is one verified match, the wire twin of the HTTP MatchJSON.
type Match struct {
	Ref      string `json:"ref"`
	Offset   int    `json:"offset"`
	Distance int    `json:"distance"`
	Strand   string `json:"strand"`
}

// SearchResult is a SEARCH response, the wire twin of the HTTP
// SearchResponse.
type SearchResult struct {
	Matches []Match `json:"matches"`
	Probes  int     `json:"bucketProbes"`
}

// ClassifyResult is a CLASSIFY response, the wire twin of the HTTP
// ClassifyResponse.
type ClassifyResult struct {
	Ref      string  `json:"ref"`
	Offset   int     `json:"offset"`
	Votes    int     `json:"votes"`
	Windows  int     `json:"windows"`
	Fraction float64 `json:"fraction"`
}

// BatchItem is one pattern's result in a BATCH response.
type BatchItem struct {
	Matches []Match `json:"matches"`
	Error   string  `json:"error,omitempty"`
}

// BatchResult is a BATCH response, the wire twin of the HTTP
// BatchResponse.
type BatchResult struct {
	Results  []BatchItem `json:"results"`
	Probes   int         `json:"bucketProbes"`
	Canceled bool        `json:"canceled,omitempty"`
}

// StatsResult is a STATS response, the wire twin of the HTTP
// StatsResponse (field-for-field, so the adapter converts between
// them directly).
type StatsResult struct {
	Backend       string  `json:"backend"`
	References    int     `json:"references"`
	Windows       int     `json:"windows"`
	Buckets       int     `json:"buckets"`
	Dim           int     `json:"dim"`
	Window        int     `json:"window"`
	Stride        int     `json:"stride"`
	Capacity      int     `json:"capacity"`
	Approx        bool    `json:"approx"`
	Tolerance     int     `json:"tolerance"`
	Threshold     float64 `json:"threshold"`
	MemBytes      int64   `json:"memoryBytes"`
	MappedBytes   int64   `json:"mappedBytes"`
	ResidentBytes int64   `json:"residentBytes"`
	Segments      int     `json:"segments"`
	Tombstones    float64 `json:"tombstoneRatio"`
}

// StatusError is an application-level failure carried in a FlagError
// response: the same status code and message the HTTP API would have
// answered with. The connection stays open.
type StatusError struct {
	Code int
	Msg  string
}

// Error implements error.
func (e *StatusError) Error() string { return e.Msg }

// Strand bytes on the wire.
const (
	strandForward = '+'
	strandReverse = '-'
)

// appendMatch encodes one match: {refLen u32, ref, offset u64,
// distance u32, strand u8}.
//
//biohd:hotpath
func appendMatch(buf []byte, m *Match) []byte {
	buf = appendU32(buf, uint32(len(m.Ref)))
	buf = append(buf, m.Ref...)
	buf = appendU64(buf, uint64(m.Offset))
	buf = appendU32(buf, uint32(m.Distance))
	s := uint8(strandForward)
	if m.Strand == "-" {
		s = strandReverse
	}
	buf = appendU8(buf, s)
	return buf
}

// parseMatch decodes one match. The ref string is copied out of p so
// results survive frame-buffer reuse; the per-match allocations make
// the client-side parsers non-hotpath by design.
func parseMatch(p []byte, off int) (Match, int, error) {
	var m Match
	ref, off, err := parseBytes(p, off)
	if err != nil {
		return m, off, err
	}
	o, off, err := parseU64(p, off)
	if err != nil {
		return m, off, err
	}
	d, off, err := parseU32(p, off)
	if err != nil {
		return m, off, err
	}
	s, off, err := parseU8(p, off)
	if err != nil {
		return m, off, err
	}
	m.Ref = string(ref)
	m.Offset = int(o)
	m.Distance = int(int32(d))
	m.Strand = "+"
	if s == strandReverse {
		m.Strand = "-"
	}
	return m, off, nil
}

// AppendSearchResult encodes a SEARCH response payload: {probes u64,
// nMatches u32, matches}.
//
//biohd:hotpath
func AppendSearchResult(buf []byte, res *SearchResult) []byte {
	buf = appendU64(buf, uint64(res.Probes))
	buf = appendU32(buf, uint32(len(res.Matches)))
	for i := range res.Matches {
		buf = appendMatch(buf, &res.Matches[i])
	}
	return buf
}

// ParseSearchResult decodes a SEARCH response payload.
func ParseSearchResult(p []byte) (SearchResult, error) {
	var res SearchResult
	probes, off, err := parseU64(p, 0)
	if err != nil {
		return res, err
	}
	n, off, err := parseU32(p, off)
	if err != nil {
		return res, err
	}
	res.Probes = int(probes)
	res.Matches = make([]Match, 0, minCap(n, p, off))
	for i := uint32(0); i < n; i++ {
		var m Match
		m, off, err = parseMatch(p, off)
		if err != nil {
			return res, err
		}
		res.Matches = append(res.Matches, m)
	}
	if off != len(p) {
		return res, ErrTrailingData
	}
	return res, nil
}

// minCap bounds a declared element count by what the remaining
// payload could possibly hold (every match needs ≥ 17 bytes), so a
// hostile count cannot size a huge slice before parsing fails.
func minCap(n uint32, p []byte, off int) int {
	max := (len(p) - off) / 17
	if int(n) < max {
		return int(n)
	}
	return max
}

// AppendClassifyResult encodes a CLASSIFY response payload: {refLen
// u32, ref, offset u64, votes u32, windows u32, fraction f64}.
//
//biohd:hotpath
func AppendClassifyResult(buf []byte, res *ClassifyResult) []byte {
	buf = appendU32(buf, uint32(len(res.Ref)))
	buf = append(buf, res.Ref...)
	buf = appendU64(buf, uint64(res.Offset))
	buf = appendU32(buf, uint32(res.Votes))
	buf = appendU32(buf, uint32(res.Windows))
	buf = appendF64(buf, res.Fraction)
	return buf
}

// ParseClassifyResult decodes a CLASSIFY response payload.
func ParseClassifyResult(p []byte) (ClassifyResult, error) {
	var res ClassifyResult
	ref, off, err := parseBytes(p, 0)
	if err != nil {
		return res, err
	}
	o, off, err := parseU64(p, off)
	if err != nil {
		return res, err
	}
	votes, off, err := parseU32(p, off)
	if err != nil {
		return res, err
	}
	windows, off, err := parseU32(p, off)
	if err != nil {
		return res, err
	}
	frac, off, err := parseF64(p, off)
	if err != nil {
		return res, err
	}
	if off != len(p) {
		return res, ErrTrailingData
	}
	res.Ref = string(ref)
	res.Offset = int(o)
	res.Votes = int(votes)
	res.Windows = int(windows)
	res.Fraction = frac
	return res, nil
}

// AppendBatchResult encodes a BATCH response payload: {probes u64,
// canceled u8, count u32, count×(errLen u32, err, nMatches u32,
// matches)}.
//
//biohd:hotpath
func AppendBatchResult(buf []byte, res *BatchResult) []byte {
	buf = appendU64(buf, uint64(res.Probes))
	var c uint8
	if res.Canceled {
		c = 1
	}
	buf = appendU8(buf, c)
	buf = appendU32(buf, uint32(len(res.Results)))
	for i := range res.Results {
		item := &res.Results[i]
		buf = appendU32(buf, uint32(len(item.Error)))
		buf = append(buf, item.Error...)
		buf = appendU32(buf, uint32(len(item.Matches)))
		for j := range item.Matches {
			buf = appendMatch(buf, &item.Matches[j])
		}
	}
	return buf
}

// ParseBatchResult decodes a BATCH response payload.
func ParseBatchResult(p []byte) (BatchResult, error) {
	var res BatchResult
	probes, off, err := parseU64(p, 0)
	if err != nil {
		return res, err
	}
	c, off, err := parseU8(p, off)
	if err != nil {
		return res, err
	}
	count, off, err := parseU32(p, off)
	if err != nil {
		return res, err
	}
	res.Probes = int(probes)
	res.Canceled = c != 0
	// Every item needs ≥ 8 bytes of length prefixes.
	maxItems := (len(p) - off) / 8
	if int(count) < maxItems {
		maxItems = int(count)
	}
	res.Results = make([]BatchItem, 0, maxItems)
	for i := uint32(0); i < count; i++ {
		var item BatchItem
		var msg []byte
		msg, off, err = parseBytes(p, off)
		if err != nil {
			return res, err
		}
		item.Error = string(msg)
		var n uint32
		n, off, err = parseU32(p, off)
		if err != nil {
			return res, err
		}
		item.Matches = make([]Match, 0, minCap(n, p, off))
		for j := uint32(0); j < n; j++ {
			var m Match
			m, off, err = parseMatch(p, off)
			if err != nil {
				return res, err
			}
			item.Matches = append(item.Matches, m)
		}
		res.Results = append(res.Results, item)
	}
	if off != len(p) {
		return res, ErrTrailingData
	}
	return res, nil
}

// AppendStatsResult encodes a STATS response payload.
//
//biohd:hotpath
func AppendStatsResult(buf []byte, res *StatsResult) []byte {
	buf = appendU32(buf, uint32(len(res.Backend)))
	buf = append(buf, res.Backend...)
	buf = appendU64(buf, uint64(res.References))
	buf = appendU64(buf, uint64(res.Windows))
	buf = appendU64(buf, uint64(res.Buckets))
	buf = appendU32(buf, uint32(res.Dim))
	buf = appendU32(buf, uint32(res.Window))
	buf = appendU32(buf, uint32(res.Stride))
	buf = appendU32(buf, uint32(res.Capacity))
	var a uint8
	if res.Approx {
		a = 1
	}
	buf = appendU8(buf, a)
	buf = appendU64(buf, uint64(res.Tolerance))
	buf = appendF64(buf, res.Threshold)
	buf = appendU64(buf, uint64(res.MemBytes))
	buf = appendU64(buf, uint64(res.MappedBytes))
	buf = appendU64(buf, uint64(res.ResidentBytes))
	buf = appendU64(buf, uint64(res.Segments))
	buf = appendF64(buf, res.Tombstones)
	return buf
}

// ParseStatsResult decodes a STATS response payload.
func ParseStatsResult(p []byte) (StatsResult, error) {
	var res StatsResult
	var err error
	var off int
	var u uint64
	var w uint32
	var b uint8
	backend, off, err := parseBytes(p, off)
	if err != nil {
		return res, err
	}
	res.Backend = string(backend)
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.References = int(u)
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.Windows = int(u)
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.Buckets = int(u)
	if w, off, err = parseU32(p, off); err != nil {
		return res, err
	}
	res.Dim = int(w)
	if w, off, err = parseU32(p, off); err != nil {
		return res, err
	}
	res.Window = int(w)
	if w, off, err = parseU32(p, off); err != nil {
		return res, err
	}
	res.Stride = int(w)
	if w, off, err = parseU32(p, off); err != nil {
		return res, err
	}
	res.Capacity = int(w)
	if b, off, err = parseU8(p, off); err != nil {
		return res, err
	}
	res.Approx = b != 0
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.Tolerance = int(u)
	if res.Threshold, off, err = parseF64(p, off); err != nil {
		return res, err
	}
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.MemBytes = int64(u)
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.MappedBytes = int64(u)
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.ResidentBytes = int64(u)
	if u, off, err = parseU64(p, off); err != nil {
		return res, err
	}
	res.Segments = int(u)
	if res.Tombstones, off, err = parseF64(p, off); err != nil {
		return res, err
	}
	if off != len(p) {
		return res, ErrTrailingData
	}
	return res, nil
}

// AppendErrorPayload encodes the FlagError / OpErr payload: {code
// u16, msgLen u32, msg}.
//
//biohd:hotpath
func AppendErrorPayload(buf []byte, code int, msg string) []byte {
	buf = appendU16(buf, uint16(code))
	buf = appendU32(buf, uint32(len(msg)))
	buf = append(buf, msg...)
	return buf
}

// ParseErrorPayload decodes a FlagError / OpErr payload into a
// StatusError.
func ParseErrorPayload(p []byte) (*StatusError, error) {
	code, off, err := parseU16(p, 0)
	if err != nil {
		return nil, err
	}
	msg, off, err := parseBytes(p, off)
	if err != nil {
		return nil, err
	}
	if off != len(p) {
		return nil, ErrTrailingData
	}
	return &StatusError{Code: int(code), Msg: string(msg)}, nil
}

// validRequestOp reports whether op may open a request frame.
//
//biohd:hotpath
func validRequestOp(op Opcode) bool {
	switch op {
	case OpSearch, OpClassify, OpBatch, OpStats, OpPing, OpCancel:
		return true
	}
	return false
}
