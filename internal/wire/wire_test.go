package wire

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// crcOf seals a header prefix for tests that hand-corrupt fields.
func crcOf(b []byte) uint32 {
	return crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli))
}

func assertJSONEqual(t *testing.T, got, want interface{}) {
	t.Helper()
	gb, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	wb, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if string(gb) != string(wb) {
		t.Fatalf("mismatch:\n got %s\nwant %s", gb, wb)
	}
}

// fakeBackend answers canned results and records concurrency. block,
// when non-nil, stalls Search until the channel closes or the request
// context cancels.
type fakeBackend struct {
	block   chan struct{}
	inFly   atomic.Int64
	maxFly  atomic.Int64
	ctxErrs atomic.Int64
}

func (f *fakeBackend) Search(ctx context.Context, pattern []byte, both bool) (SearchResult, error) {
	n := f.inFly.Add(1)
	defer f.inFly.Add(-1)
	for {
		max := f.maxFly.Load()
		if n <= max || f.maxFly.CompareAndSwap(max, n) {
			break
		}
	}
	if f.block != nil {
		select {
		case <-f.block:
		case <-ctx.Done():
			f.ctxErrs.Add(1)
			return SearchResult{}, ctx.Err()
		}
	}
	if string(pattern) == "ERR" {
		return SearchResult{}, &StatusError{Code: 422, Msg: "planted failure"}
	}
	strand := "+"
	if both {
		strand = "-"
	}
	return SearchResult{
		Matches: []Match{{Ref: string(pattern), Offset: len(pattern), Strand: strand}},
		Probes:  1,
	}, nil
}

func (f *fakeBackend) Classify(ctx context.Context, read []byte, minFraction float64) (ClassifyResult, error) {
	return ClassifyResult{Ref: string(read), Fraction: minFraction, Votes: 1, Windows: 2}, nil
}

func (f *fakeBackend) Batch(ctx context.Context, patterns [][]byte, workers int) (BatchResult, error) {
	res := BatchResult{Results: make([]BatchItem, len(patterns)), Probes: len(patterns)}
	for i, p := range patterns {
		res.Results[i] = BatchItem{Matches: []Match{{Ref: string(p), Strand: "+"}}}
	}
	return res, nil
}

func (f *fakeBackend) Stats() StatsResult {
	return StatsResult{Backend: "hdc", References: 1, Dim: 8192, Window: 32}
}

// startServer runs a wire server over a loopback listener and returns
// its address.
func startServer(t *testing.T, b Backend, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv := NewServer(b, nil, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(ln); !errors.Is(err, ErrServerClosed) {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	return srv, ln.Addr().String()
}

func dialClient(t *testing.T, addr string, cfg ClientConfig) *Client {
	t.Helper()
	cl, err := Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestRoundTrips(t *testing.T) {
	fb := &fakeBackend{}
	_, addr := startServer(t, fb, ServerConfig{})
	cl := dialClient(t, addr, ClientConfig{})
	ctx := context.Background()

	if err := cl.Ping(ctx); err != nil {
		t.Fatalf("ping: %v", err)
	}
	sr, err := cl.Search(ctx, "ACGT", false)
	if err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, sr, SearchResult{
		Matches: []Match{{Ref: "ACGT", Offset: 4, Strand: "+"}}, Probes: 1,
	})
	cr, err := cl.Classify(ctx, "READ", 0.75)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Ref != "READ" || cr.Fraction != 0.75 {
		t.Fatalf("classify: %+v", cr)
	}
	br, err := cl.Batch(ctx, []string{"AA", "CC"}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 2 || br.Results[1].Matches[0].Ref != "CC" {
		t.Fatalf("batch: %+v", br)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dim != 8192 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestApplicationErrorKeepsConnection(t *testing.T) {
	fb := &fakeBackend{}
	_, addr := startServer(t, fb, ServerConfig{})
	cl := dialClient(t, addr, ClientConfig{Conns: 1})
	ctx := context.Background()
	_, err := cl.Search(ctx, "ERR", false)
	var se *StatusError
	if !errors.As(err, &se) || se.Code != 422 || se.Msg != "planted failure" {
		t.Fatalf("want StatusError 422, got %v", err)
	}
	// The connection survived the application error.
	if _, err := cl.Search(ctx, "ACGT", false); err != nil {
		t.Fatalf("connection did not survive: %v", err)
	}
}

// TestPipelining proves concurrent requests on ONE connection execute
// concurrently server-side: all in-flight searches block in the
// backend simultaneously before any response is written.
func TestPipelining(t *testing.T) {
	const depth = 8
	fb := &fakeBackend{block: make(chan struct{})}
	_, addr := startServer(t, fb, ServerConfig{ConnWorkers: depth})
	cl := dialClient(t, addr, ClientConfig{Conns: 1})
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < depth; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Search(ctx, "ACGT", false); err != nil {
				t.Errorf("search: %v", err)
			}
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for fb.inFly.Load() < depth {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d requests in flight", fb.inFly.Load(), depth)
		}
		time.Sleep(time.Millisecond)
	}
	close(fb.block)
	wg.Wait()
	if max := fb.maxFly.Load(); max < depth {
		t.Fatalf("max concurrency %d, want %d", max, depth)
	}
}

// TestCancelVacates proves a client context cancellation reaches the
// server-side request context, and that the connection keeps working.
func TestCancelVacates(t *testing.T) {
	fb := &fakeBackend{block: make(chan struct{})}
	defer close(fb.block)
	_, addr := startServer(t, fb, ServerConfig{})
	cl := dialClient(t, addr, ClientConfig{Conns: 1})

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := cl.Search(ctx, "ACGT", false)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for fb.inFly.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The CANCEL frame cancels the server-side context.
	for fb.ctxErrs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server-side context never canceled")
		}
		time.Sleep(time.Millisecond)
	}
	// The connection survived; the late error response is discarded.
	if err := cl.Ping(context.Background()); err != nil {
		t.Fatalf("connection did not survive cancel: %v", err)
	}
}

// readAllFrames drains a raw connection, returning every decoded
// frame until EOF.
func readAllFrames(t *testing.T, conn net.Conn) []struct {
	H Header
	P []byte
} {
	t.Helper()
	var frames []struct {
		H Header
		P []byte
	}
	for {
		var hdr [HeaderSize]byte
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return frames
		}
		h, err := ParseHeader(hdr[:])
		if err != nil {
			t.Fatalf("server sent malformed header: %v", err)
		}
		p := make([]byte, h.PayloadLen)
		if _, err := io.ReadFull(conn, p); err != nil {
			t.Fatalf("server truncated payload: %v", err)
		}
		frames = append(frames, struct {
			H Header
			P []byte
		}{h, p})
	}
}

// TestCorruptionMatrix drives raw malformed bytes at a live server:
// every case must answer with an ERR frame (when a header was
// decodable enough to warrant one) and close the connection — the
// server must never panic and never leave the connection open.
func TestCorruptionMatrix(t *testing.T) {
	goodHeader := func(op Opcode, id uint64, payloadLen uint32) []byte {
		b := make([]byte, HeaderSize)
		PutHeader(b, Header{Opcode: op, RequestID: id, PayloadLen: payloadLen})
		return b
	}
	cases := []struct {
		name    string
		bytes   func() []byte
		wantErr bool // an ERR frame must arrive before the close
	}{
		{"truncated header", func() []byte {
			return goodHeader(OpPing, 1, 0)[:10]
		}, false},
		{"bad magic", func() []byte {
			b := goodHeader(OpPing, 1, 0)
			b[0] ^= 0xff
			return b
		}, true},
		{"bad version", func() []byte {
			b := goodHeader(OpPing, 1, 0)
			b[4] = Version + 9
			binary.LittleEndian.PutUint32(b[20:24], crcOf(b[:20]))
			return b
		}, true},
		{"bad crc", func() []byte {
			b := goodHeader(OpPing, 1, 0)
			b[21] ^= 0xff
			return b
		}, true},
		{"oversized payloadLen", func() []byte {
			return goodHeader(OpSearch, 1, 1<<20) // above the test MaxFrame
		}, true},
		{"bad opcode", func() []byte {
			return goodHeader(Opcode(200), 1, 0)
		}, true},
		{"response flags on request", func() []byte {
			b := make([]byte, HeaderSize)
			PutHeader(b, Header{Opcode: OpPing, Flags: FlagResponse, RequestID: 1})
			return b
		}, true},
		{"garbage search payload", func() []byte {
			payload := []byte{9, 9, 9} // strand byte out of range + truncated
			b := goodHeader(OpSearch, 1, uint32(len(payload)))
			return append(b, payload...)
		}, true},
	}
	fb := &fakeBackend{}
	_, addr := startServer(t, fb, ServerConfig{MaxFrame: 1 << 16})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			if _, err := conn.Write(tc.bytes()); err != nil {
				t.Fatal(err)
			}
			// Half-close so a case the server cannot even attribute (a
			// truncated header) still ends promptly with EOF.
			if tcp, ok := conn.(*net.TCPConn); ok {
				if err := tcp.CloseWrite(); err != nil {
					t.Fatal(err)
				}
			}
			if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
				t.Fatal(err)
			}
			frames := readAllFrames(t, conn)
			if !tc.wantErr {
				if len(frames) != 0 {
					t.Fatalf("unexpected frames: %+v", frames)
				}
				return
			}
			if len(frames) == 0 {
				t.Fatal("no ERR frame before close")
			}
			last := frames[len(frames)-1]
			if last.H.Opcode != OpErr || last.H.Flags&FlagError == 0 {
				t.Fatalf("last frame not an error: %+v", last.H)
			}
			if se, err := ParseErrorPayload(last.P); err != nil || se.Code != 400 {
				t.Fatalf("error payload: %+v, %v", se, err)
			}
		})
	}
}

// TestDuplicateRequestID pins the in-flight uniqueness rule: a second
// frame reusing a live requestID is a protocol error that tears the
// connection down (after the first request completes).
func TestDuplicateRequestID(t *testing.T) {
	fb := &fakeBackend{block: make(chan struct{})}
	_, addr := startServer(t, fb, ServerConfig{})
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	frame := encodeFrame(OpSearch, 0, 77, AppendSearchRequest(nil, []byte("ACGT"), false))
	// Two frames, same id, back to back. The first blocks in the
	// backend, so it is still in flight when the second arrives.
	if _, err := conn.Write(append(append([]byte(nil), frame...), frame...)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fb.inFly.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}
	close(fb.block) // let the first request finish so the conn can drain
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	frames := readAllFrames(t, conn)
	if len(frames) == 0 {
		t.Fatal("no frames before close")
	}
	last := frames[len(frames)-1]
	if last.H.Opcode != OpErr {
		t.Fatalf("last frame not an error: %+v", last.H)
	}
	se, err := ParseErrorPayload(last.P)
	if err != nil {
		t.Fatal(err)
	}
	if se.Msg != ErrDuplicateID.Error() {
		t.Fatalf("error message %q", se.Msg)
	}
}

// TestShutdownDrains proves Shutdown lets in-flight requests finish
// before the connection closes.
func TestShutdownDrains(t *testing.T) {
	fb := &fakeBackend{block: make(chan struct{})}
	srv, addr := startServer(t, fb, ServerConfig{})
	cl := dialClient(t, addr, ClientConfig{Conns: 1})

	errc := make(chan error, 1)
	go func() {
		_, err := cl.Search(context.Background(), "ACGT", false)
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for fb.inFly.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never reached the backend")
		}
		time.Sleep(time.Millisecond)
	}
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	time.Sleep(10 * time.Millisecond) // let shutdown nudge the reader
	close(fb.block)
	if err := <-errc; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestMetricsSeries asserts the wire series register and move.
func TestMetricsSeries(t *testing.T) {
	fb := &fakeBackend{}
	srv, addr := startServer(t, fb, ServerConfig{})
	cl := dialClient(t, addr, ClientConfig{Conns: 1})
	ctx := context.Background()
	if _, err := cl.Search(ctx, "ACGT", false); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if got := srv.frames[OpSearch].Value(); got != 1 {
		t.Fatalf("search frames %d", got)
	}
	if got := srv.frames[OpPing].Value(); got != 1 {
		t.Fatalf("ping frames %d", got)
	}
	if got := srv.connGauge.Value(); got != 1 {
		t.Fatalf("connections %d", got)
	}
	if got := srv.frameSecs.Count(); got != 2 {
		t.Fatalf("frame latency observations %d", got)
	}
	if got := srv.depth.Count(); got != 2 {
		t.Fatalf("depth observations %d", got)
	}
}

// TestClientRedial proves the pool replaces a dead connection.
func TestClientRedial(t *testing.T) {
	fb := &fakeBackend{}
	srv, addr := startServer(t, fb, ServerConfig{})
	cl := dialClient(t, addr, ClientConfig{Conns: 1})
	ctx := context.Background()
	if _, err := cl.Search(ctx, "ACGT", false); err != nil {
		t.Fatal(err)
	}
	// Sever every server-side connection; the client's next request
	// must transparently redial.
	srv.mu.Lock()
	for c := range srv.conns {
		c.nc.Close()
	}
	srv.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cl.Search(ctx, "ACGT", false); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBackendSeesCopies pins the borrow contract indirectly: the
// fake backend converts patterns with string(...) exactly like the
// real adapter, so a reused frame buffer cannot corrupt results.
func TestConcurrentMixedTraffic(t *testing.T) {
	fb := &fakeBackend{}
	_, addr := startServer(t, fb, ServerConfig{})
	cl := dialClient(t, addr, ClientConfig{Conns: 2})
	ctx := context.Background()
	patterns := []string{"AAAA", "CCCCCCCC", "GGGGGGGGGGGG", "TTTTTTTTTTTTTTTT"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pat := patterns[(w+i)%len(patterns)]
				res, err := cl.Search(ctx, pat, false)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				want := SearchResult{
					Matches: []Match{{Ref: pat, Offset: len(pat), Strand: "+"}}, Probes: 1,
				}
				if !reflect.DeepEqual(res, want) {
					t.Errorf("cross-talk: got %+v want %+v", res, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
