package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// encodeFrame builds one complete frame for tests.
func encodeFrame(op Opcode, flags uint16, id uint64, payload []byte) []byte {
	buf, off := BeginFrame(nil)
	buf = append(buf, payload...)
	FinishFrame(buf, off, op, flags, id)
	return buf[off:]
}

func TestHeaderRoundTrip(t *testing.T) {
	var b [HeaderSize]byte
	want := Header{Opcode: OpSearch, Flags: FlagResponse, RequestID: 0xdeadbeefcafe, PayloadLen: 12345}
	PutHeader(b[:], want)
	got, err := ParseHeader(b[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip: got %+v want %+v", got, want)
	}
}

func TestParseHeaderErrors(t *testing.T) {
	var good [HeaderSize]byte
	PutHeader(good[:], Header{Opcode: OpPing, RequestID: 7})
	cases := []struct {
		name    string
		mutate  func(b []byte) []byte
		wantErr error
	}{
		{"truncated", func(b []byte) []byte { return b[:HeaderSize-1] }, ErrShortHeader},
		{"empty", func(b []byte) []byte { return nil }, ErrShortHeader},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrBadMagic},
		{"bad version", func(b []byte) []byte {
			b[4] = Version + 1
			// Re-seal the CRC so the version check is what fires.
			binary.LittleEndian.PutUint32(b[20:24], crcOf(b[:20]))
			return b
		}, ErrBadVersion},
		{"bad crc", func(b []byte) []byte { b[20] ^= 0xff; return b }, ErrBadCRC},
		{"flipped payload byte", func(b []byte) []byte { b[17] ^= 0x01; return b }, ErrBadCRC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), good[:]...)
			if _, err := ParseHeader(tc.mutate(b)); !errors.Is(err, tc.wantErr) {
				t.Fatalf("got %v want %v", err, tc.wantErr)
			}
		})
	}
}

func TestSearchRequestRoundTrip(t *testing.T) {
	for _, both := range []bool{false, true} {
		buf := AppendSearchRequest(nil, []byte("ACGTACGT"), both)
		pat, gotBoth, err := ParseSearchRequest(buf)
		if err != nil {
			t.Fatal(err)
		}
		if string(pat) != "ACGTACGT" || gotBoth != both {
			t.Fatalf("round trip: %q %v", pat, gotBoth)
		}
	}
	// Trailing garbage after a well-formed request is a protocol error.
	buf := AppendSearchRequest(nil, []byte("ACGT"), false)
	if _, _, err := ParseSearchRequest(append(buf, 0)); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("trailing byte: got %v", err)
	}
	if _, _, err := ParseSearchRequest(buf[:len(buf)-1]); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("truncated: got %v", err)
	}
	// An out-of-range strand selector byte.
	bad := append([]byte(nil), buf...)
	bad[0] = 7
	if _, _, err := ParseSearchRequest(bad); !errors.Is(err, ErrBadStrands) {
		t.Fatalf("bad strands byte: got %v", err)
	}
}

func TestClassifyRequestRoundTrip(t *testing.T) {
	buf := AppendClassifyRequest(nil, []byte("ACGTAC"), 0.75)
	read, frac, err := ParseClassifyRequest(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(read) != "ACGTAC" || frac != 0.75 {
		t.Fatalf("round trip: %q %v", read, frac)
	}
	if _, _, err := ParseClassifyRequest(buf[:3]); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("truncated: got %v", err)
	}
}

func TestBatchRequestRoundTrip(t *testing.T) {
	pats := []string{"ACGT", "", "TTTTGGGG"}
	buf := AppendBatchRequest(nil, pats, 3)
	got, workers, err := ParseBatchRequest(buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	if workers != 3 || len(got) != len(pats) {
		t.Fatalf("round trip: %d workers, %d patterns", workers, len(got))
	}
	for i := range pats {
		if string(got[i]) != pats[i] {
			t.Fatalf("pattern %d: %q", i, got[i])
		}
	}
	// A hostile count that promises more patterns than the payload
	// could hold must fail fast, not allocate.
	hostile := AppendBatchRequest(nil, nil, 1)
	binary.LittleEndian.PutUint32(hostile[4:8], 1<<30)
	if _, _, err := ParseBatchRequest(hostile, nil); !errors.Is(err, ErrShortPayload) {
		t.Fatalf("hostile count: got %v", err)
	}
}

func TestSearchResultRoundTrip(t *testing.T) {
	want := SearchResult{
		Matches: []Match{
			{Ref: "chr1", Offset: 500, Distance: 0, Strand: "+"},
			{Ref: "chr2", Offset: 7, Distance: 3, Strand: "-"},
		},
		Probes: 42,
	}
	buf := AppendSearchResult(nil, &want)
	got, err := ParseSearchResult(buf)
	if err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, got, want)
	// Empty matches decode as an empty (non-nil) slice so the JSON twin
	// marshals as [] exactly like the HTTP layer.
	empty, err := ParseSearchResult(AppendSearchResult(nil, &SearchResult{Matches: []Match{}}))
	if err != nil {
		t.Fatal(err)
	}
	if empty.Matches == nil {
		t.Fatal("empty matches decoded as nil")
	}
}

func TestClassifyResultRoundTrip(t *testing.T) {
	want := ClassifyResult{Ref: "chrX", Offset: 1234, Votes: 17, Windows: 20, Fraction: 0.85}
	got, err := ParseClassifyResult(AppendClassifyResult(nil, &want))
	if err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, got, want)
}

func TestBatchResultRoundTrip(t *testing.T) {
	want := BatchResult{
		Results: []BatchItem{
			{Matches: []Match{{Ref: "chr1", Offset: 9, Strand: "+"}}},
			{Matches: []Match{}, Error: "bad base 'X'"},
		},
		Probes:   9,
		Canceled: true,
	}
	got, err := ParseBatchResult(AppendBatchResult(nil, &want))
	if err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, got, want)
}

func TestStatsResultRoundTrip(t *testing.T) {
	want := StatsResult{
		Backend:    "hdc",
		References: 3, Windows: 100, Buckets: 64, Dim: 8192, Window: 32,
		Stride: 1, Capacity: 16, Approx: true, Tolerance: 2, Threshold: 0.3,
		MemBytes: 1 << 20, MappedBytes: 1 << 19, ResidentBytes: 1 << 18,
		Segments: 2, Tombstones: 0.125,
	}
	got, err := ParseStatsResult(AppendStatsResult(nil, &want))
	if err != nil {
		t.Fatal(err)
	}
	assertJSONEqual(t, got, want)
}

func TestErrorPayloadRoundTrip(t *testing.T) {
	buf := AppendErrorPayload(nil, 422, "pattern shorter than window")
	se, err := ParseErrorPayload(buf)
	if err != nil {
		t.Fatal(err)
	}
	if se.Code != 422 || se.Msg != "pattern shorter than window" {
		t.Fatalf("round trip: %+v", se)
	}
}

// FuzzWireFrame throws arbitrary bytes at every decoder: a full
// header parse, then each payload parser. Decoders must reject
// garbage with an error — never panic, never over-read.
func FuzzWireFrame(f *testing.F) {
	f.Add(encodeFrame(OpSearch, 0, 1, AppendSearchRequest(nil, []byte("ACGT"), true)))
	f.Add(encodeFrame(OpClassify, 0, 2, AppendClassifyRequest(nil, []byte("ACGTACGT"), 0.5)))
	f.Add(encodeFrame(OpBatch, 0, 3, AppendBatchRequest(nil, []string{"ACGT", "TTTT"}, 2)))
	f.Add(encodeFrame(OpStats, FlagResponse, 4, AppendStatsResult(nil, &StatsResult{References: 1})))
	f.Add(encodeFrame(OpErr, FlagResponse|FlagError, 5, AppendErrorPayload(nil, 400, "boom")))
	f.Add(encodeFrame(OpSearch, FlagResponse, 6,
		AppendSearchResult(nil, &SearchResult{Matches: []Match{{Ref: "chr1", Strand: "+"}}, Probes: 1})))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, HeaderSize+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		if h, err := ParseHeader(data); err == nil {
			_ = validRequestOp(h.Opcode)
		}
		var payload []byte
		if len(data) > HeaderSize {
			payload = data[HeaderSize:]
		}
		for _, p := range [][]byte{data, payload} {
			_, _, _ = ParseSearchRequest(p)
			_, _, _ = ParseClassifyRequest(p)
			_, _, _ = ParseBatchRequest(p, nil)
			_, _ = ParseSearchResult(p)
			_, _ = ParseClassifyResult(p)
			_, _ = ParseBatchResult(p)
			_, _ = ParseStatsResult(p)
			_, _ = ParseErrorPayload(p)
		}
	})
}
