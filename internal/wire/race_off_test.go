//go:build !race

package wire

// raceEnabled reports whether this test binary runs under the race
// detector; see race_on_test.go.
const raceEnabled = false
