//go:build race

package wire

// raceEnabled reports that this test binary runs under the race
// detector, whose instrumentation perturbs sync.Pool caching and
// therefore allocation counts.
const raceEnabled = true
