package wire

// The wire server: one long-lived TCP listener beside the HTTP
// server, every connection fully pipelined. Per connection:
//
//	readLoop  — one goroutine decoding frames: header, payload, and
//	            per-request context/cancel registration keyed by
//	            requestID. Decoded requests flow into a bounded work
//	            channel (backpressure: a client with pipelineDepth
//	            frames in flight blocks until responses drain).
//	workers   — ConnWorkers goroutines executing requests against the
//	            Backend concurrently. This is what feeds the
//	            coalescer: many in-flight requests from ONE connection
//	            become concurrent coalescer submissions and fill
//	            core.LookupBlock probe blocks without needing many
//	            clients.
//	writeLoop — one goroutine serializing responses in completion
//	            order, flushing whenever the queue runs dry.
//
// A CANCEL frame cancels the named request's context; the coalescer's
// pack- and dispatch-time vacate then drops the query before it burns
// arena bandwidth. Protocol errors answer with one ERR frame and
// close the connection; application errors travel as FlagError
// responses and leave it open.
//
// The steady-state frame path is allocation-free: header bytes live
// in the connection, payload and response buffers are pooled, and the
// encoders append in place. The //biohd:hotpath annotations on
// readLoop and writeLoop root the lint proof.

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/metrics"
)

// Backend executes decoded wire requests. Implementations must treat
// the pattern/read/patterns slices as borrowed: they alias the frame
// buffer and are reused after the call returns. internal/server's
// WireBackend adapts the HTTP service's shared execution layer, which
// is what guarantees byte-identical answers across transports.
//
// Application failures are reported as *StatusError carrying the same
// code and message the HTTP API would answer with; any other error is
// mapped to code 500.
type Backend interface {
	Search(ctx context.Context, pattern []byte, both bool) (SearchResult, error)
	Classify(ctx context.Context, read []byte, minFraction float64) (ClassifyResult, error)
	Batch(ctx context.Context, patterns [][]byte, workers int) (BatchResult, error)
	Stats() StatsResult
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("wire: server closed")

// errConnClosing stops the writer after a protocol ERR frame.
var errConnClosing = errors.New("wire: connection closing after protocol error")

// pipelineDepth bounds the decoded-but-unanswered requests per
// connection; beyond it the reader stops draining the socket and TCP
// backpressure reaches the client.
const pipelineDepth = 64

// ServerConfig shapes the wire listener's connection lifecycle. Zero
// fields take the defaults below; negative durations disable the
// timeout.
type ServerConfig struct {
	// MaxFrame caps one frame's payload in bytes (default
	// DefaultMaxFrame). Larger frames are a protocol error.
	MaxFrame int
	// ConnWorkers is the number of per-connection request executors —
	// the connection's maximum useful pipelining (default 16, twice
	// the probe-block width so blocks fill even mid-completion).
	ConnWorkers int
	// IdleTimeout closes a connection that sends no frame for this
	// long (default 2m, matching the HTTP keep-alive idle timeout).
	IdleTimeout time.Duration
	// RequestTimeout bounds each request's context (default 30s,
	// matching the HTTP per-request deadline).
	RequestTimeout time.Duration
	// KeepAlivePeriod configures TCP keepalive probes (default 30s).
	KeepAlivePeriod time.Duration
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.MaxFrame <= 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.ConnWorkers <= 0 {
		c.ConnWorkers = 16
	}
	c.IdleTimeout = resolveDur(c.IdleTimeout, 2*time.Minute)
	c.RequestTimeout = resolveDur(c.RequestTimeout, 30*time.Second)
	c.KeepAlivePeriod = resolveDur(c.KeepAlivePeriod, 30*time.Second)
	return c
}

func resolveDur(v, def time.Duration) time.Duration {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// buffer is a pooled frame buffer, shared by payload reads and
// response encodes.
type buffer struct {
	b []byte
}

// request is one decoded in-flight request.
type request struct {
	op      Opcode
	id      uint64
	payload *buffer
	ctx     context.Context
	cancel  context.CancelFunc
}

// response is one encoded frame awaiting the writer. close marks the
// connection for teardown after this frame (protocol errors).
type response struct {
	buf   *buffer
	close bool
}

// Server serves the wire protocol over TCP listeners.
type Server struct {
	backend Backend
	cfg     ServerConfig
	reg     *metrics.Registry

	base     context.Context // parent of every request context
	baseStop context.CancelFunc

	connGauge  *metrics.Gauge
	frames     [8]*metrics.Counter // request frames received, by opcode
	protoCount *metrics.Counter
	frameSecs  *metrics.Histogram
	depth      *metrics.Histogram

	bufPool  sync.Pool
	reqPool  sync.Pool
	respPool sync.Pool

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	closed    bool

	done   chan struct{}
	connWg sync.WaitGroup
}

// Metric names exported on the shared registry (rendered by the HTTP
// /metrics endpoint when the registries are shared).
const (
	metricConnections = "biohd_wire_connections"
	metricFramesTotal = "biohd_wire_frames_total"
	metricProtoErrors = "biohd_wire_protocol_errors_total"
	metricFrameSecs   = "biohd_wire_frame_seconds"
	metricDepth       = "biohd_wire_pipeline_depth"

	helpConnections = "Wire-protocol connections currently open."
	helpFramesTotal = "Wire-protocol request frames received, by opcode."
	helpProtoErrors = "Wire-protocol violations answered with an ERR frame and a connection close."
	helpFrameSecs   = "Wire-protocol request handling latency in seconds, decode to response enqueue."
	helpDepth       = "In-flight requests on a connection, sampled at each request admission."
)

// depthBuckets bound the pipeline-depth histogram: powers of two up
// to the per-connection pipeline cap.
var depthBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// NewServer creates a wire server executing requests on b. Metrics
// register on reg; pass the HTTP server's registry so the wire series
// render on the same /metrics endpoint (nil creates a private one).
func NewServer(b Backend, reg *metrics.Registry, cfg ServerConfig) *Server {
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		backend:   b,
		cfg:       cfg.withDefaults(),
		reg:       reg,
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*serverConn]struct{}),
		done:      make(chan struct{}),
	}
	s.base, s.baseStop = context.WithCancel(context.Background())
	s.connGauge = reg.Gauge(metricConnections, helpConnections)
	for _, op := range []Opcode{OpSearch, OpClassify, OpBatch, OpStats, OpPing, OpCancel} {
		s.frames[op] = reg.Counter(metricFramesTotal, helpFramesTotal,
			metrics.Label{Key: "opcode", Value: op.String()})
	}
	s.protoCount = reg.Counter(metricProtoErrors, helpProtoErrors)
	s.frameSecs = reg.Histogram(metricFrameSecs, helpFrameSecs, metrics.DefBuckets)
	s.depth = reg.Histogram(metricDepth, helpDepth, depthBuckets)
	s.bufPool.New = func() interface{} { return &buffer{b: make([]byte, 0, 4096)} }
	s.reqPool.New = func() interface{} { return new(request) }
	s.respPool.New = func() interface{} { return new(response) }
	return s
}

func (s *Server) getBuffer() *buffer {
	b := s.bufPool.Get().(*buffer)
	b.b = b.b[:0]
	return b
}

func (s *Server) putBuffer(b *buffer) {
	if b != nil {
		s.bufPool.Put(b)
	}
}

func (s *Server) getRequest() *request  { return s.reqPool.Get().(*request) }
func (s *Server) putRequest(r *request) { s.reqPool.Put(r) }

func (s *Server) getResponse() *response { return s.respPool.Get().(*response) }
func (s *Server) putResponse(r *response) {
	r.buf, r.close = nil, false
	s.respPool.Put(r)
}

// grow resizes a pooled buffer to n bytes, reallocating only past the
// buffer's high-water mark.
//
//biohd:coldstart pool-miss growth to the connection's high-water frame size; steady state reuses the backing array
func grow(b []byte, n int) []byte {
	if cap(b) < n {
		return make([]byte, n)
	}
	return b[:n]
}

// Serve accepts connections on ln until Shutdown or Close. It returns
// ErrServerClosed after a clean shutdown, once every connection
// handler has exited.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		//lint:ignore errcheck the caller owns a listener we refuse to serve
		ln.Close()
		return ErrServerClosed
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
	}()
	defer s.connWg.Wait()
	for {
		nc, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return ErrServerClosed
			default:
			}
			return err
		}
		s.connWg.Add(1)
		go func() {
			defer s.connWg.Done()
			s.handleConn(nc)
		}()
	}
}

// Shutdown stops accepting connections and drains: open connections
// stop reading new frames, finish their in-flight requests, flush,
// and close. If ctx expires first the remaining connections are
// force-closed (their request contexts cancel, which vacates queued
// coalescer submissions) and ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginShutdown()
	done := make(chan struct{})
	go func() {
		s.connWg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.forceClose()
		<-done
		return ctx.Err()
	}
}

// Close force-closes every listener and connection immediately.
func (s *Server) Close() error {
	s.beginShutdown()
	s.forceClose()
	s.connWg.Wait()
	return nil
}

// beginShutdown closes the accept loops and nudges every connection's
// reader off its blocking read. Idempotent.
func (s *Server) beginShutdown() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	close(s.done)
	for ln := range s.listeners {
		//lint:ignore errcheck a listener failing to close cannot block shutdown
		ln.Close()
	}
	for c := range s.conns {
		c.closeRead()
	}
}

// forceClose cancels every in-flight request context and severs the
// connections.
func (s *Server) forceClose() {
	s.baseStop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := range s.conns {
		//lint:ignore errcheck force-close is best effort by definition
		c.nc.Close()
	}
}

func (s *Server) addConn(c *serverConn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	s.connGauge.Inc()
	return true
}

func (s *Server) removeConn(c *serverConn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.connGauge.Dec()
	}
}

// serverConn is one accepted connection's state.
type serverConn struct {
	srv *Server
	nc  net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer

	work chan *request
	outc chan *response

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc

	hdr [HeaderSize]byte
}

// handleConn runs one connection's lifecycle: socket options, the
// reader/workers/writer goroutines, protocol-error reporting, and
// teardown. Pool misses and goroutine starts here are the reviewed
// connection-setup cost; the steady state loops they feed are the
// hotpath roots.
func (s *Server) handleConn(nc net.Conn) {
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		_ = tc.SetNoDelay(true)
		if s.cfg.KeepAlivePeriod > 0 {
			_ = tc.SetKeepAlive(true)
			_ = tc.SetKeepAlivePeriod(s.cfg.KeepAlivePeriod)
		}
	}
	c := &serverConn{
		srv:      s,
		nc:       nc,
		br:       bufio.NewReaderSize(nc, 64<<10),
		bw:       bufio.NewWriterSize(nc, 64<<10),
		work:     make(chan *request, pipelineDepth),
		outc:     make(chan *response, pipelineDepth),
		inflight: make(map[uint64]context.CancelFunc),
	}
	if !s.addConn(c) {
		return
	}
	defer s.removeConn(c)
	var writerWg, workerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		//lint:ignore errcheck the writer's error only ever ends its own connection
		c.writeLoop()
	}()
	for i := 0; i < s.cfg.ConnWorkers; i++ {
		workerWg.Add(1)
		go func() {
			defer workerWg.Done()
			c.workerLoop()
		}()
	}
	rerr := c.readLoop()
	close(c.work)
	workerWg.Wait()
	if isProtocolErr(rerr) {
		s.protoCount.Inc()
		c.enqueueErrFrame(0, rerr)
	}
	close(c.outc)
	writerWg.Wait()
	c.cancelAll()
}

// closeRead knocks the reader off its blocking read so the connection
// starts draining; in-flight requests still complete.
func (c *serverConn) closeRead() {
	//lint:ignore errcheck a dead connection is already what we want here
	c.nc.SetReadDeadline(time.Unix(0, 1))
}

// cancelAll cancels any request contexts still registered — after the
// workers have drained this is normally empty, but a force-close can
// leave entries behind.
func (c *serverConn) cancelAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, cancel := range c.inflight {
		cancel()
		delete(c.inflight, id)
	}
}

// protoSentinels are the violations that close a connection with an
// ERR frame.
var protoSentinels = []error{
	ErrShortHeader, ErrBadMagic, ErrBadVersion, ErrBadCRC, ErrFrameTooBig,
	ErrShortPayload, ErrTrailingData, ErrBadOpcode, ErrBadStrands,
	ErrBadFlags, ErrDuplicateID,
}

func isProtocolErr(err error) bool {
	for _, s := range protoSentinels {
		if errors.Is(err, s) {
			return true
		}
	}
	return false
}

// readLoop decodes request frames until the connection errors, a
// protocol violation occurs, or shutdown nudges the read deadline.
// It returns the terminal error; handleConn reports protocol
// violations with an ERR frame.
//
//biohd:hotpath
func (c *serverConn) readLoop() error {
	for {
		if c.srv.cfg.IdleTimeout > 0 {
			if err := c.nc.SetReadDeadline(time.Now().Add(c.srv.cfg.IdleTimeout)); err != nil {
				return err
			}
		}
		if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
			return err
		}
		h, err := ParseHeader(c.hdr[:])
		if err != nil {
			return err
		}
		if h.Flags&(FlagResponse|FlagError) != 0 {
			return ErrBadFlags
		}
		if !validRequestOp(h.Opcode) {
			return ErrBadOpcode
		}
		if h.PayloadLen > uint32(c.srv.cfg.MaxFrame) {
			return ErrFrameTooBig
		}
		c.srv.frames[h.Opcode].Inc()
		buf := c.srv.getBuffer()
		if h.PayloadLen > 0 {
			buf.b = grow(buf.b, int(h.PayloadLen))
			if _, err := io.ReadFull(c.br, buf.b); err != nil {
				c.srv.putBuffer(buf)
				return err
			}
		}
		if h.Opcode == OpCancel {
			c.cancelRequest(h.RequestID)
			c.srv.putBuffer(buf)
			continue
		}
		req := c.srv.getRequest()
		req.op, req.id, req.payload = h.Opcode, h.RequestID, buf
		if c.srv.cfg.RequestTimeout > 0 {
			req.ctx, req.cancel = context.WithTimeout(c.srv.base, c.srv.cfg.RequestTimeout)
		} else {
			req.ctx, req.cancel = context.WithCancel(c.srv.base)
		}
		if !c.addInflight(h.RequestID, req.cancel) {
			req.cancel()
			c.srv.putBuffer(buf)
			req.payload = nil
			c.srv.putRequest(req)
			return ErrDuplicateID
		}
		c.work <- req
	}
}

// addInflight registers a request's cancel under its id, refusing
// duplicates, and samples the pipeline depth.
func (c *serverConn) addInflight(id uint64, cancel context.CancelFunc) bool {
	c.mu.Lock()
	if _, dup := c.inflight[id]; dup {
		c.mu.Unlock()
		return false
	}
	c.inflight[id] = cancel
	n := len(c.inflight)
	c.mu.Unlock()
	c.srv.depth.Observe(float64(n))
	return true
}

// cancelRequest fires the named request's context; the coalescer
// vacates the query at pack or dispatch time. Unknown ids (already
// completed, or never sent) are ignored.
func (c *serverConn) cancelRequest(id uint64) {
	c.mu.Lock()
	cancel := c.inflight[id]
	c.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// removeInflight drops a completed request's registration.
func (c *serverConn) removeInflight(id uint64) {
	c.mu.Lock()
	delete(c.inflight, id)
	c.mu.Unlock()
}

// workerLoop executes decoded requests until the work channel closes.
// Not a hotpath root: execution reaches the Backend (pattern parsing,
// coalescer submission, match conversion), which allocates per
// request by design — the zero-alloc guarantee covers the framing
// layer around it.
func (c *serverConn) workerLoop() {
	for req := range c.work {
		c.serve(req)
	}
}

// serve executes one request and enqueues its encoded response. A
// malformed payload inside a well-formed frame is a protocol error:
// the ERR frame carries the request's id and the connection tears
// down.
func (c *serverConn) serve(req *request) {
	start := time.Now()
	out := c.srv.getBuffer()
	frame, off := BeginFrame(out.b)
	op, flags := req.op, FlagResponse
	var appErr, protoErr error
	switch req.op {
	case OpPing:
		// Empty response payload.
	case OpStats:
		st := c.srv.backend.Stats()
		frame = AppendStatsResult(frame, &st)
	case OpSearch:
		pattern, both, perr := ParseSearchRequest(req.payload.b)
		if perr != nil {
			protoErr = perr
		} else if res, err := c.srv.backend.Search(req.ctx, pattern, both); err != nil {
			appErr = err
		} else {
			frame = AppendSearchResult(frame, &res)
		}
	case OpClassify:
		read, minFrac, perr := ParseClassifyRequest(req.payload.b)
		if perr != nil {
			protoErr = perr
		} else if res, err := c.srv.backend.Classify(req.ctx, read, minFrac); err != nil {
			appErr = err
		} else {
			frame = AppendClassifyResult(frame, &res)
		}
	case OpBatch:
		pats, workers, perr := ParseBatchRequest(req.payload.b, nil)
		if perr != nil {
			protoErr = perr
		} else if res, err := c.srv.backend.Batch(req.ctx, pats, workers); err != nil {
			appErr = err
		} else {
			frame = AppendBatchResult(frame, &res)
		}
	}
	switch {
	case protoErr != nil:
		frame = frame[:off+HeaderSize]
		op = OpErr
		flags |= FlagError
		frame = AppendErrorPayload(frame, 400, protoErr.Error())
		c.srv.protoCount.Inc()
	case appErr != nil:
		frame = frame[:off+HeaderSize]
		flags |= FlagError
		code, msg := errorCode(appErr)
		frame = AppendErrorPayload(frame, code, msg)
	}
	FinishFrame(frame, off, op, flags, req.id)
	out.b = frame
	c.finish(req)
	c.srv.frameSecs.Observe(time.Since(start).Seconds())
	resp := c.srv.getResponse()
	resp.buf = out
	resp.close = protoErr != nil
	c.outc <- resp
	if protoErr != nil {
		// Stop decoding further frames; the writer closes after the
		// ERR frame and handleConn tears the connection down.
		c.closeRead()
	}
}

// errorCode maps a Backend error to the wire error payload: a
// StatusError carries the HTTP-equivalent status; anything else is an
// internal error.
func errorCode(err error) (int, string) {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code, se.Msg
	}
	return 500, err.Error()
}

// finish releases one served request: context, registration, payload
// buffer, and the request struct itself.
func (c *serverConn) finish(req *request) {
	req.cancel()
	c.removeInflight(req.id)
	c.srv.putBuffer(req.payload)
	req.payload, req.ctx, req.cancel = nil, nil, nil
	c.srv.putRequest(req)
}

// enqueueErrFrame reports a reader-detected protocol violation. The
// offending frame's requestID is not always decodable, so id 0 stands
// in when attribution failed.
func (c *serverConn) enqueueErrFrame(id uint64, err error) {
	out := c.srv.getBuffer()
	frame, off := BeginFrame(out.b)
	frame = AppendErrorPayload(frame, 400, err.Error())
	FinishFrame(frame, off, OpErr, FlagResponse|FlagError, id)
	out.b = frame
	resp := c.srv.getResponse()
	resp.buf = out
	resp.close = true
	c.outc <- resp
}

// writeLoop drains encoded responses to the socket in completion
// order, flushing whenever the queue runs dry, until the channel
// closes. After a write error — or the frame that ends the
// connection — it keeps draining so workers never block, recycling
// buffers without writing.
//
//biohd:hotpath
func (c *serverConn) writeLoop() error {
	var werr error
	for resp := range c.outc {
		if werr == nil {
			_, err := c.bw.Write(resp.buf.b)
			if err == nil && (resp.close || len(c.outc) == 0) {
				err = c.bw.Flush()
			}
			if err == nil && resp.close {
				err = errConnClosing
			}
			werr = err
		}
		c.srv.putBuffer(resp.buf)
		c.srv.putResponse(resp)
	}
	if werr != nil {
		return werr
	}
	return c.bw.Flush()
}
