package workload

import (
	"math"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/genome"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "T1", Title: "Dataset inventory", Run: runT1})
	register(Experiment{ID: "F1", Title: "Exact-match filter accuracy vs dimension", Run: runF1})
	register(Experiment{ID: "F2", Title: "Statistical model validation", Run: runF2})
	register(Experiment{ID: "F3", Title: "Approximate search vs mutation rate", Run: runF3})
	register(Experiment{ID: "F4", Title: "Window/stride geometry ablation", Run: runF4})
}

// runT1 reports the evaluation datasets (paper: "a wide range of
// genomics data, including COVID-19 databases").
func runT1(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	covid, err := covidDataset(cfg)
	if err != nil {
		return nil, err
	}
	sets := []Dataset{covid, bacterialDataset(cfg), skewedDataset(cfg)}
	t := &Table{
		ID:      "T1",
		Title:   "Evaluation datasets (synthetic equivalents, DESIGN.md §4)",
		Columns: []string{"dataset", "sequences", "total-bases", "mean-len", "GC"},
	}
	for _, ds := range sets {
		t.AddRow(ds.Name, len(ds.Recs), ds.TotalBases(),
			float64(ds.TotalBases())/float64(len(ds.Recs)), ds.GCContent())
	}
	return &Result{Tables: []*Table{t}}, nil
}

// runF1 sweeps the hypervector dimension and reports the HDC filter's
// recall and false-positive rate for exact matching, before sequence
// verification — the paper's accuracy-vs-dimension curve.
func runF1(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const window = 32
	refLen := cfg.scaled(60_000, 4_000)
	ref := genome.Random(refLen, rng.New(cfg.Seed))
	probes := cfg.scaled(300, 40)

	t := &Table{
		ID:    "F1",
		Title: "Exact-match HDC filter quality vs dimension D",
		Columns: []string{"D", "capacity", "buckets", "recall", "filter-FPR",
			"model-FNR", "model-FPR"},
		Notes: []string{
			"recall/filter-FPR measured on the raw HDC stage (no verification)",
			"capacity auto-derived from the statistical model at each D",
		},
	}
	for _, d := range []int{1024, 2048, 4096, 8192, 16384} {
		lib, err := buildLibrary(core.Params{
			Dim: d, Window: window, Sealed: true, Seed: cfg.Seed + uint64(d),
		}, Dataset{Name: "rand", Recs: []genome.Record{{ID: "r", Seq: ref}}})
		if err != nil {
			return nil, err
		}
		src := rng.New(cfg.Seed + uint64(d) + 7)
		recall, fpr := filterRates(lib, ref, window, probes, src)
		m := lib.Model()
		tau := lib.Threshold()
		t.AddRow(d, lib.Params().Capacity, lib.NumBuckets(), recall, fpr,
			m.FNR(tau, 0), m.FPR(tau))
	}
	return &Result{Tables: []*Table{t}}, nil
}

// filterRates measures the HDC candidate stage: recall = fraction of
// planted window queries whose true bucket crosses the threshold;
// FPR = fraction of (absent query, bucket) pairs crossing it.
func filterRates(lib *core.Library, ref *genome.Sequence, window, probes int, src *rng.Source) (recall, fpr float64) {
	found := 0
	for i := 0; i < probes; i++ {
		off := src.Intn(ref.Len() - window + 1)
		q := ref.Slice(off, off+window)
		hv := lib.Encoder().Encode(q, 0, modeOf(lib))
		cands, err := lib.Probe(hv, nil)
		if err != nil {
			return 0, 0
		}
		for _, c := range cands {
			if bucketHasWindow(lib, c.Bucket, off) {
				found++
				break
			}
		}
	}
	recall = float64(found) / float64(probes)
	fpHits, fpPairs := 0, 0
	for i := 0; i < probes; i++ {
		q := genome.Random(window, src)
		if ref.Index(q, 0) >= 0 {
			continue
		}
		hv := lib.Encoder().Encode(q, 0, modeOf(lib))
		cands, _ := lib.Probe(hv, nil)
		fpHits += len(cands)
		fpPairs += lib.NumBuckets()
	}
	if fpPairs > 0 {
		fpr = float64(fpHits) / float64(fpPairs)
	}
	return recall, fpr
}

// runF2 validates the statistical model: predicted vs measured score
// means and deviations, for both encodings.
func runF2(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const window = 33
	refLen := cfg.scaled(40_000, 4_000)
	probes := cfg.scaled(250, 40)
	t := &Table{
		ID:    "F2",
		Title: "Score distributions: a-priori model vs measured",
		Columns: []string{"mode", "C", "muts", "model-mean", "meas-mean", "err%",
			"model-sigma", "meas-sigma"},
		Notes: []string{
			"approx rows at C>1 show the overlap-correlation drift the freeze-time calibration absorbs",
		},
	}
	for _, tc := range []struct {
		approx bool
		cap    int
		muts   int
	}{
		{false, 16, 0}, {false, 64, 0},
		{true, 1, 0}, {true, 1, 4},
		{true, 4, 0}, {true, 4, 4},
	} {
		ref := genome.Random(refLen, rng.New(cfg.Seed+uint64(tc.cap)))
		lib, err := buildLibrary(core.Params{
			Dim: 8192, Window: window, Sealed: true, Approx: tc.approx,
			Capacity: tc.cap, MutTolerance: boolMut(tc.approx, 6),
			Seed: cfg.Seed + uint64(tc.cap) + 13,
		}, Dataset{Name: "rand", Recs: []genome.Record{{ID: "r", Seq: ref}}})
		if err != nil {
			return nil, err
		}
		src := rng.New(cfg.Seed + uint64(tc.cap) + uint64(tc.muts)*31)
		var meas stats.Welford
		for i := 0; i < probes; i++ {
			off := src.Intn(ref.Len() - window + 1)
			q := ref.Slice(off, off+window)
			if tc.muts > 0 {
				q, _ = genome.SubstituteExactly(q, tc.muts, src)
			}
			hv := lib.Encoder().Encode(q, 0, modeOf(lib))
			b, ok := bucketOfWindow(lib, off)
			if !ok {
				continue
			}
			meas.Add(float64(lib.BucketVector(b).Dot(hv)))
		}
		m := lib.Model()
		modelMean := m.SignalMean(tc.muts)
		errPct := 100 * math.Abs(meas.Mean()-modelMean) / modelMean
		t.AddRow(modeName(tc.approx), tc.cap, tc.muts, modelMean, meas.Mean(),
			errPct, m.NoiseSigma(), meas.StdDev())
	}
	return &Result{Tables: []*Table{t}}, nil
}

// runF3 sweeps the per-window mutation rate and reports end-to-end
// sensitivity of approximate search, with Myers' edit-distance matcher
// as ground truth.
func runF3(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const window = 48
	refLen := cfg.scaled(30_000, 4_000)
	trials := cfg.scaled(120, 30)
	ref := genome.Random(refLen, rng.New(cfg.Seed+3))
	tol := 7 // ≈15% of the window
	lib, err := buildLibrary(core.Params{
		Dim: 8192, Window: window, Sealed: true, Approx: true,
		Capacity: 2, MutTolerance: tol, Seed: cfg.Seed + 4,
	}, Dataset{Name: "rand", Recs: []genome.Record{{ID: "r", Seq: ref}}})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "F3",
		Title: "Approximate search sensitivity vs mutation rate",
		Columns: []string{"mut-rate%", "muts/window", "BioHD-recall", "oracle-recall",
			"BioHD-verified-FP"},
		Notes: []string{
			"oracle = Myers bit-parallel matcher at the same substitution budget",
			"verified-FP counts matches whose true distance exceeds tolerance (must be 0)",
		},
	}
	for _, rate := range []float64{0, 0.02, 0.05, 0.08, 0.10, 0.15} {
		muts := int(math.Round(rate * window))
		src := rng.New(cfg.Seed + uint64(rate*1000) + 5)
		found, oracleFound, badMatches := 0, 0, 0
		for i := 0; i < trials; i++ {
			off := src.Intn(ref.Len() - window + 1)
			q, _ := genome.SubstituteExactly(ref.Slice(off, off+window), muts, src)
			matches, _, err := lib.Lookup(q)
			if err != nil {
				return nil, err
			}
			for _, m := range matches {
				if m.Off == off {
					found++
					break
				}
			}
			for _, m := range matches {
				if m.Distance > tol {
					badMatches++
				}
			}
			if muts <= tol {
				occ, _ := baseline.Myers{}.Find(ref, q, muts)
				for _, o := range occ {
					if o.End == off+window {
						oracleFound++
						break
					}
				}
			}
		}
		oracleRecall := float64(oracleFound) / float64(trials)
		if muts > tol {
			oracleRecall = math.NaN()
		}
		t.AddRow(100*rate, muts, float64(found)/float64(trials), oracleRecall, badMatches)
	}
	return &Result{Tables: []*Table{t}}, nil
}

// runF4 ablates the window length and stride: recall of mutated queries,
// library footprint, and probe work.
func runF4(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	refLen := cfg.scaled(20_000, 4_000)
	trials := cfg.scaled(80, 20)
	ref := genome.Random(refLen, rng.New(cfg.Seed+6))
	t := &Table{
		ID:    "F4",
		Title: "Geometry ablation: window and stride",
		Columns: []string{"window", "stride", "buckets", "mem-KiB", "recall@5%",
			"probes/query"},
		Notes: []string{"queries carry ⌈5% of window⌉ substitutions; stride>1 queries supply window+stride−1 bases"},
	}
	for _, window := range []int{24, 32, 48, 64} {
		for _, stride := range []int{1, 2, 4} {
			tol := (window + 19) / 20 // ≈5%
			lib, err := buildLibrary(core.Params{
				Dim: 8192, Window: window, Stride: stride, Sealed: true,
				Approx: true, Capacity: 2, MutTolerance: tol,
				Seed: cfg.Seed + uint64(window*10+stride),
			}, Dataset{Name: "rand", Recs: []genome.Record{{ID: "r", Seq: ref}}})
			if err != nil {
				return nil, err
			}
			src := rng.New(cfg.Seed + uint64(window*100+stride))
			found := 0
			var probes int
			for i := 0; i < trials; i++ {
				qLen := window + stride - 1
				off := src.Intn(ref.Len() - qLen + 1)
				q, _ := genome.SubstituteExactly(ref.Slice(off, off+qLen), tol, src)
				matches, st, err := lib.Lookup(q)
				if err != nil {
					return nil, err
				}
				probes += st.BucketProbes
				for _, m := range matches {
					if m.Off == off+m.QueryOff {
						found++
						break
					}
				}
			}
			t.AddRow(window, stride, lib.NumBuckets(),
				float64(lib.MemoryFootprint())/1024,
				float64(found)/float64(trials),
				float64(probes)/float64(trials))
		}
	}
	return &Result{Tables: []*Table{t}}, nil
}

// --- shared helpers ---------------------------------------------------------

func modeName(approx bool) string {
	if approx {
		return "approx"
	}
	return "exact"
}

func boolMut(approx bool, tol int) int {
	if approx {
		return tol
	}
	return 0
}

// bucketHasWindow reports whether bucket b contains the window at off in
// reference 0.
func bucketHasWindow(lib *core.Library, b, off int) bool {
	for _, wr := range lib.BucketWindows(b) {
		if wr.Ref == 0 && int(wr.Off) == off {
			return true
		}
	}
	return false
}

// modeOf returns the encoding mode a library's queries must use.
func modeOf(lib *core.Library) encoding.Mode {
	if lib.Params().Approx {
		return encoding.ModeApprox
	}
	return encoding.ModeExact
}

// bucketOfWindow returns the bucket holding reference 0's window at off.
func bucketOfWindow(lib *core.Library, off int) (int, bool) {
	for b := 0; b < lib.NumBuckets(); b++ {
		if bucketHasWindow(lib, b, off) {
			return b, true
		}
	}
	return 0, false
}
