// Package workload is BioHD's experiment harness: it regenerates every
// table and figure of the evaluation (see DESIGN.md §3 for the
// experiment index) as printable tables, at a configurable scale.
//
// Each experiment is registered under its DESIGN.md identifier (T1–T3,
// F1–F10). Running one returns structured tables, so the CLI prints
// them, tests assert on their cells, and EXPERIMENTS.md records them.
package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies dataset sizes; 1.0 is the reference scale used in
	// EXPERIMENTS.md, tests run at a fraction. Clamped to ≥ 0.02.
	Scale float64
	// Seed drives all synthetic data.
	Seed uint64
}

// DefaultConfig returns the reference configuration.
func DefaultConfig() Config { return Config{Scale: 1.0, Seed: 42} }

func (c Config) normalized() Config {
	if c.Scale < 0.02 {
		c.Scale = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// scaled returns max(lo, round(n·Scale)).
func (c Config) scaled(n int, lo int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < lo {
		v = lo
	}
	return v
}

// Table is one experiment output table.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are rendered with %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = formatFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x == float64(int64(x)) && x < 1e15 && x > -1e15:
		return fmt.Sprintf("%d", int64(x))
	case x >= 1000 || x <= -1000:
		return fmt.Sprintf("%.4g", x)
	case x >= 1 || x <= -1:
		return fmt.Sprintf("%.3f", x)
	default:
		return fmt.Sprintf("%.4g", x)
	}
}

// Cell returns the cell at (row, col), for test assertions.
func (t *Table) Cell(row, col int) string { return t.Rows[row][col] }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	total := len(t.Columns) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV renders the table as RFC-4180 CSV (header row, then data;
// notes become trailing comment-style rows with a leading "#").
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Result is everything an experiment produced.
type Result struct {
	Tables []*Table
}

// Fprint renders all tables.
func (r *Result) Fprint(w io.Writer) {
	for _, t := range r.Tables {
		t.Fprint(w)
	}
}

// WriteCSV renders all tables as CSV, separated by blank lines.
func (r *Result) WriteCSV(w io.Writer) error {
	for i, t := range r.Tables {
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := t.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string // DESIGN.md identifier, e.g. "F6"
	Title string
	Run   func(cfg Config) (*Result, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("workload: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, bool) {
	e, ok := registry[strings.ToUpper(id)]
	return e, ok
}

// All returns every registered experiment ordered by ID (tables first,
// then figures, each numerically).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		ki, kj := expKey(out[i].ID), expKey(out[j].ID)
		if ki != kj {
			return ki < kj
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// expKey orders T1 < T2 < ... < F1 < F2 < ... by (class, number);
// malformed IDs sort last.
func expKey(id string) int {
	if len(id) < 2 {
		return 1 << 20
	}
	n, err := strconv.Atoi(id[1:])
	if err != nil {
		return 1 << 20
	}
	if id[0] == 'T' {
		return n
	}
	return 100 + n
}

// RunAll executes every experiment and streams tables to w.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All() {
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("workload: experiment %s: %w", e.ID, err)
		}
		res.Fprint(w)
	}
	return nil
}
