package workload

import (
	"strconv"
	"strings"
	"testing"
)

var testCfg = Config{Scale: 0.05, Seed: 7}

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Run(testCfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	return res
}

func cellFloat(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	s := strings.TrimSuffix(tab.Cell(row, col), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tab.Cell(row, col), err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"T1", "T2", "T3", "F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8", "F9", "F10", "F11", "F12", "F13", "F14"}
	for _, id := range want {
		if _, ok := Get(id); !ok {
			t.Fatalf("experiment %s missing", id)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAllOrdering(t *testing.T) {
	ids := []string{}
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	want := "T1 T2 T3 F1 F2 F3 F4 F5 F6 F7 F8 F9 F10 F11 F12 F13 F14"
	if got := strings.Join(ids, " "); got != want {
		t.Fatalf("ordering %q, want %q", got, want)
	}
}

func TestGetCaseInsensitive(t *testing.T) {
	if _, ok := Get("f6"); !ok {
		t.Fatal("lowercase id not found")
	}
	if _, ok := Get("F99"); ok {
		t.Fatal("unknown id found")
	}
}

func TestTableFprint(t *testing.T) {
	tab := &Table{
		ID: "X1", Title: "demo",
		Columns: []string{"a", "long-column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("v", 1.5)
	tab.AddRow(12, 0.25)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== X1: demo ==", "long-column", "1.500", "0.25", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	for _, tc := range []struct {
		in   float64
		want string
	}{
		{0, "0"}, {3, "3"}, {1989, "1989"}, {1.5, "1.500"},
		{0.25, "0.25"}, {123456.7, "1.235e+05"},
	} {
		if got := formatFloat(tc.in); got != tc.want {
			t.Fatalf("formatFloat(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestConfigScaled(t *testing.T) {
	cfg := Config{Scale: 0.1}
	if got := cfg.scaled(1000, 10); got != 100 {
		t.Fatalf("scaled = %d", got)
	}
	if got := cfg.scaled(50, 10); got != 10 {
		t.Fatalf("floor not applied: %d", got)
	}
	n := Config{Scale: 0.001}.normalized()
	if n.Scale != 0.02 {
		t.Fatalf("scale clamp: %v", n.Scale)
	}
	if n.Seed == 0 {
		t.Fatal("seed not defaulted")
	}
}

func TestT1Datasets(t *testing.T) {
	res := runExp(t, "T1")
	tab := res.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("%d dataset rows", len(tab.Rows))
	}
	// GC-skewed dataset must report elevated GC.
	var skewGC float64
	for i, row := range tab.Rows {
		if row[0] == "gc-skewed" {
			skewGC = cellFloat(t, tab, i, 4)
		}
	}
	if skewGC < 0.6 {
		t.Fatalf("gc-skewed GC = %v", skewGC)
	}
}

func TestF1RecallHighAtLargeD(t *testing.T) {
	res := runExp(t, "F1")
	tab := res.Tables[0]
	last := len(tab.Rows) - 1
	if recall := cellFloat(t, tab, last, 3); recall < 0.98 {
		t.Fatalf("recall at largest D = %v", recall)
	}
	if fpr := cellFloat(t, tab, last, 4); fpr > 0.01 {
		t.Fatalf("filter FPR at largest D = %v", fpr)
	}
	// Capacity grows with dimension.
	if cellFloat(t, tab, 0, 1) >= cellFloat(t, tab, last, 1) {
		t.Fatal("capacity did not grow with D")
	}
}

func TestF2ModelClose(t *testing.T) {
	res := runExp(t, "F2")
	tab := res.Tables[0]
	for i, row := range tab.Rows {
		errPct := cellFloat(t, tab, i, 5)
		limit := 5.0
		if row[0] == "approx" && row[1] != "1" {
			limit = 20.0 // documented overlap drift at C>1
		}
		if errPct > limit {
			t.Fatalf("row %v: model error %v%% exceeds %v%%", row, errPct, limit)
		}
	}
}

func TestF3RecallTracksOracle(t *testing.T) {
	res := runExp(t, "F3")
	tab := res.Tables[0]
	for i := range tab.Rows {
		recall := cellFloat(t, tab, i, 2)
		if recall < 0.9 {
			t.Fatalf("recall at row %d = %v", i, recall)
		}
		if fp := cellFloat(t, tab, i, 4); fp != 0 {
			t.Fatalf("verified false positives: %v", fp)
		}
	}
}

func TestF4StrideShrinksLibrary(t *testing.T) {
	res := runExp(t, "F4")
	tab := res.Tables[0]
	// Rows come in (window, stride) order; within a window group the
	// bucket count must shrink with stride.
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		b1 := cellFloat(t, tab, i, 2)
		b4 := cellFloat(t, tab, i+2, 2)
		if b4 >= b1 {
			t.Fatalf("stride 4 buckets %v not below stride 1 %v", b4, b1)
		}
	}
}

func TestT2BioHDFewerOps(t *testing.T) {
	res := runExp(t, "T2")
	tab := res.Tables[0]
	ops := map[string]float64{}
	for i, row := range tab.Rows {
		ops[row[0]] = cellFloat(t, tab, i, 1)
	}
	if ops["biohd(bucket-probes)"] >= ops["naive"] {
		t.Fatal("bucket probes not below naive comparisons")
	}
	if ops["sellers-dp(k=2)"] <= ops["myers(k=2)"] {
		t.Fatal("DP not above Myers")
	}
}

func TestF5ProducesPositiveThroughput(t *testing.T) {
	res := runExp(t, "F5")
	tab := res.Tables[0]
	for i := range tab.Rows {
		if q := cellFloat(t, tab, i, 1); q <= 0 {
			t.Fatalf("row %d throughput %v", i, q)
		}
	}
}

func TestF6Structure(t *testing.T) {
	res := runExp(t, "F6")
	tab := res.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("%d engines", len(tab.Rows))
	}
	if tab.Rows[0][0] != "biohd-pim" {
		t.Fatalf("first row %v", tab.Rows[0])
	}
	for i := range tab.Rows {
		if l := cellFloat(t, tab, i, 1); l <= 0 {
			t.Fatalf("row %d latency %v", i, l)
		}
	}
}

func TestF8WiderArraysFaster(t *testing.T) {
	res := runExp(t, "F8")
	tab := res.Tables[0]
	var narrow, wide float64
	for i, row := range tab.Rows {
		switch row[0] {
		case "1024x1024":
			narrow = cellFloat(t, tab, i, 3)
		case "1024x2048":
			wide = cellFloat(t, tab, i, 3)
		}
	}
	if wide >= narrow {
		t.Fatalf("wider array %vµs not faster than %vµs", wide, narrow)
	}
}

func TestT3CountsPresent(t *testing.T) {
	res := runExp(t, "T3")
	tab := res.Tables[0]
	if len(tab.Rows) != 7 {
		t.Fatalf("%d op rows", len(tab.Rows))
	}
	counts := map[string]float64{}
	for i, row := range tab.Rows {
		counts[row[0]] = cellFloat(t, tab, i, 3)
	}
	if counts["xnor"] == 0 || counts["popcount"] == 0 || counts["broadcast"] == 0 {
		t.Fatalf("search kernels uncounted: %v", counts)
	}
	if counts["xnor"] != counts["popcount"] {
		t.Fatal("fused xnor/popcount counts diverge")
	}
}

func TestF9PIMLatencyNearFlat(t *testing.T) {
	res := runExp(t, "F9")
	tab := res.Tables[0]
	first := cellFloat(t, tab, 0, 4)
	last := cellFloat(t, tab, len(tab.Rows)-1, 4)
	dbFirst := cellFloat(t, tab, 0, 0)
	dbLast := cellFloat(t, tab, len(tab.Rows)-1, 0)
	growth := last / first
	dbGrowth := dbLast / dbFirst
	// PIM latency growth must be far sublinear in database growth.
	if growth > dbGrowth/4 {
		t.Fatalf("PIM latency grew %vx for %vx database", growth, dbGrowth)
	}
	// GPU latency must grow with the database.
	gpuFirst := cellFloat(t, tab, 0, 5)
	gpuLast := cellFloat(t, tab, len(tab.Rows)-1, 5)
	if gpuLast <= gpuFirst {
		t.Fatal("GPU latency did not grow with database")
	}
	// Recall stays perfect.
	for i := range tab.Rows {
		if r := cellFloat(t, tab, i, 6); r < 0.98 {
			t.Fatalf("recall %v at row %d", r, i)
		}
	}
}

func TestF10Accuracy(t *testing.T) {
	res := runExp(t, "F10")
	tab := res.Tables[0]
	if acc := cellFloat(t, tab, 0, 1); acc < 0.9 {
		t.Fatalf("BioHD classification accuracy %v", acc)
	}
	if acc := cellFloat(t, tab, 0, 2); acc < 0.9 {
		t.Fatalf("seed-extend accuracy %v", acc)
	}
}

func TestF11SealedSmallerButLowerCapacity(t *testing.T) {
	res := runExp(t, "F11")
	tab := res.Tables[0]
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	sealedCap := cellFloat(t, tab, 0, 1)
	rawCap := cellFloat(t, tab, 1, 1)
	if rawCap <= sealedCap {
		t.Fatalf("raw capacity %v not above sealed %v", rawCap, sealedCap)
	}
	sealedMem := cellFloat(t, tab, 0, 3)
	rawMem := cellFloat(t, tab, 1, 3)
	if rawMem <= sealedMem {
		t.Fatalf("raw memory %v not above sealed %v (per-bucket 32x, fewer buckets)", rawMem, sealedMem)
	}
	for i := range tab.Rows {
		if r := cellFloat(t, tab, i, 4); r < 0.98 {
			t.Fatalf("row %d recall %v", i, r)
		}
	}
}

func TestF12PipeliningSaves(t *testing.T) {
	res := runExp(t, "F12")
	tab := res.Tables[0]
	last := len(tab.Rows) - 1
	if saved := cellFloat(t, tab, last, 3); saved <= 0 {
		t.Fatalf("pipelining saved %v%%", saved)
	}
	// Larger batches amortize better than batch=1.
	if cellFloat(t, tab, 0, 3) > cellFloat(t, tab, last, 3) {
		t.Fatal("batch=1 saved more than the largest batch")
	}
}

func TestF13GranularityTrade(t *testing.T) {
	res := runExp(t, "F13")
	tab := res.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	baseChance := cellFloat(t, tab, 0, 1)
	k5Chance := cellFloat(t, tab, 2, 1)
	if k5Chance >= baseChance/2 {
		t.Fatalf("k=5 chance %v not well below base %v", k5Chance, baseChance)
	}
	// Mutation sensitivity steeper at larger k.
	if cellFloat(t, tab, 2, 2) >= cellFloat(t, tab, 0, 2) {
		t.Fatal("k-mer cos@1mut not below base-level")
	}
}

func TestF14EngineComparison(t *testing.T) {
	res := runExp(t, "F14")
	tab := res.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("%d engines", len(tab.Rows))
	}
	rows := map[string]int{}
	for i, row := range tab.Rows {
		rows[row[0]] = i
	}
	// Exact engines must be perfect on this workload.
	for _, name := range []string{"biohd", "fm-index"} {
		if r := cellFloat(t, tab, rows[name], 1); r != 1 {
			t.Fatalf("%s recall %v", name, r)
		}
		if f := cellFloat(t, tab, rows[name], 2); f != 0 {
			t.Fatalf("%s FPR %v", name, f)
		}
	}
	// Bloom has no false negatives by construction.
	if r := cellFloat(t, tab, rows["bloom"], 1); r != 1 {
		t.Fatalf("bloom recall %v", r)
	}
	// Whole-reference HDC breaks down at this scale (windows ≫ D/z²).
	if r := cellFloat(t, tab, rows["wholeref-hdc"], 1); r > 0.5 {
		t.Fatalf("whole-ref recall %v — expected breakdown", r)
	}
}

func TestRunAllStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness run")
	}
	var sb strings.Builder
	if err := RunAll(&sb, testCfg); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"T1", "F6", "F10"} {
		if !strings.Contains(sb.String(), "== "+id+":") {
			t.Fatalf("output missing %s", id)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{
		ID: "X1", Title: "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"note text"},
	}
	tab.AddRow("v,with,commas", 2)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"a,b\n", "\"v,with,commas\",2\n", "# note text"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestResultWriteCSV(t *testing.T) {
	r := &Result{Tables: []*Table{
		{Columns: []string{"x"}},
		{Columns: []string{"y"}},
	}}
	r.Tables[0].AddRow(1)
	r.Tables[1].AddRow(2)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "x\n1\n\ny\n2\n") {
		t.Fatalf("multi-table CSV wrong:\n%q", sb.String())
	}
}
