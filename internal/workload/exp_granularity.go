package workload

import (
	"fmt"
	"math"

	"repro/internal/encoding"
	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "F13", Title: "Ablation: encoding granularity (base vs k-mer)", Run: runF13})
}

// runF13 ablates the encoding granularity: base-level positional bundles
// (the default approximate encoding) against k-mer bundles at several k.
// Larger k drives the unrelated-window baseline toward zero (chance
// agreement 4^−k) but makes each substitution cost k positions — the
// discrimination/tolerance trade the window geometry rides on.
func runF13(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const dim, window = 16384, 32
	trials := cfg.scaled(40, 10)
	t := &Table{
		ID:    "F13",
		Title: "Encoding granularity: similarity statistics at D=16384, w=32",
		Columns: []string{"encoding", "chance|cos|", "cos@1mut", "cos@2mut", "cos@4mut",
			"separation@2mut"},
		Notes: []string{
			"chance|cos| = mean |cosine| of unrelated window pairs (the bucket baseline)",
			"separation = (cos@2mut − chance) / √(1/D) — detection margin in sigmas",
		},
	}
	// Base-level encoder plus k-mer encoders.
	base, err := encoding.New(encoding.Config{Dim: dim, Window: window, Seed: cfg.Seed + 132})
	if err != nil {
		return nil, err
	}
	type namedEncoder struct {
		name string
		enc  func(seq *genome.Sequence) *hdc.HV
	}
	encoders := []namedEncoder{
		{"base(k=1)", func(s *genome.Sequence) *hdc.HV { return base.EncodeWindowApprox(s, 0) }},
	}
	for _, k := range []int{3, 5, 7} {
		km, err := encoding.NewKmer(encoding.Config{Dim: dim, Window: window, Seed: cfg.Seed + 133}, k)
		if err != nil {
			return nil, err
		}
		encoders = append(encoders, namedEncoder{
			name: fmt.Sprintf("kmer(k=%d)", k),
			enc:  func(s *genome.Sequence) *hdc.HV { return km.EncodeWindow(s, 0) },
		})
	}

	for _, e := range encoders {
		var chance, m1, m2, m4 stats.Welford
		src := rng.New(cfg.Seed + 134)
		for i := 0; i < trials; i++ {
			seq := genome.Random(window, src)
			ref := e.enc(seq)
			other := e.enc(genome.Random(window, src))
			chance.Add(math.Abs(ref.Cosine(other)))
			for _, rec := range []struct {
				muts int
				w    *stats.Welford
			}{{1, &m1}, {2, &m2}, {4, &m4}} {
				mut, _ := genome.SubstituteExactly(seq, rec.muts, src)
				rec.w.Add(ref.Cosine(e.enc(mut)))
			}
		}
		sep := (m2.Mean() - chance.Mean()) / math.Sqrt(1/float64(dim))
		t.AddRow(e.name, chance.Mean(), m1.Mean(), m2.Mean(), m4.Mean(), sep)
	}
	return &Result{Tables: []*Table{t}}, nil
}
