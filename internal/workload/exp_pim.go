package workload

import (
	"fmt"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/pim"
	"repro/internal/rng"
)

func init() {
	register(Experiment{ID: "F6", Title: "PIM speedup & energy vs GPU and SOTA-PIM", Run: runF6})
	register(Experiment{ID: "F7", Title: "Kernel breakdown vs SOTA-PIM", Run: runF7})
	register(Experiment{ID: "F8", Title: "PIM architecture sensitivity", Run: runF8})
	register(Experiment{ID: "T3", Title: "Per-operation PIM cost table", Run: runT3})
	register(Experiment{ID: "F10", Title: "COVID-19 case study", Run: runF10})
}

// pimSetup builds a frozen exact library over ds and maps it on a chip.
func pimSetup(cfg Config, ds Dataset, chip pim.ChipConfig) (*core.Library, *pim.Engine, error) {
	lib, err := buildLibrary(core.Params{
		Dim: 8192, Window: 32, Sealed: true, Seed: cfg.Seed + 41,
	}, ds)
	if err != nil {
		return nil, nil, err
	}
	eng, err := pim.NewEngine(chip, lib)
	if err != nil {
		return nil, nil, err
	}
	return lib, eng, nil
}

// batchCost simulates a batch of window queries through encode + search
// on the PIM engine and returns the total cost.
func batchCost(lib *core.Library, eng *pim.Engine, ds Dataset, queries int, seed uint64) (pim.Cost, error) {
	src := rng.New(seed)
	w := lib.Params().Window
	var total pim.Cost
	for i := 0; i < queries; i++ {
		wr := sampleWindows(ds, w, 1, src)[0]
		q := ds.Recs[wr.Ref].Seq.Slice(int(wr.Off), int(wr.Off)+w)
		hv := lib.Encoder().Encode(q, 0, modeOf(lib))
		total.Add(eng.EncodeCost(lib.Params().Approx, w))
		_, c, err := eng.Search(hv)
		if err != nil {
			return total, err
		}
		total.Add(c)
	}
	return total, nil
}

// runF6 reproduces the headline comparison: BioHD-PIM vs the GPU model
// and the SOTA-PIM model on the same workload ("102.8× and 116.1×
// speedup and energy efficiency vs GPU; 9.3× and 13.2× vs SOTA PIM").
func runF6(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	covid, err := covidDataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := cfg.scaled(64, 8)
	lib, eng, err := pimSetup(cfg, covid, pim.DefaultChipConfig())
	if err != nil {
		return nil, err
	}
	bioCost, err := batchCost(lib, eng, covid, queries, cfg.Seed+42)
	if err != nil {
		return nil, err
	}
	bio := accel.DefaultBioHDSystem().Wrap(bioCost.LatencyNs, bioCost.EnergyPj, eng.ArraysUsed())
	wl := accel.Workload{
		DBBases: covid.TotalBases(), Queries: queries,
		PatternLen: lib.Params().Window, Approx: true,
	}
	gpu, err := accel.RTX3060Ti().Evaluate(wl)
	if err != nil {
		return nil, err
	}
	sota, err := accel.SOTAPIM().Evaluate(wl)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "F6",
		Title: "End-to-end search: BioHD-PIM vs comparator models",
		Columns: []string{"engine", "µs/query", "queries/s", "µJ/query",
			"speedup-vs", "energy-eff-vs"},
		Notes: []string{
			fmt.Sprintf("workload: %d queries against %d bases (%d refs)",
				queries, covid.TotalBases(), len(covid.Recs)),
			"paper's operating point: 102.8×/116.1× vs GPU, 9.3×/13.2× vs SOTA-PIM",
		},
	}
	perQ := func(e accel.Estimate) (float64, float64, float64) {
		q := float64(queries)
		return e.LatencyNs / q / 1000, e.ThroughputQPS(queries), e.EnergyPj / q * 1e-6
	}
	bl, bq, be := perQ(bio)
	t.AddRow("biohd-pim", bl, bq, be, "1.0", "1.0")
	gl, gq, ge := perQ(gpu)
	t.AddRow("gpu(rtx3060ti-model)", gl, gq, ge,
		fmt.Sprintf("%.1fx", gl/bl), fmt.Sprintf("%.1fx", ge/be))
	sl, sq, se := perQ(sota)
	t.AddRow("sota-pim(model)", sl, sq, se,
		fmt.Sprintf("%.1fx", sl/bl), fmt.Sprintf("%.1fx", se/be))
	return &Result{Tables: []*Table{t}}, nil
}

// runF7 breaks the BioHD-PIM cost into its kernels (encode, search,
// build) across datasets, against the SOTA-PIM comparator.
func runF7(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	covid, err := covidDataset(cfg)
	if err != nil {
		return nil, err
	}
	sets := []Dataset{covid, bacterialDataset(cfg), skewedDataset(cfg)}
	queries := cfg.scaled(32, 8)
	t := &Table{
		ID:    "F7",
		Title: "Kernel breakdown per query and ratio vs SOTA-PIM",
		Columns: []string{"dataset", "encode-µs", "search-µs", "build-ms(once)",
			"sota-pim-µs", "speedup"},
	}
	for _, ds := range sets {
		lib, eng, err := pimSetup(cfg, ds, pim.DefaultChipConfig())
		if err != nil {
			return nil, err
		}
		enc := eng.EncodeCost(false, lib.Params().Window)
		src := rng.New(cfg.Seed + 43)
		var search pim.Cost
		for i := 0; i < queries; i++ {
			wr := sampleWindows(ds, lib.Params().Window, 1, src)[0]
			q := ds.Recs[wr.Ref].Seq.Slice(int(wr.Off), int(wr.Off)+lib.Params().Window)
			hv := lib.Encoder().Encode(q, 0, modeOf(lib))
			_, c, err := eng.Search(hv)
			if err != nil {
				return nil, err
			}
			search.Add(c)
		}
		searchPerQ := search.LatencyNs / float64(queries)
		sota, err := accel.SOTAPIM().Evaluate(accel.Workload{
			DBBases: ds.TotalBases(), Queries: 1,
			PatternLen: lib.Params().Window, Approx: true,
		})
		if err != nil {
			return nil, err
		}
		bioPerQ := enc.LatencyNs + searchPerQ
		t.AddRow(ds.Name, enc.LatencyNs/1000, searchPerQ/1000,
			eng.BuildCost().LatencyMs(), sota.LatencyNs/1000,
			fmt.Sprintf("%.1fx", sota.LatencyNs/bioPerQ))
	}
	return &Result{Tables: []*Table{t}}, nil
}

// runF8 sweeps the chip geometry: array size and count trade per-query
// latency against energy ("massive parallelism ... compatible with
// existing crossbar memory").
func runF8(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	covid, err := covidDataset(cfg)
	if err != nil {
		return nil, err
	}
	queries := cfg.scaled(16, 4)
	t := &Table{
		ID:    "F8",
		Title: "Chip geometry sensitivity",
		Columns: []string{"array", "arrays-used", "buckets/array", "µs/query",
			"µJ/query(dynamic)"},
	}
	for _, geom := range []struct{ rows, cols int }{
		{256, 256}, {512, 512}, {1024, 1024}, {2048, 1024}, {1024, 2048},
	} {
		chip := pim.DefaultChipConfig()
		chip.ArrayRows, chip.ArrayCols = geom.rows, geom.cols
		chip.NumArrays = 1 << 18 // capacity never the constraint in the sweep
		lib, eng, err := pimSetup(cfg, covid, chip)
		if err != nil {
			return nil, err
		}
		cost, err := batchCost(lib, eng, covid, queries, cfg.Seed+44)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%dx%d", geom.rows, geom.cols), eng.ArraysUsed(),
			chip.ArrayRows/eng.RowsPerBucket(),
			cost.LatencyNs/float64(queries)/1000,
			cost.EnergyPj/float64(queries)*1e-6)
	}
	return &Result{Tables: []*Table{t}}, nil
}

// runT3 prints the per-operation device cost table and the op counts one
// reference search incurs ("supports all essential BioHD operations
// natively in memory").
func runT3(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	covid, err := covidDataset(cfg)
	if err != nil {
		return nil, err
	}
	lib, eng, err := pimSetup(cfg, covid, pim.DefaultChipConfig())
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed + 45)
	wr := sampleWindows(covid, lib.Params().Window, 1, src)[0]
	q := covid.Recs[wr.Ref].Seq.Slice(int(wr.Off), int(wr.Off)+lib.Params().Window)
	hv := lib.Encoder().Encode(q, 0, modeOf(lib))
	_, cost, err := eng.Search(hv)
	if err != nil {
		return nil, err
	}
	dev := pim.DefaultDeviceParams()
	t := &Table{
		ID:      "T3",
		Title:   "PIM operation costs and per-search counts",
		Columns: []string{"operation", "ns/op", "pJ/op", "count/search"},
	}
	type row struct {
		kind pim.OpKind
		ns   float64
		pj   float64
	}
	for _, r := range []row{
		{pim.OpRowRead, dev.RowReadNs, dev.RowReadPj},
		{pim.OpRowWrite, dev.RowWriteNs, dev.RowWritePj},
		{pim.OpXnor, dev.XnorNs, dev.XnorPj},
		{pim.OpPopcount, dev.PopcountNs, dev.PopcountPj},
		{pim.OpShift, dev.ShiftNs, dev.ShiftPj},
		{pim.OpBroadcast, dev.BroadcastNs, dev.BroadcastPj},
		{pim.OpCompare, dev.CompareNs, dev.ComparePj},
	} {
		t.AddRow(r.kind.String(), r.ns, r.pj, cost.Counts[r.kind])
	}
	return &Result{Tables: []*Table{t}}, nil
}

// runF10 is the end-to-end COVID-19 case study: classify mutated reads
// against the variant database with BioHD and with the seed-and-extend
// comparator, reporting accuracy and modelled speedup.
func runF10(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	vcfg := genome.DefaultVariantDBConfig()
	vcfg.NumVariants = cfg.scaled(32, 4)
	vcfg.AncestorLen = cfg.scaled(29903, 1500)
	vcfg.Seed = cfg.Seed + 46
	db, err := genome.GenerateVariantDB(vcfg)
	if err != nil {
		return nil, err
	}
	ds := Dataset{Name: "covid-like"}
	var seqs []*genome.Sequence
	for _, v := range db.Variants {
		ds.Recs = append(ds.Recs, v.Record)
		seqs = append(seqs, v.Seq)
	}
	reads, err := genome.SampleReads(seqs, genome.ReadSamplerConfig{
		ReadLen: 320, NumReads: cfg.scaled(100, 20), ErrorRate: 0.005,
		Seed: cfg.Seed + 47,
	})
	if err != nil {
		return nil, err
	}
	lib, eng, err := pimSetup(cfg, ds, pim.DefaultChipConfig())
	if err != nil {
		return nil, err
	}
	seedIdx, err := baseline.NewSeedIndex(15)
	if err != nil {
		return nil, err
	}
	for _, s := range seqs {
		if err := seedIdx.Add(s); err != nil {
			return nil, err
		}
	}

	bioCorrect, seedCorrect := 0, 0
	var searchCost pim.Cost
	for _, r := range reads {
		// Variants share ancestry, so several references may legitimately
		// contain the read; score correctness as "best hit is the true
		// source or matches it exactly at the implied offset".
		if best, _, err := lib.Classify(r.Seq, 0.5); err == nil {
			if classificationOK(best.Ref, r, seqs) {
				bioCorrect++
			}
		}
		if hit, _, ok := seedIdx.Classify(r.Seq, 2, 0.9); ok {
			if classificationOK(hit.Ref, r, seqs) {
				seedCorrect++
			}
		}
		// PIM cost of the read's window lookups.
		w := lib.Params().Window
		for qOff := 0; qOff+w <= r.Seq.Len(); qOff += w {
			hv := lib.Encoder().Encode(r.Seq, qOff, modeOf(lib))
			_, c, err := eng.Search(hv)
			if err != nil {
				return nil, err
			}
			searchCost.Add(c)
		}
	}
	bio := accel.DefaultBioHDSystem().Wrap(searchCost.LatencyNs, searchCost.EnergyPj, eng.ArraysUsed())
	gpu, err := accel.RTX3060Ti().Evaluate(accel.Workload{
		DBBases: ds.TotalBases(), Queries: len(reads) * (320 / lib.Params().Window),
		PatternLen: lib.Params().Window, Approx: true,
	})
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "F10",
		Title:   "COVID-like variant classification case study",
		Columns: []string{"metric", "biohd", "seed-extend", "gpu-model"},
		Notes: []string{
			fmt.Sprintf("%d reads (len 320, 0.5%% error) against %d variants of %d bases",
				len(reads), len(ds.Recs), vcfg.AncestorLen),
		},
	}
	t.AddRow("classification-accuracy",
		float64(bioCorrect)/float64(len(reads)),
		float64(seedCorrect)/float64(len(reads)), "n/a")
	t.AddRow("latency-µs/read",
		bio.LatencyNs/float64(len(reads))/1000, "host-cpu",
		gpu.LatencyNs/float64(len(reads))/1000)
	t.AddRow("energy-µJ/read",
		bio.EnergyPj/float64(len(reads))*1e-6, "host-cpu",
		gpu.EnergyPj/float64(len(reads))*1e-6)
	t.AddRow("speedup-vs-gpu", fmt.Sprintf("%.1fx", gpu.LatencyNs/bio.LatencyNs), "", "1.0")
	return &Result{Tables: []*Table{t}}, nil
}

// classificationOK accepts the true source or any reference containing
// the read's error-free origin exactly (shared-ancestry duplicates).
func classificationOK(got int, r genome.Read, seqs []*genome.Sequence) bool {
	if got == r.SourceIdx {
		return true
	}
	origin := seqs[r.SourceIdx].Slice(r.Offset, r.Offset+r.Seq.Len())
	return seqs[got].Index(origin, 0) >= 0
}
