package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/pim"
	"repro/internal/rng"
)

func init() {
	register(Experiment{ID: "F11", Title: "Ablation: sealed vs raw-counter buckets", Run: runF11})
	register(Experiment{ID: "F12", Title: "Ablation: batched search pipelining", Run: runF12})
}

// runF11 quantifies the sealed/raw-counter design choice (DESIGN.md §6
// item 1): binarized buckets are 32× smaller and crossbar-native but
// lose the ρ(C) attenuation, so their admissible capacity is smaller.
func runF11(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	refLen := cfg.scaled(40_000, 4_000)
	probes := cfg.scaled(150, 30)
	ref := genome.Random(refLen, rng.New(cfg.Seed+101))
	t := &Table{
		ID:    "F11",
		Title: "Sealed (binary) vs raw-counter bucket storage",
		Columns: []string{"storage", "auto-capacity", "buckets", "mem-KiB",
			"recall", "filter-FPR", "PIM-native"},
		Notes: []string{
			"auto-capacity from the statistical model at D=8192, exact mode",
			"raw counters score with full precision but need 32 bits/dim and cannot map onto binary crossbars",
		},
	}
	for _, sealed := range []bool{true, false} {
		lib, err := buildLibrary(core.Params{
			Dim: 8192, Window: 32, Sealed: sealed, Seed: cfg.Seed + 102,
		}, Dataset{Name: "rand", Recs: []genome.Record{{ID: "r", Seq: ref}}})
		if err != nil {
			return nil, err
		}
		src := rng.New(cfg.Seed + 103)
		recall, fpr := filterRates(lib, ref, 32, probes, src)
		t.AddRow(storageName(sealed), lib.Params().Capacity, lib.NumBuckets(),
			float64(lib.MemoryFootprint())/1024, recall, fpr, pimNative(sealed))
	}
	return &Result{Tables: []*Table{t}}, nil
}

func storageName(sealed bool) string {
	if sealed {
		return "sealed"
	}
	return "raw-counters"
}

func pimNative(sealed bool) string {
	if sealed {
		return "yes"
	}
	return "no (digital PIM)"
}

// runF12 measures the pipelined-broadcast optimization and the fully
// in-memory encode+search pipeline against the serial baseline.
func runF12(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	covid, err := covidDataset(cfg)
	if err != nil {
		return nil, err
	}
	lib, eng, err := pimSetup(cfg, covid, pim.DefaultChipConfig())
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed + 104)
	t := &Table{
		ID:    "F12",
		Title: "Batched search: serial vs pipelined broadcast",
		Columns: []string{"batch", "serial-µs", "pipelined-µs", "saved%",
			"inmem-encode-µs/query"},
		Notes: []string{
			"pipelining overlaps the next query's broadcast with the current compute",
			"in-memory encode runs the Horner binding chain on array primitives (bit-exact)",
		},
	}
	w := lib.Params().Window
	for _, batch := range []int{1, 4, 16, 64} {
		var hvs []*hdc.HV
		var encNs float64
		for i := 0; i < batch; i++ {
			wr := sampleWindows(covid, w, 1, src)[0]
			seq := covid.Recs[wr.Ref].Seq
			hv, encCost, err := eng.EncodeInMemory(seq, int(wr.Off))
			if err != nil {
				return nil, err
			}
			encNs += encCost.LatencyNs
			hvs = append(hvs, hv)
		}
		_, bc, err := eng.SearchBatch(hvs)
		if err != nil {
			return nil, err
		}
		saved := 100 * (bc.Serial.LatencyNs - bc.Pipelined) / bc.Serial.LatencyNs
		t.AddRow(batch, bc.Serial.LatencyNs/1000, bc.Pipelined/1000,
			fmt.Sprintf("%.2f", saved), encNs/float64(batch)/1000)
	}
	return &Result{Tables: []*Table{t}}, nil
}
