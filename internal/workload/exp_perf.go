package workload

import (
	"time"

	"repro/internal/accel"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/pim"
	"repro/internal/rng"
)

// bigChip returns a chip large enough for any sweep point, so geometry
// is never the constraint in scaling experiments.
func bigChip() pim.ChipConfig {
	chip := pim.DefaultChipConfig()
	chip.NumArrays = 1 << 18
	return chip
}

func init() {
	register(Experiment{ID: "T2", Title: "Operation-count comparison", Run: runT2})
	register(Experiment{ID: "F5", Title: "Software throughput vs baselines", Run: runF5})
	register(Experiment{ID: "F9", Title: "Scalability with database size", Run: runF9})
}

// runT2 compares the algorithmic work one window query costs: BioHD's
// parallelizable similarity checks against the classical algorithms'
// sequential scans ("simplifies the required sequence matching
// operations").
func runT2(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const window = 32
	refLen := cfg.scaled(200_000, 10_000)
	trials := cfg.scaled(50, 10)
	ref := genome.Random(refLen, rng.New(cfg.Seed+11))
	lib, err := buildLibrary(core.Params{
		Dim: 8192, Window: window, Sealed: true, Seed: cfg.Seed + 12,
	}, Dataset{Name: "rand", Recs: []genome.Record{{ID: "r", Seq: ref}}})
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed + 13)
	var bio core.Stats
	counts := map[string]int{}
	for i := 0; i < trials; i++ {
		off := src.Intn(ref.Len() - window + 1)
		q := ref.Slice(off, off+window)
		_, st, err := lib.Lookup(q)
		if err != nil {
			return nil, err
		}
		bioAdd(&bio, st)
		for _, m := range []baseline.ExactMatcher{
			baseline.Naive{}, baseline.KMP{}, baseline.BMH{}, baseline.ShiftOr{},
		} {
			_, ops := m.Find(ref, q)
			counts[m.Name()] += ops
		}
		_, my := baseline.Myers{}.Find(ref, q, 2)
		counts["myers(k=2)"] += my
		_, dp := baseline.SellersDP{}.Find(ref, q, 2)
		counts["sellers-dp(k=2)"] += dp
	}
	t := &Table{
		ID:      "T2",
		Title:   "Elementary operations per window query",
		Columns: []string{"algorithm", "ops/query", "parallelizable-unit"},
		Notes: []string{
			"BioHD bucket probes are independent D-bit dot products (row-parallel in PIM)",
			"classical scans are sequential in text order",
		},
	}
	t.AddRow("biohd(bucket-probes)", float64(bio.BucketProbes)/float64(trials), "D-bit dot product")
	t.AddRow("biohd(verify-bases)", float64(bio.BaseComparisons)/float64(trials), "base compare")
	for _, name := range []string{"naive", "kmp", "bmh", "shift-or", "myers(k=2)", "sellers-dp(k=2)"} {
		t.AddRow(name, float64(counts[name])/float64(trials), "char/word step")
	}
	return &Result{Tables: []*Table{t}}, nil
}

// bioAdd is a tiny named wrapper so core.Stats aggregation stays local.
// (core.Stats has an unexported add; replicate the sum here.)
func bioAdd(dst *core.Stats, s core.Stats) {
	dst.Alignments += s.Alignments
	dst.BucketProbes += s.BucketProbes
	dst.CandidateBuckets += s.CandidateBuckets
	dst.WindowsVerified += s.WindowsVerified
	dst.BaseComparisons += s.BaseComparisons
}

// runF5 measures real single-thread Go throughput of BioHD search
// against the software baselines, over the same reference.
func runF5(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const window = 32
	refLen := cfg.scaled(150_000, 10_000)
	queries := cfg.scaled(200, 30)
	ref := genome.Random(refLen, rng.New(cfg.Seed+21))
	lib, err := buildLibrary(core.Params{
		Dim: 8192, Window: window, Sealed: true, Seed: cfg.Seed + 22,
	}, Dataset{Name: "rand", Recs: []genome.Record{{ID: "r", Seq: ref}}})
	if err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed + 23)
	qs := make([]*genome.Sequence, queries)
	for i := range qs {
		if i%2 == 0 {
			off := src.Intn(ref.Len() - window + 1)
			qs[i] = ref.Slice(off, off+window)
		} else {
			qs[i] = genome.Random(window, src)
		}
	}
	t := &Table{
		ID:      "F5",
		Title:   "Measured software throughput (single goroutine)",
		Columns: []string{"engine", "queries/s", "µs/query"},
		Notes:   []string{"wall-clock on this host; PIM projections are experiment F6"},
	}
	timeIt := func(name string, f func(q *genome.Sequence)) {
		start := time.Now()
		for _, q := range qs {
			f(q)
		}
		el := time.Since(start)
		perQ := el.Seconds() / float64(len(qs))
		t.AddRow(name, 1/perQ, perQ*1e6)
	}
	timeIt("biohd", func(q *genome.Sequence) { _, _, _ = lib.Lookup(q) })
	timeIt("shift-or", func(q *genome.Sequence) { baseline.ShiftOr{}.Find(ref, q) })
	timeIt("bmh", func(q *genome.Sequence) { baseline.BMH{}.Find(ref, q) })
	timeIt("kmp", func(q *genome.Sequence) { baseline.KMP{}.Find(ref, q) })
	timeIt("myers(k=2)", func(q *genome.Sequence) { baseline.Myers{}.Find(ref, q, 2) })
	timeIt("sellers-dp(k=2)", func(q *genome.Sequence) { baseline.SellersDP{}.Find(ref, q, 2) })
	return &Result{Tables: []*Table{t}}, nil
}

// runF9 sweeps the database size: BioHD probe work grows with buckets
// (windows/capacity) while classical scans grow with total bases; the
// HDC advantage widens as superposition amortizes more windows per probe.
func runF9(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const window = 32
	trials := cfg.scaled(40, 10)
	t := &Table{
		ID:    "F9",
		Title: "Scaling with database size",
		Columns: []string{"db-bases", "buckets", "probe-ops/query", "scan-ops/query",
			"pim-µs/query", "gpu-µs/query", "recall"},
		Notes: []string{
			"probe op = one D-bit bucket dot; scan op = one Shift-Or word step",
			"pim latency stays near-flat (arrays scale out); GPU latency grows with the database",
		},
	}
	for _, nRefs := range []int{2, 8, 32, 128} {
		refLen := cfg.scaled(20_000, 2_000)
		src := rng.New(cfg.Seed + uint64(nRefs))
		ds := Dataset{Name: "sweep"}
		for i := 0; i < nRefs; i++ {
			ds.Recs = append(ds.Recs, genome.Record{ID: "r", Seq: genome.Random(refLen, src)})
		}
		lib, err := buildLibrary(core.Params{
			Dim: 8192, Window: window, Sealed: true, Seed: cfg.Seed + uint64(nRefs) + 31,
		}, ds)
		if err != nil {
			return nil, err
		}
		eng, err := pim.NewEngine(bigChip(), lib)
		if err != nil {
			return nil, err
		}
		var pimCost pim.Cost
		found, probeOps, scanOps := 0, 0, 0
		for i := 0; i < trials; i++ {
			ri := src.Intn(nRefs)
			ref := ds.Recs[ri].Seq
			off := src.Intn(ref.Len() - window + 1)
			q := ref.Slice(off, off+window)
			matches, st, err := lib.Lookup(q)
			if err != nil {
				return nil, err
			}
			probeOps += st.BucketProbes
			for _, m := range matches {
				if m.Ref == ri && m.Off == off {
					found++
					break
				}
			}
			for _, rec := range ds.Recs {
				_, ops := baseline.ShiftOr{}.Find(rec.Seq, q)
				scanOps += ops
			}
			hv := lib.Encoder().Encode(q, 0, modeOf(lib))
			_, c, err := eng.Search(hv)
			if err != nil {
				return nil, err
			}
			pimCost.Add(c)
		}
		gpu, err := accel.RTX3060Ti().Evaluate(accel.Workload{
			DBBases: ds.TotalBases(), Queries: trials,
			PatternLen: window, Approx: true,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(ds.TotalBases(), lib.NumBuckets(),
			float64(probeOps)/float64(trials),
			float64(scanOps)/float64(trials),
			pimCost.LatencyNs/float64(trials)/1000,
			gpu.LatencyNs/float64(trials)/1000,
			float64(found)/float64(trials))
	}
	return &Result{Tables: []*Table{t}}, nil
}
