package workload

import (
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/genome"
	"repro/internal/rng"
)

func init() {
	register(Experiment{ID: "F14", Title: "Index comparison: BioHD vs FM-index vs Bloom vs whole-ref HDC", Run: runF14})
}

// runF14 compares BioHD's bucketed superposition library against the
// three alternative index designs on the same exact-membership workload:
//
//   - FM-index: the genomics standard (exact, positional, O(m)/query);
//   - k-mer Bloom filter: compact membership, no positions, tunable FPR;
//   - whole-reference HDC: GenieHD-style one-vector-per-reference
//     encoding, whose member signal drowns once N ≳ D windows.
//
// Recall and FPR are measured end-to-end; memory and ops/query come from
// each structure's own accounting.
func runF14(cfg Config) (*Result, error) {
	cfg = cfg.normalized()
	const window = 32
	refLen := cfg.scaled(50_000, 5_000)
	nRefs := 4
	probes := cfg.scaled(200, 40)
	src := rng.New(cfg.Seed + 141)
	refs := make([]*genome.Sequence, nRefs)
	for i := range refs {
		refs[i] = genome.Random(refLen, src)
	}

	// BioHD library.
	lib, err := core.NewLibrary(core.Params{Dim: 8192, Window: window, Sealed: true, Seed: cfg.Seed + 142})
	if err != nil {
		return nil, err
	}
	for i, r := range refs {
		if err := lib.Add(genome.Record{ID: string(rune('a' + i)), Seq: r}); err != nil {
			return nil, err
		}
	}
	lib.Freeze()

	// FM-indexes (one per reference, as aligners build them).
	var fms []*baseline.FMIndex
	for _, r := range refs {
		fm, _, err := baseline.NewFMIndex(r)
		if err != nil {
			return nil, err
		}
		fms = append(fms, fm)
	}

	// Bloom filter over all window-length w-mers.
	bloom, err := baseline.NewKmerBloom(window, nRefs*refLen, 0.001)
	if err != nil {
		return nil, err
	}
	for _, r := range refs {
		bloom.AddSequence(r)
	}

	// Whole-reference HDC.
	whole, err := baseline.NewWholeRefHDC(encoding.Config{Dim: 8192, Window: window, Seed: cfg.Seed + 143})
	if err != nil {
		return nil, err
	}
	for _, r := range refs {
		if err := whole.Add(r); err != nil {
			return nil, err
		}
	}

	type tally struct {
		tp, fn, fp, tn, ops int
	}
	var bio, fm, blm, whl tally
	record := func(t *tally, present, answered bool, ops int) {
		t.ops += ops
		switch {
		case present && answered:
			t.tp++
		case present && !answered:
			t.fn++
		case !present && answered:
			t.fp++
		default:
			t.tn++
		}
	}
	for i := 0; i < probes; i++ {
		var q *genome.Sequence
		present := i%2 == 0
		if present {
			ri := src.Intn(nRefs)
			off := src.Intn(refLen - window)
			q = refs[ri].Slice(off, off+window)
		} else {
			q = genome.Random(window, src)
			found := false
			for _, r := range refs {
				if r.Index(q, 0) >= 0 {
					found = true
				}
			}
			if found {
				present = true
			}
		}
		// BioHD.
		ok, st, err := lib.Contains(q)
		if err != nil {
			return nil, err
		}
		record(&bio, present, ok, st.BucketProbes)
		// FM-index: count over each per-reference index.
		hits, ops := 0, 0
		for _, f := range fms {
			c, o := f.Count(q)
			hits += c
			ops += o
		}
		record(&fm, present, hits > 0, ops)
		// Bloom.
		has, o, err := bloom.Contains(q)
		if err != nil {
			return nil, err
		}
		record(&blm, present, has, o)
		// Whole-reference HDC at a 4σ threshold.
		got, o2, err := whole.Contains(q, 4)
		if err != nil {
			return nil, err
		}
		record(&whl, present, got, o2)
	}

	t := &Table{
		ID:    "F14",
		Title: "Exact window membership across index designs",
		Columns: []string{"engine", "recall", "FPR", "ops/query", "mem-KiB",
			"positions", "mutation-tolerant"},
		Notes: []string{
			"workload: half planted windows, half random 32-mers, over 4 references",
			"whole-ref HDC thresholded at 4σ; its recall collapses as windows/reference exceed D",
		},
	}
	rate := func(t tally) (float64, float64) {
		rec := 0.0
		if t.tp+t.fn > 0 {
			rec = float64(t.tp) / float64(t.tp+t.fn)
		}
		fpr := 0.0
		if t.fp+t.tn > 0 {
			fpr = float64(t.fp) / float64(t.fp+t.tn)
		}
		return rec, fpr
	}
	r1, f1 := rate(bio)
	t.AddRow("biohd", r1, f1, float64(bio.ops)/float64(probes),
		float64(lib.MemoryFootprint())/1024, "yes", "yes (approx mode)")
	r2, f2 := rate(fm)
	var fmMem int64
	for _, f := range fms {
		fmMem += f.MemoryFootprint()
	}
	t.AddRow("fm-index", r2, f2, float64(fm.ops)/float64(probes),
		float64(fmMem)/1024, "yes", "no")
	r3, f3 := rate(blm)
	t.AddRow("bloom", r3, f3, float64(blm.ops)/float64(probes),
		float64(bloom.MemoryFootprint())/1024, "no", "no")
	r4, f4 := rate(whl)
	t.AddRow("wholeref-hdc", r4, f4, float64(whl.ops)/float64(probes),
		float64(whole.MemoryFootprint())/1024, "no", "degraded")
	return &Result{Tables: []*Table{t}}, nil
}
