package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/genome"
	"repro/internal/rng"
)

// Dataset is a named reference collection used across experiments,
// mirroring the paper's evaluation inputs (COVID-19 variant databases,
// bacterial-scale references, random genomes) with synthetic equivalents
// (DESIGN.md §4).
type Dataset struct {
	Name string
	Recs []genome.Record
}

// TotalBases returns the summed sequence length.
func (d Dataset) TotalBases() int64 {
	var n int64
	for _, r := range d.Recs {
		n += int64(r.Seq.Len())
	}
	return n
}

// GCContent returns the base-weighted GC fraction.
func (d Dataset) GCContent() float64 {
	var gc, n float64
	for _, r := range d.Recs {
		c := r.Seq.BaseCounts()
		gc += float64(c[genome.G] + c[genome.C])
		n += float64(r.Seq.Len())
	}
	if n == 0 {
		return 0
	}
	return gc / n
}

// covidDataset builds the COVID-like variant database at the given scale
// (reference: 64 variants of a 29,903-base ancestor).
func covidDataset(cfg Config) (Dataset, error) {
	vcfg := genome.DefaultVariantDBConfig()
	vcfg.NumVariants = cfg.scaled(64, 4)
	vcfg.AncestorLen = cfg.scaled(29903, 1000)
	vcfg.Seed = cfg.Seed
	db, err := genome.GenerateVariantDB(vcfg)
	if err != nil {
		return Dataset{}, err
	}
	ds := Dataset{Name: "covid-like"}
	for _, v := range db.Variants {
		ds.Recs = append(ds.Recs, v.Record)
	}
	return ds, nil
}

// bacterialDataset builds a single long random reference (reference
// scale: one 1 Mb chromosome at 50% GC).
func bacterialDataset(cfg Config) Dataset {
	n := cfg.scaled(1_000_000, 20_000)
	seq := genome.Random(n, rng.New(cfg.Seed+1))
	return Dataset{
		Name: "bacterial-like",
		Recs: []genome.Record{{ID: "chr1", Description: "synthetic chromosome", Seq: seq}},
	}
}

// skewedDataset builds GC-skewed references (reference scale: 16 × 50 kb
// at 65% GC), exercising encoder robustness to composition bias.
func skewedDataset(cfg Config) Dataset {
	src := rng.New(cfg.Seed + 2)
	ds := Dataset{Name: "gc-skewed"}
	n := cfg.scaled(16, 2)
	length := cfg.scaled(50_000, 5_000)
	for i := 0; i < n; i++ {
		ds.Recs = append(ds.Recs, genome.Record{
			ID:  fmt.Sprintf("gc-%02d", i),
			Seq: genome.RandomGC(length, 0.65, src),
		})
	}
	return ds
}

// buildLibrary constructs and freezes a library over a dataset.
func buildLibrary(params core.Params, ds Dataset) (*core.Library, error) {
	lib, err := core.NewLibrary(params)
	if err != nil {
		return nil, err
	}
	for _, rec := range ds.Recs {
		if err := lib.Add(rec); err != nil {
			return nil, err
		}
	}
	lib.Freeze()
	if !lib.Frozen() {
		return nil, fmt.Errorf("workload: dataset %q produced an empty library", ds.Name)
	}
	return lib, nil
}

// sampleWindows draws n (refIdx, offset) window positions uniformly from
// the dataset.
func sampleWindows(ds Dataset, window, n int, src *rng.Source) []core.WindowRef {
	var eligible []int
	for i, r := range ds.Recs {
		if r.Seq.Len() >= window {
			eligible = append(eligible, i)
		}
	}
	out := make([]core.WindowRef, 0, n)
	for i := 0; i < n && len(eligible) > 0; i++ {
		ri := eligible[src.Intn(len(eligible))]
		off := src.Intn(ds.Recs[ri].Seq.Len() - window + 1)
		out = append(out, core.WindowRef{Ref: int32(ri), Off: int32(off)})
	}
	return out
}
