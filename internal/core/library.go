package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/encoding"
	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/mmapfile"
)

// ErrClosed is returned by operations on a library whose Close has
// been called (only mmap-backed libraries reject reads after Close —
// their arenas are unmapped — but mutations fail on any closed
// library).
var ErrClosed = errors.New("core: library is closed")

// Params configures a BioHD reference library.
type Params struct {
	// Dim is the hypervector dimension (positive multiple of 64).
	Dim int
	// Window is the pattern/window length in bases.
	Window int
	// Stride is the spacing of reference window starts; 1 indexes every
	// offset (full sensitivity), larger strides trade recall for library
	// size. See Library.Lookup for how queries compensate.
	Stride int
	// Capacity is the number of windows bundled per library hypervector;
	// 0 derives the largest statistically admissible capacity from the
	// quality model (MaxCapacity at MutTolerance).
	Capacity int
	// Approx selects the positional-bundle encoding (approximate search);
	// false selects the binding-chain encoding (exact search only).
	Approx bool
	// Sealed stores buckets as binarized hypervectors; false keeps raw
	// counters (more precise scores, W·log₂ storage overhead). The PIM
	// architecture stores sealed buckets; raw counters model a
	// digital-PIM variant.
	Sealed bool
	// MutTolerance is the number of per-window substitutions approximate
	// search must withstand; used for auto capacity and thresholds.
	MutTolerance int
	// Alpha is the family-wise false-positive target per Lookup
	// (default 1e-3 if zero).
	Alpha float64
	// Beta is the per-match false-negative target (default 1e-3 if zero).
	Beta float64
	// Seed determines the item memory and all derived randomness.
	Seed uint64
}

func (p *Params) applyDefaults() {
	if p.Stride == 0 {
		p.Stride = 1
	}
	if p.Alpha == 0 {
		p.Alpha = 1e-3
	}
	if p.Beta == 0 {
		p.Beta = 1e-3
	}
}

// Validate checks the parameters (after defaulting).
func (p Params) Validate() error {
	if p.Dim <= 0 || p.Dim%64 != 0 {
		return fmt.Errorf("core: Dim %d must be a positive multiple of 64", p.Dim)
	}
	if p.Window <= 0 || p.Window >= p.Dim {
		return fmt.Errorf("core: Window %d must be in (0, Dim)", p.Window)
	}
	if p.Stride <= 0 {
		return fmt.Errorf("core: Stride %d must be positive", p.Stride)
	}
	if p.Capacity < 0 {
		return fmt.Errorf("core: Capacity %d must be non-negative", p.Capacity)
	}
	if p.MutTolerance < 0 || p.MutTolerance > p.Window {
		return fmt.Errorf("core: MutTolerance %d out of [0, Window]", p.MutTolerance)
	}
	// The negated form rejects NaN as well as out-of-range values.
	if !(p.Alpha > 0 && p.Alpha < 1) || !(p.Beta > 0 && p.Beta < 1) {
		return fmt.Errorf("core: error targets alpha=%v beta=%v out of (0,1)", p.Alpha, p.Beta)
	}
	if !p.Approx && p.MutTolerance > 0 {
		return fmt.Errorf("core: exact encoding cannot tolerate %d mutations; set Approx", p.MutTolerance)
	}
	return nil
}

// WindowRef identifies one reference window: sequence index and offset.
type WindowRef struct {
	Ref int32
	Off int32
}

// defaultSealThreshold is the active-segment bucket count at which a
// post-freeze Add seals the active segment into a new immutable one.
const defaultSealThreshold = 4096

// Library is a BioHD reference library: genome references encoded window
// by window and memorized into superposed hypervector buckets.
//
// The library is segmented: immutable sealed segments plus one mutable
// active segment, with every read path going through an atomically
// published snapshot. Build with NewLibrary/Add, then Freeze; after
// Freeze the library keeps accepting Add and Remove concurrently with
// searches — each mutation assembles the next snapshot off-line under
// the mutation lock and publishes it with one pointer swap, so readers
// never lock and never observe a half-applied change. The active
// segment auto-seals into a new immutable segment once it reaches
// SetSealThreshold buckets, and Compact rewrites segments whose
// tombstone fraction (from Remove) crossed a trigger.
type Library struct {
	params Params
	enc    *encoding.Encoder

	// snap is the current read view. Nil until Freeze; every search path
	// loads it exactly once per operation.
	snap atomic.Pointer[snapshot]

	// mu serializes mutations (Add, Remove, Compact, Freeze). The master
	// state below is only touched with mu held.
	mu     sync.Mutex
	refs   []genome.Record // master reference table (removed ⇒ Seq nil)
	segs   []*segment      // sealed segments, in creation order
	active *builder        // the mutable tail
	cal    Calibration

	sealThreshold int     // active-segment bucket count that triggers auto-seal
	autoCompact   float64 // tombstone ratio that triggers compaction on Remove; 0 = manual

	// scratch pools per-query lookup state (query hypervector, counter
	// accumulator, candidate slice) so steady-state Lookup does not
	// allocate; see lookupScratch.
	scratch sync.Pool

	// blockPool pools the cross-query scratch plane of the blocked probe
	// paths — one query block's worth of encodings, kernel state, and
	// candidate buffers; see blockScratch.
	blockPool sync.Pool

	// ctr accumulates lifetime operational counters (probe scans, early
	// abandons, batch cancellations, seals, compactions) for the /metrics
	// endpoint; see Counters.
	ctr libCounters

	// errShort is the invalid-pattern error, precomputed so the batch
	// path reports it without formatting on a hot path.
	errShort error

	// mapped marks a library whose sealed arenas alias a read-only file
	// mapping (OpenLibraryFile with MapArena). Immutable after
	// construction, so the hot read paths branch on it without
	// synchronization. Heap libraries skip the reader accounting below
	// entirely — their storage never disappears, so reads cost nothing
	// extra.
	mapped bool
	// mapping is the backing file mapping of a mapped library; guarded
	// by mu (Close nils it after unmapping).
	mapping *mmapfile.Mapping
	// readers counts in-flight read operations of a mapped library;
	// Close unmaps only after it drains to zero.
	readers atomic.Int64
	// closed is set by Close; mapped reads and all mutations fail once
	// it is observed.
	closed atomic.Bool
}

// beginRead opens a read section: every public operation that touches
// segment arenas brackets itself with beginRead/endRead so Close can
// drain in-flight readers before unmapping. Heap-backed libraries pay
// a single predictable branch. A false return means the library is
// closed and the arenas are (or are about to be) unmapped; the caller
// must fail with ErrClosed without touching storage.
//
//biohd:hotpath
func (l *Library) beginRead() bool {
	if !l.mapped {
		return true
	}
	l.readers.Add(1)
	// Increment before the closed check: Close sets closed first, then
	// waits for readers to drain, so either it observes our increment
	// and waits for endRead, or we observe closed and back out.
	if l.closed.Load() {
		l.readers.Add(-1)
		return false
	}
	return true
}

// endRead closes a read section opened by beginRead.
//
//biohd:hotpath
func (l *Library) endRead() {
	if l.mapped {
		l.readers.Add(-1)
	}
}

// Close shuts the library down. For a mapped library it waits for
// in-flight reads to drain, then unmaps the backing file — after which
// any retained arena alias (e.g. a BucketVector result) is invalid.
// Heap libraries just stop accepting mutations and reads keep working;
// either way Close is idempotent and further mutations return
// ErrClosed.
func (l *Library) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Swap(true) {
		return nil
	}
	if l.mapping == nil {
		return nil
	}
	// Drain: new readers observe closed and back out; existing ones
	// finish their scan and decrement. Scans are short (no blocking
	// operations inside a read section), so yielding is enough.
	for l.readers.Load() != 0 {
		runtime.Gosched()
	}
	err := l.mapping.Close()
	l.mapping = nil
	return err
}

// Mapped reports whether the library's sealed arenas alias a read-only
// file mapping (zero-copy v3 load) rather than heap storage.
func (l *Library) Mapped() bool { return l.mapped }

// MappedBytes returns the size of the backing file mapping, or 0 for
// heap-loaded (or closed) libraries. This is address space, not
// resident memory — the kernel pages the hot subset in and out.
func (l *Library) MappedBytes() int64 {
	if !l.mapped {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.mapping == nil {
		return 0
	}
	return int64(l.mapping.Len())
}

// ResidentBytes estimates the bytes of the library's search store
// currently resident in RAM. For a mapped library it asks the kernel
// (mincore over the whole mapping), which is what makes the low-mem
// tier observable: mapped minus resident is the working-set savings.
// Where mincore is unavailable it conservatively reports the full
// mapping, and for heap-loaded libraries the heap footprint — heap
// pages are not file-backed, so they are resident by construction.
func (l *Library) ResidentBytes() int64 {
	if !l.mapped {
		return l.MemoryFootprint()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.mapping == nil {
		return 0
	}
	n, err := l.mapping.Resident(0, l.mapping.Len())
	if err != nil {
		return int64(l.mapping.Len())
	}
	return n
}

// lookupScratch is the reusable per-query state of the lookup paths.
// Instances are pooled on the library; a frozen library is probed
// concurrently (LookupBatch), so scratch must be per-call, not shared.
type lookupScratch struct {
	hv    *hdc.HV  // query window encoding
	acc   *hdc.Acc // counter scratch for approximate encoding; nil in exact mode
	cands []Candidate
}

// candidateHint pre-sizes candidate slices: probes that hit at all
// typically yield a handful of buckets, so this avoids append growth
// churn without holding meaningful memory.
const candidateHint = 16

// getScratch returns pooled per-query lookup state, constructing it on
// a pool miss.
//
//biohd:coldstart pool-miss construction; steady state reuses pooled scratch
func (l *Library) getScratch() *lookupScratch {
	if s, ok := l.scratch.Get().(*lookupScratch); ok {
		return s
	}
	s := &lookupScratch{
		hv:    hdc.NewHV(l.params.Dim),
		cands: make([]Candidate, 0, candidateHint),
	}
	if l.params.Approx {
		s.acc = hdc.NewAcc(l.params.Dim)
	}
	return s
}

func (l *Library) putScratch(s *lookupScratch) { l.scratch.Put(s) }

// blockScratch is the reusable state of the query-blocked probe paths
// (ProbeMulti, LookupLong, lookupBlock): one block's worth of query
// window encodings, the multi-kernel's word views, bounds and distance
// vectors, per-query candidate buffers, and the diagonal-voting state
// of LookupLong. Pooled per library — batch workers run blocked probes
// concurrently, so the plane must be per-call, not shared.
type blockScratch struct {
	hvs    []*hdc.HV     // query window encodings, probeBlock of them
	acc    *hdc.Acc      // counter scratch for approximate encoding; nil in exact mode
	qs     [][]uint64    // word views of the active encodings, for the multi kernel
	bounds []int         // per-query Hamming bounds
	dist   []int         // per-query distances (kernel output)
	cands  [][]Candidate // per-query candidate buffers

	// LookupLong's diagonal voting state, reused across calls so a long
	// read does not rebuild its maps window by window.
	matches []Match          // per-window match buffer
	seen    map[diagKey]bool // per-window diagonal dedup
	votes   map[diagKey]int  // per-call diagonal votes
	best    map[int]diagKey  // per-call winning diagonal per reference
}

// getBlockScratch returns the pooled cross-query scratch plane,
// constructing it on a pool miss.
//
//biohd:coldstart pool-miss construction; steady state reuses pooled scratch
func (l *Library) getBlockScratch() *blockScratch {
	if s, ok := l.blockPool.Get().(*blockScratch); ok {
		return s
	}
	s := &blockScratch{
		hvs:    make([]*hdc.HV, probeBlock),
		qs:     make([][]uint64, 0, probeBlock),
		bounds: make([]int, probeBlock),
		dist:   make([]int, probeBlock),
		cands:  make([][]Candidate, probeBlock),
		seen:   make(map[diagKey]bool),
		votes:  make(map[diagKey]int),
		best:   make(map[int]diagKey),
	}
	for i := range s.hvs {
		s.hvs[i] = hdc.NewHV(l.params.Dim)
	}
	for i := range s.cands {
		s.cands[i] = make([]Candidate, 0, candidateHint)
	}
	if l.params.Approx {
		s.acc = hdc.NewAcc(l.params.Dim)
	}
	return s
}

func (l *Library) putBlockScratch(s *blockScratch) { l.blockPool.Put(s) }

// NewLibrary creates an empty library with the given parameters.
// If params.Capacity is 0 it is derived from the statistical model.
func NewLibrary(params Params) (*Library, error) {
	params.applyDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Capacity == 0 {
		// Capacity planning assumes a generously sized library (1<<20
		// buckets) for the Bonferroni term; the threshold at search time
		// uses the real bucket count.
		params.Capacity = MaxCapacity(params.Dim, params.Window, params.Approx,
			params.Sealed, params.MutTolerance, 1<<20, params.Alpha, params.Beta)
	}
	enc, err := encoding.New(encoding.Config{
		Dim:    params.Dim,
		Window: params.Window,
		Seed:   params.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Library{
		params:        params,
		enc:           enc,
		active:        &builder{},
		sealThreshold: defaultSealThreshold,
		errShort:      fmt.Errorf("core: pattern shorter than window %d", params.Window),
	}, nil
}

// Params returns the library's effective parameters (with derived
// capacity filled in).
func (l *Library) Params() Params { return l.params }

// Encoder exposes the library's encoder (e.g. for encoding queries
// outside Lookup).
func (l *Library) Encoder() *encoding.Encoder { return l.enc }

// SetSealThreshold sets the active-segment bucket count at which a
// post-freeze Add seals the active segment into a new immutable one
// (default 4096; n ≤ 0 restores the default).
func (l *Library) SetSealThreshold(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 {
		n = defaultSealThreshold
	}
	l.sealThreshold = n
}

// SetAutoCompact sets the tombstone ratio at which Remove triggers an
// automatic Compact of the affected segments; ratio ≤ 0 (the default)
// keeps compaction manual.
func (l *Library) SetAutoCompact(ratio float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.autoCompact = ratio
}

// NumBuckets returns the number of library hypervectors.
func (l *Library) NumBuckets() int {
	if sn := l.snap.Load(); sn != nil {
		return sn.numBuckets()
	}
	return l.active.numBuckets()
}

// NumWindows returns the number of live (non-removed) reference windows
// memorized.
func (l *Library) NumWindows() int {
	if sn := l.snap.Load(); sn != nil {
		return sn.nWin
	}
	return l.active.numWindows()
}

// NumRefs returns the number of reference sequences added, including
// removed ones (tombstoned slots keep their indices).
func (l *Library) NumRefs() int {
	if sn := l.snap.Load(); sn != nil {
		return len(sn.refs)
	}
	return len(l.refs)
}

// Ref returns the i-th reference record. A removed reference has a nil
// Seq and a " (removed)" description suffix.
func (l *Library) Ref(i int) genome.Record {
	if sn := l.snap.Load(); sn != nil {
		return sn.refs[i]
	}
	return l.refs[i]
}

// NumSegments returns the number of segments in the current snapshot
// (sealed segments plus the active view); 0 before Freeze.
func (l *Library) NumSegments() int {
	if sn := l.snap.Load(); sn != nil {
		return sn.numSegments()
	}
	return 0
}

// TombstoneRatio returns the fraction of memorized windows whose
// reference has been removed but not yet compacted away.
func (l *Library) TombstoneRatio() float64 {
	if sn := l.snap.Load(); sn != nil {
		return sn.tombRatio()
	}
	return 0
}

// SegmentInfo describes one segment of the current snapshot.
type SegmentInfo struct {
	Buckets    int // buckets in the segment
	Windows    int // member windows, including tombstoned ones
	Tombstones int // member windows whose reference was removed
}

// Segments describes the current snapshot's segments in scan order.
func (l *Library) Segments() []SegmentInfo {
	sn := l.snap.Load()
	if sn == nil {
		return nil
	}
	out := make([]SegmentInfo, len(sn.segs))
	for k, seg := range sn.segs {
		out[k] = SegmentInfo{Buckets: seg.numBuckets(), Windows: seg.total, Tombstones: seg.tombs}
	}
	return out
}

// Model returns the statistical model for this library's geometry. The
// capacity entering the model is the *effective* one — the largest
// actual bucket occupancy — so a generously configured capacity over a
// small reference set does not inflate the predicted noise.
func (l *Library) Model() Model {
	c := 0
	if sn := l.snap.Load(); sn != nil {
		c = sn.maxOccupancy()
	} else {
		c = l.active.maxOccupancy()
	}
	return l.modelWith(c)
}

func (l *Library) modelWith(c int) Model {
	if c == 0 {
		c = l.params.Capacity
	}
	return Model{
		D:      l.params.Dim,
		W:      l.params.Window,
		C:      c,
		Approx: l.params.Approx,
		Sealed: l.params.Sealed,
	}
}

// Add encodes every stride-aligned window of rec and memorizes it.
// References shorter than one window are rejected. Before Freeze, Add
// builds the initial segment; after Freeze, Add appends to the active
// segment and publishes a new snapshot, so the reference becomes
// searchable immediately and concurrently running lookups are never
// disturbed. The active segment auto-seals at the SetSealThreshold
// bucket count.
func (l *Library) Add(rec genome.Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.addLocked(rec)
}

func (l *Library) addLocked(rec genome.Record) error {
	if l.closed.Load() {
		return ErrClosed
	}
	if rec.Seq == nil || rec.Seq.Len() < l.params.Window {
		return fmt.Errorf("core: reference %q shorter than window %d", rec.ID, l.params.Window)
	}
	refIdx := int32(len(l.refs))
	l.refs = append(l.refs, rec)
	if l.params.Approx {
		l.enc.SlideApprox(rec.Seq, l.params.Stride, func(start int, acc *hdc.Acc, off int) bool {
			l.active.insert(WindowRef{Ref: refIdx, Off: int32(start)}, l.enc.SealLogical(acc, off), &l.params)
			return true
		})
	} else {
		l.enc.SlideExact(rec.Seq, l.params.Stride, func(start int, hv *hdc.HV) bool {
			l.active.insert(WindowRef{Ref: refIdx, Off: int32(start)}, hv, &l.params)
			return true
		})
	}
	if l.snap.Load() == nil {
		return nil // still building; Freeze publishes the first snapshot
	}
	l.maybeSealActiveLocked()
	l.publishLocked(true)
	return nil
}

// maybeSealActiveLocked seals the active segment into a new immutable
// one when it has reached the auto-seal threshold. Sealing happens at
// Add granularity — a reference's windows never straddle a seal that
// its own Add triggered mid-insert.
func (l *Library) maybeSealActiveLocked() {
	if l.active.numBuckets() < l.sealThreshold {
		return
	}
	if seg := l.active.seal(&l.params, l.refs); seg != nil {
		l.segs = append(l.segs, seg)
		l.ctr.segmentSeals.Add(1)
	}
}

// Freeze publishes the first snapshot: the buckets built so far seal
// into the library's first immutable segment, approximate-mode libraries
// calibrate their operating threshold (see Calibration), and the library
// becomes safe for concurrent search — and, unlike the pre-segmented
// design, keeps accepting Add/Remove/Compact afterwards. Freezing an
// empty library is a no-op that leaves it unfrozen.
func (l *Library) Freeze() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Load() || l.snap.Load() != nil || l.active.numBuckets() == 0 {
		return
	}
	if seg := l.active.seal(&l.params, l.refs); seg != nil {
		l.segs = append(l.segs, seg)
	}
	l.publishLocked(true)
}

// publishLocked assembles a fresh snapshot from the master state — the
// sealed segments plus an isolated view of the active builder — and
// publishes it with one atomic pointer swap. recal re-runs threshold
// calibration (approximate mode only) on the new snapshot before it
// goes live, so readers never see a snapshot whose calibration lags its
// contents.
func (l *Library) publishLocked(recal bool) {
	segs := make([]*segment, 0, len(l.segs)+1)
	segs = append(segs, l.segs...)
	if v := l.active.view(&l.params, l.refs); v != nil {
		segs = append(segs, v)
	}
	refs := l.refs[:len(l.refs):len(l.refs)]
	sn := newSnapshot(segs, refs, l.cal)
	if recal && l.params.Approx && sn.numBuckets() > 0 {
		sn.cal = l.calibrate(sn)
		l.cal = sn.cal
	}
	l.snap.Store(sn)
}

// Frozen reports whether Freeze has been called (the library serves
// searches). Frozen libraries still accept Add, Remove, and Compact.
func (l *Library) Frozen() bool { return l.snap.Load() != nil }

// BucketWindows returns the member windows of bucket i (shared slice; do
// not mutate). Windows of removed references are included; check
// Ref(wr.Ref).Seq != nil for liveness. An out-of-range index — e.g. a
// Candidate.Bucket held across a Compact that shrank the library —
// returns nil rather than panicking.
func (l *Library) BucketWindows(i int) []WindowRef {
	if sn := l.snap.Load(); sn != nil {
		seg, li, ok := sn.locateOK(i)
		if !ok {
			return nil
		}
		return seg.windows(li)
	}
	if i < 0 || i >= l.active.numBuckets() {
		return nil
	}
	return l.active.windows(i)
}

// BucketVector returns the sealed hypervector of bucket i (shared; do
// not mutate — and do not retain across Close on a mapped library, the
// words alias the file mapping). It panics if the library is not
// frozen — the sealed view only exists after Freeze — but an
// out-of-range index, like a stale bucket index held across a Compact,
// returns nil rather than panicking.
func (l *Library) BucketVector(i int) *hdc.HV {
	sn := l.snap.Load()
	if sn == nil {
		panic("core: BucketVector before Freeze")
	}
	if !l.beginRead() {
		return nil
	}
	defer l.endRead()
	seg, li, ok := sn.locateOK(i)
	if !ok {
		return nil
	}
	return seg.vector(li)
}

// MemoryFootprint returns the library's resident search-store size in
// bytes: the packed probe arenas (sealed mode: D/8 bytes per bucket),
// any retained raw counters (unsealed mode: D·4 bytes per bucket), and
// the window metadata (8 bytes per memorized window).
func (l *Library) MemoryFootprint() int64 {
	if sn := l.snap.Load(); sn != nil {
		return sn.footprintBytes(l.params.Dim)
	}
	return l.active.footprintBytes(l.params.Dim)
}
