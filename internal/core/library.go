package core

import (
	"fmt"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/encoding"
	"repro/internal/genome"
	"repro/internal/hdc"
)

// Params configures a BioHD reference library.
type Params struct {
	// Dim is the hypervector dimension (positive multiple of 64).
	Dim int
	// Window is the pattern/window length in bases.
	Window int
	// Stride is the spacing of reference window starts; 1 indexes every
	// offset (full sensitivity), larger strides trade recall for library
	// size. See Library.Lookup for how queries compensate.
	Stride int
	// Capacity is the number of windows bundled per library hypervector;
	// 0 derives the largest statistically admissible capacity from the
	// quality model (MaxCapacity at MutTolerance).
	Capacity int
	// Approx selects the positional-bundle encoding (approximate search);
	// false selects the binding-chain encoding (exact search only).
	Approx bool
	// Sealed stores buckets as binarized hypervectors; false keeps raw
	// counters (more precise scores, W·log₂ storage overhead). The PIM
	// architecture stores sealed buckets; raw counters model a
	// digital-PIM variant.
	Sealed bool
	// MutTolerance is the number of per-window substitutions approximate
	// search must withstand; used for auto capacity and thresholds.
	MutTolerance int
	// Alpha is the family-wise false-positive target per Lookup
	// (default 1e-3 if zero).
	Alpha float64
	// Beta is the per-match false-negative target (default 1e-3 if zero).
	Beta float64
	// Seed determines the item memory and all derived randomness.
	Seed uint64
}

func (p *Params) applyDefaults() {
	if p.Stride == 0 {
		p.Stride = 1
	}
	if p.Alpha == 0 {
		p.Alpha = 1e-3
	}
	if p.Beta == 0 {
		p.Beta = 1e-3
	}
}

// Validate checks the parameters (after defaulting).
func (p Params) Validate() error {
	if p.Dim <= 0 || p.Dim%64 != 0 {
		return fmt.Errorf("core: Dim %d must be a positive multiple of 64", p.Dim)
	}
	if p.Window <= 0 || p.Window >= p.Dim {
		return fmt.Errorf("core: Window %d must be in (0, Dim)", p.Window)
	}
	if p.Stride <= 0 {
		return fmt.Errorf("core: Stride %d must be positive", p.Stride)
	}
	if p.Capacity < 0 {
		return fmt.Errorf("core: Capacity %d must be non-negative", p.Capacity)
	}
	if p.MutTolerance < 0 || p.MutTolerance > p.Window {
		return fmt.Errorf("core: MutTolerance %d out of [0, Window]", p.MutTolerance)
	}
	// The negated form rejects NaN as well as out-of-range values.
	if !(p.Alpha > 0 && p.Alpha < 1) || !(p.Beta > 0 && p.Beta < 1) {
		return fmt.Errorf("core: error targets alpha=%v beta=%v out of (0,1)", p.Alpha, p.Beta)
	}
	if !p.Approx && p.MutTolerance > 0 {
		return fmt.Errorf("core: exact encoding cannot tolerate %d mutations; set Approx", p.MutTolerance)
	}
	return nil
}

// WindowRef identifies one reference window: sequence index and offset.
type WindowRef struct {
	Ref int32
	Off int32
}

// bucket is one library hypervector plus the windows superposed in it.
// Sealed libraries drop a bucket's counters as soon as it fills (the
// binary view is all search needs — 32× less memory); unsealed libraries
// keep the counters, which DotAcc scoring reads directly.
type bucket struct {
	acc     *hdc.Acc    // raw counters; nil once sealed-and-dropped
	sealed  *hdc.HV     // binarized view; nil until sealed
	windows []WindowRef // members, in insertion order
}

// Library is a BioHD reference library: genome references encoded window
// by window and memorized into superposed hypervector buckets.
//
// Build once with NewLibrary/Add, then Freeze and search. A frozen
// library is safe for concurrent Lookup calls.
type Library struct {
	params Params
	enc    *encoding.Encoder
	refs   []genome.Record // retained for candidate verification
	bkts   []bucket
	frozen bool
	nWin   int
	cal    Calibration

	// arena is the flat probe store, built when the library freezes:
	// every bucket's sealed hypervector packed back-to-back
	// (nBuckets × rowWords words). The probe kernel scans it as one
	// streaming read instead of chasing per-bucket heap pointers, and
	// each bucket's sealed HV is repointed to alias its row, so
	// BucketVector/score/WriteTo all read the same storage.
	arena    []uint64
	rowWords int

	// scratch pools per-query lookup state (query hypervector, counter
	// accumulator, candidate slice) so steady-state Lookup does not
	// allocate; see lookupScratch.
	scratch sync.Pool

	// blockPool pools the cross-query scratch plane of the blocked probe
	// paths — one query block's worth of encodings, kernel state, and
	// candidate buffers; see blockScratch.
	blockPool sync.Pool

	// ctr accumulates lifetime operational counters (probe scans, early
	// abandons, batch cancellations) for the /metrics endpoint; see
	// Counters.
	ctr libCounters
}

// lookupScratch is the reusable per-query state of the lookup paths.
// Instances are pooled on the library; a frozen library is probed
// concurrently (LookupBatch), so scratch must be per-call, not shared.
type lookupScratch struct {
	hv    *hdc.HV  // query window encoding
	acc   *hdc.Acc // counter scratch for approximate encoding; nil in exact mode
	cands []Candidate
}

// candidateHint pre-sizes candidate slices: probes that hit at all
// typically yield a handful of buckets, so this avoids append growth
// churn without holding meaningful memory.
const candidateHint = 16

func (l *Library) getScratch() *lookupScratch {
	if s, ok := l.scratch.Get().(*lookupScratch); ok {
		return s
	}
	s := &lookupScratch{
		hv:    hdc.NewHV(l.params.Dim),
		cands: make([]Candidate, 0, candidateHint),
	}
	if l.params.Approx {
		s.acc = hdc.NewAcc(l.params.Dim)
	}
	return s
}

func (l *Library) putScratch(s *lookupScratch) { l.scratch.Put(s) }

// blockScratch is the reusable state of the query-blocked probe paths
// (ProbeMulti, LookupLong, lookupBlock): one block's worth of query
// window encodings, the multi-kernel's word views, bounds and distance
// vectors, per-query candidate buffers, and the diagonal-voting state
// of LookupLong. Pooled per library — batch workers run blocked probes
// concurrently, so the plane must be per-call, not shared.
type blockScratch struct {
	hvs    []*hdc.HV     // query window encodings, probeBlock of them
	acc    *hdc.Acc      // counter scratch for approximate encoding; nil in exact mode
	qs     [][]uint64    // word views of the active encodings, for the multi kernel
	bounds []int         // per-query Hamming bounds
	dist   []int         // per-query distances (kernel output)
	cands  [][]Candidate // per-query candidate buffers

	// LookupLong's diagonal voting state, reused across calls so a long
	// read does not rebuild its maps window by window.
	matches []Match          // per-window match buffer
	seen    map[diagKey]bool // per-window diagonal dedup
	votes   map[diagKey]int  // per-call diagonal votes
	best    map[int]diagKey  // per-call winning diagonal per reference
}

func (l *Library) getBlockScratch() *blockScratch {
	if s, ok := l.blockPool.Get().(*blockScratch); ok {
		return s
	}
	s := &blockScratch{
		hvs:    make([]*hdc.HV, probeBlock),
		qs:     make([][]uint64, 0, probeBlock),
		bounds: make([]int, probeBlock),
		dist:   make([]int, probeBlock),
		cands:  make([][]Candidate, probeBlock),
		seen:   make(map[diagKey]bool),
		votes:  make(map[diagKey]int),
		best:   make(map[int]diagKey),
	}
	for i := range s.hvs {
		s.hvs[i] = hdc.NewHV(l.params.Dim)
	}
	for i := range s.cands {
		s.cands[i] = make([]Candidate, 0, candidateHint)
	}
	if l.params.Approx {
		s.acc = hdc.NewAcc(l.params.Dim)
	}
	return s
}

func (l *Library) putBlockScratch(s *blockScratch) { l.blockPool.Put(s) }

// NewLibrary creates an empty library with the given parameters.
// If params.Capacity is 0 it is derived from the statistical model.
func NewLibrary(params Params) (*Library, error) {
	params.applyDefaults()
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if params.Capacity == 0 {
		// Capacity planning assumes a generously sized library (1<<20
		// buckets) for the Bonferroni term; the threshold at search time
		// uses the real bucket count.
		params.Capacity = MaxCapacity(params.Dim, params.Window, params.Approx,
			params.Sealed, params.MutTolerance, 1<<20, params.Alpha, params.Beta)
	}
	enc, err := encoding.New(encoding.Config{
		Dim:    params.Dim,
		Window: params.Window,
		Seed:   params.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Library{params: params, enc: enc}, nil
}

// Params returns the library's effective parameters (with derived
// capacity filled in).
func (l *Library) Params() Params { return l.params }

// Encoder exposes the library's encoder (e.g. for encoding queries
// outside Lookup).
func (l *Library) Encoder() *encoding.Encoder { return l.enc }

// NumBuckets returns the number of library hypervectors.
func (l *Library) NumBuckets() int { return len(l.bkts) }

// NumWindows returns the number of reference windows memorized.
func (l *Library) NumWindows() int { return l.nWin }

// NumRefs returns the number of reference sequences added.
func (l *Library) NumRefs() int { return len(l.refs) }

// Ref returns the i-th reference record.
func (l *Library) Ref(i int) genome.Record { return l.refs[i] }

// Model returns the statistical model for this library's geometry. The
// capacity entering the model is the *effective* one — the largest
// actual bucket occupancy — so a generously configured capacity over a
// small reference set does not inflate the predicted noise.
func (l *Library) Model() Model {
	c := 0
	for i := range l.bkts {
		if n := len(l.bkts[i].windows); n > c {
			c = n
		}
	}
	if c == 0 {
		c = l.params.Capacity
	}
	return Model{
		D:      l.params.Dim,
		W:      l.params.Window,
		C:      c,
		Approx: l.params.Approx,
		Sealed: l.params.Sealed,
	}
}

// Add encodes every stride-aligned window of rec and memorizes it.
// References shorter than one window are rejected. Add must not be
// called after Freeze.
func (l *Library) Add(rec genome.Record) error {
	if l.frozen {
		return fmt.Errorf("core: Add after Freeze")
	}
	if rec.Seq == nil || rec.Seq.Len() < l.params.Window {
		return fmt.Errorf("core: reference %q shorter than window %d", rec.ID, l.params.Window)
	}
	refIdx := int32(len(l.refs))
	l.refs = append(l.refs, rec)
	if l.params.Approx {
		l.enc.SlideApprox(rec.Seq, l.params.Stride, func(start int, acc *hdc.Acc, off int) bool {
			l.insert(WindowRef{Ref: refIdx, Off: int32(start)}, l.enc.SealLogical(acc, off))
			return true
		})
	} else {
		l.enc.SlideExact(rec.Seq, l.params.Stride, func(start int, hv *hdc.HV) bool {
			l.insert(WindowRef{Ref: refIdx, Off: int32(start)}, hv)
			return true
		})
	}
	return nil
}

func (l *Library) insert(ref WindowRef, hv *hdc.HV) {
	if n := len(l.bkts); n == 0 || len(l.bkts[n-1].windows) >= l.params.Capacity {
		if n > 0 {
			l.sealBucket(n - 1)
		}
		l.bkts = append(l.bkts, bucket{acc: hdc.NewAcc(l.params.Dim)})
	}
	b := &l.bkts[len(l.bkts)-1]
	b.acc.Add(hv)
	b.windows = append(b.windows, ref)
	l.nWin++
}

// sealBucket binarizes bucket i and, for sealed libraries, releases its
// counters.
func (l *Library) sealBucket(i int) {
	b := &l.bkts[i]
	if b.acc == nil {
		return
	}
	b.sealed = b.acc.Seal(l.params.Seed ^ 0x5ea1)
	if l.params.Sealed {
		b.acc = nil
	}
}

// Freeze finalizes the library: buckets are sealed, approximate-mode
// libraries calibrate their operating threshold (see Calibration), and
// the library becomes immutable and safe for concurrent search.
// Freezing an empty library is a no-op that leaves it unfrozen.
func (l *Library) Freeze() {
	if l.frozen || len(l.bkts) == 0 {
		return
	}
	for i := range l.bkts {
		l.sealBucket(i)
	}
	l.packArena()
	l.frozen = true
	if l.params.Approx {
		l.cal = l.calibrate()
	}
}

// packArena copies every sealed bucket vector into one contiguous
// []uint64 and repoints each bucket's sealed view at its arena row.
// Called once at Freeze (and at load), after every bucket is sealed.
func (l *Library) packArena() {
	l.rowWords = l.params.Dim / 64
	l.arena = make([]uint64, len(l.bkts)*l.rowWords)
	for i := range l.bkts {
		l.packRow(i)
	}
}

// packRow refreshes bucket i's arena row from its sealed hypervector
// and aliases the sealed view back onto the row. Remove uses it to
// republish a re-sealed bucket.
func (l *Library) packRow(i int) {
	row := l.arenaRow(i)
	copy(row, l.bkts[i].sealed.Words())
	l.bkts[i].sealed = hdc.HVFromArenaRow(row, l.params.Dim)
}

// arenaRow returns bucket i's packed words inside the arena. The full
// slice expression caps the row so an overrunning kernel cannot creep
// into the next bucket.
func (l *Library) arenaRow(i int) []uint64 {
	lo := i * l.rowWords
	hi := lo + l.rowWords
	return l.arena[lo:hi:hi]
}

// Frozen reports whether Freeze has been called.
func (l *Library) Frozen() bool { return l.frozen }

// score returns the similarity score of query hv against bucket i under
// the library's storage mode. Sealed scores read the flat arena when it
// exists (it always does once frozen); raw-count mode keeps the exact
// counter dot product.
func (l *Library) score(i int, hv *hdc.HV) float64 {
	if l.params.Sealed {
		if l.arena != nil {
			return float64(bitvec.DotWords(l.arenaRow(i), hv.Words(), l.params.Dim))
		}
		return float64(l.bkts[i].sealed.Dot(hv))
	}
	return float64(l.bkts[i].acc.DotAcc(hv))
}

// BucketWindows returns the member windows of bucket i (shared slice; do
// not mutate).
func (l *Library) BucketWindows(i int) []WindowRef { return l.bkts[i].windows }

// BucketVector returns the sealed hypervector of bucket i (shared; do
// not mutate). It panics if the library is not frozen — the sealed view
// only exists after Freeze.
func (l *Library) BucketVector(i int) *hdc.HV {
	if !l.frozen {
		panic("core: BucketVector before Freeze")
	}
	return l.bkts[i].sealed
}

// MemoryFootprint returns the library's hypervector storage in bytes:
// sealed buckets cost D/8 bytes each, raw-counter buckets D·4 bytes.
func (l *Library) MemoryFootprint() int64 {
	per := int64(l.params.Dim) * 4
	if l.params.Sealed {
		per = int64(l.params.Dim) / 8
	}
	return per * int64(len(l.bkts))
}
