package core

import (
	"math"
	"testing"

	"repro/internal/encoding"
	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestMajorityCorrelationExactValues(t *testing.T) {
	if got := MajorityCorrelation(1); got != 1 {
		t.Fatalf("rho(1) = %v", got)
	}
	// c=3: S' = sum of 2 ±1s ∈ {−2, 0, 2} w.p. ¼,½,¼.
	// rho = P(S' ≥ 0) − P(S' ≤ −2) = ¾ − ¼ = ½.
	if got := MajorityCorrelation(3); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rho(3) = %v, want 0.5", got)
	}
	// c=2: S' ∈ {−1, +1}; tie at S'=−1 contributes 0; rho = ½.
	if got := MajorityCorrelation(2); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("rho(2) = %v, want 0.5", got)
	}
}

func TestMajorityCorrelationAsymptotic(t *testing.T) {
	// rho(c) → √(2/(π·c)) for large c.
	for _, c := range []int{64, 256, 1024} {
		want := math.Sqrt(2 / (math.Pi * float64(c)))
		got := MajorityCorrelation(c)
		if math.Abs(got-want)/want > 0.02 {
			t.Fatalf("rho(%d) = %v, asymptotic %v", c, got, want)
		}
	}
}

func TestMajorityCorrelationMonotone(t *testing.T) {
	prev := 2.0
	for c := 1; c <= 100; c++ {
		cur := MajorityCorrelation(c)
		if cur <= 0 || cur > 1 {
			t.Fatalf("rho(%d) = %v out of (0,1]", c, cur)
		}
		if cur > prev+1e-12 {
			t.Fatalf("rho not non-increasing at c=%d: %v -> %v", c, prev, cur)
		}
		prev = cur
	}
}

func TestMajorityCorrelationEmpirical(t *testing.T) {
	// Monte-Carlo check of the closed form at a few capacities.
	src := rng.New(42)
	for _, c := range []int{2, 5, 16} {
		const d = 65536
		acc := hdc.NewAcc(d)
		members := make([]*hdc.HV, c)
		for i := range members {
			members[i] = hdc.RandomHV(d, src)
			acc.Add(members[i])
		}
		sealed := acc.Seal(1)
		got := float64(sealed.Dot(members[0])) / float64(d)
		want := MajorityCorrelation(c)
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("c=%d: empirical rho %v vs model %v", c, got, want)
		}
	}
}

func TestArcsineCosine(t *testing.T) {
	if got := ArcsineCosine(1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("c(1) = %v", got)
	}
	if got := ArcsineCosine(0); got != 0 {
		t.Fatalf("c(0) = %v", got)
	}
	if got := ArcsineCosine(-1); math.Abs(got+1) > 1e-12 {
		t.Fatalf("c(-1) = %v", got)
	}
	if got := ArcsineCosine(5); got != 1 { // clamped
		t.Fatalf("c(5) = %v", got)
	}
	if got := ArcsineCosine(0.5); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Fatalf("c(0.5) = %v, want 1/3", got)
	}
}

func TestArcsineCosineEmpirical(t *testing.T) {
	// Two sealed bundles of w components sharing k must have cosine
	// ≈ (2/π)·asin(k/w).
	const d, w = 32768, 33
	e, err := encoding.New(encoding.Config{Dim: d, Window: w, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seq := genome.Random(w, rng.New(6))
	base := e.EncodeWindowApprox(seq, 0)
	for _, muts := range []int{4, 11, 22} {
		mut, _ := genome.SubstituteExactly(seq, muts, rng.New(uint64(muts)))
		got := base.Cosine(e.EncodeWindowApprox(mut, 0))
		want := ArcsineCosine(float64(w-muts) / float64(w))
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("muts=%d: cosine %v vs arcsine model %v", muts, got, want)
		}
	}
}

func TestModelExactNoiseSigma(t *testing.T) {
	m := Model{D: 4096, W: 32, C: 16, Sealed: true}
	if got := m.NoiseSigma(); math.Abs(got-64) > 1e-9 {
		t.Fatalf("sealed exact noise sigma = %v, want 64", got)
	}
	m.Sealed = false
	if got := m.NoiseSigma(); math.Abs(got-256) > 1e-9 {
		t.Fatalf("raw exact noise sigma = %v, want 256", got)
	}
	if m.Baseline() != 0 {
		t.Fatal("exact mode has nonzero baseline")
	}
}

func TestModelExactSignal(t *testing.T) {
	m := Model{D: 4096, W: 32, C: 16, Sealed: true}
	want := 4096 * MajorityCorrelation(16)
	if got := m.SignalMean(0); math.Abs(got-want) > 1e-9 {
		t.Fatalf("sealed signal = %v, want %v", got, want)
	}
	if got := m.SignalMean(1); got != 0 {
		t.Fatalf("mutated exact signal = %v, want 0 (chain decorrelates)", got)
	}
	m.Sealed = false
	if got := m.SignalMean(0); got != 4096 {
		t.Fatalf("raw signal = %v, want D", got)
	}
}

func TestModelThresholdSeparates(t *testing.T) {
	m := Model{D: 8192, W: 32, C: 64, Sealed: true}
	tau := m.Threshold(1e-3, 100)
	if tau <= 0 {
		t.Fatalf("threshold %v not positive", tau)
	}
	if sig := m.SignalMean(0); sig <= tau {
		t.Fatalf("signal %v below threshold %v at plausible geometry", sig, tau)
	}
	// FPR at the threshold must be ≤ alpha/nBuckets.
	if fpr := m.FPR(tau); fpr > 1e-5+1e-12 {
		t.Fatalf("FPR at threshold = %v", fpr)
	}
	// FNR must be small when the signal clears the threshold widely.
	if fnr := m.FNR(tau, 0); fnr > 1e-3 {
		t.Fatalf("FNR = %v", fnr)
	}
}

func TestModelThresholdPanics(t *testing.T) {
	m := Model{D: 1024, W: 16, C: 4}
	for _, a := range []float64{0, 1, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v did not panic", a)
				}
			}()
			m.Threshold(a, 10)
		}()
	}
}

func TestModelApproxBaselinePositive(t *testing.T) {
	m := Model{D: 8192, W: 48, C: 8, Approx: true, Sealed: true}
	if b := m.Baseline(); b <= 0 {
		t.Fatalf("approx baseline %v not positive", b)
	}
	// Signal decreases with mutation count, staying above baseline until
	// the agreement hits chance level.
	prev := math.Inf(1)
	for _, muts := range []int{0, 4, 12, 24} {
		sig := m.SignalMean(muts)
		if sig >= prev {
			t.Fatalf("signal not decreasing at muts=%d: %v -> %v", muts, prev, sig)
		}
		if sig <= m.Baseline() {
			t.Fatalf("signal %v at muts=%d fell below baseline %v", sig, muts, m.Baseline())
		}
		prev = sig
	}
	// At 36/48 mutations the agreement is exactly chance (12/48 = ¼):
	// the excess vanishes and the signal equals the baseline.
	if sig := m.SignalMean(36); math.Abs(sig-m.Baseline()) > 1e-9 {
		t.Fatalf("chance-level signal %v != baseline %v", sig, m.Baseline())
	}
	// Fully mutated (agreement 0 < chance ¼) drops below the baseline.
	if sig := m.SignalMean(48); sig >= m.Baseline() {
		t.Fatalf("fully mutated signal %v above baseline %v", sig, m.Baseline())
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{D: 0, W: 1, C: 1}).Validate(); err == nil {
		t.Fatal("zero D accepted")
	}
	if err := (Model{D: 64, W: 8, C: 2}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMaxCapacityExact(t *testing.T) {
	// Larger D must admit (weakly) larger capacity.
	prev := 0
	for _, d := range []int{1024, 4096, 16384} {
		c := MaxCapacity(d, 32, false, true, 0, 1000, 1e-3, 1e-3)
		if c < prev {
			t.Fatalf("capacity decreased with dimension: D=%d -> C=%d (prev %d)", d, c, prev)
		}
		prev = c
		if c < 1 {
			t.Fatalf("capacity %d < 1", c)
		}
	}
	// The sealed capacity at D=8192 should be in the tens–hundreds: the
	// asymptotic bound D·√(2/πC) > zGap·√D gives C ≈ 2D/(π·zGap²).
	c := MaxCapacity(8192, 32, false, true, 0, 1000, 1e-3, 1e-3)
	if c < 20 || c > 500 {
		t.Fatalf("sealed capacity at D=8192 = %d, outside plausible band", c)
	}
}

func TestMaxCapacityBoundary(t *testing.T) {
	// The returned capacity must be separable and capacity+1 must not.
	d, w := 4096, 32
	c := MaxCapacity(d, w, false, true, 0, 100, 1e-3, 1e-3)
	zGap := stats.NormalQuantile(1-1e-3/100) + stats.NormalQuantile(1-1e-3)
	if !(Model{D: d, W: w, C: c, Sealed: true}).separable(0, zGap) {
		t.Fatalf("returned capacity %d not separable", c)
	}
	if (Model{D: d, W: w, C: c + 1, Sealed: true}).separable(0, zGap) {
		t.Fatalf("capacity %d+1 still separable; not maximal", c)
	}
}

func TestMinDimension(t *testing.T) {
	d := MinDimension(32, 16, false, true, 0, 100, 1e-3, 1e-3, 1<<20)
	if d <= 0 || d%64 != 0 {
		t.Fatalf("MinDimension = %d", d)
	}
	// The found dimension must be separable, d−64 must not.
	zGap := stats.NormalQuantile(1-1e-3/100) + stats.NormalQuantile(1-1e-3)
	if !(Model{D: d, W: 32, C: 16, Sealed: true}).separable(0, zGap) {
		t.Fatalf("MinDimension %d not separable", d)
	}
	if d > 64 && (Model{D: d - 64, W: 32, C: 16, Sealed: true}).separable(0, zGap) {
		t.Fatalf("%d−64 still separable; not minimal", d)
	}
}

func TestMinDimensionImpossible(t *testing.T) {
	// In approx mode composition noise scales with D, so absurd error
	// targets cannot be met by raising D; MinDimension reports 0.
	if d := MinDimension(16, 1024, true, true, 8, 1<<20, 1e-12, 1e-12, 1<<16); d != 0 {
		t.Fatalf("impossible geometry returned D=%d", d)
	}
}

// Empirical validation of the exact-mode score distributions — the heart
// of experiment F2.
func TestModelMatchesEmpiricalExactMode(t *testing.T) {
	const d, w, c = 8192, 32, 64
	e, err := encoding.New(encoding.Config{Dim: d, Window: w, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(8)
	seq := genome.Random(c*w+w, src)
	acc := hdc.NewAcc(d)
	var members []*hdc.HV
	for i := 0; i < c; i++ {
		hv := e.EncodeWindowExact(seq, i*w)
		members = append(members, hv)
		acc.Add(hv)
	}
	sealed := acc.Seal(9)
	m := Model{D: d, W: w, C: c, Sealed: true}

	var memberScores, noiseScores stats.Welford
	for _, mem := range members {
		memberScores.Add(float64(sealed.Dot(mem)))
	}
	for i := 0; i < 200; i++ {
		q := e.EncodeWindowExact(genome.Random(w, src), 0)
		noiseScores.Add(float64(sealed.Dot(q)))
	}
	if gotMean, want := memberScores.Mean(), m.SignalMean(0); math.Abs(gotMean-want)/want > 0.1 {
		t.Fatalf("member score mean %v vs model %v", gotMean, want)
	}
	if gotMean := noiseScores.Mean(); math.Abs(gotMean) > 4*m.NoiseSigma()/math.Sqrt(200) {
		t.Fatalf("noise mean %v not centered", gotMean)
	}
	if gotSigma, want := noiseScores.StdDev(), m.NoiseSigma(); math.Abs(gotSigma-want)/want > 0.25 {
		t.Fatalf("noise sigma %v vs model %v", gotSigma, want)
	}
}
