package core

import (
	"fmt"

	"repro/internal/hdc"
)

// Remove deletes a reference from an *unsealed* library without
// rebuilding it: every window the reference contributed is re-encoded
// and subtracted from its bucket's counters (hdc.Acc.Sub), the bucket is
// re-sealed, and the window metadata is dropped. The reference slot is
// retained as a tombstone so other references keep their indices.
//
// Sealed libraries discard their counters at Freeze for 32× less memory
// and cannot subtract; they return an error (rebuild instead). This is
// the storage trade-off the F11 ablation quantifies.
func (l *Library) Remove(refIdx int) error {
	if !l.frozen {
		return fmt.Errorf("core: Remove before Freeze")
	}
	if l.params.Sealed {
		return fmt.Errorf("core: sealed libraries drop counters at Freeze and cannot Remove; rebuild, or use an unsealed library")
	}
	if refIdx < 0 || refIdx >= len(l.refs) {
		return fmt.Errorf("core: reference %d out of range [0,%d)", refIdx, len(l.refs))
	}
	rec := l.refs[refIdx]
	if rec.Seq == nil {
		return fmt.Errorf("core: reference %d already removed", refIdx)
	}
	for bi := range l.bkts {
		b := &l.bkts[bi]
		kept := b.windows[:0]
		touched := false
		for _, wr := range b.windows {
			if int(wr.Ref) != refIdx {
				kept = append(kept, wr)
				continue
			}
			var hv *hdc.HV
			if l.params.Approx {
				hv = l.enc.EncodeWindowApprox(rec.Seq, int(wr.Off))
			} else {
				hv = l.enc.EncodeWindowExact(rec.Seq, int(wr.Off))
			}
			b.acc.Sub(hv)
			touched = true
			l.nWin--
		}
		b.windows = kept
		if touched {
			b.sealed = b.acc.Seal(l.params.Seed ^ 0x5ea1)
			l.packRow(bi) // republish the re-sealed row in the probe arena
		}
	}
	rec.Seq = nil
	rec.Description += " (removed)" // tombstone keeps the identifier
	l.refs[refIdx] = rec
	if l.params.Approx {
		l.cal = l.calibrate()
	}
	return nil
}
