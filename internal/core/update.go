package core

import (
	"fmt"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/mmapfile"
)

// Remove deletes a reference from a frozen library by tombstoning it:
// the reference slot keeps its index but loses its sequence, every
// snapshot published from here on skips the reference's windows at
// verify time, and each affected segment's tombstone count is tracked
// so Compact knows what is worth rewriting. The bucket hypervectors are
// left untouched — the removed windows keep contributing superposition
// noise until compaction — which is exactly what makes Remove work on
// Sealed libraries (whose counters were dropped at Freeze) and lets it
// run concurrently with lookups: nothing a reader holds is ever
// written, the change lands as a fresh snapshot.
//
// If SetAutoCompact is armed and the removal pushes a segment past the
// trigger ratio, the affected segments are compacted before Remove
// returns.
func (l *Library) Remove(refIdx int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Load() {
		return ErrClosed
	}
	if l.snap.Load() == nil {
		return fmt.Errorf("core: Remove before Freeze")
	}
	if refIdx < 0 || refIdx >= len(l.refs) {
		return fmt.Errorf("core: reference %d out of range [0,%d)", refIdx, len(l.refs))
	}
	rec := l.refs[refIdx]
	if rec.Seq == nil {
		return fmt.Errorf("core: reference %d already removed", refIdx)
	}
	// Copy-on-write: published snapshots hold the old table, so the
	// master table is replaced, never written in place.
	refs := append([]genome.Record(nil), l.refs...)
	rec.Seq = nil
	rec.Description += " (removed)" // tombstone keeps the identifier
	refs[refIdx] = rec
	l.refs = refs
	// Sealed segments are immutable; bump their tombstone counts via
	// fresh headers that share the storage.
	for i, seg := range l.segs {
		if n := seg.countRefWindows(refIdx); n > 0 {
			l.segs[i] = seg.withTombs(seg.tombs + n)
		}
	}
	if l.autoCompact > 0 {
		if l.compactLocked(l.autoCompact) > 0 {
			return nil // compaction already published the new snapshot
		}
	}
	l.publishLocked(true)
	return nil
}

// Compact rewrites every segment whose tombstone ratio is at least
// minRatio (minRatio ≤ 0 rewrites any segment holding tombstones): the
// segment's live windows are re-encoded and re-bucketed at full
// capacity, removed windows vanish, and segments left empty are
// dropped. The rewrite happens off-line under the mutation lock and
// lands as one snapshot swap, so concurrent lookups keep scanning the
// old segments until the new ones are live. It returns the number of
// segments rewritten (including the active one, if it qualified).
func (l *Library) Compact(minRatio float64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed.Load() {
		return 0, ErrClosed
	}
	if l.snap.Load() == nil {
		return 0, fmt.Errorf("core: Compact before Freeze")
	}
	return l.compactLocked(minRatio), nil
}

func (l *Library) compactLocked(minRatio float64) int {
	rewritten := 0
	segs := l.segs[:0:0]
	var retired []*segment // mapped segments replaced by this pass
	for _, seg := range l.segs {
		if seg.tombs == 0 || seg.tombRatio() < minRatio {
			segs = append(segs, seg)
			continue
		}
		rewritten++
		if ns := l.rebuildSegment(seg); ns != nil {
			segs = append(segs, ns)
		}
		if seg.mapped {
			retired = append(retired, seg)
		}
	}
	// The active builder compacts too: rebuild it in place (still
	// mutable) when its tombstone load qualifies.
	if total := l.active.numWindows(); total > 0 {
		tombs := l.active.countTombs(l.refs)
		if tombs > 0 && float64(tombs)/float64(total) >= minRatio {
			rewritten++
			l.active = l.rebuildBuilder(l.active)
		}
	}
	if rewritten == 0 {
		return 0
	}
	l.segs = segs
	l.ctr.compactions.Add(int64(rewritten))
	l.publishLocked(true)
	// The rewritten replacements live on the heap; tell the kernel the
	// retired segments' file pages are cold. Advisory only, so readers
	// still holding a pre-compaction snapshot just refault the pages
	// from the file if they touch them.
	if l.mapping != nil {
		for _, seg := range retired {
			//lint:ignore errcheck paging hints are best-effort
			l.mapping.Advise(seg.mapOff, seg.mapLen, mmapfile.AdviseDontNeed)
		}
	}
	return rewritten
}

// rebuildSegment re-encodes a segment's live windows into a fresh
// segment, or nil if nothing lives.
func (l *Library) rebuildSegment(seg *segment) *segment {
	b := &builder{}
	l.reinsert(b, seg.liveWindows(nil, l.refs))
	return b.seal(&l.params, l.refs)
}

// rebuildBuilder re-encodes a builder's live windows into a fresh,
// still-mutable builder.
func (l *Library) rebuildBuilder(old *builder) *builder {
	b := &builder{}
	l.reinsert(b, old.liveWindows(nil, l.refs))
	return b
}

// reinsert re-encodes the given windows — the same encoding Add used
// when they were first memorized — and inserts them in order.
func (l *Library) reinsert(b *builder, windows []WindowRef) {
	for _, wr := range windows {
		seq := l.refs[wr.Ref].Seq
		var hv *hdc.HV
		if l.params.Approx {
			hv = l.enc.EncodeWindowApprox(seq, int(wr.Off))
		} else {
			hv = l.enc.EncodeWindowExact(seq, int(wr.Off))
		}
		b.insert(wr, hv, &l.params)
	}
}
