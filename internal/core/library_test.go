package core

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

func mustLibrary(t *testing.T, p Params) *Library {
	t.Helper()
	lib, err := NewLibrary(p)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestParamsValidate(t *testing.T) {
	for name, p := range map[string]Params{
		"bad dim":        {Dim: 100, Window: 10},
		"zero window":    {Dim: 1024, Window: 0},
		"window too big": {Dim: 64, Window: 64},
		"negative cap":   {Dim: 1024, Window: 16, Capacity: -1},
		"bad tolerance":  {Dim: 1024, Window: 16, MutTolerance: 17, Approx: true},
		"exact with tol": {Dim: 1024, Window: 16, MutTolerance: 2},
		"bad alpha":      {Dim: 1024, Window: 16, Alpha: 2},
	} {
		if _, err := NewLibrary(p); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}

func TestNewLibraryDefaults(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 4096, Window: 32, Sealed: true, Seed: 1})
	p := lib.Params()
	if p.Stride != 1 || p.Alpha != 1e-3 || p.Beta != 1e-3 {
		t.Fatalf("defaults not applied: %+v", p)
	}
	if p.Capacity <= 1 {
		t.Fatalf("auto capacity %d implausibly small for exact sealed D=4096", p.Capacity)
	}
}

func TestAddRejectsShort(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 32, Seed: 2})
	if err := lib.Add(genome.Record{ID: "short", Seq: genome.Random(10, rng.New(1))}); err == nil {
		t.Fatal("short reference accepted")
	}
	if err := lib.Add(genome.Record{ID: "ok", Seq: genome.Random(100, rng.New(2))}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	if err := lib.Add(genome.Record{ID: "late", Seq: genome.Random(10, rng.New(3))}); err == nil {
		t.Fatal("short reference accepted after Freeze")
	}
}

func TestAddAfterFreeze(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 2048, Window: 24, Sealed: true, Approx: true, MutTolerance: 2, Seed: 2})
	first := genome.Random(200, rng.New(20))
	if err := lib.Add(genome.Record{ID: "first", Seq: first}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	late := genome.Random(200, rng.New(21))
	if err := lib.Add(genome.Record{ID: "late", Seq: late}); err != nil {
		t.Fatalf("Add after Freeze rejected: %v", err)
	}
	if lib.NumRefs() != 2 {
		t.Fatalf("NumRefs = %d, want 2", lib.NumRefs())
	}
	// The late reference is immediately searchable, and the first one
	// still is.
	for i, seq := range []*genome.Sequence{first, late} {
		matches, _, err := lib.Lookup(seq.Slice(40, 64))
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range matches {
			if m.Ref == i && m.Off == 40 {
				found = true
			}
		}
		if !found {
			t.Fatalf("ref %d window not found after live ingest: %+v", i, matches)
		}
	}
}

func TestAutoSealThreshold(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Capacity: 8, Sealed: true, Seed: 22})
	if err := lib.Add(genome.Record{ID: "r0", Seq: genome.Random(100, rng.New(23))}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	lib.SetSealThreshold(2)
	src := rng.New(24)
	for i := 0; i < 4; i++ {
		if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(100, src)}); err != nil {
			t.Fatal(err)
		}
	}
	// 100-base refs at window 16 yield 85 windows = 11 buckets each, far
	// past the threshold of 2, so every post-freeze Add seals the active
	// segment: snapshot = 5 sealed segments (no active view left open).
	if got := lib.Counters().SegmentSeals; got != 4 {
		t.Fatalf("SegmentSeals = %d, want 4", got)
	}
	if got := lib.NumSegments(); got != 5 {
		t.Fatalf("NumSegments = %d, want 5", got)
	}
	infos := lib.Segments()
	total := 0
	for _, si := range infos {
		total += si.Windows
	}
	if total != 5*85 {
		t.Fatalf("segment windows total %d, want %d", total, 5*85)
	}
}

func TestLibraryBookkeeping(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Capacity: 10, Seed: 3})
	src := rng.New(4)
	for i := 0; i < 3; i++ {
		if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(55, src)}); err != nil {
			t.Fatal(err)
		}
	}
	// Each 55-base reference has 40 windows at stride 1.
	if lib.NumWindows() != 120 {
		t.Fatalf("NumWindows = %d, want 120", lib.NumWindows())
	}
	if lib.NumRefs() != 3 {
		t.Fatalf("NumRefs = %d", lib.NumRefs())
	}
	if lib.NumBuckets() != 12 {
		t.Fatalf("NumBuckets = %d, want 120/10", lib.NumBuckets())
	}
	total := 0
	for i := 0; i < lib.NumBuckets(); i++ {
		ws := lib.BucketWindows(i)
		if len(ws) > 10 {
			t.Fatalf("bucket %d has %d windows > capacity", i, len(ws))
		}
		total += len(ws)
	}
	if total != 120 {
		t.Fatalf("bucket windows total %d", total)
	}
}

func TestStrideReducesWindows(t *testing.T) {
	for _, stride := range []int{1, 4, 16} {
		lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Stride: stride, Capacity: 100, Seed: 5})
		if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(200, rng.New(6))}); err != nil {
			t.Fatal(err)
		}
		want := (200-16)/stride + 1
		if lib.NumWindows() != want {
			t.Fatalf("stride %d: %d windows, want %d", stride, lib.NumWindows(), want)
		}
	}
}

func TestFreezeIdempotent(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 7})
	if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(64, rng.New(8))}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	if !lib.Frozen() {
		t.Fatal("not frozen")
	}
	lib.Freeze() // second call is a no-op
	if !lib.Frozen() {
		t.Fatal("freeze undone")
	}
}

func TestMemoryFootprint(t *testing.T) {
	const dim = 1024
	sealedLib := mustLibrary(t, Params{Dim: dim, Window: 16, Capacity: 8, Sealed: true, Seed: 9})
	rawLib := mustLibrary(t, Params{Dim: dim, Window: 16, Capacity: 8, Seed: 9})
	seq := genome.Random(100, rng.New(10))
	if err := sealedLib.Add(genome.Record{ID: "r", Seq: seq}); err != nil {
		t.Fatal(err)
	}
	if err := rawLib.Add(genome.Record{ID: "r", Seq: seq}); err != nil {
		t.Fatal(err)
	}
	sealedLib.Freeze()
	rawLib.Freeze()
	// Frozen footprints count everything resident on the search path:
	// the packed probe arena (D/8 bytes per bucket), the window metadata
	// (8 bytes per WindowRef), and — unsealed mode only — the retained
	// raw counters (D·4 bytes per bucket).
	nB, nW := int64(sealedLib.NumBuckets()), int64(sealedLib.NumWindows())
	wantSealed := nB*dim/8 + nW*8
	if got := sealedLib.MemoryFootprint(); got != wantSealed {
		t.Fatalf("sealed footprint %d, want arena+metadata %d", got, wantSealed)
	}
	wantRaw := wantSealed + nB*dim*4
	if got := rawLib.MemoryFootprint(); got != wantRaw {
		t.Fatalf("raw footprint %d, want arena+metadata+counters %d", got, wantRaw)
	}
}

func TestProbeRequiresFreeze(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 11})
	if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(64, rng.New(12))}); err != nil {
		t.Fatal(err)
	}
	q := lib.Encoder().EncodeWindowExact(genome.Random(16, rng.New(13)), 0)
	if _, err := lib.Probe(q, nil); err == nil {
		t.Fatal("Probe before Freeze accepted")
	}
	if _, _, err := lib.Lookup(genome.Random(16, rng.New(14))); err == nil {
		t.Fatal("Lookup before Freeze accepted")
	}
}

func TestRefAccessor(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 15})
	seq := genome.Random(64, rng.New(16))
	if err := lib.Add(genome.Record{ID: "myref", Description: "d", Seq: seq}); err != nil {
		t.Fatal(err)
	}
	rec := lib.Ref(0)
	if rec.ID != "myref" || !rec.Seq.Equal(seq) {
		t.Fatalf("Ref(0) = %+v", rec)
	}
}
