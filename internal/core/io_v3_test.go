package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/genome"
	"repro/internal/mmapfile"
	"repro/internal/rng"
)

// writeV3Bytes serializes a library in the v3 mappable format.
func writeV3Bytes(t *testing.T, lib *Library) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := lib.WriteToV3(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteToV3 reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// writeV3File writes a library's v3 serialization into a temp file.
func writeV3File(t *testing.T, lib *Library) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lib.v3")
	if err := os.WriteFile(path, writeV3Bytes(t, lib), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// openLib opens a library file and asserts the HDC concrete type —
// these tests exercise Library-specific surfaces (BucketVector,
// Params) beyond the Index contract.
func openLib(t *testing.T, path string, mode LoadMode) *Library {
	t.Helper()
	idx, err := OpenLibraryFile(path, mode)
	if err != nil {
		t.Fatal(err)
	}
	lib, ok := idx.(*Library)
	if !ok {
		t.Fatalf("OpenLibraryFile returned %T, want *Library", idx)
	}
	return lib
}

// requireSameAnswers asserts two libraries return byte-identical bucket
// vectors and identical lookup results for windows of ref.
func requireSameAnswers(t *testing.T, want, got *Library, ref *genome.Sequence, offs []int) {
	t.Helper()
	if got.NumBuckets() != want.NumBuckets() || got.NumWindows() != want.NumWindows() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			got.NumBuckets(), got.NumWindows(), want.NumBuckets(), want.NumWindows())
	}
	for i := 0; i < want.NumBuckets(); i++ {
		if !want.BucketVector(i).Equal(got.BucketVector(i)) {
			t.Fatalf("bucket %d vector differs", i)
		}
	}
	w := want.Params().Window
	for _, off := range offs {
		pat := ref.Slice(off, off+w)
		m1, s1, err1 := want.Lookup(pat)
		m2, s2, err2 := got.Lookup(pat)
		if err1 != nil || err2 != nil {
			t.Fatalf("off %d: lookup errors %v / %v", off, err1, err2)
		}
		if len(m1) != len(m2) || s1 != s2 {
			t.Fatalf("off %d: answers diverge: %v/%v vs %v/%v", off, m1, s1, m2, s2)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("off %d match %d differs: %+v vs %+v", off, i, m1[i], m2[i])
			}
		}
	}
}

func TestV3RoundTripStream(t *testing.T) {
	lib, ref := buildExactLib(t, 2000, 151)
	back, err := ReadLibrary(bytes.NewReader(writeV3Bytes(t, lib)))
	if err != nil {
		t.Fatal(err)
	}
	if back.Mapped() {
		t.Fatal("stream-loaded library claims to be mapped")
	}
	requireSameAnswers(t, lib, back, ref, []int{0, 777, 1500, 2000 - 32})
}

func TestV3RoundTripApproxKeepsCalibration(t *testing.T) {
	lib := buildApproxLib(t, 1500, 152)
	back, err := ReadLibrary(bytes.NewReader(writeV3Bytes(t, lib)))
	if err != nil {
		t.Fatal(err)
	}
	c1, ok1 := lib.Calibration()
	c2, ok2 := back.Calibration()
	if !ok1 || !ok2 || c1 != c2 {
		t.Fatalf("calibration lost: %+v vs %+v", c1, c2)
	}
	if lib.Threshold() != back.Threshold() {
		t.Fatal("operating thresholds differ")
	}
}

func TestV3RejectsUnsealedAndUnfrozen(t *testing.T) {
	var buf bytes.Buffer
	unfrozen := mustLibrary(t, Params{Dim: 1024, Window: 16, Sealed: true, Seed: 153})
	if _, err := unfrozen.WriteToV3(&buf); err == nil {
		t.Fatal("unfrozen library saved as v3")
	}
	unsealed := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 154})
	if err := unsealed.Add(genome.Record{ID: "r", Seq: genome.Random(300, rng.New(155))}); err != nil {
		t.Fatal(err)
	}
	unsealed.Freeze()
	if _, err := unsealed.WriteToV3(&buf); err == nil {
		t.Fatal("unsealed library saved as v3")
	}
}

func TestV3MappedEqualsHeap(t *testing.T) {
	lib, ref := buildExactLib(t, 2000, 156)
	path := writeV3File(t, lib)
	heap := openLib(t, path, LoadHeap)
	defer heap.Close()
	if heap.Mapped() {
		t.Fatal("LoadHeap produced a mapped library")
	}
	mapped := openLib(t, path, MapArena)
	defer mapped.Close()
	if mmapfile.Supported() && mmapfile.HostLittleEndian() {
		if !mapped.Mapped() {
			t.Fatal("MapArena fell back to heap on a supported platform")
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if mapped.MappedBytes() != fi.Size() {
			t.Fatalf("MappedBytes %d, file is %d bytes", mapped.MappedBytes(), fi.Size())
		}
	}
	requireSameAnswers(t, heap, mapped, ref, []int{0, 777, 1500, 2000 - 32})
	// The per-tier scan counters must attribute the work to the right
	// storage tier.
	if c := heap.Counters(); c.MappedScans != 0 || c.HeapScans == 0 {
		t.Fatalf("heap library counters: mapped=%d heap=%d", c.MappedScans, c.HeapScans)
	}
	if mapped.Mapped() {
		if c := mapped.Counters(); c.MappedScans == 0 || c.HeapScans != 0 {
			t.Fatalf("mapped library counters: mapped=%d heap=%d", c.MappedScans, c.HeapScans)
		}
	}
}

func TestV3OpenHeapFallbackOnV2(t *testing.T) {
	lib, ref := buildExactLib(t, 1200, 157)
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "lib.v2")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back := openLib(t, path, MapArena)
	defer back.Close()
	if back.Mapped() {
		t.Fatal("v2 stream opened as mapped")
	}
	requireSameAnswers(t, lib, back, ref, []int{0, 600})
}

// TestV3MappedUnderConcurrentMutation pins mapped ≡ heap while the
// library changes underneath the readers: live ingest, Remove, and
// Compact land as snapshot swaps on both libraries while goroutines
// hammer lookups on the mapped one, and the final answers must match a
// heap twin that took the same mutations.
func TestV3MappedUnderConcurrentMutation(t *testing.T) {
	lib, ref := buildExactLib(t, 1600, 158)
	path := writeV3File(t, lib)
	heap := openLib(t, path, LoadHeap)
	defer heap.Close()
	mapped := openLib(t, path, MapArena)
	defer mapped.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	pat := ref.Slice(300, 332)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := mapped.Lookup(pat); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Same mutation sequence on both libraries, while lookups run.
	extra := genome.Random(900, rng.New(159))
	for _, l := range []*Library{mapped, heap} {
		if err := l.Add(genome.Record{ID: "extra", Seq: extra}); err != nil {
			t.Fatal(err)
		}
		if err := l.Remove(0); err != nil {
			t.Fatal(err)
		}
		if _, err := l.Compact(0); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// The original reference is gone; the ingested one answers.
	requireSameAnswers(t, heap, mapped, extra, []int{0, 444, 900 - 32})
	if m, _, err := mapped.Lookup(pat); err != nil || len(m) != 0 {
		t.Fatalf("removed reference still matches: %v (err %v)", m, err)
	}
}

// TestV3CloseDrainsReaders pins the unmap lifecycle: Close blocks until
// in-flight probes drain, later operations fail with ErrClosed, and
// nothing faults on the unmapped pages.
func TestV3CloseDrainsReaders(t *testing.T) {
	lib, ref := buildExactLib(t, 1600, 160)
	path := writeV3File(t, lib)
	mapped := openLib(t, path, MapArena)
	if !mapped.Mapped() {
		t.Skip("platform cannot map; drain path not reachable")
	}
	pat := ref.Slice(500, 532)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if _, _, err := mapped.Lookup(pat); err != nil {
					if err != ErrClosed {
						t.Errorf("lookup during close: %v", err)
					}
					return
				}
			}
		}()
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if err := mapped.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, _, err := mapped.Lookup(pat); err != ErrClosed {
		t.Fatalf("Lookup after Close: %v", err)
	}
	if err := mapped.Remove(0); err != ErrClosed {
		t.Fatalf("Remove after Close: %v", err)
	}
	if v := mapped.BucketVector(0); v != nil {
		t.Fatal("BucketVector after Close returned mapped storage")
	}
}

// TestStaleBucketIndexAfterCompact replays probe candidates across a
// Compact that shrank the library: the stale global indices must come
// back empty from the public accessors, never panic.
func TestStaleBucketIndexAfterCompact(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: 161})
	for i, n := range []int{900, 900} {
		seq := genome.Random(n, rng.New(uint64(162+i)))
		if err := lib.Add(genome.Record{ID: string(rune('a' + i)), Seq: seq}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	ref := lib.Ref(0).Seq
	hv := lib.Encoder().EncodeWindowExact(ref, 100)
	var stats Stats
	cands, err := lib.Probe(hv, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("probe found no candidates")
	}
	before := lib.NumBuckets()
	if err := lib.Remove(0); err != nil {
		t.Fatal(err)
	}
	if _, err := lib.Compact(0); err != nil {
		t.Fatal(err)
	}
	if lib.NumBuckets() >= before {
		t.Fatalf("compact did not shrink the library (%d -> %d buckets)", before, lib.NumBuckets())
	}
	// Replay every stale candidate plus the extremes; out-of-range must
	// return zero values, in-range must answer normally.
	idxs := []int{-1, before - 1, before, lib.NumBuckets(), 1 << 30}
	for _, c := range cands {
		idxs = append(idxs, c.Bucket)
	}
	for _, i := range idxs {
		wins := lib.BucketWindows(i)
		vec := lib.BucketVector(i)
		if i < 0 || i >= lib.NumBuckets() {
			if wins != nil || vec != nil {
				t.Fatalf("stale index %d returned data", i)
			}
		} else if vec == nil {
			t.Fatalf("live index %d returned nil vector", i)
		}
	}
	// Unfrozen libraries bounds-check the active path too.
	fresh := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 164})
	if err := fresh.Add(genome.Record{ID: "r", Seq: genome.Random(200, rng.New(165))}); err != nil {
		t.Fatal(err)
	}
	if wins := fresh.BucketWindows(1 << 20); wins != nil {
		t.Fatal("unfrozen out-of-range BucketWindows returned data")
	}
}

func TestTrailingDataRejectedV2(t *testing.T) {
	lib, _ := buildExactLib(t, 800, 166)
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0x00)
	if _, err := ReadLibrary(bytes.NewReader(data)); err == nil {
		t.Fatal("v2 stream with trailing data accepted")
	}
}

func TestTrailingDataRejectedV3(t *testing.T) {
	lib, _ := buildExactLib(t, 800, 167)
	data := append(writeV3Bytes(t, lib), 0x00)
	if _, err := ReadLibrary(bytes.NewReader(data)); err == nil {
		t.Fatal("v3 stream with trailing data accepted")
	}
	path := filepath.Join(t.TempDir(), "trail.v3")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLibraryFile(path, MapArena); err == nil {
		t.Fatal("mapped open accepted trailing data")
	}
}

// TestV3CorruptionMatrix drives both v3 readers (stream and mapped)
// through a matrix of corrupted files: every case must come back as an
// error — never a panic, never a silently accepted library.
func TestV3CorruptionMatrix(t *testing.T) {
	lib, _ := buildExactLib(t, 1200, 168)
	valid := writeV3Bytes(t, lib)
	le := binary.LittleEndian
	metaLen := le.Uint64(valid[24:32])
	dirOff := le.Uint64(valid[32:40])
	arenaOff := le.Uint64(valid[40:48])
	segCount := le.Uint32(valid[12:16])

	// rewriteHeaderCRC makes a header mutation self-consistent, so the
	// corruption under test is reached instead of the CRC tripping first.
	rewriteHeaderCRC := func(b []byte) {
		le.PutUint32(b[56:60], crc32.ChecksumIEEE(b[:56]))
	}
	// rewriteDirCRC re-seals a mutated directory the same way.
	rewriteDirCRC := func(b []byte) {
		end := dirOff + uint64(segCount)*v3DirEntrySize
		le.PutUint32(b[end:end+4], crc32.ChecksumIEEE(b[dirOff:end]))
	}

	cases := []struct {
		name string
		mut  func(b []byte) []byte
	}{
		{"truncated header", func(b []byte) []byte { return b[:40] }},
		{"truncated mid-file", func(b []byte) []byte { return b[:len(b)*2/3] }},
		{"truncated last byte", func(b []byte) []byte { return b[:len(b)-1] }},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"bad version", func(b []byte) []byte {
			le.PutUint32(b[8:12], 99)
			rewriteHeaderCRC(b)
			return b
		}},
		{"header crc flip", func(b []byte) []byte { b[57] ^= 0x01; return b }},
		{"reserved header bytes", func(b []byte) []byte { b[61] = 1; return b }},
		{"oversized meta length", func(b []byte) []byte {
			le.PutUint64(b[24:32], metaLen+1)
			rewriteHeaderCRC(b)
			return b
		}},
		{"segment count flip", func(b []byte) []byte {
			le.PutUint32(b[12:16], segCount+1)
			rewriteHeaderCRC(b)
			return b
		}},
		{"flipped meta byte", func(b []byte) []byte { b[v3HeaderSize+2] ^= 0x10; return b }},
		{"flipped directory byte", func(b []byte) []byte { b[dirOff+4] ^= 0x10; return b }},
		{"misaligned arena offset", func(b []byte) []byte {
			le.PutUint64(b[dirOff:dirOff+8], le.Uint64(b[dirOff:dirOff+8])+8)
			rewriteDirCRC(b)
			return b
		}},
		{"flipped arena byte", func(b []byte) []byte { b[arenaOff] ^= 0x40; return b }},
		{"file size flip", func(b []byte) []byte {
			le.PutUint64(b[48:56], le.Uint64(b[48:56])+64)
			rewriteHeaderCRC(b)
			return b
		}},
	}
	if pad := dirOff - (v3HeaderSize + metaLen); pad > 0 {
		cases = append(cases, struct {
			name string
			mut  func(b []byte) []byte
		}{"nonzero padding byte", func(b []byte) []byte { b[v3HeaderSize+metaLen] = 0xAA; return b }})
	}

	dir := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), valid...))
			if _, err := ReadLibrary(bytes.NewReader(data)); err == nil {
				t.Fatal("stream reader accepted corrupted v3 file")
			}
			path := filepath.Join(dir, "corrupt.v3")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenLibraryFile(path, MapArena); err == nil {
				t.Fatal("mapped open accepted corrupted v3 file")
			}
		})
	}
}

// TestV3CompactRetiresMappedSegments exercises the DONTNEED hint path:
// compacting a mapped library rewrites tombstoned segments onto the
// heap, after which probes must report heap scans and the answers stay
// correct.
func TestV3CompactRetiresMappedSegments(t *testing.T) {
	lib, ref := buildExactLib(t, 1600, 169)
	path := writeV3File(t, lib)
	mapped := openLib(t, path, MapArena)
	defer mapped.Close()
	if !mapped.Mapped() {
		t.Skip("platform cannot map")
	}
	if err := mapped.Add(genome.Record{ID: "x", Seq: genome.Random(700, rng.New(170))}); err != nil {
		t.Fatal(err)
	}
	if err := mapped.Remove(0); err != nil {
		t.Fatal(err)
	}
	if _, err := mapped.Compact(0); err != nil {
		t.Fatal(err)
	}
	if m, _, err := mapped.Lookup(ref.Slice(200, 232)); err != nil || len(m) != 0 {
		t.Fatalf("removed reference still matches after compact: %v (err %v)", m, err)
	}
	base := mapped.Counters().HeapScans
	if _, _, err := mapped.Lookup(mapped.Ref(1).Seq.Slice(0, 32)); err != nil {
		t.Fatal(err)
	}
	if mapped.Counters().HeapScans == base {
		t.Fatal("post-compact probes still attributed to the mapped tier")
	}
}
