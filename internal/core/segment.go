package core

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/genome"
	"repro/internal/hdc"
)

// This file and snapshot.go are the only places allowed to touch the
// raw segment storage (the bkts slice and the packed arena) — everything
// else goes through the accessor methods below, so a segment published
// in a snapshot is provably never written again. The biohdlint
// snapshotsafety analyzer enforces the boundary.

// bucket is one library hypervector plus the windows superposed in it.
// Sealed libraries drop a bucket's counters as soon as it closes (the
// binary view is all search needs — 32× less memory); unsealed libraries
// keep the counters, which DotAcc scoring reads directly.
type bucket struct {
	acc     *hdc.Acc    // raw counters; nil once sealed-and-dropped
	sealed  *hdc.HV     // binarized view; nil until sealed
	windows []WindowRef // members, in insertion order
}

// segment is one immutable sealed slice of the library: a run of closed
// buckets, their window metadata, and a flat probe arena holding every
// bucket's sealed hypervector back-to-back. Once a segment is published
// in a snapshot nothing in it is ever mutated again — Remove tracks
// tombstones in fresh header copies (withTombs) that share the storage,
// and Compact replaces the whole segment.
type segment struct {
	bkts     []bucket
	arena    []uint64 // nBuckets × rowWords sealed words, contiguous
	rowWords int
	total    int // member windows, including tombstoned ones
	tombs    int // member windows whose reference has been removed

	// mapped marks an arena that aliases a read-only file mapping
	// (format v3 opened with MapArena) instead of heap storage; mapOff
	// and mapLen locate the arena's byte range inside that mapping so
	// the library lifecycle can madvise it (DONTNEED once compaction
	// retires the segment). Mapped arenas must never be written — the
	// pages fault on write — which the immutable-once-published
	// discipline above already guarantees.
	mapped bool
	mapOff int
	mapLen int
}

// newSegment seals a bucket slice into a segment: every sealed vector is
// packed into one contiguous arena and the bucket's sealed view is
// repointed to alias its row, so vector(i), score, and WriteTo all read
// the same storage the probe kernel streams. The bucket structs are
// owned by the segment after this call.
func newSegment(bkts []bucket, dim int) *segment {
	s := &segment{bkts: bkts, rowWords: dim / 64}
	s.arena = make([]uint64, len(bkts)*s.rowWords)
	for i := range s.bkts {
		row := s.arenaRow(i)
		copy(row, s.bkts[i].sealed.Words())
		s.bkts[i].sealed = hdc.HVFromArenaRow(row, dim)
		s.total += len(s.bkts[i].windows)
	}
	return s
}

// segmentFromArena builds a segment around an existing packed arena —
// the v3 load path, where the arena words either were decoded from the
// file into the heap or alias a read-only mapping zero-copy. wins[i]
// becomes bucket i's member windows and the bucket's sealed view is
// pointed at its arena row in place; nothing is copied. len(arena)
// must be len(wins)·dim/64 — the v3 reader validates this against the
// segment directory before calling. Tombstone counts start at zero;
// callers run countTombs against their reference table.
func segmentFromArena(arena []uint64, wins [][]WindowRef, dim int, mapped bool) *segment {
	s := &segment{
		bkts:     make([]bucket, len(wins)),
		arena:    arena,
		rowWords: dim / 64,
		mapped:   mapped,
	}
	for i := range s.bkts {
		s.bkts[i].windows = wins[i]
		// Safe on a read-only mapping: dim is a multiple of 64, so the
		// HV constructor's tail-masking never writes the arena row.
		s.bkts[i].sealed = hdc.HVFromArenaRow(s.arenaRow(i), dim)
		s.total += len(wins[i])
	}
	return s
}

// setMapRange records the arena's byte range inside the library's file
// mapping, for later madvise hints.
func (s *segment) setMapRange(off, n int) {
	s.mapOff, s.mapLen = off, n
}

// arenaWords exposes the full packed arena for serialization (shared;
// callers must not mutate). The v3 writer streams this straight to the
// file — rows are already contiguous in bucket order.
func (s *segment) arenaWords() []uint64 { return s.arena }

// arenaRow returns bucket i's packed words inside the arena. The full
// slice expression caps the row so an overrunning kernel cannot creep
// into the next bucket.
func (s *segment) arenaRow(i int) []uint64 {
	lo := i * s.rowWords
	hi := lo + s.rowWords
	return s.arena[lo:hi:hi]
}

func (s *segment) numBuckets() int { return len(s.bkts) }

// windows returns the member windows of local bucket i (shared slice;
// callers must not mutate).
func (s *segment) windows(i int) []WindowRef { return s.bkts[i].windows }

// vector returns the sealed hypervector of local bucket i (aliases the
// arena row; callers must not mutate).
func (s *segment) vector(i int) *hdc.HV { return s.bkts[i].sealed }

// counters returns the raw counter accumulator of local bucket i, or nil
// for sealed-mode segments (counters are dropped at close).
func (s *segment) counters(i int) *hdc.Acc { return s.bkts[i].acc }

// maxOccupancy returns the largest bucket occupancy in the segment,
// counting tombstoned windows too — they are still superposed in the
// vectors, so they still contribute noise.
func (s *segment) maxOccupancy() int {
	c := 0
	for i := range s.bkts {
		if n := len(s.bkts[i].windows); n > c {
			c = n
		}
	}
	return c
}

// tombRatio is the fraction of the segment's windows that are
// tombstoned; Compact rewrites a segment once this crosses the trigger.
func (s *segment) tombRatio() float64 {
	if s.total == 0 {
		return 0
	}
	return float64(s.tombs) / float64(s.total)
}

// countTombs counts member windows whose reference is removed under the
// given reference table.
func (s *segment) countTombs(refs []genome.Record) int {
	n := 0
	for i := range s.bkts {
		for _, wr := range s.bkts[i].windows {
			if refs[wr.Ref].Seq == nil {
				n++
			}
		}
	}
	return n
}

// countRefWindows counts member windows contributed by reference refIdx.
func (s *segment) countRefWindows(refIdx int) int {
	n := 0
	for i := range s.bkts {
		for _, wr := range s.bkts[i].windows {
			if int(wr.Ref) == refIdx {
				n++
			}
		}
	}
	return n
}

// withTombs returns a segment header with the given tombstone count that
// shares all storage with s. Remove publishes these instead of writing
// to the (immutable, concurrently read) original.
func (s *segment) withTombs(tombs int) *segment {
	ns := *s
	ns.tombs = tombs
	return &ns
}

// liveWindows appends the segment's non-tombstoned windows, in bucket
// then insertion order, to dst. Compact re-encodes exactly this list.
func (s *segment) liveWindows(dst []WindowRef, refs []genome.Record) []WindowRef {
	for i := range s.bkts {
		for _, wr := range s.bkts[i].windows {
			if refs[wr.Ref].Seq != nil {
				dst = append(dst, wr)
			}
		}
	}
	return dst
}

// footprintBytes returns the segment's resident hypervector storage:
// the packed arena, the window metadata, and any retained raw counters
// (unsealed mode keeps D int32 counters per bucket).
func (s *segment) footprintBytes(dim int) int64 {
	bytes := int64(len(s.arena)) * 8
	for i := range s.bkts {
		bytes += int64(len(s.bkts[i].windows)) * 8
		if s.bkts[i].acc != nil {
			bytes += int64(dim) * 4
		}
	}
	return bytes
}

// score returns the similarity score of query hv against local bucket i
// under the library's storage mode. Sealed scores read the flat arena;
// raw-count mode keeps the exact counter dot product.
func (s *segment) score(i int, hv *hdc.HV, p *Params) float64 {
	if p.Sealed {
		return float64(bitvec.DotWords(s.arenaRow(i), hv.Words(), p.Dim))
	}
	return float64(s.bkts[i].acc.DotAcc(hv))
}

// probeRange scans local buckets [lo, hi), appending candidates to dst
// with global bucket indices (local index + gOff). Sealed segments run
// the early-abandoning fused XNOR-popcount kernel over consecutive
// arena rows (AVX2 on amd64); raw-count segments keep the exact counter
// dot product.
//
//biohd:hotpath
func (s *segment) probeRange(dst []Candidate, hv *hdc.HV, tau float64, maxHam, lo, hi, gOff int, p *Params, ctr *libCounters) []Candidate {
	// One storage-tier tally per range scan (not per row) — same
	// publish cadence as the earlyAbandons counter below.
	if s.mapped {
		ctr.mappedScans.Add(1)
	} else {
		ctr.heapScans.Add(1)
	}
	if p.Sealed {
		q := hv.Words()
		rw := s.rowWords
		if len(q) != rw {
			panic(fmt.Sprintf("core: query words %d != row words %d", len(q), rw))
		}
		arena := s.arena
		abandoned := int64(0)
		for i := lo; i < hi; i++ {
			row := arena[i*rw : i*rw+rw : i*rw+rw]
			if h, ok := bitvec.HammingBounded(row, q, maxHam); ok {
				score := float64(p.Dim - 2*h)
				dst = append(dst, Candidate{Bucket: gOff + i, Score: score, Excess: score - tau})
			} else {
				abandoned++
			}
		}
		if abandoned > 0 {
			// One atomic publish per range keeps the row loop
			// synchronization-free.
			ctr.earlyAbandons.Add(abandoned)
		}
		return dst
	}
	for i := lo; i < hi; i++ {
		if score := s.score(i, hv, p); score >= tau {
			dst = append(dst, Candidate{Bucket: gOff + i, Score: score, Excess: score - tau})
		}
	}
	return dst
}

// probeBlockRange scans local buckets [lo, hi) against a whole query
// block, appending each query's candidates (with global bucket indices)
// to dsts. Sealed segments run the fused multi-query XNOR-popcount
// kernel — one pass over each arena row serves the block, with
// per-query early abandonment via the kernel's live mask; raw-count
// segments — and single-query blocks, which the lighter sequential
// kernel serves faster than the fused pass — fall back to the per-query
// scan.
//
//biohd:hotpath
func (s *segment) probeBlockRange(dsts [][]Candidate, hvs []*hdc.HV, qs [][]uint64, tau float64, maxHam, lo, hi, gOff int, bounds, dist []int, p *Params, ctr *libCounters) {
	if p.Sealed && len(hvs) > 1 {
		// One fused pass over the range serves the whole block: one
		// storage-tier tally, mirroring probeRange.
		if s.mapped {
			ctr.mappedScans.Add(1)
		} else {
			ctr.heapScans.Add(1)
		}
		d := p.Dim
		rw := s.rowWords
		qs = qs[:0]
		for j, hv := range hvs {
			w := hv.Words()
			if len(w) != rw {
				panic(fmt.Sprintf("core: query words %d != row words %d", len(w), rw))
			}
			qs = append(qs, w)
			bounds[j] = maxHam
		}
		arena := s.arena
		abandoned := int64(0)
		// One scanner per range hoists validation, the live-mask seed,
		// and the fused kernel's query pointer block out of the row loop.
		var ms bitvec.MultiScanner
		ms.Init(qs, bounds[:len(qs)], rw)
		for i := lo; i < hi; i++ {
			row := arena[i*rw : i*rw+rw : i*rw+rw]
			mask := ms.ScanRow(row, dist)
			for j := range qs {
				if mask&(1<<uint(j)) != 0 {
					score := float64(d - 2*dist[j])
					dsts[j] = append(dsts[j], Candidate{Bucket: gOff + i, Score: score, Excess: score - tau})
				} else {
					abandoned++
				}
			}
		}
		if abandoned > 0 {
			// One atomic publish per range, counting abandoned
			// (row, query) pairs — the same total Q sequential bounded
			// scans would report.
			ctr.earlyAbandons.Add(abandoned)
		}
		return
	}
	for j, hv := range hvs {
		dsts[j] = s.probeRange(dsts[j], hv, tau, maxHam, lo, hi, gOff, p, ctr)
	}
}

// builder is the mutable active segment: the tail of the library that
// is still accepting windows. It is only ever touched under the
// library's mutation lock; readers see it through the isolated copy
// that view publishes into each snapshot.
type builder struct {
	bkts []bucket
	nWin int
}

// insert memorizes one encoded window, opening a new bucket (and closing
// the previous one) whenever the open bucket reaches capacity.
func (b *builder) insert(ref WindowRef, hv *hdc.HV, p *Params) {
	if n := len(b.bkts); n == 0 || len(b.bkts[n-1].windows) >= p.Capacity {
		if n > 0 {
			b.sealBucket(n-1, p)
		}
		b.bkts = append(b.bkts, bucket{acc: hdc.NewAcc(p.Dim)})
	}
	bk := &b.bkts[len(b.bkts)-1]
	bk.acc.Add(hv)
	bk.windows = append(bk.windows, ref)
	b.nWin++
}

// sealBucket binarizes bucket i and, for sealed libraries, releases its
// counters. Closed buckets are immutable from here on, which is what
// lets view share them with published snapshots.
func (b *builder) sealBucket(i int, p *Params) {
	bk := &b.bkts[i]
	if bk.acc == nil {
		return
	}
	bk.sealed = bk.acc.Seal(p.Seed ^ 0x5ea1)
	if p.Sealed {
		bk.acc = nil
	}
}

func (b *builder) numBuckets() int { return len(b.bkts) }
func (b *builder) numWindows() int { return b.nWin }

// windows returns the member windows of builder bucket i (shared slice;
// callers must not mutate).
func (b *builder) windows(i int) []WindowRef { return b.bkts[i].windows }

// maxOccupancy returns the largest bucket occupancy in the builder.
func (b *builder) maxOccupancy() int {
	c := 0
	for i := range b.bkts {
		if n := len(b.bkts[i].windows); n > c {
			c = n
		}
	}
	return c
}

// countTombs counts builder windows whose reference is removed.
func (b *builder) countTombs(refs []genome.Record) int {
	n := 0
	for i := range b.bkts {
		for _, wr := range b.bkts[i].windows {
			if refs[wr.Ref].Seq == nil {
				n++
			}
		}
	}
	return n
}

// liveWindows appends the builder's non-tombstoned windows to dst.
func (b *builder) liveWindows(dst []WindowRef, refs []genome.Record) []WindowRef {
	for i := range b.bkts {
		for _, wr := range b.bkts[i].windows {
			if refs[wr.Ref].Seq != nil {
				dst = append(dst, wr)
			}
		}
	}
	return dst
}

// footprintBytes returns the builder's resident hypervector storage.
func (b *builder) footprintBytes(dim int) int64 {
	var bytes int64
	for i := range b.bkts {
		bytes += int64(len(b.bkts[i].windows)) * 8
		if b.bkts[i].acc != nil {
			bytes += int64(dim) * 4
		}
		if b.bkts[i].sealed != nil {
			bytes += int64(dim) / 8
		}
	}
	return bytes
}

// seal closes every bucket and packs the builder into an immutable
// segment, or returns nil if the builder is empty. The builder must be
// discarded (or reset by the caller) afterwards — its buckets are owned
// by the segment now.
func (b *builder) seal(p *Params, refs []genome.Record) *segment {
	if len(b.bkts) == 0 {
		return nil
	}
	for i := range b.bkts {
		b.sealBucket(i, p)
	}
	seg := newSegment(b.bkts, p.Dim)
	seg.tombs = seg.countTombs(refs)
	b.bkts = nil
	b.nWin = 0
	return seg
}

// view publishes a read-only copy of the builder as a segment, or nil if
// the builder is empty. Closed buckets are immutable and shared with the
// copy outright; the open bucket — the only one future inserts mutate —
// is isolated: its window slice is capped at the current length and its
// vector is freshly sealed (unsealed mode also copies the counters, so
// DotAcc scoring never races a concurrent Add). The arena is fresh per
// view, so repointing the copies' sealed views never touches builder
// state.
func (b *builder) view(p *Params, refs []genome.Record) *segment {
	if len(b.bkts) == 0 {
		return nil
	}
	bkts := make([]bucket, len(b.bkts))
	copy(bkts, b.bkts)
	last := len(bkts) - 1
	if open := &bkts[last]; open.acc != nil && open.sealed == nil {
		open.windows = open.windows[:len(open.windows):len(open.windows)]
		src := b.bkts[last].acc
		if p.Sealed {
			open.acc = nil
			open.sealed = src.Seal(p.Seed ^ 0x5ea1)
		} else {
			acc := hdc.AccFromCounts(append([]int32(nil), src.Counts()...), src.N())
			open.acc = acc
			open.sealed = acc.Seal(p.Seed ^ 0x5ea1)
		}
	}
	seg := newSegment(bkts, p.Dim)
	seg.tombs = seg.countTombs(refs)
	return seg
}
