package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/genome"
	"repro/internal/hdc"
)

// Library file format (little endian):
//
//	magic "BIOHDLIB" | version u32 | params | calibration |
//	refs u32 { id, desc, removed u32, [len u64, packed words] } |
//	segments u32 { buckets u32 { windows u32 {ref i32, off i32},
//	              sealed u8, payload (sealed words | counters + n) } } |
//	crc32 (IEEE, over everything before it)
//
// Version 2 writes one bucket block per segment and flags removed
// references (their sequence is omitted). Version 1 — the
// pre-segmented monolith — had no removed flag and one flat bucket
// block; v1 files load as a single segment and answer queries
// identically to the library that saved them. The active segment is
// serialized like a sealed one: a loaded library starts with an empty
// active segment and every saved bucket immutable.
//
// Version 3 (io_v3.go) is the mappable layout: the same metadata as a
// stream, but every sealed segment's probe arena placed 64-byte-aligned
// at a header-recorded offset with a per-segment CRC, so the file can
// be mmapped and scanned zero-copy. ReadLibrary accepts all three;
// WriteTo emits v2 and WriteToV3 emits v3.
const (
	libMagic   = "BIOHDLIB"
	libVersion = 2
)

// crcWriter tees writes into a running CRC.
type crcWriter struct {
	w   io.Writer
	crc uint32
	err error
}

func (cw *crcWriter) write(data []byte) {
	if cw.err != nil {
		return
	}
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, data)
	_, cw.err = cw.w.Write(data)
}

func (cw *crcWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	cw.write(b[:])
}

func (cw *crcWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	cw.write(b[:])
}

func (cw *crcWriter) f64(v float64) { cw.u64(math.Float64bits(v)) }

func (cw *crcWriter) str(s string) {
	cw.u32(uint32(len(s)))
	cw.write([]byte(s))
}

func (cw *crcWriter) words(ws []uint64) {
	cw.u32(uint32(len(ws)))
	buf := make([]byte, 8*len(ws))
	for i, w := range ws {
		binary.LittleEndian.PutUint64(buf[i*8:], w)
	}
	cw.write(buf)
}

// WriteTo serializes the library's current snapshot in the v2 stream
// format. Only frozen libraries can be saved (a half-built library has
// no stable search semantics). It returns the number of payload bytes
// written.
func (l *Library) WriteTo(w io.Writer) (int64, error) {
	sn := l.snap.Load()
	if sn == nil {
		return 0, fmt.Errorf("core: cannot save an unfrozen library")
	}
	if !l.beginRead() {
		return 0, ErrClosed
	}
	defer l.endRead()
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	cw.write([]byte(libMagic))
	cw.u32(libVersion)

	writeParams(cw, &l.params)
	writeCalibration(cw, &sn.cal)
	writeRefs(cw, sn.refs)

	cw.u32(uint32(len(sn.segs)))
	for _, seg := range sn.segs {
		cw.u32(uint32(seg.numBuckets()))
		for i := 0; i < seg.numBuckets(); i++ {
			ws := seg.windows(i)
			cw.u32(uint32(len(ws)))
			for _, wr := range ws {
				cw.u32(uint32(wr.Ref))
				cw.u32(uint32(wr.Off))
			}
			if l.params.Sealed {
				cw.u32(1)
				cw.words(seg.vector(i).Bits().Words())
			} else {
				cw.u32(0)
				acc := seg.counters(i)
				counts := acc.Counts()
				cw.u32(uint32(len(counts)))
				buf := make([]byte, 4*len(counts))
				for j, c := range counts {
					binary.LittleEndian.PutUint32(buf[j*4:], uint32(c))
				}
				cw.write(buf)
				cw.u32(uint32(acc.N()))
			}
		}
	}
	if cw.err != nil {
		return 0, fmt.Errorf("core: saving library: %w", cw.err)
	}
	// Trailing CRC (not itself covered).
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		return 0, fmt.Errorf("core: saving library: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return 0, fmt.Errorf("core: saving library: %w", err)
	}
	return 0, nil
}

// writeParams serializes the 10 parameter fields (shared by v2 and v3).
func writeParams(cw *crcWriter, p *Params) {
	cw.u32(uint32(p.Dim))
	cw.u32(uint32(p.Window))
	cw.u32(uint32(p.Stride))
	cw.u32(uint32(p.Capacity))
	cw.u32(boolU32(p.Approx))
	cw.u32(boolU32(p.Sealed))
	cw.u32(uint32(p.MutTolerance))
	cw.f64(p.Alpha)
	cw.f64(p.Beta)
	cw.u64(p.Seed)
}

// writeCalibration serializes the calibration block (shared by v2 and v3).
func writeCalibration(cw *crcWriter, cal *Calibration) {
	cw.f64(cal.NoiseMean)
	cw.f64(cal.NoiseStd)
	cw.f64(cal.SignalMean)
	cw.f64(cal.SignalStd)
	cw.f64(cal.Tau)
	cw.u32(uint32(cal.Samples))
}

// writeRefs serializes the reference table with removed-flags (the v2
// encoding, shared by v3).
func writeRefs(cw *crcWriter, refs []genome.Record) {
	cw.u32(uint32(len(refs)))
	for _, rec := range refs {
		cw.str(rec.ID)
		cw.str(rec.Description)
		if rec.Seq == nil {
			cw.u32(1) // removed: tombstone keeps the slot, drops the bases
			continue
		}
		cw.u32(0)
		cw.u64(uint64(rec.Seq.Len()))
		cw.words(rec.Seq.PackedWords())
	}
}

func boolU32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// crcReader tees reads into a running CRC.
type crcReader struct {
	r   io.Reader
	crc uint32
	err error
}

func (cr *crcReader) read(n int) []byte {
	if cr.err != nil {
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cr.r, buf); err != nil {
		cr.err = err
		return nil
	}
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, buf)
	return buf
}

func (cr *crcReader) u32() uint32 {
	b := cr.read(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (cr *crcReader) u64() uint64 {
	b := cr.read(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (cr *crcReader) f64() float64 { return math.Float64frombits(cr.u64()) }

func (cr *crcReader) str(limit uint32) string {
	n := cr.u32()
	if cr.err == nil && n > limit {
		cr.err = fmt.Errorf("string length %d exceeds limit %d", n, limit)
		return ""
	}
	return string(cr.read(int(n)))
}

func (cr *crcReader) words(limit uint32) []uint64 {
	n := cr.u32()
	if cr.err == nil && n > limit {
		cr.err = fmt.Errorf("word count %d exceeds limit %d", n, limit)
		return nil
	}
	buf := cr.read(int(n) * 8)
	if buf == nil {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return out
}

// sanity limits for untrusted input: large enough for any realistic
// genome library (a human chromosome is ~8 M packed words), small enough
// that a forged length prefix cannot trigger a multi-gigabyte
// allocation before the checksum is verified.
const (
	maxStrLen   = 1 << 20
	maxSeqWords = 1 << 23 // 268 Mbases per sequence
	maxCount    = 1 << 24
)

// ReadLibrary deserializes a library saved in any supported format —
// the v2 stream (WriteTo), the pre-segmented v1 stream, or the
// mappable v3 layout (WriteToV3, read here into the heap) — verifying
// every checksum; the result is frozen and ready to search. All
// versions probe through the same kernels — and produce the same
// answers — as the library that was saved. Any bytes following the
// format's final checksum are rejected: a truncated concatenation or a
// corrupt length field must not load as a valid library.
func ReadLibrary(r io.Reader) (*Library, error) {
	br := bufio.NewReader(r)
	var head [12]byte
	if _, err := io.ReadFull(br, head[:]); err != nil || string(head[:len(libMagic)]) != libMagic {
		return nil, fmt.Errorf("core: not a BioHD library file")
	}
	switch version := binary.LittleEndian.Uint32(head[len(libMagic):]); version {
	case 1, 2:
		return readLibraryV12(br, head[:], int(version))
	case libVersionMapped:
		return readLibraryV3(br, head[:])
	default:
		return nil, fmt.Errorf("core: unsupported library version %d", version)
	}
}

// expectEOF asserts the stream is exhausted — every format ends at its
// final checksum, so a readable byte here means trailing garbage (or a
// concatenated second file) that must not silently pass.
func expectEOF(br *bufio.Reader) error {
	switch _, err := br.ReadByte(); err {
	case io.EOF:
		return nil
	case nil:
		return fmt.Errorf("core: trailing data after library checksum")
	default:
		return fmt.Errorf("core: reading library: %w", err)
	}
}

// readParamsChecked deserializes and validates the parameter block,
// including plausibility caps: a forged header must not make the
// constructor precompute gigabyte rotation tables before any checksum
// is checked. The encoder's table is 4·(Window+1) hypervectors of Dim
// bits.
func readParamsChecked(cr *crcReader) (Params, error) {
	var p Params
	p.Dim = int(cr.u32())
	p.Window = int(cr.u32())
	p.Stride = int(cr.u32())
	p.Capacity = int(cr.u32())
	p.Approx = cr.u32() == 1
	p.Sealed = cr.u32() == 1
	p.MutTolerance = int(cr.u32())
	p.Alpha = cr.f64()
	p.Beta = cr.f64()
	p.Seed = cr.u64()
	if cr.err != nil {
		return p, fmt.Errorf("core: reading library header: %w", cr.err)
	}
	if err := p.Validate(); err != nil {
		return p, fmt.Errorf("core: loaded parameters invalid: %w", err)
	}
	if p.Dim > 1<<22 {
		return p, fmt.Errorf("core: implausible dimension %d", p.Dim)
	}
	if int64(p.Window+1)*int64(p.Dim) > 1<<29 {
		return p, fmt.Errorf("core: implausible window %d at dimension %d", p.Window, p.Dim)
	}
	if p.Capacity > maxCount || p.Stride > p.Dim {
		return p, fmt.Errorf("core: implausible capacity %d / stride %d", p.Capacity, p.Stride)
	}
	return p, nil
}

// readCalibration deserializes the calibration block.
func readCalibration(cr *crcReader) Calibration {
	var cal Calibration
	cal.NoiseMean = cr.f64()
	cal.NoiseStd = cr.f64()
	cal.SignalMean = cr.f64()
	cal.SignalStd = cr.f64()
	cal.Tau = cr.f64()
	cal.Samples = int(cr.u32())
	return cal
}

// readRefs deserializes the reference table. removedFlag selects the
// v2+ encoding, where a flag marks tombstoned references whose
// sequence is omitted.
func readRefs(cr *crcReader, removedFlag bool) ([]genome.Record, error) {
	nRefs := cr.u32()
	if cr.err == nil && nRefs > maxCount {
		return nil, fmt.Errorf("core: implausible reference count %d", nRefs)
	}
	var refs []genome.Record
	for i := uint32(0); i < nRefs && cr.err == nil; i++ {
		id := cr.str(maxStrLen)
		desc := cr.str(maxStrLen)
		if removedFlag && cr.u32() == 1 {
			// Removed reference: the slot keeps its index, no sequence.
			refs = append(refs, genome.Record{ID: id, Description: desc})
			continue
		}
		n := cr.u64()
		words := cr.words(maxSeqWords)
		if cr.err != nil {
			break
		}
		if uint64(len(words))*32 < n {
			return nil, fmt.Errorf("core: reference %q truncated", id)
		}
		refs = append(refs, genome.Record{
			ID: id, Description: desc,
			Seq: genome.FromPackedWords(words, int(n)),
		})
	}
	return refs, nil
}

// readLibraryV12 deserializes the v1/v2 stream formats. head is the
// already-consumed magic+version prefix, folded into the running CRC.
func readLibraryV12(br *bufio.Reader, head []byte, version int) (*Library, error) {
	cr := &crcReader{r: br, crc: crc32.Update(0, crc32.IEEETable, head)}
	p, err := readParamsChecked(cr)
	if err != nil {
		return nil, err
	}
	lib, err := NewLibrary(p)
	if err != nil {
		return nil, err
	}
	lib.params = p // keep the stored capacity exactly

	cal := readCalibration(cr)
	refs, err := readRefs(cr, version >= 2)
	if err != nil {
		return nil, err
	}
	lib.refs = refs

	// v1 has one flat bucket block; v2 prefixes a segment count.
	nSegs := uint32(1)
	if version >= 2 {
		nSegs = cr.u32()
		if cr.err == nil && nSegs > maxCount {
			return nil, fmt.Errorf("core: implausible segment count %d", nSegs)
		}
	}
	for s := uint32(0); s < nSegs && cr.err == nil; s++ {
		nBuckets := cr.u32()
		if cr.err == nil && nBuckets > maxCount {
			return nil, fmt.Errorf("core: implausible bucket count %d", nBuckets)
		}
		bkts := make([]bucket, 0, nBuckets)
		for i := uint32(0); i < nBuckets && cr.err == nil; i++ {
			var b bucket
			nWin := cr.u32()
			if cr.err == nil && nWin > maxCount {
				return nil, fmt.Errorf("core: implausible window count %d", nWin)
			}
			for j := uint32(0); j < nWin && cr.err == nil; j++ {
				wr := WindowRef{Ref: int32(cr.u32()), Off: int32(cr.u32())}
				if int(wr.Ref) >= len(lib.refs) || wr.Ref < 0 {
					return nil, fmt.Errorf("core: bucket %d references sequence %d of %d", i, wr.Ref, len(lib.refs))
				}
				b.windows = append(b.windows, wr)
			}
			sealed := cr.u32() == 1
			if sealed != p.Sealed {
				if cr.err == nil {
					return nil, fmt.Errorf("core: bucket %d storage mode disagrees with parameters", i)
				}
				break
			}
			if sealed {
				words := cr.words(maxSeqWords)
				if cr.err != nil {
					break
				}
				if len(words)*64 != p.Dim {
					return nil, fmt.Errorf("core: bucket %d has %d words for dimension %d", i, len(words), p.Dim)
				}
				b.sealed = hdc.HVFromWords(words, p.Dim)
			} else {
				nc := cr.u32()
				if cr.err == nil && int(nc) != p.Dim {
					return nil, fmt.Errorf("core: bucket %d has %d counters for dimension %d", i, nc, p.Dim)
				}
				buf := cr.read(int(nc) * 4)
				if buf == nil {
					break
				}
				counts := make([]int32, nc)
				for j := range counts {
					counts[j] = int32(binary.LittleEndian.Uint32(buf[j*4:]))
				}
				n := int(cr.u32())
				acc := hdc.AccFromCounts(counts, n)
				b.acc = acc
				b.sealed = acc.Seal(p.Seed ^ 0x5ea1)
			}
			bkts = append(bkts, b)
		}
		if cr.err != nil {
			break
		}
		if len(bkts) == 0 {
			continue // v1 wrote no empty bucket blocks; v2 never writes empty segments either
		}
		seg := newSegment(bkts, p.Dim)
		seg.tombs = seg.countTombs(lib.refs)
		lib.segs = append(lib.segs, seg)
	}
	if cr.err != nil {
		return nil, fmt.Errorf("core: reading library: %w", cr.err)
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("core: reading library checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != cr.crc {
		return nil, fmt.Errorf("core: library checksum mismatch (file %08x, computed %08x)", got, cr.crc)
	}
	if err := expectEOF(br); err != nil {
		return nil, err
	}
	lib.cal = cal
	// v2 files are only ever written by frozen libraries; a v1 file is
	// frozen iff it holds buckets. Publish the loaded snapshot with the
	// stored calibration — loading must not re-derive it.
	if version >= 2 || len(lib.segs) > 0 {
		lib.mu.Lock()
		lib.publishLocked(false)
		lib.mu.Unlock()
	}
	return lib, nil
}
