package core

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// seedScalarProbe replicates the seed implementation of Probe — a
// serial full scan through per-bucket hypervector objects with no
// early abandonment — as the golden reference the arena kernel must
// match candidate-for-candidate.
func seedScalarProbe(l *Library, hv *hdc.HV) []Candidate {
	tau := l.Threshold()
	sn := l.snap.Load()
	var out []Candidate
	for i := 0; i < sn.numBuckets(); i++ {
		var score float64
		if l.params.Sealed {
			score = float64(sn.vector(i).Dot(hv))
		} else {
			seg, li := sn.locate(i)
			score = float64(seg.counters(li).DotAcc(hv))
		}
		if score >= tau {
			out = append(out, Candidate{Bucket: i, Score: score, Excess: score - tau})
		}
	}
	return out
}

func sameCandidates(a, b []Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildProbeLib builds a frozen library over a few random references in
// the given mode.
func buildProbeLib(t *testing.T, sealed, approx bool, seed uint64) (*Library, []*genome.Sequence) {
	t.Helper()
	p := Params{Dim: 2048, Window: 24, Sealed: sealed, Approx: approx, Seed: seed}
	if approx {
		p.MutTolerance = 2
	}
	lib := mustLibrary(t, p)
	src := rng.New(seed ^ 0xfeed)
	var refs []*genome.Sequence
	for i := 0; i < 3; i++ {
		ref := genome.Random(1500, src)
		refs = append(refs, ref)
		if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	return lib, refs
}

// probeQueries yields a mix of member windows, mutated member windows,
// and random absent windows — together they exercise candidate hits,
// near-threshold scores, and early-abandoned rows.
func probeQueries(t *testing.T, lib *Library, refs []*genome.Sequence, seed uint64) []*hdc.HV {
	t.Helper()
	src := rng.New(seed ^ 0xabcd)
	w := lib.Params().Window
	encode := func(s *genome.Sequence) *hdc.HV {
		if lib.Params().Approx {
			return lib.Encoder().EncodeWindowApprox(s, 0)
		}
		return lib.Encoder().EncodeWindowExact(s, 0)
	}
	var qs []*hdc.HV
	for i := 0; i < 12; i++ {
		ref := refs[i%len(refs)]
		off := src.Intn(ref.Len() - w)
		window := ref.Slice(off, off+w)
		qs = append(qs, encode(window))
		mut, _ := genome.SubstituteExactly(window, 1+i%3, src)
		qs = append(qs, encode(mut))
		qs = append(qs, encode(genome.Random(w, src)))
	}
	return qs
}

// TestProbeGoldenEquivalence asserts the arena + early-abandon +
// sharded probe returns byte-identical candidates to the seed scalar
// scan across every storage × encoding mode.
func TestProbeGoldenEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name           string
		sealed, approx bool
	}{
		{"sealed-exact", true, false},
		{"sealed-approx", true, true},
		{"raw-exact", false, false},
		{"raw-approx", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lib, refs := buildProbeLib(t, tc.sealed, tc.approx, 77)
			for qi, hv := range probeQueries(t, lib, refs, 99) {
				want := seedScalarProbe(lib, hv)
				var stats Stats
				got, err := lib.Probe(hv, &stats)
				if err != nil {
					t.Fatal(err)
				}
				if !sameCandidates(got, want) {
					t.Fatalf("query %d: kernel probe diverges from scalar scan:\n got %+v\nwant %+v", qi, got, want)
				}
				if stats.BucketProbes != lib.NumBuckets() || stats.CandidateBuckets != len(want) {
					t.Fatalf("query %d: stats %+v inconsistent with %d buckets / %d candidates",
						qi, stats, lib.NumBuckets(), len(want))
				}
			}
		})
	}
}

// TestProbeShardedEquivalence forces the sharded scan on a small
// library and asserts the merged result is identical (same order, same
// scores) to the serial kernel and the scalar reference.
func TestProbeShardedEquivalence(t *testing.T) {
	defer func(v int) { probeShardMin = v }(probeShardMin)
	for _, sealed := range []bool{true, false} {
		lib, refs := buildProbeLib(t, sealed, true, 123)
		for _, hv := range probeQueries(t, lib, refs, 321) {
			probeShardMin = lib.NumBuckets() + 1 // serial
			serial, err := lib.Probe(hv, nil)
			if err != nil {
				t.Fatal(err)
			}
			probeShardMin = 1 // one bucket per worker: maximal sharding
			sharded, err := lib.Probe(hv, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCandidates(serial, sharded) {
				t.Fatalf("sealed=%v: sharded probe diverges:\n got %+v\nwant %+v", sealed, sharded, serial)
			}
			if want := seedScalarProbe(lib, hv); !sameCandidates(sharded, want) {
				t.Fatalf("sealed=%v: sharded probe diverges from scalar scan", sealed)
			}
		}
	}
}

// TestProbeEquivalenceAfterRoundTrip asserts the arena rebuilt by
// ReadLibrary probes identically to the arena built by Freeze.
func TestProbeEquivalenceAfterRoundTrip(t *testing.T) {
	lib, refs := buildProbeLib(t, true, true, 7)
	back := saveLoad(t, lib)
	for _, hv := range probeQueries(t, lib, refs, 8) {
		want, err := lib.Probe(hv, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.Probe(hv, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !sameCandidates(got, want) {
			t.Fatalf("loaded library probes differently:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestLookupAllocs is the allocation regression gate for the lookup hot
// path: with the scratch pool warm, a Lookup that finds nothing must
// not allocate at all, and a Lookup that hits stays within the small
// budget of its result slice and sort.
func TestLookupAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs sync.Pool allocation counts")
	}
	lib, refs := buildProbeLib(t, true, false, 55)
	w := lib.Params().Window
	miss := genome.Random(w, rng.New(9001))
	hit := refs[0].Slice(100, 100+w)
	// Warm the scratch pool (and confirm both paths work).
	if _, _, err := lib.Lookup(miss); err != nil {
		t.Fatal(err)
	}
	if m, _, err := lib.Lookup(hit); err != nil || len(m) == 0 {
		t.Fatalf("warmup hit lookup: %v matches, err %v", len(m), err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, _, err := lib.Lookup(miss); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Errorf("miss Lookup allocates %.1f times per op, want 0", avg)
	}
	// A hit allocates the caller-owned match slice and the sort.Slice
	// plumbing; budget a small constant so regressions (per-bucket or
	// per-probe allocations) trip the gate.
	if avg := testing.AllocsPerRun(50, func() {
		if _, _, err := lib.Lookup(hit); err != nil {
			t.Fatal(err)
		}
	}); avg > 8 {
		t.Errorf("hit Lookup allocates %.1f times per op, want ≤ 8", avg)
	}
}
