package core

import (
	"math"

	"repro/internal/genome"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Calibration holds the empirically measured score distributions of a
// frozen approximate-mode library and the operating threshold derived
// from them.
//
// The a-priori Model is exact for independent bucket members (C = 1, or
// stride ≥ window), but at stride < window consecutive windows overlap
// and their mutual correlations interact with the majority nonlinearity;
// closed forms then drift by 10–20%. BioHD therefore calibrates the
// operating point at Freeze time from deterministic, seeded probes: the
// noise distribution from random queries against sampled buckets, and
// the signal distribution from the library's own member windows with
// MutTolerance substitutions injected. Experiment F2 reports both the
// a-priori model and the calibrated distributions.
type Calibration struct {
	NoiseMean  float64 // mean score of absent queries
	NoiseStd   float64 // std of absent-query scores
	SignalMean float64 // mean score of tolerance-mutated member queries
	SignalStd  float64 // std of those scores
	Tau        float64 // derived operating threshold
	Samples    int     // probes used on each side
}

// calibrationProbes is the number of noise and signal probes drawn.
const calibrationProbes = 192

// calibrate measures noise and signal score distributions on a snapshot
// and derives the operating threshold. Deterministic given the library
// seed and the snapshot's contents — every mutation recalibrates the
// snapshot it publishes, and a snapshot with no tombstones calibrates
// identically to the pre-segmented monolith.
func (l *Library) calibrate(sn *snapshot) Calibration {
	src := rng.New(l.params.Seed ^ 0xca11b7a7e)
	w := l.params.Window

	// Noise side: random queries against randomly sampled buckets.
	var noise stats.Welford
	for i := 0; i < calibrationProbes; i++ {
		q := genome.Random(w, src)
		hv := l.enc.EncodeWindowApprox(q, 0)
		b := src.Intn(sn.numBuckets())
		noise.Add(sn.score(b, hv, &l.params))
	}

	// Signal side: member windows re-queried with MutTolerance
	// substitutions, scored against their own bucket. Tombstoned windows
	// cannot be re-queried (their sequence is gone), so sampling runs
	// over each bucket's live members; buckets with no live member —
	// emptied by Remove — are skipped entirely.
	var nonEmpty []int
	var live [][]WindowRef
	for g := 0; g < sn.numBuckets(); g++ {
		members := sn.windows(g)
		kept := members
		for _, wr := range members {
			if sn.refs[wr.Ref].Seq == nil {
				// Tombstones present: switch to a filtered copy. Untouched
				// buckets keep sharing the snapshot's slice, so the draw
				// sequence matches the tombstone-free case exactly.
				kept = make([]WindowRef, 0, len(members))
				for _, wr2 := range members {
					if sn.refs[wr2.Ref].Seq != nil {
						kept = append(kept, wr2)
					}
				}
				break
			}
		}
		if len(kept) > 0 {
			nonEmpty = append(nonEmpty, g)
			live = append(live, kept)
		}
	}
	var signal stats.Welford
	for i := 0; i < calibrationProbes && len(nonEmpty) > 0; i++ {
		j := src.Intn(len(nonEmpty))
		members := live[j]
		wr := members[src.Intn(len(members))]
		window := sn.refs[wr.Ref].Seq.Slice(int(wr.Off), int(wr.Off)+w)
		if l.params.MutTolerance > 0 {
			window, _ = genome.SubstituteExactly(window, l.params.MutTolerance, src)
		}
		hv := l.enc.EncodeWindowApprox(window, 0)
		signal.Add(sn.score(nonEmpty[j], hv, &l.params))
	}

	cal := Calibration{
		NoiseMean:  noise.Mean(),
		NoiseStd:   noise.StdDev(),
		SignalMean: signal.Mean(),
		SignalStd:  signal.StdDev(),
		Samples:    calibrationProbes,
	}
	// Threshold: FP bound from the noise quantile (Bonferroni over
	// buckets), FN bound from the signal quantile; take the midpoint when
	// the margin allows, else the FP bound wins (report fewer,
	// trustworthy matches).
	tauFP := cal.NoiseMean + zUpper(l.params.Alpha/float64(maxInt(sn.numBuckets(), 1)))*cal.NoiseStd
	tauFN := cal.SignalMean - zUpper(l.params.Beta)*cal.SignalStd
	if tauFN >= tauFP {
		cal.Tau = (tauFP + tauFN) / 2
	} else {
		cal.Tau = tauFP
	}
	// Guard against degenerate probe spreads (e.g. a one-bucket library).
	if math.IsNaN(cal.Tau) || math.IsInf(cal.Tau, 0) {
		cal.Tau = l.modelWith(sn.maxOccupancy()).DecisionThreshold(
			l.params.Alpha, l.params.Beta, maxInt(sn.numBuckets(), 1), l.params.MutTolerance)
	}
	return cal
}

// Calibration returns the calibration of the current snapshot. The
// boolean is false for exact-mode libraries (the a-priori model is
// exact there) and for unfrozen libraries.
func (l *Library) Calibration() (Calibration, bool) {
	sn := l.snap.Load()
	if sn == nil || !l.params.Approx {
		return Calibration{}, false
	}
	return sn.cal, true
}
