package core

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

func TestAddConcurrentMatchesSequential(t *testing.T) {
	src := rng.New(201)
	recs := make([]genome.Record, 6)
	for i := range recs {
		recs[i] = genome.Record{ID: string(rune('a' + i)), Seq: genome.Random(800, src)}
	}
	params := Params{Dim: 4096, Window: 32, Sealed: true, Seed: 202}

	seq := mustLibrary(t, params)
	for _, rec := range recs {
		if err := seq.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	seq.Freeze()

	for _, workers := range []int{1, 3, 8} {
		conc := mustLibrary(t, params)
		if err := conc.AddConcurrent(recs, workers); err != nil {
			t.Fatal(err)
		}
		conc.Freeze()
		if conc.NumBuckets() != seq.NumBuckets() || conc.NumWindows() != seq.NumWindows() {
			t.Fatalf("workers=%d: shape %d/%d vs %d/%d", workers,
				conc.NumBuckets(), conc.NumWindows(), seq.NumBuckets(), seq.NumWindows())
		}
		for b := 0; b < seq.NumBuckets(); b++ {
			if !conc.BucketVector(b).Equal(seq.BucketVector(b)) {
				t.Fatalf("workers=%d: bucket %d differs from sequential build", workers, b)
			}
			sw, cw := seq.BucketWindows(b), conc.BucketWindows(b)
			for k := range sw {
				if sw[k] != cw[k] {
					t.Fatalf("workers=%d: bucket %d window %d metadata differs", workers, b, k)
				}
			}
		}
	}
}

func TestAddConcurrentApproxMatchesSequential(t *testing.T) {
	src := rng.New(203)
	recs := []genome.Record{
		{ID: "a", Seq: genome.Random(400, src)},
		{ID: "b", Seq: genome.Random(400, src)},
	}
	params := Params{Dim: 2048, Window: 24, Sealed: true, Approx: true,
		Capacity: 4, MutTolerance: 3, Seed: 204}
	seq := mustLibrary(t, params)
	for _, rec := range recs {
		if err := seq.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	seq.Freeze()
	conc := mustLibrary(t, params)
	if err := conc.AddConcurrent(recs, 4); err != nil {
		t.Fatal(err)
	}
	conc.Freeze()
	for b := 0; b < seq.NumBuckets(); b++ {
		if !conc.BucketVector(b).Equal(seq.BucketVector(b)) {
			t.Fatalf("approx bucket %d differs", b)
		}
	}
	// Calibration (derived from identical contents) must agree too.
	cs, _ := seq.Calibration()
	cc, _ := conc.Calibration()
	if cs != cc {
		t.Fatalf("calibrations differ: %+v vs %+v", cs, cc)
	}
}

func TestAddConcurrentErrors(t *testing.T) {
	params := Params{Dim: 1024, Window: 32, Sealed: true, Seed: 205}
	lib := mustLibrary(t, params)
	recs := []genome.Record{
		{ID: "ok", Seq: genome.Random(100, rng.New(206))},
		{ID: "short", Seq: genome.Random(10, rng.New(207))},
		{ID: "after", Seq: genome.Random(100, rng.New(208))},
	}
	if err := lib.AddConcurrent(recs, 2); err == nil {
		t.Fatal("short reference accepted")
	}
	// Nothing after the failing record was inserted.
	if lib.NumRefs() > 1 {
		t.Fatalf("%d refs inserted after failure", lib.NumRefs())
	}
	// A frozen library accepts AddConcurrent as live bulk ingest: the
	// batch lands in the active segment and one snapshot covers it.
	frozen, _ := buildExactLib(t, 500, 210)
	refsBefore := frozen.NumRefs()
	if err := frozen.AddConcurrent(recs[:1], 2); err != nil {
		t.Fatalf("AddConcurrent after Freeze rejected: %v", err)
	}
	if frozen.NumRefs() != refsBefore+1 {
		t.Fatalf("NumRefs = %d, want %d", frozen.NumRefs(), refsBefore+1)
	}
	if ok, _, _ := frozen.Contains(recs[0].Seq.Slice(0, 32)); !ok {
		t.Fatal("bulk-ingested reference not searchable")
	}
}
