// Package core implements the BioHD engine: reference-library
// construction by HDC memorization, exact and approximate sequence
// search against the library, and the statistical model that controls
// alignment quality (dimension, capacity, and decision thresholds).
package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Model is BioHD's statistical alignment-quality model. It predicts the
// distribution of query/bucket similarity scores from the geometry
// (dimension D, window length W, bucket capacity C, encoding mode,
// sealed or raw counters) and converts target error rates into decision
// thresholds and admissible capacities.
//
// # Exact mode
//
// Window encodings are binding chains: distinct window contents encode to
// independent random hypervectors. For a bucket holding C windows,
//
//   - absent query, sealed bucket:  score ~ N(0, D)
//   - absent query, raw counters:   score ~ N(0, C·D)
//   - present query, sealed bucket: score ~ N(D·ρ(C), D·(1−ρ(C)²)) where
//     ρ(C) is the exact majority correlation (≈ √(2/πC)),
//   - present query, raw counters:  score ~ N(D, (C−1)·D).
//
// # Approximate mode
//
// Window encodings are positional bundles; two windows sharing a fraction
// f of positions have expected cosine c(f) = (2/π)·asin(f) (the arcsine
// law for sign-correlated Gaussians). Random DNA windows share f₀ ≈ 1/4
// of positions by chance, so bucket members are mutually correlated and
// every bucket score carries a positive baseline. Modelling each sealed
// vector as the sign of a latent Gaussian whose correlation equals the
// agreement fraction, a sealed bucket behaves like the sign of the
// latent sum, and a query agreeing with one member on a fraction f₁ of
// positions scores
//
//	μ(f₁) = D·(2/π)·asin( (f₁+(C−1)f₀) / √(C(1+(C−1)f₀)) ),
//
// with the baseline μ(f₀) and a per-bucket composition noise from the
// binomial spread of chance matches (std √(f₀(1−f₀)/W) per window),
// plus the binarization noise √D. Raw-counter buckets score linearly:
// μ = D·(c(f₁) + (C−1)·c(f₀)).
//
// All predictions here are validated empirically by experiment F2.
type Model struct {
	D      int  // hypervector dimension
	W      int  // window length (bases)
	C      int  // bucket capacity (windows per library vector)
	Approx bool // approximate (bundle) encoding vs exact (bind chain)
	Sealed bool // sealed binary bucket vs raw counters
}

// Validate checks the model geometry.
func (m Model) Validate() error {
	if m.D <= 0 || m.W <= 0 || m.C <= 0 {
		return fmt.Errorf("core: model %+v has non-positive geometry", m)
	}
	return nil
}

// MajorityCorrelation returns ρ(c) = E[x·sign(x + S)] where x is one of
// c iid ±1 components and S the sum of the other c−1, with ties broken
// at random. This is the exact attenuation a bundled member suffers,
// ≈ √(2/(π·c)) for large c and exactly 1 for c = 1.
func MajorityCorrelation(c int) float64 {
	if c <= 0 {
		panic(fmt.Sprintf("core: MajorityCorrelation(%d)", c))
	}
	if c == 1 {
		return 1
	}
	n := c - 1 // remaining components, S ~ 2·Binomial(n, ½) − n
	// ρ = P(1+S > 0) − P(1+S < 0) = P(S ≥ 0) − P(S ≤ −2);
	// S = −1 (possible for odd n) ties and contributes 0 in expectation.
	// In binomial terms with S = 2X − n: P(X ≥ ⌈n/2⌉) − P(X ≤ ⌊(n−2)/2⌋).
	pPos := stats.BinomialTail(n, 0.5, (n+1)/2)
	pNeg := 0.0
	if n >= 2 {
		pNeg = stats.BinomialCDF(n, 0.5, (n-2)/2)
	}
	return pPos - pNeg
}

// ArcsineCosine returns c(f) = (2/π)·asin(f̂) — the expected cosine of
// two sealed positional bundles whose underlying windows agree on a
// fraction f of positions, with f clamped into [−1, 1].
func ArcsineCosine(f float64) float64 {
	if f > 1 {
		f = 1
	}
	if f < -1 {
		f = -1
	}
	return 2 / math.Pi * math.Asin(f)
}

// chanceAgreement is the probability two uniform random bases agree.
const chanceAgreement = 0.25

// memberAgreement returns the expected agreeing-position fraction of a
// query carrying muts substitutions relative to its source window:
// unmutated positions agree, mutated ones never do (substitutions are
// always to a different base).
func (m Model) memberAgreement(muts int) float64 {
	if muts < 0 {
		muts = 0
	}
	if muts > m.W {
		muts = m.W
	}
	return float64(m.W-muts) / float64(m.W)
}

// rho returns the bundle attenuation for this model's capacity in the
// sealed case, or 1 for raw counters (no binarization loss).
func (m Model) rho() float64 {
	if m.Sealed {
		return MajorityCorrelation(m.C)
	}
	return 1
}

// latentCorr returns the Gaussian-surrogate correlation between a query
// and a sealed bucket when the query agrees with one member window on a
// fraction f1 of positions and with everything else at chance: modelling
// each ±1 vector as the sign of a latent Gaussian whose correlation
// equals the agreement fraction (the inverse of the arcsine law), the
// bucket majority behaves like the sign of the latent sum, giving
//
//	corr = (f1 + (C−1)·f₀) / √(C·(1 + (C−1)·f₀)).
func (m Model) latentCorr(f1 float64) float64 {
	c, f0 := float64(m.C), chanceAgreement
	return (f1 + (c-1)*f0) / math.Sqrt(c*(1+(c-1)*f0))
}

// Baseline returns the expected score of a query against a bucket that
// does not contain it. Zero in exact mode; the chance-match baseline in
// approximate mode.
func (m Model) Baseline() float64 {
	if !m.Approx {
		return 0
	}
	d := float64(m.D)
	if m.Sealed {
		return d * ArcsineCosine(m.latentCorr(chanceAgreement))
	}
	return d * float64(m.C) * ArcsineCosine(chanceAgreement)
}

// NoiseSigma returns the standard deviation of the score of a query
// against a bucket that does not contain it.
func (m Model) NoiseSigma() float64 {
	d, c := float64(m.D), float64(m.C)
	if !m.Approx {
		if m.Sealed {
			return math.Sqrt(d)
		}
		return math.Sqrt(c * d)
	}
	// Approximate mode: composition noise plus residual dimension noise.
	// Each window's chance-agreement fraction has std √(f₀(1−f₀)/W);
	// propagating through the score curve gives the composition term.
	f0 := chanceAgreement
	fStd := math.Sqrt(f0 * (1 - f0) / float64(m.W))
	var composition, dimension float64
	if m.Sealed {
		corr0 := m.latentCorr(f0)
		slope := 2 / math.Pi / math.Sqrt(1-corr0*corr0) // d/dcorr of (2/π)asin
		// Each of the C windows moves corr by 1/√(C(1+(C−1)f₀)) per unit
		// agreement; C independent windows add in quadrature.
		composition = d * slope * fStd / math.Sqrt(1+(c-1)*f0)
		dimension = math.Sqrt(d)
	} else {
		slope := 2 / math.Pi / math.Sqrt(1-f0*f0)
		composition = d * slope * fStd * math.Sqrt(c)
		dimension = math.Sqrt(c * d)
	}
	return math.Hypot(composition, dimension)
}

// SignalMean returns the expected score of a query that matches one
// member window of the bucket up to muts substitutions (muts = 0 for
// exact presence). The returned value includes the baseline.
func (m Model) SignalMean(muts int) float64 {
	d := float64(m.D)
	if !m.Approx {
		if muts > 0 {
			// A single substitution decorrelates a binding chain: the
			// mutated query behaves like an absent one.
			return 0
		}
		return d * m.rho()
	}
	if m.Sealed {
		return d * ArcsineCosine(m.latentCorr(m.memberAgreement(muts)))
	}
	cMember := ArcsineCosine(m.memberAgreement(muts))
	cChance := ArcsineCosine(chanceAgreement)
	return m.Baseline() + d*(cMember-cChance)
}

// SignalSigma returns the score standard deviation for a matching query.
// The dominant terms are the same noise sources as NoiseSigma; the
// member's own contribution is deterministic to first order.
func (m Model) SignalSigma(muts int) float64 {
	return m.NoiseSigma()
}

// Threshold returns the decision threshold achieving a family-wise false
// positive rate ≤ alpha across nBuckets independent bucket probes
// (Bonferroni): τ = baseline + z(1 − α/nBuckets)·σ_noise.
func (m Model) Threshold(alpha float64, nBuckets int) float64 {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("core: Threshold alpha=%v out of (0,1)", alpha))
	}
	if nBuckets < 1 {
		nBuckets = 1
	}
	return m.Baseline() + zUpper(alpha/float64(nBuckets))*m.NoiseSigma()
}

// DecisionThreshold returns the operating threshold for a search that
// must both keep the family-wise false-positive rate ≤ alpha over
// nBuckets probes and detect matches carrying up to muts substitutions
// with false-negative rate ≤ beta. When both constraints are satisfiable
// the threshold sits midway between the two critical values, splitting
// the safety margin evenly; when they conflict, the false-positive
// constraint wins (BioHD reports fewer, trustworthy matches and lets the
// model surface the FNR via FNR()).
func (m Model) DecisionThreshold(alpha, beta float64, nBuckets, muts int) float64 {
	tauFP := m.Threshold(alpha, nBuckets)
	if beta <= 0 || beta >= 1 {
		panic(fmt.Sprintf("core: DecisionThreshold beta=%v out of (0,1)", beta))
	}
	tauFN := m.SignalMean(muts) - zUpper(beta)*m.SignalSigma(muts)
	if tauFN >= tauFP {
		return (tauFP + tauFN) / 2
	}
	return tauFP
}

// FPR returns the per-bucket false-positive probability at threshold tau.
func (m Model) FPR(tau float64) float64 {
	return stats.NormalTail((tau - m.Baseline()) / m.NoiseSigma())
}

// FNR returns the probability a true match with muts substitutions
// scores below threshold tau.
func (m Model) FNR(tau float64, muts int) float64 {
	return stats.NormalCDF((tau - m.SignalMean(muts)) / m.SignalSigma(muts))
}

// MaxCapacity returns the largest bucket capacity C for which a query
// with muts substitutions is still separable at the given error targets:
// signal − noise gap of at least z(1−alpha) + z(1−beta) noise sigmas,
// probing nBuckets buckets. Returns at least 1.
func MaxCapacity(d, w int, approx, sealed bool, muts, nBuckets int, alpha, beta float64) int {
	zGap := zUpper(alpha/float64(maxInt(nBuckets, 1))) + zUpper(beta)
	best := 1
	for c := 1; c <= d; c *= 2 {
		m := Model{D: d, W: w, C: c, Approx: approx, Sealed: sealed}
		if m.separable(muts, zGap) {
			best = c
		} else {
			break
		}
	}
	// Refine between best and 2·best by binary search.
	lo, hi := best, best*2
	for lo+1 < hi {
		mid := (lo + hi) / 2
		m := Model{D: d, W: w, C: mid, Approx: approx, Sealed: sealed}
		if m.separable(muts, zGap) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func (m Model) separable(muts int, zGap float64) bool {
	return m.SignalMean(muts)-m.Baseline() >= zGap*m.NoiseSigma()
}

// MinDimension returns the smallest word-aligned dimension D at which a
// query with muts substitutions is separable for the given geometry and
// error targets. It returns 0 if no D up to maxD suffices.
func MinDimension(w, c int, approx, sealed bool, muts, nBuckets int, alpha, beta, maxD float64) int {
	zGap := zUpper(alpha/float64(maxInt(nBuckets, 1))) + zUpper(beta)
	for d := 64; float64(d) <= maxD; d *= 2 {
		m := Model{D: d, W: w, C: c, Approx: approx, Sealed: sealed}
		if m.separable(muts, zGap) {
			// Binary search down within [d/2, d] at 64 granularity.
			lo, hi := d/2, d
			for lo+64 < hi {
				mid := (lo + hi) / 2 / 64 * 64
				mm := Model{D: mid, W: w, C: c, Approx: approx, Sealed: sealed}
				if mm.separable(muts, zGap) {
					hi = mid
				} else {
					lo = mid
				}
			}
			return hi
		}
	}
	return 0
}

// zUpper is NormalUpperQuantile with the tail probability clamped away
// from 0, so Bonferroni divisions of already-tiny alphas (which underflow
// to 0) degrade to a finite ~37σ threshold instead of a domain panic.
func zUpper(p float64) float64 {
	if !(p > 1e-300) { // also catches NaN
		p = 1e-300
	}
	if p > 0.5 {
		p = 0.5
	}
	return stats.NormalUpperQuantile(p)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
