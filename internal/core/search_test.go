package core

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

// buildExactLib builds a frozen exact-mode library over one random
// reference of the given length.
func buildExactLib(t *testing.T, refLen int, seed uint64) (*Library, *genome.Sequence) {
	t.Helper()
	ref := genome.Random(refLen, rng.New(seed))
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: seed + 1})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	return lib, ref
}

func TestLookupExactFindsAllOccurrences(t *testing.T) {
	lib, ref := buildExactLib(t, 4000, 1)
	// Every window of the reference must be found at its position.
	for _, off := range []int{0, 1, 500, 1999, 4000 - 32} {
		pat := ref.Slice(off, off+32)
		matches, _, err := lib.Lookup(pat)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range matches {
			if m.Off == off && m.Ref == 0 && m.Distance == 0 {
				found = true
			}
			// Every reported match must be a real occurrence.
			if !ref.Slice(m.Off, m.Off+32).Equal(pat) {
				t.Fatalf("off=%d: bogus verified match %+v", off, m)
			}
		}
		if !found {
			t.Fatalf("occurrence at %d missed (got %+v)", off, matches)
		}
	}
}

func TestLookupExactRejectsAbsent(t *testing.T) {
	lib, ref := buildExactLib(t, 4000, 2)
	fp := 0
	for i := 0; i < 100; i++ {
		q := genome.Random(32, rng.New(uint64(1000+i)))
		if ref.Index(q, 0) >= 0 {
			continue // genuinely present, skip
		}
		matches, _, err := lib.Lookup(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) > 0 {
			fp++
		}
	}
	// Verification makes false positives impossible; this asserts the
	// full pipeline, not just the HDC filter.
	if fp != 0 {
		t.Fatalf("%d verified false positives", fp)
	}
}

func TestLookupExactOneMutationMisses(t *testing.T) {
	// The binding chain gives exact semantics: a single substitution
	// must not match.
	lib, ref := buildExactLib(t, 2000, 3)
	pat := ref.Slice(100, 132)
	mut, _ := genome.SubstituteExactly(pat, 1, rng.New(4))
	if ref.Index(mut, 0) >= 0 {
		t.Skip("mutated pattern occurs elsewhere by chance")
	}
	matches, _, err := lib.Lookup(mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("exact library matched a mutated pattern: %+v", matches)
	}
}

func TestLookupPatternTooShort(t *testing.T) {
	lib, _ := buildExactLib(t, 1000, 5)
	if _, _, err := lib.Lookup(genome.Random(10, rng.New(6))); err == nil {
		t.Fatal("short pattern accepted")
	}
	if _, _, err := lib.Lookup(nil); err == nil {
		t.Fatal("nil pattern accepted")
	}
}

func TestLookupStats(t *testing.T) {
	lib, ref := buildExactLib(t, 2000, 7)
	_, stats, err := lib.Lookup(ref.Slice(50, 82))
	if err != nil {
		t.Fatal(err)
	}
	if stats.BucketProbes != lib.NumBuckets() {
		t.Fatalf("probes %d != buckets %d", stats.BucketProbes, lib.NumBuckets())
	}
	if stats.Alignments != 1 || stats.CandidateBuckets < 1 || stats.WindowsVerified < 1 {
		t.Fatalf("stats implausible: %+v", stats)
	}
}

func TestContains(t *testing.T) {
	lib, ref := buildExactLib(t, 1500, 8)
	ok, _, err := lib.Contains(ref.Slice(321, 353))
	if err != nil || !ok {
		t.Fatalf("present pattern not contained (err %v)", err)
	}
	absent := genome.Random(32, rng.New(9))
	if ref.Index(absent, 0) < 0 {
		ok, _, err = lib.Contains(absent)
		if err != nil || ok {
			t.Fatalf("absent pattern contained (err %v)", err)
		}
	}
}

func TestLookupApproxToleratesMutations(t *testing.T) {
	ref := genome.Random(1500, rng.New(10))
	lib := mustLibrary(t, Params{
		Dim: 8192, Window: 48, Approx: true, Sealed: true,
		Capacity: 4, MutTolerance: 6, Seed: 11,
	})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	for _, muts := range []int{0, 2, 4, 6} {
		pat := ref.Slice(700, 748)
		mut, _ := genome.SubstituteExactly(pat, muts, rng.New(uint64(20+muts)))
		matches, _, err := lib.Lookup(mut)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range matches {
			if m.Off == 700 && m.Distance == muts {
				found = true
			}
		}
		if !found {
			t.Fatalf("muts=%d: occurrence missed, got %+v", muts, matches)
		}
	}
	// Beyond tolerance the verifier must reject even if the filter fires.
	pat := ref.Slice(700, 748)
	far, _ := genome.SubstituteExactly(pat, 20, rng.New(30))
	matches, _, err := lib.Lookup(far)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.Off == 700 {
			t.Fatalf("match beyond tolerance reported: %+v", m)
		}
	}
}

func TestLookupStrideWithCompensation(t *testing.T) {
	// Stride-4 library: a pattern of length Window+Stride−1 must be found
	// regardless of its offset alignment.
	ref := genome.Random(2000, rng.New(12))
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Stride: 4, Sealed: true, Seed: 13})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	for off := 100; off < 108; off++ { // all alignments mod 4 covered
		pat := ref.Slice(off, off+32+3)
		matches, _, err := lib.Lookup(pat)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, m := range matches {
			if m.Ref == 0 && m.Off == off+m.QueryOff && m.Off%4 == 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("offset %d: no aligned match, got %+v", off, matches)
		}
	}
}

func TestLookupLongMapsRead(t *testing.T) {
	src := rng.New(14)
	refs := []*genome.Sequence{
		genome.Random(3000, src), genome.Random(3000, src), genome.Random(3000, src),
	}
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: 15})
	for i, r := range refs {
		if err := lib.Add(genome.Record{ID: string(rune('a' + i)), Seq: r}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	// A 320-base read from reference 1 at offset 1234.
	read := refs[1].Slice(1234, 1234+320)
	ranked, _, err := lib.LookupLong(read, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 || ranked[0].Ref != 1 {
		t.Fatalf("read not mapped to ref 1: %+v", ranked)
	}
	if ranked[0].Offset != 1234 {
		t.Fatalf("alignment offset %d, want 1234", ranked[0].Offset)
	}
	if ranked[0].Fraction < 0.9 {
		t.Fatalf("support fraction %v too low for error-free read", ranked[0].Fraction)
	}
}

func TestClassify(t *testing.T) {
	src := rng.New(16)
	refs := []*genome.Sequence{genome.Random(2000, src), genome.Random(2000, src)}
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: 17})
	for i, r := range refs {
		if err := lib.Add(genome.Record{ID: string(rune('A' + i)), Seq: r}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	best, _, err := lib.Classify(refs[0].Slice(500, 800), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if best.Ref != 0 {
		t.Fatalf("classified to ref %d", best.Ref)
	}
	// An unrelated query must not classify.
	if _, _, err := lib.Classify(genome.Random(300, rng.New(18)), 0.5); err == nil {
		t.Fatal("unrelated query classified")
	}
}

func TestLookupLongQueryTooShort(t *testing.T) {
	lib, _ := buildExactLib(t, 1000, 19)
	if _, _, err := lib.LookupLong(genome.Random(10, rng.New(20)), 0.5); err == nil {
		t.Fatal("short query accepted")
	}
}

func TestProbeDimensionMismatch(t *testing.T) {
	lib, _ := buildExactLib(t, 1000, 21)
	other := mustLibrary(t, Params{Dim: 1024, Window: 32, Seed: 22})
	q := other.Encoder().EncodeWindowExact(genome.Random(32, rng.New(23)), 0)
	if _, err := lib.Probe(q, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestMultipleOccurrences(t *testing.T) {
	// Plant the same 32-mer at three locations.
	src := rng.New(24)
	motif := genome.Random(32, src)
	ref := genome.Random(500, src).
		Append(motif).Append(genome.Random(500, src)).
		Append(motif).Append(genome.Random(500, src)).
		Append(motif)
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: 25})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	matches, _, err := lib.Lookup(motif)
	if err != nil {
		t.Fatal(err)
	}
	wantOffsets := map[int]bool{500: true, 1032: true, 1564: true}
	got := map[int]bool{}
	for _, m := range matches {
		got[m.Off] = true
	}
	for off := range wantOffsets {
		if !got[off] {
			t.Fatalf("occurrence at %d missed; got %v", off, got)
		}
	}
}
