package core

import (
	"bytes"
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

// buildSerialized constructs a library over recs with the given params
// and worker count (0 = sequential Add) and returns its serialized bytes.
func buildSerialized(t *testing.T, p Params, recs []genome.Record, workers int) []byte {
	t.Helper()
	lib, err := NewLibrary(p)
	if err != nil {
		t.Fatal(err)
	}
	if workers == 0 {
		for _, rec := range recs {
			if err := lib.Add(rec); err != nil {
				t.Fatal(err)
			}
		}
	} else if err := lib.AddConcurrent(recs, workers); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestBuildDeterminism is the regression guard behind biohdlint's
// determinism rule: building the same references with the same seed must
// produce byte-identical libraries — across repeated runs and across
// sequential vs concurrent construction — in both encoding modes. A
// stray global-rand call or map-iteration-order dependence anywhere in
// the build path shows up here as a byte diff.
func TestBuildDeterminism(t *testing.T) {
	src := rng.New(99)
	recs := []genome.Record{
		{ID: "chr1", Seq: genome.Random(600, src)},
		{ID: "chr2", Seq: genome.Random(450, src)},
		{ID: "chr3", Seq: genome.Random(333, src)},
	}
	for _, tc := range []struct {
		name string
		p    Params
	}{
		{"exact-sealed", Params{Dim: 1024, Window: 16, Sealed: true, Seed: 5}},
		{"approx-raw", Params{Dim: 1024, Window: 16, Approx: true, MutTolerance: 2, Seed: 5}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := buildSerialized(t, tc.p, recs, 0)
			if again := buildSerialized(t, tc.p, recs, 0); !bytes.Equal(first, again) {
				t.Error("two sequential builds with the same seed differ")
			}
			for _, workers := range []int{1, 4} {
				if conc := buildSerialized(t, tc.p, recs, workers); !bytes.Equal(first, conc) {
					t.Errorf("AddConcurrent(workers=%d) differs from sequential build", workers)
				}
			}
		})
	}
}
