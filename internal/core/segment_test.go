package core

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

// loadFixture reads a library file checked in under testdata/.
func loadFixture(t *testing.T, name string) *Library {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lib, err := ReadLibrary(f)
	if err != nil {
		t.Fatalf("loading %s: %v", name, err)
	}
	return lib
}

// goldenSealedFixture rebuilds, live, the exact library that produced
// testdata/golden_v1_sealed.lib (written by the v1 format before the
// segmented refactor). The generator used rng.New(9001) for all three
// reference draws.
func goldenSealedFixture(t *testing.T) *Library {
	t.Helper()
	lib := mustLibrary(t, Params{Dim: 2048, Window: 24, Stride: 1, Capacity: 12,
		Approx: true, Sealed: true, MutTolerance: 2, Seed: 9002})
	src := rng.New(9001)
	for i := 0; i < 3; i++ {
		rec := genome.Record{
			ID:          "ref-" + string(rune('0'+i)),
			Description: "fixture ref " + string(rune('0'+i)),
			Seq:         genome.Random(400, src),
		}
		if err := lib.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	return lib
}

// goldenRawFixture rebuilds the library behind testdata/golden_v1_raw.lib.
func goldenRawFixture(t *testing.T) *Library {
	t.Helper()
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Stride: 1, Capacity: 8, Seed: 9004})
	src := rng.New(9003)
	for i := 0; i < 2; i++ {
		rec := genome.Record{
			ID:          "raw-" + string(rune('0'+i)),
			Description: "raw fixture " + string(rune('0'+i)),
			Seq:         genome.Random(300, src),
		}
		if err := lib.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	return lib
}

// assertLibrariesEquivalent checks that two frozen libraries answer
// identically: same shape, bit-identical bucket vectors, and the same
// Lookup results (matches and stats) for every member window probed.
func assertLibrariesEquivalent(t *testing.T, want, got *Library) {
	t.Helper()
	if got.NumBuckets() != want.NumBuckets() || got.NumWindows() != want.NumWindows() ||
		got.NumRefs() != want.NumRefs() {
		t.Fatalf("shape differs: %d/%d/%d vs %d/%d/%d",
			got.NumBuckets(), got.NumWindows(), got.NumRefs(),
			want.NumBuckets(), want.NumWindows(), want.NumRefs())
	}
	if got.Threshold() != want.Threshold() {
		t.Fatalf("thresholds differ: %v vs %v", got.Threshold(), want.Threshold())
	}
	cw, okw := want.Calibration()
	cg, okg := got.Calibration()
	if okw != okg || cw != cg {
		t.Fatalf("calibration differs: %+v/%v vs %+v/%v", cg, okg, cw, okw)
	}
	for b := 0; b < want.NumBuckets(); b++ {
		if !got.BucketVector(b).Equal(want.BucketVector(b)) {
			t.Fatalf("bucket %d vector differs", b)
		}
	}
	w := want.Params().Window
	for r := 0; r < want.NumRefs(); r++ {
		seq := want.Ref(r).Seq
		if seq == nil {
			continue
		}
		for _, off := range []int{0, seq.Len() / 2, seq.Len() - w} {
			pat := seq.Slice(off, off+w)
			m1, s1, err := want.Lookup(pat)
			if err != nil {
				t.Fatal(err)
			}
			m2, s2, err := got.Lookup(pat)
			if err != nil {
				t.Fatal(err)
			}
			if len(m1) != len(m2) || s1 != s2 {
				t.Fatalf("ref %d off %d: answers diverge: %v/%+v vs %v/%+v",
					r, off, m1, s1, m2, s2)
			}
			for i := range m1 {
				if m1[i] != m2[i] {
					t.Fatalf("ref %d off %d: match %d differs: %+v vs %+v",
						r, off, i, m1[i], m2[i])
				}
			}
		}
	}
}

// TestGoldenV1SealedCompat loads a library file written by the v1
// (pre-segment) format and asserts the v2 reader reconstructs it as a
// single-segment library indistinguishable from a live rebuild.
func TestGoldenV1SealedCompat(t *testing.T) {
	loaded := loadFixture(t, "golden_v1_sealed.lib")
	if !loaded.Frozen() {
		t.Fatal("v1 fixture not frozen after load")
	}
	if n := loaded.NumSegments(); n != 1 {
		t.Fatalf("v1 fixture loaded as %d segments, want 1", n)
	}
	if r := loaded.TombstoneRatio(); r != 0 {
		t.Fatalf("v1 fixture has tombstone ratio %v, want 0", r)
	}
	live := goldenSealedFixture(t)
	assertLibrariesEquivalent(t, live, loaded)
}

// TestGoldenV1RawCompat is the unsealed-mode (counter-bucket) variant.
func TestGoldenV1RawCompat(t *testing.T) {
	loaded := loadFixture(t, "golden_v1_raw.lib")
	if n := loaded.NumSegments(); n != 1 {
		t.Fatalf("v1 fixture loaded as %d segments, want 1", n)
	}
	live := goldenRawFixture(t)
	assertLibrariesEquivalent(t, live, loaded)
	// The v1 reader must preserve the reference records verbatim.
	for r := 0; r < live.NumRefs(); r++ {
		lr, gr := live.Ref(r), loaded.Ref(r)
		if lr.ID != gr.ID || lr.Description != gr.Description || !lr.Seq.Equal(gr.Seq) {
			t.Fatalf("ref %d record differs: %+v vs %+v", r, gr, lr)
		}
	}
}

// buildSegmentedLib builds a frozen sealed-approx library with one
// pre-freeze segment plus live-ingested refs sealed into additional
// segments. Returns the library and the reference sequences.
func buildSegmentedLib(t *testing.T, nPre, nPost int, seed uint64) (*Library, []*genome.Sequence) {
	t.Helper()
	// Capacity is left to the model: approximate mode at D=2048 only
	// supports tiny occupancies, and an over-stuffed bucket would push
	// the calibrated threshold above every member score.
	lib := mustLibrary(t, Params{Dim: 2048, Window: 24,
		Sealed: true, Approx: true, MutTolerance: 2, Seed: seed})
	src := rng.New(seed ^ 0x5e9)
	var refs []*genome.Sequence
	add := func(i int) {
		ref := genome.Random(300, src)
		refs = append(refs, ref)
		if err := lib.Add(genome.Record{ID: "r", Seq: ref}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nPre; i++ {
		add(i)
	}
	lib.Freeze()
	lib.SetSealThreshold(1) // every post-freeze Add seals its own segment
	for i := 0; i < nPost; i++ {
		add(nPre + i)
	}
	return lib, refs
}

// TestSaveLoadPreservesSegments round-trips a multi-segment library
// with a tombstoned reference through the v2 format and asserts the
// segment boundaries, tombstones, and calibration all survive.
func TestSaveLoadPreservesSegments(t *testing.T) {
	lib, refs := buildSegmentedLib(t, 2, 2, 601)
	if err := lib.Remove(1); err != nil {
		t.Fatal(err)
	}
	if lib.NumSegments() < 3 {
		t.Fatalf("want a multi-segment library, got %d segments", lib.NumSegments())
	}
	if lib.TombstoneRatio() == 0 {
		t.Fatal("Remove left no tombstones")
	}
	back := saveLoad(t, lib)
	if back.NumSegments() != lib.NumSegments() {
		t.Fatalf("segment count changed: %d vs %d", back.NumSegments(), lib.NumSegments())
	}
	si1, si2 := lib.Segments(), back.Segments()
	for i := range si1 {
		if si1[i] != si2[i] {
			t.Fatalf("segment %d info differs: %+v vs %+v", i, si2[i], si1[i])
		}
	}
	if back.TombstoneRatio() != lib.TombstoneRatio() {
		t.Fatalf("tombstone ratio changed: %v vs %v", back.TombstoneRatio(), lib.TombstoneRatio())
	}
	if back.Ref(1).Seq != nil {
		t.Fatal("removed reference resurrected by round-trip")
	}
	assertLibrariesEquivalent(t, lib, back)
	// The removed reference must stay unfindable after the round-trip.
	w := lib.Params().Window
	if m, _, err := back.Lookup(refs[1].Slice(50, 50+w)); err != nil {
		t.Fatal(err)
	} else {
		for _, mm := range m {
			if mm.Ref == 1 {
				t.Fatalf("tombstoned ref matched after round-trip: %+v", mm)
			}
		}
	}
	// The loaded library is still mutable: Remove and Compact work on it.
	if err := back.Remove(0); err != nil {
		t.Fatalf("Remove on loaded library: %v", err)
	}
	if n, err := back.Compact(0); err != nil || n == 0 {
		t.Fatalf("Compact on loaded library: %d segments rewritten, err %v", n, err)
	}
	if back.TombstoneRatio() != 0 {
		t.Fatalf("tombstones survive compaction: %v", back.TombstoneRatio())
	}
	if m, _, err := back.Lookup(refs[3].Slice(50, 50+w)); err != nil || len(m) == 0 {
		t.Fatalf("survivor lost after compacting loaded library: %v matches, err %v", len(m), err)
	}
}

// matchKeys reduces matches to their identity (which reference window
// matched at which query offset) — the segment layout must not change
// this set.
func matchKeys(ms []Match) map[Match]bool {
	set := make(map[Match]bool, len(ms))
	for _, m := range ms {
		set[m] = true
	}
	return set
}

// TestSegmentBoundaryIndependence ingests the same references once as a
// single frozen segment and once split across per-reference segments,
// and asserts Lookup and LookupLong report the same matches. Scores and
// bucket indices may differ (different superposition groupings); the
// verified match set must not.
func TestSegmentBoundaryIndependence(t *testing.T) {
	const seed = 811
	params := Params{Dim: 4096, Window: 24, Capacity: 8, Sealed: true, Seed: seed}
	src := rng.New(seed ^ 0xbead)
	var refs []*genome.Sequence
	for i := 0; i < 4; i++ {
		refs = append(refs, genome.Random(300, src))
	}

	mono := mustLibrary(t, params)
	for _, ref := range refs {
		if err := mono.Add(genome.Record{ID: "r", Seq: ref}); err != nil {
			t.Fatal(err)
		}
	}
	mono.Freeze()

	multi := mustLibrary(t, params)
	if err := multi.Add(genome.Record{ID: "r", Seq: refs[0]}); err != nil {
		t.Fatal(err)
	}
	multi.Freeze()
	multi.SetSealThreshold(1)
	for _, ref := range refs[1:] {
		if err := multi.Add(genome.Record{ID: "r", Seq: ref}); err != nil {
			t.Fatal(err)
		}
	}
	if multi.NumSegments() < 4 {
		t.Fatalf("multi library has %d segments, want ≥ 4", multi.NumSegments())
	}
	if mono.NumSegments() != 1 {
		t.Fatalf("mono library has %d segments, want 1", mono.NumSegments())
	}
	if mono.NumWindows() != multi.NumWindows() {
		t.Fatalf("window counts differ: %d vs %d", mono.NumWindows(), multi.NumWindows())
	}

	w := params.Window
	for r, ref := range refs {
		for _, off := range []int{0, 97, ref.Len() - w} {
			pat := ref.Slice(off, off+w)
			m1, _, err := mono.Lookup(pat)
			if err != nil {
				t.Fatal(err)
			}
			m2, _, err := multi.Lookup(pat)
			if err != nil {
				t.Fatal(err)
			}
			k1, k2 := matchKeys(m1), matchKeys(m2)
			if len(k1) != len(k2) {
				t.Fatalf("ref %d off %d: match sets differ: %v vs %v", r, off, m1, m2)
			}
			for k := range k1 {
				if !k2[k] {
					t.Fatalf("ref %d off %d: match %+v missing from segmented library", r, off, k)
				}
			}
		}
		// Long-read mapping agrees on the winning reference and offset.
		long := ref.Slice(20, 260)
		r1, _, err := mono.LookupLong(long, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		r2, _, err := multi.LookupLong(long, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if len(r1) == 0 || len(r2) == 0 {
			t.Fatalf("ref %d: long lookup empty: %v vs %v", r, r1, r2)
		}
		if r1[0].Ref != r || r2[0].Ref != r || r1[0] != r2[0] {
			t.Fatalf("ref %d: long lookup diverges: %+v vs %+v", r, r1[0], r2[0])
		}
	}
}

// TestConcurrentSearchDuringMutation is the snapshot-isolation stress
// test: readers hammer every search entry point while a writer ingests,
// removes, and compacts. Against the old in-place republish this fails
// under -race (readers observed the arena mid-rewrite); with atomic
// snapshots it must be silent.
func TestConcurrentSearchDuringMutation(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 2048, Window: 24,
		Sealed: true, Approx: true, MutTolerance: 2, Seed: 901})
	base := genome.Random(600, rng.New(902))
	if err := lib.Add(genome.Record{ID: "base", Seq: base}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	lib.SetSealThreshold(8)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	w := lib.Params().Window
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			src := rng.New(uint64(910 + g))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				off := src.Intn(base.Len() - w)
				switch i % 3 {
				case 0:
					if _, _, err := lib.Lookup(base.Slice(off, off+w)); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, err := lib.LookupLong(base.Slice(0, 240), 0.2); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, _, err := lib.Contains(genome.Random(w, src)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}

	// Writer: live ingest, tombstone the ref it just added, and compact —
	// every mutation publishes a fresh snapshot under the readers.
	wsrc := rng.New(903)
	for i := 0; i < 12; i++ {
		if err := lib.Add(genome.Record{ID: "live", Seq: genome.Random(200, wsrc)}); err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if err := lib.Remove(lib.NumRefs() - 1); err != nil {
				t.Fatal(err)
			}
		}
		if i%4 == 3 {
			if _, err := lib.Compact(0); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	// The original reference survived the churn.
	if m, _, err := lib.Lookup(base.Slice(100, 100+w)); err != nil || len(m) == 0 {
		t.Fatalf("base reference lost after concurrent churn: %v matches, err %v", len(m), err)
	}
}
