package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/genome"
)

// The generic v3 container codec: the header/meta/directory/arena
// framing of the mappable file format, factored out of the HDC reader
// and writer so alternate backends serialize into the same container
// with their own tag and meta schema. The layout (offsets, alignment,
// CRCs, canonical zero padding) is identical whatever the backend —
// only the meta payload and the arena interpretation differ. The HDC
// WriteToV3/readLibraryV3 pair is itself built on this codec, so there
// is exactly one acceptance surface to fuzz and corruption-test.

// MaxMetaCount caps count fields decoded from untrusted metadata, so a
// forged length prefix cannot trigger a huge allocation before any
// checksum is verified. Backend meta parsers apply it to their own
// count fields.
const MaxMetaCount = maxCount

// SectionWriter serializes one CRC-covered container section. The
// write methods latch the first error; check Err once at the end.
type SectionWriter struct {
	cw crcWriter
}

func (w *SectionWriter) U32(v uint32)  { w.cw.u32(v) }
func (w *SectionWriter) U64(v uint64)  { w.cw.u64(v) }
func (w *SectionWriter) F64(v float64) { w.cw.f64(v) }
func (w *SectionWriter) Str(s string)  { w.cw.str(s) }

// Words writes a count-prefixed little-endian word slice.
func (w *SectionWriter) Words(ws []uint64) { w.cw.words(ws) }

// Refs writes the shared reference-table encoding (ids, descriptions,
// tombstone flags, packed sequences) every backend stores.
func (w *SectionWriter) Refs(refs []genome.Record) { writeRefs(&w.cw, refs) }

// Err returns the first write error, if any.
func (w *SectionWriter) Err() error { return w.cw.err }

// SectionReader decodes one CRC-covered container section. The read
// methods latch the first error (including plausibility-limit
// violations); decoding continues returning zero values after a latch,
// so parsers check Err (or let ReadContainerV3 check it) once.
type SectionReader struct {
	cr crcReader
}

func (r *SectionReader) U32() uint32  { return r.cr.u32() }
func (r *SectionReader) U64() uint64  { return r.cr.u64() }
func (r *SectionReader) F64() float64 { return r.cr.f64() }

// Str reads a string, capped at the container's string limit.
func (r *SectionReader) Str() string { return r.cr.str(maxStrLen) }

// Words reads a count-prefixed word slice, capped at limit words.
func (r *SectionReader) Words(limit uint32) []uint64 { return r.cr.words(limit) }

// Refs reads the shared reference-table encoding.
func (r *SectionReader) Refs() ([]genome.Record, error) { return readRefs(&r.cr, true) }

// Err returns the first read error, if any.
func (r *SectionReader) Err() error { return r.cr.err }

// Fail latches err as the section's error if none is set — backend
// parsers report their own validation failures through it.
func (r *SectionReader) Fail(err error) {
	if r.cr.err == nil {
		r.cr.err = err
	}
}

// ContainerSegment is one arena in a v3 container: a (Buckets ×
// RowWords) word matrix stored row-major. For the HDC backend a row is
// a sealed bucket hypervector; for the bit-sliced backend a row is one
// Bloom bit position's column bitmap. len(Words) must equal
// Buckets·RowWords.
type ContainerSegment struct {
	Words    []uint64
	RowWords uint32
	Buckets  uint32
}

// WriteContainerV3 writes a complete v3 container: the fixed header
// carrying backend in its trailing word, the meta section (leading
// backend tag word, then the payload produced by writeMeta, CRC
// appended), the segment directory (each entry tagged with backend
// inside the directory CRC), and the 64-byte-aligned arenas. Offsets
// are the minimal aligned positions and all padding is zero — the
// canonical layout the readers enforce byte for byte. It returns the
// number of bytes written (the v3 file size).
//
// The header's tag word sits outside the header CRC, so the codec
// writes two CRC-protected copies: one leading the meta section
// (present even in a zero-segment container) and one in every
// directory entry. A flipped header tag therefore always disagrees
// with a protected copy, whatever the segment count.
func WriteContainerV3(w io.Writer, backend uint32, writeMeta func(*SectionWriter), segs []ContainerSegment) (int64, error) {
	// Meta section, buffered first so the header can record its length.
	var metaBuf bytes.Buffer
	sw := &SectionWriter{cw: crcWriter{w: &metaBuf}}
	sw.U32(backend)
	writeMeta(sw)
	if sw.cw.err != nil {
		return 0, fmt.Errorf("core: saving library: %w", sw.cw.err)
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], sw.cw.crc)
	metaBuf.Write(tail[:])

	// Layout: minimal aligned offsets, in section order.
	nSegs := len(segs)
	metaLen := uint64(metaBuf.Len())
	dirOff := v3AlignUp(v3HeaderSize + metaLen)
	arenaOff := v3AlignUp(dirOff + uint64(nSegs*v3DirEntrySize+4))

	encBuf := make([]byte, 64*1024)
	entries := make([]v3DirEntry, nSegs)
	off := arenaOff
	for k, s := range segs {
		if uint64(len(s.Words)) != uint64(s.RowWords)*uint64(s.Buckets) {
			return 0, fmt.Errorf("core: v3 segment %d arena has %d words, geometry says %d×%d", k, len(s.Words), s.Buckets, s.RowWords)
		}
		entries[k] = v3DirEntry{
			off:      off,
			words:    uint64(len(s.Words)),
			rowWords: s.RowWords,
			buckets:  s.Buckets,
			crc:      crcWordsLE(s.Words, encBuf),
		}
		off = v3AlignUp(off + uint64(len(s.Words))*8)
	}
	fileSize := off

	var hdr [v3HeaderSize]byte
	copy(hdr[0:8], libMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], libVersionMapped)
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(nSegs))
	binary.LittleEndian.PutUint64(hdr[16:24], v3HeaderSize)
	binary.LittleEndian.PutUint64(hdr[24:32], metaLen)
	binary.LittleEndian.PutUint64(hdr[32:40], dirOff)
	binary.LittleEndian.PutUint64(hdr[40:48], arenaOff)
	binary.LittleEndian.PutUint64(hdr[48:56], fileSize)
	binary.LittleEndian.PutUint32(hdr[56:60], crc32.ChecksumIEEE(hdr[:56]))
	binary.LittleEndian.PutUint32(hdr[60:64], backend)

	out := &countingWriter{bw: bufio.NewWriter(w)}
	out.write(hdr[:])
	out.write(metaBuf.Bytes())
	out.pad(dirOff)
	dcw := &crcWriter{w: out}
	for _, e := range entries {
		dcw.u64(e.off)
		dcw.u64(e.words)
		dcw.u32(e.rowWords)
		dcw.u32(e.buckets)
		dcw.u32(e.crc)
		dcw.u32(backend)
	}
	binary.LittleEndian.PutUint32(tail[:], dcw.crc)
	out.write(tail[:])
	out.pad(arenaOff)
	for k := range segs {
		out.pad(entries[k].off)
		out.writeWordsLE(segs[k].Words, encBuf)
	}
	out.pad(fileSize)
	if out.err != nil {
		return out.n, fmt.Errorf("core: saving library: %w", out.err)
	}
	if uint64(out.n) != fileSize {
		return out.n, fmt.Errorf("core: v3 writer emitted %d bytes, layout computed %d", out.n, fileSize)
	}
	if err := out.bw.Flush(); err != nil {
		return out.n, fmt.Errorf("core: saving library: %w", err)
	}
	return out.n, nil
}

// ReadContainerV3 reads and verifies a v3 container from br given its
// already-consumed 64-byte header, enforcing the canonical layout: the
// header CRC and structural offsets, the backend tag (header word, the
// meta section's leading word, and every directory entry must equal
// backend), meta CRC with full payload consumption, directory CRC and
// generic geometry (each arena
// exactly Buckets·RowWords words at the minimal aligned offset, ending
// at the header's file size), per-arena CRCs, all-zero padding, and
// EOF at the recorded size. parseMeta decodes the backend's meta
// payload; onSeg receives each verified arena in order — both
// callbacks apply the backend-specific validation the container cannot
// know about.
func ReadContainerV3(br *bufio.Reader, hdr []byte, backend uint32, parseMeta func(*SectionReader, int) error, onSeg func(k int, s ContainerSegment) error) error {
	h, err := parseV3Header(hdr)
	if err != nil {
		return err
	}
	if h.backend != backend {
		return fmt.Errorf("core: v3 container tagged for backend %s, reader expects %s",
			BackendName(h.backend), BackendName(backend))
	}
	consumed := uint64(v3HeaderSize)

	// Meta, through a LimitReader so a forged length cannot force a
	// giant upfront allocation — decoding grows with actual input.
	lr := &io.LimitedReader{R: br, N: int64(h.metaLen - 4)}
	sr := &SectionReader{cr: crcReader{r: lr}}
	// The meta section leads with a CRC-protected copy of the backend
	// tag — the copy that exists even when segCount == 0 leaves no
	// directory entries to carry one. The header word (CRC-exempt) may
	// have been flipped; this copy may not.
	if tag := sr.U32(); sr.cr.err == nil && tag != backend {
		return fmt.Errorf("core: v3 meta section tagged for backend %s, header says %s",
			BackendName(tag), BackendName(backend))
	}
	if err := parseMeta(sr, h.segCount); err != nil {
		return err
	}
	if sr.cr.err != nil {
		return fmt.Errorf("core: reading v3 metadata: %w", sr.cr.err)
	}
	if lr.N != 0 {
		return fmt.Errorf("core: v3 metadata has %d undecoded bytes", lr.N)
	}
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return fmt.Errorf("core: reading v3 metadata checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != sr.cr.crc {
		return fmt.Errorf("core: v3 metadata checksum mismatch (file %08x, computed %08x)", got, sr.cr.crc)
	}
	consumed += h.metaLen
	if err := skipZeroPadding(br, h.dirOff-consumed); err != nil {
		return err
	}
	consumed = h.dirOff

	dcr := &crcReader{r: br}
	entries, err := parseDirV3(dcr, h.segCount, backend)
	if err != nil {
		return err
	}
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return fmt.Errorf("core: reading v3 directory checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != dcr.crc {
		return fmt.Errorf("core: v3 directory checksum mismatch (file %08x, computed %08x)", got, dcr.crc)
	}
	// Generic geometry: the whole directory is validated before any
	// arena is read.
	off := h.arenaOff
	for k, e := range entries {
		if e.words != uint64(e.rowWords)*uint64(e.buckets) {
			return fmt.Errorf("core: v3 segment %d arena words %d, geometry says %d×%d", k, e.words, e.buckets, e.rowWords)
		}
		if e.off != off {
			return fmt.Errorf("core: v3 segment %d arena offset %d, want %d", k, e.off, off)
		}
		off = v3AlignUp(e.off + e.words*8)
	}
	if off != h.fileSize {
		return fmt.Errorf("core: v3 arenas end at %d, header file size is %d", off, h.fileSize)
	}
	consumed += uint64(h.segCount*v3DirEntrySize) + 4
	if err := skipZeroPadding(br, h.arenaOff-consumed); err != nil {
		return err
	}
	consumed = h.arenaOff

	for k, e := range entries {
		words, crc, err := readWordsLE(br, e.words)
		if err != nil {
			return fmt.Errorf("core: reading v3 segment %d arena: %w", k, err)
		}
		if crc != e.crc {
			return fmt.Errorf("core: v3 segment %d arena checksum mismatch (file %08x, computed %08x)", k, e.crc, crc)
		}
		consumed += e.words * 8
		if err := skipZeroPadding(br, v3AlignUp(consumed)-consumed); err != nil {
			return err
		}
		consumed = v3AlignUp(consumed)
		if err := onSeg(k, ContainerSegment{Words: words, RowWords: e.rowWords, Buckets: e.buckets}); err != nil {
			return err
		}
	}
	if consumed != h.fileSize {
		return fmt.Errorf("core: v3 layout ends at %d, header file size is %d", consumed, h.fileSize)
	}
	return expectEOF(br)
}
