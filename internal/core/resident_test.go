package core

import (
	"testing"

	"repro/internal/mmapfile"
)

// TestResidentBytesHeap pins the heap-tier fallback: without a
// mapping, the resident gauge is the heap footprint itself.
func TestResidentBytesHeap(t *testing.T) {
	lib, _ := buildExactLib(t, 2000, 411)
	if got, want := lib.ResidentBytes(), lib.MemoryFootprint(); got != want {
		t.Fatalf("heap resident %d != footprint %d", got, want)
	}
}

// TestResidentBytesMapped pins the mmap tier: after lookups touch the
// arena, the mincore-backed count is positive and never exceeds the
// mapped length (plus falls back to the mapped length where mincore
// is unavailable).
func TestResidentBytesMapped(t *testing.T) {
	lib, ref := buildExactLib(t, 2000, 412)
	path := writeV3File(t, lib)
	mapped := openLib(t, path, MapArena)
	defer mapped.Close()
	if !mapped.Mapped() {
		if !mmapfile.Supported() || !mmapfile.HostLittleEndian() {
			t.Skip("platform cannot map; heap fallback covered elsewhere")
		}
		t.Fatal("MapArena fell back to heap on a supported platform")
	}
	// Fault the arena in by answering a real query.
	w := mapped.Params().Window
	if _, _, err := mapped.Lookup(ref.Slice(100, 100+w)); err != nil {
		t.Fatal(err)
	}
	got := mapped.ResidentBytes()
	if got <= 0 {
		t.Fatalf("mapped resident bytes %d, want > 0", got)
	}
	if mb := mapped.MappedBytes(); got > mb {
		t.Fatalf("resident %d exceeds mapped %d", got, mb)
	}
}
