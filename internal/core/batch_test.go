package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/genome"
	"repro/internal/rng"
)

func TestLookupBatchMatchesSequential(t *testing.T) {
	lib, ref := buildExactLib(t, 3000, 61)
	src := rng.New(62)
	patterns := make([]*genome.Sequence, 20)
	for i := range patterns {
		if i%2 == 0 {
			off := src.Intn(ref.Len() - 32)
			patterns[i] = ref.Slice(off, off+32)
		} else {
			patterns[i] = genome.Random(32, src)
		}
	}
	results, agg, err := lib.LookupBatch(patterns, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(patterns) {
		t.Fatalf("%d results", len(results))
	}
	var wantAgg Stats
	for i, p := range patterns {
		want, st, err := lib.Lookup(p)
		if err != nil {
			t.Fatal(err)
		}
		wantAgg.add(st)
		if results[i].Err != nil {
			t.Fatalf("query %d errored: %v", i, results[i].Err)
		}
		if len(results[i].Matches) != len(want) {
			t.Fatalf("query %d: %d matches vs %d sequential", i, len(results[i].Matches), len(want))
		}
		for j := range want {
			if results[i].Matches[j] != want[j] {
				t.Fatalf("query %d match %d differs", i, j)
			}
		}
	}
	if agg != wantAgg {
		t.Fatalf("aggregate stats %+v != %+v", agg, wantAgg)
	}
}

func TestLookupBatchWorkerCounts(t *testing.T) {
	lib, ref := buildExactLib(t, 1000, 63)
	patterns := []*genome.Sequence{ref.Slice(0, 32), ref.Slice(100, 132)}
	for _, workers := range []int{0, 1, 2, 16} {
		results, _, err := lib.LookupBatch(patterns, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != 2 {
			t.Fatalf("workers=%d: %d results", workers, len(results))
		}
	}
}

func TestLookupBatchPropagatesQueryErrors(t *testing.T) {
	lib, ref := buildExactLib(t, 1000, 64)
	results, _, err := lib.LookupBatch([]*genome.Sequence{
		ref.Slice(0, 32),
		genome.Random(5, rng.New(65)), // too short
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatal("valid query errored")
	}
	if results[1].Err == nil {
		t.Fatal("short query did not error")
	}
}

func TestLookupBatchContextPreCanceled(t *testing.T) {
	lib, ref := buildExactLib(t, 2000, 71)
	patterns := []*genome.Sequence{ref.Slice(0, 32), ref.Slice(40, 72)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := lib.Counters()
	results, agg, err := lib.LookupBatchContext(ctx, patterns, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(results) != len(patterns) {
		t.Fatalf("%d results", len(results))
	}
	for i, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("result %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
	if agg != (Stats{}) {
		t.Fatalf("canceled batch reported work: %+v", agg)
	}
	after := lib.Counters()
	if after.BucketProbes != before.BucketProbes {
		t.Fatalf("probe counter advanced on a pre-canceled batch: %d → %d",
			before.BucketProbes, after.BucketProbes)
	}
	if after.BatchCancellations != before.BatchCancellations+1 {
		t.Fatalf("cancellation counter %d → %d, want +1",
			before.BatchCancellations, after.BatchCancellations)
	}
}

func TestLookupBatchContextCancelMidBatch(t *testing.T) {
	// A dense library (capacity 4 → hundreds of buckets per probe)
	// keeps individual lookups slow enough that a cancel fired right
	// after the first probe lands mid-batch. The outer loop retries
	// the rare scheduling fluke where the whole batch still finishes
	// before the cancel is observed.
	src := rng.New(72)
	ref := genome.Random(3000, src)
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Capacity: 4, Seed: 73})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	const n = 1024
	patterns := make([]*genome.Sequence, n)
	for i := range patterns {
		off := (i * 37) % (ref.Len() - 32)
		patterns[i] = ref.Slice(off, off+32)
	}
	// Measure what the full batch costs, then rerun it with a context
	// canceled as soon as the probe counter first advances.
	_, fullAgg, err := lib.LookupBatch(patterns, 2)
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; ; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		start := lib.Counters().BucketProbes
		go func() {
			for lib.Counters().BucketProbes == start {
				time.Sleep(20 * time.Microsecond)
			}
			cancel()
		}()
		before := lib.Counters()
		results, agg, err := lib.LookupBatchContext(ctx, patterns, 2)
		cancel()
		if !errors.Is(err, context.Canceled) || countCanceled(results) == 0 {
			if attempt < 5 {
				continue // batch outran the cancel; try again
			}
			t.Fatalf("batch of %d finished before cancel on every attempt (err=%v)", n, err)
		}
		delta := lib.Counters().BucketProbes - before.BucketProbes
		if delta >= int64(fullAgg.BucketProbes) {
			t.Fatalf("canceled batch probed as much as a full batch (%d probes)", delta)
		}
		done := 0
		var wantAgg Stats
		for i, r := range results {
			switch {
			case r.Err == nil:
				done++
				wantAgg.add(r.Stats)
			case errors.Is(r.Err, context.Canceled):
			default:
				t.Fatalf("result %d: unexpected error %v", i, r.Err)
			}
		}
		if done == 0 {
			t.Fatal("no pattern completed before the cancel")
		}
		if agg != wantAgg {
			t.Fatalf("aggregate %+v != sum of completed results %+v", agg, wantAgg)
		}
		return
	}
}

func countCanceled(results []BatchResult) int {
	n := 0
	for _, r := range results {
		if errors.Is(r.Err, context.Canceled) {
			n++
		}
	}
	return n
}

func TestLookupBatchRequiresFreeze(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 66})
	if _, _, err := lib.LookupBatch(nil, 2); err == nil {
		t.Fatal("unfrozen batch accepted")
	}
}

func TestLookupBothStrands(t *testing.T) {
	src := rng.New(67)
	motif := genome.Random(32, src)
	ref := genome.Random(400, src).
		Append(motif).
		Append(genome.Random(400, src)).
		Append(motif.ReverseComplement()).
		Append(genome.Random(400, src))
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: 68})
	if err := lib.Add(genome.Record{ID: "r", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	matches, _, err := lib.LookupBothStrands(motif)
	if err != nil {
		t.Fatal(err)
	}
	var fwd, rev bool
	for _, m := range matches {
		if m.Off == 400 && m.Strand == Forward {
			fwd = true
		}
		if m.Off == 832 && m.Strand == Reverse {
			rev = true
		}
	}
	if !fwd || !rev {
		t.Fatalf("strand matches missing (fwd=%v rev=%v): %+v", fwd, rev, matches)
	}
}

func TestStrandString(t *testing.T) {
	if Forward.String() != "+" || Reverse.String() != "-" {
		t.Fatal("strand names wrong")
	}
}

func TestRemoveFromUnsealedLibrary(t *testing.T) {
	src := rng.New(69)
	refs := []*genome.Sequence{genome.Random(600, src), genome.Random(600, src)}
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Capacity: 16, Seed: 70})
	for i, r := range refs {
		if err := lib.Add(genome.Record{ID: string(rune('a' + i)), Seq: r}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	// Before removal both references are findable.
	for i, r := range refs {
		if ok, _, _ := lib.Contains(r.Slice(100, 132)); !ok {
			t.Fatalf("ref %d not findable before removal", i)
		}
	}
	windowsBefore := lib.NumWindows()
	if err := lib.Remove(0); err != nil {
		t.Fatal(err)
	}
	if lib.NumWindows() >= windowsBefore {
		t.Fatal("window count did not drop")
	}
	// Removed reference no longer matches; the other still does.
	if matches, _, _ := lib.Lookup(refs[0].Slice(100, 132)); len(matches) != 0 {
		t.Fatalf("removed reference still matches: %+v", matches)
	}
	if ok, _, _ := lib.Contains(refs[1].Slice(100, 132)); !ok {
		t.Fatal("surviving reference lost")
	}
	// Tombstone semantics.
	if lib.Ref(0).Seq != nil {
		t.Fatal("tombstone retains sequence")
	}
	if err := lib.Remove(0); err == nil {
		t.Fatal("double removal accepted")
	}
}

func TestRemoveOnSealedLibrary(t *testing.T) {
	// Sealed libraries drop their counters at Freeze and cannot subtract;
	// the tombstone path makes Remove work anyway: the windows stay
	// superposed (noise) but can never verify, so the reference is gone
	// from every result.
	src := rng.New(71)
	refs := []*genome.Sequence{genome.Random(500, src), genome.Random(500, src)}
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: 71})
	for i, r := range refs {
		if err := lib.Add(genome.Record{ID: string(rune('a' + i)), Seq: r}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	windowsBefore := lib.NumWindows()
	if err := lib.Remove(0); err != nil {
		t.Fatalf("sealed removal rejected: %v", err)
	}
	if lib.NumWindows() >= windowsBefore {
		t.Fatal("live window count did not drop")
	}
	if lib.TombstoneRatio() <= 0 {
		t.Fatal("tombstone ratio not tracked")
	}
	if matches, _, _ := lib.Lookup(refs[0].Slice(100, 132)); len(matches) != 0 {
		t.Fatalf("removed reference still matches: %+v", matches)
	}
	if ok, _, _ := lib.Contains(refs[1].Slice(100, 132)); !ok {
		t.Fatal("surviving reference lost")
	}
	// Compaction rewrites the tombstoned segment and clears the ratio.
	n, err := lib.Compact(0)
	if err != nil || n == 0 {
		t.Fatalf("Compact = (%d, %v), want rewrites", n, err)
	}
	if lib.TombstoneRatio() != 0 {
		t.Fatalf("tombstone ratio %v after Compact", lib.TombstoneRatio())
	}
	if got := lib.Counters().Compactions; got != int64(n) {
		t.Fatalf("Compactions counter %d, want %d", got, n)
	}
	if ok, _, _ := lib.Contains(refs[1].Slice(100, 132)); !ok {
		t.Fatal("surviving reference lost after Compact")
	}
}

func TestRemoveValidation(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 72})
	if err := lib.Remove(0); err == nil {
		t.Fatal("unfrozen removal accepted")
	}
	if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(100, rng.New(73))}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	if err := lib.Remove(5); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
}

func TestRemoveThenCompactIsClean(t *testing.T) {
	// After removing ref 0 and compacting, the library must behave
	// exactly like one built from ref 1 alone: compaction re-encodes the
	// live windows, so ref 0's superposition contribution is fully gone.
	src := rng.New(74)
	r0, r1 := genome.Random(300, src), genome.Random(300, src)
	// One shared bucket (capacity ≫ windows); D sized so the ~540-window
	// occupancy stays separable in unsealed mode.
	both := mustLibrary(t, Params{Dim: 8192, Window: 32, Capacity: 1 << 20, Seed: 75})
	if err := both.Add(genome.Record{ID: "r0", Seq: r0}); err != nil {
		t.Fatal(err)
	}
	if err := both.Add(genome.Record{ID: "r1", Seq: r1}); err != nil {
		t.Fatal(err)
	}
	both.Freeze()
	if err := both.Remove(0); err != nil {
		t.Fatal(err)
	}
	// Pre-compaction, the tombstoned windows are noise but r1 must still
	// verify (the decision threshold accounts for full occupancy).
	q := r1.Slice(50, 82)
	if _, err := both.Compact(0); err != nil {
		t.Fatal(err)
	}
	// Every counter now equals the contribution of r1's windows alone.
	m, _, err := both.Lookup(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, match := range m {
		if match.Ref == 1 && match.Off == 50 {
			found = true
		}
	}
	if !found {
		t.Fatalf("r1 window lost after remove+compact: %+v", m)
	}
	// The compacted library scores r1's windows exactly like a fresh
	// library built from r1 alone with the same seed: same counters,
	// modulo bucket packing. Compare probe scores for the same query.
	solo := mustLibrary(t, Params{Dim: 8192, Window: 32, Capacity: 1 << 20, Seed: 75})
	if err := solo.Add(genome.Record{ID: "r1", Seq: r1}); err != nil {
		t.Fatal(err)
	}
	solo.Freeze()
	hv := both.Encoder().EncodeWindowExact(q, 0)
	cb, err := both.Probe(hv, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := solo.Probe(hv, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cb) != 1 || len(cs) != 1 || cb[0].Score != cs[0].Score {
		t.Fatalf("compacted scores diverge from fresh build: %+v vs %+v", cb, cs)
	}
}

func TestClassifyBothStrands(t *testing.T) {
	src := rng.New(76)
	refs := []*genome.Sequence{genome.Random(2000, src), genome.Random(2000, src)}
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Sealed: true, Seed: 77})
	for i, r := range refs {
		if err := lib.Add(genome.Record{ID: string(rune('a' + i)), Seq: r}); err != nil {
			t.Fatal(err)
		}
	}
	lib.Freeze()
	// A forward read from ref 1.
	fwd := refs[1].Slice(500, 820)
	best, strand, _, err := lib.ClassifyBothStrands(fwd, 0.5)
	if err != nil || best.Ref != 1 || strand != Forward {
		t.Fatalf("forward read: ref=%d strand=%v err=%v", best.Ref, strand, err)
	}
	// The same read delivered reverse-complemented.
	rc := fwd.ReverseComplement()
	best, strand, _, err = lib.ClassifyBothStrands(rc, 0.5)
	if err != nil || best.Ref != 1 || strand != Reverse {
		t.Fatalf("reverse read: ref=%d strand=%v err=%v", best.Ref, strand, err)
	}
	if best.Offset != 500 {
		t.Fatalf("reverse read offset %d, want 500", best.Offset)
	}
	// Unrelated read fails on both strands.
	if _, _, _, err := lib.ClassifyBothStrands(genome.Random(320, src), 0.5); err == nil {
		t.Fatal("unrelated read classified")
	}
}
