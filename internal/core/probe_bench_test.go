package core

import (
	"fmt"
	"testing"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// benchLib builds a frozen sealed approximate library with the given
// bucket count: the default probe-benchmark geometry (D=8192, w=32,
// capacity 16, the dimensionality the rest of the suite tests at). One
// reference supplies capacity·nBuckets windows.
func benchLib(tb testing.TB, nBuckets int) (*Library, []*hdc.HV) {
	tb.Helper()
	const capacity = 16
	p := Params{Dim: 8192, Window: 32, Stride: 1, Capacity: capacity,
		Approx: true, Sealed: true, MutTolerance: 2, Seed: 42}
	lib, err := NewLibrary(p)
	if err != nil {
		tb.Fatal(err)
	}
	src := rng.New(4242)
	ref := genome.Random(nBuckets*capacity+p.Window-1, src)
	if err := lib.Add(genome.Record{ID: "bench", Seq: ref}); err != nil {
		tb.Fatal(err)
	}
	lib.Freeze()
	if lib.NumBuckets() != nBuckets {
		tb.Fatalf("built %d buckets, want %d", lib.NumBuckets(), nBuckets)
	}
	// Query mix, 3:1 absent to present — most probes miss everywhere,
	// some light up a bucket, like a read-mapping workload.
	var queries []*hdc.HV
	for i := 0; i < 12; i++ {
		var q *genome.Sequence
		if i%4 == 0 {
			off := src.Intn(ref.Len() - p.Window)
			q = ref.Slice(off, off+p.Window)
		} else {
			q = genome.Random(p.Window, src)
		}
		queries = append(queries, lib.Encoder().EncodeWindowApprox(q, 0))
	}
	return lib, queries
}

// seedProbeBaseline reproduces the seed implementation of Probe
// operation for operation: a serial scan over individually
// heap-allocated per-bucket hypervectors, one HV.Dot per bucket,
// per-iteration stats branches, and an un-presized append. It is the
// baseline BenchmarkProbe's speedup is measured against.
func seedProbeBaseline(l *Library, scattered []*hdc.HV, hv *hdc.HV, stats *Stats) []Candidate {
	tau := l.Threshold()
	var out []Candidate
	for i := range scattered {
		score := float64(scattered[i].Dot(hv))
		if stats != nil {
			stats.BucketProbes++
		}
		if score >= tau {
			out = append(out, Candidate{Bucket: i, Score: score, Excess: score - tau})
			if stats != nil {
				stats.CandidateBuckets++
			}
		}
	}
	return out
}

// scatterBuckets reproduces the seed's freeze-time heap layout. In the
// seed, bucket i's sealed vector was allocated by Acc.Seal at the
// moment bucket i+1 opened — i.e. interleaved with the next bucket's
// live 4·D-byte counter accumulator and window slice — so consecutive
// sealed rows landed pages apart, not back-to-back. The baseline
// clones with the same interleaving (the accumulators are released
// after the build, exactly as sealing released them, but Go's
// non-moving collector leaves the rows where they were born).
func scatterBuckets(l *Library) []*hdc.HV {
	n := l.NumBuckets()
	d := l.Params().Dim
	out := make([]*hdc.HV, n)
	accs := make([][]int32, n)
	for i := range out {
		out[i] = l.BucketVector(i).Clone()
		accs[i] = make([]int32, d)
	}
	for i := range accs {
		accs[i] = nil
	}
	return out
}

var benchSizes = []int{1024, 4096, 16384}

// defaultBenchBuckets is the library size the BENCH_probe.json
// trajectory tracks (see cmd/benchprobe): 1024 buckets — one PIM
// crossbar array of rows in the paper's geometry.
const defaultBenchBuckets = 1024

func BenchmarkProbe(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("buckets=%d", n), func(b *testing.B) {
			lib, queries := benchLib(b, n)
			var stats Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := lib.Probe(queries[i%len(queries)], &stats); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/bucket")
		})
	}
}

func BenchmarkProbeSeedScalar(b *testing.B) {
	for _, n := range benchSizes {
		b.Run(fmt.Sprintf("buckets=%d", n), func(b *testing.B) {
			lib, queries := benchLib(b, n)
			scattered := scatterBuckets(lib)
			var stats Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seedProbeBaseline(lib, scattered, queries[i%len(queries)], &stats)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/bucket")
		})
	}
}

func BenchmarkLookup(b *testing.B) {
	lib, _ := benchLib(b, defaultBenchBuckets)
	src := rng.New(7)
	pat := genome.Random(lib.Params().Window, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lib.Lookup(pat); err != nil {
			b.Fatal(err)
		}
	}
}
