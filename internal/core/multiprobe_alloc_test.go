package core

import (
	"fmt"
	"testing"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// buildSegmentedProbeLib builds a frozen sealed library split across
// exactly segs segments: one from the initial Freeze, the rest sealed
// one per post-freeze Add. Each reference is short enough that every
// segment stays well under probeShardMin buckets, pinning the serial
// (allocation-free) scan path.
func buildSegmentedProbeLib(tb testing.TB, segs int, seed uint64) (*Library, []*genome.Sequence) {
	tb.Helper()
	lib, err := NewLibrary(Params{Dim: 2048, Window: 24, Sealed: true, Seed: seed})
	if err != nil {
		tb.Fatal(err)
	}
	src := rng.New(seed ^ 0xfeed)
	var refs []*genome.Sequence
	add := func(i int) {
		ref := genome.Random(600, src)
		refs = append(refs, ref)
		if err := lib.Add(genome.Record{ID: fmt.Sprintf("ref%d", i), Seq: ref}); err != nil {
			tb.Fatal(err)
		}
	}
	add(0)
	lib.Freeze()
	lib.SetSealThreshold(1)
	for i := 1; i < segs; i++ {
		add(i)
	}
	if got := lib.NumSegments(); got != segs {
		tb.Fatalf("NumSegments = %d, want %d", got, segs)
	}
	return lib, refs
}

// segmentedQueries builds a block-spanning query mix: member windows
// (hits) interleaved with random windows (misses).
func segmentedQueries(lib *Library, refs []*genome.Sequence, seed uint64) []*hdc.HV {
	src := rng.New(seed)
	w := lib.Params().Window
	n := probeBlock*2 + 3 // spans three blocks, one partial
	hvs := make([]*hdc.HV, 0, n)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			ref := refs[i%len(refs)]
			off := src.Intn(ref.Len() - w)
			hvs = append(hvs, lib.Encoder().EncodeWindowExact(ref.Slice(off, off+w), 0))
		} else {
			hvs = append(hvs, lib.Encoder().EncodeWindowExact(genome.Random(w, src), 0))
		}
	}
	return hvs
}

// TestProbeMultiSegmentedAllocs gates the blocked multi-query scan's
// steady-state allocations across segment counts: the kernel path with
// a reused result spine must not allocate at all, and ProbeMulti itself
// must allocate nothing beyond the caller-owned spine on an all-miss
// batch.
func TestProbeMultiSegmentedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs sync.Pool allocation counts")
	}
	for _, segs := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("segments=%d", segs), func(t *testing.T) {
			lib, refs := buildSegmentedProbeLib(t, segs, 7000+uint64(segs))
			hvs := segmentedQueries(lib, refs, 7100+uint64(segs))
			sn := lib.snap.Load()

			// Kernel path: reuse the spine, truncate between runs. After
			// the warm-up run every dst has its high-water capacity, so
			// even the hit queries stop allocating.
			dsts := make([][]Candidate, len(hvs))
			sc := lib.getBlockScratch()
			defer lib.putBlockScratch(sc)
			scan := func() {
				for i := range dsts {
					dsts[i] = dsts[i][:0]
				}
				for base := 0; base < len(hvs); base += probeBlock {
					hi := minInt(base+probeBlock, len(hvs))
					lib.probeBlockInto(sn, dsts[base:hi], hvs[base:hi], sc)
				}
			}
			scan() // establish capacities
			if avg := testing.AllocsPerRun(20, scan); avg > 0 {
				t.Errorf("probeBlockInto with reused spine allocates %.1f times per op, want 0", avg)
			}
			hits := 0
			for i := range dsts {
				hits += len(dsts[i])
			}
			if hits == 0 {
				t.Fatal("query mix produced no candidates; the gate would be vacuous")
			}

			// API path on an all-miss batch: the result spine is the only
			// allocation.
			miss := make([]*hdc.HV, probeBlock+2)
			src := rng.New(7200 + uint64(segs))
			for i := range miss {
				miss[i] = lib.Encoder().EncodeWindowExact(genome.Random(lib.Params().Window, src), 0)
			}
			if _, err := lib.ProbeMulti(miss, nil); err != nil {
				t.Fatal(err)
			}
			if avg := testing.AllocsPerRun(20, func() {
				if _, err := lib.ProbeMulti(miss, nil); err != nil {
					t.Fatal(err)
				}
			}); avg > 1 {
				t.Errorf("all-miss ProbeMulti allocates %.1f times per op, want ≤ 1 (the spine)", avg)
			}
		})
	}
}

// BenchmarkProbeMultiSegmented measures the blocked multi-query scan
// against segmented snapshots; allocs/op is the regression headline.
func BenchmarkProbeMultiSegmented(b *testing.B) {
	for _, segs := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("segments=%d", segs), func(b *testing.B) {
			lib, refs := buildSegmentedProbeLib(b, segs, 7300+uint64(segs))
			hvs := segmentedQueries(lib, refs, 7400+uint64(segs))
			sn := lib.snap.Load()
			dsts := make([][]Candidate, len(hvs))
			sc := lib.getBlockScratch()
			defer lib.putBlockScratch(sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := range dsts {
					dsts[j] = dsts[j][:0]
				}
				for base := 0; base < len(hvs); base += probeBlock {
					hi := minInt(base+probeBlock, len(hvs))
					lib.probeBlockInto(sn, dsts[base:hi], hvs[base:hi], sc)
				}
			}
		})
	}
}
