package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"repro/internal/mmapfile"
)

// The v3 container carries a backend tag so one file format serves
// every index backend: the tag appears in the header's trailing word
// (bytes [60,64), outside the header CRC — a dispatch hint) and,
// authoritatively, as the CRC-covered leading word of the meta section
// plus the reserved word of every CRC-protected directory entry. The
// meta copy exists whatever the segment count, so even an empty
// container has a protected tag. The HDC library is tag 0; alternate
// backends register a nonzero tag. A reader validates that the meta
// and directory tags match the backend it dispatched to, so a flipped
// header tag surfaces as a clean error, never a panic or a
// misinterpreted arena.
const backendTagHDC uint32 = 0

// backendEntry is one registered alternate backend.
type backendEntry struct {
	name string
	// load deserializes a v3 container whose 64-byte header (already
	// consumed from br, structurally unverified beyond the magic and
	// version) carries the entry's tag.
	load func(br *bufio.Reader, hdr []byte) (Index, error)
}

var (
	backendMu sync.RWMutex
	backends  = map[uint32]backendEntry{}
)

// RegisterBackend registers an alternate index backend for v3 files
// tagged with tag: ReadIndex and OpenLibraryFile dispatch matching
// files to load. Tag 0 and the name "hdc" belong to the built-in HDC
// library. Registration normally happens in a backend package's init;
// duplicate tags or names panic — they are wiring bugs, not runtime
// conditions.
func RegisterBackend(tag uint32, name string, load func(br *bufio.Reader, hdr []byte) (Index, error)) {
	backendMu.Lock()
	defer backendMu.Unlock()
	if tag == backendTagHDC || name == BackendHDC {
		panic("core: backend tag 0 / name \"hdc\" are reserved for the built-in library")
	}
	if name == "" || load == nil {
		panic("core: RegisterBackend requires a name and a loader")
	}
	if prev, ok := backends[tag]; ok {
		panic(fmt.Sprintf("core: backend tag %d already registered as %q", tag, prev.name))
	}
	for t, e := range backends {
		if e.name == name {
			panic(fmt.Sprintf("core: backend name %q already registered as tag %d", name, t))
		}
	}
	backends[tag] = backendEntry{name: name, load: load}
}

func lookupBackend(tag uint32) (backendEntry, bool) {
	backendMu.RLock()
	defer backendMu.RUnlock()
	e, ok := backends[tag]
	return e, ok
}

// BackendName names a v3 backend tag: "hdc" for 0, the registered name
// for known tags, and a descriptive placeholder otherwise.
func BackendName(tag uint32) string {
	if tag == backendTagHDC {
		return BackendHDC
	}
	if e, ok := lookupBackend(tag); ok {
		return e.name
	}
	return fmt.Sprintf("unknown(tag %d)", tag)
}

// RegisteredBackends lists the selectable backend names: the built-in
// "hdc" plus every registered alternate, for CLI flag validation and
// usage strings.
func RegisteredBackends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	tags := make([]uint32, 0, len(backends))
	for t := range backends {
		tags = append(tags, t)
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	out := []string{BackendHDC}
	for _, t := range tags {
		out = append(out, backends[t].name)
	}
	return out
}

// ReadIndex deserializes an index saved in any supported format,
// dispatching v3 containers on their backend tag: tag 0 loads the HDC
// library (exactly as ReadLibrary does), registered tags load through
// their backend, and unknown tags are rejected with an error — never a
// panic. v1/v2 streams are always HDC.
func ReadIndex(r io.Reader) (Index, error) {
	br := bufio.NewReader(r)
	var head [12]byte
	if _, err := io.ReadFull(br, head[:]); err != nil || string(head[:len(libMagic)]) != libMagic {
		return nil, fmt.Errorf("core: not a BioHD library file")
	}
	switch version := binary.LittleEndian.Uint32(head[len(libMagic):]); version {
	case 1, 2:
		return readLibraryV12(br, head[:], int(version))
	case libVersionMapped:
		hdr, err := readV3HeaderBytes(br, head[:])
		if err != nil {
			return nil, err
		}
		tag := binary.LittleEndian.Uint32(hdr[60:64])
		if tag == backendTagHDC {
			return readLibraryV3Hdr(br, hdr)
		}
		be, ok := lookupBackend(tag)
		if !ok {
			return nil, fmt.Errorf("core: v3 library uses unknown index backend tag %d", tag)
		}
		return be.load(br, hdr)
	default:
		return nil, fmt.Errorf("core: unsupported library version %d", version)
	}
}

// readV3HeaderBytes completes the fixed 64-byte v3 header given the
// already-consumed magic+version prefix.
func readV3HeaderBytes(br *bufio.Reader, head []byte) ([]byte, error) {
	hdr := make([]byte, v3HeaderSize)
	copy(hdr, head)
	if _, err := io.ReadFull(br, hdr[len(head):]); err != nil {
		return nil, fmt.Errorf("core: reading v3 header: %w", err)
	}
	return hdr, nil
}

// OpenLibraryFile loads an index file from disk, whatever its backend:
// v1/v2 streams and tag-0 v3 containers come back as the HDC library,
// backend-tagged v3 containers load through their registered backend.
// With MapArena the arenas of an HDC v3 file alias a read-only mapping
// — verify with Index.Mapped — and the caller must Close the index to
// unmap; alternate backends currently load onto the heap under either
// mode. Close is harmless (and still recommended) for heap-loaded
// indexes.
func OpenLibraryFile(path string, mode LoadMode) (Index, error) {
	if mode == MapArena && mmapfile.Supported() && mmapfile.HostLittleEndian() {
		lib, handled, err := openMappedV3(path)
		if handled {
			if err != nil {
				return nil, err
			}
			return lib, nil
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}
