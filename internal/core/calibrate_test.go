package core

import (
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

func buildApproxLib(t *testing.T, refLen int, seed uint64) *Library {
	t.Helper()
	ref := genome.Random(refLen, rng.New(seed))
	lib := mustLibrary(t, Params{
		Dim: 8192, Window: 48, Approx: true, Sealed: true,
		Capacity: 4, MutTolerance: 6, Seed: seed + 1,
	})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	return lib
}

func TestCalibrationPresent(t *testing.T) {
	lib := buildApproxLib(t, 2000, 1)
	cal, ok := lib.Calibration()
	if !ok {
		t.Fatal("approx library has no calibration after Freeze")
	}
	if cal.Samples != calibrationProbes {
		t.Fatalf("samples = %d", cal.Samples)
	}
	// Signal must sit well above noise, the threshold between them.
	if cal.SignalMean <= cal.NoiseMean {
		t.Fatalf("signal %v not above noise %v", cal.SignalMean, cal.NoiseMean)
	}
	if cal.Tau <= cal.NoiseMean || cal.Tau >= cal.SignalMean {
		t.Fatalf("tau %v not between noise %v and signal %v",
			cal.Tau, cal.NoiseMean, cal.SignalMean)
	}
	if lib.Threshold() != cal.Tau {
		t.Fatal("Threshold() does not return calibrated tau")
	}
}

func TestCalibrationAbsentForExact(t *testing.T) {
	lib, _ := buildExactLib(t, 1000, 2)
	if _, ok := lib.Calibration(); ok {
		t.Fatal("exact library reports calibration")
	}
}

func TestCalibrationAbsentBeforeFreeze(t *testing.T) {
	lib := mustLibrary(t, Params{
		Dim: 1024, Window: 16, Approx: true, Sealed: true, Capacity: 4, Seed: 3,
	})
	if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(100, rng.New(4))}); err != nil {
		t.Fatal(err)
	}
	if _, ok := lib.Calibration(); ok {
		t.Fatal("unfrozen library reports calibration")
	}
}

func TestCalibrationDeterministic(t *testing.T) {
	a := buildApproxLib(t, 1500, 5)
	b := buildApproxLib(t, 1500, 5)
	ca, _ := a.Calibration()
	cb, _ := b.Calibration()
	if ca != cb {
		t.Fatalf("calibrations differ for identical builds:\n%+v\n%+v", ca, cb)
	}
}

func TestCalibratedRecallAtTolerance(t *testing.T) {
	// Statistical acceptance: at a geometry where the model deems both
	// error targets satisfiable (C=2, D=8192), the library must find
	// ≥ 95% of 6-substitution queries.
	ref := genome.Random(3000, rng.New(6))
	lib := mustLibrary(t, Params{
		Dim: 8192, Window: 48, Approx: true, Sealed: true,
		Capacity: 2, MutTolerance: 6, Seed: 7,
	})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	src := rng.New(8)
	found, trials := 0, 60
	for i := 0; i < trials; i++ {
		off := src.Intn(ref.Len() - 48)
		mut, _ := genome.SubstituteExactly(ref.Slice(off, off+48), 6, src)
		matches, _, err := lib.Lookup(mut)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range matches {
			if m.Off == off {
				found++
				break
			}
		}
	}
	if frac := float64(found) / float64(trials); frac < 0.95 {
		t.Fatalf("recall at tolerance = %v (%d/%d)", frac, found, trials)
	}
}

func TestFreezeEmptyLibraryStaysUnfrozen(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Approx: true, Sealed: true, Capacity: 2, Seed: 9})
	lib.Freeze()
	if lib.Frozen() {
		t.Fatal("empty library froze")
	}
}
