package core

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"repro/internal/genome"
	"repro/internal/hdc"
	"repro/internal/rng"
)

// seedLookupLong replicates the pre-blocking LookupLong — one Lookup
// per non-overlapping window, diagonal voting over the matches — as the
// golden reference the query-blocked implementation must match result-
// for-result and stat-for-stat.
func seedLookupLong(l *Library, query *genome.Sequence, minFrac float64) ([]RefMatch, Stats, error) {
	var stats Stats
	w := l.params.Window
	if query == nil || query.Len() < w {
		return nil, stats, fmt.Errorf("core: query shorter than window %d", w)
	}
	type diag struct {
		ref  int
		diff int
	}
	votes := map[diag]int{}
	nWindows := 0
	for qOff := 0; qOff+w <= query.Len(); qOff += w {
		window := query.Slice(qOff, qOff+w)
		matches, s, err := l.Lookup(window)
		stats.add(s)
		if err != nil {
			return nil, stats, err
		}
		nWindows++
		seen := map[diag]bool{}
		for _, m := range matches {
			d := diag{ref: m.Ref, diff: m.Off - (qOff + m.QueryOff)}
			if !seen[d] {
				seen[d] = true
				votes[d]++
			}
		}
	}
	best := map[int]diag{}
	for d, v := range votes {
		cur, ok := best[d.ref]
		switch {
		case !ok || v > votes[cur]:
			best[d.ref] = d
		case v == votes[cur] && d.diff < cur.diff:
			best[d.ref] = d
		}
	}
	var out []RefMatch
	for ref, d := range best {
		v := votes[d]
		frac := float64(v) / float64(nWindows)
		if frac >= minFrac {
			out = append(out, RefMatch{
				Ref: ref, Votes: v, Windows: nWindows, Offset: d.diff, Fraction: frac,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Ref < out[j].Ref
	})
	return out, stats, nil
}

// TestProbeMultiGoldenEquivalence asserts ProbeMulti returns, per
// query, exactly what Q sequential Probe calls return — candidates,
// order, scores, excesses, and nil on a miss — across every storage ×
// encoding mode, with stats modeling the full Q × buckets scan.
func TestProbeMultiGoldenEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name           string
		sealed, approx bool
	}{
		{"sealed-exact", true, false},
		{"sealed-approx", true, true},
		{"raw-exact", false, false},
		{"raw-approx", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			lib, refs := buildProbeLib(t, tc.sealed, tc.approx, 2077)
			qs := probeQueries(t, lib, refs, 2099) // 36 queries → 4 full blocks + a partial
			var multiStats Stats
			got, err := lib.ProbeMulti(qs, &multiStats)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(qs) {
				t.Fatalf("%d result rows for %d queries", len(got), len(qs))
			}
			var wantStats Stats
			total := 0
			for i, hv := range qs {
				want, err := lib.Probe(hv, &wantStats)
				if err != nil {
					t.Fatal(err)
				}
				if want == nil && got[i] != nil {
					t.Fatalf("query %d: Probe missed but ProbeMulti returned %+v", i, got[i])
				}
				if !sameCandidates(got[i], want) {
					t.Fatalf("query %d: blocked probe diverges from sequential:\n got %+v\nwant %+v", i, got[i], want)
				}
				total += len(want)
			}
			if multiStats.BucketProbes != len(qs)*lib.NumBuckets() || multiStats.CandidateBuckets != total {
				t.Fatalf("stats %+v inconsistent with %d queries × %d buckets / %d candidates",
					multiStats, len(qs), lib.NumBuckets(), total)
			}
		})
	}
}

// TestProbeMultiShardedEquivalence forces the sharded [query block ×
// bucket shard] tiling on a small library and asserts the ordered
// merge is identical to the serial blocked scan and to sequential
// probes.
func TestProbeMultiShardedEquivalence(t *testing.T) {
	defer func(v int) { probeShardMin = v }(probeShardMin)
	for _, sealed := range []bool{true, false} {
		lib, refs := buildProbeLib(t, sealed, true, 2123)
		qs := probeQueries(t, lib, refs, 2321)
		probeShardMin = lib.NumBuckets() + 1 // serial
		serial, err := lib.ProbeMulti(qs, nil)
		if err != nil {
			t.Fatal(err)
		}
		probeShardMin = 1 // one bucket per worker: maximal sharding
		sharded, err := lib.ProbeMulti(qs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range qs {
			if !sameCandidates(serial[i], sharded[i]) {
				t.Fatalf("sealed=%v query %d: sharded blocked probe diverges:\n got %+v\nwant %+v",
					sealed, i, sharded[i], serial[i])
			}
			want, err := lib.Probe(qs[i], nil)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCandidates(sharded[i], want) {
				t.Fatalf("sealed=%v query %d: sharded blocked probe diverges from Probe", sealed, i)
			}
		}
	}
}

// TestProbeMultiAfterRoundTrip asserts the blocked probe path over an
// arena rebuilt by ReadLibrary matches the freeze-time arena.
func TestProbeMultiAfterRoundTrip(t *testing.T) {
	lib, refs := buildProbeLib(t, true, true, 2007)
	back := saveLoad(t, lib)
	qs := probeQueries(t, lib, refs, 2008)
	want, err := lib.ProbeMulti(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.ProbeMulti(qs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !sameCandidates(got[i], want[i]) {
			t.Fatalf("query %d: loaded library blocked-probes differently:\n got %+v\nwant %+v",
				i, got[i], want[i])
		}
	}
}

func TestProbeMultiValidation(t *testing.T) {
	lib, refs := buildProbeLib(t, true, false, 2055)
	unfrozen := mustLibrary(t, Params{Dim: 2048, Window: 24, Sealed: true, Seed: 2056})
	if _, err := unfrozen.ProbeMulti(nil, nil); err == nil {
		t.Fatal("unfrozen ProbeMulti accepted")
	}
	if _, err := lib.ProbeMulti([]*hdc.HV{hdc.NewHV(1024)}, nil); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	out, err := lib.ProbeMulti(nil, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	_ = refs
}

// TestBlockedProbeCounters checks the blocked-path operational
// counters: one block per probeBlock-sized group of queries, one
// blocked window per query.
func TestBlockedProbeCounters(t *testing.T) {
	lib, refs := buildProbeLib(t, true, false, 2066)
	qs := probeQueries(t, lib, refs, 2067)[:probeBlock+2] // one full block + one partial
	before := lib.Counters()
	if _, err := lib.ProbeMulti(qs, nil); err != nil {
		t.Fatal(err)
	}
	after := lib.Counters()
	if got := after.BlockedProbes - before.BlockedProbes; got != 2 {
		t.Fatalf("BlockedProbes advanced by %d, want 2", got)
	}
	if got := after.BlockedWindows - before.BlockedWindows; got != int64(len(qs)) {
		t.Fatalf("BlockedWindows advanced by %d, want %d", got, len(qs))
	}
	if got := after.BucketProbes - before.BucketProbes; got != int64(len(qs)*lib.NumBuckets()) {
		t.Fatalf("BucketProbes advanced by %d, want %d", got, len(qs)*lib.NumBuckets())
	}
}

// TestLookupLongBlockedEquivalence pins the query-blocked LookupLong to
// the sequential per-window implementation: identical ranked
// references, stats, and errors, for reads that fill partial blocks,
// exact block multiples, mutated reads, misses, and invalid input.
func TestLookupLongBlockedEquivalence(t *testing.T) {
	for _, approx := range []bool{false, true} {
		lib, refs := buildProbeLib(t, true, approx, 3001)
		w := lib.Params().Window
		src := rng.New(3003)
		var reads []*genome.Sequence
		// Window counts straddling the block width: 1, probeBlock-1,
		// probeBlock, probeBlock+1, and a couple of blocks plus change.
		for _, nwin := range []int{1, probeBlock - 1, probeBlock, probeBlock + 1, 2*probeBlock + 3} {
			off := src.Intn(refs[0].Len() - nwin*w)
			reads = append(reads, refs[0].Slice(off, off+nwin*w))
		}
		// A read crossing two references' vote patterns: mutated copy.
		clean := refs[1].Slice(100, 100+6*w)
		mutated, _ := genome.SubstituteExactly(clean, 4, src)
		reads = append(reads, mutated)
		// A miss and a tail that is not a whole number of windows.
		reads = append(reads, genome.Random(5*w+w/2, src))
		reads = append(reads, refs[2].Slice(37, 37+3*w+w/3))
		for ri, read := range reads {
			want, wantStats, wantErr := seedLookupLong(lib, read, 0.3)
			got, gotStats, gotErr := lib.LookupLong(read, 0.3)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("approx=%v read %d: err %v vs sequential %v", approx, ri, gotErr, wantErr)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("approx=%v read %d: blocked LookupLong diverges:\n got %+v\nwant %+v",
					approx, ri, got, want)
			}
			if gotStats != wantStats {
				t.Fatalf("approx=%v read %d: stats %+v != sequential %+v", approx, ri, gotStats, wantStats)
			}
		}
		// Invalid input: identical error text, no partial work reported.
		short := genome.Random(w-1, src)
		_, _, wantErr := seedLookupLong(lib, short, 0.3)
		_, gotStats, gotErr := lib.LookupLong(short, 0.3)
		if gotErr == nil || gotErr.Error() != wantErr.Error() {
			t.Fatalf("short read error %q, want %q", gotErr, wantErr)
		}
		if gotStats != (Stats{}) {
			t.Fatalf("short read reported work: %+v", gotStats)
		}
	}
}

// TestLookupLongBlockedUnfrozen: the blocked path must reject an
// unfrozen library with the same error the sequential path surfaced
// from its first Lookup.
func TestLookupLongBlockedUnfrozen(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Sealed: true, Seed: 3010})
	if err := lib.Add(genome.Record{ID: "r", Seq: genome.Random(200, rng.New(3011))}); err != nil {
		t.Fatal(err)
	}
	// Not frozen.
	_, _, err := lib.LookupLong(genome.Random(64, rng.New(3012)), 0.5)
	if err == nil || err.Error() != "core: Lookup before Freeze" {
		t.Fatalf("unfrozen LookupLong error = %v", err)
	}
}

// TestLookupBatchBlockedMultiAlignment pins the wave-blocked batch path
// against sequential Lookup on a stride > 1 library, where patterns
// offer different alignment counts (so waves shrink as short patterns
// exhaust their alignments) and invalid patterns ride along mid-block.
func TestLookupBatchBlockedMultiAlignment(t *testing.T) {
	src := rng.New(3100)
	ref := genome.Random(4000, src)
	lib := mustLibrary(t, Params{Dim: 8192, Window: 32, Stride: 3, Sealed: true, Capacity: 16, Seed: 3101})
	if err := lib.Add(genome.Record{ID: "ref", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	var patterns []*genome.Sequence
	for i := 0; i < 21; i++ {
		switch i % 7 {
		case 3:
			patterns = append(patterns, nil) // invalid mid-block
		case 5:
			patterns = append(patterns, genome.Random(10, src)) // too short
		default:
			off := src.Intn(ref.Len() - 40)
			// Lengths 32..38 → 1..min(3, len-31) alignments.
			patterns = append(patterns, ref.Slice(off, off+32+i%7))
		}
	}
	for _, workers := range []int{1, 3} {
		results, agg, err := lib.LookupBatch(patterns, workers)
		if err != nil {
			t.Fatal(err)
		}
		var wantAgg Stats
		for i, p := range patterns {
			want, st, wantErr := lib.Lookup(p)
			wantAgg.add(st)
			r := results[i]
			if (wantErr == nil) != (r.Err == nil) {
				t.Fatalf("workers=%d pattern %d: err %v vs sequential %v", workers, i, r.Err, wantErr)
			}
			if wantErr != nil {
				if r.Err.Error() != wantErr.Error() {
					t.Fatalf("workers=%d pattern %d: err %q vs sequential %q", workers, i, r.Err, wantErr)
				}
				continue
			}
			if !reflect.DeepEqual(r.Matches, want) {
				t.Fatalf("workers=%d pattern %d: matches diverge:\n got %+v\nwant %+v",
					workers, i, r.Matches, want)
			}
			if r.Stats != st {
				t.Fatalf("workers=%d pattern %d: stats %+v != sequential %+v", workers, i, r.Stats, st)
			}
		}
		if agg != wantAgg {
			t.Fatalf("workers=%d: aggregate %+v != sequential %+v", workers, agg, wantAgg)
		}
	}
}

// TestLookupLongAllocs gates the blocked long-read path's steady-state
// allocations: with the block scratch plane warm, a read that matches
// nothing must not allocate at all.
func TestLookupLongAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation perturbs sync.Pool allocation counts")
	}
	lib, refs := buildProbeLib(t, true, false, 3200)
	w := lib.Params().Window
	miss := genome.Random((probeBlock+2)*w, rng.New(3201))
	hit := refs[0].Slice(0, (probeBlock+2)*w)
	// Warm the scratch pool (and confirm both paths work).
	if _, _, err := lib.LookupLong(miss, 0.5); err != nil {
		t.Fatal(err)
	}
	if m, _, err := lib.LookupLong(hit, 0.5); err != nil || len(m) == 0 {
		t.Fatalf("warmup hit: %d refs, err %v", len(m), err)
	}
	if avg := testing.AllocsPerRun(50, func() {
		if _, _, err := lib.LookupLong(miss, 0.5); err != nil {
			t.Fatal(err)
		}
	}); avg > 0 {
		t.Errorf("miss LookupLong allocates %.1f times per op, want 0", avg)
	}
	// A hit pays for the result slice and the per-window vote map
	// entries; budget a small constant so per-block or per-bucket
	// regressions trip the gate.
	if avg := testing.AllocsPerRun(50, func() {
		if _, _, err := lib.LookupLong(hit, 0.5); err != nil {
			t.Fatal(err)
		}
	}); avg > 8 {
		t.Errorf("hit LookupLong allocates %.1f times per op, want ≤ 8", avg)
	}
}
