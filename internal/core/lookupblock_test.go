package core

import (
	"reflect"
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

// TestLookupBlockEquivalence: a caller-assembled block returns, slot
// for slot, exactly what individual Lookup calls return — matches,
// stats, and errors — across hit, miss, and invalid patterns.
func TestLookupBlockEquivalence(t *testing.T) {
	lib, refs := buildSegmentedProbeLib(t, 3, 8100)
	src := rng.New(8101)
	w := lib.Params().Window
	pats := []*genome.Sequence{
		refs[0].Slice(10, 10+w),
		genome.Random(w, src),
		nil,
		refs[1].Slice(0, w),
		genome.Random(w-1, src), // too short
		refs[2].Slice(5, 5+2*w), // multi-alignment pattern
	}
	results := make([]BatchResult, len(pats))
	// Pre-poison the spine: LookupBlock must zero reused slots.
	for i := range results {
		results[i] = BatchResult{Matches: []Match{{Ref: 99}}, Stats: Stats{Alignments: 99}}
	}
	if err := lib.LookupBlock(pats, results); err != nil {
		t.Fatal(err)
	}
	for i, p := range pats {
		m, st, err := lib.Lookup(p)
		got := results[i]
		if (got.Err == nil) != (err == nil) || (err != nil && got.Err.Error() != err.Error()) {
			t.Errorf("slot %d: err %v, want %v", i, got.Err, err)
		}
		if got.Stats != st {
			t.Errorf("slot %d: stats %+v, want %+v", i, got.Stats, st)
		}
		if len(got.Matches) != len(m) || (len(m) > 0 && !reflect.DeepEqual(got.Matches, m)) {
			t.Errorf("slot %d: matches %v, want %v", i, got.Matches, m)
		}
	}
}

// TestLookupBlockValidation pins the contract errors.
func TestLookupBlockValidation(t *testing.T) {
	lib, refs := buildSegmentedProbeLib(t, 1, 8200)
	w := lib.Params().Window
	pats := make([]*genome.Sequence, BlockWidth+1)
	for i := range pats {
		pats[i] = refs[0].Slice(0, w)
	}
	if err := lib.LookupBlock(pats, make([]BatchResult, len(pats))); err == nil {
		t.Error("oversized block accepted")
	}
	if err := lib.LookupBlock(pats[:2], make([]BatchResult, 1)); err == nil {
		t.Error("short results slice accepted")
	}
	if err := lib.LookupBlock(nil, nil); err != nil {
		t.Errorf("empty block should be a no-op, got %v", err)
	}
	unfrozen, err := NewLibrary(Params{Dim: 1024, Window: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := unfrozen.LookupBlock(pats[:1], make([]BatchResult, 1)); err == nil {
		t.Error("unfrozen library accepted")
	}
}

// TestRankWindowsMatchesLookupLong: decomposing a read into
// non-overlapping windows, looking each up individually, and ranking
// with RankWindows reproduces LookupLong's output exactly.
func TestRankWindowsMatchesLookupLong(t *testing.T) {
	lib, refs := buildSegmentedProbeLib(t, 2, 8300)
	w := lib.Params().Window
	src := rng.New(8301)
	for _, minFrac := range []float64{0.1, 0.5, 0.9} {
		for trial := 0; trial < 4; trial++ {
			ref := refs[trial%len(refs)]
			start := src.Intn(ref.Len() - 5*w)
			read := ref.Slice(start, start+4*w+w/2) // partial last window is dropped by both paths
			want, _, err := lib.LookupLong(read, minFrac)
			if err != nil {
				t.Fatal(err)
			}
			var wins [][]Match
			var offs []int
			for base := 0; base+w <= read.Len(); base += w {
				m, _, err := lib.Lookup(read.Slice(base, base+w))
				if err != nil {
					t.Fatal(err)
				}
				wins = append(wins, m)
				offs = append(offs, base)
			}
			got := RankWindows(wins, offs, minFrac)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("minFrac %v trial %d: RankWindows %+v, want %+v", minFrac, trial, got, want)
			}
		}
	}
}

// TestRankWindowsEmpty: no windows, no matches — empty outcomes stay
// empty rather than fabricating support.
func TestRankWindowsEmpty(t *testing.T) {
	if out := RankWindows(nil, nil, 0.5); len(out) != 0 {
		t.Errorf("RankWindows(nil) = %v", out)
	}
	if out := RankWindows([][]Match{{}, {}}, []int{0, 24}, 0.5); len(out) != 0 {
		t.Errorf("RankWindows(no matches) = %v", out)
	}
}
