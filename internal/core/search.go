package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/genome"
	"repro/internal/hdc"
)

// Match is one verified occurrence of a query window in the references.
type Match struct {
	Ref      int // reference sequence index
	Off      int // offset of the matching window in the reference
	QueryOff int // offset of the aligned window within the query
	Distance int // substitution distance between query window and reference window
}

// Stats counts the work a search performed; experiment T2 compares these
// operation counts against the classical baselines, and the PIM mapper
// consumes them to derive in-memory latency and energy.
type Stats struct {
	Alignments       int // query window alignments encoded
	BucketProbes     int // query/bucket dot products (the PIM search kernel)
	CandidateBuckets int // buckets whose score crossed the threshold
	WindowsVerified  int // member windows checked during refinement
	BaseComparisons  int // nucleotide comparisons spent in verification
}

func (s *Stats) add(o Stats) {
	s.Alignments += o.Alignments
	s.BucketProbes += o.BucketProbes
	s.CandidateBuckets += o.CandidateBuckets
	s.WindowsVerified += o.WindowsVerified
	s.BaseComparisons += o.BaseComparisons
}

// Candidate is an unverified bucket hit: the HDC similarity stage's raw
// output, before sequence-level refinement.
type Candidate struct {
	Bucket int
	Score  float64
	Excess float64 // score minus the model threshold
}

// Threshold returns the operating decision threshold: the freeze-time
// calibrated threshold for approximate libraries, or the a-priori model
// threshold for exact libraries (where the model is itself exact).
func (l *Library) Threshold() float64 {
	if l.frozen && l.params.Approx {
		return l.cal.Tau
	}
	return l.Model().DecisionThreshold(
		l.params.Alpha, l.params.Beta, maxInt(len(l.bkts), 1), l.params.MutTolerance)
}

// probeBlock is the query-block width of the blocked probe paths: up
// to this many query windows share one streaming pass over the arena,
// so each row's memory traffic is amortized across the block.
const probeBlock = bitvec.MaxMultiQueries

// diagKey identifies one alignment diagonal: matches of a reference
// whose reference offset minus query offset agree all support the same
// placement of the query in that reference.
type diagKey struct {
	ref  int
	diff int
}

// probeShardMin is the minimum number of buckets each worker must have
// before the probe scan fans out across goroutines; below
// 2·probeShardMin buckets the scan stays serial (goroutine dispatch
// would cost more than the scan). A variable so tests can force the
// sharded path on small libraries.
var probeShardMin = 4096

// Probe scores an encoded query window against every bucket and returns
// the candidates above the model threshold. This is the pure HDC search
// stage — exactly the computation the PIM architecture executes in
// memory. The library must be frozen.
//
// Sealed libraries scan the flat arena with the fused XNOR-popcount
// kernel, converting the threshold τ into a maximum Hamming distance
// once per probe and abandoning each row as soon as that bound is
// exceeded; large libraries shard the scan across a bounded worker
// pool. Both transformations are exact: the candidates (order, scores,
// excesses) are identical to a serial full scan. Stats count the full
// scan — BucketProbes is the work the PIM hardware would do, not the
// words the software kernel happened to touch.
func (l *Library) Probe(hv *hdc.HV, stats *Stats) ([]Candidate, error) {
	if !l.frozen {
		return nil, fmt.Errorf("core: Probe before Freeze")
	}
	if hv.Dim() != l.params.Dim {
		return nil, fmt.Errorf("core: query dimension %d != library %d", hv.Dim(), l.params.Dim)
	}
	out := l.probeInto(make([]Candidate, 0, candidateHint), hv)
	if stats != nil {
		stats.BucketProbes += len(l.bkts)
		stats.CandidateBuckets += len(out)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// probeInto appends every bucket whose score reaches the threshold to
// dst and returns it. Callers must have validated frozenness and the
// query dimension.
func (l *Library) probeInto(dst []Candidate, hv *hdc.HV) []Candidate {
	l.ctr.bucketProbes.Add(int64(len(l.bkts)))
	tau := l.Threshold()
	// τ → Hamming bound: an integer dot passes score ≥ τ iff
	// dot ≥ ⌈τ⌉, and dot = D − 2·hamming, so a sealed row passes iff
	// hamming ≤ ⌊(D − ⌈τ⌉)/2⌋. A row whose partial distance already
	// exceeds that can never become a candidate. The arithmetic shift
	// is a floor division — Go's / truncates toward zero, which for a
	// negative numerator (τ > D) would admit distance 0.
	maxHam := (l.params.Dim - int(math.Ceil(tau))) >> 1
	n := len(l.bkts)
	workers := runtime.GOMAXPROCS(0)
	if w := n / probeShardMin; workers > w {
		workers = w
	}
	if workers <= 1 {
		return l.probeRange(dst, hv, tau, maxHam, 0, n)
	}
	// Sharded scan: contiguous bucket ranges, one per worker, merged in
	// shard order so the result is byte-identical to the serial scan.
	per := (n + workers - 1) / workers
	parts := make([][]Candidate, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * per
		hi := minInt(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			parts[s] = l.probeRange(nil, hv, tau, maxHam, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// ProbeMulti probes a batch of encoded query windows in blocks of up
// to probeBlock queries: each sealed arena row is streamed once per
// block and XNOR-popcounted against every query in it, amortizing the
// memory traffic that dominates a large scan. The result is exactly
// len(hvs) independent probes — out[i] is identical to what
// Probe(hvs[i], ...) returns (same candidates, order, scores, excesses,
// nil on a miss) — and stats count the same modeled work: every query
// scans every bucket, whatever the software kernel skipped.
func (l *Library) ProbeMulti(hvs []*hdc.HV, stats *Stats) ([][]Candidate, error) {
	if !l.frozen {
		return nil, fmt.Errorf("core: ProbeMulti before Freeze")
	}
	for _, hv := range hvs {
		if hv.Dim() != l.params.Dim {
			return nil, fmt.Errorf("core: query dimension %d != library %d", hv.Dim(), l.params.Dim)
		}
	}
	out := make([][]Candidate, len(hvs))
	sc := l.getBlockScratch()
	defer l.putBlockScratch(sc)
	total := 0
	for base := 0; base < len(hvs); base += probeBlock {
		hi := minInt(base+probeBlock, len(hvs))
		dsts := out[base:hi]
		for j := range dsts {
			dsts[j] = make([]Candidate, 0, candidateHint)
		}
		l.probeBlockInto(dsts, hvs[base:hi], sc)
		for j := range dsts {
			total += len(dsts[j])
			if len(dsts[j]) == 0 {
				dsts[j] = nil
			}
		}
	}
	if stats != nil {
		stats.BucketProbes += len(hvs) * len(l.bkts)
		stats.CandidateBuckets += total
	}
	return out, nil
}

// probeBlockInto fills dsts[j] with the candidates of hvs[j] for one
// block of at most probeBlock queries, appending to whatever each dst
// already holds. Candidate content and order are identical to calling
// probeInto once per query; the only difference is that each sealed
// arena row is read once per block instead of once per query. The
// bucket shards and their ordered merge mirror probeInto exactly, so
// the tiling is [query block × bucket shard]. Callers must have
// validated frozenness and query dimensions; sc supplies the kernel
// scratch (word views, bounds, distances).
func (l *Library) probeBlockInto(dsts [][]Candidate, hvs []*hdc.HV, sc *blockScratch) {
	nq := len(hvs)
	n := len(l.bkts)
	l.ctr.bucketProbes.Add(int64(nq) * int64(n))
	l.ctr.blockedProbes.Add(1)
	l.ctr.blockedWindows.Add(int64(nq))
	tau := l.Threshold()
	maxHam := (l.params.Dim - int(math.Ceil(tau))) >> 1
	workers := runtime.GOMAXPROCS(0)
	if w := n / probeShardMin; workers > w {
		workers = w
	}
	if workers <= 1 {
		l.probeBlockRange(dsts, hvs, sc.qs[:0], tau, maxHam, 0, n, sc.bounds, sc.dist)
		return
	}
	per := (n + workers - 1) / workers
	parts := make([][][]Candidate, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * per
		hi := minInt(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			part := make([][]Candidate, nq)
			l.probeBlockRange(part, hvs, nil, tau, maxHam, lo, hi, make([]int, nq), make([]int, nq))
			parts[s] = part
		}(s, lo, hi)
	}
	wg.Wait()
	for _, part := range parts {
		for j, p := range part {
			dsts[j] = append(dsts[j], p...)
		}
	}
}

// probeBlockRange scans buckets [lo, hi) against a whole query block,
// appending each query's candidates to dsts. Sealed libraries run the
// fused multi-query XNOR-popcount kernel — one pass over each arena
// row serves the block, with per-query early abandonment via the
// kernel's live mask; raw-count libraries — and single-query blocks,
// which the lighter sequential kernel serves faster than the fused
// pass — fall back to the per-query scan.
func (l *Library) probeBlockRange(dsts [][]Candidate, hvs []*hdc.HV, qs [][]uint64, tau float64, maxHam, lo, hi int, bounds, dist []int) {
	if l.params.Sealed && l.arena != nil && len(hvs) > 1 {
		d := l.params.Dim
		rw := l.rowWords
		qs = qs[:0]
		for j, hv := range hvs {
			w := hv.Words()
			if len(w) != rw {
				panic(fmt.Sprintf("core: query words %d != row words %d", len(w), rw))
			}
			qs = append(qs, w)
			bounds[j] = maxHam
		}
		arena := l.arena
		abandoned := int64(0)
		// One scanner per range hoists validation, the live-mask seed,
		// and the fused kernel's query pointer block out of the row loop.
		var ms bitvec.MultiScanner
		ms.Init(qs, bounds[:len(qs)], rw)
		for i := lo; i < hi; i++ {
			row := arena[i*rw : i*rw+rw : i*rw+rw]
			mask := ms.ScanRow(row, dist)
			for j := range qs {
				if mask&(1<<uint(j)) != 0 {
					score := float64(d - 2*dist[j])
					dsts[j] = append(dsts[j], Candidate{Bucket: i, Score: score, Excess: score - tau})
				} else {
					abandoned++
				}
			}
		}
		if abandoned > 0 {
			// One atomic publish per range, counting abandoned
			// (row, query) pairs — the same total Q sequential bounded
			// scans would report.
			l.ctr.earlyAbandons.Add(abandoned)
		}
		return
	}
	for j, hv := range hvs {
		dsts[j] = l.probeRange(dsts[j], hv, tau, maxHam, lo, hi)
	}
}

// probeRange scans buckets [lo, hi), appending candidates to dst.
// Sealed libraries run the early-abandoning fused XNOR-popcount kernel
// over consecutive arena rows (AVX2 on amd64); raw-count libraries
// keep the exact counter dot product.
func (l *Library) probeRange(dst []Candidate, hv *hdc.HV, tau float64, maxHam, lo, hi int) []Candidate {
	if l.params.Sealed && l.arena != nil {
		q := hv.Words()
		d := l.params.Dim
		rw := l.rowWords
		if len(q) != rw {
			panic(fmt.Sprintf("core: query words %d != row words %d", len(q), rw))
		}
		arena := l.arena
		abandoned := int64(0)
		for i := lo; i < hi; i++ {
			row := arena[i*rw : i*rw+rw : i*rw+rw]
			if h, ok := bitvec.HammingBounded(row, q, maxHam); ok {
				score := float64(d - 2*h)
				dst = append(dst, Candidate{Bucket: i, Score: score, Excess: score - tau})
			} else {
				abandoned++
			}
		}
		if abandoned > 0 {
			// One atomic publish per range keeps the row loop
			// synchronization-free.
			l.ctr.earlyAbandons.Add(abandoned)
		}
		return dst
	}
	for i := lo; i < hi; i++ {
		if score := l.score(i, hv); score >= tau {
			dst = append(dst, Candidate{Bucket: i, Score: score, Excess: score - tau})
		}
	}
	return dst
}

// verify refines candidates into matches by direct comparison of the
// query window against each member window of each candidate bucket,
// accepting distance ≤ tol. Matches are appended to out, which is
// returned (append-style, so Lookup accumulates across alignments
// without an intermediate slice).
func (l *Library) verify(out []Match, q *genome.Sequence, qOff int, cands []Candidate, tol int, stats *Stats) []Match {
	w := l.params.Window
	for _, c := range cands {
		for _, wr := range l.bkts[c.Bucket].windows {
			ref := l.refs[wr.Ref].Seq
			dist := 0
			for i := 0; i < w; i++ {
				if ref.At(int(wr.Off)+i) != q.At(qOff+i) {
					dist++
					if dist > tol {
						break
					}
				}
			}
			if stats != nil {
				stats.WindowsVerified++
				stats.BaseComparisons += minInt(w, w) // full window budgeted
			}
			if dist <= tol {
				out = append(out, Match{
					Ref: int(wr.Ref), Off: int(wr.Off), QueryOff: qOff, Distance: dist,
				})
			}
		}
	}
	return out
}

// Lookup searches for a window-length pattern in the library and returns
// the verified matches. The pattern must be at least Window bases long;
// when the library stride exceeds 1, the first min(stride, len−Window+1)
// alignments of the pattern are tried so that one of them can line up
// with a stride-aligned reference window (supply a pattern of length ≥
// Window+Stride−1 for full sensitivity).
//
// Exact libraries accept only exact occurrences; approximate libraries
// accept occurrences within MutTolerance substitutions.
func (l *Library) Lookup(pattern *genome.Sequence) ([]Match, Stats, error) {
	var stats Stats
	w := l.params.Window
	if pattern == nil || pattern.Len() < w {
		return nil, stats, fmt.Errorf("core: pattern shorter than window %d", w)
	}
	if !l.frozen {
		return nil, stats, fmt.Errorf("core: Lookup before Freeze")
	}
	tol := 0
	if l.params.Approx {
		tol = l.params.MutTolerance
	}
	alignments := minInt(l.params.Stride, pattern.Len()-w+1)
	sc := l.getScratch()
	defer l.putScratch(sc)
	var matches []Match
	for a := 0; a < alignments; a++ {
		if l.params.Approx {
			l.enc.EncodeWindowApproxInto(sc.hv, sc.acc, pattern, a)
		} else {
			l.enc.EncodeWindowExactInto(sc.hv, pattern, a)
		}
		stats.Alignments++
		sc.cands = l.probeInto(sc.cands[:0], sc.hv)
		stats.BucketProbes += len(l.bkts)
		stats.CandidateBuckets += len(sc.cands)
		matches = l.verify(matches, pattern, a, sc.cands, tol, &stats)
	}
	if len(matches) > 1 {
		sort.Slice(matches, func(i, j int) bool {
			if matches[i].Ref != matches[j].Ref {
				return matches[i].Ref < matches[j].Ref
			}
			return matches[i].Off < matches[j].Off
		})
	}
	return matches, stats, nil
}

// Contains reports whether the pattern occurs in the references (within
// MutTolerance for approximate libraries) — the pure membership query.
func (l *Library) Contains(pattern *genome.Sequence) (bool, Stats, error) {
	matches, stats, err := l.Lookup(pattern)
	return len(matches) > 0, stats, err
}

// RefMatch aggregates LookupLong evidence for one reference.
type RefMatch struct {
	Ref      int     // reference index
	Votes    int     // query windows supporting this reference on the best diagonal
	Windows  int     // query windows searched
	Offset   int     // implied alignment offset of the query in the reference
	Fraction float64 // Votes / Windows
}

// LookupLong maps a long query (e.g. a sequencing read or a gene) against
// the references: the query is cut into non-overlapping windows, the
// windows are probed in blocks (each sealed arena row streams once per
// block of up to probeBlock windows), and per-reference votes are
// accumulated along alignment diagonals (matches whose reference offset
// minus query offset agree). References are returned in decreasing vote
// order, filtered to vote fraction ≥ minFrac. Matches, votes, and
// stats are identical to looking each window up individually.
func (l *Library) LookupLong(query *genome.Sequence, minFrac float64) ([]RefMatch, Stats, error) {
	var stats Stats
	w := l.params.Window
	if query == nil || query.Len() < w {
		return nil, stats, fmt.Errorf("core: query shorter than window %d", w)
	}
	if !l.frozen {
		return nil, stats, fmt.Errorf("core: Lookup before Freeze")
	}
	tol := 0
	if l.params.Approx {
		tol = l.params.MutTolerance
	}
	sc := l.getBlockScratch()
	defer l.putBlockScratch(sc)
	clear(sc.votes)
	nWindows := 0
	nBkts := len(l.bkts)
	var offs [probeBlock]int
	for base := 0; base+w <= query.Len(); {
		// Encode the next block of non-overlapping windows straight from
		// the query (window i of the read starts at absolute offset i·w,
		// so no sub-slices are materialized).
		nq := 0
		for nq < probeBlock && base+w <= query.Len() {
			if l.params.Approx {
				l.enc.EncodeWindowApproxInto(sc.hvs[nq], sc.acc, query, base)
			} else {
				l.enc.EncodeWindowExactInto(sc.hvs[nq], query, base)
			}
			offs[nq] = base
			nq++
			base += w
		}
		dsts := sc.cands[:nq]
		for j := range dsts {
			dsts[j] = dsts[j][:0]
		}
		l.probeBlockInto(dsts, sc.hvs[:nq], sc)
		stats.Alignments += nq
		stats.BucketProbes += nq * nBkts
		for j := 0; j < nq; j++ {
			stats.CandidateBuckets += len(dsts[j])
			sc.matches = l.verify(sc.matches[:0], query, offs[j], dsts[j], tol, &stats)
			nWindows++
			clear(sc.seen) // one vote per diagonal per query window
			for _, m := range sc.matches {
				d := diagKey{ref: m.Ref, diff: m.Off - m.QueryOff}
				if !sc.seen[d] {
					sc.seen[d] = true
					sc.votes[d]++
				}
			}
		}
	}
	// Pick the winning diagonal per reference. Equal-vote ties are
	// broken by the smaller diagonal so the reported Offset does not
	// depend on map iteration order.
	votes := sc.votes
	clear(sc.best)
	best := sc.best
	for d, v := range votes {
		cur, ok := best[d.ref]
		switch {
		case !ok || v > votes[cur]:
			best[d.ref] = d
		case v == votes[cur] && d.diff < cur.diff:
			best[d.ref] = d
		}
	}
	var out []RefMatch
	for ref, d := range best {
		v := votes[d]
		frac := float64(v) / float64(nWindows)
		if frac >= minFrac {
			out = append(out, RefMatch{
				Ref: ref, Votes: v, Windows: nWindows, Offset: d.diff, Fraction: frac,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Ref < out[j].Ref
	})
	return out, stats, nil
}

// ErrNoSupport is returned (wrapped) by Classify when the query is
// valid but no reference reaches the requested window-vote support —
// a not-found outcome, distinct from invalid-input errors such as a
// query shorter than the window. Test with errors.Is.
var ErrNoSupport = errors.New("core: no reference reaches support")

// Classify returns the single best-supported reference for a query, or
// an error if no reference reaches minFrac support. It is the variant-
// classification entry point used by the COVID-19 case study.
func (l *Library) Classify(query *genome.Sequence, minFrac float64) (RefMatch, Stats, error) {
	ranked, stats, err := l.LookupLong(query, minFrac)
	if err != nil {
		return RefMatch{}, stats, err
	}
	if len(ranked) == 0 {
		return RefMatch{}, stats, fmt.Errorf("%w %v", ErrNoSupport, minFrac)
	}
	return ranked[0], stats, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
