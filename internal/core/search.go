package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/genome"
	"repro/internal/hdc"
)

// Match is one verified occurrence of a query window in the references.
type Match struct {
	Ref      int // reference sequence index
	Off      int // offset of the matching window in the reference
	QueryOff int // offset of the aligned window within the query
	Distance int // substitution distance between query window and reference window
}

// Stats counts the work a search performed; experiment T2 compares these
// operation counts against the classical baselines, and the PIM mapper
// consumes them to derive in-memory latency and energy.
type Stats struct {
	Alignments       int // query window alignments encoded
	BucketProbes     int // query/bucket dot products (the PIM search kernel)
	CandidateBuckets int // buckets whose score crossed the threshold
	WindowsVerified  int // member windows checked during refinement
	BaseComparisons  int // nucleotide comparisons spent in verification
}

// Add accumulates another query's work into s — callers that combine
// independently produced results (the coalescing layer, benchmark
// harnesses) aggregate exactly as the multi-lookup paths do.
func (s *Stats) Add(o Stats) { s.add(o) }

func (s *Stats) add(o Stats) {
	s.Alignments += o.Alignments
	s.BucketProbes += o.BucketProbes
	s.CandidateBuckets += o.CandidateBuckets
	s.WindowsVerified += o.WindowsVerified
	s.BaseComparisons += o.BaseComparisons
}

// Candidate is an unverified bucket hit: the HDC similarity stage's raw
// output, before sequence-level refinement. Bucket is a global index
// across the snapshot's segments.
type Candidate struct {
	Bucket int
	Score  float64
	Excess float64 // score minus the model threshold
}

// Threshold returns the operating decision threshold: the calibrated
// threshold for frozen approximate libraries, or the a-priori model
// threshold for exact libraries (where the model is itself exact).
func (l *Library) Threshold() float64 {
	if sn := l.snap.Load(); sn != nil {
		return l.thresholdFor(sn)
	}
	return l.Model().DecisionThreshold(
		l.params.Alpha, l.params.Beta, maxInt(l.NumBuckets(), 1), l.params.MutTolerance)
}

// thresholdFor returns the decision threshold in force for one snapshot.
// Probes compute the threshold from the snapshot they scan — not from
// the library's latest one — so a probe racing a mutation stays
// internally consistent.
func (l *Library) thresholdFor(sn *snapshot) float64 {
	if l.params.Approx {
		return sn.cal.Tau
	}
	return l.modelWith(sn.maxOccupancy()).DecisionThreshold(
		l.params.Alpha, l.params.Beta, maxInt(sn.numBuckets(), 1), l.params.MutTolerance)
}

// BlockWidth is the query-block width of the blocked probe paths: up
// to this many query windows share one streaming pass over the arena,
// so each row's memory traffic is amortized across the block. Callers
// that assemble their own blocks (LookupBlock, the coalescing layer)
// size them against this constant.
const BlockWidth = bitvec.MaxMultiQueries

// probeBlock is the internal alias the probe paths were written
// against; it is the same width.
const probeBlock = BlockWidth

// diagKey identifies one alignment diagonal: matches of a reference
// whose reference offset minus query offset agree all support the same
// placement of the query in that reference.
type diagKey struct {
	ref  int
	diff int
}

// probeShardMin is the minimum number of buckets each worker must have
// before a segment's probe scan fans out across goroutines; below
// 2·probeShardMin buckets the scan stays serial (goroutine dispatch
// would cost more than the scan). A variable so tests can force the
// sharded path on small libraries.
var probeShardMin = 4096

// Probe scores an encoded query window against every bucket and returns
// the candidates above the model threshold. This is the pure HDC search
// stage — exactly the computation the PIM architecture executes in
// memory. The library must be frozen.
//
// The scan visits segments in order; within each segment, sealed
// libraries stream the flat arena with the fused XNOR-popcount kernel,
// converting the threshold τ into a maximum Hamming distance once per
// probe and abandoning each row as soon as that bound is exceeded, and
// large segments shard the scan across a bounded worker pool. All of it
// is exact: the candidates (order, scores, excesses) are identical to a
// serial full scan, and independent of how the buckets are cut into
// segments. Stats count the full scan — BucketProbes is the work the
// PIM hardware would do, not the words the software kernel happened to
// touch.
//
//biohd:hotpath
func (l *Library) Probe(hv *hdc.HV, stats *Stats) ([]Candidate, error) {
	sn := l.snap.Load()
	if sn == nil {
		return nil, fmt.Errorf("core: Probe before Freeze")
	}
	if !l.beginRead() {
		return nil, ErrClosed
	}
	defer l.endRead()
	if hv.Dim() != l.params.Dim {
		return nil, fmt.Errorf("core: query dimension %d != library %d", hv.Dim(), l.params.Dim)
	}
	//lint:ignore hotpath the result slice is caller-owned; the zero-alloc path is probeInto with pooled scratch
	out := l.probeInto(sn, make([]Candidate, 0, candidateHint), hv)
	if stats != nil {
		stats.BucketProbes += sn.numBuckets()
		stats.CandidateBuckets += len(out)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// probeInto appends every bucket whose score reaches the threshold to
// dst and returns it, scanning the snapshot's segments in order.
// Callers must have validated frozenness and the query dimension.
func (l *Library) probeInto(sn *snapshot, dst []Candidate, hv *hdc.HV) []Candidate {
	l.ctr.bucketProbes.Add(int64(sn.numBuckets()))
	tau := l.thresholdFor(sn)
	// τ → Hamming bound: an integer dot passes score ≥ τ iff
	// dot ≥ ⌈τ⌉, and dot = D − 2·hamming, so a sealed row passes iff
	// hamming ≤ ⌊(D − ⌈τ⌉)/2⌋. A row whose partial distance already
	// exceeds that can never become a candidate. The arithmetic shift
	// is a floor division — Go's / truncates toward zero, which for a
	// negative numerator (τ > D) would admit distance 0.
	maxHam := (l.params.Dim - int(math.Ceil(tau))) >> 1
	for k, seg := range sn.segs {
		dst = l.probeSeg(seg, sn.offs[k], dst, hv, tau, maxHam)
	}
	return dst
}

// probeSeg scans one segment, sharding across a bounded worker pool
// when the segment is large enough. Contiguous bucket ranges, one per
// worker, are merged in shard order, so the result is byte-identical to
// a serial scan of the segment.
func (l *Library) probeSeg(seg *segment, gOff int, dst []Candidate, hv *hdc.HV, tau float64, maxHam int) []Candidate {
	n := seg.numBuckets()
	workers := runtime.GOMAXPROCS(0)
	if w := n / probeShardMin; workers > w {
		workers = w
	}
	if workers <= 1 {
		return seg.probeRange(dst, hv, tau, maxHam, 0, n, gOff, &l.params, &l.ctr)
	}
	per := (n + workers - 1) / workers
	//lint:ignore hotpath shard dispatch runs only on segments of ≥2·probeShardMin buckets; the allocation amortizes over the scan
	parts := make([][]Candidate, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * per
		hi := minInt(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		//lint:ignore hotpath worker closure of the sharded scan; amortized like the dispatch slice above
		go func(s, lo, hi int) {
			defer wg.Done()
			parts[s] = seg.probeRange(nil, hv, tau, maxHam, lo, hi, gOff, &l.params, &l.ctr)
		}(s, lo, hi)
	}
	wg.Wait()
	for _, p := range parts {
		dst = append(dst, p...)
	}
	return dst
}

// ProbeMulti probes a batch of encoded query windows in blocks of up
// to probeBlock queries: each sealed arena row is streamed once per
// block and XNOR-popcounted against every query in it, amortizing the
// memory traffic that dominates a large scan. The result is exactly
// len(hvs) independent probes — out[i] is identical to what
// Probe(hvs[i], ...) returns (same candidates, order, scores, excesses,
// nil on a miss) — and stats count the same modeled work: every query
// scans every bucket, whatever the software kernel skipped.
//
//biohd:hotpath
func (l *Library) ProbeMulti(hvs []*hdc.HV, stats *Stats) ([][]Candidate, error) {
	sn := l.snap.Load()
	if sn == nil {
		return nil, fmt.Errorf("core: ProbeMulti before Freeze")
	}
	if !l.beginRead() {
		return nil, ErrClosed
	}
	defer l.endRead()
	for _, hv := range hvs {
		if hv.Dim() != l.params.Dim {
			return nil, fmt.Errorf("core: query dimension %d != library %d", hv.Dim(), l.params.Dim)
		}
	}
	//lint:ignore hotpath the result spine is caller-owned; per-query slices materialize only on hits
	out := make([][]Candidate, len(hvs))
	sc := l.getBlockScratch()
	defer l.putBlockScratch(sc)
	total := 0
	for base := 0; base < len(hvs); base += probeBlock {
		hi := minInt(base+probeBlock, len(hvs))
		// Each dst starts nil: probeBlockRange appends, so queries that
		// miss every bucket never allocate a candidate slice at all.
		dsts := out[base:hi]
		l.probeBlockInto(sn, dsts, hvs[base:hi], sc)
		for j := range dsts {
			total += len(dsts[j])
		}
	}
	if stats != nil {
		stats.BucketProbes += len(hvs) * sn.numBuckets()
		stats.CandidateBuckets += total
	}
	return out, nil
}

// probeBlockInto fills dsts[j] with the candidates of hvs[j] for one
// block of at most probeBlock queries, appending to whatever each dst
// already holds. Candidate content and order are identical to calling
// probeInto once per query; the only difference is that each sealed
// arena row is read once per block instead of once per query. Within
// each segment the bucket shards and their ordered merge mirror
// probeSeg exactly, so the tiling is [query block × bucket shard].
// Callers must have validated frozenness and query dimensions; sc
// supplies the kernel scratch (word views, bounds, distances).
func (l *Library) probeBlockInto(sn *snapshot, dsts [][]Candidate, hvs []*hdc.HV, sc *blockScratch) {
	nq := len(hvs)
	l.ctr.bucketProbes.Add(int64(nq) * int64(sn.numBuckets()))
	l.ctr.blockedProbes.Add(1)
	l.ctr.blockedWindows.Add(int64(nq))
	tau := l.thresholdFor(sn)
	maxHam := (l.params.Dim - int(math.Ceil(tau))) >> 1
	for k, seg := range sn.segs {
		l.probeBlockSeg(seg, sn.offs[k], dsts, hvs, sc, tau, maxHam)
	}
}

// probeBlockSeg scans one segment against a whole query block, sharding
// like probeSeg when the segment is large enough.
func (l *Library) probeBlockSeg(seg *segment, gOff int, dsts [][]Candidate, hvs []*hdc.HV, sc *blockScratch, tau float64, maxHam int) {
	nq := len(hvs)
	n := seg.numBuckets()
	workers := runtime.GOMAXPROCS(0)
	if w := n / probeShardMin; workers > w {
		workers = w
	}
	if workers <= 1 {
		seg.probeBlockRange(dsts, hvs, sc.qs[:0], tau, maxHam, 0, n, gOff, sc.bounds, sc.dist, &l.params, &l.ctr)
		return
	}
	per := (n + workers - 1) / workers
	//lint:ignore hotpath shard dispatch runs only on segments of ≥2·probeShardMin buckets; the allocation amortizes over the scan
	parts := make([][][]Candidate, workers)
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		lo := s * per
		hi := minInt(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		//lint:ignore hotpath worker closure of the sharded scan; amortized like the dispatch slice above
		go func(s, lo, hi int) {
			defer wg.Done()
			//lint:ignore hotpath per-worker result and bound/distance scratch, amortized over ≥probeShardMin buckets
			part := make([][]Candidate, nq)
			//lint:ignore hotpath per-worker result and bound/distance scratch, amortized over ≥probeShardMin buckets
			seg.probeBlockRange(part, hvs, nil, tau, maxHam, lo, hi, gOff, make([]int, nq), make([]int, nq), &l.params, &l.ctr)
			parts[s] = part
		}(s, lo, hi)
	}
	wg.Wait()
	for _, part := range parts {
		for j, p := range part {
			dsts[j] = append(dsts[j], p...)
		}
	}
}

// verify refines candidates into matches by direct comparison of the
// query window against each member window of each candidate bucket,
// accepting distance ≤ tol. Windows whose reference has been removed
// (tombstones) are skipped — their contribution to the bucket vector
// lingers until Compact, but they can never match. Matches are appended
// to out, which is returned (append-style, so Lookup accumulates across
// alignments without an intermediate slice).
func (l *Library) verify(sn *snapshot, out []Match, q *genome.Sequence, qOff int, cands []Candidate, tol int, stats *Stats) []Match {
	w := l.params.Window
	for _, c := range cands {
		for _, wr := range sn.windows(c.Bucket) {
			ref := sn.refs[wr.Ref].Seq
			if ref == nil {
				continue // tombstoned
			}
			dist := 0
			for i := 0; i < w; i++ {
				if ref.At(int(wr.Off)+i) != q.At(qOff+i) {
					dist++
					if dist > tol {
						break
					}
				}
			}
			if stats != nil {
				stats.WindowsVerified++
				stats.BaseComparisons += minInt(w, w) // full window budgeted
			}
			if dist <= tol {
				out = append(out, Match{
					Ref: int(wr.Ref), Off: int(wr.Off), QueryOff: qOff, Distance: dist,
				})
			}
		}
	}
	return out
}

// Lookup searches for a window-length pattern in the library and returns
// the verified matches. The pattern must be at least Window bases long;
// when the library stride exceeds 1, the first min(stride, len−Window+1)
// alignments of the pattern are tried so that one of them can line up
// with a stride-aligned reference window (supply a pattern of length ≥
// Window+Stride−1 for full sensitivity).
//
// Exact libraries accept only exact occurrences; approximate libraries
// accept occurrences within MutTolerance substitutions.
//
//biohd:hotpath
func (l *Library) Lookup(pattern *genome.Sequence) ([]Match, Stats, error) {
	var stats Stats
	w := l.params.Window
	if pattern == nil || pattern.Len() < w {
		return nil, stats, fmt.Errorf("core: pattern shorter than window %d", w)
	}
	sn := l.snap.Load()
	if sn == nil {
		return nil, stats, fmt.Errorf("core: Lookup before Freeze")
	}
	if !l.beginRead() {
		return nil, stats, ErrClosed
	}
	defer l.endRead()
	tol := 0
	if l.params.Approx {
		tol = l.params.MutTolerance
	}
	alignments := minInt(l.params.Stride, pattern.Len()-w+1)
	sc := l.getScratch()
	defer l.putScratch(sc)
	var matches []Match
	for a := 0; a < alignments; a++ {
		if l.params.Approx {
			l.enc.EncodeWindowApproxInto(sc.hv, sc.acc, pattern, a)
		} else {
			l.enc.EncodeWindowExactInto(sc.hv, pattern, a)
		}
		stats.Alignments++
		sc.cands = l.probeInto(sn, sc.cands[:0], sc.hv)
		stats.BucketProbes += sn.numBuckets()
		stats.CandidateBuckets += len(sc.cands)
		matches = l.verify(sn, matches, pattern, a, sc.cands, tol, &stats)
	}
	sortMatches(matches)
	return matches, stats, nil
}

// sortMatches orders matches by (Ref, Off) — the order Lookup
// documents — with an insertion sort: match lists are small (verified
// hits of one pattern), and unlike sort.Slice the sort allocates
// nothing, keeping the lookup paths statically allocation-free.
func sortMatches(matches []Match) {
	for i := 1; i < len(matches); i++ {
		m := matches[i]
		j := i - 1
		for j >= 0 && (matches[j].Ref > m.Ref ||
			(matches[j].Ref == m.Ref && matches[j].Off > m.Off)) {
			matches[j+1] = matches[j]
			j--
		}
		matches[j+1] = m
	}
}

// Contains reports whether the pattern occurs in the references (within
// MutTolerance for approximate libraries) — the pure membership query.
func (l *Library) Contains(pattern *genome.Sequence) (bool, Stats, error) {
	matches, stats, err := l.Lookup(pattern)
	return len(matches) > 0, stats, err
}

// RefMatch aggregates LookupLong evidence for one reference.
type RefMatch struct {
	Ref      int     // reference index
	Votes    int     // query windows supporting this reference on the best diagonal
	Windows  int     // query windows searched
	Offset   int     // implied alignment offset of the query in the reference
	Fraction float64 // Votes / Windows
}

// LookupLong maps a long query (e.g. a sequencing read or a gene) against
// the references: the query is cut into non-overlapping windows, the
// windows are probed in blocks (each sealed arena row streams once per
// block of up to probeBlock windows), and per-reference votes are
// accumulated along alignment diagonals (matches whose reference offset
// minus query offset agree). References are returned in decreasing vote
// order, filtered to vote fraction ≥ minFrac. Matches, votes, and
// stats are identical to looking each window up individually.
//
//biohd:hotpath
func (l *Library) LookupLong(query *genome.Sequence, minFrac float64) ([]RefMatch, Stats, error) {
	var stats Stats
	w := l.params.Window
	if query == nil || query.Len() < w {
		return nil, stats, fmt.Errorf("core: query shorter than window %d", w)
	}
	sn := l.snap.Load()
	if sn == nil {
		return nil, stats, fmt.Errorf("core: Lookup before Freeze")
	}
	if !l.beginRead() {
		return nil, stats, ErrClosed
	}
	defer l.endRead()
	tol := 0
	if l.params.Approx {
		tol = l.params.MutTolerance
	}
	sc := l.getBlockScratch()
	defer l.putBlockScratch(sc)
	clear(sc.votes)
	nWindows := 0
	nBkts := sn.numBuckets()
	var offs [probeBlock]int
	for base := 0; base+w <= query.Len(); {
		// Encode the next block of non-overlapping windows straight from
		// the query (window i of the read starts at absolute offset i·w,
		// so no sub-slices are materialized).
		nq := 0
		for nq < probeBlock && base+w <= query.Len() {
			if l.params.Approx {
				l.enc.EncodeWindowApproxInto(sc.hvs[nq], sc.acc, query, base)
			} else {
				l.enc.EncodeWindowExactInto(sc.hvs[nq], query, base)
			}
			offs[nq] = base
			nq++
			base += w
		}
		dsts := sc.cands[:nq]
		for j := range dsts {
			dsts[j] = dsts[j][:0]
		}
		l.probeBlockInto(sn, dsts, sc.hvs[:nq], sc)
		stats.Alignments += nq
		stats.BucketProbes += nq * nBkts
		for j := 0; j < nq; j++ {
			stats.CandidateBuckets += len(dsts[j])
			sc.matches = l.verify(sn, sc.matches[:0], query, offs[j], dsts[j], tol, &stats)
			nWindows++
			clear(sc.seen) // one vote per diagonal per query window
			for _, m := range sc.matches {
				d := diagKey{ref: m.Ref, diff: m.Off - m.QueryOff}
				if !sc.seen[d] {
					sc.seen[d] = true
					sc.votes[d]++
				}
			}
		}
	}
	clear(sc.best)
	out := rankVotes(sc.votes, sc.best, nWindows, minFrac)
	return out, stats, nil
}

// rankVotes turns accumulated diagonal votes into the ranked RefMatch
// list: the winning diagonal per reference, filtered to vote fraction
// ≥ minFrac, ordered by sortRefMatches. Equal-vote ties are broken by
// the smaller diagonal so the reported Offset does not depend on map
// iteration order. best must arrive empty; it is caller-owned scratch.
func rankVotes(votes map[diagKey]int, best map[int]diagKey, nWindows int, minFrac float64) []RefMatch {
	//lint:ignore hotpath diagonal-vote aggregation is the per-call epilogue; the result is order-independent by the tie-break below
	for d, v := range votes {
		cur, ok := best[d.ref]
		switch {
		case !ok || v > votes[cur]:
			best[d.ref] = d
		case v == votes[cur] && d.diff < cur.diff:
			best[d.ref] = d
		}
	}
	var out []RefMatch
	//lint:ignore hotpath per-call epilogue over the winning diagonals; the final sort fixes the order
	for ref, d := range best {
		v := votes[d]
		frac := float64(v) / float64(nWindows)
		if frac >= minFrac {
			out = append(out, RefMatch{
				Ref: ref, Votes: v, Windows: nWindows, Offset: d.diff, Fraction: frac,
			})
		}
	}
	sortRefMatches(out)
	return out
}

// RankWindows runs LookupLong's diagonal-voting epilogue over window
// match lists produced elsewhere: wins[i] holds the matches of the
// query window starting at absolute query offset offs[i] (as returned
// by Lookup on the window sub-slice, so QueryOff is window-relative).
// Votes, tie-breaks, filtering, and ordering are identical to
// LookupLong over the same windows — callers that fan window lookups
// out (e.g. through the coalescing layer) rank them equivalently.
func RankWindows(wins [][]Match, offs []int, minFrac float64) []RefMatch {
	votes := make(map[diagKey]int)
	seen := make(map[diagKey]bool)
	for i, ms := range wins {
		clear(seen) // one vote per diagonal per query window
		for _, m := range ms {
			d := diagKey{ref: m.Ref, diff: m.Off - (offs[i] + m.QueryOff)}
			if !seen[d] {
				seen[d] = true
				votes[d]++
			}
		}
	}
	return rankVotes(votes, make(map[int]diagKey), len(wins), minFrac)
}

// sortRefMatches orders ranked references by decreasing Votes, ties by
// increasing Ref — allocation-free like sortMatches; the list is at
// most one entry per matched reference.
func sortRefMatches(out []RefMatch) {
	for i := 1; i < len(out); i++ {
		m := out[i]
		j := i - 1
		for j >= 0 && (out[j].Votes < m.Votes ||
			(out[j].Votes == m.Votes && out[j].Ref > m.Ref)) {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = m
	}
}

// ErrNoSupport is returned (wrapped) by Classify when the query is
// valid but no reference reaches the requested window-vote support —
// a not-found outcome, distinct from invalid-input errors such as a
// query shorter than the window. Test with errors.Is.
var ErrNoSupport = errors.New("core: no reference reaches support")

// Classify returns the single best-supported reference for a query, or
// an error if no reference reaches minFrac support. It is the variant-
// classification entry point used by the COVID-19 case study.
func (l *Library) Classify(query *genome.Sequence, minFrac float64) (RefMatch, Stats, error) {
	ranked, stats, err := l.LookupLong(query, minFrac)
	if err != nil {
		return RefMatch{}, stats, err
	}
	if len(ranked) == 0 {
		return RefMatch{}, stats, fmt.Errorf("%w %v", ErrNoSupport, minFrac)
	}
	return ranked[0], stats, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
