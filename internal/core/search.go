package core

import (
	"fmt"
	"sort"

	"repro/internal/genome"
	"repro/internal/hdc"
)

// Match is one verified occurrence of a query window in the references.
type Match struct {
	Ref      int // reference sequence index
	Off      int // offset of the matching window in the reference
	QueryOff int // offset of the aligned window within the query
	Distance int // substitution distance between query window and reference window
}

// Stats counts the work a search performed; experiment T2 compares these
// operation counts against the classical baselines, and the PIM mapper
// consumes them to derive in-memory latency and energy.
type Stats struct {
	Alignments       int // query window alignments encoded
	BucketProbes     int // query/bucket dot products (the PIM search kernel)
	CandidateBuckets int // buckets whose score crossed the threshold
	WindowsVerified  int // member windows checked during refinement
	BaseComparisons  int // nucleotide comparisons spent in verification
}

func (s *Stats) add(o Stats) {
	s.Alignments += o.Alignments
	s.BucketProbes += o.BucketProbes
	s.CandidateBuckets += o.CandidateBuckets
	s.WindowsVerified += o.WindowsVerified
	s.BaseComparisons += o.BaseComparisons
}

// Candidate is an unverified bucket hit: the HDC similarity stage's raw
// output, before sequence-level refinement.
type Candidate struct {
	Bucket int
	Score  float64
	Excess float64 // score minus the model threshold
}

// Threshold returns the operating decision threshold: the freeze-time
// calibrated threshold for approximate libraries, or the a-priori model
// threshold for exact libraries (where the model is itself exact).
func (l *Library) Threshold() float64 {
	if l.frozen && l.params.Approx {
		return l.cal.Tau
	}
	return l.Model().DecisionThreshold(
		l.params.Alpha, l.params.Beta, maxInt(len(l.bkts), 1), l.params.MutTolerance)
}

// Probe scores an encoded query window against every bucket and returns
// the candidates above the model threshold. This is the pure HDC search
// stage — exactly the computation the PIM architecture executes in
// memory. The library must be frozen.
func (l *Library) Probe(hv *hdc.HV, stats *Stats) ([]Candidate, error) {
	if !l.frozen {
		return nil, fmt.Errorf("core: Probe before Freeze")
	}
	if hv.Dim() != l.params.Dim {
		return nil, fmt.Errorf("core: query dimension %d != library %d", hv.Dim(), l.params.Dim)
	}
	tau := l.Threshold()
	var out []Candidate
	for i := range l.bkts {
		score := l.score(i, hv)
		if stats != nil {
			stats.BucketProbes++
		}
		if score >= tau {
			out = append(out, Candidate{Bucket: i, Score: score, Excess: score - tau})
			if stats != nil {
				stats.CandidateBuckets++
			}
		}
	}
	return out, nil
}

// verify refines candidates into matches by direct comparison of the
// query window against each member window of each candidate bucket,
// accepting distance ≤ tol.
func (l *Library) verify(q *genome.Sequence, qOff int, cands []Candidate, tol int, stats *Stats) []Match {
	w := l.params.Window
	var out []Match
	for _, c := range cands {
		for _, wr := range l.bkts[c.Bucket].windows {
			ref := l.refs[wr.Ref].Seq
			dist := 0
			for i := 0; i < w; i++ {
				if ref.At(int(wr.Off)+i) != q.At(qOff+i) {
					dist++
					if dist > tol {
						break
					}
				}
			}
			if stats != nil {
				stats.WindowsVerified++
				stats.BaseComparisons += minInt(w, w) // full window budgeted
			}
			if dist <= tol {
				out = append(out, Match{
					Ref: int(wr.Ref), Off: int(wr.Off), QueryOff: qOff, Distance: dist,
				})
			}
		}
	}
	return out
}

// Lookup searches for a window-length pattern in the library and returns
// the verified matches. The pattern must be at least Window bases long;
// when the library stride exceeds 1, the first min(stride, len−Window+1)
// alignments of the pattern are tried so that one of them can line up
// with a stride-aligned reference window (supply a pattern of length ≥
// Window+Stride−1 for full sensitivity).
//
// Exact libraries accept only exact occurrences; approximate libraries
// accept occurrences within MutTolerance substitutions.
func (l *Library) Lookup(pattern *genome.Sequence) ([]Match, Stats, error) {
	var stats Stats
	w := l.params.Window
	if pattern == nil || pattern.Len() < w {
		return nil, stats, fmt.Errorf("core: pattern shorter than window %d", w)
	}
	if !l.frozen {
		return nil, stats, fmt.Errorf("core: Lookup before Freeze")
	}
	tol := 0
	if l.params.Approx {
		tol = l.params.MutTolerance
	}
	alignments := minInt(l.params.Stride, pattern.Len()-w+1)
	var matches []Match
	for a := 0; a < alignments; a++ {
		var hv *hdc.HV
		if l.params.Approx {
			hv = l.enc.EncodeWindowApprox(pattern, a)
		} else {
			hv = l.enc.EncodeWindowExact(pattern, a)
		}
		stats.Alignments++
		cands, err := l.Probe(hv, &stats)
		if err != nil {
			return nil, stats, err
		}
		matches = append(matches, l.verify(pattern, a, cands, tol, &stats)...)
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Ref != matches[j].Ref {
			return matches[i].Ref < matches[j].Ref
		}
		return matches[i].Off < matches[j].Off
	})
	return matches, stats, nil
}

// Contains reports whether the pattern occurs in the references (within
// MutTolerance for approximate libraries) — the pure membership query.
func (l *Library) Contains(pattern *genome.Sequence) (bool, Stats, error) {
	matches, stats, err := l.Lookup(pattern)
	return len(matches) > 0, stats, err
}

// RefMatch aggregates LookupLong evidence for one reference.
type RefMatch struct {
	Ref      int     // reference index
	Votes    int     // query windows supporting this reference on the best diagonal
	Windows  int     // query windows searched
	Offset   int     // implied alignment offset of the query in the reference
	Fraction float64 // Votes / Windows
}

// LookupLong maps a long query (e.g. a sequencing read or a gene) against
// the references: the query is cut into non-overlapping windows, each is
// looked up, and per-reference votes are accumulated along alignment
// diagonals (matches whose reference offset minus query offset agree).
// References are returned in decreasing vote order, filtered to vote
// fraction ≥ minFrac.
func (l *Library) LookupLong(query *genome.Sequence, minFrac float64) ([]RefMatch, Stats, error) {
	var stats Stats
	w := l.params.Window
	if query == nil || query.Len() < w {
		return nil, stats, fmt.Errorf("core: query shorter than window %d", w)
	}
	type diag struct {
		ref  int
		diff int
	}
	votes := map[diag]int{}
	nWindows := 0
	for qOff := 0; qOff+w <= query.Len(); qOff += w {
		window := query.Slice(qOff, qOff+w)
		matches, s, err := l.Lookup(window)
		stats.add(s)
		if err != nil {
			return nil, stats, err
		}
		nWindows++
		seen := map[diag]bool{} // one vote per diagonal per query window
		for _, m := range matches {
			d := diag{ref: m.Ref, diff: m.Off - (qOff + m.QueryOff)}
			if !seen[d] {
				seen[d] = true
				votes[d]++
			}
		}
	}
	// Pick the winning diagonal per reference. Equal-vote ties are
	// broken by the smaller diagonal so the reported Offset does not
	// depend on map iteration order.
	best := map[int]diag{}
	for d, v := range votes {
		cur, ok := best[d.ref]
		switch {
		case !ok || v > votes[cur]:
			best[d.ref] = d
		case v == votes[cur] && d.diff < cur.diff:
			best[d.ref] = d
		}
	}
	var out []RefMatch
	for ref, d := range best {
		v := votes[d]
		frac := float64(v) / float64(nWindows)
		if frac >= minFrac {
			out = append(out, RefMatch{
				Ref: ref, Votes: v, Windows: nWindows, Offset: d.diff, Fraction: frac,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Votes != out[j].Votes {
			return out[i].Votes > out[j].Votes
		}
		return out[i].Ref < out[j].Ref
	})
	return out, stats, nil
}

// Classify returns the single best-supported reference for a query, or
// an error if no reference reaches minFrac support. It is the variant-
// classification entry point used by the COVID-19 case study.
func (l *Library) Classify(query *genome.Sequence, minFrac float64) (RefMatch, Stats, error) {
	ranked, stats, err := l.LookupLong(query, minFrac)
	if err != nil {
		return RefMatch{}, stats, err
	}
	if len(ranked) == 0 {
		return RefMatch{}, stats, fmt.Errorf("core: no reference reaches support %v", minFrac)
	}
	return ranked[0], stats, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
