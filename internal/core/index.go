package core

import (
	"context"
	"io"

	"repro/internal/genome"
)

// Backend names, as reported by Index.Describe and surfaced in
// /v1/stats and the backend-labeled /metrics series. BackendHDC is the
// paper's hyperdimensional library (the zero tag in the v3 container);
// alternate backends register their own tag and name via
// RegisterBackend.
const BackendHDC = "hdc"

// IndexInfo identifies an index backend and the geometry every backend
// shares: the window length queried, the stride of reference window
// starts, and whether (and how far) search tolerates substitutions.
// Backend-specific parameters (hypervector dimension, Bloom geometry)
// stay behind the backend's own Params type; Dim and Capacity are zero
// for backends they do not apply to.
type IndexInfo struct {
	Backend   string // "hdc", "cobs", ...
	Dim       int    // hypervector dimension (HDC; 0 otherwise)
	Window    int    // window / w-mer length in bases
	Stride    int    // reference window stride
	Capacity  int    // windows bundled per bucket (HDC; 0 otherwise)
	Approx    bool   // search tolerates substitutions
	Tolerance int    // per-window substitution tolerance when Approx
}

// Index is the backend-agnostic contract of a searchable reference
// collection: the probe paths (single lookup, blocked lookup, long-read
// mapping, classification, batch), the build/seal/compact lifecycle,
// the stats surface the server exports, and v3 serialization. The HDC
// segmented Library implements it unchanged; alternate backends (the
// COBS-style bit-sliced signature index in internal/cobs) implement the
// same semantics over their own storage. Every layer above internal/core
// — the coalescer, the transport-neutral exec layer, the HTTP and wire
// handlers, and the CLI — talks only to this interface.
//
// Concurrency contract: Frozen indexes serve all read methods
// concurrently with each other and with mutations; mutations publish
// atomically (readers never observe a half-applied change) and are
// serialized internally. Close drains in-flight readers before
// releasing storage.
type Index interface {
	// Describe identifies the backend and its shared geometry.
	Describe() IndexInfo
	// Frozen reports whether Freeze has been called (the index serves
	// searches). Frozen indexes still accept Add, Remove, and Compact.
	Frozen() bool
	// Threshold returns the operating decision threshold of the
	// backend's candidate stage, in backend-specific units.
	Threshold() float64

	// Stats surface (the /v1/stats and /metrics contract).
	NumRefs() int
	NumWindows() int
	NumBuckets() int
	NumSegments() int
	TombstoneRatio() float64
	MemoryFootprint() int64
	Mapped() bool
	MappedBytes() int64
	ResidentBytes() int64
	Ref(i int) genome.Record
	Counters() Counters

	// Probe paths. Per-method semantics (alignments tried, match order,
	// vote aggregation) are documented on the Library methods; every
	// backend matches them so transports can switch backends without
	// changing response shapes.
	Lookup(pattern *genome.Sequence) ([]Match, Stats, error)
	LookupBothStrands(pattern *genome.Sequence) ([]StrandedMatch, Stats, error)
	LookupLong(query *genome.Sequence, minFrac float64) ([]RefMatch, Stats, error)
	Classify(query *genome.Sequence, minFrac float64) (RefMatch, Stats, error)
	ClassifyBothStrands(read *genome.Sequence, minFrac float64) (RefMatch, Strand, Stats, error)
	LookupBatchContext(ctx context.Context, patterns []*genome.Sequence, workers int) ([]BatchResult, Stats, error)
	// LookupBlock is the blocked-probe contract: one caller-assembled
	// block of at most BlockWidth patterns, per-pattern identical to
	// Lookup. It is the executor the cross-request coalescer drives.
	LookupBlock(patterns []*genome.Sequence, results []BatchResult) error

	// Build / seal / compact lifecycle.
	Add(rec genome.Record) error
	Remove(refIdx int) error
	Compact(minRatio float64) (int, error)
	Freeze()
	SetSealThreshold(n int)
	SetAutoCompact(ratio float64)
	Close() error

	// WriteToV3 serializes the index's current snapshot into the v3
	// container with the backend's tag; ReadIndex/OpenLibraryFile
	// round-trip it.
	WriteToV3(w io.Writer) (int64, error)
}

// Describe identifies the HDC backend and its geometry.
func (l *Library) Describe() IndexInfo {
	return IndexInfo{
		Backend:   BackendHDC,
		Dim:       l.params.Dim,
		Window:    l.params.Window,
		Stride:    l.params.Stride,
		Capacity:  l.params.Capacity,
		Approx:    l.params.Approx,
		Tolerance: l.params.MutTolerance,
	}
}

// The HDC library is the reference implementation of the contract.
var _ Index = (*Library)(nil)
