package core

import (
	"bytes"
	"testing"

	"repro/internal/genome"
	"repro/internal/rng"
)

// saveLoad round-trips a library through the binary format.
func saveLoad(t *testing.T, lib *Library) *Library {
	t.Helper()
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLibrary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestSaveLoadSealedExact(t *testing.T) {
	lib, ref := buildExactLib(t, 2000, 51)
	back := saveLoad(t, lib)
	if back.NumBuckets() != lib.NumBuckets() || back.NumWindows() != lib.NumWindows() {
		t.Fatalf("shape changed: %d/%d vs %d/%d",
			back.NumBuckets(), back.NumWindows(), lib.NumBuckets(), lib.NumWindows())
	}
	if !back.Frozen() {
		t.Fatal("loaded library not frozen")
	}
	// Identical query answers, including stats.
	for _, off := range []int{0, 777, 1500} {
		pat := ref.Slice(off, off+32)
		m1, s1, err := lib.Lookup(pat)
		if err != nil {
			t.Fatal(err)
		}
		m2, s2, err := back.Lookup(pat)
		if err != nil {
			t.Fatal(err)
		}
		if len(m1) != len(m2) || s1 != s2 {
			t.Fatalf("off %d: answers diverge: %v/%v vs %v/%v", off, m1, s1, m2, s2)
		}
		for i := range m1 {
			if m1[i] != m2[i] {
				t.Fatalf("match %d differs: %+v vs %+v", i, m1[i], m2[i])
			}
		}
	}
	// Bucket vectors bit-identical.
	for i := 0; i < lib.NumBuckets(); i++ {
		if !lib.BucketVector(i).Equal(back.BucketVector(i)) {
			t.Fatalf("bucket %d vector differs", i)
		}
	}
}

func TestSaveLoadApproxKeepsCalibration(t *testing.T) {
	lib := buildApproxLib(t, 1500, 52)
	back := saveLoad(t, lib)
	c1, ok1 := lib.Calibration()
	c2, ok2 := back.Calibration()
	if !ok1 || !ok2 || c1 != c2 {
		t.Fatalf("calibration lost: %+v vs %+v", c1, c2)
	}
	if lib.Threshold() != back.Threshold() {
		t.Fatal("operating thresholds differ")
	}
}

func TestSaveLoadUnsealed(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Capacity: 8, Seed: 53})
	ref := genome.Random(500, rng.New(54))
	if err := lib.Add(genome.Record{ID: "r", Description: "desc text", Seq: ref}); err != nil {
		t.Fatal(err)
	}
	lib.Freeze()
	back := saveLoad(t, lib)
	rec := back.Ref(0)
	if rec.ID != "r" || rec.Description != "desc text" || !rec.Seq.Equal(ref) {
		t.Fatalf("reference record corrupted: %+v", rec)
	}
	pat := ref.Slice(100, 116)
	m1, _, _ := lib.Lookup(pat)
	m2, _, _ := back.Lookup(pat)
	if len(m1) == 0 || len(m1) != len(m2) {
		t.Fatalf("unsealed lookup diverges: %v vs %v", m1, m2)
	}
}

func TestSaveRejectsUnfrozen(t *testing.T) {
	lib := mustLibrary(t, Params{Dim: 1024, Window: 16, Seed: 55})
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err == nil {
		t.Fatal("unfrozen library saved")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := ReadLibrary(bytes.NewReader([]byte("not a library"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadLibrary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	lib, _ := buildExactLib(t, 800, 56)
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a bit in the middle of the payload.
	data[len(data)/2] ^= 0x40
	if _, err := ReadLibrary(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted library accepted")
	}
}

func TestLoadDetectsTruncation(t *testing.T) {
	lib, _ := buildExactLib(t, 800, 57)
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()*2/3]
	if _, err := ReadLibrary(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated library accepted")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	lib, _ := buildExactLib(t, 800, 58)
	var buf bytes.Buffer
	if _, err := lib.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(libMagic)] = 99 // version field
	if _, err := ReadLibrary(bytes.NewReader(data)); err == nil {
		t.Fatal("future version accepted")
	}
}
