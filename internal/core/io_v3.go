package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/genome"
	"repro/internal/mmapfile"
)

// Library file format v3 — the mappable layout (little endian). Unlike
// the v1/v2 streams, every sealed segment's probe arena is placed at a
// 64-byte-aligned, header-recorded offset with its own CRC, so the file
// can be mmapped and the arenas scanned in place:
//
//	header (64 bytes, fixed):
//	  [ 0, 8)  magic "BIOHDLIB"
//	  [ 8,12)  version u32 = 3
//	  [12,16)  segment count u32
//	  [16,24)  meta offset u64 (= 64)
//	  [24,32)  meta length u64 (including its trailing CRC)
//	  [32,40)  directory offset u64 (64-byte aligned)
//	  [40,48)  arena region offset u64 (64-byte aligned)
//	  [48,56)  file size u64
//	  [56,60)  header crc32 (IEEE, over bytes [0,56))
//	  [60,64)  backend tag u32 (0 = hdc; historically reserved-zero)
//	meta (at 64): backend tag u32, then backend-specific — for hdc:
//	  params | calibration | refs | per-segment window metadata (bucket
//	  counts and WindowRef pairs — no vector payloads) | crc32
//	directory (64-byte aligned): one 32-byte entry per segment
//	  { arena offset u64, arena words u64, row words u32, buckets u32,
//	    arena crc32 u32, backend tag u32 } | crc32
//	arenas (each 64-byte aligned): segment k's nBuckets·rowWords sealed
//	  words, bucket-major — exactly the in-memory probe arena layout.
//
// The backend tag selects the index backend that interprets the meta
// section and arenas (see RegisterBackend); the header copy sits
// outside the header CRC and is a dispatch hint, while the copies
// leading the meta section and in every directory entry are covered
// by their section CRCs and are authoritative. The meta copy exists
// whatever the segment count, so even an empty container's tag cannot
// be flipped undetected.
//
// The layout is canonical: sections are ordered, offsets are the
// minimal aligned positions, and every padding byte is zero, so the
// stream reader and the mapped opener enforce identical byte-level
// acceptance and a file ends exactly at the header's file size. The
// 64-byte arena alignment matches the widest vector kernel (AVX-512)
// and the common cache line, so a mapped arena row is as aligned as a
// heap-allocated one.
const (
	libVersionMapped = 3
	v3HeaderSize     = 64
	v3DirEntrySize   = 32
	v3Align          = 64
)

func v3AlignUp(off uint64) uint64 {
	return (off + v3Align - 1) &^ uint64(v3Align-1)
}

// v3Header is the parsed fixed header.
type v3Header struct {
	segCount int
	metaLen  uint64
	dirOff   uint64
	arenaOff uint64
	fileSize uint64
	backend  uint32 // backend tag (trailing header word; 0 = hdc)
}

// v3DirEntry is one parsed segment-directory entry.
type v3DirEntry struct {
	off      uint64 // absolute arena offset, 64-byte aligned
	words    uint64 // arena length in 64-bit words
	rowWords uint32
	buckets  uint32
	crc      uint32 // crc32 over the arena bytes
}

// v3Meta is the parsed meta section: everything a library needs except
// the arenas themselves.
type v3Meta struct {
	p       Params
	cal     Calibration
	refs    []genome.Record
	segWins [][][]WindowRef // per segment, per bucket, member windows
}

// WriteToV3 serializes the library's current snapshot in the mappable
// v3 format. Only frozen, sealed-mode libraries can be saved this way —
// the arena is the sealed storage v3 maps. It returns the number of
// bytes written (the v3 file size).
func (l *Library) WriteToV3(w io.Writer) (int64, error) {
	sn := l.snap.Load()
	if sn == nil {
		return 0, fmt.Errorf("core: cannot save an unfrozen library")
	}
	if !l.params.Sealed {
		return 0, fmt.Errorf("core: format v3 requires a sealed-mode library")
	}
	if !l.beginRead() {
		return 0, ErrClosed
	}
	defer l.endRead()

	rw := uint32(l.params.Dim / 64)
	segs := make([]ContainerSegment, len(sn.segs))
	for k, seg := range sn.segs {
		segs[k] = ContainerSegment{
			Words:    seg.arenaWords(),
			RowWords: rw,
			Buckets:  uint32(seg.numBuckets()),
		}
	}
	return WriteContainerV3(w, backendTagHDC, func(sw *SectionWriter) {
		writeParams(&sw.cw, &l.params)
		writeCalibration(&sw.cw, &sn.cal)
		sw.Refs(sn.refs)
		for _, seg := range sn.segs {
			sw.U32(uint32(seg.numBuckets()))
			for i := 0; i < seg.numBuckets(); i++ {
				ws := seg.windows(i)
				sw.U32(uint32(len(ws)))
				for _, wr := range ws {
					sw.U32(uint32(wr.Ref))
					sw.U32(uint32(wr.Off))
				}
			}
		}
	}, segs)
}

// countingWriter tracks the absolute file offset so sections land at
// their header-recorded positions.
type countingWriter struct {
	bw  *bufio.Writer
	n   int64
	err error
}

func (o *countingWriter) Write(p []byte) (int, error) {
	if o.err != nil {
		return 0, o.err
	}
	n, err := o.bw.Write(p)
	o.n += int64(n)
	o.err = err
	return n, err
}

func (o *countingWriter) write(p []byte) {
	_, _ = o.Write(p)
}

// pad writes zero bytes up to absolute offset to. Section alignment is
// at most v3Align, so one buffer write always suffices.
func (o *countingWriter) pad(to uint64) {
	var zeros [v3Align]byte
	for o.err == nil && uint64(o.n) < to {
		chunk := to - uint64(o.n)
		if chunk > v3Align {
			chunk = v3Align
		}
		o.write(zeros[:chunk])
	}
}

// writeWordsLE streams words to the file little-endian through buf.
func (o *countingWriter) writeWordsLE(words []uint64, buf []byte) {
	for len(words) > 0 && o.err == nil {
		n := len(buf) / 8
		if n > len(words) {
			n = len(words)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], words[i])
		}
		o.write(buf[:n*8])
		words = words[n:]
	}
}

// crcWordsLE computes the crc32 of words as serialized little-endian,
// chunking through buf — the v3 writer needs every arena's CRC before
// the directory (which precedes the arenas) is written.
func crcWordsLE(words []uint64, buf []byte) uint32 {
	crc := uint32(0)
	for len(words) > 0 {
		n := len(buf) / 8
		if n > len(words) {
			n = len(words)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], words[i])
		}
		crc = crc32.Update(crc, crc32.IEEETable, buf[:n*8])
		words = words[n:]
	}
	return crc
}

// parseV3Header verifies and decodes the fixed header (including its
// CRC) and the structural invariants tying the section offsets
// together: each section starts at the minimal aligned offset after its
// predecessor, so there is exactly one valid header for given section
// lengths.
func parseV3Header(hdr []byte) (v3Header, error) {
	var h v3Header
	if len(hdr) < v3HeaderSize {
		return h, fmt.Errorf("core: v3 header truncated")
	}
	if string(hdr[0:8]) != libMagic || binary.LittleEndian.Uint32(hdr[8:12]) != libVersionMapped {
		return h, fmt.Errorf("core: not a v3 library header")
	}
	if got, want := binary.LittleEndian.Uint32(hdr[56:60]), crc32.ChecksumIEEE(hdr[:56]); got != want {
		return h, fmt.Errorf("core: v3 header checksum mismatch (file %08x, computed %08x)", got, want)
	}
	// The trailing word is the backend tag (historically reserved-zero,
	// which is exactly the HDC tag). It sits outside the header CRC;
	// the meta section's leading word and the directory entries carry
	// the CRC-protected authoritative copies, so a flipped tag here is
	// caught at dispatch or meta/directory parse.
	h.backend = binary.LittleEndian.Uint32(hdr[60:64])
	h.segCount = int(binary.LittleEndian.Uint32(hdr[12:16]))
	metaOff := binary.LittleEndian.Uint64(hdr[16:24])
	h.metaLen = binary.LittleEndian.Uint64(hdr[24:32])
	h.dirOff = binary.LittleEndian.Uint64(hdr[32:40])
	h.arenaOff = binary.LittleEndian.Uint64(hdr[40:48])
	h.fileSize = binary.LittleEndian.Uint64(hdr[48:56])
	if h.segCount > maxCount {
		return h, fmt.Errorf("core: implausible segment count %d", h.segCount)
	}
	if metaOff != v3HeaderSize {
		return h, fmt.Errorf("core: v3 meta offset %d, want %d", metaOff, v3HeaderSize)
	}
	if h.metaLen < 4 || h.metaLen > 1<<40 {
		return h, fmt.Errorf("core: v3 meta length %d out of range", h.metaLen)
	}
	if h.dirOff != v3AlignUp(v3HeaderSize+h.metaLen) {
		return h, fmt.Errorf("core: v3 directory offset %d, want %d", h.dirOff, v3AlignUp(v3HeaderSize+h.metaLen))
	}
	if want := v3AlignUp(h.dirOff + uint64(h.segCount*v3DirEntrySize+4)); h.arenaOff != want {
		return h, fmt.Errorf("core: v3 arena offset %d, want %d", h.arenaOff, want)
	}
	if h.fileSize < h.arenaOff || h.fileSize > 1<<46 {
		return h, fmt.Errorf("core: v3 file size %d out of range", h.fileSize)
	}
	return h, nil
}

// parseMetaV3 decodes the meta section content (everything before its
// trailing CRC) from cr.
func parseMetaV3(cr *crcReader, segCount int) (*v3Meta, error) {
	m := &v3Meta{}
	var err error
	m.p, err = readParamsChecked(cr)
	if err != nil {
		return nil, err
	}
	if !m.p.Sealed {
		return nil, fmt.Errorf("core: v3 library must be sealed-mode")
	}
	m.cal = readCalibration(cr)
	m.refs, err = readRefs(cr, true)
	if err != nil {
		return nil, err
	}
	m.segWins = make([][][]WindowRef, 0, segCount)
	for s := 0; s < segCount && cr.err == nil; s++ {
		nBuckets := cr.u32()
		if cr.err == nil && nBuckets > maxCount {
			return nil, fmt.Errorf("core: implausible bucket count %d", nBuckets)
		}
		var wins [][]WindowRef
		for i := uint32(0); i < nBuckets && cr.err == nil; i++ {
			nWin := cr.u32()
			if cr.err == nil && nWin > maxCount {
				return nil, fmt.Errorf("core: implausible window count %d", nWin)
			}
			var ws []WindowRef
			for j := uint32(0); j < nWin && cr.err == nil; j++ {
				wr := WindowRef{Ref: int32(cr.u32()), Off: int32(cr.u32())}
				if wr.Ref < 0 || int(wr.Ref) >= len(m.refs) {
					return nil, fmt.Errorf("core: bucket %d references sequence %d of %d", i, wr.Ref, len(m.refs))
				}
				ws = append(ws, wr)
			}
			wins = append(wins, ws)
		}
		m.segWins = append(m.segWins, wins)
	}
	if cr.err != nil {
		return nil, fmt.Errorf("core: reading v3 metadata: %w", cr.err)
	}
	return m, nil
}

// parseDirV3 decodes the segment directory entries (not the trailing
// CRC) from cr. Every entry's trailing word must equal wantTag — the
// directory CRC protects the per-segment tag copies (the meta section
// leads with the other protected copy), so a reader dispatched on a
// forged header tag fails before touching any arena.
func parseDirV3(cr *crcReader, segCount int, wantTag uint32) ([]v3DirEntry, error) {
	var entries []v3DirEntry
	for k := 0; k < segCount && cr.err == nil; k++ {
		e := v3DirEntry{
			off:      cr.u64(),
			words:    cr.u64(),
			rowWords: cr.u32(),
			buckets:  cr.u32(),
			crc:      cr.u32(),
		}
		if tag := cr.u32(); cr.err == nil && tag != wantTag {
			return nil, fmt.Errorf("core: v3 directory entry %d backend tag %d, want %d", k, tag, wantTag)
		}
		entries = append(entries, e)
	}
	if cr.err != nil {
		return nil, fmt.Errorf("core: reading v3 directory: %w", cr.err)
	}
	return entries, nil
}

// validateDirV3 cross-checks the directory against the (CRC-verified)
// metadata and the header's layout: geometry per segment, sequential
// minimally-aligned arena placement, and the file ending exactly where
// the header says.
func validateDirV3(entries []v3DirEntry, m *v3Meta, h v3Header) error {
	rw := uint64(m.p.Dim / 64)
	off := h.arenaOff
	for k, e := range entries {
		if uint64(e.rowWords) != rw {
			return fmt.Errorf("core: v3 segment %d row words %d, want %d", k, e.rowWords, rw)
		}
		if int(e.buckets) != len(m.segWins[k]) {
			return fmt.Errorf("core: v3 segment %d bucket count %d disagrees with metadata (%d)", k, e.buckets, len(m.segWins[k]))
		}
		if e.words != uint64(e.buckets)*rw {
			return fmt.Errorf("core: v3 segment %d arena words %d, want %d", k, e.words, uint64(e.buckets)*rw)
		}
		if e.off != off {
			return fmt.Errorf("core: v3 segment %d arena offset %d, want %d", k, e.off, off)
		}
		off = v3AlignUp(e.off + e.words*8)
	}
	if off != h.fileSize {
		return fmt.Errorf("core: v3 arenas end at %d, header file size is %d", off, h.fileSize)
	}
	return nil
}

// assembleV3 builds the frozen library from parsed v3 pieces. A non-nil
// mapping marks the library mapped and transfers ownership — Close will
// unmap it.
func assembleV3(meta *v3Meta, segs []*segment, mapping *mmapfile.Mapping) (*Library, error) {
	lib, err := NewLibrary(meta.p)
	if err != nil {
		return nil, err
	}
	lib.params = meta.p // keep the stored capacity exactly
	lib.refs = meta.refs
	lib.segs = segs
	lib.cal = meta.cal
	if mapping != nil {
		lib.mapped = true
		lib.mapping = mapping
	}
	// Publish the loaded snapshot with the stored calibration — loading
	// must not re-derive it.
	lib.mu.Lock()
	lib.publishLocked(false)
	lib.mu.Unlock()
	return lib, nil
}

// readLibraryV3 is the heap-loading stream reader for v3: same
// byte-level acceptance as the mapped opener, arenas decoded into heap
// words. head is the already-consumed magic+version prefix.
func readLibraryV3(br *bufio.Reader, head []byte) (*Library, error) {
	hdr, err := readV3HeaderBytes(br, head)
	if err != nil {
		return nil, err
	}
	return readLibraryV3Hdr(br, hdr)
}

// readLibraryV3Hdr decodes a v3 container whose 64-byte header has
// been consumed, through the generic container reader — HDC-specific
// validation (dimension geometry, bucket counts against metadata) runs
// in the callbacks.
func readLibraryV3Hdr(br *bufio.Reader, hdr []byte) (*Library, error) {
	if tag := binary.LittleEndian.Uint32(hdr[60:64]); tag != backendTagHDC {
		return nil, fmt.Errorf("core: v3 library uses index backend %s; load it with ReadIndex", BackendName(tag))
	}
	var meta *v3Meta
	var segs []*segment
	err := ReadContainerV3(br, hdr, backendTagHDC,
		func(sr *SectionReader, segCount int) error {
			m, err := parseMetaV3(&sr.cr, segCount)
			if err != nil {
				return err
			}
			meta = m
			return nil
		},
		func(k int, s ContainerSegment) error {
			if int(s.RowWords) != meta.p.Dim/64 {
				return fmt.Errorf("core: v3 segment %d row words %d, want %d", k, s.RowWords, meta.p.Dim/64)
			}
			if int(s.Buckets) != len(meta.segWins[k]) {
				return fmt.Errorf("core: v3 segment %d bucket count %d disagrees with metadata (%d)", k, s.Buckets, len(meta.segWins[k]))
			}
			seg := segmentFromArena(s.Words, meta.segWins[k], meta.p.Dim, false)
			seg.tombs = seg.countTombs(meta.refs)
			segs = append(segs, seg)
			return nil
		})
	if err != nil {
		return nil, err
	}
	return assembleV3(meta, segs, nil)
}

// readWordsLE reads n little-endian 64-bit words, returning them along
// with the crc32 of their byte stream.
func readWordsLE(r io.Reader, n uint64) ([]uint64, uint32, error) {
	words := make([]uint64, n)
	buf := make([]byte, 64*1024)
	crc := uint32(0)
	for i := uint64(0); i < n; {
		chunk := uint64(len(buf) / 8)
		if chunk > n-i {
			chunk = n - i
		}
		b := buf[:chunk*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, 0, err
		}
		crc = crc32.Update(crc, crc32.IEEETable, b)
		for j := uint64(0); j < chunk; j++ {
			words[i+j] = binary.LittleEndian.Uint64(b[j*8:])
		}
		i += chunk
	}
	return words, crc, nil
}

// skipZeroPadding consumes n padding bytes, requiring each to be zero —
// the canonical layout leaves no place for stray bytes to hide.
func skipZeroPadding(br *bufio.Reader, n uint64) error {
	for i := uint64(0); i < n; i++ {
		b, err := br.ReadByte()
		if err != nil {
			return fmt.Errorf("core: reading v3 padding: %w", err)
		}
		if b != 0 {
			return fmt.Errorf("core: v3 padding byte not zero")
		}
	}
	return nil
}

// zeroRange requires every byte of a mapped padding range to be zero.
func zeroRange(b []byte) error {
	for _, x := range b {
		if x != 0 {
			return fmt.Errorf("core: v3 padding byte not zero")
		}
	}
	return nil
}

// LoadMode selects how OpenLibraryFile materializes a library.
type LoadMode int

const (
	// LoadHeap reads the file into the heap (any format version) —
	// the default tier: fastest scans, footprint equal to library size.
	LoadHeap LoadMode = iota
	// MapArena memory-maps a v3 file and aliases the sealed arenas
	// zero-copy: O(1) startup and a resident footprint proportional to
	// the hot set, with the kernel paging cold segments in and out.
	// Falls back to heap loading when the platform (or purego build)
	// cannot map, the host is not little-endian (the on-disk word order
	// is little-endian), or the file is a v1/v2 stream.
	MapArena
)

// openMappedV3 maps path and builds a zero-copy library from it.
// handled=false means the file is not a mappable HDC v3 library (or
// mapping is unsupported) and the caller should fall back to the
// stream reader — backend-tagged containers fall back too, since only
// the HDC arenas are mapped in place today; with handled=true the
// outcome — including a corruption error — is final. Every CRC
// (header, meta, directory, and each segment arena) is verified at
// open, so a flipped arena byte surfaces here, before any probe could
// scan it.
func openMappedV3(path string) (lib *Library, handled bool, err error) {
	m, merr := mmapfile.Open(path)
	if merr != nil {
		if errors.Is(merr, mmapfile.ErrUnsupported) {
			return nil, false, nil
		}
		return nil, true, merr
	}
	b := m.Bytes()
	if len(b) < v3HeaderSize || string(b[0:8]) != libMagic ||
		binary.LittleEndian.Uint32(b[8:12]) != libVersionMapped {
		// Not a v3 file: the stream reader owns v1/v2 and the
		// not-a-library diagnostics.
		_ = m.Close()
		return nil, false, nil
	}
	defer func() {
		if err != nil {
			_ = m.Close()
		}
	}()
	h, err := parseV3Header(b[:v3HeaderSize])
	if err != nil {
		return nil, true, err
	}
	if h.backend != backendTagHDC {
		// A backend-tagged container: only HDC arenas map in place
		// today, so the stream reader dispatches it to its backend
		// (heap-loaded). A forged tag fails there on the CRC-protected
		// directory tags.
		_ = m.Close()
		return nil, false, nil
	}
	if h.fileSize != uint64(len(b)) {
		// Covers truncation and trailing data in one check — a mapped
		// file must be exactly the recorded size.
		return nil, true, fmt.Errorf("core: v3 file is %d bytes, header file size is %d", len(b), h.fileSize)
	}

	metaEnd := v3HeaderSize + h.metaLen
	mr := bytes.NewReader(b[v3HeaderSize : metaEnd-4])
	mcr := &crcReader{r: mr}
	// Same meta-leading tag check as the stream reader: the
	// CRC-protected copy that exists even with zero directory entries.
	if tag := mcr.u32(); mcr.err == nil && tag != backendTagHDC {
		return nil, true, fmt.Errorf("core: v3 meta section tagged for backend %s, header says %s",
			BackendName(tag), BackendName(backendTagHDC))
	}
	meta, err := parseMetaV3(mcr, h.segCount)
	if err != nil {
		return nil, true, err
	}
	if mr.Len() != 0 {
		return nil, true, fmt.Errorf("core: v3 metadata has %d undecoded bytes", mr.Len())
	}
	if got := binary.LittleEndian.Uint32(b[metaEnd-4 : metaEnd]); got != mcr.crc {
		return nil, true, fmt.Errorf("core: v3 metadata checksum mismatch (file %08x, computed %08x)", got, mcr.crc)
	}
	if err = zeroRange(b[metaEnd:h.dirOff]); err != nil {
		return nil, true, err
	}

	dirEnd := h.dirOff + uint64(h.segCount*v3DirEntrySize)
	dcr := &crcReader{r: bytes.NewReader(b[h.dirOff:dirEnd])}
	entries, err := parseDirV3(dcr, h.segCount, backendTagHDC)
	if err != nil {
		return nil, true, err
	}
	if got := binary.LittleEndian.Uint32(b[dirEnd : dirEnd+4]); got != dcr.crc {
		return nil, true, fmt.Errorf("core: v3 directory checksum mismatch (file %08x, computed %08x)", got, dcr.crc)
	}
	if err = validateDirV3(entries, meta, h); err != nil {
		return nil, true, err
	}
	if err = zeroRange(b[dirEnd+4 : h.arenaOff]); err != nil {
		return nil, true, err
	}

	// The verification pass streams every arena front to back; tell the
	// kernel so readahead keeps up. Hints are best-effort.
	arenaRegion := int(h.fileSize - h.arenaOff)
	_ = m.Advise(int(h.arenaOff), arenaRegion, mmapfile.AdviseSequential)
	segs := make([]*segment, 0, len(entries))
	for k, e := range entries {
		end := e.off + e.words*8
		ab := b[e.off:end]
		if got := crc32.ChecksumIEEE(ab); got != e.crc {
			return nil, true, fmt.Errorf("core: v3 segment %d arena checksum mismatch (file %08x, computed %08x)", k, e.crc, got)
		}
		if err = zeroRange(b[end:v3AlignUp(end)]); err != nil {
			return nil, true, err
		}
		words, werr := mmapfile.AsWords(ab)
		if werr != nil {
			return nil, true, werr
		}
		seg := segmentFromArena(words, meta.segWins[k], meta.p.Dim, true)
		seg.setMapRange(int(e.off), int(e.words*8))
		seg.tombs = seg.countTombs(meta.refs)
		segs = append(segs, seg)
	}
	// Everything verified is hot in the page cache now; mark the arena
	// region wanted so it stays warm for the first probes.
	_ = m.Advise(int(h.arenaOff), arenaRegion, mmapfile.AdviseWillNeed)
	lib, err = assembleV3(meta, segs, m)
	return lib, true, err
}
