package core

import "sync/atomic"

// Counters is a point-in-time snapshot of a library's cumulative
// operational counters, taken with Library.Counters. Unlike Stats —
// which models the work one query *would* cost the PIM hardware and is
// deterministic per query — these count what the software actually did
// across the library's lifetime, including shortcuts the hardware model
// ignores. They exist for observability (the HTTP /metrics endpoint
// exposes them as Prometheus counters), not for experiments.
type Counters struct {
	// BucketProbes counts query-window/bucket probe scans across every
	// lookup served by this library (each probe scans all buckets).
	BucketProbes int64
	// EarlyAbandons counts sealed-arena rows the bounded XNOR-popcount
	// kernel rejected before completing the full row scan.
	EarlyAbandons int64
	// BatchCancellations counts LookupBatchContext calls stopped early
	// by context cancellation or deadline expiry.
	BatchCancellations int64
	// BlockedProbes counts multi-query probe blocks executed — arena
	// passes that served a whole query block at once (ProbeMulti and the
	// blocked LookupLong/LookupBatch paths).
	BlockedProbes int64
	// BlockedWindows counts query windows served through those blocks;
	// BlockedWindows / BlockedProbes is the realized mean block
	// occupancy (≤ bitvec.MaxMultiQueries).
	BlockedWindows int64
	// SegmentSeals counts active segments sealed into immutable ones by
	// post-freeze ingest reaching the auto-seal threshold.
	SegmentSeals int64
	// Compactions counts segments rewritten by Compact (manual or
	// auto-triggered), including active-segment rebuilds.
	Compactions int64
	// MappedScans counts arena range scans served from mmap-backed
	// segments (file format v3 opened with MapArena); HeapScans counts
	// the same for heap-resident segments. Together they show which
	// storage tier the probe load is actually hitting.
	MappedScans int64
	// HeapScans counts arena range scans served from heap-resident
	// segments (including the active segment's view, which is always
	// heap-built).
	HeapScans int64
}

// libCounters is the live atomic form embedded in Library. Writers
// accumulate locally and publish with one atomic add per probe/range,
// so the hot kernel loop stays free of synchronization.
type libCounters struct {
	bucketProbes       atomic.Int64
	earlyAbandons      atomic.Int64
	batchCancellations atomic.Int64
	blockedProbes      atomic.Int64
	blockedWindows     atomic.Int64
	segmentSeals       atomic.Int64
	compactions        atomic.Int64
	mappedScans        atomic.Int64
	heapScans          atomic.Int64
}

// Counters returns a snapshot of the library's cumulative operational
// counters. Safe to call concurrently with lookups; the fields are
// read independently, so a snapshot taken mid-lookup may be slightly
// torn across fields — each field is itself consistent and monotonic.
func (l *Library) Counters() Counters {
	return Counters{
		BucketProbes:       l.ctr.bucketProbes.Load(),
		EarlyAbandons:      l.ctr.earlyAbandons.Load(),
		BatchCancellations: l.ctr.batchCancellations.Load(),
		BlockedProbes:      l.ctr.blockedProbes.Load(),
		BlockedWindows:     l.ctr.blockedWindows.Load(),
		SegmentSeals:       l.ctr.segmentSeals.Load(),
		Compactions:        l.ctr.compactions.Load(),
		MappedScans:        l.ctr.mappedScans.Load(),
		HeapScans:          l.ctr.heapScans.Load(),
	}
}
