package core

import (
	"repro/internal/genome"
	"repro/internal/hdc"
)

// snapshot is one immutable, atomically published view of a frozen
// library: the sealed segments (plus an isolated view of the active
// builder), the reference table, and the calibration in force. Readers
// load the current snapshot once per operation and never take a lock;
// mutations assemble a fresh snapshot off-line and swap the pointer.
//
// Global bucket indices — the ones Candidate.Bucket and the public
// Bucket* accessors use — run across segments in order: segment k's
// local bucket i is global bucket offs[k]+i.
type snapshot struct {
	segs []*segment
	offs []int           // offs[k] = global index of segs[k]'s first bucket
	refs []genome.Record // length-capped; removed refs have Seq == nil
	cal  Calibration

	nBkts int
	nWin  int // live (non-tombstoned) windows
	total int // all windows, including tombstoned
	tombs int
}

func newSnapshot(segs []*segment, refs []genome.Record, cal Calibration) *snapshot {
	sn := &snapshot{segs: segs, refs: refs, cal: cal, offs: make([]int, len(segs))}
	for k, seg := range segs {
		sn.offs[k] = sn.nBkts
		sn.nBkts += seg.numBuckets()
		sn.total += seg.total
		sn.tombs += seg.tombs
	}
	sn.nWin = sn.total - sn.tombs
	return sn
}

func (sn *snapshot) numBuckets() int  { return sn.nBkts }
func (sn *snapshot) numSegments() int { return len(sn.segs) }

// locate resolves a global bucket index to its segment and local index.
func (sn *snapshot) locate(g int) (*segment, int) {
	// Linear walk: snapshots hold a handful of segments, so this beats a
	// binary search for every realistic segment count.
	for k, seg := range sn.segs {
		if g < sn.offs[k]+seg.numBuckets() {
			return seg, g - sn.offs[k]
		}
	}
	panic("core: bucket index out of range")
}

// locateOK is locate for untrusted indices — the public Bucket*
// accessors route through it so a stale global index (e.g. a
// Candidate.Bucket held across a Compact that shrank the library)
// reports !ok instead of panicking. Internal probe paths keep using
// locate: their indices come from the snapshot being scanned, so an
// out-of-range one is a bug worth crashing on.
func (sn *snapshot) locateOK(g int) (*segment, int, bool) {
	if g < 0 || g >= sn.nBkts {
		return nil, 0, false
	}
	seg, i := sn.locate(g)
	return seg, i, true
}

// windows returns the member windows of global bucket g (shared slice;
// callers must not mutate). Tombstoned windows are included — verify
// filters them against the snapshot's reference table.
func (sn *snapshot) windows(g int) []WindowRef {
	seg, i := sn.locate(g)
	return seg.windows(i)
}

// vector returns the sealed hypervector of global bucket g.
func (sn *snapshot) vector(g int) *hdc.HV {
	seg, i := sn.locate(g)
	return seg.vector(i)
}

// score scores query hv against global bucket g.
func (sn *snapshot) score(g int, hv *hdc.HV, p *Params) float64 {
	seg, i := sn.locate(g)
	return seg.score(i, hv, p)
}

// maxOccupancy returns the largest bucket occupancy across segments.
func (sn *snapshot) maxOccupancy() int {
	c := 0
	for _, seg := range sn.segs {
		if n := seg.maxOccupancy(); n > c {
			c = n
		}
	}
	return c
}

// tombRatio is the tombstoned fraction of all memorized windows.
func (sn *snapshot) tombRatio() float64 {
	if sn.total == 0 {
		return 0
	}
	return float64(sn.tombs) / float64(sn.total)
}

// footprintBytes sums the segments' resident hypervector storage.
func (sn *snapshot) footprintBytes(dim int) int64 {
	var bytes int64
	for _, seg := range sn.segs {
		bytes += seg.footprintBytes(dim)
	}
	return bytes
}
